package sparqluo_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"sparqluo"
	"sparqluo/internal/bench"
	"sparqluo/internal/lubm"
	"sparqluo/internal/rdf"
	"sparqluo/internal/store"
)

// liveReference rebuilds, from first principles, the frozen store a
// quiesced live database must be indistinguishable from: the dictionary
// is replayed in the exact order the live store grew it (base triples
// first, then every inserted triple in insertion order — Delete never
// allocates IDs), and the surviving triple set is folded through the
// same sort+compact build the compactor uses. Identical dictionary IDs
// make the comparison maximally strict: W3C JSON output must match
// byte for byte, not just up to result reordering.
func liveReference(base, inserted, final []rdf.Triple) *sparqluo.DB {
	d := store.NewDict()
	enc := func(t rdf.Triple) store.EncTriple {
		return store.EncTriple{S: d.Encode(t.S), P: d.Encode(t.P), O: d.Encode(t.O)}
	}
	for _, t := range base {
		enc(t)
	}
	for _, t := range inserted {
		enc(t)
	}
	encFinal := make([]store.EncTriple, len(final))
	for i, t := range final {
		encFinal[i] = enc(t)
	}
	ref, err := store.FromTriples(d, encFinal, true)
	if err != nil {
		panic(err)
	}
	return sparqluo.FromStore(ref)
}

// TestLiveQuiescedEquivalence is the live-update subsystem's central
// acceptance test: after an arbitrary interleaving of insert and delete
// batches followed by a Flush, a live database must answer every LUBM
// benchmark query with output byte-identical (W3C SPARQL JSON) to a
// freshly frozen store built directly from the surviving triples —
// across both engines, all four strategies, and both sequential and
// parallel evaluation. Any divergence in the overlay's merge logic,
// tombstone annihilation, statistics, or dictionary handling surfaces
// here as a byte difference.
func TestLiveQuiescedEquivalence(t *testing.T) {
	scale := 5
	if testing.Short() || raceEnabled {
		scale = 2
	}
	all := lubm.Generate(lubm.DefaultConfig(scale))
	split := len(all) * 4 / 5
	base, extra := all[:split], all[split:]

	live := sparqluo.Open()
	if err := live.AddAll(base); err != nil {
		t.Fatal(err)
	}
	if err := live.EnableLiveUpdates(sparqluo.LiveOptions{}); err != nil {
		t.Fatal(err)
	}

	// Deterministic op stream: inserts of the held-out tail interleaved
	// with deletes of base triples, re-deletes (no-ops), re-inserts of
	// previously deleted triples, and a mid-stream Flush so part of the
	// stream compacts through the background path and part stays in the
	// memtable until the final quiesce.
	rng := rand.New(rand.NewSource(7))
	present := make(map[string]bool, len(all))
	key := func(t rdf.Triple) string { return t.S.String() + "\x00" + t.P.String() + "\x00" + t.O.String() }
	for _, t := range base {
		present[key(t)] = true
	}
	var inserted []rdf.Triple // every triple ever passed to Insert, in order
	next := 0
	var deleted []rdf.Triple
	for round := 0; next < len(extra) || round < 40; round++ {
		switch round % 4 {
		case 0, 2: // insert a batch of new triples
			n := min(1+rng.Intn(40), len(extra)-next)
			if n > 0 {
				batch := extra[next : next+n]
				next += n
				if err := live.Insert(batch...); err != nil {
					t.Fatal(err)
				}
				inserted = append(inserted, batch...)
				for _, tr := range batch {
					present[key(tr)] = true
				}
			}
		case 1: // delete a batch of base triples (some repeats = no-ops)
			var batch []rdf.Triple
			for i := 0; i < 25; i++ {
				tr := base[rng.Intn(len(base))]
				batch = append(batch, tr)
				if present[key(tr)] {
					deleted = append(deleted, tr)
				}
				present[key(tr)] = false
			}
			if err := live.Delete(batch...); err != nil {
				t.Fatal(err)
			}
		case 3: // re-insert an earlier victim; occasionally flush
			if len(deleted) > 0 {
				tr := deleted[rng.Intn(len(deleted))]
				if err := live.Insert(tr); err != nil {
					t.Fatal(err)
				}
				inserted = append(inserted, tr)
				present[key(tr)] = true
			}
			if round%8 == 3 {
				if err := live.Flush(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := live.Flush(); err != nil {
		t.Fatal(err)
	}
	// The equivalence claim below is only evidence for the merge-fold
	// compactor if folds actually ran: every Flush above routed its
	// add/del delta through store.MergeFold, so pin that the stream
	// compacted (several times) and fully drained.
	stats, ok := live.LiveStats()
	if !ok {
		t.Fatal("LiveStats: database not live")
	}
	if stats.Compactions < 2 {
		t.Fatalf("only %d compactions ran; the op stream must fold through MergeFold repeatedly", stats.Compactions)
	}
	if stats.MemtableOps != 0 {
		t.Fatalf("%d memtable ops survived the final Flush", stats.MemtableOps)
	}

	var final []rdf.Triple
	seen := make(map[string]bool, len(all))
	for _, tr := range all {
		if k := key(tr); present[k] && !seen[k] {
			final = append(final, tr)
			seen[k] = true
		}
	}
	ref := liveReference(base, inserted, final)
	if live.NumTriples() != ref.NumTriples() {
		t.Fatalf("NumTriples = %d, want %d", live.NumTriples(), ref.NumTriples())
	}

	engines := []sparqluo.Engine{sparqluo.WCO, sparqluo.BinaryJoin}
	engineNames := []string{"wco", "binary"}
	strategies := []sparqluo.Strategy{sparqluo.Base, sparqluo.TT, sparqluo.CP, sparqluo.Full}
	for _, q := range bench.AllQueries() {
		if q.Dataset != "LUBM" {
			continue
		}
		for ei, engine := range engines {
			for _, strat := range strategies {
				base := []sparqluo.Option{
					sparqluo.WithEngine(engine),
					sparqluo.WithStrategy(strat),
				}
				pars := []int{1, 0}
				if raceEnabled {
					pars = pars[1:] // the grid is the plain build's job
				}
				want := queryJSON(t, ref, q.Text, base)
				for _, par := range pars {
					got := queryJSON(t, live, q.Text, append(base[:2:2], sparqluo.WithParallelism(par)))
					if !bytes.Equal(want, got) {
						t.Errorf("%s %s/%v par=%d: live results differ from frozen reference\nfrozen: %.200s\nlive:   %.200s",
							q.ID, engineNames[ei], strat, par, want, got)
					}
				}
			}
		}
	}
}

// TestLiveQueriesSeeOneEpoch drives queries concurrently with paired
// writes and background compactions. Each write batch inserts (or
// deletes) both halves of a subject's pair atomically, so a query that
// honors snapshot isolation can never observe a subject with its
// required triple but not its optional one — regardless of whether the
// view it pinned was pre-memtable, mid-memtable, or mid-swap.
func TestLiveQueriesSeeOneEpoch(t *testing.T) {
	db, err := sparqluo.OpenLive(sparqluo.LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pair := func(i int) []sparqluo.Triple {
		s := rdf.NewIRI(fmt.Sprintf("http://ex/s%d", i))
		return []sparqluo.Triple{
			{S: s, P: rdf.NewIRI("http://ex/req"), O: rdf.NewIRI(fmt.Sprintf("http://ex/o%d", i))},
			{S: s, P: rdf.NewIRI("http://ex/opt"), O: rdf.NewIRI(fmt.Sprintf("http://ex/o%d", i))},
		}
	}
	for i := 0; i < 64; i++ {
		if err := db.Insert(pair(i)...); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	const q = `SELECT ?s ?b WHERE { ?s <http://ex/req> ?x . OPTIONAL { ?s <http://ex/opt> ?b } }`
	writerDone := make(chan struct{})
	compactorDone := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // writer: a bounded stream of atomic paired inserts and deletes
		defer wg.Done()
		defer close(writerDone)
		rng := rand.New(rand.NewSource(11))
		for i := 64; i < 1500; i++ {
			if err := db.Insert(pair(i)...); err != nil {
				t.Error(err)
				return
			}
			if victim := rng.Intn(i); victim%3 == 0 {
				if err := db.Delete(pair(victim)...); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	go func() { // compactor: keep base swaps happening under the readers
		defer wg.Done()
		for {
			select {
			case <-compactorDone:
				return
			default:
			}
			if err := db.Flush(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	engines := []sparqluo.Engine{sparqluo.WCO, sparqluo.BinaryJoin}
	strategies := []sparqluo.Strategy{sparqluo.Base, sparqluo.Full}
	writing := true
	for rep := 0; rep < 10 || writing; rep++ {
		select {
		case <-writerDone:
			writing = false
		default:
		}
		for _, engine := range engines {
			for _, strat := range strategies {
				res, err := db.Query(q, sparqluo.WithEngine(engine), sparqluo.WithStrategy(strat))
				if err != nil {
					t.Fatal(err)
				}
				for _, sol := range res.Solutions() {
					if _, ok := sol["b"]; !ok {
						t.Fatalf("rep %d: subject %v visible without its paired triple — query saw a torn batch",
							rep, sol["s"])
					}
				}
			}
		}
	}
	close(compactorDone)
	wg.Wait()
}

// TestLiveSnapshotRoundTrip covers the persistence surface end to end:
// a compaction-persisted image must reopen (via both OpenSnapshot and
// the magic-sniffing OpenFile) byte-identical to the quiesced live
// store, and a Flush whose persist step cannot succeed must fail
// loudly while the memtable retains every pending write.
func TestLiveSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	img := filepath.Join(dir, "live.img")
	db, err := sparqluo.OpenLive(sparqluo.LiveOptions{SnapshotPath: img})
	if err != nil {
		t.Fatal(err)
	}
	all := lubm.Generate(lubm.DefaultConfig(1))
	for i := 0; i < len(all); i += 500 {
		if err := db.Insert(all[i:min(i+500, len(all))]...); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Delete(all[:100]...); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	snap, err := sparqluo.OpenSnapshot(img)
	if err != nil {
		t.Fatalf("OpenSnapshot(%s): %v", img, err)
	}
	defer snap.Close()
	sniffed, source, err := sparqluo.OpenFile(img)
	if err != nil {
		t.Fatalf("OpenFile(%s): %v", img, err)
	}
	defer sniffed.Close()
	if source != "snapshot" {
		t.Errorf("OpenFile source = %q, want snapshot", source)
	}
	if snap.NumTriples() != db.NumTriples() || sniffed.NumTriples() != db.NumTriples() {
		t.Fatalf("NumTriples: snapshot=%d sniffed=%d live=%d", snap.NumTriples(), sniffed.NumTriples(), db.NumTriples())
	}
	for _, q := range bench.AllQueries() {
		if q.Dataset != "LUBM" {
			continue
		}
		want := queryJSON(t, db, q.Text, nil)
		if got := queryJSON(t, snap, q.Text, nil); !bytes.Equal(want, got) {
			t.Errorf("%s: reopened image differs from live store", q.ID)
		}
		if got := queryJSON(t, sniffed, q.Text, nil); !bytes.Equal(want, got) {
			t.Errorf("%s: OpenFile image differs from live store", q.ID)
		}
	}

	// Failure path: the snapshot target's parent is a regular file, so
	// the atomic writer cannot even create its temp file. The flush must
	// surface the error and keep serving the pending writes.
	if err := os.WriteFile(filepath.Join(dir, "notadir"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	broken, err := sparqluo.OpenLive(sparqluo.LiveOptions{
		SnapshotPath: filepath.Join(dir, "notadir", "img"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := broken.Insert(all[:10]...); err != nil {
		t.Fatal(err)
	}
	if err := broken.Flush(); err == nil {
		t.Fatal("Flush with unwritable snapshot path succeeded, want error")
	}
	if broken.NumTriples() != 10 {
		t.Errorf("after failed flush, live store serves %d triples, want 10", broken.NumTriples())
	}
	if stats, ok := broken.LiveStats(); !ok || stats.MemtableOps == 0 {
		t.Errorf("after failed flush, memtable dropped its writes: %+v", stats)
	}
}

// TestLiveWriteSnapshotQuiesces checks DB.WriteSnapshot on a live
// database: it must flush the memtable first so the image carries every
// acknowledged write.
func TestLiveWriteSnapshotQuiesces(t *testing.T) {
	db, err := sparqluo.OpenLive(sparqluo.LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(
		sparqluo.Triple{S: rdf.NewIRI("http://ex/s"), P: rdf.NewIRI("http://ex/p"), O: rdf.NewIRI("http://ex/o")},
		sparqluo.Triple{S: rdf.NewIRI("http://ex/s2"), P: rdf.NewIRI("http://ex/p"), O: rdf.NewIRI("http://ex/o")},
	); err != nil {
		t.Fatal(err)
	}
	img := filepath.Join(t.TempDir(), "live.img")
	if err := db.WriteSnapshot(img); err != nil {
		t.Fatal(err)
	}
	snap, err := sparqluo.OpenSnapshot(img)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if snap.NumTriples() != 2 {
		t.Errorf("image holds %d triples, want 2 (memtable not flushed before persist)", snap.NumTriples())
	}
	if stats, _ := db.LiveStats(); stats.MemtableOps != 0 {
		t.Errorf("WriteSnapshot left %d ops in the memtable", stats.MemtableOps)
	}
}

// TestLiveAPIGuards pins the error contract of the live surface: write
// APIs without live updates report ErrFrozen or ErrNotLive (never a
// panic), enabling twice fails, and sharded databases refuse the
// overlay.
func TestLiveAPIGuards(t *testing.T) {
	frozen := sparqluo.Open()
	frozen.Freeze()
	tr := sparqluo.Triple{S: rdf.NewIRI("http://ex/s"), P: rdf.NewIRI("http://ex/p"), O: rdf.NewIRI("http://ex/o")}
	if err := frozen.Insert(tr); err != sparqluo.ErrNotLive {
		t.Errorf("Insert on frozen db: err = %v, want ErrNotLive", err)
	}
	if err := frozen.Delete(tr); err != sparqluo.ErrNotLive {
		t.Errorf("Delete on frozen db: err = %v, want ErrNotLive", err)
	}
	if err := frozen.Flush(); err != sparqluo.ErrNotLive {
		t.Errorf("Flush on frozen db: err = %v, want ErrNotLive", err)
	}
	if _, err := frozen.StartCompaction(sparqluo.CompactionOptions{}); err != sparqluo.ErrNotLive {
		t.Errorf("StartCompaction on frozen db: err = %v, want ErrNotLive", err)
	}
	if _, ok := frozen.LiveStats(); ok {
		t.Error("LiveStats on frozen db reported live")
	}

	if err := frozen.EnableLiveUpdates(sparqluo.LiveOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := frozen.EnableLiveUpdates(sparqluo.LiveOptions{}); err == nil {
		t.Error("EnableLiveUpdates twice succeeded, want error")
	}
	if err := frozen.Add(tr); err != nil {
		t.Errorf("Add on live db should route to the overlay, got %v", err)
	}
	if frozen.NumTriples() != 1 {
		t.Errorf("Add on live db did not land: %d triples", frozen.NumTriples())
	}
}
