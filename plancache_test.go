package sparqluo_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"sparqluo"
)

// TestHTTPPlanCache checks the serving-path plan cache end to end: the
// first request for a query misses (X-Plan-Cache: miss), repeats hit,
// reformatted copies of the same query share the entry, different
// strategy/engine parameters get their own entries, and hit responses
// are byte-identical to miss responses.
func TestHTTPPlanCache(t *testing.T) {
	db := openTestDB(t)
	srv := httptest.NewServer(sparqluo.NewHandler(db, sparqluo.WithPlanCache(8)))
	defer srv.Close()

	get := func(t *testing.T, rawQuery string) (string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/sparql?" + rawQuery)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.Header.Get("X-Plan-Cache"), string(body)
	}

	q := url.QueryEscape(`PREFIX ex: <http://ex.org/> SELECT ?who ?name WHERE { ?who ex:name ?name }`)
	state, missBody := get(t, "query="+q)
	if state != "miss" {
		t.Errorf("first request: X-Plan-Cache = %q, want miss", state)
	}
	state, hitBody := get(t, "query="+q)
	if state != "hit" {
		t.Errorf("second request: X-Plan-Cache = %q, want hit", state)
	}
	if hitBody != missBody {
		t.Errorf("cache hit served different bytes:\nmiss: %s\nhit:  %s", missBody, hitBody)
	}

	// Reformatted copy of the same query (whitespace only) must hit.
	qReformatted := url.QueryEscape("PREFIX ex: <http://ex.org/>\n\tSELECT ?who ?name\n\tWHERE {\n\t\t?who ex:name ?name\n\t}")
	state, body := get(t, "query="+qReformatted)
	if state != "hit" {
		t.Errorf("reformatted query: X-Plan-Cache = %q, want hit", state)
	}
	if body != missBody {
		t.Errorf("reformatted query served different bytes")
	}

	// Different strategy or engine → separate entries (first time misses).
	if state, _ := get(t, "strategy=base&query="+q); state != "miss" {
		t.Errorf("strategy=base: X-Plan-Cache = %q, want miss", state)
	}
	if state, _ := get(t, "engine=binary&query="+q); state != "miss" {
		t.Errorf("engine=binary: X-Plan-Cache = %q, want miss", state)
	}

	// Without a cache the header is absent entirely.
	plain := httptest.NewServer(sparqluo.NewHandler(db))
	defer plain.Close()
	resp, err := http.Get(plain.URL + "/sparql?query=" + q)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Plan-Cache"); got != "" {
		t.Errorf("cache disabled: X-Plan-Cache = %q, want unset", got)
	}
}

// TestHTTPPlanCacheEviction: with capacity 1, a second distinct query
// evicts the first, which then misses again — the cache is bounded.
func TestHTTPPlanCacheEviction(t *testing.T) {
	db := openTestDB(t)
	srv := httptest.NewServer(sparqluo.NewHandler(db, sparqluo.WithPlanCache(1)))
	defer srv.Close()

	state := func(t *testing.T, q string) string {
		t.Helper()
		resp, err := http.Get(srv.URL + "/sparql?query=" + url.QueryEscape(q))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		return resp.Header.Get("X-Plan-Cache")
	}

	q1 := `PREFIX ex: <http://ex.org/> SELECT ?n WHERE { ?s ex:name ?n }`
	q2 := `PREFIX ex: <http://ex.org/> SELECT ?a WHERE { ?s ex:age ?a }`
	if got := state(t, q1); got != "miss" {
		t.Errorf("q1 first: %q, want miss", got)
	}
	if got := state(t, q1); got != "hit" {
		t.Errorf("q1 second: %q, want hit", got)
	}
	if got := state(t, q2); got != "miss" {
		t.Errorf("q2 first: %q, want miss", got)
	}
	if got := state(t, q1); got != "miss" {
		t.Errorf("q1 after eviction: %q, want miss", got)
	}
}

// TestHTTPPlanCacheBadQuery: parse failures must not poison the cache
// or change the error contract.
func TestHTTPPlanCacheBadQuery(t *testing.T) {
	db := openTestDB(t)
	srv := httptest.NewServer(sparqluo.NewHandler(db, sparqluo.WithPlanCache(4)))
	defer srv.Close()
	for i := 0; i < 2; i++ {
		resp, err := http.Get(srv.URL + "/sparql?query=" + url.QueryEscape("SELECT garbage"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("attempt %d: status %d, want 400", i, resp.StatusCode)
		}
	}
}
