package sparqluo

import (
	"fmt"
	"os"

	"sparqluo/internal/snapshot"
)

// WriteSnapshot serializes the frozen database as a binary snapshot
// image at path (written atomically via a temp file + rename). The
// image can be reopened with OpenSnapshot in time independent of the
// dataset's parse-and-sort cost — the intended cold-start path for
// servers and shard spawns. The database must be frozen first.
//
// Snapshots are a cache, not an archival format: a build only reads the
// format version it writes, so regenerate images from the source data
// after upgrading. See internal/snapshot for the format and its
// integrity model.
func (db *DB) WriteSnapshot(path string) error {
	if db.Live() {
		// Quiesce first: flush the memtable into the base, then persist
		// the result. Writes accepted after the flush land in the next
		// image.
		return db.writeLiveSnapshot(path)
	}
	m := db.mem()
	if m == nil {
		return fmt.Errorf("sparqluo: WriteSnapshot on a sharded database (shards are already snapshot images)")
	}
	if m.Stats() == nil {
		return fmt.Errorf("sparqluo: DB must be frozen before writing a snapshot (call Freeze)")
	}
	return snapshot.WriteFile(path, m)
}

// WriteShards splits the frozen database into k subject-range shards
// and writes one snapshot image per shard next to path, plus a small
// CRC-checked manifest at path itself that records the ID range and
// triple count of every shard alongside the global statistics. The
// shard set reopens with OpenShards. Every file is written atomically
// (temp file + fsync + rename); the manifest is written last, so a
// partial write never yields an openable but incomplete set. It returns
// the paths of all files written (images first, manifest last).
func (db *DB) WriteShards(path string, k int) ([]string, error) {
	m := db.mem()
	if m == nil {
		return nil, fmt.Errorf("sparqluo: WriteShards on an already sharded database")
	}
	if m.Stats() == nil {
		return nil, fmt.Errorf("sparqluo: DB must be frozen before writing shards (call Freeze)")
	}
	return snapshot.WriteShards(path, m, k)
}

// OpenSnapshot opens a snapshot image previously produced by
// WriteSnapshot, memory-mapping it where the platform allows. The
// returned database is frozen (read-only) by construction and ready
// for concurrent queries immediately; its indexes are zero-copy views
// of the mapped file. Call Close when done with it to release the
// mapping — and not before: results hold term strings that point into
// the mapped region.
func OpenSnapshot(path string) (*DB, error) {
	st, m, err := snapshot.Open(path)
	if err != nil {
		return nil, err
	}
	return &DB{st: st, mappings: []*snapshot.Mapping{m}}, nil
}

// OpenShards opens a sharded snapshot set from its manifest at path,
// memory-mapping every shard image in parallel. The returned database
// is frozen and serves queries by scattering index scans across the
// shards and gathering the per-shard results in deterministic global
// order, so results are byte-identical to a single-store database over
// the same data. Call Close to release all mappings.
func OpenShards(path string) (*DB, error) {
	sh, ms, _, err := snapshot.OpenShards(path)
	if err != nil {
		return nil, err
	}
	return &DB{st: sh, mappings: ms}, nil
}

// IsShardManifest reports whether the file at path is a shard manifest
// written by WriteShards, by its leading magic bytes.
func IsShardManifest(path string) (bool, error) {
	return snapshot.SniffManifest(path)
}

// IsSnapshot reports whether the file at path is a snapshot image, by
// its leading magic bytes. Use it to auto-detect snapshot images versus
// N-Triples text when both are accepted from one flag or config key.
func IsSnapshot(path string) (bool, error) {
	return snapshot.Sniff(path)
}

// OpenFile opens path as a shard manifest (all images memory-mapped,
// see OpenShards), a snapshot image (memory-mapped, see OpenSnapshot)
// or an N-Triples document (parsed, indexed and frozen), auto-detected
// by leading magic bytes. The returned database is frozen and ready for
// concurrent queries; source is "shards", "snapshot" or "ntriples", for
// startup logging. Both CLIs and the server accept data files through
// this one path.
func OpenFile(path string) (db *DB, source string, err error) {
	isManifest, err := IsShardManifest(path)
	if err != nil {
		return nil, "", err
	}
	if isManifest {
		db, err = OpenShards(path)
		if err != nil {
			return nil, "", err
		}
		return db, "shards", nil
	}
	isSnap, err := IsSnapshot(path)
	if err != nil {
		return nil, "", err
	}
	if isSnap {
		db, err = OpenSnapshot(path)
		if err != nil {
			return nil, "", err
		}
		return db, "snapshot", nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	db = Open()
	if err := db.Load(f); err != nil {
		return nil, "", fmt.Errorf("sparqluo: loading %s: %w", path, err)
	}
	if err := db.Freeze(); err != nil {
		return nil, "", fmt.Errorf("sparqluo: freezing %s: %w", path, err)
	}
	return db, "ntriples", nil
}

// Close releases any file mappings backing the database and, if a
// write-ahead log is attached, fsyncs and closes it. It is a no-op
// (and nil error) for databases built in memory with Open. After Close,
// the database — and any Results obtained from it — must not be used.
func (db *DB) Close() error {
	ms := db.mappings
	db.mappings = nil
	var first error
	if w := db.wal; w != nil {
		db.wal = nil
		if err := w.Close(); err != nil {
			first = err
		}
	}
	for _, m := range ms {
		if err := m.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
