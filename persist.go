package sparqluo

import (
	"fmt"
	"os"

	"sparqluo/internal/snapshot"
)

// WriteSnapshot serializes the frozen database as a binary snapshot
// image at path (written atomically via a temp file + rename). The
// image can be reopened with OpenSnapshot in time independent of the
// dataset's parse-and-sort cost — the intended cold-start path for
// servers and shard spawns. The database must be frozen first.
//
// Snapshots are a cache, not an archival format: a build only reads the
// format version it writes, so regenerate images from the source data
// after upgrading. See internal/snapshot for the format and its
// integrity model.
func (db *DB) WriteSnapshot(path string) error {
	if db.st.Stats() == nil {
		return fmt.Errorf("sparqluo: DB must be frozen before writing a snapshot (call Freeze)")
	}
	return snapshot.WriteFile(path, db.st)
}

// OpenSnapshot opens a snapshot image previously produced by
// WriteSnapshot, memory-mapping it where the platform allows. The
// returned database is frozen (read-only) by construction and ready
// for concurrent queries immediately; its indexes are zero-copy views
// of the mapped file. Call Close when done with it to release the
// mapping — and not before: results hold term strings that point into
// the mapped region.
func OpenSnapshot(path string) (*DB, error) {
	st, m, err := snapshot.Open(path)
	if err != nil {
		return nil, err
	}
	return &DB{st: st, mapping: m}, nil
}

// IsSnapshot reports whether the file at path is a snapshot image, by
// its leading magic bytes. Use it to auto-detect snapshot images versus
// N-Triples text when both are accepted from one flag or config key.
func IsSnapshot(path string) (bool, error) {
	return snapshot.Sniff(path)
}

// OpenFile opens path as either a snapshot image (memory-mapped, see
// OpenSnapshot) or an N-Triples document (parsed, indexed and frozen),
// auto-detected by the snapshot magic. The returned database is frozen
// and ready for concurrent queries; source is "snapshot" or "ntriples",
// for startup logging. Both CLIs and the server accept data files
// through this one path.
func OpenFile(path string) (db *DB, source string, err error) {
	isSnap, err := IsSnapshot(path)
	if err != nil {
		return nil, "", err
	}
	if isSnap {
		db, err = OpenSnapshot(path)
		if err != nil {
			return nil, "", err
		}
		return db, "snapshot", nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	db = Open()
	if err := db.Load(f); err != nil {
		return nil, "", fmt.Errorf("sparqluo: loading %s: %w", path, err)
	}
	db.Freeze()
	return db, "ntriples", nil
}

// Close releases any file mapping backing the database. It is a no-op
// (and nil error) for databases built in memory with Open. After Close,
// the database — and any Results obtained from it — must not be used.
func (db *DB) Close() error {
	m := db.mapping
	db.mapping = nil
	return m.Close()
}
