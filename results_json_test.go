package sparqluo_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sparqluo"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files with current output")

// goldenDB builds a small fixed dataset exercising every term kind the
// JSON serializer distinguishes (IRIs, plain/lang/typed literals) plus
// UNION and OPTIONAL structure. Triples are added in a fixed order so
// the solution ordering is reproducible.
func goldenDB() *sparqluo.DB {
	db := sparqluo.Open()
	iri := sparqluo.NewIRI
	db.AddAll([]sparqluo.Triple{
		{S: iri("http://g/alice"), P: iri("http://g/name"), O: sparqluo.NewLiteral("Alice")},
		{S: iri("http://g/alice"), P: iri("http://g/role"), O: sparqluo.NewLangLiteral("chercheuse", "fr")},
		{S: iri("http://g/alice"), P: iri("http://g/age"), O: sparqluo.NewTypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer")},
		{S: iri("http://g/bob"), P: iri("http://g/name"), O: sparqluo.NewLiteral("Bob")},
		{S: iri("http://g/bob"), P: iri("http://g/knows"), O: iri("http://g/alice")},
		{S: iri("http://g/carol"), P: iri("http://g/name"), O: sparqluo.NewLiteral("Carol")},
		{S: iri("http://g/carol"), P: iri("http://g/knows"), O: iri("http://g/bob")},
		{S: iri("http://g/carol"), P: iri("http://g/knows"), O: iri("http://g/alice")},
	})
	db.Freeze()
	return db
}

// goldenQuery mixes UNION and OPTIONAL so the parallel fan-out paths
// contribute rows whose order the merge must keep stable.
const goldenQuery = `
	PREFIX g: <http://g/>
	SELECT ?s ?name ?o ?role ?age WHERE {
		?s g:name ?name
		{ ?s g:knows ?o } UNION { ?o g:knows ?s }
		OPTIONAL { ?s g:role ?role }
		OPTIONAL { ?s g:age ?age }
	}`

// TestWriteJSONGolden locks the W3C JSON serialization byte-for-byte
// against testdata/results_golden.json, under maximum parallelism: any
// nondeterminism the worker pool introduced in solution ordering (or
// any serializer drift) fails the comparison. Refresh the file with
// go test -run TestWriteJSONGolden -update-golden.
func TestWriteJSONGolden(t *testing.T) {
	db := goldenDB()
	golden := filepath.Join("testdata", "results_golden.json")
	for _, par := range []int{1, 8} {
		res, err := db.Query(goldenQuery, sparqluo.WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := res.WriteJSON(&sb); err != nil {
			t.Fatal(err)
		}
		if par == 1 && *updateGolden {
			if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(golden, []byte(sb.String()), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatal(err)
		}
		if sb.String() != string(want) {
			t.Errorf("parallelism=%d: JSON output diverged from golden file\ngot:  %s\nwant: %s",
				par, sb.String(), want)
		}
	}
}
