// Command benchjson emits the PR perf-tracking table as machine-readable
// JSON: the join micro-benchmarks (merge vs hash vs sort+merge physical
// operators) and the Fig10 query workload (both engines, all strategies,
// both datasets). The output file is committed per PR (BENCH_5.json,
// BENCH_6.json, ...) so the perf trajectory of the hot paths is
// diffable across the repo's history:
//
//	benchjson -out BENCH_5.json          # full run
//	benchjson -reps 1                    # CI smoke (stdout)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"sparqluo/internal/algebra"
	"sparqluo/internal/bench"
	"sparqluo/internal/benchbags"
	"sparqluo/internal/core"
)

// Micro is one micro-benchmark record.
type Micro struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// WorkloadRow is one (query, engine, strategy) measurement of the Fig10
// workload.
type WorkloadRow struct {
	Query      string  `json:"query"`
	Dataset    string  `json:"dataset"`
	Engine     string  `json:"engine"`
	Strategy   string  `json:"strategy"`
	Results    int     `json:"results"`
	ExecMs     float64 `json:"exec_ms"`
	ParallelMs float64 `json:"parallel_ms"`
	PreparedMs float64 `json:"prepared_ms"`
}

// Report is the top-level JSON document.
type Report struct {
	Micro    []Micro       `json:"microbench"`
	Workload []WorkloadRow `json:"workload"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	reps := flag.Int("reps", 3, "repetitions per workload measurement")
	flag.Parse()

	rep := Report{}
	rep.Micro = microBench()
	w, err := workload(*reps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	rep.Workload = w

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %s (%d micro, %d workload rows)\n",
		*out, len(rep.Micro), len(rep.Workload))
}

func microBench() []Micro {
	run := func(name string, f func(b *testing.B)) Micro {
		r := testing.Benchmark(f)
		return Micro{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}
	const n, fanout = 10000, 4
	return []Micro{
		run("JoinMerge/n=10000", func(b *testing.B) {
			x, y := benchbags.JoinPair(n, fanout, true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				algebra.JoinCancel(x, y, nil)
			}
		}),
		run("JoinHash/n=10000", func(b *testing.B) {
			x, y := benchbags.JoinPair(n, fanout, false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				algebra.JoinCancel(x, y, nil)
			}
		}),
		run("JoinSortMerge/n=10000", func(b *testing.B) {
			x, y := benchbags.JoinPair(n, fanout, true)
			y.Order = nil
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				algebra.JoinCancel(x, y, nil)
			}
		}),
		run("LeftJoinMerge/n=10000", func(b *testing.B) {
			x, y := benchbags.JoinPair(n, fanout, true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				algebra.LeftJoinCancel(x, y, nil)
			}
		}),
		run("LeftJoinHash/n=10000", func(b *testing.B) {
			x, y := benchbags.JoinPair(n, fanout, false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				algebra.LeftJoinCancel(x, y, nil)
			}
		}),
		// The top-k family (make bench-topk): a full stable sort vs the
		// bounded heap keeping 20 rows, and the streaming merge join with
		// and without a 20-row output cap.
		run("TopKSortFull/n=100000", func(b *testing.B) {
			in := benchbags.SortInput(100000)
			keys := []algebra.SortKey{{Col: 0}}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				algebra.SortByKeys(in, keys)
			}
		}),
		run("TopKHeap/n=100000,k=20", func(b *testing.B) {
			in := benchbags.SortInput(100000)
			keys := []algebra.SortKey{{Col: 0}}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				algebra.TopK(in, keys, 20)
			}
		}),
		run("JoinMergeTop/n=10000,k=20", func(b *testing.B) {
			x, y := benchbags.JoinPair(n, fanout, true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				algebra.JoinWith(x, y, algebra.JoinOpts{Max: 20})
			}
		}),
	}
}

func workload(reps int) ([]WorkloadRow, error) {
	bench.Reps = reps
	var rows []WorkloadRow
	for _, engine := range bench.Engines {
		for _, dataset := range []string{"LUBM", "DBpedia"} {
			st := bench.StoreFor(dataset)
			for _, q := range bench.Group1(dataset) {
				for _, strat := range core.Strategies {
					m, err := bench.RunOne(st, q, engine, strat)
					if err != nil {
						return nil, err
					}
					rows = append(rows, WorkloadRow{
						Query:      m.Query,
						Dataset:    m.Dataset,
						Engine:     m.Engine,
						Strategy:   m.Strategy,
						Results:    m.Results,
						ExecMs:     ms(m.ExecTime),
						ParallelMs: ms(m.Parallel),
						PreparedMs: ms(m.Prepared),
					})
				}
			}
		}
	}
	return rows, nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
