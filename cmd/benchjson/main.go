// Command benchjson emits the PR perf-tracking table as machine-readable
// JSON: the join micro-benchmarks (merge vs hash vs sort+merge physical
// operators), the Fig10 query workload (both engines, all strategies,
// both datasets), shard scaling, the live-ingest workload (write rate
// with a concurrent reader, read latency under ingest, compaction
// cost), and the compaction-fold comparison (full re-sort rebuild vs
// linear merge at several base:delta ratios). The output file is
// committed per PR (BENCH_5.json,
// BENCH_6.json, ...) so the perf trajectory of the hot paths is
// diffable across the repo's history:
//
//	benchjson -out BENCH_5.json          # full run
//	benchjson -reps 1                    # CI smoke (stdout)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"sparqluo/internal/algebra"
	"sparqluo/internal/bench"
	"sparqluo/internal/benchbags"
	"sparqluo/internal/core"
	"sparqluo/internal/sparql"
	"sparqluo/internal/store"
	"sparqluo/internal/wal"
)

// Micro is one micro-benchmark record.
type Micro struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// WorkloadRow is one (query, engine, strategy) measurement of the Fig10
// workload.
type WorkloadRow struct {
	Query      string  `json:"query"`
	Dataset    string  `json:"dataset"`
	Engine     string  `json:"engine"`
	Strategy   string  `json:"strategy"`
	Results    int     `json:"results"`
	ExecMs     float64 `json:"exec_ms"`
	ParallelMs float64 `json:"parallel_ms"`
	PreparedMs float64 `json:"prepared_ms"`
}

// ShardRow is one (query, shard count) measurement of the Fig10
// workload through a range-partitioned sharded store with the parallel
// evaluator. k=1 exercises the sharded code path with a single shard,
// so its delta against the workload table is the wrapper's overhead.
// Scatter sizes its worker pool off GOMAXPROCS at call time (fully
// inline on a single processor), so the k>1 speedup column only moves
// on hosts with spare cores.
type ShardRow struct {
	Query    string  `json:"query"`
	Dataset  string  `json:"dataset"`
	Engine   string  `json:"engine"`
	Shards   int     `json:"shards"`
	Results  int     `json:"results"`
	PlainMs  float64 `json:"plain_ms"`
	ExecMs   float64 `json:"exec_ms"`
	SpeedupX float64 `json:"speedup_vs_k1"`
}

// UpdateRow is one run of the live-ingest workload: sustained write
// rate with a concurrent reader, the reader's latency distribution
// under ingest, and the cost of the closing compaction (fold time plus
// the largest reader-observed stall across the base swap).
type UpdateRow struct {
	Dataset     string  `json:"dataset"`
	BaseTriples int     `json:"base_triples"`
	Inserted    int     `json:"inserted"`
	Deleted     int     `json:"deleted"`
	Batch       int     `json:"batch"`
	IngestRate  float64 `json:"ingest_triples_per_s"`
	Reads       int     `json:"reads_under_ingest"`
	ReadP50Ms   float64 `json:"read_p50_ms"`
	ReadP99Ms   float64 `json:"read_p99_ms"`
	ReadMaxMs   float64 `json:"read_max_ms"`
	CompactMs   float64 `json:"compact_ms"`
	SwapPauseMs float64 `json:"swap_pause_ms"`
}

// WALRow is one run of the wal_durability workload: acknowledged write
// throughput and per-batch ack latency with the write-ahead journal
// attached under one sync policy, plus recovery-replay speed for the
// log the run produced (normalized per 100k triples). The delta between
// the always and never rows is the fsync tax group commit has to pay;
// the delta between never and the live_update table is the journal's
// framing overhead.
type WALRow struct {
	Sync          string  `json:"sync"`
	Batch         int     `json:"batch"`
	Batches       int     `json:"batches"`
	Triples       int     `json:"triples"`
	IngestRate    float64 `json:"ingest_triples_per_s"`
	WriteP50Ms    float64 `json:"write_p50_ms"`
	WriteP99Ms    float64 `json:"write_p99_ms"`
	WriteMaxMs    float64 `json:"write_max_ms"`
	Syncs         uint64  `json:"fsyncs"`
	WALBytes      int64   `json:"wal_bytes"`
	ReplaySeconds float64 `json:"replay_s"`
	ReplayPer100k float64 `json:"replay_s_per_100k"`
}

// FoldRow is one base:delta ratio of the compaction-fold comparison:
// the same delta folded into the same frozen base by the pre-fold
// full rebuild (tombstone hash filter + append + FromTriples re-sort
// of everything) versus the linear merge fold (store.MergeFold). The
// two outputs are verified byte-identical before either time is
// reported, so speedup_x is a pure algorithmic delta.
type FoldRow struct {
	BaseTriples int     `json:"base_triples"`
	Adds        int     `json:"adds"`
	Dels        int     `json:"dels"`
	Ratio       int     `json:"base_to_delta_ratio"`
	ResortMs    float64 `json:"resort_ms"`
	MergeMs     float64 `json:"merge_ms"`
	SpeedupX    float64 `json:"speedup_x"`
}

// Report is the top-level JSON document.
type Report struct {
	Micro    []Micro       `json:"microbench"`
	Workload []WorkloadRow `json:"workload"`
	Shard    []ShardRow    `json:"shard_scaling"`
	Update   []UpdateRow   `json:"live_update"`
	Fold     []FoldRow     `json:"compaction_fold"`
	WAL      []WALRow      `json:"wal_durability"`
	NumCPU   int           `json:"num_cpu"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	reps := flag.Int("reps", 3, "repetitions per workload measurement")
	flag.Parse()

	rep := Report{NumCPU: runtime.NumCPU()}
	rep.Micro = microBench()
	w, err := workload(*reps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	rep.Workload = w
	s, err := shardScaling(*reps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	rep.Shard = s
	u, err := liveUpdate(*reps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	rep.Update = u
	f, err := compactionFold(*reps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	rep.Fold = f
	wd, err := walDurability(*reps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	rep.WAL = wd

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %s (%d micro, %d workload rows)\n",
		*out, len(rep.Micro), len(rep.Workload))
}

func microBench() []Micro {
	run := func(name string, f func(b *testing.B)) Micro {
		r := testing.Benchmark(f)
		return Micro{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}
	const n, fanout = 10000, 4
	return []Micro{
		run("JoinMerge/n=10000", func(b *testing.B) {
			x, y := benchbags.JoinPair(n, fanout, true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				algebra.JoinCancel(x, y, nil)
			}
		}),
		run("JoinHash/n=10000", func(b *testing.B) {
			x, y := benchbags.JoinPair(n, fanout, false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				algebra.JoinCancel(x, y, nil)
			}
		}),
		run("JoinSortMerge/n=10000", func(b *testing.B) {
			x, y := benchbags.JoinPair(n, fanout, true)
			y.Order = nil
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				algebra.JoinCancel(x, y, nil)
			}
		}),
		run("LeftJoinMerge/n=10000", func(b *testing.B) {
			x, y := benchbags.JoinPair(n, fanout, true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				algebra.LeftJoinCancel(x, y, nil)
			}
		}),
		run("LeftJoinHash/n=10000", func(b *testing.B) {
			x, y := benchbags.JoinPair(n, fanout, false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				algebra.LeftJoinCancel(x, y, nil)
			}
		}),
		// The top-k family (make bench-topk): a full stable sort vs the
		// bounded heap keeping 20 rows, and the streaming merge join with
		// and without a 20-row output cap.
		run("TopKSortFull/n=100000", func(b *testing.B) {
			in := benchbags.SortInput(100000)
			keys := []algebra.SortKey{{Col: 0}}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				algebra.SortByKeys(in, keys)
			}
		}),
		run("TopKHeap/n=100000,k=20", func(b *testing.B) {
			in := benchbags.SortInput(100000)
			keys := []algebra.SortKey{{Col: 0}}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				algebra.TopK(in, keys, 20)
			}
		}),
		run("JoinMergeTop/n=10000,k=20", func(b *testing.B) {
			x, y := benchbags.JoinPair(n, fanout, true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				algebra.JoinWith(x, y, algebra.JoinOpts{Max: 20})
			}
		}),
	}
}

func workload(reps int) ([]WorkloadRow, error) {
	bench.Reps = reps
	var rows []WorkloadRow
	for _, engine := range bench.Engines {
		for _, dataset := range []string{"LUBM", "DBpedia"} {
			st := bench.StoreFor(dataset)
			for _, q := range bench.Group1(dataset) {
				for _, strat := range core.Strategies {
					m, err := bench.RunOne(st, q, engine, strat)
					if err != nil {
						return nil, err
					}
					rows = append(rows, WorkloadRow{
						Query:      m.Query,
						Dataset:    m.Dataset,
						Engine:     m.Engine,
						Strategy:   m.Strategy,
						Results:    m.Results,
						ExecMs:     ms(m.ExecTime),
						ParallelMs: ms(m.Parallel),
						PreparedMs: ms(m.Prepared),
					})
				}
			}
		}
	}
	return rows, nil
}

// shardScaling times the Fig10 workload through 1-, 2- and 4-way
// sharded stores with the parallel evaluator (min of reps runs), and
// derives the speedup of each shard count over k=1 per query. An
// unsharded baseline (plain_ms) is measured interleaved with the shard
// runs, so the k=1 wrapper overhead is read off the same table under
// identical conditions. Result counts are cross-checked against the
// single store so the numbers can never come from a shard that dropped
// rows.
func shardScaling(reps int) ([]ShardRow, error) {
	var rows []ShardRow
	engine := bench.Engines[0]
	for _, dataset := range []string{"LUBM", "DBpedia"} {
		st := bench.StoreFor(dataset)
		for _, q := range bench.Group1(dataset) {
			parsed, err := sparql.Parse(q.Text)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", q.ID, err)
			}
			ref, err := core.Run(parsed, st, engine, core.Full)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", q.ID, err)
			}
			measure := func(rd store.Reader, label string) (time.Duration, int, error) {
				runtime.GC() // the shard copies are big; keep GC out of the timed region
				var best time.Duration
				var results int
				for rep := 0; rep < reps; rep++ {
					res, err := core.RunContext(context.Background(), parsed, rd,
						engine, core.Full, core.ExecOptions{Parallelism: 0})
					if err != nil {
						return 0, 0, fmt.Errorf("%s %s: %w", q.ID, label, err)
					}
					if res.Bag.Len() != ref.Bag.Len() {
						return 0, 0, fmt.Errorf("%s %s: %d results, single store %d",
							q.ID, label, res.Bag.Len(), ref.Bag.Len())
					}
					results = res.Bag.Len()
					if rep == 0 || res.ExecTime < best {
						best = res.ExecTime
					}
				}
				return best, results, nil
			}
			plain, _, err := measure(st, "plain")
			if err != nil {
				return nil, err
			}
			var k1 time.Duration
			for _, k := range []int{1, 2, 4} {
				rd, err := bench.Sharded(st, k)
				if err != nil {
					return nil, fmt.Errorf("%s k=%d: %w", q.ID, k, err)
				}
				best, results, err := measure(rd, fmt.Sprintf("k=%d", k))
				if err != nil {
					return nil, err
				}
				if k == 1 {
					k1 = best
				}
				speedup := 0.0
				if best > 0 {
					speedup = float64(k1) / float64(best)
				}
				rows = append(rows, ShardRow{
					Query:    q.ID,
					Dataset:  dataset,
					Engine:   engine.Name(),
					Shards:   k,
					Results:  results,
					PlainMs:  ms(plain),
					ExecMs:   ms(best),
					SpeedupX: speedup,
				})
			}
		}
	}
	return rows, nil
}

// liveUpdate runs the live-ingest workload reps times and keeps the run
// with the highest sustained ingest rate (the latency percentiles come
// from the same run, so rate and latency always describe one execution).
func liveUpdate(reps int) ([]UpdateRow, error) {
	var best bench.UpdateResult
	for rep := 0; rep < reps; rep++ {
		r, err := bench.RunUpdateWorkload(8, 5, 256)
		if err != nil {
			return nil, err
		}
		if rep == 0 || r.IngestRate > best.IngestRate {
			best = r
		}
	}
	return []UpdateRow{{
		Dataset:     best.Dataset,
		BaseTriples: best.BaseTriples,
		Inserted:    best.Inserted,
		Deleted:     best.Deleted,
		Batch:       best.Batch,
		IngestRate:  best.IngestRate,
		Reads:       best.Reads,
		ReadP50Ms:   ms(best.ReadP50),
		ReadP99Ms:   ms(best.ReadP99),
		ReadMaxMs:   ms(best.ReadMax),
		CompactMs:   ms(best.CompactTime),
		SwapPauseMs: ms(best.SwapPause),
	}}, nil
}

// compactionFold times the compaction fold (full re-sort rebuild vs
// linear merge) at several base:delta ratios — 4:1 is a memtable let
// grow to a quarter of the base, 256:1 a frequent small fold; the
// merge advantage should widen with the ratio because only the delta
// is ever sorted.
func compactionFold(reps int) ([]FoldRow, error) {
	results, err := bench.RunCompactionFold(8, []int{4, 16, 64, 256}, reps)
	if err != nil {
		return nil, err
	}
	rows := make([]FoldRow, 0, len(results))
	for _, r := range results {
		rows = append(rows, FoldRow{
			BaseTriples: r.BaseTriples,
			Adds:        r.Adds,
			Dels:        r.Dels,
			Ratio:       r.Ratio,
			ResortMs:    ms(r.Resort),
			MergeMs:     ms(r.Merge),
			SpeedupX:    r.Speedup,
		})
	}
	return rows, nil
}

// walDurability runs the journaled-ingest workload under every sync
// policy, keeping the best-rate run per policy (latency percentiles
// come from the same run).
func walDurability(reps int) ([]WALRow, error) {
	var rows []WALRow
	for _, policy := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncInterval, wal.SyncNever} {
		var best bench.WALResult
		for rep := 0; rep < reps; rep++ {
			r, err := bench.RunWALDurability(policy, 5, 256)
			if err != nil {
				return nil, err
			}
			if rep == 0 || r.IngestRate > best.IngestRate {
				best = r
			}
		}
		rows = append(rows, WALRow{
			Sync:          best.Sync,
			Batch:         best.Batch,
			Batches:       best.Batches,
			Triples:       best.Triples,
			IngestRate:    best.IngestRate,
			WriteP50Ms:    ms(best.WriteP50),
			WriteP99Ms:    ms(best.WriteP99),
			WriteMaxMs:    ms(best.WriteMax),
			Syncs:         best.Syncs,
			WALBytes:      best.WALBytes,
			ReplaySeconds: best.ReplaySeconds,
			ReplayPer100k: best.ReplayPer100k,
		})
	}
	return rows, nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
