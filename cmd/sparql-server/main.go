// Command sparql-server serves an N-Triples dataset as a minimal SPARQL
// endpoint:
//
//	sparql-server -data graph.nt -addr :8085 -timeout 30s -max-inflight 64
//
// then:
//
//	curl 'http://localhost:8085/sparql?query=SELECT+*+WHERE+{?s+?p+?o}+LIMIT+5'
//	curl 'http://localhost:8085/stats'
//
// -timeout caps each query's wall-clock time (504 on expiry), -max-inflight
// bounds concurrently evaluating queries (503 when saturated), and
// -parallelism sizes each query's evaluation worker pool (0 = GOMAXPROCS).
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"sparqluo"
)

func main() {
	var (
		dataPath    = flag.String("data", "", "N-Triples data file (required)")
		addr        = flag.String("addr", ":8085", "listen address")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-query timeout (0 = none)")
		maxInFlight = flag.Int("max-inflight", 64, "max concurrently evaluating queries (0 = unlimited)")
		parallelism = flag.Int("parallelism", 0, "per-query evaluation worker pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *dataPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	db := sparqluo.Open()
	f, err := os.Open(*dataPath)
	if err != nil {
		fatal(err)
	}
	if err := db.Load(f); err != nil {
		fatal(err)
	}
	f.Close()
	db.Freeze()
	fmt.Printf("sparql-server: loaded %d triples, listening on %s (timeout=%v max-inflight=%d)\n",
		db.NumTriples(), *addr, *timeout, *maxInFlight)

	handler := sparqluo.NewHandler(db,
		sparqluo.WithQueryTimeout(*timeout),
		sparqluo.WithMaxInFlight(*maxInFlight),
		sparqluo.WithHandlerParallelism(*parallelism),
	)
	if err := http.ListenAndServe(*addr, handler); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sparql-server:", err)
	os.Exit(1)
}
