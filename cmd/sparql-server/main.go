// Command sparql-server serves a dataset as a minimal SPARQL endpoint:
//
//	sparql-server -data graph.nt -addr :8085 -timeout 30s -max-inflight 64
//
// then:
//
//	curl 'http://localhost:8085/sparql?query=SELECT+*+WHERE+{?s+?p+?o}+LIMIT+5'
//	curl 'http://localhost:8085/stats'
//	curl 'http://localhost:8085/healthz'
//
// -data accepts an N-Triples document, a binary snapshot image written
// by `datagen -snapshot` / DB.WriteSnapshot, or a shard manifest
// written by `datagen -shards k` / DB.WriteShards — told apart by
// leading magic bytes. N-Triples are parsed and indexed at boot
// (O(n log n)); a snapshot or shard set is memory-mapped and served
// immediately, the intended cold-start path for production replicas. A
// sharded set scatters index scans across the shards in parallel and
// gathers results in deterministic global order, so responses are
// byte-identical to a single-store server. Startup logs report which
// path ran and how long it took.
//
// -timeout caps each query's wall-clock time (504 on expiry), -max-inflight
// bounds concurrently evaluating queries (503 when saturated), and
// -parallelism sizes each query's evaluation worker pool (0 = GOMAXPROCS).
// -plan-cache sizes the per-server LRU of prepared query plans: repeated
// queries skip parsing and plan construction, and every response reports
// X-Plan-Cache: hit|miss.
//
// -live enables live updates: POST /update accepts N-Triples
// insert/delete batches while queries keep serving (each query pinned
// to one epoch), and a background compactor folds the memtable into
// the frozen base every -compact-interval or once -compact-threshold
// pending operations accumulate. -compact-snapshot persists each
// compacted base atomically to the given path (a crash mid-compaction
// leaves the previous image intact); POST /compact forces a compaction.
// A sharded data file cannot be served live (write routing across
// shards is not implemented); the server refuses to start rather than
// silently dropping -live.
//
// -wal-dir adds a write-ahead log under -live: every accepted update is
// journaled before it is acknowledged, and on startup the server
// replays whatever the log holds — so a crash (even kill -9) loses no
// acknowledged write. -wal-sync picks the durability level: always
// (default; group-committed fsync before each ack, survives power
// loss), interval (background fsync every -wal-flush-interval), or
// never (page cache only — still survives a process crash, not an
// outage). With -compact-snapshot also set, restarts boot from the
// newest compacted image and replay only the tail of the log;
// compactions retire the journal segments their snapshot makes
// redundant, so the log stays short.
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"time"

	"sparqluo"
)

func main() {
	var (
		dataPath    = flag.String("data", "", "data file: N-Triples or snapshot image (required)")
		addr        = flag.String("addr", ":8085", "listen address")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-query timeout (0 = none)")
		maxInFlight = flag.Int("max-inflight", 64, "max concurrently evaluating queries (0 = unlimited)")
		parallelism = flag.Int("parallelism", 0, "per-query evaluation worker pool size (0 = GOMAXPROCS)")
		planCache   = flag.Int("plan-cache", 128, "LRU size of the prepared-plan cache (0 = disabled)")

		live             = flag.Bool("live", false, "enable live updates (POST /update) over the loaded data")
		compactInterval  = flag.Duration("compact-interval", 30*time.Second, "max time the memtable stays dirty before a background compaction")
		compactThreshold = flag.Int("compact-threshold", 10000, "pending ops that trigger an immediate background compaction")
		compactSnapshot  = flag.String("compact-snapshot", "", "persist each compacted base to this snapshot path (atomic)")
		walDir           = flag.String("wal-dir", "", "write-ahead log directory: journal every update before acking, replay it at startup (requires -live)")
		walSync          = flag.String("wal-sync", "always", "WAL durability policy: always (group-committed fsync per batch), interval, or never")
		walFlushEvery    = flag.Duration("wal-flush-interval", 100*time.Millisecond, "background fsync period under -wal-sync=interval")
	)
	flag.Parse()
	if *dataPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	log.SetPrefix("sparql-server: ")
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)

	syncPolicy, err := sparqluo.ParseWALSyncPolicy(*walSync)
	if err != nil {
		log.Fatal(err)
	}
	if *walDir != "" && !*live {
		log.Fatal("-wal-dir requires -live (a read-only server takes no writes to journal)")
	}

	// Crash recovery prefers the newest durable state: when a compaction
	// snapshot from a previous run exists, boot from it (the WAL then
	// replays only the batches it does not hold) instead of re-parsing
	// the original data file.
	bootPath := *dataPath
	if *live && *compactSnapshot != "" {
		if _, statErr := os.Stat(*compactSnapshot); statErr == nil {
			bootPath = *compactSnapshot
			log.Printf("recovering from compaction snapshot %s (ignoring -data %s)", bootPath, *dataPath)
		}
	}
	db, source, err := openData(bootPath)
	if err != nil {
		log.Fatal(err)
	}
	if *live {
		if err := db.EnableLiveUpdates(sparqluo.LiveOptions{
			SnapshotPath:     *compactSnapshot,
			WALDir:           *walDir,
			WALSync:          syncPolicy,
			WALFlushInterval: *walFlushEvery,
		}); err != nil {
			log.Fatal(err)
		}
		stop, err := db.StartCompaction(sparqluo.CompactionOptions{
			Interval:  *compactInterval,
			Threshold: *compactThreshold,
			OnError:   func(err error) { log.Printf("compaction: %v", err) },
		})
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
		log.Printf("live updates enabled (compact-interval=%v compact-threshold=%d snapshot=%q)",
			*compactInterval, *compactThreshold, *compactSnapshot)
		if *walDir != "" {
			rec, _ := db.Recovery()
			log.Printf("wal enabled (dir=%s sync=%s): replayed %d batches (%d inserts, %d deletes), truncated %d torn-tail bytes",
				*walDir, syncPolicy, rec.Batches, rec.Inserted, rec.Deleted, rec.TruncatedBytes)
		}
	}

	handler := sparqluo.NewHandler(db,
		sparqluo.WithQueryTimeout(*timeout),
		sparqluo.WithMaxInFlight(*maxInFlight),
		sparqluo.WithHandlerParallelism(*parallelism),
		sparqluo.WithPlanCache(*planCache),
	)
	log.Printf("listening on %s (source=%s timeout=%v max-inflight=%d parallelism=%d plan-cache=%d)",
		*addr, source, *timeout, *maxInFlight, *parallelism, *planCache)
	if err := http.ListenAndServe(*addr, handler); err != nil {
		log.Fatal(err)
	}
}

// openData loads the dataset from either a snapshot image or an
// N-Triples document, auto-detected by magic, and logs the cold-start
// timing so snapshot wins are visible in ops output.
func openData(path string) (*sparqluo.DB, string, error) {
	start := time.Now()
	db, source, err := sparqluo.OpenFile(path)
	if err != nil {
		return nil, "", err
	}
	verb := "parsed+froze"
	if source == "snapshot" || source == "shards" {
		verb = "mapped"
	}
	log.Printf("source=%s %s %s in %v (%d triples, %d shards)",
		source, verb, path, time.Since(start), db.NumTriples(), db.NumShards())
	log.Printf("store %s", db.MemStats())
	return db, source, nil
}
