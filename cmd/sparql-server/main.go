// Command sparql-server serves an N-Triples dataset as a minimal SPARQL
// endpoint:
//
//	sparql-server -data graph.nt -addr :8085
//
// then:
//
//	curl 'http://localhost:8085/sparql?query=SELECT+*+WHERE+{?s+?p+?o}+LIMIT+5'
//	curl 'http://localhost:8085/stats'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"sparqluo"
)

func main() {
	var (
		dataPath = flag.String("data", "", "N-Triples data file (required)")
		addr     = flag.String("addr", ":8085", "listen address")
	)
	flag.Parse()
	if *dataPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	db := sparqluo.Open()
	f, err := os.Open(*dataPath)
	if err != nil {
		fatal(err)
	}
	if err := db.Load(f); err != nil {
		fatal(err)
	}
	f.Close()
	db.Freeze()
	fmt.Printf("sparql-server: loaded %d triples, listening on %s\n", db.NumTriples(), *addr)

	if err := http.ListenAndServe(*addr, sparqluo.NewHandler(db)); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sparql-server:", err)
	os.Exit(1)
}
