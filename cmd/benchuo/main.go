// Command benchuo regenerates every table and figure of the paper's
// evaluation (§7) on the synthetic datasets:
//
//	benchuo -exp table2      # dataset statistics
//	benchuo -exp table3      # LUBM query statistics
//	benchuo -exp table4      # DBpedia query statistics
//	benchuo -exp fig10       # base/TT/CP/full verification (+ parallel and
//	                         # amortized prepared-execution columns for full)
//	benchuo -exp fig11       # execution time + join space
//	benchuo -exp fig12       # scalability of full on LUBM
//	benchuo -exp fig13       # comparison with LBR
//	benchuo -exp all         # everything (default)
package main

import (
	"flag"
	"fmt"
	"os"

	"sparqluo/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table2|table3|table4|fig10|fig11|fig12|fig13|all")
	flag.Parse()

	w := os.Stdout
	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "benchuo: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintln(w)
	}

	run("table2", func() error { bench.Table2(w); return nil })
	run("table3", func() error { return bench.QueryStats(w, "LUBM") })
	run("table4", func() error { return bench.QueryStats(w, "DBpedia") })
	run("fig10", func() error { return bench.Fig10(w) })
	run("fig11", func() error { return bench.Fig11(w) })
	run("fig12", func() error { return bench.Fig12(w) })
	run("fig13", func() error { return bench.Fig13(w) })
}
