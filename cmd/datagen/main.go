// Command datagen writes synthetic benchmark datasets as N-Triples:
//
//	datagen -dataset lubm -scale 13 -out lubm13.nt
//	datagen -dataset dbpedia -scale 12000 -out dbp.nt
//
// For LUBM the scale is the number of universities; for DBpedia-like data
// it is the number of encyclopedia articles.
package main

import (
	"flag"
	"fmt"
	"os"

	"sparqluo/internal/dbpedia"
	"sparqluo/internal/lubm"
	"sparqluo/internal/rdf"
	"sparqluo/internal/store"
)

func main() {
	var (
		dataset  = flag.String("dataset", "lubm", "lubm|dbpedia")
		scale    = flag.Int("scale", 13, "universities (lubm) or entities (dbpedia)")
		out      = flag.String("out", "", "output file (default stdout)")
		memStats = flag.Bool("stats", false, "also load+freeze a store and report index memory to stderr")
	)
	flag.Parse()

	var triples []rdf.Triple
	switch *dataset {
	case "lubm":
		triples = lubm.Generate(lubm.DefaultConfig(*scale))
	case "dbpedia":
		triples = dbpedia.Generate(dbpedia.DefaultConfig(*scale))
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := rdf.NewEncoder(w)
	for _, t := range triples {
		if err := enc.Encode(t); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
	}
	if err := enc.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d triples\n", len(triples))

	if *memStats {
		st := store.New()
		st.AddAll(triples)
		st.Freeze()
		fmt.Fprintf(os.Stderr, "datagen: store %s\n", st.MemStats())
	}
}
