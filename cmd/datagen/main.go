// Command datagen writes synthetic benchmark datasets as N-Triples:
//
//	datagen -dataset lubm -scale 13 -out lubm13.nt
//	datagen -dataset dbpedia -scale 12000 -out dbp.nt
//
// For LUBM the scale is the number of universities; for DBpedia-like data
// it is the number of encyclopedia articles.
//
// With -snapshot, datagen additionally loads the triples into a store,
// freezes it, and writes a binary snapshot image that sparql-server and
// sparql-uo can open directly (skipping parse and index build):
//
//	datagen -dataset lubm -scale 13 -snapshot lubm13.img
//
// With -shards k (k > 1), the snapshot is instead written as k
// subject-range shard images plus a CRC-checked manifest at the
// -snapshot path; sparql-server and sparql-uo open the manifest
// directly and serve the shards with parallel scatter-gather:
//
//	datagen -dataset lubm -scale 13 -snapshot lubm13.shards -shards 4
//
// -out and -snapshot may be combined to produce both representations of
// the same dataset in one run; with -snapshot alone, no N-Triples are
// written.
package main

import (
	"flag"
	"fmt"
	"os"

	"sparqluo/internal/dbpedia"
	"sparqluo/internal/lubm"
	"sparqluo/internal/rdf"
	"sparqluo/internal/snapshot"
	"sparqluo/internal/store"
)

func main() {
	var (
		dataset  = flag.String("dataset", "lubm", "lubm|dbpedia")
		scale    = flag.Int("scale", 13, "universities (lubm) or entities (dbpedia)")
		out      = flag.String("out", "", "N-Triples output file (default stdout; \"-\" forces stdout)")
		snapPath = flag.String("snapshot", "", "also write a binary snapshot image to this path")
		shards   = flag.Int("shards", 1, "with -snapshot: split into this many subject-range shard images plus a manifest")
		memStats = flag.Bool("stats", false, "also load+freeze a store and report index memory to stderr")
	)
	flag.Parse()

	var triples []rdf.Triple
	switch *dataset {
	case "lubm":
		triples = lubm.Generate(lubm.DefaultConfig(*scale))
	case "dbpedia":
		triples = dbpedia.Generate(dbpedia.DefaultConfig(*scale))
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	// Emit N-Triples unless the caller asked only for a snapshot image.
	if *out != "" || *snapPath == "" {
		w := os.Stdout
		if *out != "" && *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		enc := rdf.NewEncoder(w)
		for _, t := range triples {
			if err := enc.Encode(t); err != nil {
				fatal(err)
			}
		}
		if err := enc.Flush(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "datagen: wrote %d triples\n", len(triples))
	}

	if *snapPath != "" || *memStats {
		st := store.New()
		st.AddAll(triples)
		if err := st.Freeze(); err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		if *memStats {
			fmt.Fprintf(os.Stderr, "datagen: store %s\n", st.MemStats())
		}
		if *snapPath != "" && *shards > 1 {
			paths, err := snapshot.WriteShards(*snapPath, st, *shards)
			if err != nil {
				fatal(err)
			}
			var total int64
			for _, p := range paths {
				fi, err := os.Stat(p)
				if err != nil {
					fatal(err)
				}
				total += fi.Size()
			}
			fmt.Fprintf(os.Stderr, "datagen: wrote %d shard images + manifest %s (%d triples, %d bytes)\n",
				*shards, *snapPath, st.NumTriples(), total)
		} else if *snapPath != "" {
			if err := snapshot.WriteFile(*snapPath, st); err != nil {
				fatal(err)
			}
			fi, err := os.Stat(*snapPath)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "datagen: wrote snapshot %s (%d triples, %d bytes)\n",
				*snapPath, st.NumTriples(), fi.Size())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
