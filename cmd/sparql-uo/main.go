// Command sparql-uo loads a dataset and executes a SPARQL-UO query
// against it:
//
//	sparql-uo -data graph.nt -query query.rq [-strategy full] [-engine wco] [-explain] [-limit 20]
//
// -top and -offset apply an execution-time pagination window on top of
// the query text (WithLimit/WithOffset): -top caps how many solutions
// the engine computes — with early termination, not post-filtering —
// while -limit only caps how many of them are printed.
//
// The query may also be given inline with -q 'SELECT ...'. -data
// accepts either an N-Triples document or a binary snapshot image
// (written by `datagen -snapshot` or DB.WriteSnapshot), auto-detected
// by the image magic; snapshots skip parsing and index building.
//
// The query is prepared once (parse + BE-tree build) and then executed.
// -bind substitutes a ground term for a query variable at execution
// time, turning the query into a template:
//
//	sparql-uo -data g.nt -q 'SELECT ?y WHERE { ?x ub:advisor ?y }' \
//	    -bind 'x=<http://ex.org/Student4>'
//
// The value is an IRI in angle brackets or a (quoted or bare) literal.
// Solutions are streamed with the row cursor rather than materialized.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"sparqluo"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "N-Triples data file (required)")
		queryPath = flag.String("query", "", "file containing the SPARQL query")
		queryText = flag.String("q", "", "inline SPARQL query text")
		strategy  = flag.String("strategy", "full", "base|tt|cp|full")
		engine    = flag.String("engine", "wco", "wco|binary")
		explain   = flag.Bool("explain", false, "print the plan before/after transformation and exit")
		limit     = flag.Int("limit", 20, "maximum solutions to print (0 = all)")
		top       = flag.Int("top", -1, "execution-time LIMIT: cap computed solutions with early termination (-1 = none)")
		offset    = flag.Int("offset", 0, "execution-time OFFSET: skip this many solutions before returning rows")
	)
	var binds []sparqluo.Option
	flag.Func("bind", "execution-time parameter, var=<iri> or var=\"literal\" (repeatable)", func(v string) error {
		opt, err := parseBind(v)
		if err != nil {
			return err
		}
		binds = append(binds, opt)
		return nil
	})
	flag.Parse()

	if *dataPath == "" || (*queryPath == "" && *queryText == "") {
		flag.Usage()
		os.Exit(2)
	}
	text := *queryText
	if *queryPath != "" {
		b, err := os.ReadFile(*queryPath)
		if err != nil {
			fatal(err)
		}
		text = string(b)
	}

	db, _, err := sparqluo.OpenFile(*dataPath)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %d triples\n", db.NumTriples())

	opts := []sparqluo.Option{
		sparqluo.WithStrategy(parseStrategy(*strategy)),
		sparqluo.WithEngine(parseEngine(*engine)),
	}
	opts = append(opts, binds...)
	if *top >= 0 {
		opts = append(opts, sparqluo.WithLimit(*top))
	}
	if *offset > 0 {
		opts = append(opts, sparqluo.WithOffset(*offset))
	}

	prep, err := db.Prepare(text)
	if err != nil {
		fatal(err)
	}

	if *explain {
		before, after, err := prep.Explain(opts...)
		if err != nil {
			fatal(err)
		}
		fmt.Println("--- plan before transformation ---")
		fmt.Println(before)
		fmt.Println("--- plan after transformation ---")
		fmt.Println(after)
		return
	}

	res, err := prep.Exec(opts...)
	if err != nil {
		fatal(err)
	}
	defer res.Close()
	fmt.Printf("%d solutions in %v (transform %v, %d transformations, join space %.0f, rows pulled %d)\n",
		res.Len(), res.ExecTime(), res.TransformTime(), res.Transformations(), res.JoinSpace(), res.RowsPulled())
	// Print columns in sorted-name order for stable, diffable output.
	order := make([]int, len(res.Vars()))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return res.Vars()[order[a]] < res.Vars()[order[b]] })
	for i, row := range res.Rows() {
		if *limit > 0 && i >= *limit {
			fmt.Printf("... (%d more)\n", res.Len()-*limit)
			break
		}
		for _, ci := range order {
			if t, ok := row.Term(ci); ok {
				fmt.Printf("?%s=%s ", row.Var(ci), t)
			}
		}
		fmt.Println()
	}
}

// parseBind turns "var=<iri>", `var="literal"` or "var=bare" into a
// Bind option.
func parseBind(v string) (sparqluo.Option, error) {
	name, val, ok := strings.Cut(v, "=")
	if !ok || name == "" || val == "" {
		return nil, fmt.Errorf("want var=value, got %q", v)
	}
	var term sparqluo.Term
	switch {
	case strings.HasPrefix(val, "<") && strings.HasSuffix(val, ">"):
		term = sparqluo.NewIRI(val[1 : len(val)-1])
	case strings.HasPrefix(val, `"`) && strings.HasSuffix(val, `"`) && len(val) >= 2:
		term = sparqluo.NewLiteral(val[1 : len(val)-1])
	default:
		term = sparqluo.NewLiteral(val)
	}
	return sparqluo.Bind(name, term), nil
}

func parseStrategy(s string) sparqluo.Strategy {
	switch s {
	case "base":
		return sparqluo.Base
	case "tt":
		return sparqluo.TT
	case "cp":
		return sparqluo.CP
	case "full":
		return sparqluo.Full
	default:
		fatal(fmt.Errorf("unknown strategy %q", s))
		return sparqluo.Full
	}
}

func parseEngine(s string) sparqluo.Engine {
	switch s {
	case "wco":
		return sparqluo.WCO
	case "binary":
		return sparqluo.BinaryJoin
	default:
		fatal(fmt.Errorf("unknown engine %q", s))
		return sparqluo.WCO
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sparql-uo:", err)
	os.Exit(1)
}
