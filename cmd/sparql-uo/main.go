// Command sparql-uo loads a dataset and executes a SPARQL-UO query
// against it:
//
//	sparql-uo -data graph.nt -query query.rq [-strategy full] [-engine wco] [-explain] [-limit 20]
//
// The query may also be given inline with -q 'SELECT ...'. -data
// accepts either an N-Triples document or a binary snapshot image
// (written by `datagen -snapshot` or DB.WriteSnapshot), auto-detected
// by the image magic; snapshots skip parsing and index building.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"sparqluo"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "N-Triples data file (required)")
		queryPath = flag.String("query", "", "file containing the SPARQL query")
		queryText = flag.String("q", "", "inline SPARQL query text")
		strategy  = flag.String("strategy", "full", "base|tt|cp|full")
		engine    = flag.String("engine", "wco", "wco|binary")
		explain   = flag.Bool("explain", false, "print the plan before/after transformation and exit")
		limit     = flag.Int("limit", 20, "maximum solutions to print (0 = all)")
	)
	flag.Parse()

	if *dataPath == "" || (*queryPath == "" && *queryText == "") {
		flag.Usage()
		os.Exit(2)
	}
	text := *queryText
	if *queryPath != "" {
		b, err := os.ReadFile(*queryPath)
		if err != nil {
			fatal(err)
		}
		text = string(b)
	}

	db, _, err := sparqluo.OpenFile(*dataPath)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %d triples\n", db.NumTriples())

	opts := []sparqluo.Option{
		sparqluo.WithStrategy(parseStrategy(*strategy)),
		sparqluo.WithEngine(parseEngine(*engine)),
	}

	if *explain {
		before, after, err := db.Explain(text, opts...)
		if err != nil {
			fatal(err)
		}
		fmt.Println("--- plan before transformation ---")
		fmt.Println(before)
		fmt.Println("--- plan after transformation ---")
		fmt.Println(after)
		return
	}

	res, err := db.Query(text, opts...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d solutions in %v (transform %v, %d transformations, join space %.0f)\n",
		res.Len(), res.ExecTime(), res.TransformTime(), res.Transformations(), res.JoinSpace())
	for i, sol := range res.Solutions() {
		if *limit > 0 && i >= *limit {
			fmt.Printf("... (%d more)\n", res.Len()-*limit)
			break
		}
		names := make([]string, 0, len(sol))
		for name := range sol {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("?%s=%s ", name, sol[name])
		}
		fmt.Println()
	}
}

func parseStrategy(s string) sparqluo.Strategy {
	switch s {
	case "base":
		return sparqluo.Base
	case "tt":
		return sparqluo.TT
	case "cp":
		return sparqluo.CP
	case "full":
		return sparqluo.Full
	default:
		fatal(fmt.Errorf("unknown strategy %q", s))
		return sparqluo.Full
	}
}

func parseEngine(s string) sparqluo.Engine {
	switch s {
	case "wco":
		return sparqluo.WCO
	case "binary":
		return sparqluo.BinaryJoin
	default:
		fatal(fmt.Errorf("unknown engine %q", s))
		return sparqluo.WCO
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sparql-uo:", err)
	os.Exit(1)
}
