package sparqluo_test

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"sparqluo"
	"sparqluo/internal/lubm"
)

// TestPreparedConcurrentGoldenEquivalence extends the golden-JSON
// equivalence test to the prepared path: a single *Prepared is executed
// from N goroutines across both engines and all four strategies, and
// every execution must serialize byte-identically to a one-shot Query
// with the same options. The default combination is additionally pinned
// to the golden file, so prepared execution cannot drift from the
// serialization contract either.
func TestPreparedConcurrentGoldenEquivalence(t *testing.T) {
	db := goldenDB()
	prep, err := db.Prepare(goldenQuery)
	if err != nil {
		t.Fatal(err)
	}

	// One-shot reference documents, computed up front (single-threaded).
	type combo struct {
		strat sparqluo.Strategy
		eng   sparqluo.Engine
	}
	var combos []combo
	want := map[combo]string{}
	for _, strat := range []sparqluo.Strategy{sparqluo.Base, sparqluo.TT, sparqluo.CP, sparqluo.Full} {
		for _, eng := range []sparqluo.Engine{sparqluo.WCO, sparqluo.BinaryJoin} {
			c := combo{strat, eng}
			combos = append(combos, c)
			res, err := db.Query(goldenQuery, sparqluo.WithStrategy(strat), sparqluo.WithEngine(eng))
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			if err := res.WriteJSON(&sb); err != nil {
				t.Fatal(err)
			}
			want[c] = sb.String()
		}
	}

	const goroutinesPerCombo = 4
	var wg sync.WaitGroup
	errs := make(chan error, len(combos)*goroutinesPerCombo)
	for _, c := range combos {
		for g := 0; g < goroutinesPerCombo; g++ {
			wg.Add(1)
			go func(c combo) {
				defer wg.Done()
				res, err := prep.Exec(sparqluo.WithStrategy(c.strat), sparqluo.WithEngine(c.eng))
				if err != nil {
					errs <- err
					return
				}
				var sb strings.Builder
				if err := res.WriteJSON(&sb); err != nil {
					errs <- err
					return
				}
				if sb.String() != want[c] {
					errs <- fmt.Errorf("strategy %v engine %d: prepared JSON differs from one-shot", c.strat, c.eng)
				}
			}(c)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPreparedBindEquivalence checks Bind's substitution semantics: a
// prepared template executed with a parameter must return the same
// projected solutions as a one-shot query with the parameter inlined in
// the text, for several parameter values over one plan.
func TestPreparedBindEquivalence(t *testing.T) {
	db := sparqluo.Open()
	db.AddAll(lubm.Generate(lubm.DefaultConfig(2)))
	db.Freeze()

	const template = `
		PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
		SELECT ?dept ?name WHERE {
			?s ub:emailAddress ?email .
			?s ub:memberOf ?dept .
			OPTIONAL { ?dept ub:name ?name }
		}`
	prep, err := db.Prepare(template)
	if err != nil {
		t.Fatal(err)
	}

	emails := []string{
		"UndergraduateStudent0@Department0.University0.edu",
		"UndergraduateStudent1@Department1.University1.edu",
		"nobody@nowhere.example.org", // absent from the data: zero rows
	}
	for _, email := range emails {
		oneShot := strings.Replace(template, "?email", fmt.Sprintf("%q", email), 1)
		for _, eng := range []sparqluo.Engine{sparqluo.WCO, sparqluo.BinaryJoin} {
			ref, err := db.Query(oneShot, sparqluo.WithEngine(eng))
			if err != nil {
				t.Fatal(err)
			}
			var refJSON strings.Builder
			if err := ref.WriteJSON(&refJSON); err != nil {
				t.Fatal(err)
			}
			got, err := prep.Exec(sparqluo.WithEngine(eng),
				sparqluo.Bind("email", sparqluo.NewLiteral(email)))
			if err != nil {
				t.Fatal(err)
			}
			var gotJSON strings.Builder
			if err := got.WriteJSON(&gotJSON); err != nil {
				t.Fatal(err)
			}
			if gotJSON.String() != refJSON.String() {
				t.Errorf("email=%s engine=%d: bound execution differs from inlined text\ngot:  %s\nwant: %s",
					email, eng, gotJSON.String(), refJSON.String())
			}
		}
	}
}

// TestPreparedBindReportsParameter: a bound variable that is projected
// must appear bound to the parameter value in every row.
func TestPreparedBindReportsParameter(t *testing.T) {
	db := openTestDB(t)
	prep, err := db.Prepare(`PREFIX ex: <http://ex.org/> SELECT ?who ?name WHERE { ?who ex:name ?name }`)
	if err != nil {
		t.Fatal(err)
	}
	alice := sparqluo.NewIRI("http://ex.org/alice")
	res, err := prep.Exec(sparqluo.Bind("?who", alice))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("Len = %d, want 1", res.Len())
	}
	for _, row := range res.Rows() {
		who, ok := row.Term(0)
		if !ok || who != alice {
			t.Errorf("?who = %v (bound=%v), want the parameter %v", who, ok, alice)
		}
		if name, ok := row.Term(1); !ok || name.Value != "Alice" {
			t.Errorf("?name = %v (bound=%v)", name, ok)
		}
	}
}

// TestPreparedBindUnknownVar: binding a variable the query does not
// mention must fail loudly instead of silently returning the template
// results.
func TestPreparedBindUnknownVar(t *testing.T) {
	db := openTestDB(t)
	prep, err := db.Prepare(`PREFIX ex: <http://ex.org/> SELECT ?who WHERE { ?who ex:name ?n }`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = prep.Exec(sparqluo.Bind("nope", sparqluo.NewLiteral("x")))
	if err == nil || !strings.Contains(err.Error(), "no such variable") {
		t.Errorf("err = %v, want unknown-variable error", err)
	}
}

// TestPrepareRequiresFreeze mirrors the Query contract.
func TestPrepareRequiresFreeze(t *testing.T) {
	db := sparqluo.Open()
	if _, err := db.Prepare(`SELECT * WHERE { ?s ?p ?o }`); err == nil {
		t.Error("Prepare before Freeze should fail")
	}
}

// TestResultsSingleIteration locks down the cursor contract: exactly
// one of Rows/Solutions/WriteJSON consumes a Results; later attempts
// yield nothing and record ErrResultsConsumed, and Close is an
// idempotent early release.
func TestResultsSingleIteration(t *testing.T) {
	db := openTestDB(t)
	q := `PREFIX ex: <http://ex.org/> SELECT ?who ?name WHERE { ?who ex:name ?name }`

	t.Run("rows-twice", func(t *testing.T) {
		res, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for range res.Rows() {
			n++
		}
		if n != 2 {
			t.Fatalf("first iteration saw %d rows, want 2", n)
		}
		if res.Err() != nil {
			t.Fatalf("Err after first iteration = %v", res.Err())
		}
		for range res.Rows() {
			t.Error("second iteration yielded a row")
		}
		if !errors.Is(res.Err(), sparqluo.ErrResultsConsumed) {
			t.Errorf("Err = %v, want ErrResultsConsumed", res.Err())
		}
	})

	t.Run("writejson-then-solutions", func(t *testing.T) {
		res, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.WriteJSON(io.Discard); err != nil {
			t.Fatal(err)
		}
		if sols := res.Solutions(); len(sols) != 0 {
			t.Errorf("Solutions after WriteJSON returned %d rows", len(sols))
		}
		if !errors.Is(res.Err(), sparqluo.ErrResultsConsumed) {
			t.Errorf("Err = %v, want ErrResultsConsumed", res.Err())
		}
		if err := res.WriteJSON(io.Discard); !errors.Is(err, sparqluo.ErrResultsConsumed) {
			t.Errorf("second WriteJSON err = %v, want ErrResultsConsumed", err)
		}
	})

	t.Run("close", func(t *testing.T) {
		res, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Close(); err != nil {
			t.Fatal(err)
		}
		if err := res.Close(); err != nil { // idempotent
			t.Fatal(err)
		}
		for range res.Rows() {
			t.Error("iteration after Close yielded a row")
		}
		if !errors.Is(res.Err(), sparqluo.ErrResultsConsumed) {
			t.Errorf("Err = %v, want ErrResultsConsumed", res.Err())
		}
		// Metadata survives consumption.
		if res.Len() != 2 || len(res.Vars()) != 2 {
			t.Errorf("metadata after Close: Len=%d Vars=%v", res.Len(), res.Vars())
		}
	})

	t.Run("break-consumes", func(t *testing.T) {
		res, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		for range res.Rows() {
			break // early exit still consumes the cursor
		}
		for range res.Rows() {
			t.Error("iteration after break yielded a row")
		}
	})
}

// TestWriteJSONStreamingAllocs is the allocation-counting guard for the
// streaming encoder: serializing a result set must cost O(1)
// allocations per document, not O(rows) — i.e. no []Solution, no
// per-row maps, no per-value buffers. The test measures the delta
// between (query) and (query + WriteJSON) with AllocsPerRun and allows
// a small constant budget.
func TestWriteJSONStreamingAllocs(t *testing.T) {
	db := sparqluo.Open()
	db.AddAll(lubm.Generate(lubm.DefaultConfig(1)))
	db.Freeze()
	const q = `SELECT * WHERE { ?s ?p ?o }`

	res, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Len()
	if rows < 1000 {
		t.Fatalf("want a result set of at least 1000 rows, got %d", rows)
	}

	queryOnly := testing.AllocsPerRun(5, func() {
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	})
	queryAndWrite := testing.AllocsPerRun(5, func() {
		res, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.WriteJSON(io.Discard); err != nil {
			t.Fatal(err)
		}
	})
	delta := queryAndWrite - queryOnly
	t.Logf("rows=%d query=%.0f query+write=%.0f delta=%.1f", rows, queryOnly, queryAndWrite, delta)
	// The encoder itself needs one bufio buffer; leave headroom for
	// harness noise but stay far below one allocation per row.
	if delta > float64(rows)/20 {
		t.Errorf("WriteJSON allocated %.1f times beyond the query itself for %d rows — not O(1) per row", delta, rows)
	}
}
