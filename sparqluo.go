// Package sparqluo is an RDF triple store and SPARQL-UO query engine
// implementing "Efficient Execution of SPARQL Queries with OPTIONAL and
// UNION Expressions" (Zou, Pang, Özsu, Chen): BE-tree query plans,
// cost-driven merge/inject transformations, and query-time candidate
// pruning on top of two BGP execution engines (a gStore-style
// worst-case-optimal join engine and a Jena-style binary hash-join
// engine).
//
// Basic usage:
//
//	db := sparqluo.Open()
//	if err := db.Load(file); err != nil { ... }
//	db.Freeze()
//	res, err := db.Query(`SELECT ?x WHERE { ... }`)
//	for _, sol := range res.Solutions() {
//		fmt.Println(sol["x"])
//	}
//
// The Strategy option selects between the paper's four approaches (Base,
// TT, CP, Full — Full is the default); the Engine option selects the
// underlying BGP engine.
//
// # Concurrency
//
// Once Freeze has been called the store is immutable, so any number of
// goroutines may issue queries against one DB concurrently; all query
// state lives on the call stack. Each query additionally evaluates
// sibling UNION branches and OPTIONAL subtrees of its BE-tree in
// parallel on a bounded worker pool sized by WithParallelism (default
// GOMAXPROCS; 1 disables intra-query parallelism). Per-branch solution
// bags and instrumentation are merged in sibling order, so results,
// solution ordering, and metrics are byte-identical at every
// parallelism level.
//
// QueryContext threads a context.Context through the evaluator and both
// BGP engines: cancelling the context or passing one with a deadline
// aborts long joins promptly and returns ctx.Err().
package sparqluo

import (
	"context"
	"fmt"
	"io"
	"time"

	"sparqluo/internal/algebra"
	"sparqluo/internal/core"
	"sparqluo/internal/exec"
	"sparqluo/internal/rdf"
	"sparqluo/internal/snapshot"
	"sparqluo/internal/sparql"
	"sparqluo/internal/store"
)

// Term is an RDF term (IRI, literal or blank node).
type Term = rdf.Term

// Triple is a single RDF statement.
type Triple = rdf.Triple

// Re-exported term constructors.
var (
	NewIRI          = rdf.NewIRI
	NewLiteral      = rdf.NewLiteral
	NewLangLiteral  = rdf.NewLangLiteral
	NewTypedLiteral = rdf.NewTypedLiteral
	NewBlank        = rdf.NewBlank
)

// Strategy selects the query optimization approach of §7.1.
type Strategy = core.Strategy

// The four strategies evaluated in the paper.
const (
	Base = core.Base // Algorithm 1 on the untransformed BE-tree
	TT   = core.TT   // cost-driven tree transformation
	CP   = core.CP   // candidate pruning with a fixed threshold
	Full = core.Full // transformation + adaptive candidate pruning
)

// Engine selects the underlying BGP execution engine.
type Engine int

const (
	// WCO is the gStore-style worst-case-optimal join engine.
	WCO Engine = iota
	// BinaryJoin is the Jena-style binary hash-join engine.
	BinaryJoin
)

func (e Engine) impl() exec.Engine {
	if e == BinaryJoin {
		return exec.BinaryJoinEngine{}
	}
	return exec.WCOEngine{}
}

// DB is an in-memory RDF database. Load data with Load/Add, call Freeze
// once, then issue queries concurrently. Alternatively, open a
// previously written snapshot image with OpenSnapshot for a cold start
// that skips parsing and index building entirely.
type DB struct {
	st *store.Store

	// mapping backs snapshot-opened databases (see OpenSnapshot/Close);
	// nil for in-memory ones. *snapshot.Mapping is nil-safe to Close.
	mapping *snapshot.Mapping
}

// Open returns an empty database.
func Open() *DB { return &DB{st: store.New()} }

// Load reads an N-Triples document (with optional Turtle-style @prefix
// directives) and adds every triple.
func (db *DB) Load(r io.Reader) error { return db.st.LoadNTriples(r) }

// Add inserts one triple. Duplicates are ignored (RDF set semantics).
func (db *DB) Add(t Triple) { db.st.Add(t) }

// AddAll inserts a batch of triples.
func (db *DB) AddAll(ts []Triple) { db.st.AddAll(ts) }

// Freeze computes statistics and makes the database read-only. Queries
// run before Freeze cannot use cost-based optimization; call it after
// loading.
func (db *DB) Freeze() { db.st.Freeze() }

// NumTriples returns the number of distinct triples stored.
func (db *DB) NumTriples() int { return db.st.NumTriples() }

// Store exposes the underlying store for advanced integrations (the
// experiment harness uses it); most callers never need it.
func (db *DB) Store() *store.Store { return db.st }

// Option configures a Query call.
type Option func(*queryConfig)

type queryConfig struct {
	strategy    Strategy
	engine      Engine
	parallelism int
}

// WithStrategy selects the optimization strategy (default Full).
func WithStrategy(s Strategy) Option {
	return func(c *queryConfig) { c.strategy = s }
}

// WithEngine selects the BGP engine (default WCO).
func WithEngine(e Engine) Option {
	return func(c *queryConfig) { c.engine = e }
}

// WithParallelism bounds the per-query evaluation worker pool: up to n
// goroutines evaluate independent UNION branches and OPTIONAL subtrees
// concurrently. n <= 0 selects GOMAXPROCS (the default); 1 evaluates
// sequentially. Results are identical at every setting.
func WithParallelism(n int) Option {
	return func(c *queryConfig) { c.parallelism = n }
}

// Solution is one query solution: variable name → bound term. Unbound
// variables (possible under OPTIONAL) are absent from the map.
type Solution map[string]Term

// Results holds the outcome of a query.
type Results struct {
	vars  *algebra.VarSet
	bag   *algebra.Bag
	dict  *store.Dict
	res   *core.Result
	names []string
}

// Len returns the number of solutions.
func (r *Results) Len() int { return r.bag.Len() }

// Vars returns the variable names of the result rows.
func (r *Results) Vars() []string { return r.names }

// Solutions materializes all solutions as name→term maps.
func (r *Results) Solutions() []Solution {
	out := make([]Solution, 0, r.bag.Len())
	for _, row := range r.bag.Rows {
		sol := Solution{}
		for i, name := range r.vars.Names() {
			if row[i] != store.None {
				sol[name] = r.dict.Decode(row[i])
			}
		}
		out = append(out, sol)
	}
	return out
}

// Plan returns a rendering of the BE-tree that was executed (after any
// transformations).
func (r *Results) Plan() string { return r.res.Tree.String() }

// Transformations returns the number of merge/inject transformations the
// optimizer applied.
func (r *Results) Transformations() int { return r.res.Transformations }

// ExecTime returns the time spent executing the plan.
func (r *Results) ExecTime() time.Duration { return r.res.ExecTime }

// TransformTime returns the time spent in plan transformation.
func (r *Results) TransformTime() time.Duration { return r.res.TransformTime }

// JoinSpace returns the paper's join-space metric for this execution, an
// indicator of the largest intermediate result materialized.
func (r *Results) JoinSpace() float64 {
	return core.JoinSpace(r.res.Tree, r.res.Stats)
}

// Query parses and executes a SPARQL-UO SELECT query. It is
// QueryContext with a background context.
func (db *DB) Query(text string, opts ...Option) (*Results, error) {
	return db.QueryContext(context.Background(), text, opts...)
}

// QueryContext parses and executes a SPARQL-UO SELECT query under a
// context. Cancelling ctx (or exceeding its deadline) aborts evaluation
// promptly — including inside the engines' join loops — and returns an
// error wrapping ctx.Err().
func (db *DB) QueryContext(ctx context.Context, text string, opts ...Option) (*Results, error) {
	cfg := queryConfig{strategy: Full, engine: WCO}
	for _, o := range opts {
		o(&cfg)
	}
	if db.st.Stats() == nil {
		return nil, fmt.Errorf("sparqluo: DB must be frozen before querying (call Freeze)")
	}
	q, err := sparql.Parse(text)
	if err != nil {
		return nil, err
	}
	res, err := core.RunContext(ctx, q, db.st, cfg.engine.impl(), cfg.strategy,
		core.ExecOptions{Parallelism: cfg.parallelism})
	if err != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("sparqluo: query aborted: %w", err)
		}
		return nil, err
	}
	names := res.Vars.Names()
	if len(q.Select) > 0 {
		names = q.Select
	}
	return &Results{
		vars:  res.Vars,
		bag:   res.Bag,
		dict:  db.st.Dict(),
		res:   res,
		names: names,
	}, nil
}

// Explain parses the query and returns the BE-tree plan before and after
// cost-driven transformation, without executing it.
func (db *DB) Explain(text string, opts ...Option) (before, after string, err error) {
	cfg := queryConfig{strategy: Full, engine: WCO}
	for _, o := range opts {
		o(&cfg)
	}
	q, err := sparql.Parse(text)
	if err != nil {
		return "", "", err
	}
	tree, err := core.Build(q, db.st)
	if err != nil {
		return "", "", err
	}
	before = tree.String()
	work := tree.Clone()
	tr := core.NewTransformer(db.st, cfg.engine.impl())
	tr.SkipWhenEquivalentToCP = cfg.strategy == Full
	tr.Transform(work)
	return before, work.String(), nil
}
