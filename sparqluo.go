// Package sparqluo is an RDF triple store and SPARQL-UO query engine
// implementing "Efficient Execution of SPARQL Queries with OPTIONAL and
// UNION Expressions" (Zou, Pang, Özsu, Chen): BE-tree query plans,
// cost-driven merge/inject transformations, and query-time candidate
// pruning on top of two BGP execution engines (a gStore-style
// worst-case-optimal join engine and a Jena-style binary hash-join
// engine).
//
// Basic usage:
//
//	db := sparqluo.Open()
//	if err := db.Load(file); err != nil { ... }
//	db.Freeze()
//	res, err := db.Query(`SELECT ?x WHERE { ... }`)
//	for _, sol := range res.Solutions() {
//		fmt.Println(sol["x"])
//	}
//
// The Strategy option selects between the paper's four approaches (Base,
// TT, CP, Full — Full is the default); the Engine option selects the
// underlying BGP engine.
//
// # Solution modifiers and pagination
//
// Queries may carry the full set of W3C solution modifiers: ORDER BY
// (ASC/DESC per key), LIMIT and OFFSET. ORDER BY is answered for free
// when the plan's streaming joins already produce the requested order,
// with a bounded-heap top-k when a LIMIT window is present, and with a
// stable sort otherwise. A LIMIT without ORDER BY is pushed into
// execution as true early termination: index scans, streaming merge
// joins and the final join stop as soon as enough rows exist.
//
// For serving, WithLimit and WithOffset apply a per-execution window on
// top of the query text without re-parsing or re-planning, so one
// prepared (or plan-cached) query serves every page:
//
//	p, _ := db.Prepare(`SELECT ?x WHERE { ... } ORDER BY ?x`)
//	page2, _ := p.Exec(sparqluo.WithLimit(20), sparqluo.WithOffset(20))
//
// Results.RowsPulled reports how many operand rows execution actually
// drew — the observable effect of early termination.
//
// # Streaming results
//
// Results is a single-use cursor. Rows returns an iter.Seq2 over the
// solution rows without materializing maps; Row.Var and Row.Term read
// one column of the current row straight off the dictionary-ID row:
//
//	res, err := db.Query(`SELECT ?x ?name WHERE { ... }`)
//	if err != nil { ... }
//	defer res.Close()
//	for i, row := range res.Rows() {
//		if name, ok := row.Term(1); ok {
//			fmt.Println(i, name.Value)
//		}
//	}
//
// The cursor may be consumed once: exactly one of Rows, Solutions or
// WriteJSON may iterate it, and a second iteration yields no rows and
// records ErrResultsConsumed (retrievable with Err). Solutions is a
// convenience wrapper over Rows that materializes name→term maps;
// WriteJSON streams the W3C SPARQL JSON document row by row. Close
// releases the cursor early and is idempotent. Metadata accessors (Len,
// Vars, Plan, ExecTime, ...) remain valid after consumption.
//
// # Prepared queries
//
// For templated or repeated workloads, Prepare parses the query and
// builds its BE-tree once; each ExecContext call then pays only the
// per-execution transform+evaluate cost:
//
//	p, err := db.Prepare(`SELECT ?y WHERE { ?x ub:advisor ?y }`)
//	if err != nil { ... }
//	for _, x := range people {
//		res, err := p.Exec(sparqluo.Bind("x", x))
//		...
//	}
//
// Bind substitutes a ground term for a query variable at execution
// time (qgen-style query templates); the bound value is reported in
// every solution row, so templates behave like queries with the
// parameter inlined plus a constant binding.
//
// # Concurrency
//
// Once Freeze has been called the store is immutable, so any number of
// goroutines may issue queries against one DB concurrently; all query
// state lives on the call stack. A single *Prepared may likewise be
// executed from any number of goroutines: the built plan is never
// mutated (transforming strategies clone it per execution). Each query
// additionally evaluates sibling UNION branches and OPTIONAL subtrees
// of its BE-tree in parallel on a bounded worker pool sized by
// WithParallelism (default GOMAXPROCS; 1 disables intra-query
// parallelism). Per-branch solution bags and instrumentation are merged
// in sibling order, so results, solution ordering, and metrics are
// byte-identical at every parallelism level.
//
// QueryContext threads a context.Context through the evaluator and both
// BGP engines: cancelling the context or passing one with a deadline
// aborts long joins promptly and returns ctx.Err().
//
// # Serving at scale
//
// The serving path composes these pieces: NewHandler exposes the DB
// over HTTP with an optional per-handler LRU plan cache
// (WithPlanCache) that maps normalized query text to a *Prepared, so
// hot queries skip parsing and plan construction entirely (the
// X-Plan-Cache response header reports hit or miss), and query
// responses are streamed with the zero-allocation WriteJSON encoder —
// the handler never materializes a []Solution. See the README's
// "Serving at scale" section for the full picture.
//
// # Live updates
//
// A database can ingest while serving. EnableLiveUpdates (or OpenLive)
// layers a mutable delta overlay — a memtable of pending inserts and
// tombstones — over the frozen base; Insert and Delete are atomic
// batches, every query is pinned to one epoch of the data (snapshot
// isolation), and a background compactor (StartCompaction) folds the
// memtable into a fresh frozen base under an RCU-style pointer swap,
// optionally persisting it with the atomic snapshot writer. A quiesced
// live database (after Flush) answers queries byte-identically to a
// freshly frozen store over the same triples. Over HTTP, POST /update
// accepts N-Triples insert/delete batches behind the same admission
// valve as /sparql.
package sparqluo

import (
	"context"
	"fmt"
	"io"
	"strings"

	"sparqluo/internal/core"
	"sparqluo/internal/exec"
	"sparqluo/internal/rdf"
	"sparqluo/internal/snapshot"
	"sparqluo/internal/store"
	"sparqluo/internal/wal"
)

// Term is an RDF term (IRI, literal or blank node).
type Term = rdf.Term

// Triple is a single RDF statement.
type Triple = rdf.Triple

// Re-exported term constructors.
var (
	NewIRI          = rdf.NewIRI
	NewLiteral      = rdf.NewLiteral
	NewLangLiteral  = rdf.NewLangLiteral
	NewTypedLiteral = rdf.NewTypedLiteral
	NewBlank        = rdf.NewBlank
)

// Strategy selects the query optimization approach of §7.1.
type Strategy = core.Strategy

// The four strategies evaluated in the paper.
const (
	Base = core.Base // Algorithm 1 on the untransformed BE-tree
	TT   = core.TT   // cost-driven tree transformation
	CP   = core.CP   // candidate pruning with a fixed threshold
	Full = core.Full // transformation + adaptive candidate pruning
)

// Engine selects the underlying BGP execution engine.
type Engine int

const (
	// WCO is the gStore-style worst-case-optimal join engine.
	WCO Engine = iota
	// BinaryJoin is the Jena-style binary hash-join engine.
	BinaryJoin
)

func (e Engine) impl() exec.Engine {
	if e == BinaryJoin {
		return exec.BinaryJoinEngine{}
	}
	return exec.WCOEngine{}
}

// DB is an in-memory RDF database. Load data with Load/Add, call Freeze
// once, then issue queries concurrently. Alternatively, open a
// previously written snapshot image with OpenSnapshot — or a sharded
// snapshot set with OpenShards — for a cold start that skips parsing
// and index building entirely.
type DB struct {
	st store.Reader

	// mappings back snapshot-opened databases (see OpenSnapshot,
	// OpenShards, Close); empty for in-memory ones.
	mappings []*snapshot.Mapping

	// wal is the write-ahead log attached by OpenLive/EnableLiveUpdates
	// when LiveOptions.WALDir is set; nil otherwise. Closed by Close.
	wal *wal.Log
	// recovery records what the WAL replay recovered at open, if any.
	recovery *RecoveryStats
}

// Open returns an empty database.
func Open() *DB { return &DB{st: store.New()} }

// mem returns the mutable single store backing the database, or nil for
// a sharded (read-only) database.
func (db *DB) mem() *store.Store {
	st, _ := db.st.(*store.Store)
	return st
}

// Load reads an N-Triples document (with optional Turtle-style @prefix
// directives) and adds every triple. On a live database the triples are
// inserted as one atomic batch; on a frozen or sharded database Load
// returns an error wrapping ErrFrozen.
func (db *DB) Load(r io.Reader) error {
	if db.Live() {
		_, err := db.InsertNTriples(r)
		return err
	}
	m := db.mem()
	if m == nil {
		return fmt.Errorf("sparqluo: Load on a sharded (read-only) database: %w", ErrFrozen)
	}
	return m.LoadNTriples(r)
}

// Add inserts one triple. Duplicates are ignored (RDF set semantics).
// On a live database (EnableLiveUpdates/OpenLive) the write is routed
// to the overlay memtable and is immediately visible to new queries.
// Otherwise Add returns an error wrapping ErrFrozen after Freeze or on
// a sharded database — never a panic, so a serving process can reject
// stray writes gracefully.
func (db *DB) Add(t Triple) error {
	if ls := db.liveStore(); ls != nil {
		return ls.Insert(t)
	}
	m := db.mem()
	if m == nil {
		return fmt.Errorf("sparqluo: Add on a sharded (read-only) database: %w", ErrFrozen)
	}
	return m.Add(t)
}

// AddAll inserts a batch of triples, stopping at the first error. On a
// live database the batch is atomic: concurrent queries see all of it
// or none of it.
func (db *DB) AddAll(ts []Triple) error {
	if ls := db.liveStore(); ls != nil {
		return ls.Insert(ts...)
	}
	for _, t := range ts {
		if err := db.Add(t); err != nil {
			return err
		}
	}
	return nil
}

// Freeze computes statistics and makes the database read-only. Queries
// run before Freeze cannot use cost-based optimization; call it after
// loading. Snapshot- and shard-opened databases are frozen already.
// A bulk load too large for the store's int32 index range returns an
// error wrapping store.ErrTooManyTriples instead of crashing the
// process; the database stays unfrozen.
func (db *DB) Freeze() error {
	if m := db.mem(); m != nil {
		return m.Freeze()
	}
	return nil
}

// NumTriples returns the number of distinct triples stored.
func (db *DB) NumTriples() int { return db.st.NumTriples() }

// NumShards returns the number of shards serving this database: 1 for a
// single in-memory or snapshot-backed store, k for a database opened
// from a shard manifest.
func (db *DB) NumShards() int {
	if sh, ok := db.st.(store.ShardedReader); ok {
		return sh.NumShards()
	}
	return 1
}

// MemStats reports the memory footprint of the database's columnar
// indexes — aggregated across shards for a sharded database.
func (db *DB) MemStats() store.MemStats { return db.st.MemStats() }

// Store exposes the underlying single store for advanced integrations
// (the experiment harness uses it); most callers never need it. It
// returns nil for a sharded database, whose shards do not form one
// *store.Store.
func (db *DB) Store() *store.Store { return db.mem() }

// Option configures a Query, Prepare or Exec call.
type Option func(*queryConfig)

type queryConfig struct {
	strategy    Strategy
	engine      Engine
	parallelism int
	bindings    map[string]Term
	limit       int // exec-time row cap; -1 = none
	offset      int // exec-time rows to skip; 0 = none
}

func defaultQueryConfig() queryConfig {
	return queryConfig{strategy: Full, engine: WCO, limit: -1}
}

// WithStrategy selects the optimization strategy (default Full).
func WithStrategy(s Strategy) Option {
	return func(c *queryConfig) { c.strategy = s }
}

// WithEngine selects the BGP engine (default WCO).
func WithEngine(e Engine) Option {
	return func(c *queryConfig) { c.engine = e }
}

// WithParallelism bounds the per-query evaluation worker pool: up to n
// goroutines evaluate independent UNION branches and OPTIONAL subtrees
// concurrently. n <= 0 selects GOMAXPROCS (the default); 1 evaluates
// sequentially. Results are identical at every setting.
func WithParallelism(n int) Option {
	return func(c *queryConfig) { c.parallelism = n }
}

// WithLimit caps the number of solutions this execution returns, on top
// of (never widening) any LIMIT in the query text. Unlike a textual
// LIMIT it needs no re-parse or re-plan: one prepared (or plan-cached)
// query serves every page size. n < 0 removes a previously set limit.
//
// The cap is pushed into execution as true early termination: pattern
// scans, streaming merge joins and the final join or OPTIONAL fold stop
// as soon as enough rows exist, and the rows returned are byte-identical
// to the corresponding prefix of the unlimited result.
func WithLimit(n int) Option {
	return func(c *queryConfig) {
		if n < 0 {
			n = -1
		}
		c.limit = n
	}
}

// WithOffset skips the first n solutions of this execution, composing
// with any textual OFFSET/LIMIT window (the text window applies first).
// Combined with WithLimit it implements cursor-style pagination over a
// single prepared query. n <= 0 skips nothing.
func WithOffset(n int) Option {
	return func(c *queryConfig) {
		if n < 0 {
			n = 0
		}
		c.offset = n
	}
}

// Bind substitutes a ground term for the named query variable (with or
// without the leading "?") at execution time, turning a prepared query
// into a template: every triple-pattern occurrence of the variable is
// replaced by the term, and the variable is reported bound to the term
// in each solution row. Binding a variable the query does not mention
// is an error; binding a term absent from the data correctly yields no
// matches for the patterns that mention it.
func Bind(name string, t Term) Option {
	return func(c *queryConfig) {
		if c.bindings == nil {
			c.bindings = make(map[string]Term)
		}
		c.bindings[strings.TrimPrefix(name, "?")] = t
	}
}

// Query parses and executes a SPARQL-UO SELECT query. It is
// QueryContext with a background context.
func (db *DB) Query(text string, opts ...Option) (*Results, error) {
	return db.QueryContext(context.Background(), text, opts...)
}

// QueryContext parses and executes a SPARQL-UO SELECT query under a
// context. Cancelling ctx (or exceeding its deadline) aborts evaluation
// promptly — including inside the engines' join loops — and returns an
// error wrapping ctx.Err().
//
// Every QueryContext call re-parses and re-plans the text; callers
// issuing the same query repeatedly should Prepare it once and use
// ExecContext per execution.
func (db *DB) QueryContext(ctx context.Context, text string, opts ...Option) (*Results, error) {
	p, err := db.Prepare(text)
	if err != nil {
		return nil, err
	}
	return p.ExecContext(ctx, opts...)
}

// Explain parses the query and returns the BE-tree plan before and after
// cost-driven transformation, without executing it. The transformation
// is costed with the engine selected by WithEngine (estimated BGP costs
// differ between the WCO and binary-join engines, so the chosen plan
// may too).
func (db *DB) Explain(text string, opts ...Option) (before, after string, err error) {
	p, err := db.Prepare(text)
	if err != nil {
		return "", "", err
	}
	return p.Explain(opts...)
}
