package sparqluo

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// TestPaginatedJSONByteIdentical checks the serving-path contract end to
// end: the W3C JSON document of a windowed execution is byte-identical
// to the document produced by slicing the unlimited result's bag — early
// termination and top-k change the work done, never a byte of output.
func TestPaginatedJSONByteIdentical(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("@prefix ex: <http://ex.org/> .\n")
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&sb, "ex:p%02d ex:worksFor ex:d%d .\n", i, i%5)
		fmt.Fprintf(&sb, "ex:d%d ex:partOf ex:u%d .\n", i%5, (i%5)%2)
	}
	db := Open()
	if err := db.Load(strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	db.Freeze()

	queries := []string{
		`PREFIX ex: <http://ex.org/> SELECT ?x ?u WHERE { ?x ex:worksFor ?d . ?d ex:partOf ?u }`,
		`PREFIX ex: <http://ex.org/> SELECT ?x ?d WHERE { ?x ex:worksFor ?d } ORDER BY ?d DESC ?x`,
	}
	windows := [][2]int{{0, 0}, {3, 0}, {5, 7}, {4, 38}, {3, 100}}
	for _, q := range queries {
		for _, eng := range []Engine{WCO, BinaryJoin} {
			for _, w := range windows {
				lim, off := w[0], w[1]
				ref, err := db.Query(q, WithEngine(eng))
				if err != nil {
					t.Fatal(err)
				}
				// Slice the unlimited result's bag in place: the reference
				// document for the page, produced with no push-down at all.
				n := ref.res.Bag.Len()
				ref.res.Bag = ref.res.Bag.View(min(off, n), min(off+lim, n))
				var want bytes.Buffer
				if err := ref.WriteJSON(&want); err != nil {
					t.Fatal(err)
				}

				page, err := db.Query(q, WithEngine(eng), WithLimit(lim), WithOffset(off))
				if err != nil {
					t.Fatal(err)
				}
				var got bytes.Buffer
				if err := page.WriteJSON(&got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got.Bytes(), want.Bytes()) {
					t.Errorf("engine %v limit=%d offset=%d:\ngot:  %s\nwant: %s",
						eng, lim, off, got.Bytes(), want.Bytes())
				}
			}
		}
	}
}
