package sparqluo

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"
)

// HandlerOption configures the HTTP endpoint returned by NewHandler.
type HandlerOption func(*handlerConfig)

type handlerConfig struct {
	timeout     time.Duration
	maxInFlight int
	parallelism int
	planCache   int
}

// WithQueryTimeout caps the wall-clock time of each /sparql request
// (default: no limit). Requests that exceed it are aborted through the
// evaluator's context and answered with 504 Gateway Timeout. A request
// may lower — never raise — its own limit with a "timeout" form
// parameter holding a Go duration (e.g. timeout=250ms).
func WithQueryTimeout(d time.Duration) HandlerOption {
	return func(c *handlerConfig) { c.timeout = d }
}

// WithMaxInFlight bounds the number of /sparql requests evaluating
// concurrently (default: no limit). Requests beyond the bound are
// rejected immediately with 503 Service Unavailable and a Retry-After
// header, keeping tail latency flat under overload instead of queueing
// unboundedly.
func WithMaxInFlight(n int) HandlerOption {
	return func(c *handlerConfig) { c.maxInFlight = n }
}

// WithHandlerParallelism sets the per-query evaluation worker-pool size
// used for every request served by the handler (default: GOMAXPROCS;
// see WithParallelism). Deployments that cap in-flight queries high can
// set this low so concurrent requests don't oversubscribe the CPUs.
func WithHandlerParallelism(n int) HandlerOption {
	return func(c *handlerConfig) { c.parallelism = n }
}

// WithPlanCache gives the handler an LRU cache of n prepared plans
// (default: 0, disabled), keyed by normalized query text plus the
// requested strategy and engine. A cache hit skips parsing and BE-tree
// construction for the request; every /sparql response then carries an
// X-Plan-Cache: hit|miss header so cache effectiveness is observable
// from the client side. Cached plans are immutable and shared safely
// across concurrent requests. On a live database the write epoch is
// folded into the cache key: plans resolve constant terms against the
// dictionary when they are built, so a plan cached before an update
// could answer from a stale resolution — epoch keying makes every
// write batch start a fresh cache generation while repeated queries
// between writes still hit.
func WithPlanCache(n int) HandlerOption {
	return func(c *handlerConfig) { c.planCache = n }
}

// NewHandler returns an http.Handler exposing the database as a minimal
// SPARQL endpoint:
//
//	GET  /sparql?query=...          run a query (also accepts POST form)
//	POST /update?op=insert|delete   apply an N-Triples body (live DBs only)
//	POST /compact                   synchronously compact the memtable
//	GET  /stats                     dataset statistics and memory footprint
//	GET  /healthz                   readiness probe (200 once frozen)
//
// Query responses use the W3C SPARQL 1.1 Query Results JSON Format,
// streamed row by row (the handler never materializes the full result).
// The optional "strategy" parameter selects base|tt|cp|full (default
// full), "engine" selects wco|binary (default wco), and "timeout"
// lowers the per-request deadline (a Go duration, capped by
// WithQueryTimeout). "limit" and "offset" (non-negative integers) apply
// a per-request pagination window on top of the query text (see
// WithLimit/WithOffset); because the window is applied at execution
// time, paginated requests share one plan-cache entry. Operational
// limits are configured with WithQueryTimeout, WithMaxInFlight and
// WithHandlerParallelism; WithPlanCache adds an LRU of prepared plans
// so repeated queries skip parse+build (responses then carry an
// X-Plan-Cache: hit|miss header).
func NewHandler(db *DB, opts ...HandlerOption) http.Handler {
	cfg := handlerConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	var inflight chan struct{}
	if cfg.maxInFlight > 0 {
		inflight = make(chan struct{}, cfg.maxInFlight)
	}
	var cache *planCache
	if cfg.planCache > 0 {
		cache = newPlanCache(cfg.planCache)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/sparql", func(w http.ResponseWriter, r *http.Request) {
		query := r.FormValue("query")
		if query == "" {
			http.Error(w, "missing query parameter", http.StatusBadRequest)
			return
		}
		opts, strategy, engine, err := optionsFromRequest(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		opts = append(opts, WithParallelism(cfg.parallelism))
		timeout, err := timeoutFromRequest(r, cfg.timeout)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// Resolve the plan before taking an in-flight slot: a cache hit
		// skips parse+build entirely, and plan construction is cheap
		// enough not to count against the evaluation-concurrency budget.
		var prep *Prepared
		if cache != nil {
			key := normalizeQueryText(query) + "\x00" + strategy + "\x00" + engine
			// On a live database the write epoch is part of the key:
			// plans resolve constant terms against the dictionary at
			// build time, so a plan built before an update introduced a
			// term would keep answering from the old resolution. Stale
			// epochs age out of the LRU on their own.
			if ls := db.liveStore(); ls != nil {
				key += "\x00" + strconv.FormatUint(ls.Epoch(), 10)
			}
			cached, hit := cache.get(key)
			if hit {
				prep = cached
				w.Header().Set("X-Plan-Cache", "hit")
			} else {
				prep, err = db.Prepare(query)
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				cache.put(key, prep)
				w.Header().Set("X-Plan-Cache", "miss")
			}
		} else {
			prep, err = db.Prepare(query)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		}
		if inflight != nil {
			select {
			case inflight <- struct{}{}:
				defer func() { <-inflight }()
			default:
				w.Header().Set("Retry-After", "1")
				http.Error(w, "server overloaded: too many in-flight queries", http.StatusServiceUnavailable)
				return
			}
		}
		ctx := r.Context()
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		res, err := prep.ExecContext(ctx, opts...)
		if err != nil {
			switch {
			case errors.Is(err, context.DeadlineExceeded):
				http.Error(w, "query timed out", http.StatusGatewayTimeout)
			case errors.Is(err, context.Canceled):
				// The client went away: nobody is listening for a status,
				// and answering 503 would poison intermediaries that treat
				// it as backend overload (Retry-After storms against a
				// healthy server). Log and drop; 503 stays reserved for
				// the in-flight limiter above.
				log.Printf("sparqluo: query cancelled by client: %v", err)
			default:
				http.Error(w, err.Error(), http.StatusBadRequest)
			}
			return
		}
		// WriteJSON streams bindings row by row; the handler never
		// materializes a []Solution.
		w.Header().Set("Content-Type", "application/sparql-results+json")
		if err := res.WriteJSON(w); err != nil {
			// Headers are already out; nothing more to do.
			return
		}
	})
	// POST /update applies one N-Triples document as one atomic batch of
	// inserts (default) or deletes (?op=delete) against a live database.
	// It shares the /sparql admission valve: an update counts against
	// the same in-flight budget as a query, so overload sheds both
	// uniformly (503 + Retry-After). The op parameter is read from the
	// URL only — the body is the N-Triples payload, never a form.
	mux.HandleFunc("/update", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", "POST")
			http.Error(w, "POST an N-Triples document", http.StatusMethodNotAllowed)
			return
		}
		if !db.Live() {
			http.Error(w, "live updates not enabled (start the server with -live)", http.StatusConflict)
			return
		}
		op := r.URL.Query().Get("op")
		if op == "" {
			op = "insert"
		}
		if op != "insert" && op != "delete" {
			http.Error(w, fmt.Sprintf("unknown op %q (want insert or delete)", op), http.StatusBadRequest)
			return
		}
		if inflight != nil {
			select {
			case inflight <- struct{}{}:
				defer func() { <-inflight }()
			default:
				w.Header().Set("Retry-After", "1")
				http.Error(w, "server overloaded: too many in-flight queries", http.StatusServiceUnavailable)
				return
			}
		}
		var n int
		var err error
		if op == "insert" {
			n, err = db.InsertNTriples(r.Body)
		} else {
			n, err = db.DeleteNTriples(r.Body)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ls, _ := db.LiveStats()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"op\":%q,\"applied\":%d,\"epoch\":%d}\n", op, n, ls.Epoch)
	})
	// POST /compact synchronously folds the memtable into the frozen
	// base. It does not take an in-flight slot: compaction never blocks
	// queries (they finish on the view they pinned), and gating it
	// behind the valve would let query load starve durability.
	mux.HandleFunc("/compact", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", "POST")
			http.Error(w, "POST to compact", http.StatusMethodNotAllowed)
			return
		}
		if !db.Live() {
			http.Error(w, "live updates not enabled (start the server with -live)", http.StatusConflict)
			return
		}
		cs, err := db.Compact()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"merged\":%d,\"adds\":%d,\"dels\":%d,\"took_ms\":%.3f,\"persisted\":%v}\n",
			cs.Merged, cs.Adds, cs.Dels, float64(cs.Took.Microseconds())/1000, cs.Persisted)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "triples: %d\n", db.NumTriples())
		fmt.Fprintf(w, "shards: %d\n", db.NumShards())
		if s := db.st.Stats(); s != nil {
			fmt.Fprintf(w, "entities: %d\npredicates: %d\nliterals: %d\n",
				s.NumEntities, s.NumPreds, s.NumLiterals)
			// MemStats may (re)build indexes on an unfrozen store, so
			// only report it once frozen, where it is a pure read.
			// For a sharded database it aggregates across shards.
			m := db.st.MemStats()
			fmt.Fprintf(w, "dict-bytes: %d\nmemory: %s\n", m.DictBytes, m)
		}
		if ls, ok := db.LiveStats(); ok {
			fmt.Fprintf(w, "live: true\nepoch: %d\n", ls.Epoch)
			fmt.Fprintf(w, "memtable-triples: %d\ntombstones: %d\nmemtable-ops: %d\n",
				ls.MemtableAdds, ls.Tombstones, ls.MemtableOps)
			fmt.Fprintf(w, "compactions: %d\ncompaction-in-progress: %v\n",
				ls.Compactions, ls.Compacting)
			if !ls.LastCompaction.IsZero() {
				fmt.Fprintf(w, "last-compaction: %s\nlast-compaction-took: %v\nlast-compaction-merged: %d\n",
					ls.LastCompaction.UTC().Format(time.RFC3339), ls.LastCompactionTook, ls.LastCompactionMerged)
				fmt.Fprintf(w, "since-last-compaction: %v\n", ls.SinceLastCompaction.Round(time.Millisecond))
			}
			if js := ls.WAL; js != nil {
				fmt.Fprintf(w, "wal-segments: %d\nwal-bytes: %d\nwal-appended: %d\nwal-syncs: %d\n",
					js.Segments, js.Bytes, js.Appended, js.Syncs)
				if !js.LastSync.IsZero() {
					fmt.Fprintf(w, "wal-last-sync-age: %v\n", time.Since(js.LastSync).Round(time.Millisecond))
				}
				if js.Replayed > 0 || js.TruncatedBytes > 0 {
					fmt.Fprintf(w, "wal-replayed: %d\nwal-truncated-bytes: %d\n", js.Replayed, js.TruncatedBytes)
				}
			}
		}
	})
	// Load-balancer readiness probe: 200 exactly when the DB is frozen
	// (statistics exist), i.e. loading finished and queries are allowed.
	// Handlers are normally constructed after Freeze (loading a store
	// while serving it is not supported — pre-Freeze reads are
	// single-threaded by the store's contract); the 503 branch keeps a
	// misconfigured replica out of rotation instead of serving errors.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if db.st.Stats() == nil {
			http.Error(w, "loading: store not frozen yet", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintf(w, "ok\nshards: %d\n", db.NumShards())
		if ls, ok := db.LiveStats(); ok {
			fmt.Fprintf(w, "live: true\ncompaction-in-progress: %v\nmemtable-triples: %d\ntombstones: %d\n",
				ls.Compacting, ls.MemtableAdds, ls.Tombstones)
			if !ls.LastCompaction.IsZero() {
				fmt.Fprintf(w, "since-last-compaction: %v\n", ls.SinceLastCompaction.Round(time.Millisecond))
			}
			if js := ls.WAL; js != nil {
				fmt.Fprintf(w, "wal-segments: %d\nwal-bytes: %d\n", js.Segments, js.Bytes)
				if !js.LastSync.IsZero() {
					fmt.Fprintf(w, "wal-last-sync-age: %v\n", time.Since(js.LastSync).Round(time.Millisecond))
				}
			}
		}
	})
	return mux
}

// timeoutFromRequest resolves the effective deadline for one request:
// the server-configured maximum, optionally lowered by the request's
// "timeout" form parameter.
func timeoutFromRequest(r *http.Request, max time.Duration) (time.Duration, error) {
	raw := r.FormValue("timeout")
	if raw == "" {
		return max, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("invalid timeout %q", raw)
	}
	if max > 0 && d > max {
		d = max
	}
	return d, nil
}

// optionsFromRequest resolves the strategy/engine form parameters into
// query options, also returning the normalized parameter names (the
// plan-cache key components).
func optionsFromRequest(r *http.Request) (opts []Option, strategy, engine string, err error) {
	switch s := r.FormValue("strategy"); s {
	case "", "full":
		opts, strategy = append(opts, WithStrategy(Full)), "full"
	case "base":
		opts, strategy = append(opts, WithStrategy(Base)), "base"
	case "tt":
		opts, strategy = append(opts, WithStrategy(TT)), "tt"
	case "cp":
		opts, strategy = append(opts, WithStrategy(CP)), "cp"
	default:
		return nil, "", "", fmt.Errorf("unknown strategy %q", s)
	}
	switch e := r.FormValue("engine"); e {
	case "", "wco":
		opts, engine = append(opts, WithEngine(WCO)), "wco"
	case "binary":
		opts, engine = append(opts, WithEngine(BinaryJoin)), "binary"
	default:
		return nil, "", "", fmt.Errorf("unknown engine %q", e)
	}
	// The pagination window is applied per execution, never at plan time,
	// so it deliberately stays out of the plan-cache key: every page of a
	// query hits the same cached plan.
	if raw := r.FormValue("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			return nil, "", "", fmt.Errorf("invalid limit %q", raw)
		}
		opts = append(opts, WithLimit(n))
	}
	if raw := r.FormValue("offset"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			return nil, "", "", fmt.Errorf("invalid offset %q", raw)
		}
		opts = append(opts, WithOffset(n))
	}
	return opts, strategy, engine, nil
}
