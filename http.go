package sparqluo

import (
	"fmt"
	"net/http"
)

// NewHandler returns an http.Handler exposing the database as a minimal
// SPARQL endpoint:
//
//	GET  /sparql?query=...          run a query (also accepts POST form)
//	GET  /stats                     dataset statistics
//
// Query responses use the W3C SPARQL 1.1 Query Results JSON Format. The
// optional "strategy" parameter selects base|tt|cp|full (default full),
// "engine" selects wco|binary (default wco).
func NewHandler(db *DB) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/sparql", func(w http.ResponseWriter, r *http.Request) {
		query := r.FormValue("query")
		if query == "" {
			http.Error(w, "missing query parameter", http.StatusBadRequest)
			return
		}
		opts, err := optionsFromRequest(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := db.Query(query, opts...)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/sparql-results+json")
		if err := res.WriteJSON(w); err != nil {
			// Headers are already out; nothing more to do.
			return
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "triples: %d\n", db.NumTriples())
		if s := db.st.Stats(); s != nil {
			fmt.Fprintf(w, "entities: %d\npredicates: %d\nliterals: %d\n",
				s.NumEntities, s.NumPreds, s.NumLiterals)
		}
	})
	return mux
}

func optionsFromRequest(r *http.Request) ([]Option, error) {
	var opts []Option
	switch s := r.FormValue("strategy"); s {
	case "", "full":
		opts = append(opts, WithStrategy(Full))
	case "base":
		opts = append(opts, WithStrategy(Base))
	case "tt":
		opts = append(opts, WithStrategy(TT))
	case "cp":
		opts = append(opts, WithStrategy(CP))
	default:
		return nil, fmt.Errorf("unknown strategy %q", s)
	}
	switch e := r.FormValue("engine"); e {
	case "", "wco":
		opts = append(opts, WithEngine(WCO))
	case "binary":
		opts = append(opts, WithEngine(BinaryJoin))
	default:
		return nil, fmt.Errorf("unknown engine %q", e)
	}
	return opts, nil
}
