package sparqluo

import "testing"

func TestNormalizeQueryText(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT * WHERE { ?s ?p ?o }", "SELECT * WHERE { ?s ?p ?o }"},
		{"  SELECT\t*\nWHERE  {\n?s ?p ?o\n}\n", "SELECT * WHERE { ?s ?p ?o }"},
		// Whitespace inside string literals is significant: two queries
		// differing only inside quotes must not share a key.
		{`SELECT * WHERE { ?s ?p "a  b" }`, `SELECT * WHERE { ?s ?p "a  b" }`},
		{`SELECT * WHERE { ?s ?p "a b" }`, `SELECT * WHERE { ?s ?p "a b" }`},
		// Escaped quote inside a literal does not end it.
		{`{ ?s ?p "a\"  b" }  x`, `{ ?s ?p "a\"  b" } x`},
		// IRI refs are preserved verbatim too.
		{"{ ?s <http://e/p>   ?o }", "{ ?s <http://e/p> ?o }"},
		// Comments are lexically insignificant (the lexer discards them
		// up to the newline) and act as token separators.
		{"SELECT * # pick all\nWHERE { ?s ?p ?o }", "SELECT * WHERE { ?s ?p ?o }"},
		{"{ ?x <http://e/p> ?y . # note\n?y <http://e/q> ?z }", "{ ?x <http://e/p> ?y . ?y <http://e/q> ?z }"},
		// ... but '#' inside an IRI or literal is content, not a comment.
		{"{ ?s <http://e/p#frag>  ?o }", "{ ?s <http://e/p#frag> ?o }"},
		{`{ ?s ?p "a # b" }`, `{ ?s ?p "a # b" }`},
		// A trailing comment with no newline runs to end of text.
		{"SELECT * WHERE { ?s ?p ?o } # done", "SELECT * WHERE { ?s ?p ?o }"},
		{"", ""},
		{"   ", ""},
	}
	for _, c := range cases {
		if got := normalizeQueryText(c.in); got != c.want {
			t.Errorf("normalizeQueryText(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	a := normalizeQueryText(`SELECT * WHERE { ?s ?p "a  b" }`)
	b := normalizeQueryText(`SELECT * WHERE { ?s ?p "a b" }`)
	if a == b {
		t.Error("literal-content whitespace collapsed: distinct queries share a key")
	}
	// A commented multi-line query and its single-line flattening — in
	// which the comment swallows the trailing tokens — are different
	// queries and must not share a key.
	multi := normalizeQueryText("{ ?x <http://e/p> ?y . # note\n?y <http://e/q> ?z }")
	flat := normalizeQueryText("{ ?x <http://e/p> ?y . # note ?y <http://e/q> ?z }")
	if multi == flat {
		t.Error("comment-terminating newline collapsed: distinct queries share a key")
	}
}

func TestNormalizeQueryTextEscapes(t *testing.T) {
	// The lexer decodes \n \t \r \" \\ inside literals, so a query
	// spelling a tab as "\t" and one holding the raw byte are the same
	// query and must share a cache key.
	same := [][2]string{
		{`{ ?s ?p "a\tb" }`, "{ ?s ?p \"a\tb\" }"},
		{`{ ?s ?p "a\nb" }`, "{ ?s ?p \"a\nb\" }"},
		{`{ ?s ?p "a\rb" }`, "{ ?s ?p \"a\rb\" }"},
	}
	for _, c := range same {
		if a, b := normalizeQueryText(c[0]), normalizeQueryText(c[1]); a != b {
			t.Errorf("equivalent literals get distinct keys: %q=%q vs %q=%q", c[0], a, c[1], b)
		}
	}
	// Canonical form is stable: normalizing twice changes nothing.
	for _, in := range []string{
		`{ ?s ?p "a\tb" }`, `{ ?s ?p "q\"uo\\te" }`, `{ ?s ?p "plain" }`,
	} {
		once := normalizeQueryText(in)
		if twice := normalizeQueryText(once); twice != once {
			t.Errorf("not idempotent: %q -> %q -> %q", in, once, twice)
		}
	}
	// Distinct queries must never collide, even when one spells out the
	// escape the other's content resembles.
	distinct := [][2]string{
		{`{ ?s ?p "a\tb" }`, `{ ?s ?p "atb" }`},
		{`{ ?s ?p "a\\tb" }`, `{ ?s ?p "a\tb" }`},   // literal backslash-t vs tab
		{`{ ?s ?p "a\\nb" }`, "{ ?s ?p \"a\nb\" }"}, // literal backslash-n vs newline
		{`{ ?s ?p "a\"b" }`, `{ ?s ?p "a" }`},       // escaped quote is content
		{`{ ?s ?p "a\xb" }`, `{ ?s ?p "axb" }`},     // invalid escape stays raw
		{`{ ?s ?p "a\xb" }`, `{ ?s ?p "a\\xb" }`},   // ... and differs from the valid spelling
		{`{ ?s ?p "unterminated`, `{ ?s ?p "unterminated"`},
	}
	for _, c := range distinct {
		if a, b := normalizeQueryText(c[0]), normalizeQueryText(c[1]); a == b {
			t.Errorf("distinct queries share key %q: %q vs %q", a, c[0], c[1])
		}
	}
}

func TestPlanCacheLRU(t *testing.T) {
	c := newPlanCache(2)
	p1, p2, p3 := &Prepared{text: "1"}, &Prepared{text: "2"}, &Prepared{text: "3"}
	c.put("a", p1)
	c.put("b", p2)
	if got, ok := c.get("a"); !ok || got != p1 {
		t.Fatal("a should be cached")
	}
	c.put("c", p3) // evicts b (least recently used; a was just touched)
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c should be cached")
	}
	if n := c.len(); n != 2 {
		t.Errorf("len = %d, want 2", n)
	}
	// Double put of one key keeps a single entry.
	c.put("c", p3)
	if n := c.len(); n != 2 {
		t.Errorf("len after duplicate put = %d, want 2", n)
	}
}
