package sparqluo_test

import (
	"strings"
	"testing"

	"sparqluo"
)

const apiTestData = `
@prefix ex: <http://ex.org/> .
ex:alice ex:knows ex:bob .
ex:alice ex:name "Alice" .
ex:bob ex:name "Bob" .
ex:bob ex:age "42" .
ex:carol ex:knows ex:alice .
`

func openTestDB(t testing.TB) *sparqluo.DB {
	t.Helper()
	db := sparqluo.Open()
	if err := db.Load(strings.NewReader(apiTestData)); err != nil {
		t.Fatal(err)
	}
	db.Freeze()
	return db
}

func TestQueryBasic(t *testing.T) {
	db := openTestDB(t)
	res, err := db.Query(`
		PREFIX ex: <http://ex.org/>
		SELECT ?who ?name WHERE { ?who ex:name ?name }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("Len = %d, want 2", res.Len())
	}
	names := map[string]bool{}
	for _, sol := range res.Solutions() {
		names[sol["name"].Value] = true
	}
	if !names["Alice"] || !names["Bob"] {
		t.Errorf("names = %v", names)
	}
}

func TestQueryOptionalUnbound(t *testing.T) {
	db := openTestDB(t)
	res, err := db.Query(`
		PREFIX ex: <http://ex.org/>
		SELECT ?who ?age WHERE {
			?who ex:name ?n .
			OPTIONAL { ?who ex:age ?age }
		}`)
	if err != nil {
		t.Fatal(err)
	}
	withAge, withoutAge := 0, 0
	for _, sol := range res.Solutions() {
		if _, ok := sol["age"]; ok {
			withAge++
		} else {
			withoutAge++
		}
	}
	if withAge != 1 || withoutAge != 1 {
		t.Errorf("withAge=%d withoutAge=%d, want 1/1", withAge, withoutAge)
	}
}

func TestQueryStrategiesAndEnginesAgree(t *testing.T) {
	db := openTestDB(t)
	const q = `
		PREFIX ex: <http://ex.org/>
		SELECT * WHERE {
			{ ?a ex:knows ?b } UNION { ?b ex:knows ?a }
			OPTIONAL { ?a ex:name ?n }
		}`
	var want int
	first := true
	for _, strat := range []sparqluo.Strategy{sparqluo.Base, sparqluo.TT, sparqluo.CP, sparqluo.Full} {
		for _, eng := range []sparqluo.Engine{sparqluo.WCO, sparqluo.BinaryJoin} {
			res, err := db.Query(q, sparqluo.WithStrategy(strat), sparqluo.WithEngine(eng))
			if err != nil {
				t.Fatal(err)
			}
			if first {
				want = res.Len()
				first = false
			} else if res.Len() != want {
				t.Errorf("strategy %v engine %v: %d rows, want %d", strat, eng, res.Len(), want)
			}
		}
	}
	if want == 0 {
		t.Error("query should have results")
	}
}

func TestQueryBeforeFreezeFails(t *testing.T) {
	db := sparqluo.Open()
	db.Add(sparqluo.Triple{
		S: sparqluo.NewIRI("http://e/s"),
		P: sparqluo.NewIRI("http://e/p"),
		O: sparqluo.NewIRI("http://e/o"),
	})
	if _, err := db.Query(`SELECT * WHERE { ?s ?p ?o }`); err == nil {
		t.Error("query before Freeze should fail")
	}
}

func TestQuerySyntaxError(t *testing.T) {
	db := openTestDB(t)
	if _, err := db.Query(`SELECT WHERE { ?x }`); err == nil {
		t.Error("want syntax error")
	}
}

func TestExplain(t *testing.T) {
	db := openTestDB(t)
	before, after, err := db.Explain(`
		PREFIX ex: <http://ex.org/>
		SELECT * WHERE {
			?a ex:knows ?b .
			?a ex:name ?n .
			OPTIONAL { ?b ex:age ?age }
		}`, sparqluo.WithStrategy(sparqluo.TT))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(before, "OPTIONAL") || !strings.Contains(after, "OPTIONAL") {
		t.Errorf("plans should render OPTIONAL nodes:\n%s\n%s", before, after)
	}
}

func TestResultsMetadata(t *testing.T) {
	db := openTestDB(t)
	res, err := db.Query(`
		PREFIX ex: <http://ex.org/>
		SELECT ?who WHERE { ?who ex:name ?n OPTIONAL { ?who ex:age ?a } }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.JoinSpace() <= 0 {
		t.Error("JoinSpace should be positive")
	}
	if got := res.Vars(); len(got) != 1 || got[0] != "who" {
		t.Errorf("Vars = %v", got)
	}
	if res.ExecTime() <= 0 {
		t.Error("ExecTime should be positive")
	}
}

func TestAddAllAndNumTriples(t *testing.T) {
	db := sparqluo.Open()
	db.AddAll([]sparqluo.Triple{
		{S: sparqluo.NewIRI("a"), P: sparqluo.NewIRI("p"), O: sparqluo.NewLiteral("1")},
		{S: sparqluo.NewIRI("a"), P: sparqluo.NewIRI("p"), O: sparqluo.NewLiteral("1")}, // dup
		{S: sparqluo.NewIRI("b"), P: sparqluo.NewIRI("p"), O: sparqluo.NewBlank("x")},
	})
	if db.NumTriples() != 2 {
		t.Errorf("NumTriples = %d, want 2 (duplicate dropped)", db.NumTriples())
	}
}
