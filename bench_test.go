// Benchmarks regenerating every table and figure of the paper's
// evaluation (§7). Each benchmark corresponds to one experiment; the
// sub-benchmark hierarchy mirrors the panels of the figure. Times are the
// benchmark's ns/op; result sizes and the join-space metric are attached
// as custom metrics. Run everything with:
//
//	go test -bench=. -benchmem
//
// See EXPERIMENTS.md for paper-vs-measured shape comparisons and
// cmd/benchuo for a human-readable rendering of the same data.
package sparqluo_test

import (
	"fmt"
	"testing"

	"sparqluo/internal/bench"
	"sparqluo/internal/core"
	"sparqluo/internal/exec"
	"sparqluo/internal/lbr"
	"sparqluo/internal/sparql"
	"sparqluo/internal/store"
)

func init() {
	// The benchmark framework already repeats; disable harness reps.
	bench.Reps = 1
}

// BenchmarkTable2Stats regenerates Table 2: dataset statistics.
func BenchmarkTable2Stats(b *testing.B) {
	for _, dataset := range []string{"LUBM", "DBpedia"} {
		st := bench.StoreFor(dataset)
		b.Run(dataset, func(b *testing.B) {
			s := st.Stats()
			b.ReportMetric(float64(s.NumTriples), "triples")
			b.ReportMetric(float64(s.NumEntities), "entities")
			b.ReportMetric(float64(s.NumPreds), "predicates")
			b.ReportMetric(float64(s.NumLiterals), "literals")
			for i := 0; i < b.N; i++ {
				_ = st.Stats()
			}
		})
	}
}

// queryBench runs one (query, engine, strategy) cell b.N times and
// reports result count and join space.
func queryBench(b *testing.B, st *store.Store, q bench.Query, engine exec.Engine, strat core.Strategy) {
	b.Helper()
	parsed, err := sparql.Parse(q.Text)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := core.Build(parsed, st)
	if err != nil {
		b.Fatal(err)
	}
	var res *core.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = core.RunTree(tree, st, engine, strat)
	}
	b.StopTimer()
	b.ReportMetric(float64(res.Bag.Len()), "results")
	b.ReportMetric(core.JoinSpace(res.Tree, res.Stats), "joinspace")
}

// BenchmarkTable3QueryStats regenerates Table 3 (LUBM query statistics):
// the metrics columns are attached to each sub-benchmark.
func BenchmarkTable3QueryStats(b *testing.B) {
	benchQueryStats(b, "LUBM")
}

// BenchmarkTable4QueryStats regenerates Table 4 (DBpedia query statistics).
func BenchmarkTable4QueryStats(b *testing.B) {
	benchQueryStats(b, "DBpedia")
}

func benchQueryStats(b *testing.B, dataset string) {
	st := bench.StoreFor(dataset)
	queries := append(append([]bench.Query{}, bench.Group1(dataset)...), bench.Group2(dataset)...)
	for _, q := range queries {
		q := q
		b.Run(q.ID, func(b *testing.B) {
			parsed, err := sparql.Parse(q.Text)
			if err != nil {
				b.Fatal(err)
			}
			tree, err := core.Build(parsed, st)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(tree.CountBGP()), "countBGP")
			b.ReportMetric(float64(tree.Depth()), "depth")
			var res *core.Result
			for i := 0; i < b.N; i++ {
				res = core.RunTree(tree, st, exec.WCOEngine{}, core.Full)
			}
			b.ReportMetric(float64(res.Bag.Len()), "results")
		})
	}
}

// BenchmarkFig10Verification regenerates Figure 10: base/TT/CP/full
// execution time for q1.1–q1.6, per engine and dataset panel.
func BenchmarkFig10Verification(b *testing.B) {
	for _, engine := range bench.Engines {
		for _, dataset := range []string{"LUBM", "DBpedia"} {
			st := bench.StoreFor(dataset)
			for _, q := range bench.Group1(dataset) {
				for _, strat := range core.Strategies {
					name := fmt.Sprintf("%s/%s/%s/%s", engine.Name(), dataset, q.ID, strat)
					q, engine, strat := q, engine, strat
					b.Run(name, func(b *testing.B) {
						queryBench(b, st, q, engine, strat)
					})
				}
			}
		}
	}
}

// BenchmarkFig11JoinSpace regenerates Figure 11: execution time plus the
// join-space metric per strategy (join space is the "joinspace" metric of
// each sub-benchmark).
func BenchmarkFig11JoinSpace(b *testing.B) {
	for _, dataset := range []string{"LUBM", "DBpedia"} {
		st := bench.StoreFor(dataset)
		for _, q := range bench.Group1(dataset) {
			for _, strat := range core.Strategies {
				name := fmt.Sprintf("%s/%s/%s", dataset, q.ID, strat)
				q, strat := q, strat
				b.Run(name, func(b *testing.B) {
					queryBench(b, st, q, exec.WCOEngine{}, strat)
				})
			}
		}
	}
}

// BenchmarkFig12Scalability regenerates Figure 12: full's execution time
// on q1.1–q1.6 across LUBM scale factors.
func BenchmarkFig12Scalability(b *testing.B) {
	for _, scale := range bench.Fig12Scales {
		st := bench.LUBMStore(scale)
		for _, q := range bench.LUBMGroup1 {
			q := q
			b.Run(fmt.Sprintf("U%d/%s", scale, q.ID), func(b *testing.B) {
				queryBench(b, st, q, exec.WCOEngine{}, core.Full)
			})
		}
	}
}

// BenchmarkFig13LBRComparison regenerates Figure 13: the full strategy
// against the LBR baseline on q2.1–q2.6.
func BenchmarkFig13LBRComparison(b *testing.B) {
	for _, dataset := range []string{"LUBM", "DBpedia"} {
		st := bench.StoreFor(dataset)
		for _, q := range bench.Group2(dataset) {
			q := q
			b.Run(dataset+"/"+q.ID+"/LBR", func(b *testing.B) {
				parsed, err := sparql.Parse(q.Text)
				if err != nil {
					b.Fatal(err)
				}
				var n int
				for i := 0; i < b.N; i++ {
					res, err := lbr.Run(parsed, st)
					if err != nil {
						b.Fatal(err)
					}
					n = res.Bag.Len()
				}
				b.ReportMetric(float64(n), "results")
			})
			b.Run(dataset+"/"+q.ID+"/full", func(b *testing.B) {
				queryBench(b, st, q, exec.WCOEngine{}, core.Full)
			})
		}
	}
}
