package sparqluo_test

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"sparqluo"
	"sparqluo/internal/bench"
	"sparqluo/internal/dbpedia"
	"sparqluo/internal/lubm"
	"sparqluo/internal/rdf"
)

// TestShardedRoundTripEquivalence is the sharding subsystem's central
// acceptance test: on the LUBM and DBpedia fixtures, a database opened
// from a k-way shard set must answer every benchmark query with output
// byte-identical (W3C SPARQL JSON) to the single parse+freeze database
// it was written from — across both engines, all four strategies, a
// sweep of shard counts and both serial and parallel evaluation.
// Anything the scatter-gather path reorders, drops or duplicates —
// shard-local branch decisions, a k-way merge tie broken differently,
// a per-shard LIMIT cap that isn't prefix-sound — surfaces here as a
// byte difference.
func TestShardedRoundTripEquivalence(t *testing.T) {
	lubmScale, dbpScale := 13, 1500
	if testing.Short() || raceEnabled {
		// The race build keeps the short-mode fixtures: the detector's
		// job is interleaving coverage, and at full scale this test
		// alone overruns the default per-package timeout ~10× slowed.
		lubmScale, dbpScale = 3, 300
	}
	fixtures := []struct {
		name    string
		triples []rdf.Triple
	}{
		{"LUBM", lubm.Generate(lubm.DefaultConfig(lubmScale))},
		{"DBpedia", dbpedia.Generate(dbpedia.DefaultConfig(dbpScale))},
	}
	engines := []sparqluo.Engine{sparqluo.WCO, sparqluo.BinaryJoin}
	engineNames := []string{"wco", "binary"}
	strategies := []sparqluo.Strategy{sparqluo.Base, sparqluo.TT, sparqluo.CP, sparqluo.Full}
	shardCounts := []int{1, 2, 4}
	if raceEnabled {
		// Race-detector cost per query dwarfs the fixture size; keep the
		// dimension extremes and let the plain suite sweep the full grid.
		strategies = []sparqluo.Strategy{sparqluo.Base, sparqluo.Full}
		shardCounts = []int{1, 4}
	}

	for _, fx := range fixtures {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			single := sparqluo.Open()
			single.AddAll(fx.triples)
			single.Freeze()
			dir := t.TempDir()

			for _, k := range shardCounts {
				k := k
				t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
					manifest := filepath.Join(dir, fmt.Sprintf("store%d.shards", k))
					if _, err := single.WriteShards(manifest, k); err != nil {
						t.Fatalf("WriteShards: %v", err)
					}
					sharded, err := sparqluo.OpenShards(manifest)
					if err != nil {
						t.Fatalf("OpenShards: %v", err)
					}
					defer sharded.Close()
					if sharded.NumShards() != k {
						t.Fatalf("NumShards = %d, want %d", sharded.NumShards(), k)
					}
					if sharded.NumTriples() != single.NumTriples() {
						t.Fatalf("NumTriples = %d, want %d", sharded.NumTriples(), single.NumTriples())
					}

					for _, q := range bench.AllQueries() {
						if q.Dataset != fx.name {
							continue
						}
						for ei, engine := range engines {
							for _, strat := range strategies {
								for _, par := range []int{1, 4} {
									opts := []sparqluo.Option{
										sparqluo.WithEngine(engine),
										sparqluo.WithStrategy(strat),
										sparqluo.WithParallelism(par),
									}
									want := queryJSON(t, single, q.Text, opts)
									got := queryJSON(t, sharded, q.Text, opts)
									if !bytes.Equal(want, got) {
										t.Errorf("%s %s/%v par=%d: sharded results differ from single store\nsingle:  %.200s\nsharded: %.200s",
											q.ID, engineNames[ei], strat, par, want, got)
									}
								}
							}
						}
					}
				})
			}
		})
	}
}

// TestShardedLimitPushdownEquivalence: LIMIT/OFFSET windows — the
// early-termination path, where per-shard caps must stay prefix-sound —
// byte-identical between sharded and single stores.
func TestShardedLimitPushdownEquivalence(t *testing.T) {
	scale := 5
	if testing.Short() {
		scale = 2
	}
	single := sparqluo.Open()
	single.AddAll(lubm.Generate(lubm.DefaultConfig(scale)))
	single.Freeze()
	manifest := filepath.Join(t.TempDir(), "store.shards")
	if _, err := single.WriteShards(manifest, 4); err != nil {
		t.Fatalf("WriteShards: %v", err)
	}
	sharded, err := sparqluo.OpenShards(manifest)
	if err != nil {
		t.Fatalf("OpenShards: %v", err)
	}
	defer sharded.Close()

	queries := []string{
		`SELECT ?s ?p ?o WHERE { ?s ?p ?o }`,
		`SELECT ?x ?y WHERE { ?x <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> ?y }`,
	}
	for _, text := range queries {
		for _, eng := range []sparqluo.Engine{sparqluo.WCO, sparqluo.BinaryJoin} {
			for _, limit := range []int{0, 1, 7, 100} {
				for _, offset := range []int{0, 3} {
					opts := []sparqluo.Option{
						sparqluo.WithEngine(eng),
						sparqluo.WithLimit(limit),
						sparqluo.WithOffset(offset),
					}
					want := queryJSON(t, single, text, opts)
					got := queryJSON(t, sharded, text, opts)
					if !bytes.Equal(want, got) {
						t.Errorf("limit=%d offset=%d: sharded window differs\nsingle:  %.150s\nsharded: %.150s",
							limit, offset, want, got)
					}
				}
			}
		}
	}
}

// TestShardedRowsPulledAggregation pins two satellite behaviours: the
// work metric sums across shards (a last-shard-wins bug would report a
// fraction of the single store's count on a full scan), and LIMIT
// push-down savings stay visible on the sharded path (per-shard caps
// keep the capped pull count far below the full scan's).
func TestShardedRowsPulledAggregation(t *testing.T) {
	single := sparqluo.Open()
	single.AddAll(lubm.Generate(lubm.DefaultConfig(3)))
	single.Freeze()
	manifest := filepath.Join(t.TempDir(), "store.shards")
	if _, err := single.WriteShards(manifest, 4); err != nil {
		t.Fatalf("WriteShards: %v", err)
	}
	sharded, err := sparqluo.OpenShards(manifest)
	if err != nil {
		t.Fatalf("OpenShards: %v", err)
	}
	defer sharded.Close()

	const scan = `SELECT ?s ?p ?o WHERE { ?s ?p ?o }`
	full, err := sharded.Query(scan)
	if err != nil {
		t.Fatal(err)
	}
	refFull, err := single.Query(scan)
	if err != nil {
		t.Fatal(err)
	}
	if full.RowsPulled() != refFull.RowsPulled() {
		t.Errorf("full scan pulled %d rows sharded, %d single: per-shard counts not summed",
			full.RowsPulled(), refFull.RowsPulled())
	}
	if full.RowsPulled() < sharded.NumTriples() {
		t.Errorf("full scan pulled %d rows, store has %d triples", full.RowsPulled(), sharded.NumTriples())
	}
	capped, err := sharded.Query(scan, sparqluo.WithLimit(5))
	if err != nil {
		t.Fatal(err)
	}
	if capped.RowsPulled()*10 > full.RowsPulled() {
		t.Errorf("LIMIT 5 pulled %d of %d rows: push-down savings lost on the sharded path",
			capped.RowsPulled(), full.RowsPulled())
	}
	t.Logf("rows pulled: full=%d capped=%d", full.RowsPulled(), capped.RowsPulled())
}

// TestOpenFileDetectsShardManifest: the one-flag data path tells shard
// manifests, snapshot images and N-Triples apart by magic.
func TestOpenFileDetectsShardManifest(t *testing.T) {
	db := sparqluo.Open()
	db.AddAll(lubm.Generate(lubm.DefaultConfig(1)))
	db.Freeze()
	dir := t.TempDir()
	manifest := filepath.Join(dir, "store.shards")
	if _, err := db.WriteShards(manifest, 2); err != nil {
		t.Fatalf("WriteShards: %v", err)
	}
	if ok, err := sparqluo.IsShardManifest(manifest); err != nil || !ok {
		t.Fatalf("IsShardManifest = (%v, %v), want (true, nil)", ok, err)
	}
	opened, source, err := sparqluo.OpenFile(manifest)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer opened.Close()
	if source != "shards" {
		t.Errorf("source = %q, want \"shards\"", source)
	}
	if opened.NumShards() != 2 {
		t.Errorf("NumShards = %d, want 2", opened.NumShards())
	}
	if opened.NumTriples() != db.NumTriples() {
		t.Errorf("NumTriples = %d, want %d", opened.NumTriples(), db.NumTriples())
	}
}

// TestShardedDBIsReadOnly: mutation entry points reject a sharded
// database with clear errors rather than corrupting one shard.
func TestShardedDBIsReadOnly(t *testing.T) {
	db := sparqluo.Open()
	db.AddAll(lubm.Generate(lubm.DefaultConfig(1)))
	db.Freeze()
	manifest := filepath.Join(t.TempDir(), "store.shards")
	if _, err := db.WriteShards(manifest, 2); err != nil {
		t.Fatalf("WriteShards: %v", err)
	}
	sharded, err := sparqluo.OpenShards(manifest)
	if err != nil {
		t.Fatalf("OpenShards: %v", err)
	}
	defer sharded.Close()

	if err := sharded.Load(bytes.NewReader(nil)); err == nil {
		t.Error("Load on a sharded DB should fail")
	}
	if sharded.Store() != nil {
		t.Error("Store() on a sharded DB should return nil")
	}
	if err := sharded.WriteSnapshot(filepath.Join(t.TempDir(), "x.img")); err == nil {
		t.Error("WriteSnapshot on a sharded DB should fail")
	}
	if _, err := sharded.WriteShards(filepath.Join(t.TempDir(), "y.shards"), 2); err == nil {
		t.Error("WriteShards on a sharded DB should fail")
	}
	if err := sharded.Add(rdf.Triple{S: rdf.NewIRI("s"), P: rdf.NewIRI("p"), O: rdf.NewIRI("o")}); !errors.Is(err, sparqluo.ErrFrozen) {
		t.Errorf("Add on a sharded DB: err = %v, want ErrFrozen", err)
	}
	// Freeze must stay a harmless no-op, and queries must keep working.
	sharded.Freeze()
	if _, err := sharded.Query(`SELECT ?s WHERE { ?s ?p ?o } LIMIT 1`); err != nil {
		t.Errorf("query after no-op Freeze: %v", err)
	}
}
