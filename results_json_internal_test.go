package sparqluo

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
)

// TestWriteJSONStringMatchesEncodingJSON differentially checks the
// zero-allocation string escaper against encoding/json's (HTML-escaping)
// encoder, byte for byte, over the tricky inputs: quotes, backslashes,
// control characters, HTML-significant bytes, U+2028/U+2029, multi-byte
// UTF-8 and invalid UTF-8.
func TestWriteJSONStringMatchesEncodingJSON(t *testing.T) {
	cases := []string{
		"",
		"plain ascii",
		`quote " and backslash \`,
		"newline\n tab\t cr\r",
		"control \x00\x01\x1f",
		"html <b>&amp;</b>",
		"line sep \u2028 and para sep \u2029",
		"héllo wörld — ünïcode",
		"日本語テキスト",
		"invalid \xff\xfe utf8 \xc3\x28 tail",
		"mixed \u2028\xffx\u2029",
		strings.Repeat("a\u2028b\"c", 50),
	}
	for _, s := range cases {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		bw := bufio.NewWriter(&sb)
		writeJSONString(bw, s)
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		if sb.String() != string(want) {
			t.Errorf("escape mismatch for %q:\ngot:  %s\nwant: %s", s, sb.String(), want)
		}
	}
}
