// Knowledge-graph integration: the diverse-representation scenario from
// the paper's introduction. Data integrated from multiple sources names
// entities inconsistently (foaf:name vs rdfs:label), so retrieving "all
// names of all entities in a category" needs UNION; enrichment with
// cross-references that only some entities have needs OPTIONAL.
//
// The example generates a DBpedia-like graph, then compares the four
// optimization strategies on the same query, printing execution time and
// join space for each — a miniature of the paper's Figure 10.
package main

import (
	"fmt"
	"log"

	"sparqluo"
	"sparqluo/internal/dbpedia"
)

const query = `
PREFIX dbr: <http://dbpedia.org/resource/>
PREFIX dbo: <http://dbpedia.org/ontology/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX owl: <http://www.w3.org/2002/07/owl#>
SELECT ?x ?name ?same WHERE {
  ?x dbo:wikiPageWikiLink dbr:Economic_system .
  { ?x foaf:name ?name } UNION { ?x rdfs:label ?name }
  OPTIONAL { ?x owl:sameAs ?same }
}`

func main() {
	db := sparqluo.Open()
	db.AddAll(dbpedia.Generate(dbpedia.DefaultConfig(8000)))
	db.Freeze()
	fmt.Printf("synthetic DBpedia-like graph: %d triples\n\n", db.NumTriples())

	// Prepare once: the query is parsed and its BE-tree built a single
	// time; each strategy below re-executes the same plan.
	prep, err := db.Prepare(query)
	if err != nil {
		log.Fatal(err)
	}

	strategies := []struct {
		name string
		s    sparqluo.Strategy
	}{
		{"base", sparqluo.Base},
		{"TT", sparqluo.TT},
		{"CP", sparqluo.CP},
		{"full", sparqluo.Full},
	}
	fmt.Printf("%-6s %10s %12s %12s %8s\n", "strat", "exec", "transform", "join space", "results")
	for _, st := range strategies {
		res, err := prep.Exec(sparqluo.WithStrategy(st.s))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %10v %12v %12.0f %8d\n",
			st.name, res.ExecTime().Round(1000), res.TransformTime().Round(1000),
			res.JoinSpace(), res.Len())
	}

	// Show a few answers, streamed off the row cursor.
	res, err := prep.Exec()
	if err != nil {
		log.Fatal(err)
	}
	defer res.Close()
	fmt.Println("\nsample solutions:")
	for i, row := range res.Rows() {
		if i == 5 {
			break
		}
		x, _ := row.Term(0)
		name, _ := row.Term(1)
		same := "(no cross-reference)"
		if t, ok := row.Term(2); ok {
			same = t.Value
		}
		fmt.Printf("  %-20s %-24q %s\n", x.Value, name.Value, same)
	}
}
