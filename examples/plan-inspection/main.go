// Plan inspection: shows the BE-tree transformations in action on the
// paper's Figure 6 (inject) and Figure 7 (merge) examples. The optimizer
// estimates the Δ-cost of every applicable transformation (§5) and
// performs exactly those with negative estimates; either way the
// transformed plan is semantics-preserving (Theorems 1–2). On the paper's
// full-size DBpedia, the Figure 7 merge is unfavorable because the huge
// owl:sameAs relation would be evaluated twice; at this synthetic scale
// the cost model may legitimately decide either way — the point of the
// example is to watch the decision being made.
package main

import (
	"fmt"
	"log"

	"sparqluo"
	"sparqluo/internal/dbpedia"
)

const prefixes = `
PREFIX dbr: <http://dbpedia.org/resource/>
PREFIX dbo: <http://dbpedia.org/ontology/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX owl: <http://www.w3.org/2002/07/owl#>
`

// Figure 6: the highly selective wikiPageWikiLink anchor should be
// injected into the OPTIONAL so the engine evaluates it first inside the
// left-outer join's right side. (The full strategy would skip this as
// equivalent to candidate pruning; TT performs it.)
const favorableInject = prefixes + `
SELECT ?x ?same WHERE {
  ?x dbo:wikiPageWikiLink dbr:President_of_the_United_States .
  ?x rdfs:label ?l .
  OPTIONAL { ?x owl:sameAs ?same }
}`

// Figure 7: owl:sameAs has low selectivity; on full-size DBpedia merging
// it into the UNION evaluates it twice for no benefit. Watch whether the
// Δ-cost model accepts or declines the merge at this scale.
const unfavorableMerge = prefixes + `
SELECT ?x ?same ?name WHERE {
  ?x owl:sameAs ?same .
  { ?x foaf:name ?name } UNION { ?x rdfs:label ?name }
}`

func main() {
	db := sparqluo.Open()
	db.AddAll(dbpedia.Generate(dbpedia.DefaultConfig(6000)))
	db.Freeze()

	show(db, "favorable inject (Figure 6)", favorableInject)
	show(db, "unfavorable merge (Figure 7)", unfavorableMerge)
}

func show(db *sparqluo.DB, title, query string) {
	// Prepare once; Explain and Exec both reuse the built plan. Use TT
	// so the §6 special-case skip doesn't hide the transformation.
	prep, err := db.Prepare(query, sparqluo.WithStrategy(sparqluo.TT))
	if err != nil {
		log.Fatal(err)
	}
	before, after, err := prep.Explain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("==", title, "==")
	fmt.Println("before:")
	fmt.Println(before)
	fmt.Println("after:")
	fmt.Println(after)

	res, err := prep.Exec()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed: %d results, %d transformations, exec %v\n\n",
		res.Len(), res.Transformations(), res.ExecTime())
}
