// University reporting over LUBM-style data: a nested-OPTIONAL query that
// fetches a student's department and, when available, the department's
// publishing faculty and their publications — the incomplete-data
// scenario OPTIONAL exists for. Demonstrates that solutions are retained
// even when the optional enrichments are absent, and shows the plan the
// optimizer chose (candidate pruning carries the single student binding
// into the nested OPTIONALs).
//
// The student is a query parameter: the report query is prepared once
// (parse + BE-tree build) and executed per student with Bind
// substituting the email address — the qgen-style templated workload
// the prepared-query API exists for.
package main

import (
	"fmt"
	"log"

	"sparqluo"
	"sparqluo/internal/lubm"
)

// The ?email variable is the template parameter, bound per execution.
const reportTemplate = `
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT ?dept ?deptname ?prof ?pub WHERE {
  ?student ub:emailAddress ?email .
  OPTIONAL { ?student ub:memberOf ?dept . ?dept ub:name ?deptname .
    OPTIONAL { ?pub ub:publicationAuthor ?prof . ?prof ub:worksFor ?dept . } }
}`

func main() {
	db := sparqluo.Open()
	db.AddAll(lubm.Generate(lubm.DefaultConfig(5)))
	db.Freeze()
	fmt.Printf("LUBM(5): %d triples\n\n", db.NumTriples())

	prep, err := db.Prepare(reportTemplate)
	if err != nil {
		log.Fatal(err)
	}

	for _, student := range []string{
		"UndergraduateStudent9@Department2.University0.edu",
		"UndergraduateStudent3@Department1.University1.edu",
	} {
		res, err := prep.Exec(sparqluo.Bind("email", sparqluo.NewLiteral(student)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("report for %s\n%d rows (exec %v, %d plan transformations)\n",
			student, res.Len(), res.ExecTime(), res.Transformations())
		for i, row := range res.Rows() {
			if i == 10 {
				fmt.Printf("  ... (%d more)\n", res.Len()-10)
				break
			}
			deptname, prof, pub := "-", "-", "-"
			if t, ok := row.Term(1); ok {
				deptname = t.Value
			}
			if t, ok := row.Term(2); ok {
				prof = shorten(t.Value)
			}
			if t, ok := row.Term(3); ok {
				pub = shorten(t.Value)
			}
			fmt.Printf("  dept=%-12s prof=%-22s pub=%s\n", deptname, prof, pub)
		}
		fmt.Println()
	}

	before, after, err := prep.Explain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan before transformation:")
	fmt.Println(before)
	fmt.Println("plan after transformation:")
	fmt.Println(after)
}

func shorten(iri string) string {
	for i := len(iri) - 1; i >= 0; i-- {
		if iri[i] == '/' {
			return iri[i+1:]
		}
	}
	return iri
}
