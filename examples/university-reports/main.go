// University reporting over LUBM-style data: a nested-OPTIONAL query that
// fetches a student's department and, when available, the department's
// publishing faculty and their publications — the incomplete-data
// scenario OPTIONAL exists for. Demonstrates that solutions are retained
// even when the optional enrichments are absent, and shows the plan the
// optimizer chose (candidate pruning carries the single student binding
// into the nested OPTIONALs).
package main

import (
	"fmt"
	"log"

	"sparqluo"
	"sparqluo/internal/lubm"
)

const query = `
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT ?dept ?deptname ?prof ?pub WHERE {
  ?student ub:emailAddress "UndergraduateStudent9@Department2.University0.edu" .
  OPTIONAL { ?student ub:memberOf ?dept . ?dept ub:name ?deptname .
    OPTIONAL { ?pub ub:publicationAuthor ?prof . ?prof ub:worksFor ?dept . } }
}`

func main() {
	db := sparqluo.Open()
	db.AddAll(lubm.Generate(lubm.DefaultConfig(5)))
	db.Freeze()
	fmt.Printf("LUBM(5): %d triples\n\n", db.NumTriples())

	res, err := db.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d rows (exec %v, %d plan transformations)\n\n",
		res.Len(), res.ExecTime(), res.Transformations())
	for i, sol := range res.Solutions() {
		if i == 10 {
			fmt.Printf("  ... (%d more)\n", res.Len()-10)
			break
		}
		prof, pub := "-", "-"
		if t, ok := sol["prof"]; ok {
			prof = shorten(t.Value)
		}
		if t, ok := sol["pub"]; ok {
			pub = shorten(t.Value)
		}
		fmt.Printf("  dept=%-12s prof=%-22s pub=%s\n", sol["deptname"].Value, prof, pub)
	}

	before, after, err := db.Explain(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nplan before transformation:")
	fmt.Println(before)
	fmt.Println("plan after transformation:")
	fmt.Println(after)
}

func shorten(iri string) string {
	for i := len(iri) - 1; i >= 0; i-- {
		if iri[i] == '/' {
			return iri[i+1:]
		}
	}
	return iri
}
