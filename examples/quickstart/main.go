// Quickstart: build a tiny RDF graph in memory and run a SPARQL query
// combining UNION and OPTIONAL — the Figure 1 scenario of the paper.
package main

import (
	"fmt"
	"log"
	"strings"

	"sparqluo"
)

const data = `
@prefix dbr: <http://dbpedia.org/resource/> .
@prefix dbo: <http://dbpedia.org/ontology/> .
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix owl: <http://www.w3.org/2002/07/owl#> .
dbr:George_W._Bush foaf:name "George Walker Bush"@en .
dbr:George_W._Bush rdfs:label "George W. Bush"@en .
dbr:George_W._Bush dbo:wikiPageWikiLink dbr:President_of_the_United_States .
dbr:Bill_Clinton foaf:name "Bill Clinton"@en .
dbr:Bill_Clinton dbo:wikiPageWikiLink dbr:President_of_the_United_States .
dbr:Bill_Clinton owl:sameAs <http://freebase.example.org/Clinton_William_Jefferson> .
`

const query = `
PREFIX dbr: <http://dbpedia.org/resource/>
PREFIX dbo: <http://dbpedia.org/ontology/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX owl: <http://www.w3.org/2002/07/owl#>
SELECT ?x ?name ?same WHERE {
  ?x dbo:wikiPageWikiLink dbr:President_of_the_United_States .
  { ?x foaf:name ?name } UNION { ?x rdfs:label ?name }
  OPTIONAL { ?x owl:sameAs ?same }
}`

func main() {
	db := sparqluo.Open()
	if err := db.Load(strings.NewReader(data)); err != nil {
		log.Fatal(err)
	}
	db.Freeze()

	res, err := db.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	defer res.Close()
	fmt.Printf("%d solutions:\n", res.Len())
	// Stream the rows with the cursor: columns are in projection order
	// (0 = ?x, 1 = ?name, 2 = ?same), and no map is materialized.
	for _, row := range res.Rows() {
		x, _ := row.Term(0)
		name, _ := row.Term(1)
		same := "-"
		if t, ok := row.Term(2); ok {
			same = t.String()
		}
		fmt.Printf("  %-28s name=%-26s sameAs=%s\n", x.Value, name.Value, same)
	}

	fmt.Println("\nexecuted plan:")
	fmt.Println(res.Plan())
}
