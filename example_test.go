package sparqluo_test

import (
	"fmt"
	"log"

	"sparqluo"
)

// ExampleResults_Rows demonstrates the streaming cursor: Rows yields
// (index, Row) pairs without materializing maps, Row.Term reads one
// column by projection position, and the cursor is closed with a
// deferred Close. A Results may be iterated exactly once.
func ExampleResults_Rows() {
	db := sparqluo.Open()
	db.AddAll([]sparqluo.Triple{
		{S: sparqluo.NewIRI("http://e/alice"), P: sparqluo.NewIRI("http://e/name"), O: sparqluo.NewLiteral("Alice")},
		{S: sparqluo.NewIRI("http://e/bob"), P: sparqluo.NewIRI("http://e/name"), O: sparqluo.NewLiteral("Bob")},
	})
	db.Freeze()

	res, err := db.Query(`SELECT ?name WHERE { ?s <http://e/name> ?name }`)
	if err != nil {
		log.Fatal(err)
	}
	defer res.Close()
	for i, row := range res.Rows() {
		if name, ok := row.Term(0); ok {
			fmt.Printf("%d: %s\n", i, name.Value)
		}
	}
	// Output:
	// 0: Alice
	// 1: Bob
}

// ExamplePrepared demonstrates parse-once/execute-many with a bound
// parameter: the template is prepared a single time and executed per
// value of ?s.
func ExamplePrepared() {
	db := sparqluo.Open()
	db.AddAll([]sparqluo.Triple{
		{S: sparqluo.NewIRI("http://e/alice"), P: sparqluo.NewIRI("http://e/name"), O: sparqluo.NewLiteral("Alice")},
		{S: sparqluo.NewIRI("http://e/bob"), P: sparqluo.NewIRI("http://e/name"), O: sparqluo.NewLiteral("Bob")},
	})
	db.Freeze()

	prep, err := db.Prepare(`SELECT ?name WHERE { ?s <http://e/name> ?name }`)
	if err != nil {
		log.Fatal(err)
	}
	for _, who := range []string{"http://e/bob", "http://e/alice"} {
		res, err := prep.Exec(sparqluo.Bind("s", sparqluo.NewIRI(who)))
		if err != nil {
			log.Fatal(err)
		}
		for _, sol := range res.Solutions() {
			fmt.Println(sol["name"].Value)
		}
	}
	// Output:
	// Bob
	// Alice
}
