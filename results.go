package sparqluo

import (
	"errors"
	"iter"
	"time"

	"sparqluo/internal/algebra"
	"sparqluo/internal/core"
	"sparqluo/internal/sparql"
	"sparqluo/internal/store"
)

// ErrResultsConsumed is recorded (and returned by WriteJSON) when a
// Results cursor is iterated a second time. Exactly one of Rows,
// Solutions or WriteJSON may consume a Results; re-run the query, or
// keep the Solutions slice, to read the rows again.
var ErrResultsConsumed = errors.New("sparqluo: results already consumed (Rows/Solutions/WriteJSON iterate once; re-run the query to read rows again)")

// Solution is one query solution: variable name → bound term. Unbound
// variables (possible under OPTIONAL) are absent from the map.
type Solution map[string]Term

// Results is the outcome of a query: a single-use cursor over the
// solution rows plus execution metadata. Iterate it exactly once with
// Rows (zero-allocation), Solutions (name→term maps) or WriteJSON
// (streaming W3C JSON); a second iteration yields no rows and records
// ErrResultsConsumed. Metadata accessors stay valid after the cursor is
// consumed or closed. A Results is not safe for concurrent use.
type Results struct {
	dict     *store.Dict
	res      *core.Result
	names    []string // projected variable names, render order
	cols     []int    // cols[i] = row slot of names[i]
	consumed bool
	err      error
}

// newResults wraps one execution's outcome in a fresh cursor.
func (db *DB) newResults(q *sparql.Query, res *core.Result) *Results {
	names := res.Vars.Names()
	if len(q.Select) > 0 {
		names = q.Select
	}
	cols := make([]int, len(names))
	for i, n := range names {
		cols[i], _ = res.Vars.Lookup(n) // Build interns every projected var
	}
	return &Results{dict: db.st.Dict(), res: res, names: names, cols: cols}
}

// Len returns the number of solutions.
func (r *Results) Len() int { return r.res.Bag.Len() }

// Vars returns the variable names of the result rows, in projection
// order. Row column i corresponds to Vars()[i].
func (r *Results) Vars() []string { return r.names }

// Row is a zero-allocation view of one solution row, valid only inside
// the Rows iteration that yielded it. Columns are indexed 0..Len()-1 in
// projection order (the order of Results.Vars).
type Row struct {
	r   *Results
	row algebra.Row
}

// Len returns the number of columns (projected variables).
func (w Row) Len() int { return len(w.r.cols) }

// Var returns the variable name of column i.
func (w Row) Var(i int) string { return w.r.names[i] }

// Bound reports whether column i is bound in this row.
func (w Row) Bound(i int) bool { return w.row[w.r.cols[i]] != store.None }

// Term decodes column i of the row. The second result is false when the
// variable is unbound in this solution (possible under OPTIONAL).
func (w Row) Term(i int) (Term, bool) {
	id := w.row[w.r.cols[i]]
	if id == store.None {
		return Term{}, false
	}
	return w.r.dict.Decode(id), true
}

// acquire claims the single iteration; callers that lose record the
// error for Err and get nothing to iterate.
func (r *Results) acquire() error {
	if r.consumed {
		r.err = ErrResultsConsumed
		return r.err
	}
	r.consumed = true
	return nil
}

// Rows returns a single-use iterator over the solution rows: the first
// value is the row index, the second the Row view. Iterating allocates
// nothing per row. After the cursor has been consumed (by Rows,
// Solutions, WriteJSON or Close) the sequence yields nothing and Err
// returns ErrResultsConsumed.
func (r *Results) Rows() iter.Seq2[int, Row] {
	return func(yield func(int, Row) bool) {
		if r.acquire() != nil {
			return
		}
		for i, row := range r.res.Bag.All() {
			if !yield(i, Row{r: r, row: row}) {
				return
			}
		}
	}
}

// Err returns the error recorded during iteration — currently only
// ErrResultsConsumed from a second iteration attempt.
func (r *Results) Err() error { return r.err }

// Close releases the cursor: subsequent iteration attempts yield no
// rows. Closing is idempotent, never fails, and does not disturb an
// already-recorded error or the metadata accessors. It exists so
// callers can `defer res.Close()` symmetrically with database cursors.
func (r *Results) Close() error {
	r.consumed = true
	return nil
}

// Solutions materializes the remaining solutions as name→term maps. It
// is a convenience wrapper over Rows and, like it, consumes the cursor:
// a second iteration of any kind returns nothing (see Err). Only
// projected variables appear in the maps.
func (r *Results) Solutions() []Solution {
	out := make([]Solution, 0, r.Len())
	for _, row := range r.Rows() {
		sol := Solution{}
		for i := 0; i < row.Len(); i++ {
			if t, ok := row.Term(i); ok {
				sol[row.Var(i)] = t
			}
		}
		out = append(out, sol)
	}
	return out
}

// Plan returns a rendering of the BE-tree that was executed (after any
// transformations).
func (r *Results) Plan() string { return r.res.Tree.String() }

// Transformations returns the number of merge/inject transformations the
// optimizer applied.
func (r *Results) Transformations() int { return r.res.Transformations }

// ExecTime returns the time spent executing the plan.
func (r *Results) ExecTime() time.Duration { return r.res.ExecTime }

// TransformTime returns the time spent in plan transformation.
func (r *Results) TransformTime() time.Duration { return r.res.TransformTime }

// JoinSpace returns the paper's join-space metric for this execution, an
// indicator of the largest intermediate result materialized.
func (r *Results) JoinSpace() float64 {
	return core.JoinSpace(r.res.Tree, r.res.Stats)
}

// RowsPulled returns the number of operand and index rows execution
// drew from the engines' scans and the capped final operators — the
// work metric LIMIT push-down shrinks. A query answered by early
// termination reports far fewer pulled rows than the same query run to
// completion.
func (r *Results) RowsPulled() int { return r.res.Stats.RowsPulled }
