module sparqluo

go 1.24
