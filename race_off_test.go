//go:build !race

package sparqluo_test

const raceEnabled = false
