// Serving-path benchmarks: the parse-once/execute-many win of prepared
// queries on a repeated-template workload, and HTTP queries-per-second
// with cold parsing, a warm plan cache, and the direct prepared API.
// CI runs these with -benchtime=1x (make bench-serve) as a smoke test;
// use -benchtime=2s locally for real numbers.
package sparqluo_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"

	"sparqluo"
	"sparqluo/internal/lubm"
)

// lubm13DB is the LUBM-13 store of the repeated-template workload,
// built once and shared by the serving benchmarks (read-only after
// Freeze).
var (
	lubm13Once sync.Once
	lubm13     *sparqluo.DB
)

func lubm13DB(tb testing.TB) *sparqluo.DB {
	lubm13Once.Do(func() {
		db := sparqluo.Open()
		db.AddAll(lubm.Generate(lubm.DefaultConfig(13)))
		db.Freeze()
		lubm13 = db
	})
	return lubm13
}

// The qgen-style template workload: one point-selective report query
// asked over and over with a different student parameter — the shape a
// production endpoint serves millions of times. templateEmails rotates
// the parameter so no per-value caching can hide the plan cost.
const serveTemplate = `
	PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
	SELECT ?dept ?name WHERE {
		?s ub:emailAddress ?email .
		?s ub:memberOf ?dept .
		OPTIONAL { ?dept ub:name ?name }
	}`

var templateEmails = []string{
	"UndergraduateStudent0@Department0.University0.edu",
	"UndergraduateStudent1@Department1.University1.edu",
	"UndergraduateStudent2@Department0.University2.edu",
	"UndergraduateStudent3@Department1.University3.edu",
}

func instantiate(i int) string {
	email := templateEmails[i%len(templateEmails)]
	return fmt.Sprintf(`
	PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
	SELECT ?dept ?name WHERE {
		?s ub:emailAddress %q .
		?s ub:memberOf ?dept .
		OPTIONAL { ?dept ub:name ?name }
	}`, email)
}

// BenchmarkQueryOneShot is the baseline a naive serving loop pays per
// request: parse + BE-tree build + transform + evaluate for every
// instantiated template.
func BenchmarkQueryOneShot(b *testing.B) {
	db := lubm13DB(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(instantiate(i))
		if err != nil {
			b.Fatal(err)
		}
		if err := res.WriteJSON(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreparedExec is the same workload through the prepared path:
// the template is parsed and planned once, each iteration pays only
// Bind + transform + evaluate.
func BenchmarkPreparedExec(b *testing.B) {
	db := lubm13DB(b)
	prep, err := db.Prepare(serveTemplate)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := prep.Exec(sparqluo.Bind("email",
			sparqluo.NewLiteral(templateEmails[i%len(templateEmails)])))
		if err != nil {
			b.Fatal(err)
		}
		if err := res.WriteJSON(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeHTTP measures end-to-end HTTP QPS on the template
// workload (one fixed instantiation, so the plan cache can hit):
// cold-parse on every request, a warm plan cache, and — as the upper
// bound the HTTP layers sit on — the direct prepared API.
func BenchmarkServeHTTP(b *testing.B) {
	db := lubm13DB(b)
	rawQuery := "query=" + url.QueryEscape(instantiate(0))

	drive := func(b *testing.B, handler http.Handler) {
		srv := httptest.NewServer(handler)
		defer srv.Close()
		client := srv.Client()
		// Warm the cache (and the connection) outside the timer.
		resp, err := client.Get(srv.URL + "/sparql?" + rawQuery)
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := client.Get(srv.URL + "/sparql?" + rawQuery)
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}

	b.Run("cold-parse", func(b *testing.B) {
		drive(b, sparqluo.NewHandler(db))
	})
	b.Run("plan-cache-hit", func(b *testing.B) {
		drive(b, sparqluo.NewHandler(db, sparqluo.WithPlanCache(16)))
	})
	b.Run("prepared-direct", func(b *testing.B) {
		prep, err := db.Prepare(instantiate(0))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := prep.Exec()
			if err != nil {
				b.Fatal(err)
			}
			if err := res.WriteJSON(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
}
