package exec

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"sparqluo/internal/algebra"
	"sparqluo/internal/store"
)

// randomCandidates builds a candidate set for up to two variables of the
// BGP, mirroring the pruning layer's shape.
func randomCandidates(rng *rand.Rand, st *store.Store, bgp BGP) Candidates {
	vars := bgp.Vars()
	if len(vars) == 0 || rng.Intn(2) == 0 {
		return nil
	}
	cand := Candidates{}
	for k := 0; k < 1+rng.Intn(2); k++ {
		v := vars[rng.Intn(len(vars))]
		set := map[store.ID]struct{}{}
		for i := 0; i < 1+rng.Intn(6); i++ {
			set[store.ID(1+rng.Intn(st.Dict().Len()))] = struct{}{}
		}
		cand[v] = set
	}
	return cand
}

// TestQuickMatchOrderSound: the order MatchOrder claims for a fresh scan
// is an order the emitted rows actually ascend by — with and without
// candidate sets, across every boundness combination randomPattern
// produces. This is the contract scanPattern's Order field rests on.
func TestQuickMatchOrderSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomStore(rng, 50+rng.Intn(80))
		const width = 4
		for k := 0; k < 8; k++ {
			pat := randomPattern(rng, st)
			cand := randomCandidates(rng, st, BGP{pat})
			bag := algebra.NewBag(width)
			bag.Order = MatchOrder(st, pat, func(int) bool { return false }, cand)
			MatchPattern(st, pat, make(algebra.Row, width), cand, func(r algebra.Row) bool {
				bag.Append(r)
				return true
			})
			if !bag.SortedBy(bag.Order) {
				t.Logf("pattern %+v cand=%v: %d rows not sorted by claimed %v",
					pat, cand, bag.Len(), bag.Order)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickEngineOrderClaimsSound: whatever physical order an engine's
// EvalBGP result claims, the rows ascend by it. For the WCO engine this
// exercises the cumulative per-extension-step order; for the binary
// engine the scan orders carried through the order-aware joins.
func TestQuickEngineOrderClaimsSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomStore(rng, 50+rng.Intn(80))
		const width = 4
		var bgp BGP
		for i := 0; i < 1+rng.Intn(3); i++ {
			bgp = append(bgp, randomPattern(rng, st))
		}
		cand := randomCandidates(rng, st, bgp)
		for _, engine := range []Engine{WCOEngine{}, BinaryJoinEngine{}} {
			res := engine.EvalBGP(context.Background(), st, bgp, width, cand)
			if !res.SortedBy(res.Order) {
				t.Logf("%s: bgp %+v cand=%v: %d rows not sorted by claimed %v",
					engine.Name(), bgp, cand, res.Len(), res.Order)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
