package exec

import (
	"context"

	"sparqluo/internal/algebra"
	"sparqluo/internal/store"
)

// WCOEngine evaluates BGPs in the style of gStore's worst-case-optimal
// join (§5.1.2): one triple pattern is matched at a time, extending every
// partial mapping through the permutation indexes, so intermediate results
// never exceed the true prefix result sizes.
type WCOEngine struct{}

// Name implements Engine.
func (WCOEngine) Name() string { return "wco" }

// EvalBGP implements Engine by vertex extension along a greedy join order.
// Cancellation is polled between row extensions so that worst-case joins
// abort promptly; the truncated bag is only observed by callers that
// ignore ctx.Err().
//
// Each level of partial mappings lives in a flat bag arena, and the
// result reports the physical order that falls out of the extension
// walk: every step enumerates its index range ascending within each
// parent row, so the concatenated per-step MatchOrder sequences are a
// lexicographic sort of the output — the "interesting order" the
// order-aware joins downstream consume.
func (e WCOEngine) EvalBGP(ctx context.Context, st store.Reader, bgp BGP, width int, cand Candidates) *algebra.Bag {
	return e.EvalBGPTop(ctx, st, bgp, width, cand, -1, nil)
}

// EvalBGPTop implements Engine with LIMIT push-down. The vertex
// extension keeps intermediate levels complete — every partial mapping
// may still be needed to produce the first max results — but the final
// extension level stops as soon as max rows exist: its emission order
// is deterministic, so the capped bag is a byte-identical prefix of the
// full result. pulled accumulates the rows appended across all levels,
// the engine's work metric.
func (WCOEngine) EvalBGPTop(ctx context.Context, st store.Reader, bgp BGP, width int, cand Candidates, max int, pulled *int) *algebra.Bag {
	out := algebra.NewBag(width)
	for _, v := range bgp.Vars() {
		out.Cert.Set(v)
		out.Maybe.Set(v)
	}
	if len(bgp) == 0 {
		if max != 0 {
			out.TakeRows(algebra.Unit(width))
		}
		return out
	}
	for _, p := range bgp {
		if p.Impossible() {
			return out
		}
	}
	if max == 0 {
		return out
	}
	n := 0
	if pulled != nil {
		defer func() { *pulled += n }()
	}
	order := greedyOrderWithCands(st, bgp, cand)
	poll := ctxPoll{ctx: ctx}
	rows := algebra.Unit(width)
	boundVars := make(map[int]bool)
	bound := func(v int) bool { return boundVars[v] }
	var ord []int
	ordValid := true
	for li, idx := range order {
		pat := bgp[idx]
		last := li == len(order)-1
		// An order is only claimable while every step so far reported
		// one: a step with unknown emission order scrambles the suffix.
		if ordValid {
			step := MatchOrder(st, pat, bound, cand)
			if step == nil && len(seqVars(pat, bound)) > 0 {
				ord, ordValid = nil, false
			} else {
				ord = append(ord, step...)
			}
		}
		next := algebra.NewBag(width)
		full := func() bool { return last && max >= 0 && next.Len() >= max }
		scattered := false
		if li == 0 {
			// The seed level extends the unit mapping — a fresh whole-pattern
			// scan, which can fan out across shards and recombine in the
			// same deterministic order the sequential scan would produce.
			if sh, ok := shardedFor(st); ok && scatterable(pat, cand) {
				scanMax := -1
				if last && max >= 0 {
					scanMax = max
				}
				var pn int
				if sb, ok := scatterScan(sh, pat, width, cand, &poll, scanMax, &pn); ok {
					next.TakeRows(sb)
					n += pn
					scattered = true
				}
			}
		}
		if !scattered {
			for i := 0; i < rows.Len(); i++ {
				MatchPattern(st, pat, rows.Row(i), cand, func(nr algebra.Row) bool {
					if poll.stopped {
						return false // cancelled mid-scan: stop accumulating
					}
					next.Append(nr)
					n++
					poll.tick()
					return !full()
				})
				if poll.stopped {
					return out
				}
				if full() {
					break
				}
			}
		}
		if poll.done() {
			return out
		}
		for _, v := range pat.Vars() {
			boundVars[v] = true
		}
		rows = next
		if rows.Len() == 0 {
			return out
		}
	}
	out.TakeRows(rows)
	out.Order = ord
	return out
}

// seqVars returns the pattern's variables not yet bound — the variables
// an extension step newly binds.
func seqVars(pat Pattern, bound func(int) bool) []int {
	var out []int
	for _, v := range pat.Vars() {
		if !bound(v) {
			out = append(out, v)
		}
	}
	return out
}

// greedyOrderWithCands is greedyOrder, but a pattern whose variable has a
// candidate set is treated as more selective: candidate sets bound the
// scan, so starting from them realizes the pruning of §6.
func greedyOrderWithCands(st store.Reader, bgp BGP, cand Candidates) []int {
	if cand == nil {
		return greedyOrder(st, bgp)
	}
	n := len(bgp)
	counts := make([]int, n)
	for i, p := range bgp {
		c := ExactCount(st, p)
		for _, v := range p.Vars() {
			if set := cand.Set(v); set != nil && len(set) < c {
				c = len(set)
			}
		}
		counts[i] = c
	}
	order := make([]int, 0, n)
	used := make([]bool, n)
	bound := map[int]bool{}
	for len(order) < n {
		best, bestCount, bestConn := -1, 0, false
		for i := range bgp {
			if used[i] {
				continue
			}
			conn := len(order) == 0
			for _, v := range bgp[i].Vars() {
				if bound[v] {
					conn = true
					break
				}
			}
			if best == -1 || (conn && !bestConn) || (conn == bestConn && counts[i] < bestCount) {
				best, bestCount, bestConn = i, counts[i], conn
			}
		}
		used[best] = true
		order = append(order, best)
		for _, v := range bgp[best].Vars() {
			bound[v] = true
		}
	}
	return order
}

// EstimateCard implements Engine via the shared sampling estimator.
func (WCOEngine) EstimateCard(ctx context.Context, st store.Reader, bgp BGP) float64 {
	if len(bgp) == 0 {
		return 1
	}
	est := newEstimator(st, bgp)
	order := greedyOrder(st, bgp)
	cards, _ := est.estimate(ctx, bgp, order)
	return cards[len(cards)-1]
}

// EstimateCost implements Engine with the WCO-join cost formula:
//
//	cost(WCOJoin({v1..vk-1}, vk)) = card({v1..vk-1}) × min_i avg_size(vi, p)
//
// summed over the extension steps of the greedy order. The first pattern's
// cost is its scan size.
func (WCOEngine) EstimateCost(ctx context.Context, st store.Reader, bgp BGP) float64 {
	if len(bgp) == 0 {
		return 0
	}
	est := newEstimator(st, bgp)
	order := greedyOrder(st, bgp)
	cards, _ := est.estimate(ctx, bgp, order)
	stats := st.Stats()
	cost := float64(ExactCount(st, bgp[order[0]]))
	bound := map[int]bool{}
	for _, v := range bgp[order[0]].Vars() {
		bound[v] = true
	}
	for k := 1; k < len(order); k++ {
		pat := bgp[order[k]]
		avg := avgExtensionSize(stats, pat, bound)
		cost += cards[k-1] * avg
		for _, v := range pat.Vars() {
			bound[v] = true
		}
	}
	return cost
}

// avgExtensionSize returns min over already-bound vertices vi of
// average_size(vi, p): the average number of edges with the pattern's
// predicate incident on vi in the direction the pattern uses. When the
// predicate is itself a variable or no endpoint is bound, it falls back to
// the overall average degree.
func avgExtensionSize(stats *store.Stats, pat Pattern, bound map[int]bool) float64 {
	if stats == nil {
		return 1
	}
	var p store.ID
	if !pat.P.IsVar {
		p = pat.P.ID
	}
	best := -1.0
	consider := func(v float64) {
		if best < 0 || v < best {
			best = v
		}
	}
	if pat.S.IsVar && bound[pat.S.Var] || !pat.S.IsVar {
		if p != store.None {
			consider(stats.AvgOutDegree(p))
		}
	}
	if pat.O.IsVar && bound[pat.O.Var] || !pat.O.IsVar {
		if p != store.None {
			consider(stats.AvgInDegree(p))
		}
	}
	if best < 0 {
		// Disconnected extension: effectively a scan of the predicate.
		if p != store.None {
			return float64(stats.PredCount[p])
		}
		return float64(stats.NumTriples)
	}
	return best
}
