package exec

import (
	"context"
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"sparqluo/internal/algebra"
	"sparqluo/internal/qgen"
	"sparqluo/internal/store"
)

func randomStore(rng *rand.Rand, n int) *store.Store {
	st := store.New()
	st.AddAll(qgen.RandomDataset(rng, n))
	st.Freeze()
	return st
}

// randomPattern builds an encoded pattern over a random store, reusing
// its dictionary so constants often exist.
func randomPattern(rng *rand.Rand, st *store.Store) Pattern {
	triples := st.Triples()
	pick := func() store.EncTriple { return triples[rng.Intn(len(triples))] }
	pos := func(id store.ID, varIdx int) Pos {
		if rng.Intn(2) == 0 {
			return Var(varIdx)
		}
		return Const(id)
	}
	t := pick()
	return Pattern{
		S: pos(t.S, rng.Intn(4)),
		P: pos(t.P, rng.Intn(4)),
		O: pos(t.O, rng.Intn(4)),
	}
}

// bruteMatches enumerates matches of a pattern by scanning all triples.
func bruteMatches(st *store.Store, pat Pattern, width int) []algebra.Row {
	var out []algebra.Row
	for _, t := range st.Triples() {
		row := make(algebra.Row, width)
		ok := true
		bind := func(p Pos, id store.ID) {
			if !ok {
				return
			}
			if !p.IsVar {
				if p.ID != id {
					ok = false
				}
				return
			}
			if row[p.Var] != store.None && row[p.Var] != id {
				ok = false
				return
			}
			row[p.Var] = id
		}
		bind(pat.S, t.S)
		bind(pat.P, t.P)
		bind(pat.O, t.O)
		if ok {
			out = append(out, row)
		}
	}
	return out
}

func toBag(width int, rows []algebra.Row) *algebra.Bag {
	b := algebra.NewBag(width)
	for _, r := range rows {
		b.Append(r)
	}
	return b
}

// TestQuickMatchPatternMatchesBruteForce: MatchPattern over the indexes
// agrees with a full scan, for every boundness combination.
func TestQuickMatchPatternMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomStore(rng, 50+rng.Intn(50))
		const width = 4
		for k := 0; k < 8; k++ {
			pat := randomPattern(rng, st)
			var got []algebra.Row
			MatchPattern(st, pat, make(algebra.Row, width), nil, func(r algebra.Row) bool {
				got = append(got, slices.Clone(r))
				return true
			})
			want := bruteMatches(st, pat, width)
			if !algebra.MultisetEqual(toBag(width, got), toBag(width, want)) {
				t.Logf("pattern %+v: got %d want %d", pat, len(got), len(want))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickExactCountMatchesBruteForce: the index-derived count equals
// the brute-force match count.
func TestQuickExactCountMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomStore(rng, 60)
		for k := 0; k < 8; k++ {
			pat := randomPattern(rng, st)
			if ExactCount(st, pat) != len(bruteMatches(st, pat, 4)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickEnginesAgree: the WCO and binary-join engines produce the same
// bags on random BGPs.
func TestQuickEnginesAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomStore(rng, 60+rng.Intn(60))
		const width = 4
		var bgp BGP
		for i := 0; i < 1+rng.Intn(3); i++ {
			bgp = append(bgp, randomPattern(rng, st))
		}
		a := WCOEngine{}.EvalBGP(context.Background(), st, bgp, width, nil)
		b := BinaryJoinEngine{}.EvalBGP(context.Background(), st, bgp, width, nil)
		if !algebra.MultisetEqual(a, b) {
			t.Logf("bgp %+v: wco %d, binary %d", bgp, a.Len(), b.Len())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickCandidatesAreExactFilter: evaluating with candidate sets must
// equal evaluating without and then filtering rows by the candidates.
func TestQuickCandidatesAreExactFilter(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomStore(rng, 80)
		const width = 4
		var bgp BGP
		for i := 0; i < 1+rng.Intn(2); i++ {
			bgp = append(bgp, randomPattern(rng, st))
		}
		vars := bgp.Vars()
		if len(vars) == 0 {
			return true
		}
		// Build a random candidate set for one variable.
		v := vars[rng.Intn(len(vars))]
		set := map[store.ID]struct{}{}
		for i := 0; i < 1+rng.Intn(5); i++ {
			set[store.ID(1+rng.Intn(st.Dict().Len()))] = struct{}{}
		}
		cand := Candidates{v: set}
		for _, engine := range []Engine{WCOEngine{}, BinaryJoinEngine{}} {
			pruned := engine.EvalBGP(context.Background(), st, bgp, width, cand)
			plain := engine.EvalBGP(context.Background(), st, bgp, width, nil)
			want := algebra.NewBag(width)
			for _, r := range plain.All() {
				if _, ok := set[r[v]]; ok {
					want.Append(r)
				}
			}
			if !algebra.MultisetEqual(pruned, want) {
				t.Logf("%s: pruned %d, filtered %d (var %d, set %v)",
					engine.Name(), pruned.Len(), want.Len(), v, set)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestEmptyBGPYieldsUnit(t *testing.T) {
	st := randomStore(rand.New(rand.NewSource(1)), 20)
	for _, engine := range []Engine{WCOEngine{}, BinaryJoinEngine{}} {
		got := engine.EvalBGP(context.Background(), st, nil, 3, nil)
		if got.Len() != 1 {
			t.Errorf("%s: empty BGP should yield the unit bag, got %d rows", engine.Name(), got.Len())
		}
	}
}

func TestImpossiblePatternYieldsEmpty(t *testing.T) {
	st := randomStore(rand.New(rand.NewSource(2)), 20)
	bgp := BGP{{S: Var(0), P: Const(store.None), O: Var(1)}}
	for _, engine := range []Engine{WCOEngine{}, BinaryJoinEngine{}} {
		if got := engine.EvalBGP(context.Background(), st, bgp, 2, nil); got.Len() != 0 {
			t.Errorf("%s: impossible pattern should be empty, got %d", engine.Name(), got.Len())
		}
	}
}

func TestRepeatedVariableWithinPattern(t *testing.T) {
	st := store.New()
	self := qgen.RandomDataset(rand.New(rand.NewSource(3)), 1)[0]
	self.O = self.S // force a self-loop
	st.Add(self)
	other := self
	other.O = qgen.RandomDataset(rand.New(rand.NewSource(4)), 1)[0].S
	st.Add(other)
	st.Freeze()
	p, _ := st.Dict().Lookup(self.P)
	bgp := BGP{{S: Var(0), P: Const(p), O: Var(0)}} // ?x p ?x
	for _, engine := range []Engine{WCOEngine{}, BinaryJoinEngine{}} {
		got := engine.EvalBGP(context.Background(), st, bgp, 1, nil)
		if got.Len() != 1 {
			t.Errorf("%s: self-loop pattern: got %d rows, want 1", engine.Name(), got.Len())
		}
	}
}

func TestEstimatesSane(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	st := randomStore(rng, 200)
	for trial := 0; trial < 30; trial++ {
		var bgp BGP
		for i := 0; i < 1+rng.Intn(3); i++ {
			bgp = append(bgp, randomPattern(rng, st))
		}
		for _, engine := range []Engine{WCOEngine{}, BinaryJoinEngine{}} {
			card := engine.EstimateCard(context.Background(), st, bgp)
			cost := engine.EstimateCost(context.Background(), st, bgp)
			if card < 0 || cost < 0 {
				t.Fatalf("%s: negative estimate card=%v cost=%v", engine.Name(), card, cost)
			}
		}
	}
	// Single-pattern estimates are exact.
	pat := randomPattern(rng, st)
	exact := float64(ExactCount(st, pat))
	if got := (WCOEngine{}).EstimateCard(context.Background(), st, BGP{pat}); got != exact {
		t.Errorf("single-pattern estimate %v, want exact %v", got, exact)
	}
}

func TestCandidatesAllows(t *testing.T) {
	var nilCand Candidates
	if !nilCand.Allows(0, 5) {
		t.Error("nil candidates must allow everything")
	}
	c := Candidates{1: {store.ID(7): {}}}
	if !c.Allows(0, 99) {
		t.Error("unconstrained variable must allow everything")
	}
	if !c.Allows(1, 7) || c.Allows(1, 8) {
		t.Error("constrained variable must filter")
	}
}

func TestGreedyOrderConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	st := randomStore(rng, 100)
	// A chain: ?a p ?b, ?b p ?c, ?c p ?d — order must be connected.
	triples := st.Triples()
	p := triples[0].P
	bgp := BGP{
		{S: Var(0), P: Const(p), O: Var(1)},
		{S: Var(1), P: Const(p), O: Var(2)},
		{S: Var(2), P: Const(p), O: Var(3)},
	}
	order := greedyOrder(st, bgp)
	bound := map[int]bool{}
	for i, idx := range order {
		if i > 0 {
			conn := false
			for _, v := range bgp[idx].Vars() {
				if bound[v] {
					conn = true
				}
			}
			if !conn {
				t.Fatalf("order %v disconnects at step %d", order, i)
			}
		}
		for _, v := range bgp[idx].Vars() {
			bound[v] = true
		}
	}
}
