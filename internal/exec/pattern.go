// Package exec contains the two BGP evaluation engines the paper builds
// on: a worst-case-optimal-style vertex-extension engine modelled on
// gStore's WCO join, and a binary hash-join engine modelled on Jena. Both
// support the candidate-pruning hook of §6: per-variable candidate sets
// that restrict index scans on the fly.
package exec

import (
	"sort"

	"sparqluo/internal/algebra"
	"sparqluo/internal/store"
)

// Pos is one position of an encoded triple pattern: either a query
// variable (by index) or a ground term (by dictionary ID).
type Pos struct {
	IsVar bool
	Var   int      // variable index when IsVar
	ID    store.ID // term ID otherwise; store.None means "ground term not in dictionary"
}

// Var returns a variable position.
func Var(i int) Pos { return Pos{IsVar: true, Var: i} }

// Const returns a ground position.
func Const(id store.ID) Pos { return Pos{ID: id} }

// Pattern is a dictionary-encoded triple pattern.
type Pattern struct {
	S, P, O Pos
}

// Vars returns the distinct variable indices of the pattern.
func (p Pattern) Vars() []int {
	var out []int
	seen := map[int]bool{}
	for _, pos := range [3]Pos{p.S, p.P, p.O} {
		if pos.IsVar && !seen[pos.Var] {
			seen[pos.Var] = true
			out = append(out, pos.Var)
		}
	}
	return out
}

// Impossible reports whether the pattern contains a ground term that is
// absent from the dictionary, which means it can never match.
func (p Pattern) Impossible() bool {
	for _, pos := range [3]Pos{p.S, p.P, p.O} {
		if !pos.IsVar && pos.ID == store.None {
			return true
		}
	}
	return false
}

// BGP is a basic graph pattern: a set of coalescable patterns (Def. 5).
type BGP []Pattern

// Vars returns the distinct variable indices across the BGP.
func (b BGP) Vars() []int {
	var out []int
	seen := map[int]bool{}
	for _, p := range b {
		for _, v := range p.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// Candidates maps a variable index to the set of term IDs it may take.
// A nil map (or missing entry) imposes no restriction. Candidate sets are
// the query-time pruning mechanism of §6.
type Candidates map[int]map[store.ID]struct{}

// Allows reports whether variable v may bind to id under c.
func (c Candidates) Allows(v int, id store.ID) bool {
	if c == nil {
		return true
	}
	set, ok := c[v]
	if !ok {
		return true
	}
	_, in := set[id]
	return in
}

// Set returns the candidate set for v, or nil if unrestricted.
func (c Candidates) Set(v int) map[store.ID]struct{} {
	if c == nil {
		return nil
	}
	return c[v]
}

// resolve returns the concrete ID a position takes under row, and whether
// it is bound (constants are always bound).
func resolve(pos Pos, row algebra.Row) (store.ID, bool) {
	if !pos.IsVar {
		return pos.ID, true
	}
	id := row[pos.Var]
	return id, id != store.None
}

// bindEmit extends row into scratch with the given (s,p,o) match of pat,
// verifying repeated-variable consistency and candidate membership, and
// calls emit with scratch on success. scratch is reused across calls.
// It returns false once emit asks enumeration to stop; rejected matches
// (mismatch, candidate miss) keep enumerating.
func bindEmit(pat Pattern, row, scratch algebra.Row, s, p, o store.ID, cand Candidates, emit func(algebra.Row) bool) bool {
	nr := scratch
	copy(nr, row)
	for _, pv := range [3]struct {
		pos Pos
		id  store.ID
	}{{pat.S, s}, {pat.P, p}, {pat.O, o}} {
		if !pv.pos.IsVar {
			continue
		}
		cur := nr[pv.pos.Var]
		if cur != store.None {
			if cur != pv.id {
				return true // repeated variable mismatch
			}
			continue
		}
		if !cand.Allows(pv.pos.Var, pv.id) {
			return true
		}
		nr[pv.pos.Var] = pv.id
	}
	return emit(nr)
}

// MatchPattern enumerates all extensions of row that match pat in st,
// honoring candidate sets, and calls emit for each extended row. emit
// returns whether enumeration should continue: a false return stops the
// scan immediately, which is how LIMIT push-down terminates index scans
// early instead of materializing every match.
//
// The row passed to emit is a scratch buffer owned by MatchPattern and
// reused across emissions: consumers that retain it beyond the call must
// copy it (appending to a Bag copies into the arena already).
//
// Matches are emitted in the physical order of the permutation range the
// pattern reads; MatchOrder reports that order as a variable sequence.
func MatchPattern(st store.Reader, pat Pattern, row algebra.Row, cand Candidates, emit func(algebra.Row) bool) {
	if pat.Impossible() {
		return
	}
	if sh, ok := st.(store.ShardedReader); ok {
		if sh.NumShards() > 1 {
			matchPatternSharded(sh, pat, row, cand, emit)
			return
		}
		st = sh.Shard(0) // single shard: identical content, no indirection
	}
	scratch := make(algebra.Row, len(row))
	s, sb := resolve(pat.S, row)
	p, pb := resolve(pat.P, row)
	o, ob := resolve(pat.O, row)

	switch {
	case sb && pb && ob:
		if st.Contains(s, p, o) {
			bindEmit(pat, row, scratch, s, p, o, cand, emit)
		}
	case sb && pb:
		objs := st.ObjectsSP(s, p)
		// If the object variable has a small candidate set, probe it
		// instead of scanning the adjacency list.
		if set := candFor(pat.O, cand); set != nil && len(set) < len(objs) {
			for _, x := range sortedSet(set) {
				if st.Contains(s, p, x) {
					if !bindEmit(pat, row, scratch, s, p, x, cand, emit) {
						return
					}
				}
			}
			return
		}
		for _, x := range objs {
			if !bindEmit(pat, row, scratch, s, p, x, cand, emit) {
				return
			}
		}
	case pb && ob:
		subs := st.SubjectsPO(p, o)
		if set := candFor(pat.S, cand); set != nil && len(set) < len(subs) {
			for _, x := range sortedSet(set) {
				if st.Contains(x, p, o) {
					if !bindEmit(pat, row, scratch, x, p, o, cand, emit) {
						return
					}
				}
			}
			return
		}
		for _, x := range subs {
			if !bindEmit(pat, row, scratch, x, p, o, cand, emit) {
				return
			}
		}
	case sb && ob:
		for _, pp := range st.PredsSO(s, o) {
			if !bindEmit(pat, row, scratch, s, pp, o, cand, emit) {
				return
			}
		}
	case pb:
		// Only the predicate is bound: a small candidate set on either
		// endpoint turns the predicate scan into per-candidate binary
		// searches; otherwise scan the POS run, sorted by (O,S).
		if set := candFor(pat.S, cand); set != nil && len(set) < st.CountP(p) {
			for _, ss := range sortedSet(set) {
				for _, x := range st.ObjectsSP(ss, p) {
					if !bindEmit(pat, row, scratch, ss, p, x, cand, emit) {
						return
					}
				}
			}
			return
		}
		if set := candFor(pat.O, cand); set != nil && len(set) < st.CountP(p) {
			for _, oo := range sortedSet(set) {
				for _, ss := range st.SubjectsPO(p, oo) {
					if !bindEmit(pat, row, scratch, ss, p, oo, cand, emit) {
						return
					}
				}
			}
			return
		}
		for _, t := range st.PredicateTriples(p) {
			if !bindEmit(pat, row, scratch, t.S, p, t.O, cand, emit) {
				return
			}
		}
	case sb:
		for _, t := range st.SubjectTriples(s) {
			if !bindEmit(pat, row, scratch, s, t.P, t.O, cand, emit) {
				return
			}
		}
	case ob:
		for _, t := range st.ObjectTriples(o) {
			if !bindEmit(pat, row, scratch, t.S, t.P, o, cand, emit) {
				return
			}
		}
	default:
		for _, t := range st.Triples() {
			if !bindEmit(pat, row, scratch, t.S, t.P, t.O, cand, emit) {
				return
			}
		}
	}
}

func candFor(pos Pos, cand Candidates) map[store.ID]struct{} {
	if !pos.IsVar {
		return nil
	}
	return cand.Set(pos.Var)
}

// repeatedVar reports whether the same variable occurs at two positions.
func repeatedVar(p Pattern) bool {
	if p.S.IsVar && p.P.IsVar && p.S.Var == p.P.Var {
		return true
	}
	if p.S.IsVar && p.O.IsVar && p.S.Var == p.O.Var {
		return true
	}
	if p.P.IsVar && p.O.IsVar && p.P.Var == p.O.Var {
		return true
	}
	return false
}

// sortedSet returns set members in ascending ID order.
func sortedSet(s map[store.ID]struct{}) []store.ID {
	out := make([]store.ID, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ExactCount returns the exact number of matches of a single pattern with
// no prior bindings (candidate sets ignored), read off the indexes.
func ExactCount(st store.Reader, pat Pattern) int {
	if pat.Impossible() {
		return 0
	}
	if repeatedVar(pat) {
		// A repeated variable (e.g. ?x p ?x) constrains matches beyond
		// what the index sizes reflect; enumerate.
		width := 0
		for _, v := range pat.Vars() {
			if v+1 > width {
				width = v + 1
			}
		}
		n := 0
		MatchPattern(st, pat, make(algebra.Row, width), nil, func(algebra.Row) bool { n++; return true })
		return n
	}
	sb, pb, ob := !pat.S.IsVar, !pat.P.IsVar, !pat.O.IsVar
	switch {
	case sb && pb && ob:
		if st.Contains(pat.S.ID, pat.P.ID, pat.O.ID) {
			return 1
		}
		return 0
	case sb && pb:
		return st.CountSP(pat.S.ID, pat.P.ID)
	case pb && ob:
		return st.CountPO(pat.P.ID, pat.O.ID)
	case pb:
		return st.CountP(pat.P.ID)
	case sb && ob:
		return st.CountSO(pat.S.ID, pat.O.ID)
	case sb:
		return st.CountS(pat.S.ID)
	case ob:
		return st.CountO(pat.O.ID)
	default:
		return st.NumTriples()
	}
}

// MatchOrder reports the physical order of MatchPattern's emissions for
// one extension step, as the sequence of newly bound variable positions
// by which the emitted rows ascend lexicographically — the "interesting
// order" that falls out of the SPO/POS/OSP permutation the scan reads,
// at zero cost. bound reports whether a variable position already
// carries a binding in the seed row(s); it must be uniform across the
// rows MatchPattern will be called with (true for BGP evaluation, where
// every pattern binds all its variables in every row).
//
// The sequence is a sound claim, not a complete one: when the branch
// MatchPattern takes could differ per seed row (a candidate probe gated
// on a row-dependent count with a different enumeration order), the
// divergent tail is dropped. An empty sequence promises nothing.
func MatchOrder(st store.Reader, pat Pattern, bound func(int) bool, cand Candidates) []int {
	if pat.Impossible() {
		return nil
	}
	posBound := func(pos Pos) bool { return !pos.IsVar || bound(pos.Var) }
	sb, pb, ob := posBound(pat.S), posBound(pat.P), posBound(pat.O)
	// seq collects the distinct, not-yet-bound variables of the given
	// positions in enumeration order. A repeated variable keeps its first
	// occurrence: the scan filtered to equal components stays ascending
	// in the shared variable.
	seq := func(poss ...Pos) []int {
		var out []int
		for _, pos := range poss {
			if !pos.IsVar || bound(pos.Var) {
				continue
			}
			dup := false
			for _, v := range out {
				if v == pos.Var {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, pos.Var)
			}
		}
		return out
	}
	switch {
	case sb && pb && ob:
		return nil
	case sb && pb:
		// Adjacency scan and candidate probe both ascend in O.
		return seq(pat.O)
	case pb && ob:
		return seq(pat.S)
	case sb && ob:
		return seq(pat.P)
	case pb:
		// A subject-candidate probe flips the (O,S) scan to (S,O). The
		// branch is chosen per predicate value: with a ground predicate
		// it is uniform; with a bound predicate variable it can differ
		// per row, so no order can be claimed.
		if set := candFor(pat.S, cand); set != nil {
			if pat.P.IsVar {
				return nil
			}
			if len(set) < st.CountP(pat.P.ID) {
				return seq(pat.S, pat.O)
			}
		}
		return seq(pat.O, pat.S)
	case sb:
		return seq(pat.P, pat.O)
	case ob:
		return seq(pat.S, pat.P)
	default:
		return seq(pat.S, pat.P, pat.O)
	}
}
