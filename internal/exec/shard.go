package exec

import (
	"sparqluo/internal/algebra"
	"sparqluo/internal/store"
)

// This file contains the scatter-gather execution paths over a sharded
// store. Two rules keep sharded evaluation byte-identical to the
// single-store run:
//
//  1. Every branch decision MatchPattern makes (candidate probe vs index
//     scan) is taken against GLOBAL counts, exactly as a single store
//     would take it — never against one shard's local counts.
//  2. Per-shard enumerations recombine in the global permutation order:
//     plain concatenation in shard order when the scanned order leads
//     with the subject (the shard key), a k-way ordered merge otherwise.
//     Subject ranges are disjoint, so the merge never sees a cross-shard
//     tie on any key sequence that includes the subject.
//
// Parallelism enters only at whole-pattern scans with an unbound subject
// (scatterScan); everything else streams sequentially through the same
// per-shard accessors and is trivially deterministic.

// shardedFor returns st's sharded view when fan-out is meaningful
// (more than one shard).
func shardedFor(st store.Reader) (store.ShardedReader, bool) {
	sh, ok := st.(store.ShardedReader)
	if !ok || sh.NumShards() == 1 {
		return nil, false
	}
	return sh, true
}

// scatterable reports whether a fresh scan of pat may fan out across
// shards: the subject must be an unbound variable (a ground subject
// routes to one shard) and no candidate set may apply to any pattern
// variable — candidate probes make row-count-dependent branch choices
// that must be taken once, globally, on the sequential path.
func scatterable(pat Pattern, cand Candidates) bool {
	if !pat.S.IsVar || pat.Impossible() {
		return false
	}
	for _, v := range pat.Vars() {
		if cand.Set(v) != nil {
			return false
		}
	}
	return true
}

// matchPatternSharded is MatchPattern over a sharded store: the same
// branch structure, with global-count decisions and per-shard streaming
// recombined in global order. Bound-subject shapes delegate to the one
// owning shard, where local results equal global results.
func matchPatternSharded(sh store.ShardedReader, pat Pattern, row algebra.Row, cand Candidates, emit func(algebra.Row) bool) {
	s, sb := resolve(pat.S, row)
	p, pb := resolve(pat.P, row)
	o, ob := resolve(pat.O, row)
	if sb {
		MatchPattern(sh.ShardFor(s), pat, row, cand, emit)
		return
	}
	scratch := make(algebra.Row, len(row))
	k := sh.NumShards()

	switch {
	case pb && ob:
		if set := candFor(pat.S, cand); set != nil && len(set) < sh.CountPO(p, o) {
			for _, x := range sortedSet(set) {
				if sh.Contains(x, p, o) {
					if !bindEmit(pat, row, scratch, x, p, o, cand, emit) {
						return
					}
				}
			}
			return
		}
		// Ascending-subject scan: shard order is global order.
		for i := 0; i < k; i++ {
			for _, x := range sh.Shard(i).SubjectsPO(p, o) {
				if !bindEmit(pat, row, scratch, x, p, o, cand, emit) {
					return
				}
			}
		}
	case pb:
		if set := candFor(pat.S, cand); set != nil && len(set) < sh.CountP(p) {
			for _, ss := range sortedSet(set) {
				for _, x := range sh.ShardFor(ss).ObjectsSP(ss, p) {
					if !bindEmit(pat, row, scratch, ss, p, x, cand, emit) {
						return
					}
				}
			}
			return
		}
		if set := candFor(pat.O, cand); set != nil && len(set) < sh.CountP(p) {
			for _, oo := range sortedSet(set) {
				for i := 0; i < k; i++ {
					for _, ss := range sh.Shard(i).SubjectsPO(p, oo) {
						if !bindEmit(pat, row, scratch, ss, p, oo, cand, emit) {
							return
						}
					}
				}
			}
			return
		}
		// Full predicate scan in global (O,S) order: streaming k-way merge
		// of the shards' POS runs. Subjects are disjoint across shards, so
		// there is never a tie.
		runs := make([][]store.EncTriple, k)
		for i := range runs {
			runs[i] = sh.Shard(i).PredicateTriples(p)
		}
		for {
			best := -1
			for i, r := range runs {
				if len(r) == 0 {
					continue
				}
				if best < 0 {
					best = i
					continue
				}
				a, b := r[0], runs[best][0]
				if a.O < b.O || (a.O == b.O && a.S < b.S) {
					best = i
				}
			}
			if best < 0 {
				return
			}
			t := runs[best][0]
			runs[best] = runs[best][1:]
			if !bindEmit(pat, row, scratch, t.S, p, t.O, cand, emit) {
				return
			}
		}
	case ob:
		// (S,P) order within one object: subject leads, concatenate.
		for i := 0; i < k; i++ {
			for _, t := range sh.Shard(i).ObjectTriples(o) {
				if !bindEmit(pat, row, scratch, t.S, t.P, o, cand, emit) {
					return
				}
			}
		}
	default:
		// Canonical (S,P,O) order: subject leads, concatenate.
		for i := 0; i < k; i++ {
			for _, t := range sh.Shard(i).Triples() {
				if !bindEmit(pat, row, scratch, t.S, t.P, t.O, cand, emit) {
					return
				}
			}
		}
	}
}

// scatterScan evaluates a fresh whole-pattern scan by fanning the shards
// out on the store's bounded worker pool — each shard materializes its
// own matches, capped at max (the first max global rows come from the
// first ≤ max rows of every shard) — and gathering deterministically:
// per-shard pull counts are summed in shard order and the partial bags
// recombine by concatenation or k-way merge depending on whether the
// shard key leads the scan order. Returns false when the pattern's
// emission order is unknown and the caller must fall back to the
// sequential path.
func scatterScan(sh store.ShardedReader, pat Pattern, width int, cand Candidates, poll *ctxPoll, max int, pulled *int) (*algebra.Bag, bool) {
	ord := MatchOrder(sh, pat, neverBound, cand)
	if len(ord) == 0 {
		return nil, false
	}
	// Fan-out pays fixed costs — per-shard bags, then a copy (concat) or
	// compare (merge) of every row at gather time — so small scans run
	// sequentially. The gate is a pure performance heuristic: both paths
	// produce identical bytes. Merge recombination costs a comparison per
	// row, so it needs a larger scan to win than concatenation does.
	minRows := scatterMinConcat
	if ord[0] != pat.S.Var {
		minRows = scatterMinMerge
	}
	if n := scanUpperBound(sh, pat); n < minRows {
		return nil, false
	}
	if max >= 0 && max < minRows {
		// A tight LIMIT cap bounds the sequential scan at max rows; the
		// scatter would pull up to k×max instead.
		return nil, false
	}
	k := sh.NumShards()
	parts := make([]*algebra.Bag, k)
	pulls := make([]int, k)
	stops := make([]bool, k)
	sh.Scatter(func(i int) {
		sub := ctxPoll{ctx: poll.ctx}
		b := algebra.NewBag(width)
		seed := make(algebra.Row, width)
		MatchPattern(sh.Shard(i), pat, seed, cand, func(nr algebra.Row) bool {
			if sub.stopped {
				return false
			}
			b.Append(nr)
			sub.tick()
			return max < 0 || b.Len() < max
		})
		parts[i] = b
		pulls[i] = b.Len()
		stops[i] = sub.stopped
	})
	for _, s := range stops {
		if s {
			poll.stopped = true
		}
	}
	if pulled != nil {
		for _, n := range pulls {
			*pulled += n
		}
	}
	out := algebra.NewBag(width)
	for _, v := range pat.Vars() {
		out.Cert.Set(v)
		out.Maybe.Set(v)
	}
	out.Order = ord
	if ord[0] == pat.S.Var {
		// The shard key is the leading order variable: concatenation in
		// shard order is the global order.
		total := 0
		for _, p := range parts {
			total += p.Len()
		}
		if max >= 0 && total > max {
			total = max
		}
		out.Grow(total)
		for _, p := range parts {
			n := p.Len()
			if rem := total - out.Len(); n > rem {
				n = rem
			}
			appendBagPrefix(out, p, n)
			if out.Len() == total {
				break
			}
		}
	} else {
		algebra.MergeSortedBags(out, parts, ord, max)
	}
	return out, true
}

// Scatter thresholds: minimum (upper-bound) scan sizes below which the
// sequential path beats the fan-out's fixed costs.
const (
	scatterMinConcat = 2048
	scatterMinMerge  = 16384
)

// scanUpperBound returns a cheap upper bound on the rows a fresh scan of
// pat enumerates, from the O(1) global counts. The subject is a variable
// here (scatterable checked), so only P/O groundness matters; a repeated
// variable only shrinks the true count below the bound.
func scanUpperBound(sh store.ShardedReader, pat Pattern) int {
	pb, ob := !pat.P.IsVar, !pat.O.IsVar
	switch {
	case pb && ob:
		return sh.CountPO(pat.P.ID, pat.O.ID)
	case pb:
		return sh.CountP(pat.P.ID)
	case ob:
		return sh.CountO(pat.O.ID)
	default:
		return sh.NumTriples()
	}
}

// appendBagPrefix appends the first n rows of src to dst.
func appendBagPrefix(dst, src *algebra.Bag, n int) {
	if n >= src.Len() {
		dst.AppendAll(src)
		return
	}
	for i := 0; i < n; i++ {
		dst.Append(src.Row(i))
	}
}
