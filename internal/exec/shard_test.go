package exec

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"sparqluo/internal/algebra"
	"sparqluo/internal/rdf"
	"sparqluo/internal/store"
)

// shardStore range-partitions a frozen store into k shards and wraps
// them in a ShardedStore carrying the original's global statistics.
func shardStore(tb testing.TB, st *store.Store, k int) *store.ShardedStore {
	tb.Helper()
	shards, bounds, err := st.ShardBySubject(k)
	if err != nil {
		tb.Fatalf("ShardBySubject(%d): %v", k, err)
	}
	sh, err := store.NewShardedStore(shards, bounds, st.Stats())
	if err != nil {
		tb.Fatalf("NewShardedStore: %v", err)
	}
	return sh
}

// collectMatches drains MatchPattern into a row slice.
func collectMatches(st store.Reader, pat Pattern, width int, cand Candidates) []algebra.Row {
	var out []algebra.Row
	seed := make(algebra.Row, width)
	MatchPattern(st, pat, seed, cand, func(r algebra.Row) bool {
		out = append(out, append(algebra.Row(nil), r...))
		return true
	})
	return out
}

func rowsEqual(a, b []algebra.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestQuickShardedMatchPatternIdentical is the exec-level half of the
// byte-identity guarantee: MatchPattern over a sharded store must emit
// exactly the same rows in exactly the same order as over the single
// store it was split from, for random patterns of every shape, with and
// without candidate sets. Order identity — not just set equality — is
// what lets downstream merge joins and LIMIT prefixes stay byte-stable.
func TestQuickShardedMatchPatternIdentical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomStore(rng, 120)
		const width = 4
		pat := randomPattern(rng, st)
		var cand Candidates
		if rng.Intn(2) == 0 && len(pat.Vars()) > 0 {
			vs := pat.Vars()
			v := vs[rng.Intn(len(vs))]
			set := map[store.ID]struct{}{}
			for i := 0; i < 1+rng.Intn(6); i++ {
				set[store.ID(1+rng.Intn(st.Dict().Len()))] = struct{}{}
			}
			cand = Candidates{v: set}
		}
		want := collectMatches(st, pat, width, cand)
		for _, k := range []int{1, 2, 3} {
			if k > st.Dict().Len()+1 {
				continue
			}
			got := collectMatches(shardStore(t, st, k), pat, width, cand)
			if !rowsEqual(want, got) {
				t.Logf("seed %d k=%d pat %+v: %d sharded rows vs %d single", seed, k, pat, len(got), len(want))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestShardedRepeatedVarPattern pins the subtle ?x p ?x case: its scan
// order is (O, S) but equal-subject-object rows ascend with the subject,
// so the sharded path may concatenate in shard order — the result must
// still match the single store exactly.
func TestShardedRepeatedVarPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	st := randomStore(rng, 150)
	tris := st.Triples()
	p := tris[rng.Intn(len(tris))].P
	pat := Pattern{S: Var(0), P: Const(p), O: Var(0)}
	want := collectMatches(st, pat, 2, nil)
	for _, k := range []int{2, 4} {
		got := collectMatches(shardStore(t, st, k), pat, 2, nil)
		if !rowsEqual(want, got) {
			t.Fatalf("k=%d: repeated-var rows differ (%d vs %d)", k, len(got), len(want))
		}
	}
}

// TestQuickShardedBGPIdentical runs whole BGPs through both engines over
// sharded and single stores and demands identical bags — rows, order and
// claimed output order — including under LIMIT push-down, where the
// capped bag must be a byte-identical prefix.
func TestQuickShardedBGPIdentical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomStore(rng, 100)
		const width = 4
		var bgp BGP
		for i := 0; i < 1+rng.Intn(3); i++ {
			bgp = append(bgp, randomPattern(rng, st))
		}
		sh := shardStore(t, st, 2+rng.Intn(3))
		for _, engine := range []Engine{WCOEngine{}, BinaryJoinEngine{}} {
			for _, max := range []int{-1, 0, 3} {
				var pw, ps int
				want := engine.EvalBGPTop(context.Background(), st, bgp, width, nil, max, &pw)
				got := engine.EvalBGPTop(context.Background(), sh, bgp, width, nil, max, &ps)
				if want.Len() != got.Len() {
					t.Logf("seed %d %s max=%d: %d sharded rows vs %d single", seed, engine.Name(), max, got.Len(), want.Len())
					return false
				}
				for i := 0; i < want.Len(); i++ {
					wr, gr := want.Row(i), got.Row(i)
					for j := range wr {
						if wr[j] != gr[j] {
							t.Logf("seed %d %s max=%d: row %d differs: %v vs %v", seed, engine.Name(), max, i, gr, wr)
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestScatterScanCancellation: a context cancelled before the scatter
// starts must stop the scan and mark the poll stopped; callers then
// discard the truncated bag by checking ctx.Err. The fixture is sized so
// every shard crosses the batched cancellation-check threshold.
func TestScatterScanCancellation(t *testing.T) {
	st := store.New()
	p := rdf.NewIRI("http://ex/p")
	for i := 0; i < 9000; i++ {
		st.Add(rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("http://ex/s%04d", i)),
			P: p,
			O: rdf.NewIRI(fmt.Sprintf("http://ex/o%04d", i)),
		})
	}
	st.Freeze()
	if st.NumTriples() < 3*(cancelCheckMask+2) {
		t.Fatalf("fixture too small to observe batched cancellation: %d triples", st.NumTriples())
	}
	sh := shardStore(t, st, 3)
	pat := Pattern{S: Var(0), P: Var(1), O: Var(2)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	poll := ctxPoll{ctx: ctx}
	var pulled int
	out, ok := scatterScan(sh, pat, 3, nil, &poll, -1, &pulled)
	if !ok {
		t.Fatal("scatterScan refused a plain full scan")
	}
	if !poll.stopped {
		t.Error("cancelled context not observed by scatterScan")
	}
	if out.Len() >= st.NumTriples() {
		t.Error("cancelled scatter scanned everything anyway")
	}
}
