package exec

import (
	"context"
	"sort"

	"sparqluo/internal/algebra"
	"sparqluo/internal/store"
)

// BinaryJoinEngine evaluates BGPs in the style of Jena (§5.1.2): every
// triple pattern is scanned into a bag of mappings, then the bags are
// combined with binary hash joins, smallest first.
type BinaryJoinEngine struct{}

// Name implements Engine.
func (BinaryJoinEngine) Name() string { return "binary" }

// EvalBGP implements Engine with left-deep hash joins over per-pattern
// scans ordered by ascending scan size, preferring connected patterns to
// avoid cartesian products. Cancellation is polled during scans and
// between joins; a cancelled call may return a truncated bag, which only
// callers ignoring ctx.Err() observe.
func (BinaryJoinEngine) EvalBGP(ctx context.Context, st *store.Store, bgp BGP, width int, cand Candidates) *algebra.Bag {
	if len(bgp) == 0 {
		u := algebra.Unit(width)
		return u
	}
	for _, p := range bgp {
		if p.Impossible() {
			out := algebra.NewBag(width)
			for _, v := range bgp.Vars() {
				out.Cert.Set(v)
				out.Maybe.Set(v)
			}
			return out
		}
	}
	order := greedyOrderWithCands(st, bgp, cand)
	poll := ctxPoll{ctx: ctx}
	acc := scanPattern(st, bgp[order[0]], width, cand, &poll)
	for _, idx := range order[1:] {
		if poll.done() {
			return acc
		}
		if acc.Len() == 0 {
			// Joining with the empty bag stays empty; still mark vars.
			for _, v := range bgp[idx].Vars() {
				acc.Cert.Set(v)
				acc.Maybe.Set(v)
			}
			continue
		}
		acc = algebra.JoinCancel(acc, scanPattern(st, bgp[idx], width, cand, &poll), poll.done)
	}
	return acc
}

// scanPattern materializes all matches of a single pattern into a bag,
// reporting the physical order the permutation scan produced — the
// zero-cost "interesting order" the order-aware joins dispatch on.
func scanPattern(st *store.Store, pat Pattern, width int, cand Candidates, poll *ctxPoll) *algebra.Bag {
	out := algebra.NewBag(width)
	for _, v := range pat.Vars() {
		out.Cert.Set(v)
		out.Maybe.Set(v)
	}
	out.Order = MatchOrder(st, pat, neverBound, cand)
	seed := make(algebra.Row, width)
	MatchPattern(st, pat, seed, cand, func(nr algebra.Row) {
		if poll.stopped {
			return
		}
		out.Append(nr)
		poll.tick()
	})
	return out
}

// neverBound is the bound predicate of a fresh scan: no variable carries
// a prior binding.
func neverBound(int) bool { return false }

// EstimateCard implements Engine via the shared sampling estimator over
// the ascending-size order.
func (BinaryJoinEngine) EstimateCard(ctx context.Context, st *store.Store, bgp BGP) float64 {
	if len(bgp) == 0 {
		return 1
	}
	est := newEstimator(st, bgp)
	cards, _ := est.estimate(ctx, bgp, sortedOrder(st, bgp))
	return cards[len(cards)-1]
}

// EstimateCost implements Engine with the binary-join cost formula
// (Equation 9):
//
//	cost(BinaryJoin(V1, V2)) = 2·min(card(V1), card(V2)) + max(card(V1), card(V2))
//
// summed over a left-deep join in ascending scan-size order, using the
// sampling estimator for the accumulated side.
//
// The model is order-aware: a step whose operands share a sorted prefix
// covering the join keys runs as a streaming merge join at execution
// time, skipping the hash-build pass over the smaller side, so its cost
// is min + max instead of 2·min + max.
func (BinaryJoinEngine) EstimateCost(ctx context.Context, st *store.Store, bgp BGP) float64 {
	if len(bgp) == 0 {
		return 0
	}
	order := sortedOrder(st, bgp)
	est := newEstimator(st, bgp)
	cards, _ := est.estimate(ctx, bgp, order)
	cost := float64(ExactCount(st, bgp[order[0]]))
	accOrder := MatchOrder(st, bgp[order[0]], neverBound, nil)
	accVars := map[int]bool{}
	for _, v := range bgp[order[0]].Vars() {
		accVars[v] = true
	}
	for k := 1; k < len(order); k++ {
		pat := bgp[order[k]]
		left := cards[k-1]
		right := float64(ExactCount(st, pat))
		lo, hi := left, right
		if lo > hi {
			lo, hi = hi, lo
		}
		var keys []int
		for _, v := range pat.Vars() {
			if accVars[v] {
				keys = append(keys, v)
			}
		}
		scanOrder := MatchOrder(st, pat, neverBound, nil)
		if seq, ok := algebra.MergeJoinableOrders(accOrder, scanOrder, keys); ok && len(keys) > 0 {
			cost += lo + hi // streaming merge: no hash-build pass
			accOrder = seq
		} else {
			cost += 2*lo + hi
			// A hash join's probe-major output order depends on which
			// side is larger at run time; claim nothing downstream.
			accOrder = nil
		}
		for _, v := range pat.Vars() {
			accVars[v] = true
		}
	}
	return cost
}

// sortedOrder orders patterns by ascending exact count, preferring
// connected patterns to avoid products (stable within the constraint).
func sortedOrder(st *store.Store, bgp BGP) []int {
	n := len(bgp)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	counts := make([]int, n)
	for i, p := range bgp {
		counts[i] = ExactCount(st, p)
	}
	sort.SliceStable(idx, func(a, b int) bool { return counts[idx[a]] < counts[idx[b]] })

	// Re-walk preferring connectivity.
	order := make([]int, 0, n)
	used := make([]bool, n)
	bound := map[int]bool{}
	for len(order) < n {
		pick := -1
		for _, i := range idx {
			if used[i] {
				continue
			}
			conn := len(order) == 0
			for _, v := range bgp[i].Vars() {
				if bound[v] {
					conn = true
					break
				}
			}
			if conn {
				pick = i
				break
			}
			if pick == -1 {
				pick = i // fallback: smallest disconnected
			}
		}
		used[pick] = true
		order = append(order, pick)
		for _, v := range bgp[pick].Vars() {
			bound[v] = true
		}
	}
	return order
}
