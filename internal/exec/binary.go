package exec

import (
	"context"
	"iter"
	"slices"
	"sort"

	"sparqluo/internal/algebra"
	"sparqluo/internal/store"
)

// BinaryJoinEngine evaluates BGPs in the style of Jena (§5.1.2): every
// triple pattern is scanned into a bag of mappings, then the bags are
// combined with binary hash joins, smallest first.
type BinaryJoinEngine struct{}

// Name implements Engine.
func (BinaryJoinEngine) Name() string { return "binary" }

// EvalBGP implements Engine with left-deep hash joins over per-pattern
// scans ordered by ascending scan size, preferring connected patterns to
// avoid cartesian products. Cancellation is polled during scans and
// between joins; a cancelled call may return a truncated bag, which only
// callers ignoring ctx.Err() observe.
func (e BinaryJoinEngine) EvalBGP(ctx context.Context, st store.Reader, bgp BGP, width int, cand Candidates) *algebra.Bag {
	return e.EvalBGPTop(ctx, st, bgp, width, cand, -1, nil)
}

// EvalBGPTop implements Engine with LIMIT push-down. Three escalating
// early-termination tiers apply when max >= 0:
//
//   - a single-pattern BGP stops its index scan at max emitted rows;
//   - a two-pattern BGP whose scan orders are directly merge-joinable
//     runs a fully streaming merge join over lazy pattern cursors,
//     pulling index rows only as the next output row demands them;
//   - otherwise the plan materializes as usual and only the final join
//     is capped, so at least the last operator stops early.
//
// All tiers emit in exactly the order the uncapped evaluation would, so
// the result is a byte-identical prefix of EvalBGP's bag.
func (BinaryJoinEngine) EvalBGPTop(ctx context.Context, st store.Reader, bgp BGP, width int, cand Candidates, max int, pulled *int) *algebra.Bag {
	if len(bgp) == 0 {
		if max == 0 {
			return algebra.NewBag(width)
		}
		return algebra.Unit(width)
	}
	for _, p := range bgp {
		if p.Impossible() {
			out := algebra.NewBag(width)
			for _, v := range bgp.Vars() {
				out.Cert.Set(v)
				out.Maybe.Set(v)
			}
			return out
		}
	}
	if max == 0 {
		out := algebra.NewBag(width)
		for _, v := range bgp.Vars() {
			out.Cert.Set(v)
			out.Maybe.Set(v)
		}
		return out
	}
	order := greedyOrderWithCands(st, bgp, cand)
	poll := ctxPoll{ctx: ctx}
	if len(order) == 1 {
		return scanPattern(st, bgp[order[0]], width, cand, &poll, max, pulled)
	}
	if max >= 0 && len(order) == 2 && cand == nil {
		if out, ok := streamMergeTop(st, bgp[order[0]], bgp[order[1]], width, &poll, max, pulled); ok {
			return out
		}
	}
	acc := scanPattern(st, bgp[order[0]], width, cand, &poll, -1, pulled)
	for k, idx := range order[1:] {
		if poll.done() {
			return acc
		}
		if acc.Len() == 0 {
			// Joining with the empty bag stays empty; still mark vars.
			for _, v := range bgp[idx].Vars() {
				acc.Cert.Set(v)
				acc.Maybe.Set(v)
			}
			continue
		}
		// Only the final join produces result rows, so only it may stop
		// at max; intermediate joins must run to completion.
		cap := -1
		if k == len(order)-2 {
			cap = max
		}
		acc = algebra.JoinWith(acc, scanPattern(st, bgp[idx], width, cand, &poll, -1, pulled),
			algebra.JoinOpts{Stop: poll.done, Max: cap, Pulled: pulled})
	}
	return acc
}

// scanPattern materializes matches of a single pattern into a bag,
// reporting the physical order the permutation scan produced — the
// zero-cost "interesting order" the order-aware joins dispatch on.
// max >= 0 stops the index scan after max emitted rows; pulled, when
// non-nil, accumulates the number of rows the scan drew.
func scanPattern(st store.Reader, pat Pattern, width int, cand Candidates, poll *ctxPoll, max int, pulled *int) *algebra.Bag {
	if sh, ok := shardedFor(st); ok && scatterable(pat, cand) {
		if out, ok := scatterScan(sh, pat, width, cand, poll, max, pulled); ok {
			return out
		}
	}
	out := algebra.NewBag(width)
	for _, v := range pat.Vars() {
		out.Cert.Set(v)
		out.Maybe.Set(v)
	}
	out.Order = MatchOrder(st, pat, neverBound, cand)
	seed := make(algebra.Row, width)
	MatchPattern(st, pat, seed, cand, func(nr algebra.Row) bool {
		if poll.stopped {
			return false
		}
		out.Append(nr)
		poll.tick()
		return max < 0 || out.Len() < max
	})
	if pulled != nil {
		*pulled += out.Len()
	}
	return out
}

// patternCursor turns MatchPattern's push enumeration into a lazy pull
// cursor: rows come out one at a time, and dropping the cursor (stop)
// terminates the underlying index scan. Each row is cloned out of the
// scratch buffer so it survives the next pull.
func patternCursor(st store.Reader, pat Pattern, width int) (next func() (algebra.Row, bool), stop func()) {
	return iter.Pull(func(yield func(algebra.Row) bool) {
		seed := make(algebra.Row, width)
		MatchPattern(st, pat, seed, nil, func(nr algebra.Row) bool {
			return yield(slices.Clone(nr))
		})
	})
}

// streamMergeTop is the fully streaming LIMIT push-down fast path: a
// two-pattern merge join over lazy cursors that pulls operand rows only
// while output rows are still owed. It applies when both scans' physical
// orders are directly merge-joinable on every shared variable (so the
// shared variables are exactly the certain join keys of the materialized
// plan and no extra compatibility check is needed), and mirrors
// mergeJoin's a-major group emission exactly, making its capped output
// byte-identical to the materializing path's prefix.
func streamMergeTop(st store.Reader, a, b Pattern, width int, poll *ctxPoll, max int, pulled *int) (*algebra.Bag, bool) {
	var keys []int
	bVars := map[int]bool{}
	for _, v := range b.Vars() {
		bVars[v] = true
	}
	for _, v := range a.Vars() {
		if bVars[v] {
			keys = append(keys, v)
		}
	}
	if len(keys) == 0 {
		return nil, false
	}
	aOrd := MatchOrder(st, a, neverBound, nil)
	bOrd := MatchOrder(st, b, neverBound, nil)
	seq, ok := algebra.MergeJoinableOrders(aOrd, bOrd, keys)
	if !ok {
		return nil, false
	}
	out := algebra.NewBag(width)
	for _, v := range a.Vars() {
		out.Cert.Set(v)
		out.Maybe.Set(v)
	}
	for _, v := range b.Vars() {
		out.Cert.Set(v)
		out.Maybe.Set(v)
	}
	// Output order claim, mirroring the materialized merge join: the
	// merge sequence, extended by the a-side order tail on slots the b
	// side cannot overwrite.
	ord := slices.Clone(seq)
	if len(aOrd) >= len(seq) && slices.Equal(aOrd[:len(seq)], seq) {
		for _, p := range aOrd[len(seq):] {
			if bVars[p] {
				break
			}
			ord = append(ord, p)
		}
	}
	out.Order = ord

	n := 0
	if pulled != nil {
		defer func() { *pulled += n }()
	}
	nextA, stopA := patternCursor(st, a, width)
	nextB, stopB := patternCursor(st, b, width)
	defer stopA()
	defer stopB()
	pullA := func() (algebra.Row, bool) {
		r, ok := nextA()
		if ok {
			n++
			poll.tick()
		}
		return r, ok
	}
	pullB := func() (algebra.Row, bool) {
		r, ok := nextB()
		if ok {
			n++
			poll.tick()
		}
		return r, ok
	}
	cmpOn := func(x, y algebra.Row, seq []int) int {
		for _, k := range seq {
			switch {
			case x[k] < y[k]:
				return -1
			case x[k] > y[k]:
				return 1
			}
		}
		return 0
	}

	ra, okA := pullA()
	rb, okB := pullB()
	var group []algebra.Row
	for okA && okB && !poll.stopped {
		c := cmpOn(ra, rb, seq)
		if c < 0 {
			ra, okA = pullA()
			continue
		}
		if c > 0 {
			rb, okB = pullB()
			continue
		}
		// Equal keys: buffer the full b group, then emit each matching a
		// row against it a-major — mergeJoin's exact emission order.
		group = append(group[:0], rb)
		for {
			nb, ok2 := pullB()
			if !ok2 {
				okB = false
				break
			}
			if cmpOn(nb, ra, seq) == 0 {
				group = append(group, nb)
				continue
			}
			rb = nb
			break
		}
		key := group[0]
		for okA && cmpOn(ra, key, seq) == 0 && !poll.stopped {
			for _, g := range group {
				out.AppendMerged(ra, g)
				if out.Len() == max {
					return out, true
				}
			}
			ra, okA = pullA()
		}
	}
	return out, true
}

// neverBound is the bound predicate of a fresh scan: no variable carries
// a prior binding.
func neverBound(int) bool { return false }

// EstimateCard implements Engine via the shared sampling estimator over
// the ascending-size order.
func (BinaryJoinEngine) EstimateCard(ctx context.Context, st store.Reader, bgp BGP) float64 {
	if len(bgp) == 0 {
		return 1
	}
	est := newEstimator(st, bgp)
	cards, _ := est.estimate(ctx, bgp, sortedOrder(st, bgp))
	return cards[len(cards)-1]
}

// EstimateCost implements Engine with the binary-join cost formula
// (Equation 9):
//
//	cost(BinaryJoin(V1, V2)) = 2·min(card(V1), card(V2)) + max(card(V1), card(V2))
//
// summed over a left-deep join in ascending scan-size order, using the
// sampling estimator for the accumulated side.
//
// The model is order-aware: a step whose operands share a sorted prefix
// covering the join keys runs as a streaming merge join at execution
// time, skipping the hash-build pass over the smaller side, so its cost
// is min + max instead of 2·min + max.
func (BinaryJoinEngine) EstimateCost(ctx context.Context, st store.Reader, bgp BGP) float64 {
	if len(bgp) == 0 {
		return 0
	}
	order := sortedOrder(st, bgp)
	est := newEstimator(st, bgp)
	cards, _ := est.estimate(ctx, bgp, order)
	cost := float64(ExactCount(st, bgp[order[0]]))
	accOrder := MatchOrder(st, bgp[order[0]], neverBound, nil)
	accVars := map[int]bool{}
	for _, v := range bgp[order[0]].Vars() {
		accVars[v] = true
	}
	for k := 1; k < len(order); k++ {
		pat := bgp[order[k]]
		left := cards[k-1]
		right := float64(ExactCount(st, pat))
		lo, hi := left, right
		if lo > hi {
			lo, hi = hi, lo
		}
		var keys []int
		for _, v := range pat.Vars() {
			if accVars[v] {
				keys = append(keys, v)
			}
		}
		scanOrder := MatchOrder(st, pat, neverBound, nil)
		if seq, ok := algebra.MergeJoinableOrders(accOrder, scanOrder, keys); ok && len(keys) > 0 {
			cost += lo + hi // streaming merge: no hash-build pass
			accOrder = seq
		} else {
			cost += 2*lo + hi
			// A hash join's probe-major output order depends on which
			// side is larger at run time; claim nothing downstream.
			accOrder = nil
		}
		for _, v := range pat.Vars() {
			accVars[v] = true
		}
	}
	return cost
}

// sortedOrder orders patterns by ascending exact count, preferring
// connected patterns to avoid products (stable within the constraint).
func sortedOrder(st store.Reader, bgp BGP) []int {
	n := len(bgp)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	counts := make([]int, n)
	for i, p := range bgp {
		counts[i] = ExactCount(st, p)
	}
	sort.SliceStable(idx, func(a, b int) bool { return counts[idx[a]] < counts[idx[b]] })

	// Re-walk preferring connectivity.
	order := make([]int, 0, n)
	used := make([]bool, n)
	bound := map[int]bool{}
	for len(order) < n {
		pick := -1
		for _, i := range idx {
			if used[i] {
				continue
			}
			conn := len(order) == 0
			for _, v := range bgp[i].Vars() {
				if bound[v] {
					conn = true
					break
				}
			}
			if conn {
				pick = i
				break
			}
			if pick == -1 {
				pick = i // fallback: smallest disconnected
			}
		}
		used[pick] = true
		order = append(order, pick)
		for _, v := range bgp[pick].Vars() {
			bound[v] = true
		}
	}
	return order
}
