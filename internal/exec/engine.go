package exec

import (
	"context"
	"slices"

	"sparqluo/internal/algebra"
	"sparqluo/internal/store"
)

// Engine evaluates a BGP against a store and estimates result sizes and
// execution costs, in the sense of §5.1.2. Implementations must be safe
// for concurrent use once the store is frozen.
type Engine interface {
	// Name identifies the engine ("wco" or "binary").
	Name() string
	// EvalBGP returns the bag of mappings of the BGP over the store,
	// honoring candidate sets when non-nil. width is the query-wide
	// number of variables. Implementations poll ctx periodically during
	// long joins and may return a truncated bag once it is cancelled;
	// callers that pass a cancellable context must check ctx.Err()
	// before trusting the result.
	EvalBGP(ctx context.Context, st store.Reader, bgp BGP, width int, cand Candidates) *algebra.Bag
	// EvalBGPTop is EvalBGP with LIMIT push-down: when max >= 0 the
	// engine may stop as soon as max result rows exist, and the rows it
	// returns must be exactly the first max rows EvalBGP would produce
	// (every engine emits in a deterministic physical order, so the
	// capped result is a prefix of the full one). max < 0 disables the
	// cap and the call is equivalent to EvalBGP. pulled, when non-nil,
	// accumulates the number of index/operand rows the evaluation drew —
	// the early-termination metric surfaced in EvalStats.
	EvalBGPTop(ctx context.Context, st store.Reader, bgp BGP, width int, cand Candidates, max int, pulled *int) *algebra.Bag
	// EstimateCard estimates |res(BGP)| using the sampling-based
	// cardinality estimator of §5.1.2. A cancelled ctx truncates the
	// sampling walk; the estimate is then meaningless and the caller is
	// expected to abandon the plan.
	EstimateCard(ctx context.Context, st store.Reader, bgp BGP) float64
	// EstimateCost estimates the engine-specific execution cost of the
	// BGP (WCO-join cost or binary-join cost), under the same
	// cancellation contract as EstimateCard.
	EstimateCost(ctx context.Context, st store.Reader, bgp BGP) float64
}

// sampleSize caps the number of partial results carried by the sampling
// cardinality estimator.
const sampleSize = 64

// cancelCheckMask controls how often the engines poll the context during
// row production: every (cancelCheckMask+1) produced rows. Polling per
// row would dominate tight extension loops; a power-of-two batch keeps
// the check to a single AND on the hot path.
const cancelCheckMask = 2047

// ctxPoll batches context cancellation checks. Engines call tick() per
// produced row and done() between loop strata; both report true once the
// context is cancelled.
type ctxPoll struct {
	ctx      context.Context
	produced int
	stopped  bool
}

func (c *ctxPoll) tick() bool {
	c.produced++
	if c.produced&cancelCheckMask == 0 && c.ctx.Err() != nil {
		c.stopped = true
	}
	return c.stopped
}

func (c *ctxPoll) done() bool {
	if !c.stopped && c.ctx.Err() != nil {
		c.stopped = true
	}
	return c.stopped
}

// estimator implements the paper's shared cardinality estimation:
// exact counts for single triple patterns, then for each added pattern a
// sample of the current partial results is extended and the estimate
// scaled by #extend/#sample (floored at 1).
type estimator struct {
	st    store.Reader
	width int
}

func newEstimator(st store.Reader, bgp BGP) *estimator {
	width := 0
	for _, v := range bgp.Vars() {
		if v+1 > width {
			width = v + 1
		}
	}
	return &estimator{st: st, width: width}
}

// estimate walks the patterns in the given order, maintaining (card,
// sample) and returning the per-step cardinalities: card[k] estimates the
// result size after joining patterns order[0..k]. Each sample-row
// extension can scan a large index range, so cancellation is polled
// between rows; a truncated walk leaves the remaining cards at their
// zero value, which callers discard along with the cancelled plan.
func (e *estimator) estimate(ctx context.Context, bgp BGP, order []int) (cards []float64, samples [][]algebra.Row) {
	cards = make([]float64, len(order))
	samples = make([][]algebra.Row, len(order))
	var sample []algebra.Row
	card := 0.0
	for k, idx := range order {
		pat := bgp[idx]
		if k == 0 {
			card = float64(ExactCount(e.st, pat))
			sample = e.sampleSingle(pat)
		} else {
			extended := 0
			var next []algebra.Row
			for _, r := range sample {
				if ctx.Err() != nil {
					return cards, samples
				}
				MatchPattern(e.st, pat, r, nil, func(nr algebra.Row) bool {
					extended++
					if len(next) < sampleSize {
						// nr is MatchPattern's scratch buffer; copy to retain.
						next = append(next, slices.Clone(nr))
					}
					return true
				})
			}
			if len(sample) == 0 {
				card = 0
			} else {
				card = card * float64(extended) / float64(len(sample))
				if card < 1 {
					card = 1
				}
			}
			sample = next
		}
		cards[k] = card
		samples[k] = sample
	}
	return cards, samples
}

// sampleSingle collects up to sampleSize matches of a single pattern.
func (e *estimator) sampleSingle(pat Pattern) []algebra.Row {
	var out []algebra.Row
	seed := make(algebra.Row, e.width)
	MatchPattern(e.st, pat, seed, nil, func(nr algebra.Row) bool {
		if len(out) < sampleSize {
			// nr is MatchPattern's scratch buffer; copy to retain.
			out = append(out, slices.Clone(nr))
		}
		return true
	})
	return out
}

// greedyOrder produces a join order: start from the pattern with the
// smallest exact count, then repeatedly append the connected pattern
// (sharing a variable with the chosen set) with the smallest exact count,
// falling back to the globally smallest remaining pattern when the BGP is
// disconnected.
func greedyOrder(st store.Reader, bgp BGP) []int {
	n := len(bgp)
	order := make([]int, 0, n)
	used := make([]bool, n)
	counts := make([]int, n)
	for i, p := range bgp {
		counts[i] = ExactCount(st, p)
	}
	bound := map[int]bool{}
	for len(order) < n {
		best, bestCount, bestConn := -1, 0, false
		for i := range bgp {
			if used[i] {
				continue
			}
			conn := len(order) == 0
			for _, v := range bgp[i].Vars() {
				if bound[v] {
					conn = true
					break
				}
			}
			if best == -1 || (conn && !bestConn) || (conn == bestConn && counts[i] < bestCount) {
				best, bestCount, bestConn = i, counts[i], conn
			}
		}
		used[best] = true
		order = append(order, best)
		for _, v := range bgp[best].Vars() {
			bound[v] = true
		}
	}
	return order
}
