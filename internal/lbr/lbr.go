// Package lbr reimplements the LBR baseline (Atre, "Left Bit Right: For
// SPARQL Join Queries with OPTIONAL Patterns", SIGMOD 2015) that the
// paper compares against in §7.2.
//
// LBR's execution strategy, as characterized by the paper, differs from
// the BE-tree scheme in two ways that this implementation reproduces:
//
//  1. Triple patterns are evaluated separately — every pattern of a group
//     is materialized in full before any combination happens (no BGP
//     engine with join-order optimization inside a group).
//  2. Before combining, LBR runs a two-pass semijoin scan over the graph
//     of join variables (a forward and a backward pass), pruning each
//     pattern's result set against its already-scanned neighbours; results
//     of OPTIONAL (slave) patterns may be pruned by their masters, never
//     the reverse, preserving left-outer-join semantics (the nullification
//     / best-match discipline of well-designed patterns).
//
// The final combination joins the pruned pattern results within a group
// and left-outer-joins OPTIONAL children, bottom-up.
package lbr

import (
	"time"

	"sparqluo/internal/algebra"
	"sparqluo/internal/exec"
	"sparqluo/internal/sparql"
	"sparqluo/internal/store"
)

// Result carries the outcome of an LBR evaluation.
type Result struct {
	Bag      *algebra.Bag
	Vars     *algebra.VarSet
	ExecTime time.Duration
	// Semijoins counts semijoin prunings performed across both passes.
	Semijoins int
	// Materialized sums the sizes of all per-pattern scans, the
	// intermediate-result overhead LBR pays before pruning.
	Materialized int
}

// Run evaluates a SPARQL-UO query with the LBR strategy. The store must
// be frozen. UNION elements are supported by evaluating branches
// independently (LBR itself targets OPTIONAL queries; the paper's
// comparison set q2.1–q2.6 is OPTIONAL-only).
func Run(q *sparql.Query, st *store.Store) (*Result, error) {
	vars := algebra.NewVarSet()
	internGroup(q.Where, vars)
	for _, v := range q.Select {
		vars.Intern(v)
	}
	ev := &evaluator{st: st, vars: vars, width: vars.Len()}
	start := time.Now()
	bag := ev.group(q.Where)
	if len(q.Select) > 0 {
		keep := make([]int, 0, len(q.Select))
		for _, name := range q.Select {
			if i, ok := vars.Lookup(name); ok {
				keep = append(keep, i)
			}
		}
		bag = algebra.Project(bag, keep)
	}
	if q.Distinct {
		bag = algebra.Distinct(bag)
	}
	return &Result{
		Bag:          bag,
		Vars:         vars,
		ExecTime:     time.Since(start),
		Semijoins:    ev.semijoins,
		Materialized: ev.materialized,
	}, nil
}

func internGroup(g *sparql.Group, vars *algebra.VarSet) {
	for _, e := range g.Elements {
		switch e := e.(type) {
		case sparql.TriplePattern:
			for _, v := range e.Vars() {
				vars.Intern(v)
			}
		case *sparql.Group:
			internGroup(e, vars)
		case *sparql.Union:
			for _, br := range e.Branches {
				internGroup(br, vars)
			}
		case *sparql.Optional:
			internGroup(e.Group, vars)
		}
	}
}

type evaluator struct {
	st           *store.Store
	vars         *algebra.VarSet
	width        int
	semijoins    int
	materialized int
}

// patternBag materializes one triple pattern in full: LBR's separate
// treatment of triple patterns.
func (ev *evaluator) patternBag(tp sparql.TriplePattern) *algebra.Bag {
	pat := ev.encode(tp)
	out := algebra.NewBag(ev.width)
	for _, v := range pat.Vars() {
		out.Cert.Set(v)
		out.Maybe.Set(v)
	}
	out.Order = exec.MatchOrder(ev.st, pat, func(int) bool { return false }, nil)
	seed := make(algebra.Row, ev.width)
	exec.MatchPattern(ev.st, pat, seed, nil, func(r algebra.Row) bool {
		out.Append(r)
		return true
	})
	ev.materialized += out.Len()
	return out
}

func (ev *evaluator) encode(tp sparql.TriplePattern) exec.Pattern {
	enc := func(tv sparql.TermOrVar) exec.Pos {
		if tv.IsVar {
			i, _ := ev.vars.Lookup(tv.Var)
			return exec.Var(i)
		}
		id, _ := ev.st.Dict().Lookup(tv.Term)
		return exec.Const(id)
	}
	return exec.Pattern{S: enc(tp.S), P: enc(tp.P), O: enc(tp.O)}
}

// group evaluates a group graph pattern the LBR way, under the same
// semantics as the BE-tree scheme (the paper's precedence AND ≺ OPTIONAL):
// required elements — triple patterns, nested groups, UNIONs — combine
// first, in order; OPTIONAL children are then left-outer-joined, in
// order. The group's triple patterns are materialized separately and
// pruned by the two-pass semijoin scan before being joined; each
// OPTIONAL's slave (right) side is pruned by a semijoin against the
// master before the left outer join.
func (ev *evaluator) group(g *sparql.Group) *algebra.Bag {
	// Materialize all of this level's triple patterns.
	var tps []*algebra.Bag
	for _, e := range g.Elements {
		if tp, ok := e.(sparql.TriplePattern); ok {
			tps = append(tps, ev.patternBag(tp))
		}
	}
	ev.twoPassSemijoin(tps)

	var r *algebra.Bag
	k := 0
	var optionals []*sparql.Optional
	for _, e := range g.Elements {
		switch e := e.(type) {
		case sparql.TriplePattern:
			r = ev.joinWith(r, tps[k])
			k++
		case *sparql.Group:
			r = ev.joinWith(r, ev.group(e))
		case *sparql.Union:
			u := algebra.NewBag(ev.width)
			for _, br := range e.Branches {
				u = algebra.Union(u, ev.group(br))
			}
			r = ev.joinWith(r, u)
		case *sparql.Optional:
			optionals = append(optionals, e)
		}
	}
	if r == nil {
		r = algebra.Unit(ev.width)
	}
	for _, opt := range optionals {
		o := ev.group(opt.Group)
		// Master prunes slave (never the reverse).
		pruned := algebra.SemiJoin(o, r)
		ev.semijoins++
		r = algebra.LeftJoin(r, pruned)
	}
	return r
}

func (ev *evaluator) joinWith(r, o *algebra.Bag) *algebra.Bag {
	if r == nil {
		return o
	}
	return algebra.Join(r, o)
}

// twoPassSemijoin prunes each pattern's results against its neighbours in
// the join-variable graph, first left-to-right then right-to-left,
// mirroring LBR's forward/backward semijoin scans.
func (ev *evaluator) twoPassSemijoin(bags []*algebra.Bag) {
	if len(bags) < 2 {
		return
	}
	adjacent := func(a, b *algebra.Bag) bool {
		shared := a.Cert.And(b.Cert)
		for _, w := range shared {
			if w != 0 {
				return true
			}
		}
		return false
	}
	// Forward pass: prune bags[i] by every earlier neighbour.
	for i := 1; i < len(bags); i++ {
		for j := 0; j < i; j++ {
			if adjacent(bags[i], bags[j]) {
				bags[i] = algebra.SemiJoin(bags[i], bags[j])
				ev.semijoins++
			}
		}
	}
	// Backward pass: prune bags[i] by every later neighbour.
	for i := len(bags) - 2; i >= 0; i-- {
		for j := len(bags) - 1; j > i; j-- {
			if adjacent(bags[i], bags[j]) {
				bags[i] = algebra.SemiJoin(bags[i], bags[j])
				ev.semijoins++
			}
		}
	}
}
