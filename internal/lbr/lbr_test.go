package lbr

import (
	"math/rand"
	"testing"

	"sparqluo/internal/core"
	"sparqluo/internal/exec"
	"sparqluo/internal/qgen"
	"sparqluo/internal/sparql"
	"sparqluo/internal/store"
)

func randomStore(rng *rand.Rand, n int) *store.Store {
	st := store.New()
	st.AddAll(qgen.RandomDataset(rng, n))
	st.Freeze()
	return st
}

// TestPropertyLBRMatchesBEtree: on random OPTIONAL-heavy queries, LBR's
// separate-pattern + two-pass-semijoin evaluation computes the same bags
// as the BE-tree scheme.
func TestPropertyLBRMatchesBEtree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		st := randomStore(rng, 50+rng.Intn(100))
		cfg := qgen.DefaultConfig()
		cfg.NoUnion = trial%2 == 0 // half the trials exercise UNION too
		text := qgen.RandomQuery(rng, cfg)
		q, err := sparql.Parse(text)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ref, err := core.Run(q, st, exec.WCOEngine{}, core.Base)
		if err != nil {
			t.Fatalf("trial %d: core: %v", trial, err)
		}
		lres, err := Run(q, st)
		if err != nil {
			t.Fatalf("trial %d: lbr: %v", trial, err)
		}
		if ref.Bag.Len() != lres.Bag.Len() {
			t.Fatalf("trial %d: row counts differ: core=%d lbr=%d\nquery: %s",
				trial, ref.Bag.Len(), lres.Bag.Len(), text)
		}
		if !sameSolutions(t, ref, lres) {
			t.Fatalf("trial %d: solutions differ\nquery: %s", trial, text)
		}
	}
}

func sameSolutions(t *testing.T, a *core.Result, b *Result) bool {
	t.Helper()
	counts := map[string]int{}
	for _, r := range a.Bag.All() {
		counts[keyByName(r, a.Vars)]++
	}
	for _, r := range b.Bag.All() {
		counts[keyByName(r, b.Vars)]--
	}
	for _, c := range counts {
		if c != 0 {
			return false
		}
	}
	return true
}

func keyByName(r []store.ID, vars interface{ Names() []string }) string {
	names := append([]string(nil), vars.Names()...)
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	lookup := vars.(interface {
		Lookup(string) (int, bool)
	})
	out := make([]byte, 0, 16)
	for _, n := range names {
		i, _ := lookup.Lookup(n)
		id := r[i]
		out = append(out, n...)
		out = append(out, '=', byte(id), byte(id>>8), byte(id>>16), byte(id>>24), ';')
	}
	return string(out)
}

func TestLBRInstrumentation(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	st := randomStore(rng, 100)
	q := sparql.MustParse(`SELECT * WHERE {
		?a <http://ex.org/p0> ?b . ?b <http://ex.org/p1> ?c .
		OPTIONAL { ?c <http://ex.org/p2> ?d . }
	}`)
	res, err := Run(q, st)
	if err != nil {
		t.Fatal(err)
	}
	// Two adjacent required patterns → forward + backward semijoin, plus
	// the master→slave semijoin for the OPTIONAL.
	if res.Semijoins < 3 {
		t.Errorf("semijoins = %d, want ≥ 3", res.Semijoins)
	}
	if res.Materialized == 0 {
		t.Error("expected per-pattern materialization to be recorded")
	}
}

func TestLBRProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	st := randomStore(rng, 60)
	q := sparql.MustParse(`SELECT ?a WHERE { ?a <http://ex.org/p0> ?b . }`)
	res, err := Run(q, st)
	if err != nil {
		t.Fatal(err)
	}
	bIdx, ok := res.Vars.Lookup("b")
	if !ok {
		t.Fatal("variable b missing from table")
	}
	for _, r := range res.Bag.All() {
		if r[bIdx] != store.None {
			t.Fatal("projection did not clear ?b")
		}
	}
}
