// Package qgen generates random RDF datasets and random SPARQL-UO
// queries for property-based differential testing: the equivalence of
// base/TT/CP/full (Theorems 1–2 plus candidate-pruning soundness) and of
// the LBR baseline is checked over thousands of (dataset, query) pairs.
//
// The generator uses a deliberately tiny vocabulary so that random
// patterns frequently match, join variables overlap, and OPTIONAL
// mismatches occur — the interesting cases for bag semantics.
package qgen

import (
	"fmt"
	"math/rand"
	"strings"

	"sparqluo/internal/rdf"
)

// Vocabulary sizes. Small on purpose: collisions create joins.
const (
	numSubjects   = 12
	numPredicates = 5
	numObjects    = 10
	numVars       = 6
)

// RandomDataset returns n random triples over the tiny vocabulary.
func RandomDataset(rng *rand.Rand, n int) []rdf.Triple {
	out := make([]rdf.Triple, 0, n)
	for i := 0; i < n; i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://ex.org/s%d", rng.Intn(numSubjects)))
		p := rdf.NewIRI(fmt.Sprintf("http://ex.org/p%d", rng.Intn(numPredicates)))
		var o rdf.Term
		if rng.Intn(4) == 0 {
			o = rdf.NewLiteral(fmt.Sprintf("lit%d", rng.Intn(numObjects)))
		} else {
			// Objects drawn from the subject space so paths chain.
			o = rdf.NewIRI(fmt.Sprintf("http://ex.org/s%d", rng.Intn(numSubjects)))
		}
		out = append(out, rdf.Triple{S: s, P: p, O: o})
	}
	return out
}

// Config bounds the shape of generated queries.
type Config struct {
	MaxDepth    int // maximum group nesting depth
	MaxElements int // maximum elements per group
	// WellDesigned forbids a UNION element (LBR's target fragment is
	// OPTIONAL-only); OPTIONALs are always generated.
	NoUnion bool
}

// DefaultConfig is a reasonable fuzzing shape.
func DefaultConfig() Config { return Config{MaxDepth: 3, MaxElements: 4} }

// RandomQuery returns a random SPARQL-UO SELECT query as text.
func RandomQuery(rng *rand.Rand, cfg Config) string {
	g := &qgenState{rng: rng, cfg: cfg}
	var b strings.Builder
	b.WriteString("SELECT * WHERE ")
	g.group(&b, cfg.MaxDepth, true)
	return b.String()
}

type qgenState struct {
	rng *rand.Rand
	cfg Config
}

func (g *qgenState) variable() string {
	return fmt.Sprintf("?v%d", g.rng.Intn(numVars))
}

func (g *qgenState) subjectTerm() string {
	if g.rng.Intn(3) == 0 {
		return fmt.Sprintf("<http://ex.org/s%d>", g.rng.Intn(numSubjects))
	}
	return g.variable()
}

func (g *qgenState) predicateTerm() string {
	if g.rng.Intn(8) == 0 {
		return g.variable()
	}
	return fmt.Sprintf("<http://ex.org/p%d>", g.rng.Intn(numPredicates))
}

func (g *qgenState) objectTerm() string {
	switch g.rng.Intn(6) {
	case 0:
		return fmt.Sprintf("<http://ex.org/s%d>", g.rng.Intn(numSubjects))
	case 1:
		return fmt.Sprintf("\"lit%d\"", g.rng.Intn(numObjects))
	default:
		return g.variable()
	}
}

func (g *qgenState) triple(b *strings.Builder) {
	fmt.Fprintf(b, "%s %s %s . ", g.subjectTerm(), g.predicateTerm(), g.objectTerm())
}

// group emits a brace-delimited group graph pattern. A group always
// starts with at least one triple pattern so OPTIONAL has a left side.
func (g *qgenState) group(b *strings.Builder, depth int, top bool) {
	b.WriteString("{ ")
	n := 1 + g.rng.Intn(g.cfg.MaxElements)
	g.triple(b) // ensure non-empty required part
	for i := 1; i < n; i++ {
		switch choice := g.rng.Intn(10); {
		case choice < 4 || depth == 0:
			g.triple(b)
		case choice < 6 && !g.cfg.NoUnion:
			g.group(b, depth-1, false)
			b.WriteString(" UNION ")
			g.group(b, depth-1, false)
			b.WriteString(" ")
		case choice < 8:
			b.WriteString("OPTIONAL ")
			g.group(b, depth-1, false)
			b.WriteString(" ")
		default:
			g.group(b, depth-1, false)
			b.WriteString(" ")
		}
	}
	b.WriteString("}")
	_ = top
}
