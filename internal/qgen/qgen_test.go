package qgen

import (
	"math/rand"
	"testing"

	"sparqluo/internal/sparql"
)

func TestGeneratedQueriesParse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		text := RandomQuery(rng, DefaultConfig())
		if _, err := sparql.Parse(text); err != nil {
			t.Fatalf("trial %d: generated query does not parse: %v\n%s", i, err, text)
		}
	}
}

func TestNoUnionConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := DefaultConfig()
	cfg.NoUnion = true
	for i := 0; i < 200; i++ {
		text := RandomQuery(rng, cfg)
		q, err := sparql.Parse(text)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if containsUnion(q.Where) {
			t.Fatalf("trial %d: NoUnion query contains UNION:\n%s", i, text)
		}
	}
}

func containsUnion(g *sparql.Group) bool {
	for _, e := range g.Elements {
		switch e := e.(type) {
		case *sparql.Union:
			return true
		case *sparql.Group:
			if containsUnion(e) {
				return true
			}
		case *sparql.Optional:
			if containsUnion(e.Group) {
				return true
			}
		}
	}
	return false
}

func TestRandomDatasetShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ts := RandomDataset(rng, 100)
	if len(ts) != 100 {
		t.Fatalf("len = %d", len(ts))
	}
	for _, tr := range ts {
		if !tr.Valid() {
			t.Fatalf("invalid triple %v", tr)
		}
	}
}

func TestDatasetDeterministicPerSeed(t *testing.T) {
	a := RandomDataset(rand.New(rand.NewSource(7)), 50)
	b := RandomDataset(rand.New(rand.NewSource(7)), 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("dataset generation must be deterministic per seed")
		}
	}
}
