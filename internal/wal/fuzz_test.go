package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"sparqluo/internal/rdf"
)

// segmentBytes builds a well-formed single-segment log in memory: the
// seed corpus starts from real bytes so the fuzzer's mutations explore
// the interesting frontier (almost-valid logs) instead of rejecting
// noise at the magic check.
func segmentBytes(recs []Record) []byte {
	var hdr [headerSize]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:], version)
	binary.LittleEndian.PutUint64(hdr[12:], 1)
	binary.LittleEndian.PutUint32(hdr[20:], crc32.Checksum(hdr[:20], castagnoli))
	out := append([]byte(nil), hdr[:]...)
	for _, r := range recs {
		out = append(out, encodeRecord(r.Kind, r.Batch, r.Triples)...)
	}
	return out
}

// FuzzWALReplay holds recovery to the snapshot loader's bar: arbitrary
// bytes under a segment name must either open+replay cleanly or fail
// with an error — truncating a torn tail is fine, panicking or looping
// is not. Seeds cover truncations at every interesting boundary,
// bit-flips in the header, frame header, body and payload, and a
// mid-record tear with valid data behind it.
func FuzzWALReplay(f *testing.F) {
	ts := []rdf.Triple{
		{S: rdf.NewIRI("http://f/s"), P: rdf.NewIRI("http://f/p"), O: rdf.NewIRI("http://f/o")},
		{S: rdf.NewIRI("http://f/s2"), P: rdf.NewIRI("http://f/p"), O: rdf.NewLiteral("lit \"q\"\n")},
	}
	valid := segmentBytes([]Record{
		{Kind: Insert, Batch: 1, Triples: ts},
		{Kind: Delete, Batch: 2, Triples: ts[:1]},
		{Kind: Insert, Batch: 3, Triples: ts[1:]},
	})
	f.Add(valid)
	f.Add(valid[:headerSize])   // header only
	f.Add(valid[:headerSize/2]) // torn header
	f.Add(valid[:len(valid)-1]) // torn final record
	f.Add(valid[:headerSize+3]) // tear inside the first frame header
	f.Add([]byte{})             // empty file
	f.Add(segmentBytes(nil))    // empty segment
	for _, off := range []int{4, 12, headerSize + 1, headerSize + 6, headerSize + 20, len(valid) - 2} {
		flipped := append([]byte(nil), valid...)
		flipped[off] ^= 0x10
		f.Add(flipped)
	}
	// Mid-record tear with a valid-looking suffix: truncate record 2's
	// frame and splice record 3 directly behind the damage.
	r3 := encodeRecord(Insert, 3, ts[1:])
	torn := append([]byte(nil), valid[:len(valid)-len(r3)-4]...)
	f.Add(append(torn, r3...))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "0000000000000001.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		l, err := Open(dir, Options{Sync: SyncNever})
		if err != nil {
			return // a typed refusal is a correct outcome
		}
		n := 0
		if err := l.Replay(func(r Record) error {
			n++
			if r.Kind != Insert && r.Kind != Delete {
				t.Fatalf("replay surfaced bad kind %d", r.Kind)
			}
			return nil
		}); err != nil {
			l.Close()
			return
		}
		// The log must stay appendable after any accepted input.
		if _, err := l.Append(Insert, ts[:1]); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		_ = n
	})
}
