package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"sparqluo/internal/rdf"
)

// validateSegment scans one segment file front to back without
// decoding payloads. For the final segment a torn tail — an incomplete
// or CRC-failing suffix, the write the process died inside — is
// truncated off the file (and the truncated byte count returned); in
// any earlier segment the same damage is a *CorruptError, because a
// sealed segment can only lose bytes to real corruption. A final
// segment whose header never fully reached the disk (a crash during
// rotation, before any record could be acknowledged) is removed
// entirely and reported with a negative segment size.
func validateSegment(path string, index uint64, final bool) (seg segment, records int, maxBatch uint64, truncated int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return segment{}, 0, 0, 0, fmt.Errorf("wal: %w", err)
	}
	if !validHeader(data, index) {
		if final {
			if err := os.Remove(path); err != nil {
				return segment{}, 0, 0, 0, fmt.Errorf("wal: %w", err)
			}
			return segment{index: index, bytes: -1}, 0, 0, int64(len(data)), nil
		}
		return segment{}, 0, 0, 0, &CorruptError{Segment: path, Offset: 0, Reason: "bad segment header"}
	}

	off := int64(headerSize)
	for off < int64(len(data)) {
		n, batch, reason := checkFrame(data, off)
		if reason != "" {
			if final && tornTail(data, off) {
				// Torn tail: cut the file back to the last whole record
				// so future appends and replays never see it again.
				if err := truncateFile(path, off); err != nil {
					return segment{}, 0, 0, 0, err
				}
				return segment{index: index, bytes: off}, records, maxBatch, int64(len(data)) - off, nil
			}
			return segment{}, 0, 0, 0, &CorruptError{Segment: path, Offset: off, Reason: reason}
		}
		records++
		if batch > maxBatch {
			maxBatch = batch
		}
		off += n
	}
	return segment{index: index, bytes: off}, records, maxBatch, 0, nil
}

// tornTail reports whether the bad frame at off is consistent with a
// torn append: the claimed frame runs to (or past) the end of the file,
// so no acknowledged record can live behind the damage and truncating
// at off loses nothing that was ever acked. A bad frame with intact
// data beyond it cannot be a tear — appends are strictly sequential, so
// nothing ever writes past an incomplete record — and is treated as
// real corruption instead.
func tornTail(data []byte, off int64) bool {
	rest := data[off:]
	if int64(len(rest)) < frameHeader {
		return true // the frame header itself is incomplete
	}
	bodyLen := int64(binary.LittleEndian.Uint32(rest[4:]))
	return frameHeader+bodyLen >= int64(len(rest))
}

// validHeader reports whether data starts with a well-formed segment
// header carrying the expected index.
func validHeader(data []byte, index uint64) bool {
	if len(data) < headerSize {
		return false
	}
	if !bytes.Equal(data[:8], magic[:]) {
		return false
	}
	if binary.LittleEndian.Uint32(data[8:]) != version {
		return false
	}
	if binary.LittleEndian.Uint64(data[12:]) != index {
		return false
	}
	return binary.LittleEndian.Uint32(data[20:]) == crc32.Checksum(data[:20], castagnoli)
}

// checkFrame validates the record frame at off. It returns the frame's
// total length and batch ID, or a non-empty reason describing why the
// frame is not intact.
func checkFrame(data []byte, off int64) (n int64, batch uint64, reason string) {
	rest := data[off:]
	if len(rest) < frameHeader {
		return 0, 0, "short frame header"
	}
	bodyLen := int64(binary.LittleEndian.Uint32(rest[4:]))
	if bodyLen > maxBodyBytes {
		return 0, 0, "implausible record length"
	}
	if int64(len(rest)) < frameHeader+bodyLen {
		return 0, 0, "record extends past end of segment"
	}
	frame := rest[:frameHeader+bodyLen]
	if binary.LittleEndian.Uint32(frame) != crc32.Checksum(frame[4:], castagnoli) {
		return 0, 0, "record CRC mismatch"
	}
	kind, batch, _, reason := decodeBody(frame[frameHeader:])
	if reason != "" {
		return 0, 0, reason
	}
	if kind != Insert && kind != Delete {
		return 0, 0, fmt.Sprintf("unknown record kind %d", kind)
	}
	return frameHeader + bodyLen, batch, ""
}

// decodeBody splits a CRC-verified record body into its fields.
func decodeBody(body []byte) (kind Kind, batch uint64, payload []byte, reason string) {
	if len(body) < 1 {
		return 0, 0, nil, "empty record body"
	}
	kind = Kind(body[0])
	rest := body[1:]
	batch, n := binary.Uvarint(rest)
	if n <= 0 {
		return 0, 0, nil, "bad batch varint"
	}
	rest = rest[n:]
	plen, n := binary.Uvarint(rest)
	if n <= 0 {
		return 0, 0, nil, "bad payload-length varint"
	}
	rest = rest[n:]
	if uint64(len(rest)) != plen {
		return 0, 0, nil, "payload length disagrees with record length"
	}
	return kind, batch, rest, ""
}

// truncateFile cuts path to size and syncs the result, so the discarded
// tail cannot resurrect after a crash.
func truncateFile(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("wal: truncating torn tail: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return fmt.Errorf("wal: truncating torn tail: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: truncating torn tail: %w", err)
	}
	return nil
}

// Replay streams every surviving record to fn in append order: segments
// ascending, records front to back within each. Open already truncated
// any torn tail, so every frame Replay meets must be intact; damage at
// this point (or an undecodable N-Triples payload behind a valid CRC)
// is a *CorruptError, never a panic. A non-nil error from fn aborts the
// replay and is returned as-is.
//
// Call Replay before the first Append: it reads the segment files the
// writer is appending to.
func (l *Log) Replay(fn func(Record) error) error {
	l.mu.Lock()
	segs := make([]segment, len(l.segments))
	copy(segs, l.segments)
	l.mu.Unlock()
	for _, seg := range segs {
		if err := replaySegment(l.segmentPath(seg.index), seg.index, fn); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(path string, index uint64, fn func(Record) error) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if !validHeader(data, index) {
		return &CorruptError{Segment: path, Offset: 0, Reason: "bad segment header"}
	}
	off := int64(headerSize)
	for off < int64(len(data)) {
		n, _, reason := checkFrame(data, off)
		if reason != "" {
			return &CorruptError{Segment: path, Offset: off, Reason: reason}
		}
		kind, batch, payload, _ := decodeBody(data[off+frameHeader : off+n])
		ts, perr := decodePayload(payload)
		if perr != nil {
			return &CorruptError{Segment: path, Offset: off, Reason: fmt.Sprintf("payload: %v", perr)}
		}
		if err := fn(Record{Kind: kind, Batch: batch, Triples: ts}); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// decodePayload parses the record's N-Triples payload.
func decodePayload(payload []byte) ([]rdf.Triple, error) {
	d := rdf.NewDecoder(bytes.NewReader(payload))
	var ts []rdf.Triple
	for {
		t, err := d.Decode()
		if err == io.EOF {
			return ts, nil
		}
		if err != nil {
			return nil, err
		}
		ts = append(ts, t)
	}
}
