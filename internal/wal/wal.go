// Package wal is the write-ahead log that makes live updates durable
// between compactions. The overlay's memtable is the only copy of an
// acknowledged Insert/Delete until the background compactor folds it
// into a persisted base image — without a log, a crash in that window
// silently loses acknowledged writes. The WAL closes it: every write
// batch is framed and appended to a segmented on-disk log before it is
// acknowledged, and recovery is "open the newest snapshot, replay the
// live segments" — the same differential-index + log pairing production
// triple stores in the RDF-3X lineage use.
//
// # Format
//
// A log is a directory of segment files named %016x.wal by a
// monotonically increasing segment index. Each segment starts with a
// 24-byte header:
//
//	magic "SPQLWALS" · u32 version · u64 segment index · u32 CRC32-C(header[:20])
//
// followed by length-prefixed records:
//
//	u32 CRC32-C(frame[4:]) · u32 body length · body
//	body = u8 kind · uvarint batch ID · uvarint payload length · payload
//
// The payload is an N-Triples document (one line per triple in the
// batch). Text, not dictionary IDs, deliberately: dictionary IDs are
// assigned in arrival order and differ between the crashed process and
// the recovered one, while the N-Triples encoding is stable, self-
// describing, and replays through the exact ingest path a client would
// use. All integers are little-endian; the CRC is CRC32-C (Castagnoli,
// hardware-accelerated), the same polynomial the snapshot format uses.
//
// # Durability contract
//
// Append writes the frame with a single write syscall (no user-space
// buffer), so an appended record survives a process crash (kill -9)
// even before any fsync; Sync is what makes it survive power loss,
// per the configured SyncPolicy:
//
//   - SyncAlways: Sync fsyncs before returning, with group commit —
//     concurrent writers coalesce into one fsync (one leader syncs the
//     file tail, followers observe their batch is already covered and
//     return without touching the disk).
//   - SyncInterval: a background flusher fsyncs every Interval; Sync
//     returns immediately. Bounded loss window under power failure.
//   - SyncNever: the OS decides when pages reach the platter.
//
// # Recovery
//
// Open validates every segment front to back. A torn final record —
// the tail the process was writing when it died — is silently truncated
// (reported in Stats.TruncatedBytes so callers can log it). Corruption
// anywhere earlier in the stream is a *CorruptError: the log refuses to
// open rather than silently dropping acknowledged history, and it never
// panics on any input (FuzzWALReplay holds it to the same bar as
// FuzzSnapshotLoad). Replay then streams the surviving records in
// append order.
//
// # Checkpointing
//
// Cut rotates to a fresh segment and returns its index as a checkpoint
// mark; Retire(mark) deletes every segment below the mark. The overlay
// compactor cuts when it claims the memtable and retires only after the
// folded base image is durably persisted, so the log and the snapshot
// writer together form the recovery pair: segments at or above the mark
// hold exactly the batches the newest snapshot does not.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"sparqluo/internal/rdf"
)

// Kind discriminates the two batch kinds a record can hold.
type Kind uint8

const (
	// Insert is a batch of inserted triples.
	Insert Kind = 1
	// Delete is a batch of tombstoned triples.
	Delete Kind = 2
)

func (k Kind) String() string {
	switch k {
	case Insert:
		return "insert"
	case Delete:
		return "delete"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one logged write batch.
type Record struct {
	Kind    Kind
	Batch   uint64 // monotonically increasing batch ID
	Triples []rdf.Triple
}

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs before Sync returns (group-committed):
	// an acknowledged batch survives power loss.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background timer: a power failure can
	// lose at most the last Interval of acknowledged batches (a process
	// crash alone loses nothing — appends hit the page cache directly).
	SyncInterval
	// SyncNever never fsyncs; the OS flushes when it pleases.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses "always", "interval" or "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always", "":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or never)", s)
	}
}

// Options configures a Log.
type Options struct {
	// Sync is the durability policy (default SyncAlways).
	Sync SyncPolicy
	// Interval is the background fsync period under SyncInterval
	// (default 100ms; ignored otherwise).
	Interval time.Duration
	// SegmentBytes rotates the active segment once it exceeds this many
	// bytes (default 64 MiB). Checkpoints rotate regardless.
	SegmentBytes int64
}

const (
	segmentSuffix = ".wal"
	headerSize    = 24
	frameHeader   = 8 // u32 crc + u32 body length
	version       = 1

	defaultSegmentBytes = 64 << 20
	defaultInterval     = 100 * time.Millisecond

	// maxBodyBytes bounds a single record frame; a length field beyond
	// it is treated as framing damage, not an allocation request.
	maxBodyBytes = 1 << 30
)

// magic identifies a WAL segment file.
var magic = [8]byte{'S', 'P', 'Q', 'L', 'W', 'A', 'L', 'S'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CorruptError reports corruption in the middle of the log stream —
// damage that cannot be a torn final write and therefore would silently
// drop acknowledged batches if ignored. Open and Replay return it
// (wrapped) instead of truncating; they never panic.
type CorruptError struct {
	Segment string // segment file path
	Offset  int64  // byte offset of the bad frame or header
	Reason  string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt log: %s at offset %d: %s", e.Segment, e.Offset, e.Reason)
}

// Stats is a point-in-time picture of the log, reported by /stats and
// /healthz via the overlay.
type Stats struct {
	Segments       int       // live segment files, including the active one
	Bytes          int64     // total bytes across live segments
	Appended       uint64    // records appended since Open
	Syncs          uint64    // fsyncs issued since Open
	LastSync       time.Time // completion time of the last fsync (Open counts as one)
	LastBatch      uint64    // ID of the most recently appended batch
	Replayed       int       // records recovered by the Open-time scan
	TruncatedBytes int64     // torn-tail bytes discarded at Open
}

// segment is one live segment file.
type segment struct {
	index uint64
	bytes int64 // current size, header included
}

// Log is an append-only segmented write-ahead log. All methods are safe
// for concurrent use; Replay must be called (if at all) before the
// first Append.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File  // active segment
	segments []segment // ascending by index; last is active
	closed   bool

	nextBatch   uint64
	lastBatch   uint64 // most recently appended batch ID
	syncedBatch uint64 // highest batch ID covered by a completed fsync
	appended    uint64
	syncs       uint64
	lastSync    time.Time

	syncing  bool // an fsync is in flight with mu released
	syncCond *sync.Cond

	replayed       int
	truncatedBytes int64

	flushStop chan struct{} // SyncInterval flusher
	flushDone chan struct{}
}

// Open opens (creating if needed) the write-ahead log in dir. Every
// existing segment is validated front to back: a torn final record is
// truncated away (Stats.TruncatedBytes reports how many bytes), while
// corruption earlier in the stream returns a *CorruptError. Appends
// resume in the last segment with the next batch ID.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.Interval <= 0 {
		opts.Interval = defaultInterval
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts, nextBatch: 1}
	l.syncCond = sync.NewCond(&l.mu)

	indexes, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for i, idx := range indexes {
		final := i == len(indexes)-1
		seg, n, maxBatch, truncated, err := validateSegment(l.segmentPath(idx), idx, final)
		if err != nil {
			return nil, err
		}
		if seg.bytes < 0 {
			// A final segment whose header never made it to disk (crash
			// during rotation): recreate it empty below.
			continue
		}
		l.segments = append(l.segments, seg)
		l.replayed += n
		l.truncatedBytes += truncated
		if maxBatch >= l.nextBatch {
			l.nextBatch = maxBatch + 1
		}
	}
	l.lastBatch = l.nextBatch - 1
	l.syncedBatch = l.lastBatch // everything found on disk is as durable as it gets

	// Open (or create) the active segment for appending.
	if len(l.segments) == 0 {
		if err := l.openSegmentLocked(1); err != nil {
			return nil, err
		}
	} else {
		active := &l.segments[len(l.segments)-1]
		f, err := os.OpenFile(l.segmentPath(active.index), os.O_WRONLY, 0)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		if _, err := f.Seek(active.bytes, 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.f = f
	}
	l.lastSync = time.Now()

	if opts.Sync == SyncInterval {
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop()
	}
	return l, nil
}

func (l *Log) segmentPath(index uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%016x%s", index, segmentSuffix))
}

// listSegments returns the segment indexes present in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var indexes []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		idx, err := strconv.ParseUint(strings.TrimSuffix(name, segmentSuffix), 16, 64)
		if err != nil {
			continue // foreign file; leave it alone
		}
		indexes = append(indexes, idx)
	}
	slices.Sort(indexes)
	return indexes, nil
}

// openSegmentLocked creates a fresh segment with the given index, makes
// its directory entry durable, and installs it as the active file.
// Called with mu held (or during Open before the log is shared).
func (l *Log) openSegmentLocked(index uint64) error {
	path := l.segmentPath(index)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var hdr [headerSize]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:], version)
	binary.LittleEndian.PutUint64(hdr[12:], index)
	binary.LittleEndian.PutUint32(hdr[20:], crc32.Checksum(hdr[:20], castagnoli))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("wal: %w", err)
	}
	// The segment must exist under its name before any record in it is
	// acknowledged; fsyncing the directory makes the creation durable.
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segments = append(l.segments, segment{index: index, bytes: headerSize})
	return nil
}

// rotateLocked seals the active segment (fsync + close) and opens a
// fresh one. Called with mu held; waits out any in-flight group-commit
// fsync so the file is never closed under it.
func (l *Log) rotateLocked() error {
	for l.syncing {
		l.syncCond.Wait()
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sealing segment: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: sealing segment: %w", err)
	}
	// Everything appended so far now sits in sealed, synced segments.
	l.syncedBatch = l.lastBatch
	l.syncs++
	l.lastSync = time.Now()
	next := l.segments[len(l.segments)-1].index + 1
	return l.openSegmentLocked(next)
}

// encodeRecord frames one batch: crc | len | kind | batch | payload-len
// | N-Triples payload.
func encodeRecord(kind Kind, batch uint64, ts []rdf.Triple) []byte {
	var payloadLen int
	for _, t := range ts {
		payloadLen += len(t.S.String()) + len(t.P.String()) + len(t.O.String()) + 5 // " " ×2 + " .\n"
	}
	body := make([]byte, 0, 1+2*binary.MaxVarintLen64+payloadLen)
	body = append(body, byte(kind))
	body = binary.AppendUvarint(body, batch)
	payload := make([]byte, 0, payloadLen)
	for _, t := range ts {
		payload = append(payload, t.String()...)
		payload = append(payload, '\n')
	}
	body = binary.AppendUvarint(body, uint64(len(payload)))
	body = append(body, payload...)

	frame := make([]byte, frameHeader+len(body))
	binary.LittleEndian.PutUint32(frame[4:], uint32(len(body)))
	copy(frame[frameHeader:], body)
	binary.LittleEndian.PutUint32(frame[0:], crc32.Checksum(frame[4:], castagnoli))
	return frame
}

// Append frames one write batch and appends it to the active segment
// with a single write syscall, returning the batch ID. The record
// survives a process crash as soon as Append returns; call Sync with
// the returned ID before acknowledging the batch to make it survive
// power loss under SyncAlways.
func (l *Log) Append(kind Kind, ts []rdf.Triple) (uint64, error) {
	if kind != Insert && kind != Delete {
		return 0, fmt.Errorf("wal: append: bad kind %d", kind)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: append on closed log")
	}
	batch := l.nextBatch
	frame := encodeRecord(kind, batch, ts)
	active := &l.segments[len(l.segments)-1]
	if active.bytes > headerSize && active.bytes+int64(len(frame)) > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
		active = &l.segments[len(l.segments)-1]
	}
	if _, err := l.f.Write(frame); err != nil {
		// A partial write is exactly the torn tail recovery truncates;
		// the batch is not acknowledged, so nothing is lost.
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	active.bytes += int64(len(frame))
	l.nextBatch++
	l.lastBatch = batch
	l.appended++
	return batch, nil
}

// Sync makes the batch durable per the configured policy. Under
// SyncAlways it returns only once an fsync covering the batch has
// completed, coalescing concurrent callers into one fsync (group
// commit); under SyncInterval and SyncNever it returns immediately.
func (l *Log) Sync(batch uint64) error {
	if l.opts.Sync != SyncAlways {
		return nil
	}
	return l.fsyncBatch(batch)
}

// fsyncBatch blocks until a completed fsync covers the given batch,
// issuing one itself if nobody else's does first.
func (l *Log) fsyncBatch(batch uint64) error {
	l.mu.Lock()
	for {
		if l.syncedBatch >= batch {
			l.mu.Unlock()
			return nil
		}
		if l.closed {
			l.mu.Unlock()
			return fmt.Errorf("wal: sync on closed log")
		}
		if !l.syncing {
			break
		}
		// A leader's fsync is in flight; wait for its verdict and
		// re-check — it may already cover this batch.
		l.syncCond.Wait()
	}
	// Become the leader: fsync the file tail with the lock released, so
	// concurrent appends keep flowing and later Sync callers queue up
	// behind this one fsync.
	l.syncing = true
	f, target := l.f, l.lastBatch
	l.mu.Unlock()
	err := f.Sync()
	l.mu.Lock()
	l.syncing = false
	if err == nil {
		if target > l.syncedBatch {
			l.syncedBatch = target
		}
		l.syncs++
		l.lastSync = time.Now()
	}
	l.syncCond.Broadcast()
	l.mu.Unlock()
	if err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// flushLoop is the SyncInterval background flusher.
func (l *Log) flushLoop() {
	defer close(l.flushDone)
	tick := time.NewTicker(l.opts.Interval)
	defer tick.Stop()
	for {
		select {
		case <-l.flushStop:
			return
		case <-tick.C:
		}
		l.mu.Lock()
		dirty := !l.closed && l.syncedBatch < l.lastBatch
		batch := l.lastBatch
		l.mu.Unlock()
		if dirty {
			l.fsyncBatch(batch) // best effort; next tick retries
		}
	}
}

// Cut seals the active segment and rotates to a fresh one, returning
// the new segment's index as a checkpoint mark: every batch appended
// before Cut lives in segments below the mark, every batch appended
// after lives at or above it. Call it at the instant a compaction
// claims the memtable (under the same lock that orders writes), then
// Retire(mark) once the folded base is durably persisted.
func (l *Log) Cut() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: cut on closed log")
	}
	if err := l.rotateLocked(); err != nil {
		return 0, err
	}
	return l.segments[len(l.segments)-1].index, nil
}

// Retire deletes every segment with index below mark — they hold only
// batches the newest persisted snapshot already folded in — and returns
// how many files were removed. Retiring with a stale mark is harmless;
// retiring before the snapshot covering the mark is durable is how you
// lose data, which is why the overlay calls it only after the atomic
// snapshot writer returns.
func (l *Log) Retire(mark uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: retire on closed log")
	}
	removed := 0
	var firstErr error
	kept := make([]segment, 0, len(l.segments))
	for _, seg := range l.segments {
		if seg.index < mark && firstErr == nil {
			if err := os.Remove(l.segmentPath(seg.index)); err != nil && !os.IsNotExist(err) {
				// Keep the segment listed: replaying a segment that
				// should have died is idempotent, a hole is not.
				firstErr = fmt.Errorf("wal: retire: %w", err)
				kept = append(kept, seg)
				continue
			}
			removed++
			continue
		}
		kept = append(kept, seg)
	}
	l.segments = kept
	if removed > 0 {
		syncDir(l.dir)
	}
	return removed, firstErr
}

// Stats returns a point-in-time picture of the log.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := Stats{
		Segments:       len(l.segments),
		Appended:       l.appended,
		Syncs:          l.syncs,
		LastSync:       l.lastSync,
		LastBatch:      l.lastBatch,
		Replayed:       l.replayed,
		TruncatedBytes: l.truncatedBytes,
	}
	for _, seg := range l.segments {
		s.Bytes += seg.bytes
	}
	return s
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Close fsyncs and closes the active segment and stops the background
// flusher. The log must not be used afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	for l.syncing {
		l.syncCond.Wait()
	}
	l.closed = true
	f := l.f
	l.f = nil
	l.syncCond.Broadcast()
	l.mu.Unlock()
	if l.flushStop != nil {
		close(l.flushStop)
		<-l.flushDone
	}
	var first error
	if err := f.Sync(); err != nil {
		first = err
	}
	if err := f.Close(); err != nil && first == nil {
		first = err
	}
	if first != nil {
		return fmt.Errorf("wal: close: %w", first)
	}
	return nil
}

// syncDir fsyncs a directory so renames, creations and removals in it
// survive power loss. Best effort: platforms and filesystems that
// cannot fsync a directory (Windows, some network mounts) degrade to
// the metadata durability the OS provides, never to an error — the
// data itself is always synced through the file handle.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}
