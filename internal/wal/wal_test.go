package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sparqluo/internal/rdf"
)

func triple(i int) rdf.Triple {
	return rdf.Triple{
		S: rdf.NewIRI(fmt.Sprintf("http://wal/s%d", i)),
		P: rdf.NewIRI("http://wal/p"),
		O: rdf.NewLiteral(fmt.Sprintf("o%d\nwith \"escapes\"", i)),
	}
}

func batch(from, n int) []rdf.Triple {
	ts := make([]rdf.Triple, n)
	for i := range ts {
		ts[i] = triple(from + i)
	}
	return ts
}

func mustOpen(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func appendSync(t *testing.T, l *Log, kind Kind, ts []rdf.Triple) uint64 {
	t.Helper()
	seq, err := l.Append(kind, ts)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(seq); err != nil {
		t.Fatal(err)
	}
	return seq
}

func collect(t *testing.T, l *Log) []Record {
	t.Helper()
	var recs []Record
	if err := l.Replay(func(r Record) error { recs = append(recs, r); return nil }); err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestRoundTrip proves every appended batch comes back byte-identical:
// kinds, batch IDs, triple order, and literal escapes all survive the
// frame/payload encoding and a reopen.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	want := [][]rdf.Triple{batch(0, 3), batch(3, 1), batch(4, 5)}
	kinds := []Kind{Insert, Delete, Insert}
	for i, ts := range want {
		seq := appendSync(t, l, kinds[i], ts)
		if seq != uint64(i+1) {
			t.Fatalf("batch %d got seq %d", i, seq)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l = mustOpen(t, dir, Options{})
	defer l.Close()
	recs := collect(t, l)
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.Kind != kinds[i] || r.Batch != uint64(i+1) {
			t.Fatalf("record %d: kind=%v batch=%d", i, r.Kind, r.Batch)
		}
		if len(r.Triples) != len(want[i]) {
			t.Fatalf("record %d: %d triples, want %d", i, len(r.Triples), len(want[i]))
		}
		for j, tr := range r.Triples {
			if tr != want[i][j] {
				t.Fatalf("record %d triple %d: %v != %v", i, j, tr, want[i][j])
			}
		}
	}
	// Batch IDs resume past everything replayed.
	if seq, err := l.Append(Insert, batch(100, 1)); err != nil || seq != uint64(len(want)+1) {
		t.Fatalf("resumed seq = %d, err %v; want %d", seq, err, len(want)+1)
	}
}

// TestSegmentRotation drives the log over its segment size so appends
// span several files, and checks replay order and stats.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 512, Sync: SyncNever})
	const n = 40
	for i := 0; i < n; i++ {
		appendSync(t, l, Insert, batch(i, 1))
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l = mustOpen(t, dir, Options{})
	defer l.Close()
	recs := collect(t, l)
	if len(recs) != n {
		t.Fatalf("replayed %d, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.Batch != uint64(i+1) {
			t.Fatalf("record %d out of order: batch %d", i, r.Batch)
		}
	}
}

// TestCutRetire checks the checkpoint contract: batches appended before
// Cut live below the mark and vanish on Retire; batches appended after
// survive.
func TestCutRetire(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	defer l.Close()
	appendSync(t, l, Insert, batch(0, 2))
	appendSync(t, l, Delete, batch(0, 1))
	mark, err := l.Cut()
	if err != nil {
		t.Fatal(err)
	}
	appendSync(t, l, Insert, batch(10, 2))
	removed, err := l.Retire(mark)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("retired %d segments, want 1", removed)
	}
	recs := collect(t, l)
	if len(recs) != 1 || recs[0].Batch != 3 || recs[0].Kind != Insert {
		t.Fatalf("post-retire replay = %+v", recs)
	}
	if st := l.Stats(); st.Segments != 1 {
		t.Fatalf("segments after retire = %d", st.Segments)
	}
	// A stale mark is harmless.
	if removed, err := l.Retire(mark); err != nil || removed != 0 {
		t.Fatalf("stale retire: %d, %v", removed, err)
	}
}

// TestTornTailTruncated simulates the classic crash: a record is half
// written when the process dies. Reopen must silently truncate it,
// keep every earlier record, and leave the log appendable.
func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []string{"midframe", "midheader"} {
		t.Run(cut, func(t *testing.T) {
			dir := t.TempDir()
			l := mustOpen(t, dir, Options{})
			appendSync(t, l, Insert, batch(0, 2))
			appendSync(t, l, Delete, batch(0, 1))
			appendSync(t, l, Insert, batch(10, 1))
			l.Close()

			segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
			if err != nil || len(segs) != 1 {
				t.Fatalf("segments: %v, %v", segs, err)
			}
			data, err := os.ReadFile(segs[0])
			if err != nil {
				t.Fatal(err)
			}
			// Tear the final record: drop its last byte (midframe) or
			// leave only 3 bytes of its frame header (midheader). The
			// frame encoding is deterministic, so the third record's
			// start offset is len(file) - len(its frame).
			start3 := len(data) - len(encodeRecord(Insert, 3, batch(10, 1)))
			torn := len(data) - 1
			if cut == "midheader" {
				torn = start3 + 3
			}
			if err := os.WriteFile(segs[0], data[:torn], 0o644); err != nil {
				t.Fatal(err)
			}

			l = mustOpen(t, dir, Options{})
			defer l.Close()
			if st := l.Stats(); st.TruncatedBytes == 0 {
				t.Fatal("no torn bytes reported")
			}
			recs := collect(t, l)
			if len(recs) != 2 {
				t.Fatalf("%d records survived, want 2", len(recs))
			}
			// The log stays writable after truncation.
			appendSync(t, l, Insert, batch(20, 1))
			if got := len(collect(t, l)); got != 3 {
				t.Fatalf("after post-truncate append: %d records", got)
			}
		})
	}
}

// TestTornHeaderSegmentRemoved covers a crash during rotation: the new
// segment's header never fully lands. The file is discarded and the
// log reopens cleanly on the earlier segments.
func TestTornHeaderSegmentRemoved(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	appendSync(t, l, Insert, batch(0, 2))
	mark, err := l.Cut()
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Shear the fresh post-cut segment down to half a header.
	path := filepath.Join(dir, fmt.Sprintf("%016x.wal", mark))
	if err := os.WriteFile(path, []byte("SPQLW"), 0o644); err != nil {
		t.Fatal(err)
	}
	l = mustOpen(t, dir, Options{})
	defer l.Close()
	recs := collect(t, l)
	if len(recs) != 1 {
		t.Fatalf("%d records, want the pre-cut one", len(recs))
	}
	appendSync(t, l, Insert, batch(5, 1))
	if got := len(collect(t, l)); got != 2 {
		t.Fatalf("append after recovery: %d records", got)
	}
}

// TestEarlierCorruptionIsTypedError flips one byte in the middle of a
// sealed (non-final) segment. That can never be a torn write, so Open
// must refuse with a *CorruptError — and must not panic.
func TestEarlierCorruptionIsTypedError(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	appendSync(t, l, Insert, batch(0, 4))
	if _, err := l.Cut(); err != nil {
		t.Fatal(err)
	}
	appendSync(t, l, Insert, batch(10, 1))
	l.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	if len(segs) != 2 {
		t.Fatalf("want 2 segments, got %v", segs)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+frameHeader+5] ^= 0x40 // bit-flip inside the first record's body
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Open(dir, Options{})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Open = %v, want *CorruptError", err)
	}
}

// TestCorruptionInFinalSegmentBeforeTail flips a byte in the *first* of
// two records in the final segment. Intact data follows the damage, so
// this cannot be a torn append — truncating here would silently drop
// the acknowledged second record. Open must refuse with a
// *CorruptError; only damage that runs to end of file is a tear.
func TestCorruptionInFinalSegmentBeforeTail(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	appendSync(t, l, Insert, batch(0, 1))
	appendSync(t, l, Insert, batch(1, 1))
	l.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+frameHeader+2] ^= 0x01
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, Options{})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Open = %v, want *CorruptError (valid record follows the damage)", err)
	}

	// Flip the *last* record instead: the damage reaches end of file,
	// which is exactly the torn-append shape, so it truncates.
	data[headerSize+frameHeader+2] ^= 0x01 // restore record 1
	data[len(data)-2] ^= 0x01              // damage record 2's tail
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	l = mustOpen(t, dir, Options{})
	defer l.Close()
	if st := l.Stats(); st.TruncatedBytes == 0 {
		t.Fatal("expected truncation report for damage at end of file")
	}
	if recs := collect(t, l); len(recs) != 1 {
		t.Fatalf("%d records survived, want the intact first one", len(recs))
	}
}

// TestGroupCommit hammers Append+Sync from many goroutines under
// SyncAlways and checks (a) every batch ID is unique and every record
// survives, (b) the fsync count stays at or below the append count —
// the group-commit invariant that makes sync=always affordable.
func TestGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{Sync: SyncAlways})
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				seq, err := l.Append(Insert, batch(w*1000+i, 2))
				if err == nil {
					err = l.Sync(seq)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appended != writers*perWriter {
		t.Fatalf("appended %d, want %d", st.Appended, writers*perWriter)
	}
	if st.Syncs > st.Appended {
		t.Fatalf("more fsyncs (%d) than appends (%d)", st.Syncs, st.Appended)
	}
	l.Close()

	l = mustOpen(t, dir, Options{})
	defer l.Close()
	recs := collect(t, l)
	if len(recs) != writers*perWriter {
		t.Fatalf("replayed %d, want %d", len(recs), writers*perWriter)
	}
	seen := make(map[uint64]bool, len(recs))
	for _, r := range recs {
		if seen[r.Batch] {
			t.Fatalf("duplicate batch %d", r.Batch)
		}
		seen[r.Batch] = true
	}
}

// TestSyncIntervalFlushes checks that the background flusher advances
// the synced frontier without the writer ever calling for an fsync.
func TestSyncIntervalFlushes(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{Sync: SyncInterval, Interval: 5 * time.Millisecond})
	defer l.Close()
	seq, err := l.Append(Insert, batch(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(seq); err != nil { // immediate under interval policy
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		l.mu.Lock()
		synced := l.syncedBatch >= seq
		l.mu.Unlock()
		if synced {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background flusher never synced the batch")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEmptyAndForeignFiles: an empty directory opens fresh, and files
// that are not WAL segments are ignored.
func TestEmptyAndForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	l := mustOpen(t, dir, Options{})
	defer l.Close()
	if recs := collect(t, l); len(recs) != 0 {
		t.Fatalf("fresh dir replayed %d records", len(recs))
	}
	if st := l.Stats(); st.Segments != 1 {
		t.Fatalf("segments = %d", st.Segments)
	}
}
