package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sparqluo/internal/store"
)

// mkBag builds a bag from rows given as slices; 0 means unbound.
func mkBag(width int, rows ...[]int) *Bag {
	b := NewBag(width)
	// Compute cert/maybe from the data.
	for i := 0; i < width; i++ {
		all, any := true, false
		for _, r := range rows {
			if r[i] != 0 {
				any = true
			} else {
				all = false
			}
		}
		if any {
			b.Maybe.Set(i)
		}
		if all && len(rows) > 0 {
			b.Cert.Set(i)
		}
	}
	for _, r := range rows {
		row := make(Row, width)
		for i, v := range r {
			row[i] = store.ID(v)
		}
		b.Append(row)
	}
	return b
}

func rowsOf(b *Bag) [][]int {
	out := make([][]int, b.Len())
	for i, r := range b.All() {
		out[i] = make([]int, len(r))
		for j, v := range r {
			out[i][j] = int(v)
		}
	}
	return out
}

func TestCompatible(t *testing.T) {
	tests := []struct {
		a, b []int
		want bool
	}{
		{[]int{1, 2}, []int{1, 2}, true},
		{[]int{1, 0}, []int{1, 2}, true},  // unbound is compatible
		{[]int{0, 0}, []int{5, 7}, true},  // disjoint domains
		{[]int{1, 2}, []int{1, 3}, false}, // conflict on var 1
		{[]int{3, 2}, []int{1, 2}, false},
	}
	for _, tc := range tests {
		a := mkBag(2, tc.a).Row(0)
		b := mkBag(2, tc.b).Row(0)
		if got := Compatible(a, b, []int{0, 1}); got != tc.want {
			t.Errorf("Compatible(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestJoinBasic(t *testing.T) {
	a := mkBag(3, []int{1, 2, 0}, []int{1, 3, 0})
	b := mkBag(3, []int{1, 0, 9}, []int{2, 0, 8})
	got := Join(a, b)
	want := mkBag(3, []int{1, 2, 9}, []int{1, 3, 9})
	if !MultisetEqual(got, want) {
		t.Errorf("join = %v, want %v", rowsOf(got), rowsOf(want))
	}
}

func TestJoinPreservesDuplicates(t *testing.T) {
	a := mkBag(2, []int{1, 0}, []int{1, 0}) // duplicate mapping
	b := mkBag(2, []int{1, 5})
	got := Join(a, b)
	if got.Len() != 2 {
		t.Errorf("bag join should preserve duplicates: got %d rows", got.Len())
	}
}

func TestJoinNoKeyFallsBackToNestedLoop(t *testing.T) {
	// a binds var0, b binds var1: no common certain variable.
	a := mkBag(2, []int{1, 0}, []int{2, 0})
	b := mkBag(2, []int{0, 7})
	got := Join(a, b)
	want := mkBag(2, []int{1, 7}, []int{2, 7})
	if !MultisetEqual(got, want) {
		t.Errorf("cartesian join = %v, want %v", rowsOf(got), rowsOf(want))
	}
}

func TestUnionConcatenates(t *testing.T) {
	a := mkBag(2, []int{1, 2})
	b := mkBag(2, []int{1, 2}, []int{3, 0})
	got := Union(a, b)
	if got.Len() != 3 {
		t.Errorf("union len = %d, want 3", got.Len())
	}
	// Cert must be the intersection: var1 not bound in all rows of b.
	if got.Cert.Has(1) {
		t.Error("union cert should not include var 1")
	}
	if !got.Maybe.Has(1) {
		t.Error("union maybe should include var 1")
	}
}

func TestLeftJoinKeepsUnmatched(t *testing.T) {
	a := mkBag(2, []int{1, 0}, []int{2, 0})
	b := mkBag(2, []int{1, 5})
	got := LeftJoin(a, b)
	want := mkBag(2, []int{1, 5}, []int{2, 0})
	if !MultisetEqual(got, want) {
		t.Errorf("leftjoin = %v, want %v", rowsOf(got), rowsOf(want))
	}
}

func TestLeftJoinMultiplicity(t *testing.T) {
	// One left row, two compatible right rows → two output rows.
	a := mkBag(2, []int{1, 0})
	b := mkBag(2, []int{1, 5}, []int{1, 6})
	got := LeftJoin(a, b)
	if got.Len() != 2 {
		t.Errorf("leftjoin multiplicity = %d, want 2", got.Len())
	}
}

// TestLeftJoinNotCommutableWithJoin pins the counterexample that makes
// moving a BGP across an OPTIONAL boundary unsafe (see
// Transformer.mergeAllowed): (A ⟕ B) ⋈ C ≠ (A ⋈ C) ⟕ B.
func TestLeftJoinNotCommutableWithJoin(t *testing.T) {
	A := mkBag(1, []int{0})        // single empty mapping; width 1 (var v)
	B := mkBag(1, []int{1})        // v=1
	C := mkBag(1, []int{2})        // v=2
	lhs := Join(LeftJoin(A, B), C) // (A ⟕ B) ⋈ C = {v=1} ⋈ {v=2} = ∅
	rhs := LeftJoin(Join(A, C), B) // (A ⋈ C) ⟕ B = {v=2} ⟕ {v=1} = {v=2}
	if lhs.Len() == rhs.Len() {
		t.Fatalf("expected the two orderings to differ: lhs=%d rhs=%d", lhs.Len(), rhs.Len())
	}
}

func TestDiff(t *testing.T) {
	a := mkBag(2, []int{1, 0}, []int{2, 0})
	b := mkBag(2, []int{1, 5})
	got := Diff(a, b)
	want := mkBag(2, []int{2, 0})
	if !MultisetEqual(got, want) {
		t.Errorf("diff = %v, want %v", rowsOf(got), rowsOf(want))
	}
}

func TestSemiJoin(t *testing.T) {
	a := mkBag(2, []int{1, 0}, []int{2, 0}, []int{1, 0})
	b := mkBag(2, []int{1, 5})
	got := SemiJoin(a, b)
	// Both copies of v0=1 survive; v0=2 does not.
	if got.Len() != 2 {
		t.Errorf("semijoin len = %d, want 2", got.Len())
	}
}

func TestProjectClearsDropped(t *testing.T) {
	b := mkBag(3, []int{1, 2, 3})
	got := Project(b, []int{0, 2})
	if got.Row(0)[1] != store.None {
		t.Error("projection should clear dropped variable")
	}
	if got.Row(0)[0] != 1 || got.Row(0)[2] != 3 {
		t.Error("projection should keep selected variables")
	}
}

func TestDistinct(t *testing.T) {
	b := mkBag(2, []int{1, 2}, []int{1, 2}, []int{1, 3})
	if got := Distinct(b).Len(); got != 2 {
		t.Errorf("distinct = %d rows, want 2", got)
	}
}

func TestUnitIsJoinIdentity(t *testing.T) {
	b := mkBag(2, []int{1, 2}, []int{3, 4})
	u := Unit(2)
	if got := Join(u, b); !MultisetEqual(got, b) {
		t.Errorf("Unit ⋈ b = %v, want %v", rowsOf(got), rowsOf(b))
	}
	if got := Join(b, u); !MultisetEqual(got, b) {
		t.Errorf("b ⋈ Unit = %v, want %v", rowsOf(got), rowsOf(b))
	}
}

func TestBindingsOfCapped(t *testing.T) {
	b := mkBag(1, []int{1}, []int{2}, []int{3})
	if got := BindingsOfCapped(b, 0, 2); got != nil {
		t.Errorf("capped at 2 with 3 distinct: want nil, got %v", got)
	}
	if got := BindingsOfCapped(b, 0, 3); len(got) != 3 {
		t.Errorf("capped at 3 with 3 distinct: want 3, got %v", got)
	}
}

// ---- reference (naive) implementations for property testing -----------

func naiveCompatible(a, b Row) bool {
	for i := range a {
		if a[i] != store.None && b[i] != store.None && a[i] != b[i] {
			return false
		}
	}
	return true
}

func naiveJoin(a, b *Bag) *Bag {
	out := NewBag(a.Width)
	out.Cert = a.Cert.Or(b.Cert)
	out.Maybe = a.Maybe.Or(b.Maybe)
	for _, ra := range a.All() {
		for _, rb := range b.All() {
			if naiveCompatible(ra, rb) {
				out.Append(MergeRows(ra, rb))
			}
		}
	}
	return out
}

func naiveLeftJoin(a, b *Bag) *Bag {
	out := NewBag(a.Width)
	out.Cert = a.Cert.Clone()
	out.Maybe = a.Maybe.Or(b.Maybe)
	for _, ra := range a.All() {
		matched := false
		for _, rb := range b.All() {
			if naiveCompatible(ra, rb) {
				matched = true
				out.Append(MergeRows(ra, rb))
			}
		}
		if !matched {
			out.Append(ra)
		}
	}
	return out
}

// randBag generates a random bag with consistent Cert/Maybe metadata.
func randBag(rng *rand.Rand, width int) *Bag {
	n := rng.Intn(12)
	// Pick a random set of "certain" variables bound in every row.
	certMask := rng.Intn(1 << width)
	b := NewBag(width)
	for i := 0; i < n; i++ {
		row := make(Row, width)
		for v := 0; v < width; v++ {
			if certMask&(1<<v) != 0 || rng.Intn(3) == 0 {
				row[v] = store.ID(1 + rng.Intn(4))
			}
		}
		b.Append(row)
	}
	for v := 0; v < width; v++ {
		if certMask&(1<<v) != 0 && n > 0 {
			b.Cert.Set(v)
		}
		for _, r := range b.All() {
			if r[v] != store.None {
				b.Maybe.Set(v)
			}
		}
	}
	return b
}

// TestQuickJoinMatchesNaive cross-checks the hash join against the naive
// nested-loop definition on random bags (testing/quick drives the seeds).
func TestQuickJoinMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const width = 4
		a, b := randBag(rng, width), randBag(rng, width)
		return MultisetEqual(Join(a, b), naiveJoin(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickLeftJoinMatchesNaive cross-checks the left outer join.
func TestQuickLeftJoinMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const width = 4
		a, b := randBag(rng, width), randBag(rng, width)
		return MultisetEqual(LeftJoin(a, b), naiveLeftJoin(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickLeftJoinDefinition checks Ω1 ⟕ Ω2 = (Ω1 ⋈ Ω2) ∪bag (Ω1 \ Ω2),
// the definition of Section 3.
func TestQuickLeftJoinDefinition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const width = 4
		a, b := randBag(rng, width), randBag(rng, width)
		lhs := LeftJoin(a, b)
		rhs := Union(Join(a, b), Diff(a, b))
		return MultisetEqual(lhs, rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickUnionCommutesUnderMultiset checks ∪bag commutativity as
// multisets.
func TestQuickUnionCommutesUnderMultiset(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randBag(rng, 3), randBag(rng, 3)
		return MultisetEqual(Union(a, b), Union(b, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickJoinCommutes checks ⋈ commutativity as multisets.
func TestQuickJoinCommutes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randBag(rng, 4), randBag(rng, 4)
		return MultisetEqual(Join(a, b), Join(b, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickSemiJoinIsFilter checks that SemiJoin returns exactly the rows
// with at least one compatible partner.
func TestQuickSemiJoinIsFilter(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randBag(rng, 4), randBag(rng, 4)
		got := SemiJoin(a, b)
		want := NewBag(a.Width)
		for _, ra := range a.All() {
			for _, rb := range b.All() {
				if naiveCompatible(ra, rb) {
					want.Append(ra)
					break
				}
			}
		}
		return MultisetEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickLeftJoinCardinalityLowerBound: |Ω1 ⟕ Ω2| ≥ |Ω1| — OPTIONAL
// never loses left rows.
func TestQuickLeftJoinCardinalityLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randBag(rng, 4), randBag(rng, 4)
		return LeftJoin(a, b).Len() >= a.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBits(t *testing.T) {
	b := NewBits(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	for _, i := range []int{0, 64, 129} {
		if !b.Has(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	if b.Has(1) || b.Has(63) || b.Has(128) {
		t.Error("unexpected bits set")
	}
	c := NewBits(130)
	c.Set(64)
	and := b.And(c)
	if !and.Has(64) || and.Has(0) || and.Has(129) {
		t.Errorf("And: got %v", and.Indices(130))
	}
	or := b.Or(c)
	if got := or.Indices(130); len(got) != 3 {
		t.Errorf("Or: got %v", got)
	}
}
