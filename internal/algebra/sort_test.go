package algebra

import (
	"math/rand"
	"sort"
	"testing"

	"sparqluo/internal/store"
)

func toID(v int) store.ID { return store.ID(v) }

// refSort is an independent reference for SortByKeys: materialize the
// rows, stable-sort with compareKeys, rebuild.
func refSort(b *Bag, keys []SortKey) [][]int {
	rows := rowsOf(b)
	sort.SliceStable(rows, func(x, y int) bool {
		rx, ry := make(Row, len(rows[x])), make(Row, len(rows[y]))
		for i := range rows[x] {
			rx[i], ry[i] = toID(rows[x][i]), toID(rows[y][i])
		}
		return compareKeys(rx, ry, keys) < 0
	})
	return rows
}

func eqRows(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestSortByKeys(t *testing.T) {
	b := mkBag(3,
		[]int{3, 1, 9},
		[]int{1, 2, 8},
		[]int{3, 0, 7}, // unbound (0) sorts first ascending
		[]int{2, 2, 6},
		[]int{1, 1, 5},
	)
	cases := []struct {
		name string
		keys []SortKey
	}{
		{"asc col0", []SortKey{{Col: 0}}},
		{"desc col0", []SortKey{{Col: 0, Desc: true}}},
		{"col1 then col0", []SortKey{{Col: 1}, {Col: 0}}},
		{"asc col0 desc col2", []SortKey{{Col: 0}, {Col: 2, Desc: true}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := SortByKeys(b, tc.keys)
			if !eqRows(rowsOf(got), refSort(b, tc.keys)) {
				t.Errorf("SortByKeys = %v, want %v", rowsOf(got), refSort(b, tc.keys))
			}
			if got.Len() != b.Len() {
				t.Errorf("row count changed: %d -> %d", b.Len(), got.Len())
			}
		})
	}
}

func TestSortByKeysStable(t *testing.T) {
	// Many ties on the key column: relative order of tied rows (visible
	// in column 1) must be the input order.
	b := mkBag(2,
		[]int{1, 4}, []int{2, 1}, []int{1, 3}, []int{2, 2}, []int{1, 5},
	)
	got := rowsOf(SortByKeys(b, []SortKey{{Col: 0}}))
	want := [][]int{{1, 4}, {1, 3}, {1, 5}, {2, 1}, {2, 2}}
	if !eqRows(got, want) {
		t.Errorf("stable sort = %v, want %v", got, want)
	}
}

func TestTopKMatchesSortPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(40)
		rows := make([][]int, n)
		for i := range rows {
			// Narrow domains force many ties so the stable tiebreak is
			// actually exercised.
			rows[i] = []int{rng.Intn(4), rng.Intn(4), rng.Intn(4)}
		}
		b := mkBag(3, rows...)
		keys := []SortKey{{Col: rng.Intn(3), Desc: rng.Intn(2) == 0}, {Col: rng.Intn(3)}}
		full := SortByKeys(b, keys)
		for _, k := range []int{0, 1, n / 2, n, n + 3} {
			got := TopK(b, keys, k)
			lim := min(k, n)
			if !eqRows(rowsOf(got), rowsOf(full.View(0, lim))) {
				t.Fatalf("trial %d k=%d: TopK = %v, want sort prefix %v",
					trial, k, rowsOf(got), rowsOf(full.View(0, lim)))
			}
		}
	}
}

func TestTopKOrderClaim(t *testing.T) {
	b := mkBag(2, []int{2, 1}, []int{1, 2}, []int{3, 3})
	if got := TopK(b, []SortKey{{Col: 0}}, 2); !OrderCoversKeys(got.Order, []SortKey{{Col: 0}}) {
		t.Errorf("TopK Order = %v does not cover its own keys", got.Order)
	}
	// A descending key cannot claim ascending physical order.
	if got := TopK(b, []SortKey{{Col: 0, Desc: true}}, 2); len(got.Order) != 0 {
		t.Errorf("descending TopK claims Order %v", got.Order)
	}
}

func TestOrderCoversKeys(t *testing.T) {
	cases := []struct {
		ord  []int
		keys []SortKey
		want bool
	}{
		{[]int{0, 1}, []SortKey{{Col: 0}}, true},
		{[]int{0, 1}, []SortKey{{Col: 0}, {Col: 1}}, true},
		{[]int{0, 1}, []SortKey{{Col: 1}}, false},          // wrong leading column
		{[]int{0}, []SortKey{{Col: 0}, {Col: 1}}, false},   // order too short
		{[]int{0}, []SortKey{{Col: 0, Desc: true}}, false}, // Order speaks ascending only
		{nil, nil, true},
	}
	for i, tc := range cases {
		if got := OrderCoversKeys(tc.ord, tc.keys); got != tc.want {
			t.Errorf("case %d: OrderCoversKeys(%v, %v) = %v, want %v", i, tc.ord, tc.keys, got, tc.want)
		}
	}
}
