// Package algebra implements the SPARQL solution-mapping algebra of
// Definition 7 under bag (multiset) semantics: compatibility of mappings,
// join (⋈), bag union (∪bag), diff (\) and left outer join (⟕).
//
// A mapping µ : V ⇀ (I ∪ L) is represented as a fixed-width row of
// dictionary IDs, one slot per query variable, with store.None marking
// variables outside dom(µ). A bag Ω is a Bag: a flat columnar arena of
// rows (see bag.go) plus two variable bitsets that operators maintain to
// pick efficient join keys:
//
//   - Cert: variables bound in every row of the bag,
//   - Maybe: variables bound in at least one row.
//
// Compatibility (µ1 ∼ µ2) only needs to be verified on Maybe∩Maybe
// positions; join keys are drawn from Cert∩Cert. Bags additionally carry
// a physical-order property (Order) that the join operators exploit to
// run streaming sort-merge joins instead of hash joins.
package algebra

import "sparqluo/internal/store"

// VarSet assigns dense indices to the variables of one query.
type VarSet struct {
	names []string
	index map[string]int
}

// NewVarSet returns an empty variable table.
func NewVarSet() *VarSet {
	return &VarSet{index: make(map[string]int)}
}

// Intern returns the index of name, assigning the next free index if new.
func (v *VarSet) Intern(name string) int {
	if i, ok := v.index[name]; ok {
		return i
	}
	i := len(v.names)
	v.names = append(v.names, name)
	v.index[name] = i
	return i
}

// Lookup returns the index of name and whether it is known.
func (v *VarSet) Lookup(name string) (int, bool) {
	i, ok := v.index[name]
	return i, ok
}

// Name returns the variable name at index i.
func (v *VarSet) Name(i int) string { return v.names[i] }

// Names returns all variable names in index order. The caller must not
// modify the returned slice.
func (v *VarSet) Names() []string { return v.names }

// Len returns the number of variables.
func (v *VarSet) Len() int { return len(v.names) }

// Bits is a variable-index bitset.
type Bits []uint64

// NewBits returns a bitset able to hold n variable indices.
func NewBits(n int) Bits { return make(Bits, (n+63)/64) }

// Set marks index i.
func (b Bits) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// Has reports whether index i is marked.
func (b Bits) Has(i int) bool {
	w := i / 64
	return w < len(b) && b[w]&(1<<(uint(i)%64)) != 0
}

// Clone returns a copy of b.
func (b Bits) Clone() Bits {
	c := make(Bits, len(b))
	copy(c, b)
	return c
}

// And returns b ∩ o (length of the longer operand).
func (b Bits) And(o Bits) Bits {
	n := len(b)
	if len(o) > n {
		n = len(o)
	}
	r := make(Bits, n)
	for i := range r {
		var x, y uint64
		if i < len(b) {
			x = b[i]
		}
		if i < len(o) {
			y = o[i]
		}
		r[i] = x & y
	}
	return r
}

// Or returns b ∪ o.
func (b Bits) Or(o Bits) Bits {
	n := len(b)
	if len(o) > n {
		n = len(o)
	}
	r := make(Bits, n)
	for i := range r {
		var x, y uint64
		if i < len(b) {
			x = b[i]
		}
		if i < len(o) {
			y = o[i]
		}
		r[i] = x | y
	}
	return r
}

// Indices returns the marked indices in ascending order, capped at width.
func (b Bits) Indices(width int) []int {
	var out []int
	for i := 0; i < width; i++ {
		if b.Has(i) {
			out = append(out, i)
		}
	}
	return out
}

// Row is one solution mapping: Row[i] is the binding of variable i, or
// store.None if variable i is outside dom(µ). Rows handed out by a Bag
// are views into its arena, valid until the bag is released.
type Row []store.ID

// Compatible reports µ1 ∼ µ2 restricted to the candidate positions.
func Compatible(a, b Row, positions []int) bool {
	for _, i := range positions {
		x, y := a[i], b[i]
		if x != store.None && y != store.None && x != y {
			return false
		}
	}
	return true
}

// MergeRows returns µ1 ∪ µ2 (assuming compatibility) as a freshly
// allocated row. Hot paths use Bag.AppendMerged instead, which writes
// the merge directly into the bag's arena.
func MergeRows(a, b Row) Row {
	out := make(Row, len(a))
	copy(out, a)
	for i, y := range b {
		if y != store.None {
			out[i] = y
		}
	}
	return out
}
