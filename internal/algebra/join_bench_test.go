package algebra_test

import (
	"fmt"
	"testing"

	"sparqluo/internal/algebra"
	"sparqluo/internal/benchbags"
	"sparqluo/internal/store"
)

// BenchmarkJoin contrasts the three physical joins on order-compatible
// inputs: the streaming merge join the order-aware dispatch picks when
// both sides are key-sorted, the hash join it falls back to when the
// sort is not known, and the sort+merge path when only one side carries
// its order. allocs/op is the headline: the merge path touches only the
// output arena, while the hash path also builds the key index. The
// operands come from benchbags so cmd/benchjson measures the same
// workload.
func BenchmarkJoin(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		for _, fanout := range []int{1, 4} {
			tag := fmt.Sprintf("n=%d/fanout=%d", n, fanout)
			b.Run("merge/"+tag, func(b *testing.B) {
				x, y := benchbags.JoinPair(n, fanout, true)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					algebra.JoinCancel(x, y, nil)
				}
			})
			b.Run("hash/"+tag, func(b *testing.B) {
				x, y := benchbags.JoinPair(n, fanout, false)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					algebra.JoinCancel(x, y, nil)
				}
			})
			b.Run("sortmerge/"+tag, func(b *testing.B) {
				x, y := benchbags.JoinPair(n, fanout, true)
				y.Order = nil // one side unsorted: dispatch sorts it to merge
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					algebra.JoinCancel(x, y, nil)
				}
			})
		}
	}
}

// BenchmarkLeftJoin mirrors BenchmarkJoin for the OPTIONAL operator.
func BenchmarkLeftJoin(b *testing.B) {
	const n, fanout = 10000, 2
	b.Run("merge", func(b *testing.B) {
		x, y := benchbags.JoinPair(n, fanout, true)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			algebra.LeftJoinCancel(x, y, nil)
		}
	})
	b.Run("hash", func(b *testing.B) {
		x, y := benchbags.JoinPair(n, fanout, false)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			algebra.LeftJoinCancel(x, y, nil)
		}
	})
}

// BenchmarkDistinct measures the arena-hashed dedup (no per-row string
// keys) on a bag with 50% duplicates.
func BenchmarkDistinct(b *testing.B) {
	bag := algebra.NewBag(3)
	bag.Cert.Set(0)
	bag.Maybe.Set(0)
	row := make(algebra.Row, 3)
	for i := 0; i < 10000; i++ {
		row[0] = store.ID(1 + i/2)
		bag.Append(row)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algebra.Distinct(bag)
	}
}
