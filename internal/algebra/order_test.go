package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sparqluo/internal/store"
)

// randSkewBag generates a random bag exercising the join edge cases the
// merge dispatch must survive: duplicate key values (skew — domain can
// be as small as {1,2}), store.None holes on non-certain positions, and
// empty bags. With probability ~1/2 the bag is re-sorted by a random
// position sequence and carries the matching Order claim, so the
// order-aware dispatch takes every physical path across seeds.
func randSkewBag(rng *rand.Rand, width int) *Bag {
	n := rng.Intn(10)
	if rng.Intn(8) == 0 {
		n = 0
	}
	domain := 1 + rng.Intn(4) // small domains force heavy key skew
	certMask := rng.Intn(1 << width)
	b := NewBag(width)
	row := make(Row, width)
	for i := 0; i < n; i++ {
		for v := 0; v < width; v++ {
			row[v] = store.None
			if certMask&(1<<v) != 0 || rng.Intn(3) == 0 {
				row[v] = store.ID(1 + rng.Intn(domain))
			}
		}
		b.Append(row)
	}
	for v := 0; v < width; v++ {
		if certMask&(1<<v) != 0 && n > 0 {
			b.Cert.Set(v)
		}
		for _, r := range b.All() {
			if r[v] != store.None {
				b.Maybe.Set(v)
			}
		}
	}
	if rng.Intn(2) == 0 {
		var seq []int
		for _, v := range rng.Perm(width)[:rng.Intn(width+1)] {
			seq = append(seq, v)
		}
		b = SortBy(b, seq)
	}
	return b
}

// forcedHashJoin runs the hash-join physical operator regardless of
// operand orders, with an injectable key hash.
func forcedHashJoin(a, b *Bag, hash keyHashFn) *Bag {
	out := NewBag(a.Width)
	out.Cert = a.Cert.Or(b.Cert)
	out.Maybe = a.Maybe.Or(b.Maybe)
	keys := a.Cert.And(b.Cert).Indices(a.Width)
	verify := verifyPositions(a, b, keys)
	hashJoin(out, a, b, keys, verify, never, hash, &joinLimit{max: -1})
	return out
}

// forcedMergeJoin sorts both operands on the certain keys and runs the
// merge physical operator.
func forcedMergeJoin(a, b *Bag) *Bag {
	out := NewBag(a.Width)
	out.Cert = a.Cert.Or(b.Cert)
	out.Maybe = a.Maybe.Or(b.Maybe)
	keys := a.Cert.And(b.Cert).Indices(a.Width)
	verify := verifyPositions(a, b, keys)
	mergeJoin(out, SortBy(a, keys), SortBy(b, keys), keys, verify, never, &joinLimit{max: -1})
	return out
}

// TestQuickMergeHashNestedJoinAgree proves the three physical joins —
// streaming merge, hash probe, and the naive nested loop — compute the
// same multiset on randomized bags with key skew, None holes and empty
// operands. The dispatched JoinCancel must agree with all of them.
func TestQuickMergeHashNestedJoinAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const width = 4
		a, b := randSkewBag(rng, width), randSkewBag(rng, width)
		want := naiveJoin(a, b)
		if got := Join(a, b); !MultisetEqual(got, want) {
			t.Logf("dispatched join: got %d rows, want %d", got.Len(), want.Len())
			return false
		}
		if a.Len() == 0 || b.Len() == 0 {
			return true // physical operators require non-empty operands
		}
		if keys := a.Cert.And(b.Cert).Indices(width); len(keys) == 0 {
			return true // hash/merge require a certain key
		}
		if got := forcedHashJoin(a, b, hashKey); !MultisetEqual(got, want) {
			t.Logf("hash join: got %d rows, want %d", got.Len(), want.Len())
			return false
		}
		if got := forcedMergeJoin(a, b); !MultisetEqual(got, want) {
			t.Logf("merge join: got %d rows, want %d", got.Len(), want.Len())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickJoinDeterministicOrder pins the documented output contract:
// the dispatched join is a deterministic function of its operands (same
// rows in the same physical order on every run), which the byte-identical
// parallel/sequential guarantee upstream relies on.
func TestQuickJoinDeterministicOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randSkewBag(rng, 4), randSkewBag(rng, 4)
		x, y := JoinCancel(a, b, nil), JoinCancel(a, b, nil)
		if x.Len() != y.Len() {
			return false
		}
		for i := 0; i < x.Len(); i++ {
			if compareRows(x.Row(i), y.Row(i)) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickLeftJoinOrderedMatchesNaive drives the merge left-join path
// (ordered operands) against the naive definition.
func TestQuickLeftJoinOrderedMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randSkewBag(rng, 4), randSkewBag(rng, 4)
		return MultisetEqual(LeftJoin(a, b), naiveLeftJoin(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickSemiDiffOrderedMatchNaive drives the merge and keyed-hash
// semijoin/anti-join paths against their naive definitions, and checks
// that both preserve Ω1's physical row order (they emit subsequences).
func TestQuickSemiDiffOrderedMatchNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randSkewBag(rng, 4), randSkewBag(rng, 4)
		semi, diff := SemiJoin(a, b), Diff(a, b)
		wantSemi, wantDiff := NewBag(a.Width), NewBag(a.Width)
		for _, ra := range a.All() {
			matched := false
			for _, rb := range b.All() {
				if naiveCompatible(ra, rb) {
					matched = true
					break
				}
			}
			if matched {
				wantSemi.Append(ra)
			} else {
				wantDiff.Append(ra)
			}
		}
		// Order-preserving subsequence: exact row-sequence equality.
		for _, pair := range []struct{ got, want *Bag }{{semi, wantSemi}, {diff, wantDiff}} {
			if pair.got.Len() != pair.want.Len() {
				return false
			}
			for i := 0; i < pair.got.Len(); i++ {
				if compareRows(pair.got.Row(i), pair.want.Row(i)) != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickOperatorOrderClaimsSound verifies the physical-order property
// every operator attaches to its output: whatever Order a result bag
// claims, its rows actually ascend lexicographically by it. This is the
// invariant the merge-join dispatch trusts.
func TestQuickOperatorOrderClaimsSound(t *testing.T) {
	check := func(t *testing.T, tag string, b *Bag) bool {
		t.Helper()
		if !b.SortedBy(b.Order) {
			t.Logf("%s: claimed order %v not sorted", tag, b.Order)
			return false
		}
		return true
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randSkewBag(rng, 4), randSkewBag(rng, 4)
		ok := check(t, "a", a) && check(t, "b", b) &&
			check(t, "join", Join(a, b)) &&
			check(t, "leftjoin", LeftJoin(a, b)) &&
			check(t, "semijoin", SemiJoin(a, b)) &&
			check(t, "diff", Diff(a, b)) &&
			check(t, "union", Union(a, b)) &&
			check(t, "distinct", Distinct(a)) &&
			check(t, "project", Project(a, []int{0, 2})) &&
			check(t, "sortby", SortBy(a, []int{1, 3}))
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestHashCollisionProbeVerifiesKeys is the regression test for the
// hash-collision bug: with the key hash replaced by a degenerate
// constant, every build row lands in one bucket, and only the probe-side
// key-equality comparison keeps rows with different key values apart.
// (A real FNV-1a collision is astronomically unlikely to construct, so
// the test forces the worst case through the injectable keyHashFn.)
func TestHashCollisionProbeVerifiesKeys(t *testing.T) {
	zero := func(Row, []int) uint64 { return 0 }

	// Two certain key columns with disjoint values: nothing may join.
	a := mkBag(3, []int{1, 2, 7}, []int{3, 4, 0})
	b := mkBag(3, []int{5, 6, 9}, []int{7, 8, 0})
	if got := forcedHashJoin(a, b, zero); got.Len() != 0 {
		t.Fatalf("collision-bucketed hash join paired %d incompatible rows", got.Len())
	}
	// And mixed cases cross-checked against the naive definitions,
	// through every keyed operator's hash path under the constant hash.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		x, y := randSkewBag(rng, 4), randSkewBag(rng, 4)
		if x.Len() == 0 || y.Len() == 0 {
			continue
		}
		keys := x.Cert.And(y.Cert).Indices(x.Width)
		if len(keys) == 0 {
			continue
		}
		verify := verifyPositions(x, y, keys)
		if !MultisetEqual(forcedHashJoin(x, y, zero), naiveJoin(x, y)) {
			t.Fatal("hashJoin relies on hash uniqueness for key equality")
		}
		lj := NewBag(x.Width)
		lj.Cert = x.Cert.Clone()
		lj.Maybe = x.Maybe.Or(y.Maybe)
		hashLeftJoin(lj, x, y, keys, verify, never, zero, &joinLimit{max: -1})
		if !MultisetEqual(lj, naiveLeftJoin(x, y)) {
			t.Fatal("hashLeftJoin relies on hash uniqueness for key equality")
		}
		semi, diff := NewBag(x.Width), NewBag(x.Width)
		semiScan(semi, x, y, true, zero)
		semiScan(diff, x, y, false, zero)
		if semi.Len()+diff.Len() != x.Len() {
			t.Fatal("semiScan relies on hash uniqueness for key equality")
		}
		if !MultisetEqual(SemiJoin(x, y), semi) || !MultisetEqual(Diff(x, y), diff) {
			t.Fatal("semiScan under constant hash diverges from dispatched result")
		}
	}
	// Distinct's bucket verification compares full rows on collision.
	d := mkBag(2, []int{1, 2}, []int{3, 4}, []int{1, 2})
	if got := distinctWith(d, zero).Len(); got != 2 {
		t.Fatalf("collision-bucketed Distinct kept %d rows, want 2", got)
	}
}

// TestSortByStableAndSorted pins SortBy's two contracts: the output is
// sorted by the requested sequence, and ties keep the input order (the
// determinism the merge dispatch needs when it re-sorts an operand).
func TestSortByStableAndSorted(t *testing.T) {
	b := mkBag(2, []int{2, 1}, []int{1, 2}, []int{2, 3}, []int{1, 1})
	s := SortBy(b, []int{0})
	want := [][]store.ID{{1, 2}, {1, 1}, {2, 1}, {2, 3}}
	for i, w := range want {
		r := s.Row(i)
		if r[0] != w[0] || r[1] != w[1] {
			t.Fatalf("row %d = %v, want %v", i, r, w)
		}
	}
	if !s.SortedBy([]int{0}) {
		t.Fatal("SortBy output not sorted by requested sequence")
	}
}

// TestViewAppendDoesNotCorruptParent pins View's capacity clamp: a view
// of a bag with spare arena capacity must reallocate on append instead
// of overwriting the parent's rows past the view end.
func TestViewAppendDoesNotCorruptParent(t *testing.T) {
	b := NewBag(2)
	b.Grow(8)
	for i := 1; i <= 4; i++ {
		b.Append(Row{store.ID(i), store.ID(i)})
	}
	v := b.View(0, 2)
	v.Append(Row{99, 99})
	if got := b.Row(2)[0]; got != 3 {
		t.Fatalf("append to view overwrote parent row: got %d, want 3", got)
	}
}

// TestSetColumnTruncatesOrderSuffix pins SetColumn's order handling:
// columns after the rewritten sort column were only sorted within its
// old values, so the claim must stop at the column itself.
func TestSetColumnTruncatesOrderSuffix(t *testing.T) {
	b := mkBag(3, []int{1, 1, 5}, []int{1, 2, 3})
	b.Order = []int{0, 1, 2}
	b.SetColumn(1, 7)
	want := []int{0, 1}
	if len(b.Order) != len(want) || b.Order[0] != 0 || b.Order[1] != 1 {
		t.Fatalf("Order = %v, want %v", b.Order, want)
	}
	if !b.SortedBy(b.Order) {
		t.Fatal("truncated order claim still unsound")
	}
}
