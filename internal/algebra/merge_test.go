package algebra

import (
	"math/rand"
	"sort"
	"testing"

	"sparqluo/internal/store"
)

// randomSortedParts builds n bags of random rows, each sorted on seq,
// and returns them plus the globally sorted concatenation (the expected
// merge output). Ties across parts are resolved by part index, matching
// MergeSortedBags' stability contract.
func randomSortedParts(rng *rand.Rand, n, width int, seq []int) (parts []*Bag, want []Row) {
	type keyed struct {
		row  Row
		part int
	}
	var all []keyed
	for p := 0; p < n; p++ {
		b := NewBag(width)
		rows := rng.Intn(12)
		for i := 0; i < rows; i++ {
			r := make(Row, width)
			for j := range r {
				r[j] = store.ID(rng.Intn(5) + 1)
			}
			b.Append(r)
		}
		b = SortBy(b, seq)
		for i := 0; i < b.Len(); i++ {
			all = append(all, keyed{append(Row(nil), b.Row(i)...), p})
		}
		parts = append(parts, b)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if c := compareOn(all[i].row, all[j].row, seq); c != 0 {
			return c < 0
		}
		return all[i].part < all[j].part
	})
	for _, k := range all {
		want = append(want, k.row)
	}
	return parts, want
}

func TestMergeSortedBags(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		width := 1 + rng.Intn(3)
		seq := rng.Perm(width)[:1+rng.Intn(width)]
		parts, want := randomSortedParts(rng, 1+rng.Intn(5), width, seq)
		for _, max := range []int{-1, 0, 1, len(want) / 2, len(want), len(want) + 3} {
			dst := NewBag(width)
			MergeSortedBags(dst, parts, seq, max)
			wantN := len(want)
			if max >= 0 && max < wantN {
				wantN = max
			}
			if dst.Len() != wantN {
				t.Fatalf("trial %d max=%d: merged %d rows, want %d", trial, max, dst.Len(), wantN)
			}
			for i := 0; i < wantN; i++ {
				got := dst.Row(i)
				if len(got) != width {
					t.Fatalf("trial %d: row %d has width %d", trial, i, len(got))
				}
				for j := range got {
					if got[j] != want[i][j] {
						t.Fatalf("trial %d max=%d: row %d = %v, want %v", trial, max, i, got, want[i])
					}
				}
			}
		}
	}
}

// TestMergeSortedBagsSingleLive: with exactly one non-empty input the
// merge must still produce that input's prefix (the fast path).
func TestMergeSortedBagsSingleLive(t *testing.T) {
	src := NewBag(2)
	for i := 1; i <= 5; i++ {
		src.Append(Row{store.ID(i), store.ID(10 - i)})
	}
	empty := NewBag(2)
	for _, max := range []int{-1, 3, 10} {
		dst := NewBag(2)
		MergeSortedBags(dst, []*Bag{empty, src, empty}, []int{0}, max)
		wantN := 5
		if max >= 0 && max < wantN {
			wantN = max
		}
		if dst.Len() != wantN {
			t.Fatalf("max=%d: got %d rows, want %d", max, dst.Len(), wantN)
		}
		for i := 0; i < wantN; i++ {
			if dst.Row(i)[0] != store.ID(i+1) {
				t.Fatalf("max=%d: row %d = %v", max, i, dst.Row(i))
			}
		}
	}
}
