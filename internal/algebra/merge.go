package algebra

// MergeSortedBags appends the rows of several bags — each sorted
// ascending by seq — into dst in global seq order: the k-way ordered
// merge that recombines per-shard scan results when the shard key is not
// the leading order variable. Rows with equal seq keys never span inputs
// in the sharded setting (subject ranges are disjoint and the subject
// always participates in the key sequence), but for determinism the
// merge still breaks ties by input index, emitting all of part i's tied
// rows before part i+1's. max >= 0 caps the output at max appended rows,
// so per-input prefixes capped at max are sufficient to produce the
// global prefix. dst's Cert/Maybe/Order are the caller's responsibility.
func MergeSortedBags(dst *Bag, parts []*Bag, seq []int, max int) {
	total := 0
	live := 0
	var single *Bag
	for _, p := range parts {
		if p.Len() > 0 {
			total += p.Len()
			live++
			single = p
		}
	}
	if max >= 0 && total > max {
		total = max
	}
	dst.Grow(total)
	if live == 1 {
		appendPrefix(dst, single, total)
		return
	}
	heads := make([]int, len(parts))
	for appended := 0; appended < total; appended++ {
		best := -1
		for i, p := range parts {
			if heads[i] >= p.Len() {
				continue
			}
			if best < 0 || compareOn(p.Row(heads[i]), parts[best].Row(heads[best]), seq) < 0 {
				best = i
			}
		}
		if best < 0 {
			return
		}
		dst.Append(parts[best].Row(heads[best]))
		heads[best]++
	}
}

// appendPrefix appends the first n rows of src to dst (n capped at
// src.Len() by construction at the call sites).
func appendPrefix(dst, src *Bag, n int) {
	if n >= src.Len() {
		dst.AppendAll(src)
		return
	}
	for i := 0; i < n; i++ {
		dst.Append(src.Row(i))
	}
}
