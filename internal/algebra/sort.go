package algebra

import (
	"slices"
	"sort"

	"sparqluo/internal/store"
)

// SortKey is one ORDER BY sort key: a variable position plus direction.
// Rows compare by dictionary ID (store.None first, as ID 0) — the same
// total order the physical Order property describes, so a bag whose
// carried Order covers an all-ascending key sequence already answers it.
type SortKey struct {
	Col  int
	Desc bool
}

// compareKeys compares two rows on the key sequence, honoring per-key
// direction.
func compareKeys(a, b Row, keys []SortKey) int {
	for _, k := range keys {
		x, y := a[k.Col], b[k.Col]
		if x == y {
			continue
		}
		if (x < y) != k.Desc {
			return -1
		}
		return 1
	}
	return 0
}

// OrderCoversKeys reports whether a bag physically sorted by ord is
// already sorted by the requested keys, making the sort free: every key
// ascends and the order sequence leads with exactly the key columns.
func OrderCoversKeys(ord []int, keys []SortKey) bool {
	if len(keys) > len(ord) {
		return false
	}
	for i, k := range keys {
		if k.Desc || ord[i] != k.Col {
			return false
		}
	}
	return true
}

// sortedKeyOrder is the Order claim of a bag sorted (stably) by keys:
// the ascending key columns up to the first descending one — Order only
// speaks ascending — extended, when every key ascends, with the
// surviving tail of the input's own order (the stable sort preserves it
// within key ties, exactly as in SortBy). The claim is equally valid for
// any contiguous prefix of the sorted rows, so TopK shares it.
func sortedKeyOrder(keys []SortKey, prevOrder []int) []int {
	var out []int
	for _, k := range keys {
		if k.Desc {
			return out
		}
		if !slices.Contains(out, k.Col) {
			out = append(out, k.Col)
		}
	}
	for _, p := range prevOrder {
		if !slices.Contains(out, p) {
			out = append(out, p)
		}
	}
	return out
}

// SortByKeys returns a copy of b stably sorted by the given keys — the
// ORDER BY operator. Ties keep b's row order, so the result is a
// deterministic function of the input at every parallelism level.
func SortByKeys(b *Bag, keys []SortKey) *Bag {
	idx := make([]int, b.rows)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		return compareKeys(b.Row(idx[x]), b.Row(idx[y]), keys) < 0
	})
	out := &Bag{
		Width: b.Width,
		Cert:  b.Cert.Clone(),
		Maybe: b.Maybe.Clone(),
		Order: sortedKeyOrder(keys, b.Order),
		rows:  b.rows,
		data:  make([]store.ID, 0, b.rows*b.Width),
	}
	for _, i := range idx {
		out.data = append(out.data, b.Row(i)...)
	}
	return out
}

// TopK returns the first k rows of SortByKeys(b, keys) — byte-identical
// to sorting and slicing — without sorting the whole bag: a bounded
// max-heap of row indices keeps the k smallest rows under the
// (keys, original index) order, so ties resolve exactly as the stable
// sort would. O(n log k) instead of O(n log n), and the arena copy is k
// rows, not n.
func TopK(b *Bag, keys []SortKey, k int) *Bag {
	if k < 0 {
		k = 0
	}
	if k >= b.rows {
		return SortByKeys(b, keys)
	}
	// precedes is the total output order: key comparison, then original
	// row index (the stable tiebreak).
	precedes := func(x, y int) bool {
		if c := compareKeys(b.Row(x), b.Row(y), keys); c != 0 {
			return c < 0
		}
		return x < y
	}
	// heap holds the k smallest indices seen so far with the LARGEST at
	// the root, so a new row only displaces the current worst.
	heap := make([]int, 0, k)
	siftUp := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if precedes(heap[i], heap[p]) {
				break
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	siftDown := func() {
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < len(heap) && precedes(heap[big], heap[l]) {
				big = l
			}
			if r < len(heap) && precedes(heap[big], heap[r]) {
				big = r
			}
			if big == i {
				return
			}
			heap[i], heap[big] = heap[big], heap[i]
			i = big
		}
	}
	for i := 0; i < b.rows; i++ {
		if len(heap) < k {
			heap = append(heap, i)
			siftUp(len(heap) - 1)
			continue
		}
		if k > 0 && precedes(i, heap[0]) {
			heap[0] = i
			siftDown()
		}
	}
	sort.Slice(heap, func(x, y int) bool { return precedes(heap[x], heap[y]) })
	out := &Bag{
		Width: b.Width,
		Cert:  b.Cert.Clone(),
		Maybe: b.Maybe.Clone(),
		Order: sortedKeyOrder(keys, b.Order),
		rows:  len(heap),
		data:  make([]store.ID, 0, len(heap)*b.Width),
	}
	for _, i := range heap {
		out.data = append(out.data, b.Row(i)...)
	}
	return out
}
