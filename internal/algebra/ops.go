package algebra

import "sparqluo/internal/store"

// Join computes Ω1 ⋈ Ω2 = {µ1 ∪ µ2 | µ1 ∈ Ω1, µ2 ∈ Ω2, µ1 ∼ µ2} under bag
// semantics. It hash-partitions the smaller operand on the variables that
// are certainly bound on both sides and verifies full compatibility on the
// remaining possibly-shared positions.
func Join(a, b *Bag) *Bag { return JoinCancel(a, b, nil) }

// joinStopMask batches cancellation probes in the cancellable joins:
// stop is polled once per (joinStopMask+1) inner-loop iterations, keeping
// the hot path to a counter AND.
const joinStopMask = 2047

// batchStop wraps a cancellation probe so it is only consulted every
// (joinStopMask+1) calls. A nil stop gets a constant-false closure,
// keeping the non-cancellable Join/LeftJoin hot loops free of the
// counter bookkeeping.
func batchStop(stop func() bool) func() bool {
	if stop == nil {
		return never
	}
	steps := 0
	return func() bool {
		steps++
		return steps&joinStopMask == 0 && stop()
	}
}

func never() bool { return false }

// JoinCancel is Join with a cancellation probe. stop, when non-nil, is
// polled periodically; once it returns true the join aborts and the bag
// built so far is returned. Callers own the decision to discard the
// truncated result.
func JoinCancel(a, b *Bag, stop func() bool) *Bag {
	out := NewBag(a.Width)
	out.Cert = a.Cert.Or(b.Cert)
	out.Maybe = a.Maybe.Or(b.Maybe)
	if len(a.Rows) == 0 || len(b.Rows) == 0 {
		return out
	}
	// Keep a as the probe (outer) side, b as the build side; swap so the
	// smaller side is built.
	build, probe := b, a
	if len(a.Rows) < len(b.Rows) {
		build, probe = a, b
	}
	keys := build.Cert.And(probe.Cert).Indices(a.Width)
	verify := verifyPositions(a, b, keys)
	stopped := batchStop(stop)

	if len(keys) == 0 {
		// No certain join key: nested loop with compatibility check.
		for _, ra := range a.Rows {
			for _, rb := range b.Rows {
				if Compatible(ra, rb, verify) {
					out.Append(MergeRows(ra, rb))
				}
				if stopped() {
					return out
				}
			}
		}
		return out
	}

	idx := buildHash(build, keys)
	for _, rp := range probe.Rows {
		for _, rb := range idx[hashKey(rp, keys)] {
			if Compatible(rp, rb, verify) {
				// Preserve (µ1, µ2) orientation: merge a-side first.
				if probe == a {
					out.Append(MergeRows(rp, rb))
				} else {
					out.Append(MergeRows(rb, rp))
				}
			}
			// Poll per build-row visit: one skewed hash bucket can hold
			// most of the build side, so per-probe-row polling would let
			// a cancelled join run a bucket to completion.
			if stopped() {
				return out
			}
		}
		if stopped() {
			return out
		}
	}
	return out
}

// Union computes Ω1 ∪bag Ω2, concatenating the two bags.
func Union(a, b *Bag) *Bag {
	out := NewBag(a.Width)
	out.Cert = a.Cert.And(b.Cert)
	out.Maybe = a.Maybe.Or(b.Maybe)
	if len(a.Rows) == 0 {
		out.Cert = b.Cert.Clone()
	}
	if len(b.Rows) == 0 {
		out.Cert = a.Cert.Clone()
	}
	out.Rows = make([]Row, 0, len(a.Rows)+len(b.Rows))
	out.Rows = append(out.Rows, a.Rows...)
	out.Rows = append(out.Rows, b.Rows...)
	return out
}

// UnionAll folds Union over several bags.
func UnionAll(width int, bags ...*Bag) *Bag {
	if len(bags) == 0 {
		return NewBag(width)
	}
	out := bags[0]
	for _, b := range bags[1:] {
		out = Union(out, b)
	}
	return out
}

// Diff computes Ω1 \ Ω2 = {µ1 ∈ Ω1 | ∀µ2 ∈ Ω2 : µ1 ≁ µ2}.
func Diff(a, b *Bag) *Bag {
	out := NewBag(a.Width)
	out.Cert = a.Cert.Clone()
	out.Maybe = a.Maybe.Clone()
	verify := verifyPositions(a, b, nil)
	for _, ra := range a.Rows {
		matched := false
		for _, rb := range b.Rows {
			if Compatible(ra, rb, verify) {
				matched = true
				break
			}
		}
		if !matched {
			out.Append(ra)
		}
	}
	return out
}

// LeftJoin computes Ω1 ⟕ Ω2 = (Ω1 ⋈ Ω2) ∪bag (Ω1 \ Ω2): every left
// mapping joined with each compatible right mapping, or passed through
// unchanged when no right mapping is compatible.
func LeftJoin(a, b *Bag) *Bag { return LeftJoinCancel(a, b, nil) }

// LeftJoinCancel is LeftJoin with the cancellation probe of JoinCancel:
// a true return from stop aborts the fold, yielding a truncated bag for
// the caller to discard.
func LeftJoinCancel(a, b *Bag, stop func() bool) *Bag {
	out := NewBag(a.Width)
	out.Cert = a.Cert.Clone() // right side only certain on matched rows
	out.Maybe = a.Maybe.Or(b.Maybe)
	keys := a.Cert.And(b.Cert).Indices(a.Width)
	verify := verifyPositions(a, b, keys)

	if len(b.Rows) == 0 {
		out.Rows = append(out.Rows, a.Rows...)
		return out
	}
	var idx map[uint64][]Row
	if len(keys) > 0 {
		idx = buildHash(b, keys)
	}
	stopped := batchStop(stop)
	for _, ra := range a.Rows {
		candidates := b.Rows
		if idx != nil {
			candidates = idx[hashKey(ra, keys)]
		}
		matched := false
		for _, rb := range candidates {
			if Compatible(ra, rb, verify) {
				matched = true
				out.Append(MergeRows(ra, rb))
			}
			if stopped() {
				return out
			}
		}
		if !matched {
			out.Append(ra)
		}
		if stopped() {
			return out
		}
	}
	return out
}

// SemiJoin computes Ω1 ⋉ Ω2: the mappings of Ω1 compatible with at least
// one mapping of Ω2. It is the pruning primitive of LBR-style evaluation.
func SemiJoin(a, b *Bag) *Bag {
	out := NewBag(a.Width)
	out.Cert = a.Cert.Clone()
	out.Maybe = a.Maybe.Clone()
	keys := a.Cert.And(b.Cert).Indices(a.Width)
	verify := verifyPositions(a, b, keys)
	var idx map[uint64][]Row
	if len(keys) > 0 {
		idx = buildHash(b, keys)
	}
	for _, ra := range a.Rows {
		candidates := b.Rows
		if idx != nil {
			candidates = idx[hashKey(ra, keys)]
		}
		for _, rb := range candidates {
			if Compatible(ra, rb, verify) {
				out.Append(ra)
				break
			}
		}
	}
	return out
}

// verifyPositions returns the variable positions on which two bags may
// share bindings, excluding the already-hashed key positions.
func verifyPositions(a, b *Bag, keys []int) []int {
	shared := a.Maybe.And(b.Maybe)
	for _, k := range keys {
		// Clear key positions: equality is already guaranteed by hashing.
		shared[k/64] &^= 1 << (uint(k) % 64)
	}
	return shared.Indices(a.Width)
}

func buildHash(b *Bag, keys []int) map[uint64][]Row {
	idx := make(map[uint64][]Row, len(b.Rows))
	for _, r := range b.Rows {
		h := hashKey(r, keys)
		idx[h] = append(idx[h], r)
	}
	return idx
}

// hashKey computes an FNV-1a hash of the key positions of a row.
func hashKey(r Row, keys []int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, k := range keys {
		v := uint64(r[k])
		for i := 0; i < 4; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	return h
}

// Project returns a bag keeping only the given variable positions bound;
// all other positions are cleared. Used by SELECT projection.
func Project(b *Bag, keep []int) *Bag {
	keepBits := NewBits(b.Width)
	for _, k := range keep {
		keepBits.Set(k)
	}
	out := NewBag(b.Width)
	out.Cert = b.Cert.And(keepBits)
	out.Maybe = b.Maybe.And(keepBits)
	for _, r := range b.Rows {
		nr := make(Row, b.Width)
		for _, k := range keep {
			nr[k] = r[k]
		}
		out.Append(nr)
	}
	return out
}

// Distinct removes duplicate mappings, keeping first occurrences.
func Distinct(b *Bag) *Bag {
	out := NewBag(b.Width)
	out.Cert = b.Cert.Clone()
	out.Maybe = b.Maybe.Clone()
	seen := make(map[string]struct{}, len(b.Rows))
	for _, r := range b.Rows {
		k := rowKey(r)
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		out.Append(r)
	}
	return out
}

// BindingsOf returns the distinct non-None values of variable v across the
// bag, as a set. Used by candidate pruning (§6).
func BindingsOf(b *Bag, v int) map[store.ID]struct{} {
	return BindingsOfCapped(b, v, -1)
}

// BindingsOfCapped is BindingsOf with an early exit: once the set exceeds
// cap distinct values it returns nil, bounding the cost of probing large
// intermediate results for candidate sets that would be discarded anyway.
// cap < 0 means unlimited.
func BindingsOfCapped(b *Bag, v int, cap int) map[store.ID]struct{} {
	set := make(map[store.ID]struct{})
	for _, r := range b.Rows {
		if r[v] != store.None {
			set[r[v]] = struct{}{}
			if cap >= 0 && len(set) > cap {
				return nil
			}
		}
	}
	return set
}
