package algebra

import (
	"slices"

	"sparqluo/internal/store"
)

// Join computes Ω1 ⋈ Ω2 = {µ1 ∪ µ2 | µ1 ∈ Ω1, µ2 ∈ Ω2, µ1 ∼ µ2} under bag
// semantics. The join keys are the variables certainly bound on both
// sides; full compatibility is verified on the remaining possibly-shared
// positions. Physical operator choice is order-aware:
//
//   - when both operands are sorted by a shared prefix covering the keys
//     (or can be, by sorting the smaller side), a streaming sort-merge
//     join runs over the arenas;
//   - otherwise the smaller side is hash-partitioned on the keys and the
//     larger side probes it;
//   - with no certain key, a nested loop verifies compatibility.
func Join(a, b *Bag) *Bag { return JoinWith(a, b, JoinOpts{Max: -1}) }

// JoinOpts configures one JoinWith/LeftJoinWith execution.
type JoinOpts struct {
	// Stop is the cancellation probe, polled in batches; nil never stops.
	Stop func() bool
	// Max caps the output at its first Max rows. Every physical join path
	// emits in a deterministic order, so the capped output is exactly the
	// prefix of the uncapped output — the soundness basis for LIMIT
	// push-down. Max < 0 means unlimited; 0 yields the empty bag without
	// touching the operands.
	Max int
	// Pulled, when non-nil, accumulates the number of operand rows the
	// join drew: each cursor advance of a merge join, each build and
	// probe row of a hash join, each inner-loop visit of a nested loop.
	// Early termination shows up directly as a smaller count.
	Pulled *int
}

// joinLimit is the per-execution state behind JoinOpts: a row budget
// plus a locally-accumulated pull counter flushed to opts.Pulled once.
type joinLimit struct {
	max    int // output rows allowed; -1 unlimited
	pulled int
}

// full reports whether the output has reached the cap.
func (l *joinLimit) full(out *Bag) bool { return out.rows == l.max }

// joinStopMask batches cancellation probes in the cancellable joins:
// stop is polled once per (joinStopMask+1) inner-loop iterations, keeping
// the hot path to a counter AND.
const joinStopMask = 2047

// batchStop wraps a cancellation probe so it is only consulted every
// (joinStopMask+1) calls. A nil stop gets a constant-false closure,
// keeping the non-cancellable Join/LeftJoin hot loops free of the
// counter bookkeeping.
func batchStop(stop func() bool) func() bool {
	if stop == nil {
		return never
	}
	steps := 0
	return func() bool {
		steps++
		return steps&joinStopMask == 0 && stop()
	}
}

func never() bool { return false }

// JoinCancel is Join with a cancellation probe. stop, when non-nil, is
// polled periodically; once it returns true the join aborts and the bag
// built so far is returned. Callers own the decision to discard the
// truncated result.
func JoinCancel(a, b *Bag, stop func() bool) *Bag {
	return JoinWith(a, b, JoinOpts{Stop: stop, Max: -1})
}

// JoinWith is the fully-configurable join: JoinCancel plus an output
// cap and a pulled-rows counter (see JoinOpts).
func JoinWith(a, b *Bag, opts JoinOpts) *Bag {
	out := NewBag(a.Width)
	out.Cert = a.Cert.Or(b.Cert)
	out.Maybe = a.Maybe.Or(b.Maybe)
	if a.Len() == 0 || b.Len() == 0 || opts.Max == 0 {
		return out
	}
	keys := a.Cert.And(b.Cert).Indices(a.Width)
	verify := verifyPositions(a, b, keys)
	stopped := batchStop(opts.Stop)
	lim := joinLimit{max: opts.Max}
	if opts.Pulled != nil {
		defer func() { *opts.Pulled += lim.pulled }()
	}

	if len(keys) == 0 {
		// No certain join key: nested loop with compatibility check.
		out.Order = orderPrefixNotIn(a.Order, b.Maybe)
		for i := 0; i < a.rows; i++ {
			ra := a.Row(i)
			for j := 0; j < b.rows; j++ {
				lim.pulled++
				if Compatible(ra, b.Row(j), verify) {
					out.AppendMerged(ra, b.Row(j))
					if lim.full(out) {
						return out
					}
				}
				if stopped() {
					return out
				}
			}
		}
		return out
	}
	if sa, sb, seq, ok := mergePlan(a, b, keys); ok {
		out.Order = mergedOrder(sa.Order, seq, sb.Maybe)
		mergeJoin(out, sa, sb, seq, verify, stopped, &lim)
		return out
	}
	hashJoin(out, a, b, keys, verify, stopped, hashKey, &lim)
	return out
}

// mergePlan decides whether an order-aware merge join applies. Both
// operands sorted by the same key-covering prefix merge directly; when
// only one side is sorted (or they are sorted by different key
// sequences), the smaller side is re-sorted to match; a bag of at most
// one row is trivially sorted by any sequence. Operands are never
// mutated — re-sorting copies. The returned operands keep the (a, b)
// orientation of the caller.
func mergePlan(a, b *Bag, keys []int) (sa, sb *Bag, seq []int, ok bool) {
	seqA, okA := keyPrefixCovers(a.Order, keys)
	seqB, okB := keyPrefixCovers(b.Order, keys)
	wildA, wildB := a.rows <= 1, b.rows <= 1
	switch {
	case wildA && wildB:
		return a, b, keys, true
	case wildA && okB:
		return a, b, seqB, true
	case wildB && okA:
		return a, b, seqA, true
	case okA && okB:
		if slices.Equal(seqA, seqB) {
			return a, b, seqA, true
		}
		if b.rows <= a.rows {
			return a, SortBy(b, seqA), seqA, true
		}
		return SortBy(a, seqB), b, seqB, true
	case okA:
		if b.rows <= a.rows {
			return a, SortBy(b, seqA), seqA, true
		}
	case okB:
		if a.rows <= b.rows {
			return SortBy(a, seqB), b, seqB, true
		}
	}
	return nil, nil, nil, false
}

// mergeJoin streams two bags sorted by seq with one synchronized pass:
// equal-key groups are located by advancing two cursors and their cross
// product is emitted a-major, preserving (µ1, µ2) orientation. Key
// equality is established by comparison — no hash, no collisions.
func mergeJoin(out *Bag, a, b *Bag, seq, verify []int, stopped func() bool, lim *joinLimit) {
	i, j := 0, 0
	for i < a.rows && j < b.rows {
		c := compareOn(a.Row(i), b.Row(j), seq)
		if c != 0 {
			if c < 0 {
				i++
			} else {
				j++
			}
			lim.pulled++
			if stopped() {
				return
			}
			continue
		}
		i2, j2 := groupEnd(a, i, seq), groupEnd(b, j, seq)
		// Each operand row of the two key groups is pulled once.
		lim.pulled += (i2 - i) + (j2 - j)
		for x := i; x < i2; x++ {
			rx := a.Row(x)
			for y := j; y < j2; y++ {
				if Compatible(rx, b.Row(y), verify) {
					out.AppendMerged(rx, b.Row(y))
					if lim.full(out) {
						return
					}
				}
				if stopped() {
					return
				}
			}
		}
		i, j = i2, j2
	}
}

// groupEnd returns the end of the run of rows equal to Row(i) on seq.
func groupEnd(b *Bag, i int, seq []int) int {
	r := b.Row(i)
	j := i + 1
	for j < b.rows && equalOn(r, b.Row(j), seq) {
		j++
	}
	return j
}

// hashJoin is the fallback physical join: the smaller side is bucketed
// by key hash, the larger side probes. Probes verify key equality by
// comparison — a hash collision on the key columns must not pair rows
// with different keys — before checking the non-key shared positions.
func hashJoin(out *Bag, a, b *Bag, keys, verify []int, stopped func() bool, hash keyHashFn, lim *joinLimit) {
	// Keep a as the probe (outer) side, b as the build side; swap so the
	// smaller side is built.
	build, probe := b, a
	if a.rows < b.rows {
		build, probe = a, b
	}
	// Probe-major emission carries the probe side's order on the slots
	// the build side cannot overwrite.
	out.Order = orderPrefixNotIn(probe.Order, build.Maybe)
	probeIsA := probe == a
	idx := buildHash(build, keys, hash)
	lim.pulled += build.rows // the build pass reads every build row
	for i := 0; i < probe.rows; i++ {
		rp := probe.Row(i)
		lim.pulled++
		for _, bi := range idx[hash(rp, keys)] {
			rb := build.Row(int(bi))
			if equalOn(rp, rb, keys) && Compatible(rp, rb, verify) {
				// Preserve (µ1, µ2) orientation: merge a-side first.
				if probeIsA {
					out.AppendMerged(rp, rb)
				} else {
					out.AppendMerged(rb, rp)
				}
				if lim.full(out) {
					return
				}
			}
			// Poll per build-row visit: one skewed hash bucket can hold
			// most of the build side, so per-probe-row polling would let
			// a cancelled join run a bucket to completion.
			if stopped() {
				return
			}
		}
		if stopped() {
			return
		}
	}
}

// Union computes Ω1 ∪bag Ω2, concatenating the two bags.
func Union(a, b *Bag) *Bag {
	out := NewBag(a.Width)
	out.Cert = a.Cert.And(b.Cert)
	out.Maybe = a.Maybe.Or(b.Maybe)
	if a.Len() == 0 {
		out.Cert = b.Cert.Clone()
		out.Order = slices.Clone(b.Order)
	}
	if b.Len() == 0 {
		out.Cert = a.Cert.Clone()
		out.Order = slices.Clone(a.Order)
	}
	out.Grow(a.Len() + b.Len())
	out.AppendAll(a)
	out.AppendAll(b)
	return out
}

// UnionAll folds Union over several bags.
func UnionAll(width int, bags ...*Bag) *Bag {
	if len(bags) == 0 {
		return NewBag(width)
	}
	out := bags[0]
	for _, b := range bags[1:] {
		out = Union(out, b)
	}
	return out
}

// Diff computes Ω1 \ Ω2 = {µ1 ∈ Ω1 | ∀µ2 ∈ Ω2 : µ1 ≁ µ2}. With certain
// keys on both sides a compatible µ2 must agree with µ1 on every key, so
// the scan anti-joins through the same merge/hash machinery as Join; the
// nested loop remains only for the keyless case. The output is a
// subsequence of Ω1 and keeps its physical order.
func Diff(a, b *Bag) *Bag {
	out := NewBag(a.Width)
	out.Cert = a.Cert.Clone()
	out.Maybe = a.Maybe.Clone()
	out.Order = slices.Clone(a.Order)
	semiScan(out, a, b, false, hashKey)
	return out
}

// SemiJoin computes Ω1 ⋉ Ω2: the mappings of Ω1 compatible with at least
// one mapping of Ω2. It is the pruning primitive of LBR-style evaluation.
// Like Diff it preserves Ω1's physical order.
func SemiJoin(a, b *Bag) *Bag {
	out := NewBag(a.Width)
	out.Cert = a.Cert.Clone()
	out.Maybe = a.Maybe.Clone()
	out.Order = slices.Clone(a.Order)
	semiScan(out, a, b, true, hashKey)
	return out
}

// semiScan appends to out the rows of a that do (keep=true: semijoin) or
// do not (keep=false: diff) have a compatible partner in b, walking a in
// physical order. With certain join keys it runs a synchronized merge
// scan when both sides are sorted by a common key sequence, and a keyed
// hash probe otherwise; without keys it degrades to the nested loop.
func semiScan(out *Bag, a, b *Bag, keep bool, hash keyHashFn) {
	if a.Len() == 0 {
		return
	}
	if b.Len() == 0 {
		if !keep {
			out.AppendAll(a)
		}
		return
	}
	keys := a.Cert.And(b.Cert).Indices(a.Width)
	verify := verifyPositions(a, b, keys)
	if len(keys) == 0 {
		for i := 0; i < a.rows; i++ {
			ra := a.Row(i)
			matched := false
			for j := 0; j < b.rows; j++ {
				if Compatible(ra, b.Row(j), verify) {
					matched = true
					break
				}
			}
			if matched == keep {
				out.Append(ra)
			}
		}
		return
	}
	if seq, ok := MergeJoinableOrders(a.Order, b.Order, keys); ok {
		j := 0
		for i := 0; i < a.rows; i++ {
			ra := a.Row(i)
			for j < b.rows && compareOn(b.Row(j), ra, seq) < 0 {
				j++
			}
			matched := false
			for y := j; y < b.rows && equalOn(b.Row(y), ra, seq); y++ {
				if Compatible(ra, b.Row(y), verify) {
					matched = true
					break
				}
			}
			if matched == keep {
				out.Append(ra)
			}
		}
		return
	}
	idx := buildHash(b, keys, hash)
	for i := 0; i < a.rows; i++ {
		ra := a.Row(i)
		matched := false
		for _, bj := range idx[hash(ra, keys)] {
			rb := b.Row(int(bj))
			if equalOn(ra, rb, keys) && Compatible(ra, rb, verify) {
				matched = true
				break
			}
		}
		if matched == keep {
			out.Append(ra)
		}
	}
}

// LeftJoin computes Ω1 ⟕ Ω2 = (Ω1 ⋈ Ω2) ∪bag (Ω1 \ Ω2): every left
// mapping joined with each compatible right mapping, or passed through
// unchanged when no right mapping is compatible.
func LeftJoin(a, b *Bag) *Bag { return LeftJoinCancel(a, b, nil) }

// LeftJoinCancel is LeftJoin with the cancellation probe of JoinCancel:
// a true return from stop aborts the fold, yielding a truncated bag for
// the caller to discard.
func LeftJoinCancel(a, b *Bag, stop func() bool) *Bag {
	return LeftJoinWith(a, b, JoinOpts{Stop: stop, Max: -1})
}

// LeftJoinWith is the fully-configurable left outer join: LeftJoinCancel
// plus the output cap and pulled-rows counter of JoinOpts. Physical
// operator choice mirrors JoinWith (merge when orders allow, keyed hash
// probe, nested loop without keys), except that the left side is always
// the outer side so unmatched left rows are emitted in place — which
// keeps emission deterministic and makes the capped output an exact
// prefix here too.
func LeftJoinWith(a, b *Bag, opts JoinOpts) *Bag {
	out := NewBag(a.Width)
	out.Cert = a.Cert.Clone() // right side only certain on matched rows
	out.Maybe = a.Maybe.Or(b.Maybe)
	if opts.Max == 0 {
		return out
	}
	lim := joinLimit{max: opts.Max}
	if opts.Pulled != nil {
		defer func() { *opts.Pulled += lim.pulled }()
	}
	if b.Len() == 0 {
		out.Order = slices.Clone(a.Order)
		if lim.max >= 0 && lim.max < a.Len() {
			lim.pulled += lim.max
			out.AppendAll(a.View(0, lim.max))
			return out
		}
		lim.pulled += a.Len()
		out.AppendAll(a)
		return out
	}
	if a.Len() == 0 {
		return out
	}
	keys := a.Cert.And(b.Cert).Indices(a.Width)
	verify := verifyPositions(a, b, keys)
	stopped := batchStop(opts.Stop)
	if len(keys) == 0 {
		out.Order = orderPrefixNotIn(a.Order, b.Maybe)
		for i := 0; i < a.rows; i++ {
			ra := a.Row(i)
			matched := false
			for j := 0; j < b.rows; j++ {
				lim.pulled++
				if Compatible(ra, b.Row(j), verify) {
					matched = true
					out.AppendMerged(ra, b.Row(j))
					if lim.full(out) {
						return out
					}
				}
				if stopped() {
					return out
				}
			}
			if !matched {
				out.Append(ra)
				if lim.full(out) {
					return out
				}
			}
			if stopped() {
				return out
			}
		}
		return out
	}
	if sa, sb, seq, ok := mergePlan(a, b, keys); ok {
		out.Order = mergedOrder(sa.Order, seq, sb.Maybe)
		mergeLeftJoin(out, sa, sb, seq, verify, stopped, &lim)
		return out
	}
	hashLeftJoin(out, a, b, keys, verify, stopped, hashKey, &lim)
	return out
}

// hashLeftJoin is the keyed-probe left outer join: b is bucketed on the
// keys and every a row probes it, passing through unmatched. Like
// hashJoin, the probe verifies key equality by comparison.
func hashLeftJoin(out *Bag, a, b *Bag, keys, verify []int, stopped func() bool, hash keyHashFn, lim *joinLimit) {
	out.Order = orderPrefixNotIn(a.Order, b.Maybe)
	idx := buildHash(b, keys, hash)
	lim.pulled += b.rows // the build pass reads every build row
	for i := 0; i < a.rows; i++ {
		ra := a.Row(i)
		lim.pulled++
		matched := false
		for _, bj := range idx[hash(ra, keys)] {
			rb := b.Row(int(bj))
			if equalOn(ra, rb, keys) && Compatible(ra, rb, verify) {
				matched = true
				out.AppendMerged(ra, rb)
				if lim.full(out) {
					return
				}
			}
			if stopped() {
				return
			}
		}
		if !matched {
			out.Append(ra)
			if lim.full(out) {
				return
			}
		}
		if stopped() {
			return
		}
	}
}

// mergeLeftJoin is the sort-merge left outer join: a single synchronized
// pass over both sorted operands that emits each left row's matches (or
// the row itself when none are compatible) in left-major order.
func mergeLeftJoin(out *Bag, a, b *Bag, seq, verify []int, stopped func() bool, lim *joinLimit) {
	j := 0
	i := 0
	for i < a.rows {
		ra := a.Row(i)
		for j < b.rows && compareOn(b.Row(j), ra, seq) < 0 {
			j++
			lim.pulled++
			if stopped() {
				return
			}
		}
		if j >= b.rows || compareOn(b.Row(j), ra, seq) > 0 {
			out.Append(ra)
			i++
			lim.pulled++
			if lim.full(out) {
				return
			}
			if stopped() {
				return
			}
			continue
		}
		i2, j2 := groupEnd(a, i, seq), groupEnd(b, j, seq)
		lim.pulled += (i2 - i) + (j2 - j)
		for x := i; x < i2; x++ {
			rx := a.Row(x)
			matched := false
			for y := j; y < j2; y++ {
				if Compatible(rx, b.Row(y), verify) {
					matched = true
					out.AppendMerged(rx, b.Row(y))
					if lim.full(out) {
						return
					}
				}
				if stopped() {
					return
				}
			}
			if !matched {
				out.Append(rx)
				if lim.full(out) {
					return
				}
			}
		}
		i, j = i2, j2
	}
}

// verifyPositions returns the variable positions on which two bags may
// share bindings, excluding the already-keyed positions (key equality is
// guaranteed separately by merge comparison or hash-probe equality).
func verifyPositions(a, b *Bag, keys []int) []int {
	shared := a.Maybe.And(b.Maybe)
	for _, k := range keys {
		// Clear key positions: equality is established by the join itself.
		shared[k/64] &^= 1 << (uint(k) % 64)
	}
	return shared.Indices(a.Width)
}

// keyHashFn buckets rows by their key columns. Production call sites
// pass hashKey; the collision-handling regression tests drive the hash
// operators with a degenerate constant hash instead, proving the
// probe-side equality checks keep the results correct regardless.
type keyHashFn = func(Row, []int) uint64

// buildHash buckets the bag's row indices by key hash.
func buildHash(b *Bag, keys []int, hash keyHashFn) map[uint64][]int32 {
	idx := make(map[uint64][]int32, b.rows)
	for i := 0; i < b.rows; i++ {
		h := hash(b.Row(i), keys)
		idx[h] = append(idx[h], int32(i))
	}
	return idx
}

// hashKey computes an FNV-1a hash of the key positions of a row.
func hashKey(r Row, keys []int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, k := range keys {
		v := uint64(r[k])
		for i := 0; i < 4; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	return h
}

// Project returns a bag keeping only the given variable positions bound;
// all other positions are cleared. Used by SELECT projection. The output
// arena is one allocation; the physical order survives up to the first
// dropped sort column.
func Project(b *Bag, keep []int) *Bag {
	keepBits := NewBits(b.Width)
	for _, k := range keep {
		keepBits.Set(k)
	}
	out := NewBag(b.Width)
	out.Cert = b.Cert.And(keepBits)
	out.Maybe = b.Maybe.And(keepBits)
	for _, p := range b.Order {
		if !keepBits.Has(p) {
			break
		}
		out.Order = append(out.Order, p)
	}
	out.data = make([]store.ID, b.rows*b.Width)
	out.rows = b.rows
	for i := 0; i < b.rows; i++ {
		base := i * b.Width
		for _, k := range keep {
			out.data[base+k] = b.data[base+k]
		}
	}
	return out
}

// Distinct removes duplicate mappings, keeping first occurrences. Rows
// are deduplicated by full-row hash with arena-comparison verification —
// no per-row key strings are materialized.
func Distinct(b *Bag) *Bag { return distinctWith(b, hashKey) }

func distinctWith(b *Bag, hash keyHashFn) *Bag {
	out := NewBag(b.Width)
	out.Cert = b.Cert.Clone()
	out.Maybe = b.Maybe.Clone()
	out.Order = slices.Clone(b.Order)
	all := allPositions(b.Width)
	seen := make(map[uint64][]int32, b.rows)
	for i := 0; i < b.rows; i++ {
		r := b.Row(i)
		h := hash(r, all)
		dup := false
		for _, j := range seen[h] {
			if compareRows(r, b.Row(int(j))) == 0 {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen[h] = append(seen[h], int32(i))
		out.Append(r)
	}
	return out
}

// allPositions returns [0, width).
func allPositions(width int) []int {
	out := make([]int, width)
	for i := range out {
		out[i] = i
	}
	return out
}

// BindingsOf returns the distinct non-None values of variable v across the
// bag, as a set. Used by candidate pruning (§6).
func BindingsOf(b *Bag, v int) map[store.ID]struct{} {
	return BindingsOfCapped(b, v, -1)
}

// BindingsOfCapped is BindingsOf with an early exit: once the set exceeds
// cap distinct values it returns nil, bounding the cost of probing large
// intermediate results for candidate sets that would be discarded anyway.
// cap < 0 means unlimited.
func BindingsOfCapped(b *Bag, v int, cap int) map[store.ID]struct{} {
	set := make(map[store.ID]struct{})
	for i := 0; i < b.rows; i++ {
		if id := b.data[i*b.Width+v]; id != store.None {
			set[id] = struct{}{}
			if cap >= 0 && len(set) > cap {
				return nil
			}
		}
	}
	return set
}
