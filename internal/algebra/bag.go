package algebra

import (
	"fmt"
	"iter"
	"slices"
	"sort"

	"sparqluo/internal/store"
)

// Bag is a multiset of mappings over a fixed variable width, stored as a
// flat columnar arena: one []store.ID holding the rows back to back with
// a stride of Width. A bag is a single allocation however many rows it
// holds, appends are contiguous copies, and row access is an index
// computation — no per-row slice headers.
//
// Order is the bag's physical-order property: the sequence of variable
// positions by which the rows are sorted lexicographically (store.None
// sorts first, as ID 0). A nil/empty Order promises nothing. Operators
// maintain Order where it is free to do so — pattern scans inherit the
// order of the permutation they read, merge joins emit key-grouped
// output — and the join operators dispatch to streaming sort-merge
// joins when both operands share a sorted prefix covering the certain
// join keys.
type Bag struct {
	Width int
	Cert  Bits  // variables bound in every row
	Maybe Bits  // variables bound in some row
	Order []int // physical sort sequence; rows ascend lexicographically by it

	data []store.ID // flat arena, len = rows*Width
	rows int
}

// NewBag returns an empty bag of the given width with no known bindings.
func NewBag(width int) *Bag {
	return &Bag{Width: width, Cert: NewBits(width), Maybe: NewBits(width)}
}

// Unit returns the bag containing the single empty mapping µ0, the
// identity of join.
func Unit(width int) *Bag {
	b := NewBag(width)
	b.data = make([]store.ID, width)
	b.rows = 1
	return b
}

// Len returns the number of mappings in the bag.
func (b *Bag) Len() int { return b.rows }

// Row returns row i as a view into the arena. The view stays valid
// across later appends only by accident of capacity; callers that
// append to b must not hold earlier views.
func (b *Bag) Row(i int) Row {
	lo := i * b.Width
	return Row(b.data[lo : lo+b.Width : lo+b.Width])
}

// All iterates the rows in physical order, yielding (index, row view).
func (b *Bag) All() iter.Seq2[int, Row] {
	return func(yield func(int, Row) bool) {
		for i := 0; i < b.rows; i++ {
			if !yield(i, b.Row(i)) {
				return
			}
		}
	}
}

// Grow reserves arena capacity for n additional rows.
func (b *Bag) Grow(n int) {
	b.data = slices.Grow(b.data, n*b.Width)
}

// Append copies one row into the arena. The caller is responsible for
// keeping Cert/Maybe/Order consistent; prefer the operator functions.
func (b *Bag) Append(r Row) {
	b.data = append(b.data, r...)
	b.rows++
}

// AppendMerged appends µ1 ∪ µ2 (assuming compatibility) directly into
// the arena: a contiguous copy of x overlaid with the bound slots of y,
// with no intermediate row allocation.
func (b *Bag) AppendMerged(x, y Row) {
	n := len(b.data)
	b.data = append(b.data, x...)
	m := b.data[n:]
	for i, v := range y {
		if v != store.None {
			m[i] = v
		}
	}
	b.rows++
}

// AppendAll bulk-copies every row of o into b's arena.
func (b *Bag) AppendAll(o *Bag) {
	b.data = append(b.data, o.data...)
	b.rows += o.rows
}

// TakeRows adopts o's arena as b's row storage (no copy). o must not be
// appended to afterwards; b's Cert/Maybe/Order are left untouched.
func (b *Bag) TakeRows(o *Bag) {
	b.data = o.data
	b.rows = o.rows
}

// View returns a zero-copy sub-bag of rows [lo, hi), sharing the arena.
// Metadata (Cert/Maybe/Order) is cloned; a contiguous slice of sorted
// rows keeps the sort. The view's capacity is clamped so appending to
// it reallocates instead of overwriting the parent's rows past hi.
func (b *Bag) View(lo, hi int) *Bag {
	return &Bag{
		Width: b.Width,
		Cert:  b.Cert.Clone(),
		Maybe: b.Maybe.Clone(),
		Order: slices.Clone(b.Order),
		data:  b.data[lo*b.Width : hi*b.Width : hi*b.Width],
		rows:  hi - lo,
	}
}

// SetColumn sets variable position col to id in every row — used to
// report a bound template parameter as a constant binding. If col is a
// sort column, the order claim survives through col itself (a constant
// ties everywhere) but later columns were only sorted within the old
// values of col, so the suffix is dropped.
func (b *Bag) SetColumn(col int, id store.ID) {
	for i := 0; i < b.rows; i++ {
		b.data[i*b.Width+col] = id
	}
	for i, p := range b.Order {
		if p == col {
			b.Order = b.Order[:i+1]
			break
		}
	}
}

// String renders the bag for debugging.
func (b *Bag) String() string {
	return fmt.Sprintf("Bag(width=%d, rows=%d)", b.Width, b.rows)
}

// compareOn lexicographically compares two rows on the given positions.
func compareOn(a, b Row, seq []int) int {
	for _, k := range seq {
		x, y := a[k], b[k]
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
	}
	return 0
}

// equalOn reports whether two rows agree on every given position.
func equalOn(a, b Row, seq []int) bool {
	for _, k := range seq {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}

// compareRows compares two full rows lexicographically over all slots.
func compareRows(a, b Row) int {
	for i := range a {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// SortBy returns a copy of b stably sorted by the given column sequence.
// The result's Order is seq extended with the surviving tail of b's own
// order: within a tie on seq the stable sort preserves b's row order,
// so positions of b.Order not in seq remain a valid sort suffix.
func SortBy(b *Bag, seq []int) *Bag {
	idx := make([]int, b.rows)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		return compareOn(b.Row(idx[x]), b.Row(idx[y]), seq) < 0
	})
	out := &Bag{
		Width: b.Width,
		Cert:  b.Cert.Clone(),
		Maybe: b.Maybe.Clone(),
		rows:  b.rows,
		data:  make([]store.ID, 0, b.rows*b.Width),
	}
	for _, i := range idx {
		out.data = append(out.data, b.Row(i)...)
	}
	out.Order = slices.Clone(seq)
	for _, p := range b.Order {
		if !slices.Contains(seq, p) {
			out.Order = append(out.Order, p)
		}
	}
	return out
}

// SortedBy reports whether the bag's rows actually ascend
// lexicographically by seq — the invariant Order claims. Test helper.
func (b *Bag) SortedBy(seq []int) bool {
	for i := 1; i < b.rows; i++ {
		if compareOn(b.Row(i-1), b.Row(i), seq) > 0 {
			return false
		}
	}
	return true
}

// keyPrefixCovers returns the longest prefix of ord consisting of
// distinct members of keys, and whether that prefix covers every key —
// the condition under which a bag sorted by ord can drive a merge join
// on keys. The prefix stops at the first position outside keys (or a
// repeat), since later sort columns are only meaningful within ties of
// the earlier ones.
func keyPrefixCovers(ord, keys []int) ([]int, bool) {
	var prefix []int
	for _, p := range ord {
		if !slices.Contains(keys, p) || slices.Contains(prefix, p) {
			break
		}
		prefix = append(prefix, p)
		if len(prefix) == len(keys) {
			break
		}
	}
	return prefix, len(prefix) == len(keys)
}

// orderPrefixNotIn returns the longest prefix of ord whose positions are
// all outside mask — the part of one operand's physical order that a
// join provably carries into its output when the other operand (whose
// Maybe is mask) cannot overwrite those slots.
func orderPrefixNotIn(ord []int, mask Bits) []int {
	var out []int
	for _, p := range ord {
		if mask.Has(p) {
			break
		}
		out = append(out, p)
	}
	return out
}

// mergedOrder is the output order of a merge join: the merge sequence
// itself, extended — when the a-side order actually starts with seq —
// by a-side sort columns the b side cannot perturb. Within one key
// group the join emits a-major, and rows sharing an a-row agree on
// every position outside b's Maybe, so the suffix claim holds.
func mergedOrder(aOrd, seq []int, bMaybe Bits) []int {
	out := slices.Clone(seq)
	if len(aOrd) < len(seq) || !slices.Equal(aOrd[:len(seq)], seq) {
		return out
	}
	return append(out, orderPrefixNotIn(aOrd[len(seq):], bMaybe)...)
}

// MergeJoinableOrders reports whether two physical orders allow a
// direct (no re-sort) merge join on the given certain key positions,
// and returns the shared merge sequence. Exported for the cost model,
// which prices merge-joinable steps below hash-join steps.
func MergeJoinableOrders(aOrd, bOrd, keys []int) ([]int, bool) {
	seqA, okA := keyPrefixCovers(aOrd, keys)
	seqB, okB := keyPrefixCovers(bOrd, keys)
	if okA && okB && slices.Equal(seqA, seqB) {
		return seqA, true
	}
	return nil, false
}

// sortedIndex returns the bag's row indices sorted by full-row compare.
func sortedIndex(b *Bag) []int {
	idx := make([]int, b.rows)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool {
		return compareRows(b.Row(idx[x]), b.Row(idx[y])) < 0
	})
	return idx
}

// MultisetEqual reports whether two bags are equal as multisets of
// mappings (row order irrelevant, duplicates significant). Rows are
// compared directly on the arenas — no per-row key materialization.
func MultisetEqual(a, b *Bag) bool {
	if a.Width != b.Width || a.rows != b.rows {
		return false
	}
	ia, ib := sortedIndex(a), sortedIndex(b)
	for k := range ia {
		if compareRows(a.Row(ia[k]), b.Row(ib[k])) != 0 {
			return false
		}
	}
	return true
}
