package lubm

import (
	"testing"

	"sparqluo/internal/rdf"
	"sparqluo/internal/store"
)

func TestDeterministic(t *testing.T) {
	a := Generate(DefaultConfig(2))
	b := Generate(DefaultConfig(2))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("triple %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestScalesWithUniversities(t *testing.T) {
	small := len(Generate(DefaultConfig(2)))
	large := len(Generate(DefaultConfig(6)))
	if large <= small*2 {
		t.Errorf("expected roughly linear growth: 2→%d, 6→%d", small, large)
	}
}

func TestAllTriplesValid(t *testing.T) {
	for _, tr := range Generate(DefaultConfig(2)) {
		if !tr.Valid() {
			t.Fatalf("invalid triple: %v", tr)
		}
	}
}

func TestQueryConstantsExist(t *testing.T) {
	st := store.New()
	st.AddAll(Generate(DefaultConfig(13)))
	st.Freeze()
	d := st.Dict()
	// IRIs referenced by the benchmark query catalog.
	constants := []string{
		"http://www.Department0.University0.edu/UndergraduateStudent31",
		"http://www.Department1.University0.edu/UndergraduateStudent3",
		"http://www.Department0.University0.edu/UndergraduateStudent26",
		"http://www.Department1.University0.edu/UndergraduateStudent6",
		"http://www.Department0.University0.edu",
		"http://www.Department0.University12.edu",
		"http://www.Department12.University0.edu", // q1.4's email references dept 12
	}
	for _, iri := range constants {
		if _, ok := d.Lookup(rdf.NewIRI(iri)); !ok {
			t.Errorf("constant %s missing from LUBM(13)", iri)
		}
	}
	// Literal constants.
	literals := []string{
		"UndergraduateStudent31@Department0.University0.edu",
		"UndergraduateStudent9@Department12.University0.edu",
	}
	for _, lit := range literals {
		if _, ok := d.Lookup(rdf.NewLiteral(lit)); !ok {
			t.Errorf("literal %q missing from LUBM(13)", lit)
		}
	}
}

func TestUniversity0HasThirteenDepartments(t *testing.T) {
	st := store.New()
	st.AddAll(Generate(DefaultConfig(1)))
	st.Freeze()
	d := st.Dict()
	if _, ok := d.Lookup(rdf.NewIRI("http://www.Department12.University0.edu")); !ok {
		t.Error("University0 must always have at least 13 departments")
	}
}

func TestPredicateVocabulary(t *testing.T) {
	st := store.New()
	st.AddAll(Generate(DefaultConfig(2)))
	st.Freeze()
	d := st.Dict()
	preds := []string{
		"headOf", "worksFor", "undergraduateDegreeFrom", "doctoralDegreeFrom",
		"mastersDegreeFrom", "publicationAuthor", "memberOf", "name",
		"emailAddress", "telephone", "teacherOf", "takesCourse",
		"teachingAssistantOf", "subOrganizationOf", "advisor", "researchInterest",
	}
	for _, p := range preds {
		if _, ok := d.Lookup(rdf.NewIRI(UB + p)); !ok {
			t.Errorf("predicate ub:%s never generated", p)
		}
	}
	if _, ok := d.Lookup(rdf.NewIRI(RDF + "type")); !ok {
		t.Error("rdf:type never generated")
	}
	classes := []string{
		"FullProfessor", "AssociateProfessor", "AssistantProfessor", "Lecturer",
		"UndergraduateStudent", "GraduateStudent", "Course", "GraduateCourse",
		"Department", "University", "Publication", "ResearchGroup",
	}
	for _, c := range classes {
		if _, ok := d.Lookup(rdf.NewIRI(UB + c)); !ok {
			t.Errorf("class ub:%s never generated", c)
		}
	}
}

// TestSelectivityContrast guards the property the experiments rely on:
// a department-anchored pattern is far more selective than emailAddress.
func TestSelectivityContrast(t *testing.T) {
	st := store.New()
	st.AddAll(Generate(DefaultConfig(5)))
	st.Freeze()
	d := st.Dict()
	email, _ := d.Lookup(rdf.NewIRI(UB + "emailAddress"))
	memberOf, _ := d.Lookup(rdf.NewIRI(UB + "memberOf"))
	dept0, _ := d.Lookup(rdf.NewIRI("http://www.Department0.University0.edu"))
	all := st.CountP(email)
	anchored := st.CountPO(memberOf, dept0)
	if anchored*10 > all {
		t.Errorf("selectivity contrast too weak: anchored=%d, emailAddress=%d", anchored, all)
	}
}
