// Package lubm generates synthetic LUBM-style RDF data (the Lehigh
// University Benchmark). It is a faithful schema-level replacement for
// the official Java generator: the entity hierarchy (universities →
// departments → professors / students / courses / publications), the
// predicate vocabulary the paper's queries touch, and the naming scheme
// of the query constants (e.g.
// <http://www.Department0.University0.edu/UndergraduateStudent91>) are
// preserved; absolute sizes are scaled down so the datasets stay
// laptop-sized while keeping the selectivity contrasts the experiments
// rely on.
//
// Generation is deterministic for a given Config (seeded PRNG).
package lubm

import (
	"fmt"
	"math/rand"

	"sparqluo/internal/rdf"
)

// Namespace IRIs.
const (
	UB  = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"
	RDF = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
)

// Config controls dataset shape. The zero value is not useful; start from
// DefaultConfig.
type Config struct {
	Universities int // scale factor; LUBM's "number of universities"
	Seed         int64

	// Per-department population. MinDepts..MaxDepts departments per
	// university (University0 always has at least 13 so the paper's
	// Department12 constants exist).
	MinDepts, MaxDepts int
	FullProfs          int
	AssocProfs         int
	AsstProfs          int
	Lecturers          int
	UndergradStudents  int
	GradStudents       int
	Courses            int
	GradCourses        int
	ResearchGroups     int
	PubsPerProf        int
}

// DefaultConfig returns the shape used by the experiment harness: a
// scaled-down LUBM with the same structure.
func DefaultConfig(universities int) Config {
	return Config{
		Universities:      universities,
		Seed:              42,
		MinDepts:          4,
		MaxDepts:          8,
		FullProfs:         3,
		AssocProfs:        3,
		AsstProfs:         3,
		Lecturers:         2,
		UndergradStudents: 40,
		GradStudents:      12,
		Courses:           10,
		GradCourses:       5,
		ResearchGroups:    3,
		PubsPerProf:       2,
	}
}

// Generate produces the dataset as a slice of triples.
func Generate(cfg Config) []rdf.Triple {
	g := &generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	g.run()
	return g.out
}

type generator struct {
	cfg cfg
	rng *rand.Rand
	out []rdf.Triple

	allUniversities []rdf.Term
}

// cfg aliases Config so methods read naturally.
type cfg = Config

func iri(s string) rdf.Term { return rdf.NewIRI(s) }

func (g *generator) emit(s rdf.Term, pred string, o rdf.Term) {
	g.out = append(g.out, rdf.Triple{S: s, P: iri(UB + pred), O: o})
}

func (g *generator) emitType(s rdf.Term, class string) {
	g.out = append(g.out, rdf.Triple{S: s, P: iri(RDF + "type"), O: iri(UB + class)})
}

func (g *generator) run() {
	for u := 0; u < g.cfg.Universities; u++ {
		g.allUniversities = append(g.allUniversities,
			iri(fmt.Sprintf("http://www.University%d.edu", u)))
	}
	for u := 0; u < g.cfg.Universities; u++ {
		g.university(u)
	}
}

func (g *generator) randUniversity() rdf.Term {
	return g.allUniversities[g.rng.Intn(len(g.allUniversities))]
}

func (g *generator) university(u int) {
	univ := g.allUniversities[u]
	g.emitType(univ, "University")
	g.emit(univ, "name", rdf.NewLiteral(fmt.Sprintf("University%d", u)))

	depts := g.cfg.MinDepts + g.rng.Intn(g.cfg.MaxDepts-g.cfg.MinDepts+1)
	if u == 0 && depts < 13 {
		// q1.4 references Department12.University0.edu.
		depts = 13
	}
	for d := 0; d < depts; d++ {
		g.department(u, d, univ)
	}
}

func (g *generator) department(u, d int, univ rdf.Term) {
	base := fmt.Sprintf("http://www.Department%d.University%d.edu", d, u)
	dept := iri(base)
	g.emitType(dept, "Department")
	g.emit(dept, "subOrganizationOf", univ)
	g.emit(dept, "name", rdf.NewLiteral(fmt.Sprintf("Department%d", d)))

	// Research groups.
	var groups []rdf.Term
	for i := 0; i < g.cfg.ResearchGroups; i++ {
		rg := iri(fmt.Sprintf("%s/ResearchGroup%d", base, i))
		g.emitType(rg, "ResearchGroup")
		g.emit(rg, "subOrganizationOf", dept)
		// Research groups are also sub-organizations of the university,
		// giving ?x subOrganizationOf ?y chains depth 2 (used by q1.3).
		g.emit(rg, "subOrganizationOf", univ)
		groups = append(groups, rg)
	}

	// Courses.
	var courses []rdf.Term
	for i := 0; i < g.cfg.Courses; i++ {
		c := iri(fmt.Sprintf("%s/Course%d", base, i))
		g.emitType(c, "Course")
		g.emit(c, "name", rdf.NewLiteral(fmt.Sprintf("Course%d", i)))
		courses = append(courses, c)
	}
	for i := 0; i < g.cfg.GradCourses; i++ {
		c := iri(fmt.Sprintf("%s/GraduateCourse%d", base, i))
		g.emitType(c, "GraduateCourse")
		g.emit(c, "name", rdf.NewLiteral(fmt.Sprintf("GraduateCourse%d", i)))
		courses = append(courses, c)
	}

	// Faculty.
	type facultyClass struct {
		class string
		count int
	}
	var faculty []rdf.Term
	for _, fc := range []facultyClass{
		{"FullProfessor", g.cfg.FullProfs},
		{"AssociateProfessor", g.cfg.AssocProfs},
		{"AssistantProfessor", g.cfg.AsstProfs},
		{"Lecturer", g.cfg.Lecturers},
	} {
		for i := 0; i < fc.count; i++ {
			f := iri(fmt.Sprintf("%s/%s%d", base, fc.class, i))
			g.emitType(f, fc.class)
			g.emit(f, "name", rdf.NewLiteral(fmt.Sprintf("%s%d", fc.class, i)))
			g.emit(f, "worksFor", dept)
			g.emit(f, "emailAddress", rdf.NewLiteral(
				fmt.Sprintf("%s%d@Department%d.University%d.edu", fc.class, i, d, u)))
			g.emit(f, "telephone", rdf.NewLiteral(fmt.Sprintf("xxx-xxx-%04d", g.rng.Intn(10000))))
			g.emit(f, "undergraduateDegreeFrom", g.randUniversity())
			g.emit(f, "mastersDegreeFrom", g.randUniversity())
			g.emit(f, "doctoralDegreeFrom", g.randUniversity())
			g.emit(f, "researchInterest", rdf.NewLiteral(fmt.Sprintf("Research%d", g.rng.Intn(30))))
			if len(courses) > 0 {
				g.emit(f, "teacherOf", courses[g.rng.Intn(len(courses))])
				g.emit(f, "teacherOf", courses[g.rng.Intn(len(courses))])
			}
			faculty = append(faculty, f)
		}
	}
	// The head of the department is the first full professor.
	if g.cfg.FullProfs > 0 {
		head := iri(fmt.Sprintf("%s/FullProfessor0", base))
		g.emit(head, "headOf", dept)
	}

	// Publications.
	for fi, f := range faculty {
		for p := 0; p < g.cfg.PubsPerProf; p++ {
			pub := iri(fmt.Sprintf("%s/Publication%d_%d", base, fi, p))
			g.emitType(pub, "Publication")
			g.emit(pub, "publicationAuthor", f)
			g.emit(pub, "name", rdf.NewLiteral(fmt.Sprintf("Publication%d_%d", fi, p)))
		}
	}

	// Undergraduate students.
	for i := 0; i < g.cfg.UndergradStudents; i++ {
		s := iri(fmt.Sprintf("%s/UndergraduateStudent%d", base, i))
		g.emitType(s, "UndergraduateStudent")
		g.emit(s, "name", rdf.NewLiteral(fmt.Sprintf("UndergraduateStudent%d", i)))
		g.emit(s, "memberOf", dept)
		g.emit(s, "emailAddress", rdf.NewLiteral(
			fmt.Sprintf("UndergraduateStudent%d@Department%d.University%d.edu", i, d, u)))
		g.emit(s, "telephone", rdf.NewLiteral(fmt.Sprintf("yyy-yyy-%04d", g.rng.Intn(10000))))
		for k := 0; k < 2; k++ {
			if len(courses) > 0 {
				g.emit(s, "takesCourse", courses[g.rng.Intn(len(courses))])
			}
		}
		if len(faculty) > 0 && g.rng.Intn(5) == 0 {
			g.emit(s, "advisor", faculty[g.rng.Intn(len(faculty))])
		}
		g.emit(s, "undergraduateDegreeFrom", g.randUniversity())
	}

	// Graduate students.
	for i := 0; i < g.cfg.GradStudents; i++ {
		s := iri(fmt.Sprintf("%s/GraduateStudent%d", base, i))
		g.emitType(s, "GraduateStudent")
		g.emit(s, "name", rdf.NewLiteral(fmt.Sprintf("GraduateStudent%d", i)))
		g.emit(s, "memberOf", dept)
		g.emit(s, "emailAddress", rdf.NewLiteral(
			fmt.Sprintf("GraduateStudent%d@Department%d.University%d.edu", i, d, u)))
		g.emit(s, "undergraduateDegreeFrom", g.randUniversity())
		for k := 0; k < 2; k++ {
			if len(courses) > 0 {
				g.emit(s, "takesCourse", courses[g.rng.Intn(len(courses))])
			}
		}
		if len(faculty) > 0 {
			g.emit(s, "advisor", faculty[g.rng.Intn(len(faculty))])
		}
		// Some grad students TA a course they could also take.
		if len(courses) > 0 && g.rng.Intn(2) == 0 {
			g.emit(s, "teachingAssistantOf", courses[g.rng.Intn(len(courses))])
		}
		// Some co-author a publication with faculty.
		if g.rng.Intn(3) == 0 && len(faculty) > 0 {
			pub := iri(fmt.Sprintf("%s/StudentPublication%d", base, i))
			g.emitType(pub, "Publication")
			g.emit(pub, "publicationAuthor", s)
			g.emit(pub, "publicationAuthor", faculty[g.rng.Intn(len(faculty))])
		}
	}
}
