package core

import (
	"math/rand"
	"strconv"
	"testing"

	"sparqluo/internal/algebra"
	"sparqluo/internal/exec"
	"sparqluo/internal/qgen"
	"sparqluo/internal/sparql"
	"sparqluo/internal/store"
)

// randomStore builds a store over a random dataset.
func randomStore(rng *rand.Rand, n int) *store.Store {
	st := store.New()
	st.AddAll(qgen.RandomDataset(rng, n))
	st.Freeze()
	return st
}

// TestPropertyStrategyEquivalence is the repo's central property test: on
// random datasets and random SPARQL-UO queries, all four strategies under
// both engines must produce identical solution bags. This exercises
// Theorems 1 and 2 (the transformations), the soundness of candidate
// pruning, and the two engines' BGP semantics, in one property.
func TestPropertyStrategyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		st := randomStore(rng, 60+rng.Intn(120))
		text := qgen.RandomQuery(rng, qgen.DefaultConfig())
		q, err := sparql.Parse(text)
		if err != nil {
			t.Fatalf("trial %d: generated query does not parse: %v\n%s", trial, err, text)
		}
		var ref *algebra.Bag
		var refName string
		for _, engine := range []exec.Engine{exec.WCOEngine{}, exec.BinaryJoinEngine{}} {
			for _, strat := range Strategies {
				res, err := Run(q, st, engine, strat)
				if err != nil {
					t.Fatalf("trial %d: %s/%s: %v\n%s", trial, engine.Name(), strat, err, text)
				}
				if ref == nil {
					ref, refName = res.Bag, engine.Name()+"/"+strat.String()
					continue
				}
				if !algebra.MultisetEqual(ref, res.Bag) {
					t.Fatalf("trial %d: %s/%s (%d rows) != %s (%d rows)\nquery: %s\nplan:\n%s",
						trial, engine.Name(), strat, res.Bag.Len(), refName, ref.Len(), text, res.Tree)
				}
			}
		}
	}
}

// TestPropertyTransformPreservesSemantics applies the transformer
// directly (no pruning, no skip heuristics) and checks the evaluation
// result is bag-identical to the untransformed tree, on random inputs.
func TestPropertyTransformPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		st := randomStore(rng, 50+rng.Intn(100))
		text := qgen.RandomQuery(rng, qgen.DefaultConfig())
		q, err := sparql.Parse(text)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		tree, err := Build(q, st)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		engine := exec.WCOEngine{}
		before, _ := Evaluate(tree, st, engine, Pruning{})

		work := tree.Clone()
		tr := NewTransformer(st, engine)
		n := tr.Transform(work)
		if err := work.Validate(); err != nil {
			t.Fatalf("trial %d: transformed tree invalid after %d transformations: %v\n%s",
				trial, n, err, work)
		}
		after, _ := Evaluate(work, st, engine, Pruning{})
		if !algebra.MultisetEqual(before, after) {
			t.Fatalf("trial %d: transformation changed semantics (%d → %d rows, %d transformations)\nquery: %s\nbefore:\n%s\nafter:\n%s",
				trial, before.Len(), after.Len(), n, text, tree, work)
		}
	}
}

// TestPropertyCandidatePruningSound checks candidate pruning alone (both
// threshold styles) against unpruned evaluation on random inputs.
func TestPropertyCandidatePruningSound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		st := randomStore(rng, 50+rng.Intn(100))
		text := qgen.RandomQuery(rng, qgen.DefaultConfig())
		q, err := sparql.Parse(text)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		tree, err := Build(q, st)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		engine := exec.BinaryJoinEngine{}
		plain, _ := Evaluate(tree, st, engine, Pruning{})
		for _, prune := range []Pruning{
			{Enabled: true, FixedThreshold: 5},
			{Enabled: true, FixedThreshold: 1 << 20},
			{Enabled: true, Adaptive: true},
		} {
			pruned, _ := Evaluate(tree, st, engine, prune)
			if !algebra.MultisetEqual(plain, pruned) {
				t.Fatalf("trial %d: pruning %+v changed semantics (%d → %d rows)\nquery: %s",
					trial, prune, plain.Len(), pruned.Len(), text)
			}
		}
	}
}

// TestTheorem1UnionDistributivity checks Theorem 1 directly at the
// algebra level: [[P1 AND (P2 UNION P3)]] = [[(P1 AND P2) UNION (P1 AND P3)]]
// for random BGPs over random data.
func TestTheorem1UnionDistributivity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		st := randomStore(rng, 40+rng.Intn(80))
		p1, p2, p3 := randTP(rng), randTP(rng), randTP(rng)
		lhs := "SELECT * WHERE { " + p1 + " { " + p2 + " } UNION { " + p3 + " } }"
		rhs := "SELECT * WHERE { { " + p1 + " " + p2 + " } UNION { " + p1 + " " + p3 + " } }"
		a := mustEval(t, st, lhs)
		b := mustEval(t, st, rhs)
		if !algebra.MultisetEqual(a, b) {
			t.Fatalf("trial %d: Theorem 1 violated (%d vs %d rows)\nlhs: %s\nrhs: %s",
				trial, a.Len(), b.Len(), lhs, rhs)
		}
	}
}

// TestTheorem2OptionalAbsorption checks Theorem 2 directly:
// [[P1 OPTIONAL P2]] = [[P1 OPTIONAL (P1 AND P2)]].
func TestTheorem2OptionalAbsorption(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		st := randomStore(rng, 40+rng.Intn(80))
		p1, p2 := randTP(rng), randTP(rng)
		lhs := "SELECT * WHERE { " + p1 + " OPTIONAL { " + p2 + " } }"
		rhs := "SELECT * WHERE { " + p1 + " OPTIONAL { " + p1 + " " + p2 + " } }"
		a := mustEval(t, st, lhs)
		b := mustEval(t, st, rhs)
		if !algebra.MultisetEqual(a, b) {
			t.Fatalf("trial %d: Theorem 2 violated (%d vs %d rows)\nlhs: %s\nrhs: %s",
				trial, a.Len(), b.Len(), lhs, rhs)
		}
	}
}

// randTP emits one random triple pattern as text (variables shared across
// calls by construction of the tiny variable space).
func randTP(rng *rand.Rand) string {
	pos := func(kind int) string {
		switch {
		case rng.Intn(3) == 0 && kind != 1:
			return "<http://ex.org/s" + itoa(rng.Intn(12)) + ">"
		case kind == 1 && rng.Intn(8) != 0:
			return "<http://ex.org/p" + itoa(rng.Intn(5)) + ">"
		default:
			return "?v" + itoa(rng.Intn(6))
		}
	}
	return pos(0) + " " + pos(1) + " " + pos(2) + " . "
}

func itoa(n int) string { return strconv.Itoa(n) }

func mustEval(t *testing.T, st *store.Store, text string) *algebra.Bag {
	t.Helper()
	q, err := sparql.Parse(text)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	res, err := Run(q, st, exec.WCOEngine{}, Base)
	if err != nil {
		t.Fatalf("eval %q: %v", text, err)
	}
	return res.Bag
}
