// Package core implements the paper's primary contribution: the BGP-based
// Evaluation tree (BE-tree, Definition 8) plan representation for
// SPARQL-UO queries, its semantics-preserving merge and inject
// transformations (Definitions 9–10, Theorems 1–2), the cost model of
// §5.1 (Equations 1–8), the cost-driven greedy plan selection of §5.2
// (Algorithms 2–4), the BGP-based evaluation scheme (Algorithm 1), and the
// query-time candidate pruning optimization of §6.
package core

import (
	"fmt"
	"strings"

	"sparqluo/internal/algebra"
	"sparqluo/internal/exec"
	"sparqluo/internal/sparql"
	"sparqluo/internal/store"
)

// Node is a BE-tree node. The concrete types mirror Definition 8:
// GroupNode (group graph pattern), BGPNode (leaf), UnionNode and
// OptionalNode (operator nodes).
type Node interface {
	isNode()
	clone() Node
}

// GroupNode is a group graph pattern node; its children are evaluated in
// order and combined by implicit AND (joins), with UNION and OPTIONAL
// children applying their respective operators (Algorithm 1).
type GroupNode struct {
	Children []Node
}

// BGPNode is a leaf: a maximal basic graph pattern. Src keeps the source
// triple patterns for display; Enc is the dictionary-encoded form the
// engines execute.
type BGPNode struct {
	Src []sparql.TriplePattern
	Enc exec.BGP

	// estCard/estCost memoize the engine's estimates (estValid guards).
	estCard, estCost float64
	estValid         bool
}

// UnionNode links two or more UNION'ed group graph patterns.
type UnionNode struct {
	Branches []*GroupNode
}

// OptionalNode holds the OPTIONAL-right group graph pattern; the
// OPTIONAL-left pattern is implicitly everything before it in the parent.
type OptionalNode struct {
	Right *GroupNode
}

func (*GroupNode) isNode()    {}
func (*BGPNode) isNode()      {}
func (*UnionNode) isNode()    {}
func (*OptionalNode) isNode() {}

func (g *GroupNode) clone() Node {
	c := &GroupNode{Children: make([]Node, len(g.Children))}
	for i, ch := range g.Children {
		c.Children[i] = ch.clone()
	}
	return c
}

func (b *BGPNode) clone() Node {
	c := &BGPNode{
		Src: append([]sparql.TriplePattern(nil), b.Src...),
		Enc: append(exec.BGP(nil), b.Enc...),
	}
	c.estCard, c.estCost, c.estValid = b.estCard, b.estCost, b.estValid
	return c
}

func (u *UnionNode) clone() Node {
	c := &UnionNode{Branches: make([]*GroupNode, len(u.Branches))}
	for i, br := range u.Branches {
		c.Branches[i] = br.clone().(*GroupNode)
	}
	return c
}

func (o *OptionalNode) clone() Node {
	return &OptionalNode{Right: o.Right.clone().(*GroupNode)}
}

// Tree is a BE-tree together with the query-level variable table,
// projection list and solution modifiers.
type Tree struct {
	Root     *GroupNode
	Vars     *algebra.VarSet
	Select   []string
	Distinct bool
	// OrderBy holds the requested sort keys as variable positions, in
	// significance order; empty means no requested order.
	OrderBy []algebra.SortKey
	Limit   int // -1 = unlimited
	Offset  int
}

// Clone deep-copies the tree (sharing the variable table, which is
// immutable after construction).
func (t *Tree) Clone() *Tree {
	return &Tree{
		Root:     t.Root.clone().(*GroupNode),
		Vars:     t.Vars,
		Select:   t.Select,
		Distinct: t.Distinct,
		OrderBy:  t.OrderBy,
		Limit:    t.Limit,
		Offset:   t.Offset,
	}
}

// Build constructs the BE-tree of a parsed query against a store's
// dictionary: triple patterns are encoded, sibling triple patterns are
// coalesced into maximal BGP nodes (Definitions 3–5), and each BGP node is
// placed where its leftmost constituent triple pattern originally resided.
func Build(q *sparql.Query, st store.Reader) (*Tree, error) {
	t := &Tree{
		Vars:     algebra.NewVarSet(),
		Select:   q.Select,
		Distinct: q.Distinct,
		Limit:    q.Limit,
		Offset:   q.Offset,
	}
	root, err := buildGroup(q.Where, st, t.Vars)
	if err != nil {
		return nil, err
	}
	t.Root = root
	for _, v := range q.Select {
		if _, ok := t.Vars.Lookup(v); !ok {
			// Projection of a variable that never occurs: legal SPARQL,
			// always unbound. Intern it so rows have a slot.
			t.Vars.Intern(v)
		}
	}
	for _, k := range q.OrderBy {
		// Sorting on a variable that never occurs is legal: every row
		// carries None there, so the key ties everywhere. Intern it so
		// the key has a slot. A repeated variable keeps its first
		// occurrence — later mentions compare equal and can never break
		// a tie.
		col := t.Vars.Intern(k.Var)
		dup := false
		for _, have := range t.OrderBy {
			if have.Col == col {
				dup = true
				break
			}
		}
		if !dup {
			t.OrderBy = append(t.OrderBy, algebra.SortKey{Col: col, Desc: k.Desc})
		}
	}
	return t, nil
}

func buildGroup(g *sparql.Group, st store.Reader, vars *algebra.VarSet) (*GroupNode, error) {
	node := &GroupNode{}
	for _, e := range g.Elements {
		switch e := e.(type) {
		case sparql.TriplePattern:
			enc := encodePattern(e, st, vars)
			node.Children = append(node.Children, &BGPNode{
				Src: []sparql.TriplePattern{e},
				Enc: exec.BGP{enc},
			})
		case *sparql.Group:
			sub, err := buildGroup(e, st, vars)
			if err != nil {
				return nil, err
			}
			node.Children = append(node.Children, sub)
		case *sparql.Union:
			if len(e.Branches) < 2 {
				return nil, fmt.Errorf("core: UNION node needs ≥2 branches")
			}
			u := &UnionNode{}
			for _, br := range e.Branches {
				sub, err := buildGroup(br, st, vars)
				if err != nil {
					return nil, err
				}
				u.Branches = append(u.Branches, sub)
			}
			node.Children = append(node.Children, u)
		case *sparql.Optional:
			sub, err := buildGroup(e.Group, st, vars)
			if err != nil {
				return nil, err
			}
			node.Children = append(node.Children, &OptionalNode{Right: sub})
		default:
			return nil, fmt.Errorf("core: unknown element type %T", e)
		}
	}
	coalesceSiblings(node)
	return node, nil
}

func encodePattern(tp sparql.TriplePattern, st store.Reader, vars *algebra.VarSet) exec.Pattern {
	enc := func(tv sparql.TermOrVar) exec.Pos {
		if tv.IsVar {
			return exec.Var(vars.Intern(tv.Var))
		}
		id, _ := st.Dict().Lookup(tv.Term) // 0 (None) when absent → impossible pattern
		return exec.Const(id)
	}
	return exec.Pattern{S: enc(tp.S), P: enc(tp.P), O: enc(tp.O)}
}

// coalesceSiblings merges sibling BGP nodes into maximal BGPs: any two
// sibling BGP nodes that are coalescable (share a subject/object variable,
// Definition 4) are unioned, transitively, until no further coalescing is
// possible. Each merged node is placed at the position of its leftmost
// constituent.
func coalesceSiblings(g *GroupNode) {
	for {
		i, j := findCoalescablePair(g.Children)
		if i < 0 {
			return
		}
		a := g.Children[i].(*BGPNode)
		b := g.Children[j].(*BGPNode)
		a.Src = append(a.Src, b.Src...)
		a.Enc = append(a.Enc, b.Enc...)
		a.estValid = false
		g.Children = append(g.Children[:j], g.Children[j+1:]...)
	}
}

func findCoalescablePair(children []Node) (int, int) {
	for i := 0; i < len(children); i++ {
		a, ok := children[i].(*BGPNode)
		if !ok {
			continue
		}
		for j := i + 1; j < len(children); j++ {
			b, ok := children[j].(*BGPNode)
			if !ok {
				continue
			}
			if bgpCoalescable(a.Enc, b.Enc) {
				return i, j
			}
		}
	}
	return -1, -1
}

// bgpCoalescable implements Definition 4 on encoded BGPs: some pair of
// constituent patterns shares a subject/object variable.
func bgpCoalescable(a, b exec.BGP) bool {
	av := map[int]bool{}
	for _, p := range a {
		for _, v := range subjObjVarIdx(p) {
			av[v] = true
		}
	}
	for _, p := range b {
		for _, v := range subjObjVarIdx(p) {
			if av[v] {
				return true
			}
		}
	}
	return false
}

func subjObjVarIdx(p exec.Pattern) []int {
	var out []int
	if p.S.IsVar {
		out = append(out, p.S.Var)
	}
	if p.O.IsVar && (!p.S.IsVar || p.O.Var != p.S.Var) {
		out = append(out, p.O.Var)
	}
	return out
}

// CountBGP returns the number of BGP leaf nodes of the tree (the paper's
// Count_BGP(Q) metric, §7.1).
func (t *Tree) CountBGP() int { return countBGP(t.Root) }

func countBGP(n Node) int {
	switch n := n.(type) {
	case *BGPNode:
		return 1
	case *GroupNode:
		c := 0
		for _, ch := range n.Children {
			c += countBGP(ch)
		}
		return c
	case *UnionNode:
		c := 0
		for _, br := range n.Branches {
			c += countBGP(br)
		}
		return c
	case *OptionalNode:
		return countBGP(n.Right)
	}
	return 0
}

// Depth returns the maximum nesting depth of group graph patterns (the
// paper's Depth(Q) metric, §7.1). The outermost group contributes 1.
func (t *Tree) Depth() int { return depthOf(t.Root) }

func depthOf(n Node) int {
	switch n := n.(type) {
	case *BGPNode:
		return 0
	case *GroupNode:
		max := 0
		for _, ch := range n.Children {
			if d := depthOf(ch); d > max {
				max = d
			}
		}
		return max + 1
	case *UnionNode:
		max := 0
		for _, br := range n.Branches {
			if d := depthOf(br); d > max {
				max = d
			}
		}
		return max
	case *OptionalNode:
		return depthOf(n.Right)
	}
	return 0
}

// Validate checks the structural invariants of Definition 8: UNION nodes
// have ≥2 group children, OPTIONAL nodes exactly one, BGP nodes are
// non-empty, and BGP siblings are maximal (no coalescable pair remains).
func (t *Tree) Validate() error { return validate(t.Root) }

func validate(n Node) error {
	switch n := n.(type) {
	case *BGPNode:
		if len(n.Enc) == 0 {
			return fmt.Errorf("core: empty BGP node")
		}
	case *GroupNode:
		if i, j := findCoalescablePair(n.Children); i >= 0 {
			return fmt.Errorf("core: non-maximal BGP siblings at %d,%d", i, j)
		}
		for _, ch := range n.Children {
			if err := validate(ch); err != nil {
				return err
			}
		}
	case *UnionNode:
		if len(n.Branches) < 2 {
			return fmt.Errorf("core: UNION node with %d branches", len(n.Branches))
		}
		for _, br := range n.Branches {
			if err := validate(br); err != nil {
				return err
			}
		}
	case *OptionalNode:
		if n.Right == nil {
			return fmt.Errorf("core: OPTIONAL node without child")
		}
		return validate(n.Right)
	}
	return nil
}

// String renders the tree for plan inspection.
func (t *Tree) String() string {
	var b strings.Builder
	writeNode(&b, t.Root, 0, t)
	return b.String()
}

func writeNode(b *strings.Builder, n Node, depth int, t *Tree) {
	ind := strings.Repeat("  ", depth)
	switch n := n.(type) {
	case *GroupNode:
		b.WriteString(ind + "Group\n")
		for _, ch := range n.Children {
			writeNode(b, ch, depth+1, t)
		}
	case *BGPNode:
		fmt.Fprintf(b, "%sBGP (%d patterns)\n", ind, len(n.Enc))
		for _, tp := range n.Src {
			b.WriteString(ind + "  " + tp.String() + "\n")
		}
	case *UnionNode:
		b.WriteString(ind + "UNION\n")
		for _, br := range n.Branches {
			writeNode(b, br, depth+1, t)
		}
	case *OptionalNode:
		b.WriteString(ind + "OPTIONAL\n")
		writeNode(b, n.Right, depth+1, t)
	}
}
