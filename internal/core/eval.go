package core

import (
	"context"
	"runtime"
	"sync"

	"sparqluo/internal/algebra"
	"sparqluo/internal/exec"
	"sparqluo/internal/store"
)

// Pruning configures the candidate pruning optimization of §6.
type Pruning struct {
	// Enabled turns candidate pruning on.
	Enabled bool
	// FixedThreshold, when > 0, is an absolute cap on candidate set
	// sizes (the CP approach uses 1% of the number of triples).
	FixedThreshold int
	// Adaptive, when true, uses the BGP result-size estimate produced by
	// the cost model as the per-BGP threshold whenever available (the
	// full approach); FixedThreshold is the fallback.
	Adaptive bool
}

// EvalStats collects instrumentation from one evaluation.
type EvalStats struct {
	// BGPResults records the materialized result size of every BGP node
	// evaluation, in evaluation order. Feeds the join space metric.
	BGPResults []int
	// bgpSizes maps BGP nodes to their last materialized size.
	bgpSizes map[*BGPNode]int
	// PrunedBGPs counts BGP evaluations that ran with a candidate set.
	PrunedBGPs int
	// RowsPulled counts the operand/index rows drawn by the engines and
	// the final capped operators — the work metric that shrinks when
	// LIMIT push-down terminates early.
	RowsPulled int
}

func newEvalStats() *EvalStats {
	return &EvalStats{bgpSizes: make(map[*BGPNode]int)}
}

// merge folds a branch's instrumentation into s. Branch stats are merged
// in sibling order by the evaluator, so BGPResults ends up in the exact
// order a sequential depth-first evaluation would have produced.
func (s *EvalStats) merge(o *EvalStats) {
	s.BGPResults = append(s.BGPResults, o.BGPResults...)
	s.PrunedBGPs += o.PrunedBGPs
	s.RowsPulled += o.RowsPulled
	for n, sz := range o.bgpSizes {
		s.bgpSizes[n] = sz
	}
}

// evaluator runs Algorithm 1 (optionally augmented with candidate
// pruning) over a BE-tree. Sibling UNION branches and OPTIONAL subtrees
// are fanned out over a bounded worker pool when one is configured; each
// concurrent branch writes into its own EvalStats, merged deterministically
// by the spawning goroutine.
type evaluator struct {
	ctx    context.Context
	st     store.Reader
	engine exec.Engine
	width  int
	prune  Pruning
	stats  *EvalStats
	// sem holds the worker-pool tokens shared by the whole evaluation
	// (capacity parallelism-1: the spawning goroutine is itself a
	// worker). nil means fully sequential. Acquisition never blocks — a
	// branch that cannot get a token runs inline on the current
	// goroutine — so nested fan-out cannot deadlock the pool.
	sem chan struct{}
}

// branch returns a child evaluator sharing the pool and context but
// collecting into fresh stats, for one concurrently-evaluated subtree.
func (ev *evaluator) branch() *evaluator {
	sub := *ev
	sub.stats = newEvalStats()
	return &sub
}

// Evaluate runs the BGP-based evaluation scheme (Algorithm 1) on the tree
// and returns the bag of solution mappings plus instrumentation. The
// SELECT projection is applied (and DISTINCT if requested). Evaluation is
// sequential and non-cancellable; it is the legacy entry point kept for
// the experiment harness and tests, equivalent to EvaluateContext with a
// background context and parallelism 1.
func Evaluate(t *Tree, st store.Reader, engine exec.Engine, prune Pruning) (*algebra.Bag, *EvalStats) {
	bag, stats, _ := EvaluateContext(context.Background(), t, st, engine, prune, 1)
	return bag, stats
}

// EvaluateContext runs Algorithm 1 on the tree, evaluating sibling UNION
// branches and OPTIONAL subtrees concurrently on a bounded worker pool of
// the given size (<= 0 selects GOMAXPROCS; 1 is sequential). Per-branch
// bags and stats are merged in sibling order, so the returned bag's row
// order and the instrumentation are identical to a sequential run.
//
// The context is observed between node evaluations and inside the
// engines' join loops: when it is cancelled or its deadline passes,
// evaluation stops promptly and ctx.Err() is returned.
func EvaluateContext(ctx context.Context, t *Tree, st store.Reader, engine exec.Engine, prune Pruning, parallelism int) (*algebra.Bag, *EvalStats, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	ev := &evaluator{
		ctx:    ctx,
		st:     st,
		engine: engine,
		width:  t.Vars.Len(),
		prune:  prune,
		stats:  newEvalStats(),
	}
	if parallelism > 1 {
		ev.sem = make(chan struct{}, parallelism-1)
	}
	res := ev.groupTop(t.Root, nil, rootCap(t))
	if err := ctx.Err(); err != nil {
		return nil, ev.stats, err
	}
	// W3C modifier order: ORDER BY applies to the full solution sequence
	// before projection (Project zeroes dropped columns, which would
	// destroy the sort keys), then DISTINCT keeps first occurrences of
	// the sorted sequence, then the OFFSET/LIMIT slice.
	if len(t.OrderBy) > 0 {
		res = applyOrder(res, t.OrderBy, t.Distinct, t.Offset, t.Limit)
	}
	if len(t.Select) > 0 {
		keep := make([]int, 0, len(t.Select))
		for _, name := range t.Select {
			if i, ok := t.Vars.Lookup(name); ok {
				keep = append(keep, i)
			}
		}
		res = algebra.Project(res, keep)
	}
	if t.Distinct {
		res = algebra.Distinct(res)
	}
	res = applySlice(res, t.Offset, t.Limit)
	return res, ev.stats, nil
}

// rootCap returns the row count after which the root group may stop
// producing, or -1 when early termination is unsound: DISTINCT shrinks
// the sequence and ORDER BY reorders it, so under either the full result
// is needed (ORDER BY instead terminates early through TopK).
func rootCap(t *Tree) int {
	if t.Limit < 0 || t.Distinct || len(t.OrderBy) > 0 {
		return -1
	}
	off := t.Offset
	if off < 0 {
		off = 0
	}
	return off + t.Limit
}

// applyOrder implements ORDER BY: free when the bag's physical order
// already covers the keys, a bounded-heap top-k when a LIMIT window
// means only the first offset+limit sorted rows survive (unsound under
// DISTINCT, which dedups before slicing), and a full stable sort
// otherwise. All three paths yield byte-identical prefixes.
func applyOrder(b *algebra.Bag, keys []algebra.SortKey, distinct bool, offset, limit int) *algebra.Bag {
	if algebra.OrderCoversKeys(b.Order, keys) {
		return b
	}
	if limit >= 0 && !distinct {
		if offset < 0 {
			offset = 0
		}
		if k := offset + limit; k < b.Len() {
			return algebra.TopK(b, keys, k)
		}
	}
	return algebra.SortByKeys(b, keys)
}

// applySlice implements the OFFSET and LIMIT solution modifiers as a
// zero-copy view of the result arena.
func applySlice(b *algebra.Bag, offset, limit int) *algebra.Bag {
	if offset <= 0 && limit < 0 {
		return b
	}
	if offset < 0 {
		offset = 0
	}
	if offset > b.Len() {
		offset = b.Len()
	}
	end := b.Len()
	if limit >= 0 && offset+limit < end {
		end = offset + limit
	}
	return b.View(offset, end)
}

// group evaluates a group graph pattern node. incoming carries the
// parent's current partial results for candidate derivation (§6); it does
// not participate in the join (the caller joins afterwards).
//
// Following the paper's operator precedence ({} ≺ UNION ≺ AND ≺ OPTIONAL,
// §3) — which its own BE-tree construction presumes when it coalesces
// triple patterns across an OPTIONAL (Figure 5: t1 and t6) — the group's
// required children (BGPs, UNIONs, nested groups) are joined first, in
// order, and the OPTIONAL children are then left-outer-joined, in order.
// For well-designed patterns this coincides with the W3C left-to-right
// fold; for non-well-designed ones it is the Pérez-style semantics the
// paper's Theorems 1–2 assume.
func (ev *evaluator) group(g *GroupNode, incoming *algebra.Bag) *algebra.Bag {
	return ev.groupTop(g, incoming, -1)
}

// groupTop is group with LIMIT push-down: max >= 0 allows the single
// operation that produces the group's returned bag — and only that one —
// to stop after max rows. Every upstream child still evaluates fully
// (intermediate bags feed joins and candidate derivation), and every
// capped operator emits a deterministic prefix of its uncapped output,
// so the truncated group result is byte-identical to the full result's
// first max rows at any parallelism.
func (ev *evaluator) groupTop(g *GroupNode, incoming *algebra.Bag, max int) *algebra.Bag {
	if ev.ctx.Err() != nil {
		return algebra.NewBag(ev.width) // discarded: caller reports ctx.Err()
	}
	// Locate the final producing operation: the last left join when
	// OPTIONALs exist, otherwise the operation folding in the last
	// required child.
	lastReq := -1
	hasOpt := false
	for i, child := range g.Children {
		if _, ok := child.(*OptionalNode); ok {
			hasOpt = true
		} else {
			lastReq = i
		}
	}
	childCap := func(i int) int {
		if max >= 0 && !hasOpt && i == lastReq {
			return max
		}
		return -1
	}
	var r *algebra.Bag
	var optionals []*OptionalNode
	for i, child := range g.Children {
		switch child := child.(type) {
		case *GroupNode:
			var o *algebra.Bag
			if cap := childCap(i); cap >= 0 && r == nil {
				// The subgroup's bag IS the result: push the cap down.
				o = ev.groupTop(child, pickContext(r, incoming), cap)
			} else {
				o = ev.group(child, pickContext(r, incoming))
			}
			r = ev.joinWithTop(r, o, childCap(i))
		case *BGPNode:
			cand := ev.deriveCandidates(child, r, incoming)
			engineCap := -1
			if cap := childCap(i); cap >= 0 && r == nil {
				// The BGP's bag IS the result: the engine stops early.
				engineCap = cap
			}
			o := ev.evalBGP(child, cand, engineCap)
			r = ev.joinWithTop(r, o, childCap(i))
		case *UnionNode:
			branches := ev.fanOut(child.Branches, pickContext(r, incoming))
			u := algebra.NewBag(ev.width)
			for _, b := range branches {
				u = algebra.Union(u, b)
			}
			if cap := childCap(i); cap >= 0 && r == nil && cap < u.Len() {
				u = u.View(0, cap)
			}
			r = ev.joinWithTop(r, u, childCap(i))
		case *OptionalNode:
			optionals = append(optionals, child)
		}
	}
	if r == nil {
		r = algebra.Unit(ev.width)
	}
	if len(optionals) > 0 {
		// All OPTIONAL right subtrees see the same candidate-derivation
		// context: candidate sets depend only on the distinct bindings of
		// the left side's certainly-bound variables, which LeftJoin
		// preserves, so deriving from the pre-OPTIONAL bag is
		// indistinguishable from the sequential fold's progressively
		// left-joined bag — and makes the subtrees independent.
		rights := make([]*GroupNode, len(optionals))
		for i, opt := range optionals {
			rights[i] = opt.Right
		}
		for oi, o := range ev.fanOut(rights, pickContext(r, incoming)) {
			cap := -1
			if max >= 0 && oi == len(rights)-1 {
				cap = max // only the final left join produces the result
			}
			r = algebra.LeftJoinWith(r, o, algebra.JoinOpts{
				Stop: ev.cancelled, Max: cap, Pulled: &ev.stats.RowsPulled,
			})
		}
	}
	return r
}

// fanOut evaluates independent sibling groups against a shared context
// bag, returning their bags in sibling order. With a worker pool, each
// group tries to take a token and runs on its own goroutine (with its own
// stats) when one is free, inline otherwise; the non-blocking acquire
// keeps arbitrarily nested fan-out deadlock-free. Stats are merged in
// sibling order after all branches finish, reproducing the sequential
// instrumentation exactly.
func (ev *evaluator) fanOut(groups []*GroupNode, ctxBag *algebra.Bag) []*algebra.Bag {
	out := make([]*algebra.Bag, len(groups))
	if ev.sem == nil || len(groups) < 2 {
		for i, g := range groups {
			out[i] = ev.group(g, ctxBag)
		}
		return out
	}
	subs := make([]*EvalStats, len(groups))
	var wg sync.WaitGroup
	for i, g := range groups {
		sub := ev.branch()
		subs[i] = sub.stats
		select {
		case ev.sem <- struct{}{}:
			wg.Add(1)
			go func(i int, g *GroupNode) {
				defer wg.Done()
				defer func() { <-ev.sem }()
				out[i] = sub.group(g, ctxBag)
			}(i, g)
		default:
			out[i] = sub.group(g, ctxBag)
		}
	}
	wg.Wait()
	for _, s := range subs {
		ev.stats.merge(s)
	}
	return out
}

// pickContext chooses the bag from which nested evaluations derive
// candidates: the local partial result when one exists, else the
// incoming context.
func pickContext(r, incoming *algebra.Bag) *algebra.Bag {
	if r != nil {
		return r
	}
	return incoming
}

// cancelled is the probe handed to the algebra's cancellable joins: the
// materialized joins between sibling bags can dwarf any single BGP
// evaluation (a cross product of disconnected BGPs, say), so they must
// observe the context too.
func (ev *evaluator) cancelled() bool { return ev.ctx.Err() != nil }

// joinWithTop folds a child bag into the accumulated result; max >= 0
// caps the join's output (only ever passed for the group's final
// producing operation).
func (ev *evaluator) joinWithTop(r, o *algebra.Bag, max int) *algebra.Bag {
	if r == nil {
		return o
	}
	return algebra.JoinWith(r, o, algebra.JoinOpts{
		Stop: ev.cancelled, Max: max, Pulled: &ev.stats.RowsPulled,
	})
}

// evalBGP evaluates one BGP node through the engine, recording
// instrumentation. max >= 0 lets the engine stop at max result rows —
// only sound when the BGP's bag is the group's final result.
func (ev *evaluator) evalBGP(b *BGPNode, cand exec.Candidates, max int) *algebra.Bag {
	if cand != nil {
		ev.stats.PrunedBGPs++
	}
	res := ev.engine.EvalBGPTop(ev.ctx, ev.st, b.Enc, ev.width, cand, max, &ev.stats.RowsPulled)
	ev.stats.BGPResults = append(ev.stats.BGPResults, res.Len())
	ev.stats.bgpSizes[b] = res.Len()
	return res
}

// deriveCandidates implements the candidate-setting rule of §6: the
// current results' bindings of the variables shared with the child become
// candidate sets, but only when the candidate set is smaller than the
// threshold (fixed for CP, the estimated BGP result size for full).
func (ev *evaluator) deriveCandidates(child Node, r, incoming *algebra.Bag) exec.Candidates {
	if !ev.prune.Enabled {
		return nil
	}
	bgp, ok := child.(*BGPNode)
	if !ok {
		return nil // candidates flow to nested nodes via `incoming`
	}
	src := pickContext(r, incoming)
	if src == nil || src.Len() == 0 {
		return nil
	}
	threshold := ev.thresholdFor(bgp)
	if threshold <= 0 {
		return nil
	}
	var cand exec.Candidates
	for _, v := range bgp.Enc.Vars() {
		if !src.Cert.Has(v) {
			continue // only certainly-bound variables constrain results
		}
		set := algebra.BindingsOfCapped(src, v, threshold)
		if len(set) == 0 {
			continue
		}
		if cand == nil {
			cand = exec.Candidates{}
		}
		cand[v] = set
	}
	return cand
}

// thresholdFor returns the candidate-size threshold for one BGP node.
// In adaptive mode (the full strategy) the threshold is the estimated
// BGP result size — pruning pays off when the candidate set is smaller
// than what the BGP would materialize anyway — but never below the
// dataset-based floor, so that full's pruning is at least as eager as
// CP's. Without estimates the threshold is the fixed/1%-of-triples
// default of §7.1.
func (ev *evaluator) thresholdFor(b *BGPNode) int {
	base := ev.prune.FixedThreshold
	if base <= 0 {
		base = ev.st.NumTriples() / 100
	}
	if ev.prune.Adaptive && b.estValid {
		if est := int(b.estCard); est > base {
			return est
		}
	}
	return base
}
