package core

import (
	"sparqluo/internal/algebra"
	"sparqluo/internal/exec"
	"sparqluo/internal/store"
)

// Pruning configures the candidate pruning optimization of §6.
type Pruning struct {
	// Enabled turns candidate pruning on.
	Enabled bool
	// FixedThreshold, when > 0, is an absolute cap on candidate set
	// sizes (the CP approach uses 1% of the number of triples).
	FixedThreshold int
	// Adaptive, when true, uses the BGP result-size estimate produced by
	// the cost model as the per-BGP threshold whenever available (the
	// full approach); FixedThreshold is the fallback.
	Adaptive bool
}

// EvalStats collects instrumentation from one evaluation.
type EvalStats struct {
	// BGPResults records the materialized result size of every BGP node
	// evaluation, in evaluation order. Feeds the join space metric.
	BGPResults []int
	// bgpSizes maps BGP nodes to their last materialized size.
	bgpSizes map[*BGPNode]int
	// PrunedBGPs counts BGP evaluations that ran with a candidate set.
	PrunedBGPs int
}

// evaluator runs Algorithm 1 (optionally augmented with candidate
// pruning) over a BE-tree.
type evaluator struct {
	st     *store.Store
	engine exec.Engine
	width  int
	prune  Pruning
	stats  *EvalStats
}

// Evaluate runs the BGP-based evaluation scheme (Algorithm 1) on the tree
// and returns the bag of solution mappings plus instrumentation. The
// SELECT projection is applied (and DISTINCT if requested).
func Evaluate(t *Tree, st *store.Store, engine exec.Engine, prune Pruning) (*algebra.Bag, *EvalStats) {
	ev := &evaluator{
		st:     st,
		engine: engine,
		width:  t.Vars.Len(),
		prune:  prune,
		stats:  &EvalStats{bgpSizes: make(map[*BGPNode]int)},
	}
	res := ev.group(t.Root, nil)
	if len(t.Select) > 0 {
		keep := make([]int, 0, len(t.Select))
		for _, name := range t.Select {
			if i, ok := t.Vars.Lookup(name); ok {
				keep = append(keep, i)
			}
		}
		res = algebra.Project(res, keep)
	}
	if t.Distinct {
		res = algebra.Distinct(res)
	}
	res = applySlice(res, t.Offset, t.Limit)
	return res, ev.stats
}

// applySlice implements the OFFSET and LIMIT solution modifiers.
func applySlice(b *algebra.Bag, offset, limit int) *algebra.Bag {
	if offset <= 0 && limit < 0 {
		return b
	}
	if offset < 0 {
		offset = 0
	}
	if offset > len(b.Rows) {
		offset = len(b.Rows)
	}
	rows := b.Rows[offset:]
	if limit >= 0 && limit < len(rows) {
		rows = rows[:limit]
	}
	out := algebra.NewBag(b.Width)
	out.Cert = b.Cert.Clone()
	out.Maybe = b.Maybe.Clone()
	out.Rows = rows
	return out
}

// group evaluates a group graph pattern node. incoming carries the
// parent's current partial results for candidate derivation (§6); it does
// not participate in the join (the caller joins afterwards).
//
// Following the paper's operator precedence ({} ≺ UNION ≺ AND ≺ OPTIONAL,
// §3) — which its own BE-tree construction presumes when it coalesces
// triple patterns across an OPTIONAL (Figure 5: t1 and t6) — the group's
// required children (BGPs, UNIONs, nested groups) are joined first, in
// order, and the OPTIONAL children are then left-outer-joined, in order.
// For well-designed patterns this coincides with the W3C left-to-right
// fold; for non-well-designed ones it is the Pérez-style semantics the
// paper's Theorems 1–2 assume.
func (ev *evaluator) group(g *GroupNode, incoming *algebra.Bag) *algebra.Bag {
	var r *algebra.Bag
	var optionals []*OptionalNode
	for _, child := range g.Children {
		switch child := child.(type) {
		case *GroupNode:
			o := ev.group(child, pickContext(r, incoming))
			r = joinWith(r, o, ev.width)
		case *BGPNode:
			cand := ev.deriveCandidates(child, r, incoming)
			o := ev.evalBGP(child, cand)
			r = joinWith(r, o, ev.width)
		case *UnionNode:
			u := algebra.NewBag(ev.width)
			for _, br := range child.Branches {
				u = algebra.Union(u, ev.group(br, pickContext(r, incoming)))
			}
			r = joinWith(r, u, ev.width)
		case *OptionalNode:
			optionals = append(optionals, child)
		}
	}
	if r == nil {
		r = algebra.Unit(ev.width)
	}
	for _, opt := range optionals {
		o := ev.group(opt.Right, pickContext(r, incoming))
		r = algebra.LeftJoin(r, o)
	}
	return r
}

// pickContext chooses the bag from which nested evaluations derive
// candidates: the local partial result when one exists, else the
// incoming context.
func pickContext(r, incoming *algebra.Bag) *algebra.Bag {
	if r != nil {
		return r
	}
	return incoming
}

func joinWith(r, o *algebra.Bag, width int) *algebra.Bag {
	if r == nil {
		return o
	}
	return algebra.Join(r, o)
}

// evalBGP evaluates one BGP node through the engine, recording
// instrumentation.
func (ev *evaluator) evalBGP(b *BGPNode, cand exec.Candidates) *algebra.Bag {
	if cand != nil {
		ev.stats.PrunedBGPs++
	}
	res := ev.engine.EvalBGP(ev.st, b.Enc, ev.width, cand)
	ev.stats.BGPResults = append(ev.stats.BGPResults, res.Len())
	ev.stats.bgpSizes[b] = res.Len()
	return res
}

// deriveCandidates implements the candidate-setting rule of §6: the
// current results' bindings of the variables shared with the child become
// candidate sets, but only when the candidate set is smaller than the
// threshold (fixed for CP, the estimated BGP result size for full).
func (ev *evaluator) deriveCandidates(child Node, r, incoming *algebra.Bag) exec.Candidates {
	if !ev.prune.Enabled {
		return nil
	}
	bgp, ok := child.(*BGPNode)
	if !ok {
		return nil // candidates flow to nested nodes via `incoming`
	}
	src := pickContext(r, incoming)
	if src == nil || src.Len() == 0 {
		return nil
	}
	threshold := ev.thresholdFor(bgp)
	if threshold <= 0 {
		return nil
	}
	var cand exec.Candidates
	for _, v := range bgp.Enc.Vars() {
		if !src.Cert.Has(v) {
			continue // only certainly-bound variables constrain results
		}
		set := algebra.BindingsOfCapped(src, v, threshold)
		if len(set) == 0 {
			continue
		}
		if cand == nil {
			cand = exec.Candidates{}
		}
		cand[v] = set
	}
	return cand
}

// thresholdFor returns the candidate-size threshold for one BGP node.
// In adaptive mode (the full strategy) the threshold is the estimated
// BGP result size — pruning pays off when the candidate set is smaller
// than what the BGP would materialize anyway — but never below the
// dataset-based floor, so that full's pruning is at least as eager as
// CP's. Without estimates the threshold is the fixed/1%-of-triples
// default of §7.1.
func (ev *evaluator) thresholdFor(b *BGPNode) int {
	base := ev.prune.FixedThreshold
	if base <= 0 {
		base = ev.st.NumTriples() / 100
	}
	if ev.prune.Adaptive && b.estValid {
		if est := int(b.estCard); est > base {
			return est
		}
	}
	return base
}
