package core

import (
	"strings"
	"testing"

	"sparqluo/internal/algebra"
	"sparqluo/internal/exec"
	"sparqluo/internal/sparql"
	"sparqluo/internal/store"
)

func TestApplySlice(t *testing.T) {
	mk := func(n int) *algebra.Bag {
		b := algebra.NewBag(1)
		for i := 0; i < n; i++ {
			b.Append(algebra.Row{store.ID(i + 1)})
		}
		return b
	}
	cases := []struct {
		n, offset, limit, want int
	}{
		{10, 0, -1, 10}, // no modifiers
		{10, 0, 3, 3},
		{10, 4, -1, 6},
		{10, 4, 3, 3},
		{10, 9, 5, 1},
		{10, 12, -1, 0}, // offset past end
		{10, 0, 0, 0},   // LIMIT 0
		{0, 2, 3, 0},    // empty input
	}
	for i, tc := range cases {
		got := applySlice(mk(tc.n), tc.offset, tc.limit)
		if got.Len() != tc.want {
			t.Errorf("case %d: applySlice(%d, off=%d, lim=%d) = %d rows, want %d",
				i, tc.n, tc.offset, tc.limit, got.Len(), tc.want)
		}
	}
}

func TestEvalStatsInstrumentation(t *testing.T) {
	st := paperDataset(t)
	q := sparql.MustParse(paperQueryPrefixes + `
SELECT * WHERE {
  ?x dbo:wikiPageWikiLink dbr:President_of_the_United_States .
  OPTIONAL { ?x owl:sameAs ?same }
}`)
	tree, err := Build(q, st)
	if err != nil {
		t.Fatal(err)
	}
	// Without pruning, no BGP sees candidates.
	_, stats := Evaluate(tree, st, exec.WCOEngine{}, Pruning{})
	if stats.PrunedBGPs != 0 {
		t.Errorf("unpruned run recorded %d pruned BGPs", stats.PrunedBGPs)
	}
	if len(stats.BGPResults) != 2 {
		t.Errorf("BGPResults = %v, want 2 entries", stats.BGPResults)
	}
	// With pruning, the OPTIONAL-right BGP runs with candidates.
	_, stats = Evaluate(tree, st, exec.WCOEngine{}, Pruning{Enabled: true, FixedThreshold: 100})
	if stats.PrunedBGPs != 1 {
		t.Errorf("pruned run recorded %d pruned BGPs, want 1", stats.PrunedBGPs)
	}
}

func TestPruningReducesBGPResults(t *testing.T) {
	st := paperDataset(t)
	// The optional side has two matches in the dataset; with the anchor's
	// candidates only Clinton's sameAs survives the scan.
	q := sparql.MustParse(paperQueryPrefixes + `
SELECT * WHERE {
  ?x dbo:wikiPageWikiLink dbr:President_of_the_United_States .
  ?x foaf:name ?n .
  OPTIONAL { ?x owl:sameAs ?same }
}`)
	tree, err := Build(q, st)
	if err != nil {
		t.Fatal(err)
	}
	_, plain := Evaluate(tree, st, exec.WCOEngine{}, Pruning{})
	_, pruned := Evaluate(tree, st, exec.WCOEngine{}, Pruning{Enabled: true, FixedThreshold: 100})
	last := func(s *EvalStats) int { return s.BGPResults[len(s.BGPResults)-1] }
	if last(pruned) > last(plain) {
		t.Errorf("pruned optional BGP produced more rows (%d) than plain (%d)",
			last(pruned), last(plain))
	}
}

func TestDistinctAppliedAfterProjection(t *testing.T) {
	st := store.New()
	if err := st.LoadNTriples(strings.NewReader(`
<http://e/a> <http://e/p> <http://e/x> .
<http://e/b> <http://e/p> <http://e/x> .
`)); err != nil {
		t.Fatal(err)
	}
	st.Freeze()
	q := sparql.MustParse(`SELECT DISTINCT ?o WHERE { ?s <http://e/p> ?o }`)
	res, err := Run(q, st, exec.WCOEngine{}, Base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bag.Len() != 1 {
		t.Errorf("DISTINCT over projection: got %d rows, want 1", res.Bag.Len())
	}
}

func TestStrategyString(t *testing.T) {
	cases := map[Strategy]string{Base: "base", TT: "TT", CP: "CP", Full: "full", Strategy(9): "Strategy(9)"}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(s), got, want)
		}
	}
}
