package core

import (
	"strings"
	"testing"

	"sparqluo/internal/exec"
	"sparqluo/internal/rdf"
	"sparqluo/internal/sparql"
	"sparqluo/internal/store"
)

// paperDataset builds the example RDF dataset of Table 1.
func paperDataset(t testing.TB) *store.Store {
	t.Helper()
	const nt = `
@prefix dbr: <http://dbpedia.org/resource/> .
@prefix dbo: <http://dbpedia.org/ontology/> .
@prefix dbp: <http://dbpedia.org/property/> .
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix owl: <http://www.w3.org/2002/07/owl#> .
@prefix fbp: <http://freebase.example.org/> .
dbr:George_W._Bush foaf:name "George Walker Bush"@en .
dbr:George_W._Bush rdfs:label "George W. Bush"@en .
dbr:George_W._Bush dbo:wikiPageWikiLink dbr:President_of_the_United_States .
dbr:Bill_Clinton foaf:name "Bill Clinton"@en .
dbr:Bill_Clinton dbo:wikiPageWikiLink dbr:President_of_the_United_States .
dbr:Bill_Clinton dbp:birthDate "1946-08-19"^^<http://www.w3.org/2001/XMLSchema#date> .
dbr:Bill_Clinton owl:sameAs fbp:Clinton_William_Jefferson_1946- .
`
	st := store.New()
	if err := st.LoadNTriples(strings.NewReader(nt)); err != nil {
		t.Fatalf("load: %v", err)
	}
	st.Freeze()
	return st
}

const paperQueryPrefixes = `
PREFIX dbr: <http://dbpedia.org/resource/>
PREFIX dbo: <http://dbpedia.org/ontology/>
PREFIX dbp: <http://dbpedia.org/property/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX owl: <http://www.w3.org/2002/07/owl#>
`

func TestPaperFigure2Query(t *testing.T) {
	st := paperDataset(t)
	// The query of Figure 2(a): UNION of name/label, nested OPTIONAL
	// with a UNION, and a birthDate pattern.
	q, err := sparql.Parse(paperQueryPrefixes + `
SELECT ?x ?name ?birth ?same WHERE {
  ?x dbo:wikiPageWikiLink dbr:President_of_the_United_States .
  { ?x foaf:name ?name } UNION { ?x rdfs:label ?name }
  OPTIONAL {
    { ?x owl:sameAs ?same } UNION { ?same owl:sameAs ?x }
  }
  ?x dbp:birthDate ?birth .
}`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, engine := range []exec.Engine{exec.WCOEngine{}, exec.BinaryJoinEngine{}} {
		for _, strat := range Strategies {
			res, err := Run(q, st, engine, strat)
			if err != nil {
				t.Fatalf("%s/%s: %v", engine.Name(), strat, err)
			}
			// Only Bill Clinton has a birthDate; he has foaf:name (not
			// rdfs:label) and one owl:sameAs — exactly 1 solution.
			if got := res.Bag.Len(); got != 1 {
				t.Errorf("%s/%s: got %d solutions, want 1\nplan:\n%s",
					engine.Name(), strat, got, res.Tree)
			}
		}
	}
}

func TestBETreeShapePaperExample(t *testing.T) {
	st := paperDataset(t)
	q := sparql.MustParse(paperQueryPrefixes + `
SELECT ?x ?name ?birth ?same WHERE {
  ?x dbo:wikiPageWikiLink dbr:President_of_the_United_States .
  { ?x foaf:name ?name } UNION { ?x rdfs:label ?name }
  OPTIONAL {
    { ?x owl:sameAs ?same } UNION { ?same owl:sameAs ?x }
  }
  ?x dbp:birthDate ?birth .
}`)
	tree, err := Build(q, st)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	// Figure 5: t1 and t6 coalesce into one BGP node; t2, t3, t5, t6 are
	// single-pattern BGPs inside UNION branches → CountBGP = 5.
	if got := tree.CountBGP(); got != 5 {
		t.Errorf("CountBGP = %d, want 5\n%s", got, tree)
	}
	if got := tree.Depth(); got != 3 {
		t.Errorf("Depth = %d, want 3\n%s", got, tree)
	}
	// Root level: the coalesced BGP {t1,t6}, the UNION, the OPTIONAL.
	if got := len(tree.Root.Children); got != 3 {
		t.Fatalf("root children = %d, want 3\n%s", got, tree)
	}
	bgp, ok := tree.Root.Children[0].(*BGPNode)
	if !ok || len(bgp.Enc) != 2 {
		t.Errorf("root child 0: want coalesced 2-pattern BGP, got %T\n%s",
			tree.Root.Children[0], tree)
	}
}

func TestOptionalKeepsUnmatchedRows(t *testing.T) {
	st := paperDataset(t)
	q := sparql.MustParse(paperQueryPrefixes + `
SELECT ?x ?same WHERE {
  ?x dbo:wikiPageWikiLink dbr:President_of_the_United_States .
  OPTIONAL { ?x owl:sameAs ?same }
}`)
	for _, strat := range Strategies {
		res, err := Run(q, st, exec.WCOEngine{}, strat)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		// Both presidents are kept: Clinton with ?same bound, Bush without.
		if got := res.Bag.Len(); got != 2 {
			t.Errorf("%s: got %d rows, want 2", strat, got)
		}
		sameIdx, _ := res.Vars.Lookup("same")
		bound := 0
		for _, r := range res.Bag.All() {
			if r[sameIdx] != store.None {
				bound++
			}
		}
		if bound != 1 {
			t.Errorf("%s: got %d bound ?same, want 1", strat, bound)
		}
	}
}

func TestUnionCollectsBothBranches(t *testing.T) {
	st := paperDataset(t)
	q := sparql.MustParse(paperQueryPrefixes + `
SELECT ?x ?name WHERE {
  ?x dbo:wikiPageWikiLink dbr:President_of_the_United_States .
  { ?x foaf:name ?name } UNION { ?x rdfs:label ?name }
}`)
	for _, strat := range Strategies {
		res, err := Run(q, st, exec.BinaryJoinEngine{}, strat)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		// Bush: foaf:name + rdfs:label; Clinton: foaf:name → 3 rows.
		if got := res.Bag.Len(); got != 3 {
			t.Errorf("%s: got %d rows, want 3\nplan:\n%s", strat, got, res.Tree)
		}
	}
}

func TestRoundTripTerm(t *testing.T) {
	terms := []rdf.Term{
		rdf.NewIRI("http://example.org/x"),
		rdf.NewLiteral("plain"),
		rdf.NewLangLiteral("hello", "en"),
		rdf.NewTypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer"),
		rdf.NewBlank("b0"),
	}
	d := store.NewDict()
	for _, tm := range terms {
		id := d.Encode(tm)
		if got := d.Decode(id); !got.Equal(tm) {
			t.Errorf("round trip %v → %v", tm, got)
		}
	}
}
