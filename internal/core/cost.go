package core

import (
	"context"

	"sparqluo/internal/exec"
	"sparqluo/internal/store"
)

// costModel implements the SPARQL-UO cost model of §5.1.1. It treats the
// underlying BGP engine as transparent: BGP costs and result sizes come
// from the engine's estimators (§5.1.2), and the algebraic combination
// costs are simple functions of operand result sizes:
//
//	fAND      = product of its arguments
//	fUNION    = sum of its arguments
//	fOPTIONAL = product of its arguments
//
// Result sizes of non-BGP nodes follow the assumed distribution of §5.1.1:
// joins (AND, OPTIONAL) multiply, UNION adds.
type costModel struct {
	st     store.Reader
	engine exec.Engine
	// ctx bounds the sampling estimators; nil means non-cancellable.
	// After cancellation estimates are garbage, which is fine: the whole
	// plan is abandoned with the context's error.
	ctx context.Context
}

func (cm *costModel) context() context.Context {
	if cm.ctx != nil {
		return cm.ctx
	}
	return context.Background()
}

// estCard returns the engine's estimated result size for a BGP node,
// memoized in the node.
func (cm *costModel) estCard(b *BGPNode) float64 {
	cm.ensure(b)
	return b.estCard
}

// estCost returns the engine's estimated evaluation cost for a BGP node,
// memoized in the node.
func (cm *costModel) estCost(b *BGPNode) float64 {
	cm.ensure(b)
	return b.estCost
}

func (cm *costModel) ensure(b *BGPNode) {
	if b.estValid {
		return
	}
	ctx := cm.context()
	b.estCard = cm.engine.EstimateCard(ctx, cm.st, b.Enc)
	b.estCost = cm.engine.EstimateCost(ctx, cm.st, b.Enc)
	b.estValid = true
}

// nodeCard estimates |res(n)| for any BE-tree node.
func (cm *costModel) nodeCard(n Node) float64 {
	switch n := n.(type) {
	case *BGPNode:
		return cm.estCard(n)
	case *GroupNode:
		prod := 1.0
		for _, ch := range n.Children {
			prod *= cm.nodeCard(ch)
		}
		return prod
	case *UnionNode:
		sum := 0.0
		for _, br := range n.Branches {
			sum += cm.nodeCard(br)
		}
		return sum
	case *OptionalNode:
		return cm.nodeCard(n.Right)
	}
	return 1
}

// levelCost computes the local cost of one level of sibling nodes
// (Equations 1–3 and 5–7): the BGP evaluation costs of the level's BGP
// nodes, plus for every node the implicit-AND cost
// fAND(|res(node)|, |res(l(node))|, |res(r(node))|) with its left and
// right siblings, plus fUNION over the branches of each UNION node.
//
// Compared to the paper's formulas, which list the fAND terms only for the
// directly affected nodes, levelCost sums the terms for every node of the
// level; the extra terms are identical on both sides of a Δ-cost
// comparison except where a transformation changes sibling result sizes,
// in which case including them makes the estimate strictly more
// consistent.
func (cm *costModel) levelCost(children []Node) float64 {
	cards := make([]float64, len(children))
	for k, ch := range children {
		cards[k] = cm.nodeCard(ch)
	}
	total := 0.0
	for k, ch := range children {
		l, r := 1.0, 1.0
		for _, c := range cards[:k] {
			l *= c
		}
		for _, c := range cards[k+1:] {
			r *= c
		}
		total += cards[k] * l * r // fAND(|res|, |res(l)|, |res(r)|)
		switch ch := ch.(type) {
		case *BGPNode:
			total += cm.estCost(ch)
		case *UnionNode:
			for _, br := range ch.Branches {
				total += cm.nodeCard(br) // fUNION = sum of branch sizes
			}
		case *OptionalNode:
			// fOPTIONAL(|res(left)|, |res(right)|) = product; the fAND
			// term above already charges the product with the siblings.
		}
	}
	return total
}

// mergeScopeCost is the local cost affected by a merge of the BGP node at
// index i into the UNION node at index j (Equations 1–3): the level's
// cost plus the cost of each UNION branch level.
func (cm *costModel) mergeScopeCost(g *GroupNode, j int) float64 {
	total := cm.levelCost(g.Children)
	u := g.Children[j].(*UnionNode)
	for _, br := range u.Branches {
		total += cm.levelCost(br.Children)
	}
	return total
}

// injectScopeCost is the local cost affected by an inject of the BGP node
// at index i into the OPTIONAL node at index j (Equations 5–7): the
// level's cost plus the OPTIONAL-right group's level cost.
func (cm *costModel) injectScopeCost(g *GroupNode, j int) float64 {
	total := cm.levelCost(g.Children)
	o := g.Children[j].(*OptionalNode)
	total += cm.levelCost(o.Right.Children)
	return total
}

// fillEstimates walks the tree computing estimates for every BGP node, so
// that adaptive candidate-pruning thresholds (§6) are available at
// evaluation time.
func (cm *costModel) fillEstimates(n Node) {
	switch n := n.(type) {
	case *BGPNode:
		cm.ensure(n)
	case *GroupNode:
		for _, ch := range n.Children {
			cm.fillEstimates(ch)
		}
	case *UnionNode:
		for _, br := range n.Branches {
			cm.fillEstimates(br)
		}
	case *OptionalNode:
		cm.fillEstimates(n.Right)
	}
}
