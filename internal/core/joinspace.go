package core

// JoinSpace computes the paper's join-space metric JS(P) (§7.1) for an
// executed plan: for a BGP it is the materialized result size recorded
// during evaluation, joins (AND, OPTIONAL) multiply, UNION adds. It
// estimates the largest intermediate result the execution materializes
// and is indicative of both execution time and memory overhead.
//
// The stats must come from evaluating exactly this tree (strategies that
// transform or prune yield correspondingly smaller join spaces, which is
// what Figure 11 plots).
func JoinSpace(t *Tree, stats *EvalStats) float64 {
	return joinSpaceOf(t.Root, stats)
}

func joinSpaceOf(n Node, stats *EvalStats) float64 {
	switch n := n.(type) {
	case *BGPNode:
		if sz, ok := stats.bgpSizes[n]; ok {
			return float64(sz)
		}
		return 1 // never evaluated (e.g. short-circuited); neutral
	case *GroupNode:
		prod := 1.0
		for _, ch := range n.Children {
			prod *= joinSpaceOf(ch, stats)
		}
		return prod
	case *UnionNode:
		sum := 0.0
		for _, br := range n.Branches {
			sum += joinSpaceOf(br, stats)
		}
		return sum
	case *OptionalNode:
		return joinSpaceOf(n.Right, stats)
	}
	return 1
}
