package core

import (
	"math/rand"
	"testing"

	"sparqluo/internal/algebra"
	"sparqluo/internal/exec"
	"sparqluo/internal/qgen"
	"sparqluo/internal/sparql"
)

// TestPropertyDeepQueryEquivalence is the heavier sibling of
// TestPropertyStrategyEquivalence: deeper nesting and wider groups, the
// regime where transformation interactions (multi-level greedy decisions,
// candidate chains through several OPTIONAL levels) are most intricate.
func TestPropertyDeepQueryEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("deep soak")
	}
	rng := rand.New(rand.NewSource(99))
	cfg := qgen.Config{MaxDepth: 4, MaxElements: 5}
	const trials = 150
	for trial := 0; trial < trials; trial++ {
		st := randomStore(rng, 80+rng.Intn(160))
		text := qgen.RandomQuery(rng, cfg)
		q, err := sparql.Parse(text)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var ref *algebra.Bag
		for _, strat := range Strategies {
			res, err := Run(q, st, exec.WCOEngine{}, strat)
			if err != nil {
				t.Fatalf("trial %d: %s: %v", trial, strat, err)
			}
			if ref == nil {
				ref = res.Bag
				continue
			}
			if !algebra.MultisetEqual(ref, res.Bag) {
				t.Fatalf("trial %d: %s diverges (%d vs %d rows)\nquery: %s\nplan:\n%s",
					trial, strat, res.Bag.Len(), ref.Len(), text, res.Tree)
			}
		}
	}
}
