package core

import (
	"math/rand"
	"strings"
	"testing"

	"sparqluo/internal/algebra"
	"sparqluo/internal/exec"
	"sparqluo/internal/qgen"
	"sparqluo/internal/sparql"
	"sparqluo/internal/store"
)

// chainStore builds a store where p0 edges are selective from one anchor
// and p1/p2 edges are plentiful, so transformations have clear payoffs.
func chainStore(t testing.TB) *store.Store {
	t.Helper()
	st := store.New()
	st.AddAll(qgen.RandomDataset(rand.New(rand.NewSource(21)), 400))
	st.Freeze()
	return st
}

func buildTree(t *testing.T, st *store.Store, text string) *Tree {
	t.Helper()
	q, err := sparql.Parse(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	tree, err := Build(q, st)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return tree
}

func TestApplyMergeStructure(t *testing.T) {
	st := chainStore(t)
	tree := buildTree(t, st, `SELECT * WHERE {
		?x <http://ex.org/p0> ?y .
		{ ?x <http://ex.org/p1> ?z } UNION { ?x <http://ex.org/p2> ?z }
	}`)
	g := tree.Root
	if len(g.Children) != 2 {
		t.Fatalf("root children = %d", len(g.Children))
	}
	applyMerge(g, 0, 1)
	if len(g.Children) != 1 {
		t.Fatalf("after merge: children = %d, want 1 (BGP removed)", len(g.Children))
	}
	u, ok := g.Children[0].(*UnionNode)
	if !ok {
		t.Fatalf("after merge: child is %T", g.Children[0])
	}
	for i, br := range u.Branches {
		bgp, ok := br.Children[0].(*BGPNode)
		if !ok || len(bgp.Enc) != 2 {
			t.Errorf("branch %d: want coalesced 2-pattern BGP, got %T", i, br.Children[0])
		}
	}
	if err := tree.Validate(); err != nil {
		t.Errorf("validate after merge: %v", err)
	}
}

func TestApplyInjectStructure(t *testing.T) {
	st := chainStore(t)
	tree := buildTree(t, st, `SELECT * WHERE {
		?x <http://ex.org/p0> ?y .
		OPTIONAL { ?x <http://ex.org/p1> ?z }
	}`)
	g := tree.Root
	applyInject(g, 0, 1)
	if len(g.Children) != 2 {
		t.Fatalf("inject must keep the original BGP: children = %d", len(g.Children))
	}
	o := g.Children[1].(*OptionalNode)
	bgp, ok := o.Right.Children[0].(*BGPNode)
	if !ok || len(bgp.Enc) != 2 {
		t.Errorf("OPTIONAL-right should hold coalesced 2-pattern BGP, got %T", o.Right.Children[0])
	}
	if err := tree.Validate(); err != nil {
		t.Errorf("validate after inject: %v", err)
	}
}

// TestInsertSafeBlocksUncoveredOptionalVars pins the safety rule found
// by the property tests: inserting P1 into a group whose OPTIONAL child
// shares a P1 variable that the group's required part does not bind is
// not equivalent to P1 AND {group} (join does not push through the left
// side of a left outer join in that case — see
// TestLeftJoinNotCommutableWithJoin in the algebra package).
func TestInsertSafeBlocksUncoveredOptionalVars(t *testing.T) {
	st := chainStore(t)
	// The UNION's second branch has an OPTIONAL mentioning ?y, which P1
	// binds but the branch's required pattern (?x p2 ?z) does not.
	tree := buildTree(t, st, `SELECT * WHERE {
		?x <http://ex.org/p0> ?y .
		{ ?x <http://ex.org/p1> ?z }
		UNION
		{ ?x <http://ex.org/p2> ?z OPTIONAL { ?y <http://ex.org/p3> ?w } }
	}`)
	tr := NewTransformer(st, exec.WCOEngine{})
	p1 := tree.Root.Children[0].(*BGPNode)
	u := tree.Root.Children[1].(*UnionNode)
	if tr.mergeAllowed(tree.Root, 0, 1, p1, u) {
		t.Fatal("merge into a branch with an uncovered OPTIONAL variable must be blocked")
	}
	// The same shape without the variable overlap is allowed.
	tree2 := buildTree(t, st, `SELECT * WHERE {
		?x <http://ex.org/p0> ?y .
		{ ?x <http://ex.org/p1> ?z }
		UNION
		{ ?x <http://ex.org/p2> ?z OPTIONAL { ?z <http://ex.org/p3> ?w } }
	}`)
	p1b := tree2.Root.Children[0].(*BGPNode)
	ub := tree2.Root.Children[1].(*UnionNode)
	if !tr.mergeAllowed(tree2.Root, 0, 1, p1b, ub) {
		t.Fatal("covered OPTIONAL variables should not block the merge")
	}
}

// TestInjectBlockedByUncoveredOptionalVar is the inject-side analogue.
func TestInjectBlockedByUncoveredOptionalVar(t *testing.T) {
	st := chainStore(t)
	tree := buildTree(t, st, `SELECT * WHERE {
		?x <http://ex.org/p0> ?y .
		OPTIONAL { ?x <http://ex.org/p1> ?z OPTIONAL { ?y <http://ex.org/p2> ?w } }
	}`)
	tr := NewTransformer(st, exec.WCOEngine{})
	p1 := tree.Root.Children[0].(*BGPNode)
	o := tree.Root.Children[1].(*OptionalNode)
	if tr.injectAllowed(tree.Root, 0, 1, p1, o) {
		t.Fatal("inject with an uncovered OPTIONAL variable must be blocked")
	}
}

func TestMergeRequiresCoalescableBranch(t *testing.T) {
	st := chainStore(t)
	// The UNION branches share no subject/object variable with the BGP.
	tree := buildTree(t, st, `SELECT * WHERE {
		?x <http://ex.org/p0> ?y .
		{ ?a <http://ex.org/p1> ?b } UNION { ?a <http://ex.org/p2> ?b }
	}`)
	tr := NewTransformer(st, exec.WCOEngine{})
	p1 := tree.Root.Children[0].(*BGPNode)
	u := tree.Root.Children[1].(*UnionNode)
	if tr.mergeAllowed(tree.Root, 0, 1, p1, u) {
		t.Fatal("merge without a coalescable branch violates Definition 9")
	}
}

func TestInjectRequiresCoalescableChild(t *testing.T) {
	st := chainStore(t)
	tree := buildTree(t, st, `SELECT * WHERE {
		?x <http://ex.org/p0> ?y .
		OPTIONAL { ?a <http://ex.org/p1> ?b }
	}`)
	tr := NewTransformer(st, exec.WCOEngine{})
	p1 := tree.Root.Children[0].(*BGPNode)
	o := tree.Root.Children[1].(*OptionalNode)
	if tr.injectAllowed(tree.Root, 0, 1, p1, o) {
		t.Fatal("inject without a coalescable BGP child violates Definition 10")
	}
}

func TestSkipWhenEquivalentToCP(t *testing.T) {
	st := chainStore(t)
	text := `SELECT * WHERE {
		?x <http://ex.org/p0> ?y .
		OPTIONAL { ?x <http://ex.org/p1> ?z }
	}`
	// With the §6 special-case skip (full), no transformation happens.
	tree := buildTree(t, st, text)
	tr := NewTransformer(st, exec.WCOEngine{})
	tr.SkipWhenEquivalentToCP = true
	if n := tr.Transform(tree); n != 0 {
		t.Errorf("full-mode should skip the single-BGP special case, applied %d", n)
	}
}

func TestInjectIsIndependentPerOptional(t *testing.T) {
	st := chainStore(t)
	tree := buildTree(t, st, `SELECT * WHERE {
		?x <http://ex.org/p0> "lit0" .
		OPTIONAL { ?x <http://ex.org/p1> ?z }
		OPTIONAL { ?x <http://ex.org/p2> ?w }
	}`)
	tr := NewTransformer(st, exec.WCOEngine{})
	n := tr.Transform(tree)
	// The selective anchor may be injected into both OPTIONALs; whatever
	// the cost model decides, the original BGP must remain at the level.
	if _, ok := tree.Root.Children[0].(*BGPNode); !ok {
		t.Fatalf("inject removed the original BGP (applied %d)", n)
	}
	if err := tree.Validate(); err != nil {
		t.Errorf("validate: %v", err)
	}
}

func TestMergeOnlyOncePerBGP(t *testing.T) {
	st := chainStore(t)
	tree := buildTree(t, st, `SELECT * WHERE {
		?x <http://ex.org/p0> "lit0" .
		{ ?x <http://ex.org/p1> ?z } UNION { ?x <http://ex.org/p2> ?z }
		{ ?x <http://ex.org/p3> ?w } UNION { ?x <http://ex.org/p4> ?w }
	}`)
	before, _ := Evaluate(tree, st, exec.WCOEngine{}, Pruning{})
	work := tree.Clone()
	tr := NewTransformer(st, exec.WCOEngine{})
	tr.Transform(work)
	// Count occurrences of the anchor pattern across the tree: if merged,
	// it must appear in the branches of exactly one UNION (a BGP is
	// removed from its original position by merge, so it cannot merge
	// into two UNIONs — that would change semantics).
	after, _ := Evaluate(work, st, exec.WCOEngine{}, Pruning{})
	if !algebra.MultisetEqual(before, after) {
		t.Fatalf("semantics changed:\n%s", work)
	}
}

func TestTransformerFillsEstimates(t *testing.T) {
	st := chainStore(t)
	tree := buildTree(t, st, `SELECT * WHERE {
		?x <http://ex.org/p0> ?y .
		OPTIONAL { ?x <http://ex.org/p1> ?z }
	}`)
	tr := NewTransformer(st, exec.WCOEngine{})
	tr.Transform(tree)
	var check func(Node)
	check = func(n Node) {
		switch n := n.(type) {
		case *BGPNode:
			if !n.estValid {
				t.Errorf("BGP node missing estimates after Transform")
			}
		case *GroupNode:
			for _, c := range n.Children {
				check(c)
			}
		case *UnionNode:
			for _, br := range n.Branches {
				check(br)
			}
		case *OptionalNode:
			check(n.Right)
		}
	}
	check(tree.Root)
}

func TestCloneIsDeep(t *testing.T) {
	st := chainStore(t)
	tree := buildTree(t, st, `SELECT * WHERE {
		?x <http://ex.org/p0> ?y .
		{ ?x <http://ex.org/p1> ?z } UNION { ?x <http://ex.org/p2> ?z }
		OPTIONAL { ?x <http://ex.org/p3> ?w }
	}`)
	clone := tree.Clone()
	applyMerge(clone.Root, 0, 1)
	// The original must be untouched.
	if len(tree.Root.Children) != 3 {
		t.Fatal("mutating the clone changed the original")
	}
	if _, ok := tree.Root.Children[0].(*BGPNode); !ok {
		t.Fatal("original root child 0 no longer a BGP")
	}
}

func TestJoinSpaceFolding(t *testing.T) {
	st := chainStore(t)
	tree := buildTree(t, st, `SELECT * WHERE {
		?x <http://ex.org/p0> ?y .
		{ ?x <http://ex.org/p1> ?z } UNION { ?x <http://ex.org/p2> ?z }
	}`)
	_, stats := Evaluate(tree, st, exec.WCOEngine{}, Pruning{})
	js := JoinSpace(tree, stats)
	// JS = |BGP| × (|branch1| + |branch2|); recompute by hand.
	var sizes []int
	for _, n := range stats.BGPResults {
		sizes = append(sizes, n)
	}
	if len(sizes) != 3 {
		t.Fatalf("expected 3 BGP evaluations, got %d", len(sizes))
	}
	want := float64(sizes[0]) * float64(sizes[1]+sizes[2])
	if js != want {
		t.Errorf("JoinSpace = %v, want %v (sizes %v)", js, want, sizes)
	}
}

func TestCountBGPAndDepthOnCatalogShapes(t *testing.T) {
	st := chainStore(t)
	cases := []struct {
		text            string
		countBGP, depth int
	}{
		{`SELECT * WHERE { ?x <http://ex.org/p0> ?y . }`, 1, 1},
		{`SELECT * WHERE { ?x <http://ex.org/p0> ?y . ?y <http://ex.org/p1> ?z . }`, 1, 1},
		{`SELECT * WHERE { ?x <http://ex.org/p0> ?y . ?a <http://ex.org/p1> ?b . }`, 2, 1},
		{`SELECT * WHERE { { ?x <http://ex.org/p0> ?y } UNION { ?x <http://ex.org/p1> ?y } }`, 2, 2},
		{`SELECT * WHERE { ?x <http://ex.org/p0> ?y OPTIONAL { ?x <http://ex.org/p1> ?z OPTIONAL { ?z <http://ex.org/p2> ?w } } }`, 3, 3},
	}
	for i, tc := range cases {
		tree := buildTree(t, st, tc.text)
		if got := tree.CountBGP(); got != tc.countBGP {
			t.Errorf("case %d: CountBGP = %d, want %d", i, got, tc.countBGP)
		}
		if got := tree.Depth(); got != tc.depth {
			t.Errorf("case %d: Depth = %d, want %d", i, got, tc.depth)
		}
	}
}

func TestTreeStringMentionsAllNodeKinds(t *testing.T) {
	st := chainStore(t)
	tree := buildTree(t, st, `SELECT * WHERE {
		?x <http://ex.org/p0> ?y .
		{ ?x <http://ex.org/p1> ?z } UNION { ?x <http://ex.org/p2> ?z }
		OPTIONAL { ?x <http://ex.org/p3> ?w }
	}`)
	s := tree.String()
	for _, want := range []string{"Group", "BGP", "UNION", "OPTIONAL"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan rendering missing %q:\n%s", want, s)
		}
	}
}

func TestProjectionOfAbsentVariable(t *testing.T) {
	st := chainStore(t)
	q := sparql.MustParse(`SELECT ?ghost WHERE { ?x <http://ex.org/p0> ?y . }`)
	res, err := Run(q, st, exec.WCOEngine{}, Base)
	if err != nil {
		t.Fatal(err)
	}
	idx, ok := res.Vars.Lookup("ghost")
	if !ok {
		t.Fatal("projected variable should be interned")
	}
	for _, r := range res.Bag.All() {
		if r[idx] != store.None {
			t.Fatal("absent variable must stay unbound")
		}
	}
}
