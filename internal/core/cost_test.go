package core

import (
	"testing"

	"sparqluo/internal/exec"
)

func TestNodeCardFolding(t *testing.T) {
	st := chainStore(t)
	cm := &costModel{st: st, engine: exec.WCOEngine{}}
	tree := buildTree(t, st, `SELECT * WHERE {
		?x <http://ex.org/p0> ?y .
		{ ?x <http://ex.org/p1> ?z } UNION { ?x <http://ex.org/p2> ?z }
		OPTIONAL { ?x <http://ex.org/p3> ?w }
	}`)
	bgp := tree.Root.Children[0].(*BGPNode)
	u := tree.Root.Children[1].(*UnionNode)
	o := tree.Root.Children[2].(*OptionalNode)

	cb := cm.nodeCard(bgp)
	if cb != cm.estCard(bgp) {
		t.Errorf("BGP card %v != estCard %v", cb, cm.estCard(bgp))
	}
	// UNION adds its branches.
	sum := 0.0
	for _, br := range u.Branches {
		sum += cm.nodeCard(br)
	}
	if got := cm.nodeCard(u); got != sum {
		t.Errorf("union card %v, want sum of branches %v", got, sum)
	}
	// OPTIONAL contributes its right group.
	if got := cm.nodeCard(o); got != cm.nodeCard(o.Right) {
		t.Errorf("optional card %v, want right group %v", got, cm.nodeCard(o.Right))
	}
	// Group multiplies its children.
	prod := cm.nodeCard(bgp) * cm.nodeCard(u) * cm.nodeCard(o)
	if got := cm.nodeCard(tree.Root); got != prod {
		t.Errorf("group card %v, want product %v", got, prod)
	}
}

func TestLevelCostIncludesBGPCostAndAlgebra(t *testing.T) {
	st := chainStore(t)
	cm := &costModel{st: st, engine: exec.WCOEngine{}}
	tree := buildTree(t, st, `SELECT * WHERE {
		?x <http://ex.org/p0> ?y .
		?a <http://ex.org/p1> ?b .
	}`)
	// Two disjoint single-pattern BGPs at one level.
	children := tree.Root.Children
	if len(children) != 2 {
		t.Fatalf("children = %d", len(children))
	}
	b0 := children[0].(*BGPNode)
	b1 := children[1].(*BGPNode)
	c0, c1 := cm.estCard(b0), cm.estCard(b1)
	// fAND terms: c0 * 1 * c1 (left empty, right = c1) + c1 * c0 * 1.
	wantAlgebra := c0*c1 + c1*c0
	want := wantAlgebra + cm.estCost(b0) + cm.estCost(b1)
	if got := cm.levelCost(children); got != want {
		t.Errorf("levelCost = %v, want %v", got, want)
	}
}

func TestDeltaMergeNegativeForSelectiveAnchor(t *testing.T) {
	st := chainStore(t)
	// p0 with a ground object is selective; merging it into the UNION
	// should be estimated as an improvement.
	tree := buildTree(t, st, `SELECT * WHERE {
		?x <http://ex.org/p0> "lit0" .
		{ ?x <http://ex.org/p1> ?z } UNION { ?x <http://ex.org/p2> ?z }
	}`)
	tr := NewTransformer(st, exec.WCOEngine{})
	d := tr.deltaMerge(tree.Root, 0, 1)
	if d >= 0 {
		t.Errorf("Δcost(merge selective anchor) = %v, want negative", d)
	}
}

func TestEstimateMemoization(t *testing.T) {
	st := chainStore(t)
	cm := &costModel{st: st, engine: exec.WCOEngine{}}
	tree := buildTree(t, st, `SELECT * WHERE { ?x <http://ex.org/p0> ?y . }`)
	b := tree.Root.Children[0].(*BGPNode)
	first := cm.estCard(b)
	if !b.estValid {
		t.Fatal("estimate not memoized")
	}
	if again := cm.estCard(b); again != first {
		t.Errorf("memoized estimate changed: %v → %v", first, again)
	}
	// Coalescing invalidates the memo.
	b.Enc = append(b.Enc, b.Enc[0])
	b.estValid = false
	_ = cm.estCard(b)
	if !b.estValid {
		t.Error("re-estimation did not re-memoize")
	}
}
