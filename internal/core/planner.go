package core

import (
	"context"
	"fmt"
	"time"

	"sparqluo/internal/algebra"
	"sparqluo/internal/exec"
	"sparqluo/internal/sparql"
	"sparqluo/internal/store"
)

// Strategy selects which of the paper's four evaluated approaches (§7.1)
// to run.
type Strategy int

const (
	// Base runs Algorithm 1 on the untransformed BE-tree, analogous to
	// stock Jena/gStore SPARQL-UO execution.
	Base Strategy = iota
	// TT applies the cost-driven tree transformation (Algorithm 4)
	// before running Algorithm 1.
	TT
	// CP runs Algorithm 1 augmented with candidate pruning on the
	// original tree, with a fixed threshold of 1% of the triples.
	CP
	// Full coordinates tree transformation and candidate pruning with an
	// adaptive threshold — the paper's complete approach.
	Full
)

// String returns the paper's abbreviation for the strategy.
func (s Strategy) String() string {
	switch s {
	case Base:
		return "base"
	case TT:
		return "TT"
	case CP:
		return "CP"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Strategies lists all four approaches in the paper's presentation order.
var Strategies = []Strategy{Base, TT, CP, Full}

// Result is the outcome of running a query plan.
type Result struct {
	Bag   *algebra.Bag    // solution mappings
	Vars  *algebra.VarSet // variable table (row layout)
	Tree  *Tree           // the (possibly transformed) plan that ran
	Stats *EvalStats      // per-BGP instrumentation

	Transformations int           // number of merge/inject ops applied
	TransformTime   time.Duration // time spent deciding/applying them
	ExecTime        time.Duration // time spent in Algorithm 1
}

// ExecOptions configures how a plan is executed.
type ExecOptions struct {
	// Parallelism bounds the evaluation worker pool: sibling UNION
	// branches and OPTIONAL subtrees run concurrently on up to this many
	// goroutines. <= 0 selects GOMAXPROCS; 1 evaluates sequentially.
	// Results and instrumentation are identical at every setting.
	Parallelism int

	// Limit, when LimitSet is true and Limit >= 0, caps the number of
	// solutions this execution returns, composing with (never widening)
	// any LIMIT in the query text. Applied per execution, so one cached
	// plan serves every page size.
	Limit int
	// LimitSet guards Limit: the zero value of ExecOptions must mean
	// "no exec-time limit", and Limit 0 is a meaningful request.
	LimitSet bool
	// Offset skips that many solutions in addition to any OFFSET in the
	// query text (the windows compose: text OFFSET first, then this).
	// Values <= 0 skip nothing.
	Offset int
}

// Run plans and executes a parsed query with the given strategy and BGP
// engine, sequentially and without cancellation. The store must be
// frozen (for statistics).
func Run(q *sparql.Query, st store.Reader, engine exec.Engine, strat Strategy) (*Result, error) {
	return RunContext(context.Background(), q, st, engine, strat, ExecOptions{Parallelism: 1})
}

// RunContext plans and executes a parsed query, observing ctx for
// cancellation and fanning evaluation out per opts. It is the one-shot
// composition of BuildPlan and ExecPlan; callers that execute the same
// query repeatedly should build the plan once and call ExecPlan per
// execution instead.
func RunContext(ctx context.Context, q *sparql.Query, st store.Reader, engine exec.Engine, strat Strategy, opts ExecOptions) (*Result, error) {
	plan, err := BuildPlan(q, st)
	if err != nil {
		return nil, err
	}
	return ExecPlan(ctx, plan, engine, strat, opts)
}

// RunTree executes an already-built BE-tree with the given strategy,
// sequentially and without cancellation. The input tree is not modified
// (transforming strategies clone it).
func RunTree(t *Tree, st store.Reader, engine exec.Engine, strat Strategy) *Result {
	res, _ := RunTreeContext(context.Background(), t, st, engine, strat, ExecOptions{Parallelism: 1})
	return res
}

// RunTreeContext executes an already-built BE-tree with the given
// strategy, observing ctx for cancellation/deadlines and evaluating with
// the worker pool configured in opts. The input tree is not modified
// (transforming strategies clone it). On cancellation the ctx error is
// returned and the Result is nil.
func RunTreeContext(ctx context.Context, t *Tree, st store.Reader, engine exec.Engine, strat Strategy, opts ExecOptions) (*Result, error) {
	// Pin mutable stores (the live-update overlay) to one immutable
	// view for the whole execution: transformation, pruning thresholds
	// and evaluation all see exactly one epoch of the data, so a query
	// running concurrently with ingest or a compaction swap never
	// observes a partial batch.
	if v, ok := st.(store.Viewer); ok {
		st = v.View()
	}
	t = applyWindow(t, opts)
	res := &Result{Vars: t.Vars}
	work := t
	switch strat {
	case TT, Full:
		work = t.Clone()
		tr := NewTransformerContext(ctx, st, engine)
		tr.SkipWhenEquivalentToCP = strat == Full
		start := time.Now()
		res.Transformations = tr.Transform(work)
		res.TransformTime = time.Since(start)
		if err := ctx.Err(); err != nil {
			return nil, err // Δ-costs were truncated; the plan is unusable
		}
	}
	prune := Pruning{}
	switch strat {
	case CP:
		prune = Pruning{Enabled: true, FixedThreshold: st.NumTriples() / 100}
	case Full:
		prune = Pruning{Enabled: true, Adaptive: true}
	}
	start := time.Now()
	bag, stats, err := EvaluateContext(ctx, work, st, engine, prune, opts.Parallelism)
	if err != nil {
		return nil, err
	}
	res.ExecTime = time.Since(start)
	res.Bag, res.Tree, res.Stats = bag, work, stats
	return res, nil
}

// applyWindow composes the exec-time pagination window of opts with the
// tree's own textual LIMIT/OFFSET: the request's offset skips rows of
// the text-modified sequence, and the request's limit never widens the
// text limit. The input tree is never mutated — a shallow copy carries
// the composed window (Base/CP share the plan tree across executions).
func applyWindow(t *Tree, opts ExecOptions) *Tree {
	reqOff := opts.Offset
	if reqOff < 0 {
		reqOff = 0
	}
	reqLim := -1
	if opts.LimitSet && opts.Limit >= 0 {
		reqLim = opts.Limit
	}
	if reqOff == 0 && reqLim < 0 {
		return t
	}
	nt := *t
	off := t.Offset
	if off < 0 {
		off = 0
	}
	lim := t.Limit
	if lim >= 0 {
		// The request's offset consumes rows of the text window.
		lim -= reqOff
		if lim < 0 {
			lim = 0
		}
	}
	if reqLim >= 0 && (lim < 0 || reqLim < lim) {
		lim = reqLim
	}
	nt.Offset, nt.Limit = off+reqOff, lim
	return &nt
}
