package core

import (
	"fmt"
	"time"

	"sparqluo/internal/algebra"
	"sparqluo/internal/exec"
	"sparqluo/internal/sparql"
	"sparqluo/internal/store"
)

// Strategy selects which of the paper's four evaluated approaches (§7.1)
// to run.
type Strategy int

const (
	// Base runs Algorithm 1 on the untransformed BE-tree, analogous to
	// stock Jena/gStore SPARQL-UO execution.
	Base Strategy = iota
	// TT applies the cost-driven tree transformation (Algorithm 4)
	// before running Algorithm 1.
	TT
	// CP runs Algorithm 1 augmented with candidate pruning on the
	// original tree, with a fixed threshold of 1% of the triples.
	CP
	// Full coordinates tree transformation and candidate pruning with an
	// adaptive threshold — the paper's complete approach.
	Full
)

// String returns the paper's abbreviation for the strategy.
func (s Strategy) String() string {
	switch s {
	case Base:
		return "base"
	case TT:
		return "TT"
	case CP:
		return "CP"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Strategies lists all four approaches in the paper's presentation order.
var Strategies = []Strategy{Base, TT, CP, Full}

// Result is the outcome of running a query plan.
type Result struct {
	Bag   *algebra.Bag    // solution mappings
	Vars  *algebra.VarSet // variable table (row layout)
	Tree  *Tree           // the (possibly transformed) plan that ran
	Stats *EvalStats      // per-BGP instrumentation

	Transformations int           // number of merge/inject ops applied
	TransformTime   time.Duration // time spent deciding/applying them
	ExecTime        time.Duration // time spent in Algorithm 1
}

// Run plans and executes a parsed query with the given strategy and BGP
// engine. The store must be frozen (for statistics).
func Run(q *sparql.Query, st *store.Store, engine exec.Engine, strat Strategy) (*Result, error) {
	tree, err := Build(q, st)
	if err != nil {
		return nil, err
	}
	return RunTree(tree, st, engine, strat), nil
}

// RunTree executes an already-built BE-tree with the given strategy. The
// input tree is not modified (transforming strategies clone it).
func RunTree(t *Tree, st *store.Store, engine exec.Engine, strat Strategy) *Result {
	res := &Result{Vars: t.Vars}
	work := t
	switch strat {
	case TT, Full:
		work = t.Clone()
		tr := NewTransformer(st, engine)
		tr.SkipWhenEquivalentToCP = strat == Full
		start := time.Now()
		res.Transformations = tr.Transform(work)
		res.TransformTime = time.Since(start)
	}
	prune := Pruning{}
	switch strat {
	case CP:
		prune = Pruning{Enabled: true, FixedThreshold: st.NumTriples() / 100}
	case Full:
		prune = Pruning{Enabled: true, Adaptive: true}
	}
	start := time.Now()
	bag, stats := Evaluate(work, st, engine, prune)
	res.ExecTime = time.Since(start)
	res.Bag, res.Tree, res.Stats = bag, work, stats
	return res
}
