package core

import (
	"context"

	"sparqluo/internal/algebra"
	"sparqluo/internal/exec"
	"sparqluo/internal/rdf"
	"sparqluo/internal/sparql"
	"sparqluo/internal/store"
)

// Plan is a reusable execution plan: the BE-tree built once from a
// parsed query against one store's dictionary. A Plan is immutable
// after construction — ExecPlan clones the tree whenever a strategy
// needs to rewrite it — so any number of goroutines may execute the
// same Plan concurrently. This is the parse-once/execute-many split:
// BuildPlan pays the parse+build cost a single time, ExecPlan pays
// only the per-execution transform+evaluate cost.
type Plan struct {
	Tree *Tree
	st   store.Reader
}

// BuildPlan constructs the execution plan of a parsed query against a
// store: the BE-tree of Definition 8 with triple patterns
// dictionary-encoded and sibling patterns coalesced into maximal BGPs.
// The store must be frozen before the plan is executed (statistics
// drive the cost model).
func BuildPlan(q *sparql.Query, st store.Reader) (*Plan, error) {
	tree, err := Build(q, st)
	if err != nil {
		return nil, err
	}
	return &Plan{Tree: tree, st: st}, nil
}

// Store returns the store the plan was built against.
func (p *Plan) Store() store.Reader { return p.st }

// Clone returns a deep copy of the plan (sharing the store and the
// immutable variable table).
func (p *Plan) Clone() *Plan { return &Plan{Tree: p.Tree.Clone(), st: p.st} }

// WarmEstimates memoizes the engine's BGP cardinality/cost estimates
// into every BGP node of the plan's tree. The sampling estimators are
// deterministic, so warming precomputes exactly the values a
// transforming execution would derive on its per-execution clone — the
// clone inherits the memo and skips re-sampling, which is the dominant
// per-execution cost of the TT/Full strategies on selective queries.
// Estimates are engine-specific: warm a dedicated plan copy per engine
// (see Clone), and do not warm a plan that is concurrently executing.
func (p *Plan) WarmEstimates(engine exec.Engine) {
	st := p.st
	if v, ok := st.(store.Viewer); ok {
		st = v.View() // one epoch for the whole warming pass
	}
	cm := &costModel{st: st, engine: engine}
	cm.fillEstimates(p.Tree.Root)
}

// ExecPlan executes a plan with the given strategy and BGP engine,
// observing ctx for cancellation and fanning evaluation out per opts.
// The plan is not modified (transforming strategies clone its tree), so
// concurrent ExecPlan calls on one Plan are safe.
func ExecPlan(ctx context.Context, p *Plan, engine exec.Engine, strat Strategy, opts ExecOptions) (*Result, error) {
	return RunTreeContext(ctx, p.Tree, p.st, engine, strat, opts)
}

// BoundValue is one parameter binding for Plan.Bind: the dictionary ID
// the variable is substituted with in the encoded patterns, plus the
// source term for plan rendering. An ID of store.None (term absent from
// the dictionary) makes every pattern containing the variable
// impossible, which correctly yields no matches for that pattern.
type BoundValue struct {
	ID   store.ID
	Term rdf.Term
}

// Bind returns a copy of the plan with each given variable (by index in
// the plan's variable table) replaced by a ground term in every triple
// pattern — the parameter-substitution half of a prepared query. The
// receiver is unchanged; the copy shares the variable table, so row
// layouts stay compatible with the original plan.
func (p *Plan) Bind(vals map[int]BoundValue) *Plan {
	if len(vals) == 0 {
		return p
	}
	t := p.Tree.Clone()
	bindNode(t.Root, t.Vars, vals)
	return &Plan{Tree: t, st: p.st}
}

func bindNode(n Node, vars *algebra.VarSet, vals map[int]BoundValue) {
	switch n := n.(type) {
	case *GroupNode:
		for _, ch := range n.Children {
			bindNode(ch, vars, vals)
		}
	case *UnionNode:
		for _, br := range n.Branches {
			bindNode(br, vars, vals)
		}
	case *OptionalNode:
		bindNode(n.Right, vars, vals)
	case *BGPNode:
		changed := false
		for i := range n.Enc {
			n.Enc[i].S, changed = bindPos(n.Enc[i].S, vals, changed)
			n.Enc[i].P, changed = bindPos(n.Enc[i].P, vals, changed)
			n.Enc[i].O, changed = bindPos(n.Enc[i].O, vals, changed)
		}
		if !changed {
			return
		}
		// Keep the display form in sync. Memoized estimates are kept
		// deliberately: a bound plan is a "generic plan" in the prepared-
		// statement sense — it reuses the template's statistics rather
		// than re-sampling per parameter, which would forfeit the
		// amortization Prepare exists for. Estimates only steer plan
		// choice (transformations, adaptive pruning thresholds), never
		// correctness; binding makes patterns at most more selective, so
		// the template estimate is a sound upper bound.
		for i := range n.Src {
			n.Src[i].S = bindTermOrVar(n.Src[i].S, vars, vals)
			n.Src[i].P = bindTermOrVar(n.Src[i].P, vars, vals)
			n.Src[i].O = bindTermOrVar(n.Src[i].O, vars, vals)
		}
	}
}

func bindPos(pos exec.Pos, vals map[int]BoundValue, changed bool) (exec.Pos, bool) {
	if pos.IsVar {
		if v, ok := vals[pos.Var]; ok {
			return exec.Const(v.ID), true
		}
	}
	return pos, changed
}

func bindTermOrVar(tv sparql.TermOrVar, vars *algebra.VarSet, vals map[int]BoundValue) sparql.TermOrVar {
	if !tv.IsVar {
		return tv
	}
	for idx, v := range vals {
		if vars.Name(idx) == tv.Var {
			return sparql.Ground(v.Term)
		}
	}
	return tv
}
