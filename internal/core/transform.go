package core

import (
	"context"

	"sparqluo/internal/exec"
	"sparqluo/internal/store"
)

// Transformer applies the cost-driven BE-tree transformations of §5.2:
// for every level of the tree, in post-order (Algorithm 4), it considers
// merging each BGP node with its sibling UNION nodes and injecting it into
// its right-sibling OPTIONAL nodes (Algorithm 2), performing exactly the
// transformations whose estimated Δ-cost is negative (Algorithm 3,
// Equations 4 and 8).
type Transformer struct {
	// SkipWhenEquivalentToCP implements the special case of §6: when the
	// BGP node is the only sibling to the left of the UNION or OPTIONAL
	// node, the transformation is equivalent to candidate pruning and is
	// skipped to avoid the duplicate-evaluation overhead. Set by the
	// "full" strategy; the TT-only strategy leaves it false.
	SkipWhenEquivalentToCP bool

	// DisableMerge and DisableInject turn off one transformation kind;
	// they exist for the ablation study (merge targets UNION, inject
	// targets OPTIONAL, so disabling one isolates its contribution).
	DisableMerge  bool
	DisableInject bool

	cm *costModel
}

// NewTransformer returns a Transformer using the given store statistics
// and BGP engine estimators.
func NewTransformer(st store.Reader, engine exec.Engine) *Transformer {
	return &Transformer{cm: &costModel{st: st, engine: engine}}
}

// NewTransformerContext is NewTransformer with a context bounding the
// sampling estimators: once ctx is cancelled the cost model stops
// sampling and the transformation finishes quickly with meaningless
// Δ-costs, which the caller discards along with the plan.
func NewTransformerContext(ctx context.Context, st store.Reader, engine exec.Engine) *Transformer {
	return &Transformer{cm: &costModel{st: st, engine: engine, ctx: ctx}}
}

// Transform runs the multi-level transformation (Algorithm 4) on the tree
// in place and returns the number of transformations applied. It also
// fills BGP result-size estimates for adaptive candidate pruning.
func (tr *Transformer) Transform(t *Tree) int {
	n := tr.postOrder(t.Root)
	tr.cm.fillEstimates(t.Root)
	return n
}

// postOrder is Algorithm 4: children levels are transformed before the
// current level, so lower levels are final when upper decisions are made.
func (tr *Transformer) postOrder(g *GroupNode) int {
	applied := 0
	for _, child := range g.Children {
		switch child := child.(type) {
		case *GroupNode:
			applied += tr.postOrder(child)
		case *UnionNode:
			for _, br := range child.Branches {
				applied += tr.postOrder(br)
			}
		case *OptionalNode:
			applied += tr.postOrder(child.Right)
		}
	}
	applied += tr.singleLevel(g)
	return applied
}

// singleLevel is Algorithm 2: for each BGP child of g, choose the sibling
// UNION with the most negative merge Δ-cost (a BGP can merge into at most
// one UNION since merging removes it), then decide injects individually
// for each OPTIONAL sibling to its right (injects are independent because
// the injected BGP keeps its original occurrence).
func (tr *Transformer) singleLevel(g *GroupNode) int {
	applied := 0
	i := 0
	for i < len(g.Children) {
		p1, ok := g.Children[i].(*BGPNode)
		if !ok {
			i++
			continue
		}
		// Merge decision across all sibling UNION nodes.
		bestDelta, bestJ := 0.0, -1
		for j, sib := range g.Children {
			if tr.DisableMerge {
				break
			}
			u, ok := sib.(*UnionNode)
			if !ok {
				continue
			}
			if !tr.mergeAllowed(g, i, j, p1, u) {
				continue
			}
			if d := tr.deltaMerge(g, i, j); d < bestDelta {
				bestDelta, bestJ = d, j
			}
		}
		if bestJ >= 0 {
			applyMerge(g, i, bestJ)
			applied++
			// The BGP node was removed; do not advance i — the next
			// child has shifted into position i.
			continue
		}
		// Inject decisions: each OPTIONAL node to the right, independent.
		for j := i + 1; j < len(g.Children) && !tr.DisableInject; j++ {
			o, ok := g.Children[j].(*OptionalNode)
			if !ok {
				continue
			}
			if !tr.injectAllowed(g, i, j, p1, o) {
				continue
			}
			if d := tr.deltaInject(g, i, j); d < 0 {
				applyInject(g, i, j)
				applied++
			}
		}
		i++
	}
	return applied
}

// mergeAllowed checks the constraints of Definition 9 plus two safety /
// policy conditions: insertion into every branch must be
// variable-coverage safe (see insertSafe), and the §6 special case may
// skip the transformation when candidate pruning subsumes it.
func (tr *Transformer) mergeAllowed(g *GroupNode, i, j int, p1 *BGPNode, u *UnionNode) bool {
	if tr.SkipWhenEquivalentToCP && i == 0 && j == 1 {
		return false
	}
	// Condition 2 of Definition 9: some branch has a coalescable BGP child.
	coalescable := false
	for _, br := range u.Branches {
		for _, ch := range br.Children {
			if b, ok := ch.(*BGPNode); ok && bgpCoalescable(p1.Enc, b.Enc) {
				coalescable = true
			}
		}
	}
	if !coalescable {
		return false
	}
	// The merge inserts P1 into every branch; all must be safe.
	for _, br := range u.Branches {
		if !insertSafe(p1, br) {
			return false
		}
	}
	return true
}

// injectAllowed checks the constraints of Definition 10 (the OPTIONAL is
// to the right; its child group has a coalescable BGP child), the
// insertion-safety condition, and the §6 special-case skip.
func (tr *Transformer) injectAllowed(g *GroupNode, i, j int, p1 *BGPNode, o *OptionalNode) bool {
	if tr.SkipWhenEquivalentToCP && i == 0 && j == 1 {
		return false
	}
	coalescable := false
	for _, ch := range o.Right.Children {
		if b, ok := ch.(*BGPNode); ok && bgpCoalescable(p1.Enc, b.Enc) {
			coalescable = true
		}
	}
	return coalescable && insertSafe(p1, o.Right)
}

// insertSafe reports whether joining P1 inside group G as a required
// child is equivalent to joining P1 with G's complete result — the
// equivalence Theorems 1 and 2 need. Join pushes through the left side
// of a left outer join only when the pushed operand shares no variable
// with the right side that the left side does not certainly bind:
//
//	P1 ⋈ (R ⟕ O) = (P1 ⋈ R) ⟕ O   iff   vars(P1) ∩ vars(O) ⊆ cert(R)
//
// so every OPTIONAL child of G must have its P1-shared variables covered
// by the certainly-bound variables of G's required children.
func insertSafe(p1 *BGPNode, g *GroupNode) bool {
	p1Vars := map[int]bool{}
	for _, v := range p1.Enc.Vars() {
		p1Vars[v] = true
	}
	req := map[int]bool{}
	for _, ch := range g.Children {
		if _, ok := ch.(*OptionalNode); ok {
			continue
		}
		for v := range certVars(ch) {
			req[v] = true
		}
	}
	for _, ch := range g.Children {
		o, ok := ch.(*OptionalNode)
		if !ok {
			continue
		}
		for v := range allVars(o) {
			if p1Vars[v] && !req[v] {
				return false
			}
		}
	}
	return true
}

// certVars returns the variables certainly bound in every solution of a
// node: all variables for a BGP, the required children's union for a
// group, the branch intersection for a UNION, nothing for an OPTIONAL.
func certVars(n Node) map[int]bool {
	out := map[int]bool{}
	switch n := n.(type) {
	case *BGPNode:
		for _, v := range n.Enc.Vars() {
			out[v] = true
		}
	case *GroupNode:
		for _, ch := range n.Children {
			if _, ok := ch.(*OptionalNode); ok {
				continue
			}
			for v := range certVars(ch) {
				out[v] = true
			}
		}
	case *UnionNode:
		for i, br := range n.Branches {
			bv := certVars(br)
			if i == 0 {
				out = bv
				continue
			}
			for v := range out {
				if !bv[v] {
					delete(out, v)
				}
			}
		}
	case *OptionalNode:
		// nothing certain
	}
	return out
}

// allVars returns every variable occurring anywhere in a subtree.
func allVars(n Node) map[int]bool {
	out := map[int]bool{}
	var walk func(Node)
	walk = func(n Node) {
		switch n := n.(type) {
		case *BGPNode:
			for _, p := range n.Enc {
				for _, pos := range [3]exec.Pos{p.S, p.P, p.O} {
					if pos.IsVar {
						out[pos.Var] = true
					}
				}
			}
		case *GroupNode:
			for _, ch := range n.Children {
				walk(ch)
			}
		case *UnionNode:
			for _, br := range n.Branches {
				walk(br)
			}
		case *OptionalNode:
			walk(n.Right)
		}
	}
	walk(n)
	return out
}

// deltaMerge estimates Δcost(t_m) = cost(t'_m) − cost(t_m) (Equation 4)
// by computing the local cost before the merge, applying the merge to a
// cloned level, and recomputing the local cost after.
func (tr *Transformer) deltaMerge(g *GroupNode, i, j int) float64 {
	before := tr.cm.mergeScopeCost(g, j)
	clone := g.clone().(*GroupNode)
	applyMerge(clone, i, j)
	// After the merge the node at i is gone; the UNION shifted left.
	jAfter := j
	if j > i {
		jAfter = j - 1
	}
	after := tr.cm.mergeScopeCost(clone, jAfter)
	return after - before
}

// deltaInject estimates Δcost(t_i) = cost(t'_i) − cost(t_i) (Equation 8)
// the same way.
func (tr *Transformer) deltaInject(g *GroupNode, i, j int) float64 {
	before := tr.cm.injectScopeCost(g, j)
	clone := g.clone().(*GroupNode)
	applyInject(clone, i, j)
	after := tr.cm.injectScopeCost(clone, j)
	return after - before
}

// applyMerge performs the merge transformation (Definition 9): the BGP
// node at index i is inserted as the leftmost child of every branch of the
// UNION node at index j, coalesced to maximality, and removed from its
// original position. Theorem 1 guarantees semantics preservation.
func applyMerge(g *GroupNode, i, j int) {
	p1 := g.Children[i].(*BGPNode)
	u := g.Children[j].(*UnionNode)
	for _, br := range u.Branches {
		cp := p1.clone().(*BGPNode)
		br.Children = append([]Node{cp}, br.Children...)
		coalesceSiblings(br)
	}
	g.Children = append(g.Children[:i], g.Children[i+1:]...)
}

// applyInject performs the inject transformation (Definition 10): the BGP
// node at index i is inserted as the leftmost child of the OPTIONAL-right
// group of the OPTIONAL node at index j and coalesced to maximality; the
// original BGP node stays in place. Theorem 2 guarantees semantics
// preservation.
func applyInject(g *GroupNode, i, j int) {
	p1 := g.Children[i].(*BGPNode)
	o := g.Children[j].(*OptionalNode)
	cp := p1.clone().(*BGPNode)
	o.Right.Children = append([]Node{cp}, o.Right.Children...)
	coalesceSiblings(o.Right)
}
