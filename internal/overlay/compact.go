package overlay

import (
	"fmt"
	"sync"
	"time"

	"sparqluo/internal/store"
)

// CompactionStats describes one compaction.
type CompactionStats struct {
	Merged    int           // triples in the base it produced
	Adds      int           // net memtable inserts folded in
	Dels      int           // tombstones annihilated against the base
	Took      time.Duration // end-to-end, including the optional persist
	Persisted bool          // a snapshot image was written
	// WALRetired is how many journal segments this compaction retired
	// after its image was durably persisted (0 without a journal, and
	// 0 when no image was written — unpersisted folds leave every
	// segment in place, because recovery would still need them).
	WALRetired int
}

// Compact freezes the memtable into the base: it claims the pending
// ops, resolves them (tombstones annihilate their targets), folds the
// survivors into a fresh frozen base with store.MergeFold — a linear
// merge of each of the base's already-sorted permutations with the
// sorted delta, so fold cost is O(base + delta) with no re-sort of the
// base — optionally persists the new base with the atomic snapshot
// writer, and swaps it in. Writes accepted while the compaction runs
// land in a new memtable generation and are never stalled; readers are
// paused only for the pointer swap (RCU-style — in-flight queries
// finish on the view they pinned).
//
// If the fold or the persist fails, the compaction is rolled back: the
// claimed ops return to the memtable, the old base keeps serving, and
// the old on-disk image is untouched (the writer renames last).
// Compactions are serialized; a concurrent Compact blocks.
func (ls *LiveStore) Compact() (CompactionStats, error) {
	ls.compactMu.Lock()
	defer ls.compactMu.Unlock()
	start := time.Now()

	ls.mu.Lock()
	if len(ls.active) == 0 && len(ls.imm) == 0 {
		ls.mu.Unlock()
		return CompactionStats{}, nil
	}
	// Cut the journal inside the same critical section that claims the
	// ops: appends are journaled under this mutex, so every batch in
	// the claim sits in a segment below the mark and every later batch
	// at or above it. A failed cut aborts the compaction before
	// anything is claimed — nothing to roll back.
	var mark uint64
	if ls.journal != nil {
		var err error
		if mark, err = ls.journal.Checkpoint(); err != nil {
			ls.mu.Unlock()
			return CompactionStats{}, fmt.Errorf("overlay: wal checkpoint: %w", err)
		}
	}
	// Claim the pending ops. imm is always empty here (compactions are
	// serialized and both exits below clear it), so this is a move.
	ls.imm = append(ls.imm, ls.active...)
	ls.active = nil
	base := ls.base
	ops := ls.imm
	ls.mu.Unlock()

	ls.compacting.Store(true)
	defer ls.compacting.Store(false)

	adds, dels := resolve(base, ops)
	stats := CompactionStats{Adds: len(adds), Dels: len(dels)}

	// rollback returns the claimed ops to the memtable in front of
	// anything accepted since, so nothing is lost and a later
	// compaction retries them. The epoch bump is not required for
	// correctness (the visible triple set is unchanged) but keeps the
	// epoch a strict ledger of state transitions.
	rollback := func() {
		ls.mu.Lock()
		restored := make([]op, 0, len(ops)+len(ls.active))
		restored = append(append(restored, ops...), ls.active...)
		ls.active = restored
		ls.imm = nil
		ls.seq.Add(1)
		ls.mu.Unlock()
	}

	nb := base
	if len(adds) > 0 || len(dels) > 0 {
		var err error
		if nb, err = store.MergeFold(base, adds, dels, true); err != nil {
			rollback()
			stats.Took = time.Since(start)
			return stats, fmt.Errorf("overlay: compaction fold: %w", err)
		}
	}
	stats.Merged = nb.NumTriples()

	if ls.opts.SnapshotPath != "" && nb != base {
		if err := ls.writeSnapshot(ls.opts.SnapshotPath, nb); err != nil {
			rollback()
			stats.Took = time.Since(start)
			return stats, fmt.Errorf("overlay: compaction persist: %w", err)
		}
		stats.Persisted = true
	}

	// The RCU-style swap: the only writer- or reader-visible pause is
	// this critical section — a pointer store and some bookkeeping.
	ls.mu.Lock()
	ls.base = nb
	ls.imm = nil
	ls.compactions++
	ls.lastCompact = time.Now()
	ls.lastCompactTook = time.Since(start)
	ls.lastCompactMerged = stats.Merged
	ls.seq.Add(1)
	ls.mu.Unlock()

	// Retire journal segments only once their contents live in a durable
	// image. Without a persisted snapshot the fold is memory-only and a
	// crash would still need every segment to rebuild it. A retire
	// failure after the swap is reported but non-fatal: the compaction
	// already applied, and leftover segments merely replay idempotently
	// (duplicate inserts are absorbed, deletes of absent triples skip).
	if ls.journal != nil && stats.Persisted {
		n, err := ls.journal.Retire(mark)
		stats.WALRetired = n
		if err != nil {
			stats.Took = time.Since(start)
			return stats, fmt.Errorf("overlay: wal retire (compaction applied): %w", err)
		}
	}

	stats.Took = time.Since(start)
	return stats, nil
}

// Flush synchronously compacts the memtable into the base. After a
// Flush with no concurrent writers, the LiveStore is quiesced: the
// memtable is empty and every accessor serves the frozen base's
// zero-copy paths.
func (ls *LiveStore) Flush() error {
	_, err := ls.Compact()
	return err
}

// CompactionOptions configures the background compactor.
type CompactionOptions struct {
	// Interval is the maximum time the memtable may stay dirty before a
	// compaction runs (default 30s).
	Interval time.Duration
	// Threshold is the raw op count that triggers an immediate
	// compaction (default 10000).
	Threshold int
	// OnError, if non-nil, receives background compaction failures
	// (e.g. a full disk under SnapshotPath). The compactor keeps
	// running — the memtable retains the ops and a later pass retries.
	OnError func(error)
}

// StartCompaction runs a background compactor: a polling loop (at a
// tenth of Interval, clamped to [10ms, 1s]) that compacts as soon as
// the memtable holds Threshold ops, and in any case once the memtable
// has been dirty for Interval. The returned stop function halts the
// loop and waits for an in-flight compaction to finish; it is
// idempotent.
func (ls *LiveStore) StartCompaction(opts CompactionOptions) (stop func()) {
	if opts.Interval <= 0 {
		opts.Interval = 30 * time.Second
	}
	if opts.Threshold <= 0 {
		opts.Threshold = 10000
	}
	poll := opts.Interval / 10
	if poll < 10*time.Millisecond {
		poll = 10 * time.Millisecond
	}
	if poll > time.Second {
		poll = time.Second
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(poll)
		defer tick.Stop()
		lastClean := time.Now()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			if ls.pendingOps() == 0 {
				lastClean = time.Now()
				continue
			}
			if ls.pendingOps() >= opts.Threshold || time.Since(lastClean) >= opts.Interval {
				if _, err := ls.Compact(); err != nil && opts.OnError != nil {
					opts.OnError(err)
				}
				lastClean = time.Now()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}
