package overlay

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"sparqluo/internal/rdf"
	"sparqluo/internal/snapshot"
	"sparqluo/internal/store"
)

// openImage opens a snapshot image and returns its store, failing the
// test on error. The mapping is closed via t.Cleanup.
func openImage(t *testing.T, path string) *store.Store {
	t.Helper()
	st, m, err := snapshot.Open(path)
	if err != nil {
		t.Fatalf("snapshot.Open(%s): %v", path, err)
	}
	t.Cleanup(func() { m.Close() })
	return st
}

func TestCompactionPersistsSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "live.img")
	ls := New(baseStore([]rdf.Triple{tri("s", "p", "o")}), Options{SnapshotPath: path})
	ls.Insert(tri("s2", "p", "o"), tri("s3", "p", "o"))
	ls.Delete(tri("s", "p", "o"))
	cs, err := ls.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Persisted || cs.Merged != 2 || cs.Adds != 2 || cs.Dels != 1 {
		t.Errorf("compaction stats = %+v, want persisted, merged=2, adds=2, dels=1", cs)
	}
	st := openImage(t, path)
	if st.NumTriples() != 2 {
		t.Errorf("persisted image holds %d triples, want 2", st.NumTriples())
	}
	d := st.Dict()
	s2, _ := d.Lookup(iri("s2"))
	p, _ := d.Lookup(iri("p"))
	o, _ := d.Lookup(iri("o"))
	if !st.Contains(s2, p, o) {
		t.Error("persisted image missing inserted triple")
	}
	s, _ := d.Lookup(iri("s"))
	if st.Contains(s, p, o) {
		t.Error("persisted image contains tombstoned triple")
	}
}

// TestCompactionWriteFailureServesOldImage is the crash-recovery
// satellite: a compaction whose persist step dies mid-write (injected
// failure after a partial temp file is on disk, simulating a crash
// between temp-write and rename) must (a) keep the previous on-disk
// image openable and consistent, (b) keep the live store serving every
// write from the retained memtable, and (c) leave the store able to
// compact successfully later once the fault clears.
func TestCompactionWriteFailureServesOldImage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "live.img")
	ls := New(baseStore([]rdf.Triple{tri("s", "p", "o")}), Options{SnapshotPath: path})

	// First compaction persists image v1 (2 triples).
	ls.Insert(tri("s2", "p", "o"))
	if _, err := ls.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := openImage(t, path); st.NumTriples() != 2 {
		t.Fatalf("image v1 holds %d triples, want 2", st.NumTriples())
	}

	// Inject a mid-write crash: the writer leaves a partial temp file
	// next to the target (exactly what a real crash between CreateTemp
	// and rename leaves behind) and reports failure.
	injected := errors.New("injected: disk full")
	realWrite := ls.writeSnapshot
	ls.writeSnapshot = func(p string, st *store.Store) error {
		garbage := filepath.Join(filepath.Dir(p), ".snapshot-partial123")
		if err := os.WriteFile(garbage, []byte("SNAPSHOT-truncated-garbag"), 0o644); err != nil {
			t.Fatal(err)
		}
		return injected
	}
	ls.Insert(tri("s3", "p", "o"))
	epochBefore := ls.Epoch()
	if _, err := ls.Compact(); !errors.Is(err, injected) {
		t.Fatalf("Compact with failing persist: err = %v, want injected failure", err)
	}

	// (a) The old image still opens and serves the v1 triple set — the
	// rename-last ordering means the failed attempt never touched it.
	st := openImage(t, path)
	if st.NumTriples() != 2 {
		t.Errorf("after failed compaction, on-disk image holds %d triples, want 2 (old image)", st.NumTriples())
	}

	// (b) The live store lost nothing: the claimed ops went back to the
	// memtable and the overlay serves all three triples.
	if ls.NumTriples() != 3 {
		t.Errorf("live store serves %d triples after failed compaction, want 3", ls.NumTriples())
	}
	if stats := ls.LiveStats(); stats.MemtableOps == 0 {
		t.Error("memtable empty after failed compaction — pending write was dropped")
	}
	if ls.Epoch() <= epochBefore {
		t.Error("failed compaction did not advance the epoch ledger")
	}

	// (c) Once the fault clears, a retry persists everything.
	ls.writeSnapshot = realWrite
	if _, err := ls.Compact(); err != nil {
		t.Fatal(err)
	}
	st2 := openImage(t, path)
	if st2.NumTriples() != 3 {
		t.Errorf("image v2 holds %d triples, want 3", st2.NumTriples())
	}
	if stats := ls.LiveStats(); stats.MemtableOps != 0 {
		t.Errorf("memtable not drained after successful retry: %+v", stats)
	}
}

func TestConcurrentWritesDuringCompaction(t *testing.T) {
	ls := New(nil, Options{})
	for i := 0; i < 500; i++ {
		ls.Insert(tri(fmt.Sprintf("s%d", i), "p", "o"))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Writes land while the compaction below runs; none may stall
		// or be lost.
		for i := 500; i < 600; i++ {
			ls.Insert(tri(fmt.Sprintf("s%d", i), "p", "o"))
		}
	}()
	if err := ls.Flush(); err != nil {
		t.Fatal(err)
	}
	<-done
	if err := ls.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := ls.Base().NumTriples(); got != 600 {
		t.Errorf("base after compactions = %d triples, want 600", got)
	}
}
