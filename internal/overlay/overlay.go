// Package overlay adds live updates to the otherwise-immutable columnar
// store: an LSM-flavored two-level structure in which a small mutable
// memtable (an append log of insert and tombstone operations) sits on
// top of an immutable frozen base store, and the two sorted sides are
// merged at read time so every store.Reader accessor sees one
// consistent triple set.
//
// The design leans on three properties the repo already has:
//
//   - both sides are ID-sorted, so the read path is a streaming merge of
//     zero-copy base runs with small sorted delta runs — the same
//     combinator shape as the PR 5 merge joins;
//   - the dictionary is append-only and dense, so one *store.Dict is
//     shared by the memtable and every generation of the base;
//   - the PR 3 atomic snapshot writer (temp+fsync+rename) is the
//     compaction persistence primitive, so a crash mid-compaction
//     always leaves the previous image intact on disk.
//
// Concurrency model. Writes (Insert/Delete) append operations to the
// memtable under a mutex and bump an epoch counter; each write call is
// one atomic batch. Reads go through an immutable View pinned per query
// (via store.Viewer): the view is (re)built lazily at the current epoch
// and then shared by all readers until the next write, so a running
// query never observes a partial batch — snapshot isolation by
// construction. Compaction resolves the memtable against the base
// (tombstones annihilate their targets), folds the survivors into a
// fresh frozen base with the store's linear merge fold (store.MergeFold
// merges each already-sorted base permutation with the sorted delta in
// one pass — fold cost is O(base + delta), never a re-sort of the
// base), optionally persists it with the atomic snapshot writer, and
// swaps the base pointer under the mutex — an RCU-style swap: in-flight
// queries finish on the old image, and the only reader-visible pause is
// the pointer swap itself.
package overlay

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sparqluo/internal/rdf"
	"sparqluo/internal/snapshot"
	"sparqluo/internal/store"
)

// op is one memtable entry: a dictionary-encoded triple plus a
// tombstone flag. The memtable is an append log of ops; later ops win
// over earlier ones for the same triple.
type op struct {
	t   store.EncTriple
	del bool
}

// Options configures a LiveStore.
type Options struct {
	// SnapshotPath, if non-empty, makes every compaction persist the
	// new base image there with the atomic snapshot writer *before*
	// swapping it in. A failed persist aborts the compaction: the ops
	// return to the memtable and the old base (and old on-disk image)
	// keep serving.
	SnapshotPath string
}

// LiveStore is a mutable store.Reader: an immutable frozen base plus a
// mutex-guarded memtable of pending inserts and tombstones. It
// implements store.Viewer, so the execution funnel pins one immutable
// View per query. All methods are safe for concurrent use.
type LiveStore struct {
	dict *store.Dict
	opts Options

	// journal, when non-nil, is the write-ahead durability hook: every
	// batch is appended (under mu, so the compactor's Checkpoint
	// linearizes against writes) and committed before the write call
	// returns. Set once during startup via SetJournal.
	journal Journal

	mu     sync.Mutex   // guards base/imm/active and the compaction bookkeeping
	base   *store.Store // frozen; replaced (never mutated) by compaction
	imm    []op         // ops claimed by an in-progress compaction
	active []op         // ops accepted since

	// seq is the epoch: bumped (under mu) by every write batch and
	// every compaction swap. Readers compare it lock-free against the
	// published view's epoch to decide whether a rebuild is needed.
	seq atomic.Uint64
	cur atomic.Pointer[View]

	compactMu  sync.Mutex // serializes compactions
	compacting atomic.Bool

	// compaction bookkeeping, guarded by mu
	compactions       int
	lastCompact       time.Time
	lastCompactTook   time.Duration
	lastCompactMerged int

	// writeSnapshot persists a compacted base; swapped by the
	// crash-recovery tests to inject write failures.
	writeSnapshot func(path string, st *store.Store) error
}

// New layers a live overlay over base. A nil base starts empty. The
// base is frozen if it is not already (computing stats); it must not be
// mutated by anyone else afterwards.
func New(base *store.Store, opts Options) *LiveStore {
	if base == nil {
		base = store.New()
	}
	base.Freeze()
	ls := &LiveStore{
		dict:          base.Dict(),
		opts:          opts,
		base:          base,
		writeSnapshot: snapshot.WriteFile,
	}
	return ls
}

// SetJournal attaches the write-ahead durability hook: from now on
// every Insert/Delete batch is journaled before it is applied and
// committed before it is acknowledged. Call it during startup — after
// replaying any surviving journal records through Insert/Delete, and
// before the store is shared with other goroutines; the field itself is
// not synchronized.
func (ls *LiveStore) SetJournal(j Journal) { ls.journal = j }

// Insert adds the given triples as one atomic batch: a concurrent query
// sees either none or all of them. Duplicates of existing triples are
// absorbed (RDF set semantics); an insert also cancels any pending
// tombstone for the same triple. With a journal attached, a nil return
// means the batch is durable per the journal's sync policy; on error
// the batch was not applied (journal append failed) or was applied but
// not confirmed durable (commit failed — a retry is safe either way,
// set semantics make replays idempotent).
func (ls *LiveStore) Insert(ts ...rdf.Triple) error {
	if len(ts) == 0 {
		return nil
	}
	ops := make([]op, len(ts))
	for i, t := range ts {
		ops[i] = op{t: store.EncTriple{
			S: ls.dict.Encode(t.S),
			P: ls.dict.Encode(t.P),
			O: ls.dict.Encode(t.O),
		}}
	}
	return ls.apply(false, ts, ops)
}

// Delete removes the given triples as one atomic batch, by appending
// tombstones to the memtable. Deleting an absent triple is a no-op; a
// triple with any term the dictionary has never seen cannot exist and
// is skipped without growing the dictionary. The full requested batch
// is journaled (not just the surviving tombstones): recovery replays it
// against a base that may differ from today's memtable, where a
// tombstone skipped now could be the one that matters.
func (ls *LiveStore) Delete(ts ...rdf.Triple) error {
	if len(ts) == 0 {
		return nil
	}
	ops := make([]op, 0, len(ts))
	for _, t := range ts {
		s, ok := ls.dict.Lookup(t.S)
		if !ok {
			continue
		}
		p, ok := ls.dict.Lookup(t.P)
		if !ok {
			continue
		}
		o, ok := ls.dict.Lookup(t.O)
		if !ok {
			continue
		}
		ops = append(ops, op{t: store.EncTriple{S: s, P: p, O: o}, del: true})
	}
	if len(ops) == 0 && ls.journal == nil {
		return nil
	}
	return ls.apply(true, ts, ops)
}

// apply journals (if a journal is attached) and applies one write
// batch. The journal append happens inside the write mutex — the same
// critical section that admits the ops into the memtable — so the
// compactor's Checkpoint, which runs under the same mutex, cleanly
// partitions journal records into "claimed by this fold" and "after
// it". The commit (fsync wait) runs outside the mutex: a slow disk
// stalls only the writers waiting on durability, never readers.
func (ls *LiveStore) apply(del bool, ts []rdf.Triple, ops []op) error {
	ls.mu.Lock()
	var seq uint64
	if ls.journal != nil {
		var err error
		seq, err = ls.journal.Append(del, ts)
		if err != nil {
			ls.mu.Unlock()
			return fmt.Errorf("overlay: journal append: %w", err)
		}
	}
	if len(ops) > 0 {
		ls.active = append(ls.active, ops...)
		ls.seq.Add(1)
	}
	ls.mu.Unlock()
	if ls.journal != nil {
		if err := ls.journal.Commit(seq); err != nil {
			return fmt.Errorf("overlay: journal commit: %w", err)
		}
	}
	return nil
}

// Epoch returns the current write epoch. It advances on every write
// batch and every compaction swap; a View carries the epoch it was
// built at.
func (ls *LiveStore) Epoch() uint64 { return ls.seq.Load() }

// Base returns the current frozen base store (e.g. to snapshot a
// quiesced store after Flush). The caller must treat it as read-only;
// a concurrent compaction may swap in a successor at any time.
func (ls *LiveStore) Base() *store.Store {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.base
}

// View returns an immutable snapshot of the current state
// (store.Viewer). Views are cached: all readers between two writes
// share one View, and the fast path is two atomic loads.
func (ls *LiveStore) View() store.Reader { return ls.view() }

func (ls *LiveStore) view() *View {
	// Load the epoch before the view pointer: if they match, the view
	// is current; if a write lands in between, the mismatch sends us
	// through the locked rebuild.
	if v := ls.cur.Load(); v != nil && v.epoch == ls.seq.Load() {
		return v
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.viewLocked()
}

func (ls *LiveStore) viewLocked() *View {
	epoch := ls.seq.Load()
	if v := ls.cur.Load(); v != nil && v.epoch == epoch {
		return v
	}
	var ops []op
	if n := len(ls.imm) + len(ls.active); n > 0 {
		ops = make([]op, 0, n)
		ops = append(append(ops, ls.imm...), ls.active...)
	}
	v := newView(ls.base, ops, epoch)
	ls.cur.Store(v)
	return v
}

// pendingOps reports the number of raw memtable operations (inserts +
// tombstones, including ones a compaction has claimed but not yet
// folded in).
func (ls *LiveStore) pendingOps() int {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return len(ls.imm) + len(ls.active)
}

// LiveStats is a point-in-time picture of the overlay, reported by
// /stats and /healthz.
type LiveStats struct {
	Epoch                uint64        // current write epoch
	BaseTriples          int           // triples in the frozen base
	MemtableOps          int           // raw pending memtable operations
	MemtableAdds         int           // net inserts visible on top of the base
	Tombstones           int           // net deletes pending against the base
	Compactions          int           // completed compactions
	Compacting           bool          // a compaction is in progress
	LastCompaction       time.Time     // completion time of the last compaction
	LastCompactionTook   time.Duration // duration of the last compaction
	LastCompactionMerged int           // triples in the base it produced

	// SinceLastCompaction is the age of the last successful compaction
	// at the moment LiveStats was taken (zero if none has completed) —
	// the number an operator alerts on to catch a stuck compactor
	// before the memtable (and, with a WAL, the segment set) grows
	// without bound.
	SinceLastCompaction time.Duration

	// WAL reports the attached write-ahead journal, nil when the store
	// runs without one (writes then die with the process between
	// compactions).
	WAL *JournalStats
}

// LiveStats returns the current overlay statistics. It resolves the
// memtable (building the current view if stale), so the add/tombstone
// counts are the net effect a query would see.
func (ls *LiveStore) LiveStats() LiveStats {
	v := ls.view()
	ls.mu.Lock()
	st := LiveStats{
		Epoch:                v.epoch,
		BaseTriples:          v.base.NumTriples(),
		MemtableOps:          len(ls.imm) + len(ls.active),
		MemtableAdds:         v.add.len(),
		Tombstones:           v.del.len(),
		Compactions:          ls.compactions,
		Compacting:           ls.compacting.Load(),
		LastCompaction:       ls.lastCompact,
		LastCompactionTook:   ls.lastCompactTook,
		LastCompactionMerged: ls.lastCompactMerged,
	}
	if !ls.lastCompact.IsZero() {
		st.SinceLastCompaction = time.Since(ls.lastCompact)
	}
	ls.mu.Unlock()
	if ls.journal != nil {
		js := ls.journal.Stats()
		st.WAL = &js
	}
	return st
}

// resolve replays the op log against base and returns the net effect:
// adds (triples to insert, none of which are in base) and dels
// (tombstones, all of which are in base). Later ops win over earlier
// ones for the same triple; no-ops (inserting a present triple,
// deleting an absent one) vanish. The result upholds the merge
// invariants every View accessor relies on:
//
//	adds ∩ base = ∅,  dels ⊆ base,  adds ∩ dels = ∅
func resolve(base *store.Store, ops []op) (adds, dels []store.EncTriple) {
	if len(ops) == 0 {
		return nil, nil
	}
	last := make(map[store.EncTriple]bool, len(ops))
	for _, o := range ops {
		last[o.t] = o.del
	}
	for t, del := range last {
		inBase := base.Contains(t.S, t.P, t.O)
		if del {
			if inBase {
				dels = append(dels, t)
			}
		} else if !inBase {
			adds = append(adds, t)
		}
	}
	return adds, dels
}

// LiveStore itself satisfies store.Reader by delegating every accessor
// to the current view, so it can sit directly in a DB; the execution
// funnel additionally pins one view per query via store.Viewer.

func (ls *LiveStore) Dict() *store.Dict        { return ls.dict }
func (ls *LiveStore) Stats() *store.Stats      { return ls.view().Stats() }
func (ls *LiveStore) Frozen() bool             { return false }
func (ls *LiveStore) NumTriples() int          { return ls.view().NumTriples() }
func (ls *LiveStore) MemStats() store.MemStats { return ls.view().MemStats() }

func (ls *LiveStore) Contains(s, p, o store.ID) bool      { return ls.view().Contains(s, p, o) }
func (ls *LiveStore) ObjectsSP(s, p store.ID) []store.ID  { return ls.view().ObjectsSP(s, p) }
func (ls *LiveStore) SubjectsPO(p, o store.ID) []store.ID { return ls.view().SubjectsPO(p, o) }
func (ls *LiveStore) PredsSO(s, o store.ID) []store.ID    { return ls.view().PredsSO(s, o) }
func (ls *LiveStore) SubjectTriples(s store.ID) []store.EncTriple {
	return ls.view().SubjectTriples(s)
}
func (ls *LiveStore) PredicateTriples(p store.ID) []store.EncTriple {
	return ls.view().PredicateTriples(p)
}
func (ls *LiveStore) ObjectTriples(o store.ID) []store.EncTriple {
	return ls.view().ObjectTriples(o)
}
func (ls *LiveStore) SubjectsOfPredicate(p store.ID) []store.ID {
	return ls.view().SubjectsOfPredicate(p)
}
func (ls *LiveStore) ObjectsOfPredicate(p store.ID) []store.ID {
	return ls.view().ObjectsOfPredicate(p)
}
func (ls *LiveStore) Triples() []store.EncTriple { return ls.view().Triples() }

func (ls *LiveStore) CountP(p store.ID) int     { return ls.view().CountP(p) }
func (ls *LiveStore) CountS(s store.ID) int     { return ls.view().CountS(s) }
func (ls *LiveStore) CountO(o store.ID) int     { return ls.view().CountO(o) }
func (ls *LiveStore) CountSP(s, p store.ID) int { return ls.view().CountSP(s, p) }
func (ls *LiveStore) CountPO(p, o store.ID) int { return ls.view().CountPO(p, o) }
func (ls *LiveStore) CountSO(s, o store.ID) int { return ls.view().CountSO(s, o) }

var (
	_ store.Reader = (*LiveStore)(nil)
	_ store.Viewer = (*LiveStore)(nil)
	_ store.Reader = (*View)(nil)
)
