// Package overlay adds live updates to the otherwise-immutable columnar
// store: an LSM-flavored two-level structure in which a small mutable
// memtable (an append log of insert and tombstone operations) sits on
// top of an immutable frozen base store, and the two sorted sides are
// merged at read time so every store.Reader accessor sees one
// consistent triple set.
//
// The design leans on three properties the repo already has:
//
//   - both sides are ID-sorted, so the read path is a streaming merge of
//     zero-copy base runs with small sorted delta runs — the same
//     combinator shape as the PR 5 merge joins;
//   - the dictionary is append-only and dense, so one *store.Dict is
//     shared by the memtable and every generation of the base;
//   - the PR 3 atomic snapshot writer (temp+fsync+rename) is the
//     compaction persistence primitive, so a crash mid-compaction
//     always leaves the previous image intact on disk.
//
// Concurrency model. Writes (Insert/Delete) append operations to the
// memtable under a mutex and bump an epoch counter; each write call is
// one atomic batch. Reads go through an immutable View pinned per query
// (via store.Viewer): the view is (re)built lazily at the current epoch
// and then shared by all readers until the next write, so a running
// query never observes a partial batch — snapshot isolation by
// construction. Compaction resolves the memtable against the base
// (tombstones annihilate their targets), folds the survivors into a
// fresh frozen base with the existing sort+compact path, optionally
// persists it with the atomic snapshot writer, and swaps the base
// pointer under the mutex — an RCU-style swap: in-flight queries finish
// on the old image, and the only reader-visible pause is the pointer
// swap itself.
package overlay

import (
	"sync"
	"sync/atomic"
	"time"

	"sparqluo/internal/rdf"
	"sparqluo/internal/snapshot"
	"sparqluo/internal/store"
)

// op is one memtable entry: a dictionary-encoded triple plus a
// tombstone flag. The memtable is an append log of ops; later ops win
// over earlier ones for the same triple.
type op struct {
	t   store.EncTriple
	del bool
}

// Options configures a LiveStore.
type Options struct {
	// SnapshotPath, if non-empty, makes every compaction persist the
	// new base image there with the atomic snapshot writer *before*
	// swapping it in. A failed persist aborts the compaction: the ops
	// return to the memtable and the old base (and old on-disk image)
	// keep serving.
	SnapshotPath string
}

// LiveStore is a mutable store.Reader: an immutable frozen base plus a
// mutex-guarded memtable of pending inserts and tombstones. It
// implements store.Viewer, so the execution funnel pins one immutable
// View per query. All methods are safe for concurrent use.
type LiveStore struct {
	dict *store.Dict
	opts Options

	mu     sync.Mutex   // guards base/imm/active and the compaction bookkeeping
	base   *store.Store // frozen; replaced (never mutated) by compaction
	imm    []op         // ops claimed by an in-progress compaction
	active []op         // ops accepted since

	// seq is the epoch: bumped (under mu) by every write batch and
	// every compaction swap. Readers compare it lock-free against the
	// published view's epoch to decide whether a rebuild is needed.
	seq atomic.Uint64
	cur atomic.Pointer[View]

	compactMu  sync.Mutex // serializes compactions
	compacting atomic.Bool

	// compaction bookkeeping, guarded by mu
	compactions       int
	lastCompact       time.Time
	lastCompactTook   time.Duration
	lastCompactMerged int

	// writeSnapshot persists a compacted base; swapped by the
	// crash-recovery tests to inject write failures.
	writeSnapshot func(path string, st *store.Store) error
}

// New layers a live overlay over base. A nil base starts empty. The
// base is frozen if it is not already (computing stats); it must not be
// mutated by anyone else afterwards.
func New(base *store.Store, opts Options) *LiveStore {
	if base == nil {
		base = store.New()
	}
	base.Freeze()
	ls := &LiveStore{
		dict:          base.Dict(),
		opts:          opts,
		base:          base,
		writeSnapshot: snapshot.WriteFile,
	}
	return ls
}

// Insert adds the given triples as one atomic batch: a concurrent query
// sees either none or all of them. Duplicates of existing triples are
// absorbed (RDF set semantics); an insert also cancels any pending
// tombstone for the same triple.
func (ls *LiveStore) Insert(ts ...rdf.Triple) {
	if len(ts) == 0 {
		return
	}
	ops := make([]op, len(ts))
	for i, t := range ts {
		ops[i] = op{t: store.EncTriple{
			S: ls.dict.Encode(t.S),
			P: ls.dict.Encode(t.P),
			O: ls.dict.Encode(t.O),
		}}
	}
	ls.mu.Lock()
	ls.active = append(ls.active, ops...)
	ls.seq.Add(1)
	ls.mu.Unlock()
}

// Delete removes the given triples as one atomic batch, by appending
// tombstones to the memtable. Deleting an absent triple is a no-op; a
// triple with any term the dictionary has never seen cannot exist and
// is skipped without growing the dictionary.
func (ls *LiveStore) Delete(ts ...rdf.Triple) {
	if len(ts) == 0 {
		return
	}
	ops := make([]op, 0, len(ts))
	for _, t := range ts {
		s, ok := ls.dict.Lookup(t.S)
		if !ok {
			continue
		}
		p, ok := ls.dict.Lookup(t.P)
		if !ok {
			continue
		}
		o, ok := ls.dict.Lookup(t.O)
		if !ok {
			continue
		}
		ops = append(ops, op{t: store.EncTriple{S: s, P: p, O: o}, del: true})
	}
	if len(ops) == 0 {
		return
	}
	ls.mu.Lock()
	ls.active = append(ls.active, ops...)
	ls.seq.Add(1)
	ls.mu.Unlock()
}

// Epoch returns the current write epoch. It advances on every write
// batch and every compaction swap; a View carries the epoch it was
// built at.
func (ls *LiveStore) Epoch() uint64 { return ls.seq.Load() }

// Base returns the current frozen base store (e.g. to snapshot a
// quiesced store after Flush). The caller must treat it as read-only;
// a concurrent compaction may swap in a successor at any time.
func (ls *LiveStore) Base() *store.Store {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.base
}

// View returns an immutable snapshot of the current state
// (store.Viewer). Views are cached: all readers between two writes
// share one View, and the fast path is two atomic loads.
func (ls *LiveStore) View() store.Reader { return ls.view() }

func (ls *LiveStore) view() *View {
	// Load the epoch before the view pointer: if they match, the view
	// is current; if a write lands in between, the mismatch sends us
	// through the locked rebuild.
	if v := ls.cur.Load(); v != nil && v.epoch == ls.seq.Load() {
		return v
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.viewLocked()
}

func (ls *LiveStore) viewLocked() *View {
	epoch := ls.seq.Load()
	if v := ls.cur.Load(); v != nil && v.epoch == epoch {
		return v
	}
	var ops []op
	if n := len(ls.imm) + len(ls.active); n > 0 {
		ops = make([]op, 0, n)
		ops = append(append(ops, ls.imm...), ls.active...)
	}
	v := newView(ls.base, ops, epoch)
	ls.cur.Store(v)
	return v
}

// pendingOps reports the number of raw memtable operations (inserts +
// tombstones, including ones a compaction has claimed but not yet
// folded in).
func (ls *LiveStore) pendingOps() int {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return len(ls.imm) + len(ls.active)
}

// LiveStats is a point-in-time picture of the overlay, reported by
// /stats and /healthz.
type LiveStats struct {
	Epoch                uint64        // current write epoch
	BaseTriples          int           // triples in the frozen base
	MemtableOps          int           // raw pending memtable operations
	MemtableAdds         int           // net inserts visible on top of the base
	Tombstones           int           // net deletes pending against the base
	Compactions          int           // completed compactions
	Compacting           bool          // a compaction is in progress
	LastCompaction       time.Time     // completion time of the last compaction
	LastCompactionTook   time.Duration // duration of the last compaction
	LastCompactionMerged int           // triples in the base it produced
}

// LiveStats returns the current overlay statistics. It resolves the
// memtable (building the current view if stale), so the add/tombstone
// counts are the net effect a query would see.
func (ls *LiveStore) LiveStats() LiveStats {
	v := ls.view()
	ls.mu.Lock()
	st := LiveStats{
		Epoch:                v.epoch,
		BaseTriples:          v.base.NumTriples(),
		MemtableOps:          len(ls.imm) + len(ls.active),
		MemtableAdds:         v.add.len(),
		Tombstones:           v.del.len(),
		Compactions:          ls.compactions,
		Compacting:           ls.compacting.Load(),
		LastCompaction:       ls.lastCompact,
		LastCompactionTook:   ls.lastCompactTook,
		LastCompactionMerged: ls.lastCompactMerged,
	}
	ls.mu.Unlock()
	return st
}

// resolve replays the op log against base and returns the net effect:
// adds (triples to insert, none of which are in base) and dels
// (tombstones, all of which are in base). Later ops win over earlier
// ones for the same triple; no-ops (inserting a present triple,
// deleting an absent one) vanish. The result upholds the merge
// invariants every View accessor relies on:
//
//	adds ∩ base = ∅,  dels ⊆ base,  adds ∩ dels = ∅
func resolve(base *store.Store, ops []op) (adds, dels []store.EncTriple) {
	if len(ops) == 0 {
		return nil, nil
	}
	last := make(map[store.EncTriple]bool, len(ops))
	for _, o := range ops {
		last[o.t] = o.del
	}
	for t, del := range last {
		inBase := base.Contains(t.S, t.P, t.O)
		if del {
			if inBase {
				dels = append(dels, t)
			}
		} else if !inBase {
			adds = append(adds, t)
		}
	}
	return adds, dels
}

// LiveStore itself satisfies store.Reader by delegating every accessor
// to the current view, so it can sit directly in a DB; the execution
// funnel additionally pins one view per query via store.Viewer.

func (ls *LiveStore) Dict() *store.Dict        { return ls.dict }
func (ls *LiveStore) Stats() *store.Stats      { return ls.view().Stats() }
func (ls *LiveStore) Frozen() bool             { return false }
func (ls *LiveStore) NumTriples() int          { return ls.view().NumTriples() }
func (ls *LiveStore) MemStats() store.MemStats { return ls.view().MemStats() }

func (ls *LiveStore) Contains(s, p, o store.ID) bool      { return ls.view().Contains(s, p, o) }
func (ls *LiveStore) ObjectsSP(s, p store.ID) []store.ID  { return ls.view().ObjectsSP(s, p) }
func (ls *LiveStore) SubjectsPO(p, o store.ID) []store.ID { return ls.view().SubjectsPO(p, o) }
func (ls *LiveStore) PredsSO(s, o store.ID) []store.ID    { return ls.view().PredsSO(s, o) }
func (ls *LiveStore) SubjectTriples(s store.ID) []store.EncTriple {
	return ls.view().SubjectTriples(s)
}
func (ls *LiveStore) PredicateTriples(p store.ID) []store.EncTriple {
	return ls.view().PredicateTriples(p)
}
func (ls *LiveStore) ObjectTriples(o store.ID) []store.EncTriple {
	return ls.view().ObjectTriples(o)
}
func (ls *LiveStore) SubjectsOfPredicate(p store.ID) []store.ID {
	return ls.view().SubjectsOfPredicate(p)
}
func (ls *LiveStore) ObjectsOfPredicate(p store.ID) []store.ID {
	return ls.view().ObjectsOfPredicate(p)
}
func (ls *LiveStore) Triples() []store.EncTriple { return ls.view().Triples() }

func (ls *LiveStore) CountP(p store.ID) int     { return ls.view().CountP(p) }
func (ls *LiveStore) CountS(s store.ID) int     { return ls.view().CountS(s) }
func (ls *LiveStore) CountO(o store.ID) int     { return ls.view().CountO(o) }
func (ls *LiveStore) CountSP(s, p store.ID) int { return ls.view().CountSP(s, p) }
func (ls *LiveStore) CountPO(p, o store.ID) int { return ls.view().CountPO(p, o) }
func (ls *LiveStore) CountSO(s, o store.ID) int { return ls.view().CountSO(s, o) }

var (
	_ store.Reader = (*LiveStore)(nil)
	_ store.Viewer = (*LiveStore)(nil)
	_ store.Reader = (*View)(nil)
)
