package overlay

import "sparqluo/internal/store"

// mergeIDs returns (base − minus) ∪ plus in ascending order. All three
// inputs are ascending and duplicate-free, with minus ⊆ base and
// plus ∩ base = ∅ (the resolve invariants), so the merge is a single
// three-finger pass with no equality cases between base and plus. The
// common case — no delta touches this key — returns base itself,
// keeping the zero-copy fast path of the frozen store.
func mergeIDs(base, minus, plus []store.ID) []store.ID {
	if len(minus) == 0 && len(plus) == 0 {
		return base
	}
	out := make([]store.ID, 0, len(base)-len(minus)+len(plus))
	j, k := 0, 0
	for _, v := range base {
		if j < len(minus) && minus[j] == v {
			j++
			continue
		}
		for k < len(plus) && plus[k] < v {
			out = append(out, plus[k])
			k++
		}
		out = append(out, v)
	}
	return append(out, plus[k:]...)
}

// mergeTriples is mergeIDs over triple slices sorted by cmp: it returns
// (base − minus) ∪ plus in cmp order, under the same invariants.
func mergeTriples(base, minus, plus []store.EncTriple,
	cmp func(a, b store.EncTriple) int) []store.EncTriple {
	if len(minus) == 0 && len(plus) == 0 {
		return base
	}
	out := make([]store.EncTriple, 0, len(base)-len(minus)+len(plus))
	j, k := 0, 0
	for _, t := range base {
		if j < len(minus) && minus[j] == t {
			j++
			continue
		}
		for k < len(plus) && cmp(plus[k], t) < 0 {
			out = append(out, plus[k])
			k++
		}
		out = append(out, t)
	}
	return append(out, plus[k:]...)
}
