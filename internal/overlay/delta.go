package overlay

import (
	"slices"
	"sort"

	"sparqluo/internal/store"
)

// dperm is one sorted permutation of a delta's triple set: the triples
// in permutation order plus the trailing component extracted into an
// aligned column, mirroring the base store's layout so range accessors
// hand out zero-copy []ID views. Deltas are small (a memtable's worth),
// so lookups are binary searches rather than CSR row pointers — a CSR
// offset array over the dense dictionary ID space would cost O(dict)
// memory per view, which a per-write-batch structure cannot afford.
type dperm struct {
	tri []store.EncTriple
	col []store.ID
}

// delta is an immutable sorted index over one resolved side of the
// memtable (either the net inserts or the net tombstones).
type delta struct {
	spo dperm // sorted (S,P,O), col = O
	pos dperm // sorted (P,O,S), col = S
	osp dperm // sorted (O,S,P), col = P
}

// emptyDelta is shared by views with nothing on one side, so accessors
// never need nil checks.
var emptyDelta = &delta{}

// newDelta indexes a resolved, duplicate-free triple set. It takes
// ownership of tris.
func newDelta(tris []store.EncTriple) *delta {
	if len(tris) == 0 {
		return emptyDelta
	}
	mk := func(tris []store.EncTriple, cmp func(a, b store.EncTriple) int,
		colOf func(store.EncTriple) store.ID) dperm {
		slices.SortFunc(tris, cmp)
		col := make([]store.ID, len(tris))
		for i, t := range tris {
			col[i] = colOf(t)
		}
		return dperm{tri: tris, col: col}
	}
	pos := slices.Clone(tris)
	osp := slices.Clone(tris)
	return &delta{
		spo: mk(tris, store.CompareSPO, func(t store.EncTriple) store.ID { return t.O }),
		pos: mk(pos, store.ComparePOS, func(t store.EncTriple) store.ID { return t.S }),
		osp: mk(osp, store.CompareOSP, func(t store.EncTriple) store.ID { return t.P }),
	}
}

func (d *delta) len() int { return len(d.spo.tri) }

// bytes reports the memory footprint of the three permutations.
func (d *delta) bytes() int64 {
	const triSize, idSize = 12, 4
	return 3 * int64(len(d.spo.tri)) * (triSize + idSize)
}

func (d *delta) contains(s, p, o store.ID) bool {
	_, ok := slices.BinarySearchFunc(d.spo.tri, store.EncTriple{S: s, P: p, O: o}, store.CompareSPO)
	return ok
}

// run1 returns the [lo,hi) range of tri whose leading component (as
// read by lead) equals id; tri must be sorted with that component
// leading.
func run1(tri []store.EncTriple, id store.ID, lead func(store.EncTriple) store.ID) (int, int) {
	lo := sort.Search(len(tri), func(i int) bool { return lead(tri[i]) >= id })
	hi := sort.Search(len(tri), func(i int) bool { return lead(tri[i]) > id })
	return lo, hi
}

// run2 narrows tri[lo:hi) to the range whose second component (as read
// by mid) equals id; the input range must be sorted by that component.
func run2(tri []store.EncTriple, lo, hi int, id store.ID, mid func(store.EncTriple) store.ID) (int, int) {
	a := lo + sort.Search(hi-lo, func(i int) bool { return mid(tri[lo+i]) >= id })
	b := lo + sort.Search(hi-lo, func(i int) bool { return mid(tri[lo+i]) > id })
	return a, b
}

func leadS(t store.EncTriple) store.ID { return t.S }
func leadP(t store.EncTriple) store.ID { return t.P }
func leadO(t store.EncTriple) store.ID { return t.O }

// The accessors below mirror the base store's contract exactly:
// ascending-ID column views, permutation-sorted triple slices.

func (d *delta) objectsSP(s, p store.ID) []store.ID {
	lo, hi := run1(d.spo.tri, s, leadS)
	a, b := run2(d.spo.tri, lo, hi, p, leadP)
	return d.spo.col[a:b]
}

func (d *delta) subjectsPO(p, o store.ID) []store.ID {
	lo, hi := run1(d.pos.tri, p, leadP)
	a, b := run2(d.pos.tri, lo, hi, o, leadO)
	return d.pos.col[a:b]
}

func (d *delta) predsSO(s, o store.ID) []store.ID {
	lo, hi := run1(d.osp.tri, o, leadO)
	a, b := run2(d.osp.tri, lo, hi, s, leadS)
	return d.osp.col[a:b]
}

func (d *delta) subjectTriples(s store.ID) []store.EncTriple {
	lo, hi := run1(d.spo.tri, s, leadS)
	return d.spo.tri[lo:hi]
}

func (d *delta) predicateTriples(p store.ID) []store.EncTriple {
	lo, hi := run1(d.pos.tri, p, leadP)
	return d.pos.tri[lo:hi]
}

func (d *delta) objectTriples(o store.ID) []store.EncTriple {
	lo, hi := run1(d.osp.tri, o, leadO)
	return d.osp.tri[lo:hi]
}

func (d *delta) countS(s store.ID) int {
	lo, hi := run1(d.spo.tri, s, leadS)
	return hi - lo
}

func (d *delta) countP(p store.ID) int {
	lo, hi := run1(d.pos.tri, p, leadP)
	return hi - lo
}

func (d *delta) countO(o store.ID) int {
	lo, hi := run1(d.osp.tri, o, leadO)
	return hi - lo
}
