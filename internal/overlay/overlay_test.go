package overlay

import (
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"testing"
	"time"

	"sparqluo/internal/rdf"
	"sparqluo/internal/store"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://x/" + s) }

func tri(s, p, o string) rdf.Triple {
	return rdf.Triple{S: iri(s), P: iri(p), O: iri(o)}
}

func baseStore(ts []rdf.Triple) *store.Store {
	st := store.New()
	if err := st.AddAll(ts); err != nil {
		panic(err)
	}
	st.Freeze()
	return st
}

func key(t rdf.Triple) string { return t.S.Key() + "\x00" + t.P.Key() + "\x00" + t.O.Key() }

// checkEquiv asserts that every Reader accessor of the live store's
// current view answers exactly like a store rebuilt from scratch over
// the model triple set (sharing the same dictionary, so IDs line up).
func checkEquiv(t *testing.T, ls *LiveStore, model map[string]rdf.Triple) {
	t.Helper()
	d := ls.Dict()
	exp := make([]store.EncTriple, 0, len(model))
	for _, tr := range model {
		s, ok1 := d.Lookup(tr.S)
		p, ok2 := d.Lookup(tr.P)
		o, ok3 := d.Lookup(tr.O)
		if !ok1 || !ok2 || !ok3 {
			t.Fatalf("model triple %v has terms missing from the dict", tr)
		}
		exp = append(exp, store.EncTriple{S: s, P: p, O: o})
	}
	ref, err := store.FromTriples(d, exp, false)
	if err != nil {
		t.Fatal(err)
	}
	v := ls.View()

	if v.NumTriples() != ref.NumTriples() {
		t.Fatalf("NumTriples = %d, want %d", v.NumTriples(), ref.NumTriples())
	}
	if !slices.Equal(v.Triples(), ref.Triples()) {
		t.Fatalf("Triples() diverges from rebuilt store")
	}
	for id := store.ID(1); int(id) <= d.Len(); id++ {
		if got, want := v.SubjectTriples(id), ref.SubjectTriples(id); !slices.Equal(got, want) {
			t.Fatalf("SubjectTriples(%d) = %v, want %v", id, got, want)
		}
		if got, want := v.PredicateTriples(id), ref.PredicateTriples(id); !slices.Equal(got, want) {
			t.Fatalf("PredicateTriples(%d) = %v, want %v", id, got, want)
		}
		if got, want := v.ObjectTriples(id), ref.ObjectTriples(id); !slices.Equal(got, want) {
			t.Fatalf("ObjectTriples(%d) = %v, want %v", id, got, want)
		}
		if got, want := v.SubjectsOfPredicate(id), ref.SubjectsOfPredicate(id); !slices.Equal(got, want) {
			t.Fatalf("SubjectsOfPredicate(%d) = %v, want %v", id, got, want)
		}
		if got, want := v.ObjectsOfPredicate(id), ref.ObjectsOfPredicate(id); !slices.Equal(got, want) {
			t.Fatalf("ObjectsOfPredicate(%d) = %v, want %v", id, got, want)
		}
		if got, want := v.CountS(id), ref.CountS(id); got != want {
			t.Fatalf("CountS(%d) = %d, want %d", id, got, want)
		}
		if got, want := v.CountP(id), ref.CountP(id); got != want {
			t.Fatalf("CountP(%d) = %d, want %d", id, got, want)
		}
		if got, want := v.CountO(id), ref.CountO(id); got != want {
			t.Fatalf("CountO(%d) = %d, want %d", id, got, want)
		}
	}
	for _, tr := range ref.Triples() {
		if !v.Contains(tr.S, tr.P, tr.O) {
			t.Fatalf("Contains(%v) = false for present triple", tr)
		}
		if got, want := v.ObjectsSP(tr.S, tr.P), ref.ObjectsSP(tr.S, tr.P); !slices.Equal(got, want) {
			t.Fatalf("ObjectsSP(%d,%d) = %v, want %v", tr.S, tr.P, got, want)
		}
		if got, want := v.SubjectsPO(tr.P, tr.O), ref.SubjectsPO(tr.P, tr.O); !slices.Equal(got, want) {
			t.Fatalf("SubjectsPO(%d,%d) = %v, want %v", tr.P, tr.O, got, want)
		}
		if got, want := v.PredsSO(tr.S, tr.O), ref.PredsSO(tr.S, tr.O); !slices.Equal(got, want) {
			t.Fatalf("PredsSO(%d,%d) = %v, want %v", tr.S, tr.O, got, want)
		}
		if got, want := v.CountSP(tr.S, tr.P), ref.CountSP(tr.S, tr.P); got != want {
			t.Fatalf("CountSP(%d,%d) = %d, want %d", tr.S, tr.P, got, want)
		}
		if got, want := v.CountPO(tr.P, tr.O), ref.CountPO(tr.P, tr.O); got != want {
			t.Fatalf("CountPO(%d,%d) = %d, want %d", tr.P, tr.O, got, want)
		}
		if got, want := v.CountSO(tr.S, tr.O), ref.CountSO(tr.S, tr.O); got != want {
			t.Fatalf("CountSO(%d,%d) = %d, want %d", tr.S, tr.O, got, want)
		}
	}
}

// TestRandomOpsMatchRebuiltStore drives a live store with random
// insert/delete batches (duplicates, re-inserts, deletes of absent
// triples, interleaved compactions) and asserts after every round that
// every accessor answers exactly like a store rebuilt from the model.
func TestRandomOpsMatchRebuiltStore(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randTriple := func() rdf.Triple {
		return tri(
			fmt.Sprintf("s%d", rng.Intn(20)),
			fmt.Sprintf("p%d", rng.Intn(5)),
			fmt.Sprintf("s%d", rng.Intn(25)), // objects overlap subjects for join shapes
		)
	}
	model := map[string]rdf.Triple{}
	var baseTs []rdf.Triple
	for i := 0; i < 150; i++ {
		tr := randTriple()
		baseTs = append(baseTs, tr)
		model[key(tr)] = tr
	}
	ls := New(baseStore(baseTs), Options{})
	checkEquiv(t, ls, model)

	for round := 0; round < 40; round++ {
		var ins []rdf.Triple
		for i := 0; i < 1+rng.Intn(8); i++ {
			tr := randTriple()
			ins = append(ins, tr)
			model[key(tr)] = tr
		}
		ls.Insert(ins...)
		var dels []rdf.Triple
		for i := 0; i < rng.Intn(6); i++ {
			tr := randTriple()
			dels = append(dels, tr)
			delete(model, key(tr))
		}
		ls.Delete(dels...)
		if round%7 == 3 {
			if err := ls.Flush(); err != nil {
				t.Fatalf("round %d: Flush: %v", round, err)
			}
		}
		checkEquiv(t, ls, model)
	}
	if err := ls.Flush(); err != nil {
		t.Fatalf("final Flush: %v", err)
	}
	checkEquiv(t, ls, model)
	if got := ls.LiveStats(); got.MemtableOps != 0 || got.Tombstones != 0 {
		t.Errorf("quiesced store still reports memtable state: %+v", got)
	}
}

func TestTombstoneLifecycle(t *testing.T) {
	ls := New(baseStore([]rdf.Triple{tri("s", "p", "o"), tri("s", "p", "o2")}), Options{})
	ls.Delete(tri("s", "p", "o"))
	if ls.Contains(1, 2, 3) { // s=1 p=2 o=3 in insertion order
		t.Error("deleted triple still visible")
	}
	if ls.NumTriples() != 1 {
		t.Errorf("NumTriples = %d, want 1", ls.NumTriples())
	}
	st := ls.LiveStats()
	if st.Tombstones != 1 {
		t.Errorf("Tombstones = %d, want 1", st.Tombstones)
	}
	if err := ls.Flush(); err != nil {
		t.Fatal(err)
	}
	if ls.Base().NumTriples() != 1 {
		t.Errorf("base after compaction = %d triples, want 1 (tombstone must annihilate)", ls.Base().NumTriples())
	}
	// Re-insert resurrects the triple.
	ls.Insert(tri("s", "p", "o"))
	if !ls.Contains(1, 2, 3) {
		t.Error("re-inserted triple not visible")
	}
}

func TestDeleteUnknownTermsDoesNotGrowDict(t *testing.T) {
	ls := New(baseStore([]rdf.Triple{tri("s", "p", "o")}), Options{})
	n := ls.Dict().Len()
	ls.Delete(tri("nope", "p", "o"))
	if ls.Dict().Len() != n {
		t.Errorf("Delete of unknown term grew the dict: %d -> %d", n, ls.Dict().Len())
	}
	if ls.NumTriples() != 1 {
		t.Errorf("NumTriples = %d, want 1", ls.NumTriples())
	}
}

func TestViewCachedBetweenWrites(t *testing.T) {
	ls := New(baseStore([]rdf.Triple{tri("s", "p", "o")}), Options{})
	v1 := ls.View()
	if v2 := ls.View(); v1 != v2 {
		t.Error("views between writes should be shared")
	}
	ls.Insert(tri("s2", "p", "o"))
	v3 := ls.View()
	if v3 == v1 {
		t.Error("view not invalidated by a write")
	}
	// The old view still answers from its epoch.
	old := v1.(*View)
	if old.NumTriples() != 1 {
		t.Errorf("pinned old view mutated: %d triples", old.NumTriples())
	}
	if v3.NumTriples() != 2 {
		t.Errorf("new view = %d triples, want 2", v3.NumTriples())
	}
}

// TestBatchAtomicity inserts correlated pairs from a writer goroutine
// and asserts no view ever exposes half a batch.
func TestBatchAtomicity(t *testing.T) {
	ls := New(nil, Options{})
	const n = 300
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			ls.Insert(tri(fmt.Sprintf("s%d", i), "p", "a"), tri(fmt.Sprintf("s%d", i), "q", "b"))
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		v := ls.View()
		d := v.Dict()
		p, okP := d.Lookup(iri("p"))
		q, okQ := d.Lookup(iri("q"))
		if okP && okQ {
			if got, want := v.CountP(p), v.CountP(q); got != want {
				t.Fatalf("torn batch visible: %d p-triples vs %d q-triples", got, want)
			}
		}
		select {
		case <-done:
			if got := ls.NumTriples(); got != 2*n {
				t.Fatalf("final NumTriples = %d, want %d", got, 2*n)
			}
			return
		default:
		}
	}
}

func TestStartCompactionThreshold(t *testing.T) {
	ls := New(nil, Options{})
	stop := ls.StartCompaction(CompactionOptions{Interval: time.Hour, Threshold: 50})
	defer stop()
	for i := 0; i < 60; i++ {
		ls.Insert(tri(fmt.Sprintf("s%d", i), "p", "o"))
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st := ls.LiveStats(); st.Compactions >= 1 {
			if ls.Base().NumTriples() != 60 {
				t.Fatalf("compacted base = %d triples, want 60", ls.Base().NumTriples())
			}
			stop()
			stop() // idempotent
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("threshold compaction did not run within 5s")
}

func TestCompactEmptyMemtableIsNoop(t *testing.T) {
	ls := New(baseStore([]rdf.Triple{tri("s", "p", "o")}), Options{})
	before := ls.Base()
	cs, err := ls.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Merged != 0 || cs.Adds != 0 || cs.Dels != 0 {
		t.Errorf("empty compaction reported work: %+v", cs)
	}
	if ls.Base() != before {
		t.Error("empty compaction swapped the base")
	}
	// Pure no-op ops (delete absent, re-insert present) also keep the base.
	ls.Insert(tri("s", "p", "o"))
	ls.Delete(tri("zz", "p", "o"))
	if _, err := ls.Compact(); err != nil {
		t.Fatal(err)
	}
	if ls.Base() != before {
		t.Error("no-op memtable compaction rebuilt the base")
	}
	if ls.pendingOps() != 0 {
		t.Errorf("pendingOps = %d after compaction, want 0", ls.pendingOps())
	}
}
