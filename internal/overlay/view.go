package overlay

import (
	"slices"
	"sync"

	"sparqluo/internal/store"
)

// View is one immutable epoch of a LiveStore: a frozen base plus the
// resolved net delta (adds and tombstones) the memtable held when the
// view was built. It implements store.Reader by merging the sorted
// base runs with the sorted delta runs per accessor, preserving every
// ordering contract of the frozen store — which is what makes query
// results over a live store byte-identical to results over an
// equivalently frozen one. A View never changes once published; writes
// and compaction swaps only ever produce later views.
type View struct {
	epoch uint64
	base  *store.Store
	add   *delta // net inserts;   add ∩ base = ∅
	del   *delta // net tombstones; del ⊆ base, add ∩ del = ∅

	// all caches the fully merged canonical triple set on first use
	// (full-scan patterns); views between write batches share it.
	allOnce sync.Once
	all     []store.EncTriple
}

// newView resolves ops against base and indexes the net delta.
func newView(base *store.Store, ops []op, epoch uint64) *View {
	adds, dels := resolve(base, ops)
	return &View{
		epoch: epoch,
		base:  base,
		add:   newDelta(adds),
		del:   newDelta(dels),
	}
}

// Epoch returns the write epoch this view was built at.
func (v *View) Epoch() uint64 { return v.epoch }

// clean reports whether the view is the base alone (empty delta), which
// unlocks the zero-copy fast paths.
func (v *View) clean() bool { return v.add.len() == 0 && v.del.len() == 0 }

func (v *View) Dict() *store.Dict { return v.base.Dict() }

// Stats returns the base's Freeze-time statistics. The pending delta is
// deliberately not folded in: statistics feed cardinality *estimation*
// only, a memtable is small relative to the base, and the O(dictionary)
// statistics pass is far too expensive per write batch. Exact counts
// (the Count* accessors) do include the delta.
func (v *View) Stats() *store.Stats { return v.base.Stats() }

// Frozen reports true: a view is immutable.
func (v *View) Frozen() bool { return true }

// NumTriples is exact: base plus net inserts minus tombstones.
func (v *View) NumTriples() int {
	return v.base.NumTriples() + v.add.len() - v.del.len()
}

// MemStats reports the base footprint with the delta indexes accounted
// under the log fields (the memtable is the ingestion log's successor).
func (v *View) MemStats() store.MemStats {
	m := v.base.MemStats()
	m.LogTriples += v.add.len() + v.del.len()
	m.LogBytes += v.add.bytes() + v.del.bytes()
	m.TotalBytes += v.add.bytes() + v.del.bytes()
	return m
}

func (v *View) Contains(s, p, o store.ID) bool {
	if v.add.contains(s, p, o) {
		return true
	}
	return v.base.Contains(s, p, o) && !v.del.contains(s, p, o)
}

func (v *View) ObjectsSP(s, p store.ID) []store.ID {
	return mergeIDs(v.base.ObjectsSP(s, p), v.del.objectsSP(s, p), v.add.objectsSP(s, p))
}

func (v *View) SubjectsPO(p, o store.ID) []store.ID {
	return mergeIDs(v.base.SubjectsPO(p, o), v.del.subjectsPO(p, o), v.add.subjectsPO(p, o))
}

func (v *View) PredsSO(s, o store.ID) []store.ID {
	return mergeIDs(v.base.PredsSO(s, o), v.del.predsSO(s, o), v.add.predsSO(s, o))
}

func (v *View) SubjectTriples(s store.ID) []store.EncTriple {
	return mergeTriples(v.base.SubjectTriples(s),
		v.del.subjectTriples(s), v.add.subjectTriples(s), store.CompareSPO)
}

func (v *View) PredicateTriples(p store.ID) []store.EncTriple {
	return mergeTriples(v.base.PredicateTriples(p),
		v.del.predicateTriples(p), v.add.predicateTriples(p), store.ComparePOS)
}

func (v *View) ObjectTriples(o store.ID) []store.EncTriple {
	return mergeTriples(v.base.ObjectTriples(o),
		v.del.objectTriples(o), v.add.objectTriples(o), store.CompareOSP)
}

// SubjectsOfPredicate returns the distinct subjects of p ascending.
// With a clean run it is the base's zero-copy answer; otherwise it is
// recomputed from the merged POS run, exactly as the base store
// computes its own (copy, sort, compact).
func (v *View) SubjectsOfPredicate(p store.ID) []store.ID {
	if v.add.countP(p) == 0 && v.del.countP(p) == 0 {
		return v.base.SubjectsOfPredicate(p)
	}
	run := v.PredicateTriples(p)
	subs := make([]store.ID, len(run))
	for i, t := range run {
		subs[i] = t.S
	}
	slices.Sort(subs)
	return slices.Compact(subs)
}

// ObjectsOfPredicate returns the distinct objects of p ascending. The
// merged POS run has objects ascending with duplicate runs, so the
// dirty path is a single compacting pass.
func (v *View) ObjectsOfPredicate(p store.ID) []store.ID {
	if v.add.countP(p) == 0 && v.del.countP(p) == 0 {
		return v.base.ObjectsOfPredicate(p)
	}
	run := v.PredicateTriples(p)
	objs := make([]store.ID, 0, len(run))
	for i, t := range run {
		if i == 0 || t.O != run[i-1].O {
			objs = append(objs, t.O)
		}
	}
	return objs
}

func (v *View) Triples() []store.EncTriple {
	if v.clean() {
		return v.base.Triples()
	}
	v.allOnce.Do(func() {
		v.all = mergeTriples(v.base.Triples(), v.del.spo.tri, v.add.spo.tri, store.CompareSPO)
	})
	return v.all
}

// The counts are exact arithmetic over the resolve invariants: every
// tombstone hits the base, no insert duplicates it.

func (v *View) CountP(p store.ID) int {
	return v.base.CountP(p) + v.add.countP(p) - v.del.countP(p)
}

func (v *View) CountS(s store.ID) int {
	return v.base.CountS(s) + v.add.countS(s) - v.del.countS(s)
}

func (v *View) CountO(o store.ID) int {
	return v.base.CountO(o) + v.add.countO(o) - v.del.countO(o)
}

func (v *View) CountSP(s, p store.ID) int {
	return v.base.CountSP(s, p) + len(v.add.objectsSP(s, p)) - len(v.del.objectsSP(s, p))
}

func (v *View) CountPO(p, o store.ID) int {
	return v.base.CountPO(p, o) + len(v.add.subjectsPO(p, o)) - len(v.del.subjectsPO(p, o))
}

func (v *View) CountSO(s, o store.ID) int {
	return v.base.CountSO(s, o) + len(v.add.predsSO(s, o)) - len(v.del.predsSO(s, o))
}
