package overlay

import (
	"time"

	"sparqluo/internal/rdf"
)

// Journal is the write-ahead durability hook a LiveStore writes
// through. When one is attached (SetJournal), every Insert/Delete batch
// is appended to the journal before it lands in the memtable and
// committed (made durable per the journal's sync policy) before the
// write call returns — the batch is never acknowledged undurable. The
// compactor brackets its fold with Checkpoint/Retire so the journal
// only ever holds the batches the newest persisted base image does not.
//
// sparqluo wires *wal.Log in through a thin adapter; tests inject fakes
// and fault injectors. Implementations must be safe for concurrent use.
// Append is called with the LiveStore's write mutex held (that is what
// orders appends against Checkpoint); Commit is called outside it so a
// slow fsync never blocks other writers or readers.
type Journal interface {
	// Append frames one write batch (del selects tombstones) and
	// returns its sequence number.
	Append(del bool, ts []rdf.Triple) (seq uint64, err error)
	// Commit blocks until the batch is durable per the journal's
	// policy (a group-committed fsync under sync=always; a no-op
	// under interval/never).
	Commit(seq uint64) error
	// Checkpoint establishes a retirement mark: batches appended
	// before it are the ones a now-starting compaction will fold.
	Checkpoint() (mark uint64, err error)
	// Retire drops everything before the mark, once the fold is
	// durably persisted. Returns how many segments were removed.
	Retire(mark uint64) (int, error)
	// Stats reports the journal's current shape for /stats//healthz.
	Stats() JournalStats
}

// JournalStats mirrors wal.Stats for reporting through LiveStats
// without the overlay depending on the wal package.
type JournalStats struct {
	Segments       int       // live segment files
	Bytes          int64     // bytes across them
	Appended       uint64    // batches appended since open
	Syncs          uint64    // fsyncs issued since open
	LastSync       time.Time // completion of the last fsync
	LastBatch      uint64    // most recently appended batch ID
	Replayed       int       // batches recovered at open
	TruncatedBytes int64     // torn-tail bytes discarded at open
}
