package snapshot

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sparqluo/internal/store"
)

// writeTestShards writes a k-way shard set for the shared test store
// into a temp dir and returns the manifest path and the source store.
func writeTestShards(t *testing.T, k int) (string, *store.Store) {
	t.Helper()
	st := testStore(t)
	path := filepath.Join(t.TempDir(), "store.shards")
	paths, err := WriteShards(path, st, k)
	if err != nil {
		t.Fatalf("WriteShards(k=%d): %v", k, err)
	}
	if len(paths) != k {
		t.Fatalf("WriteShards returned %d image paths, want %d", len(paths), k)
	}
	return path, st
}

// TestShardRoundTrip: write a shard set, reopen it, and demand the
// sharded store answer every accessor exactly like the source store —
// including the global statistics, which feed the cost models.
func TestShardRoundTrip(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		path, st := writeTestShards(t, k)
		sh, maps, m, err := OpenShards(path)
		if err != nil {
			t.Fatalf("OpenShards(k=%d): %v", k, err)
		}
		if sh.NumShards() != k || len(m.Shards) != k {
			t.Fatalf("k=%d: opened %d shards, manifest lists %d", k, sh.NumShards(), len(m.Shards))
		}
		if sh.NumTriples() != st.NumTriples() {
			t.Fatalf("k=%d: NumTriples = %d, want %d", k, sh.NumTriples(), st.NumTriples())
		}
		if !reflect.DeepEqual(sh.Stats(), st.Stats()) {
			t.Errorf("k=%d: global statistics differ after shard round trip", k)
		}
		if !reflect.DeepEqual(sh.Triples(), st.Triples()) {
			t.Errorf("k=%d: Triples() differs after shard round trip", k)
		}
		for _, tr := range st.Triples() {
			if !sh.Contains(tr.S, tr.P, tr.O) {
				t.Fatalf("k=%d: sharded store missing triple %+v", k, tr)
			}
			if !reflect.DeepEqual(sh.ObjectsSP(tr.S, tr.P), st.ObjectsSP(tr.S, tr.P)) {
				t.Fatalf("k=%d: ObjectsSP(%d,%d) differs", k, tr.S, tr.P)
			}
			if !reflect.DeepEqual(sh.SubjectsPO(tr.P, tr.O), st.SubjectsPO(tr.P, tr.O)) {
				t.Fatalf("k=%d: SubjectsPO(%d,%d) differs", k, tr.P, tr.O)
			}
		}
		for _, mp := range maps {
			if err := mp.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
		}
	}
}

func TestSniffManifest(t *testing.T) {
	path, _ := writeTestShards(t, 2)
	if ok, err := SniffManifest(path); err != nil || !ok {
		t.Fatalf("SniffManifest(manifest) = (%v, %v), want (true, nil)", ok, err)
	}
	if ok, err := SniffManifest(ShardImagePath(path, 0)); err != nil || ok {
		t.Fatalf("SniffManifest(image) = (%v, %v), want (false, nil)", ok, err)
	}
	if ok, err := Sniff(path); err != nil || ok {
		t.Fatalf("Sniff(manifest) = (%v, %v), want (false, nil)", ok, err)
	}
}

// refreshManifestCRC recomputes the trailing checksum after a test has
// mutated manifest bytes, so structural validators are what gets hit.
func refreshManifestCRC(b []byte) {
	binary.LittleEndian.PutUint32(b[len(b)-4:],
		crc32.Checksum(b[:len(b)-4], castagnoli))
}

// TestManifestRejectsCorruption drives ParseManifest through the
// corruption shapes the loader must survive: truncation anywhere, bit
// flips anywhere, trailing garbage, and — with the CRC refreshed so the
// structural checks are what fires — forged partition tables that
// overlap, gap, invert, or miscount. Every case must error; none may
// panic.
func TestManifestRejectsCorruption(t *testing.T) {
	path, st := writeTestShards(t, 3)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseManifest(raw); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}

	t.Run("truncations", func(t *testing.T) {
		for n := 0; n < len(raw); n++ {
			if _, err := ParseManifest(raw[:n]); err == nil {
				t.Fatalf("ParseManifest of %d-byte prefix succeeded", n)
			}
		}
	})

	t.Run("bit-flips", func(t *testing.T) {
		for pos := 0; pos < len(raw); pos++ {
			mut := append([]byte(nil), raw...)
			mut[pos] ^= 0x20
			_, err := ParseManifest(mut)
			if err == nil {
				t.Fatalf("ParseManifest with bit flipped at %d succeeded", pos)
			}
			if pos < len(ManifestMagic) && !errors.Is(err, ErrNotManifest) {
				t.Fatalf("flip in magic at %d: got %v, want ErrNotManifest", pos, err)
			}
		}
	})

	t.Run("trailing-garbage", func(t *testing.T) {
		if _, err := ParseManifest(append(append([]byte(nil), raw...), 0xCD)); err == nil {
			t.Error("ParseManifest with trailing byte succeeded")
		}
	})

	t.Run("version", func(t *testing.T) {
		mut := append([]byte(nil), raw...)
		mut[8] = 99
		refreshManifestCRC(mut)
		if _, err := ParseManifest(mut); err == nil || errors.Is(err, ErrCorrupt) {
			t.Fatalf("unknown version: got %v, want a distinct version error", err)
		}
	})

	// Forged partition tables, rebuilt from the parsed manifest so each
	// case states its shape directly.
	m, err := ParseManifest(raw)
	if err != nil {
		t.Fatal(err)
	}
	forged := []struct {
		name string
		mut  func(c *Manifest)
	}{
		{"overlapping ranges", func(c *Manifest) { c.Shards[1].Lo-- }},
		{"gap between ranges", func(c *Manifest) { c.Shards[1].Lo++ }},
		{"inverted range", func(c *Manifest) { c.Shards[1].Lo, c.Shards[1].Hi = c.Shards[1].Hi, c.Shards[1].Lo }},
		{"nonzero first lo", func(c *Manifest) { c.Shards[0].Lo = 1 }},
		{"short last hi", func(c *Manifest) { c.Shards[len(c.Shards)-1].Hi-- }},
		{"triple sum mismatch", func(c *Manifest) { c.Shards[0].Triples++ }},
		{"total mismatch", func(c *Manifest) { c.NumTriples++ }},
	}
	for _, f := range forged {
		t.Run(f.name, func(t *testing.T) {
			c := &Manifest{
				NumTriples: m.NumTriples,
				NumTerms:   m.NumTerms,
				Stats:      st.Stats(),
				Shards:     append([]ShardEntry(nil), m.Shards...),
			}
			f.mut(c)
			data, err := c.encode()
			if err != nil {
				return // encode itself rejected the forgery: fine
			}
			if _, err := ParseManifest(data); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("got %v, want ErrCorrupt", err)
			}
		})
	}

	t.Run("escaping name", func(t *testing.T) {
		c := &Manifest{NumTriples: m.NumTriples, NumTerms: m.NumTerms, Stats: st.Stats(),
			Shards: append([]ShardEntry(nil), m.Shards...)}
		c.Shards[0].Name = "../evil.img"
		if _, err := c.encode(); err == nil {
			t.Fatal("encode accepted an image name with a path separator")
		}
	})
}

// TestOpenShardsRejectsBadSets: a manifest whose images are missing,
// swapped, or inconsistent with its entries must fail to open — with an
// error, never a panic — and must not leak mappings.
func TestOpenShardsRejectsBadSets(t *testing.T) {
	t.Run("missing image", func(t *testing.T) {
		path, _ := writeTestShards(t, 3)
		if err := os.Remove(ShardImagePath(path, 1)); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := OpenShards(path); err == nil {
			t.Fatal("OpenShards with a missing image succeeded")
		}
	})
	t.Run("swapped images", func(t *testing.T) {
		path, _ := writeTestShards(t, 3)
		a, b := ShardImagePath(path, 0), ShardImagePath(path, 1)
		tmp := a + ".tmp"
		for _, step := range [][2]string{{a, tmp}, {b, a}, {tmp, b}} {
			if err := os.Rename(step[0], step[1]); err != nil {
				t.Fatal(err)
			}
		}
		if _, _, _, err := OpenShards(path); err == nil {
			t.Fatal("OpenShards with swapped shard images succeeded")
		}
	})
	t.Run("corrupt image", func(t *testing.T) {
		path, _ := writeTestShards(t, 2)
		img := ShardImagePath(path, 0)
		data, err := os.ReadFile(img)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xFF
		if err := os.WriteFile(img, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := OpenShards(path); err == nil {
			t.Fatal("OpenShards with a corrupt image succeeded")
		}
	})
	t.Run("not a manifest", func(t *testing.T) {
		path, _ := writeTestShards(t, 2)
		if _, _, _, err := OpenShards(ShardImagePath(path, 0)); !errors.Is(err, ErrNotManifest) {
			t.Fatalf("OpenShards(image) = %v, want ErrNotManifest", err)
		}
	})
}

// TestWriteShardsErrors: invalid shard counts and unfrozen stores are
// rejected before anything is written.
func TestWriteShardsErrors(t *testing.T) {
	st := testStore(t)
	dir := t.TempDir()
	if _, err := WriteShards(filepath.Join(dir, "m"), st, 0); err == nil {
		t.Error("WriteShards(k=0) succeeded")
	}
	if _, err := WriteShards(filepath.Join(dir, "m"), st, st.Dict().Len()+2); err == nil {
		t.Error("WriteShards(k > maxID+1) succeeded")
	}
	if entries, err := os.ReadDir(dir); err != nil || len(entries) != 0 {
		t.Errorf("failed WriteShards left %d files behind", len(entries))
	}
}
