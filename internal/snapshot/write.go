package snapshot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"slices"
	"unsafe"

	"sparqluo/internal/rdf"
	"sparqluo/internal/store"
)

// castagnoli is the CRC32-C polynomial table (hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// bytesOf reinterprets a numeric slice as its raw bytes, zero-copy.
func bytesOf[T any](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*int(unsafe.Sizeof(s[0])))
}

// Write serializes a frozen store as a snapshot image. The store must
// be frozen: the image embeds the Freeze-time statistics, and freezing
// is what guarantees the layout can never change under the writer.
func Write(w io.Writer, st *store.Store) error {
	if !st.Frozen() {
		return fmt.Errorf("snapshot: store must be frozen before writing")
	}
	l := st.Layout()
	dict := st.Dict()

	sections := make([][]byte, numSections+1) // indexed by section kind
	sections[secDictBlob] = encodeDict(dict.Terms())
	sections[secSPOTri] = bytesOf(l.SPO.Tri)
	sections[secSPOOff] = bytesOf(l.SPO.Off)
	sections[secSPOCol] = bytesOf(l.SPO.Col)
	sections[secPOSTri] = bytesOf(l.POS.Tri)
	sections[secPOSOff] = bytesOf(l.POS.Off)
	sections[secPOSCol] = bytesOf(l.POS.Col)
	sections[secOSPTri] = bytesOf(l.OSP.Tri)
	sections[secOSPOff] = bytesOf(l.OSP.Off)
	sections[secOSPCol] = bytesOf(l.OSP.Col)
	sections[secPosObjKeys] = bytesOf(l.PosObjKeys)
	sections[secPosObjOff] = bytesOf(l.PosObjOff)
	sections[secPosObjIdx] = bytesOf(l.PosObjIdx)
	sections[secStats] = encodeStats(st.Stats())

	// Lay the sections out after the header and table, each 8-aligned.
	table := make([]byte, tableSize)
	off := uint64(headerSize + tableSize)
	for kind := 1; kind <= numSections; kind++ {
		off = align(off)
		e := table[(kind-1)*sectionEntrySize:]
		binary.LittleEndian.PutUint32(e[0:], uint32(kind))
		binary.LittleEndian.PutUint64(e[8:], off)
		binary.LittleEndian.PutUint64(e[16:], uint64(len(sections[kind])))
		binary.LittleEndian.PutUint32(e[24:], crc32.Checksum(sections[kind], castagnoli))
		off += uint64(len(sections[kind]))
	}

	header := make([]byte, headerSize)
	copy(header[offMagic:], Magic[:])
	binary.LittleEndian.PutUint32(header[offVersion:], Version)
	bom := byteOrderMark()
	copy(header[offByteOrder:], bom[:])
	binary.LittleEndian.PutUint64(header[offFileSize:], off)
	binary.LittleEndian.PutUint64(header[offTriples:], uint64(st.NumTriples()))
	binary.LittleEndian.PutUint64(header[offTerms:], uint64(dict.Len()))
	binary.LittleEndian.PutUint32(header[offSecCount:], numSections)
	binary.LittleEndian.PutUint32(header[offTableCRC:], crc32.Checksum(table, castagnoli))
	binary.LittleEndian.PutUint32(header[offHeaderCRC:], crc32.Checksum(header[:offHeaderCRC], castagnoli))

	bw := bufio.NewWriterSize(w, 1<<20)
	pos := uint64(0)
	emit := func(b []byte) error {
		if pad := align(pos) - pos; pad > 0 {
			if _, err := bw.Write(make([]byte, pad)); err != nil {
				return err
			}
			pos += pad
		}
		n, err := bw.Write(b)
		pos += uint64(n)
		return err
	}
	if _, err := bw.Write(header); err != nil {
		return err
	}
	pos += headerSize
	if _, err := bw.Write(table); err != nil {
		return err
	}
	pos += tableSize
	for kind := 1; kind <= numSections; kind++ {
		if err := emit(sections[kind]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile writes the snapshot to path atomically: the image is
// assembled in a sibling temp file, synced to stable storage, and
// renamed into place, so a crash mid-write never leaves a half image
// under the target name.
func WriteFile(path string, st *store.Store) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".snapshot-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := Write(f, st); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	// CreateTemp opens 0600; images are shareable artifacts like the
	// N-Triples they cache (a deploy job often writes them as a
	// different user than the server reads them as).
	if err := f.Chmod(0o644); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	// Flush data before the rename: otherwise the filesystem may commit
	// the rename but not the pages, leaving a truncated image under the
	// final name after power loss — exactly what the temp file exists
	// to prevent.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Make the rename itself durable: without a directory fsync the
	// new name can vanish on power loss even though the data pages are
	// on the platter. The WAL retires its segments the moment this
	// function returns, so the image must actually exist after a crash.
	// Best effort on platforms that cannot fsync a directory.
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

func align(off uint64) uint64 {
	return (off + sectionAlign - 1) &^ (sectionAlign - 1)
}

// encodeDict serializes the term dictionary in ID order. Each record is
//
//	tag byte · uvarint len(value) · value
//	           [· uvarint len(extra) · extra]   (lang / datatype tags)
//
// Records are self-delimiting, so the loader reconstructs terms with a
// single sequential walk and no separate offset table.
func encodeDict(terms []rdf.Term) []byte {
	var n int
	for _, t := range terms {
		n += 1 + binary.MaxVarintLen32*2 + len(t.Value) + len(t.Lang) + len(t.Datatype)
	}
	blob := make([]byte, 0, n)
	for _, t := range terms {
		switch t.Kind {
		case rdf.IRI:
			blob = append(blob, tagIRI)
		case rdf.Blank:
			blob = append(blob, tagBlank)
		default:
			switch {
			case t.Lang != "":
				blob = append(blob, tagLangLit)
			case t.Datatype != "":
				blob = append(blob, tagTypedLit)
			default:
				blob = append(blob, tagLiteral)
			}
		}
		blob = binary.AppendUvarint(blob, uint64(len(t.Value)))
		blob = append(blob, t.Value...)
		switch {
		case t.Lang != "":
			blob = binary.AppendUvarint(blob, uint64(len(t.Lang)))
			blob = append(blob, t.Lang...)
		case t.Datatype != "":
			blob = binary.AppendUvarint(blob, uint64(len(t.Datatype)))
			blob = append(blob, t.Datatype...)
		}
	}
	return blob
}

// encodeStats serializes the Freeze-time statistics:
//
//	u64 NumTriples · u64 NumEntities · u64 NumPreds · u64 NumLiterals
//	u32 entry count · entries of {pred u32, count u32, subjects u32, objects u32}
//
// Entries are emitted in ascending predicate ID order so images are
// byte-deterministic for a given store.
func encodeStats(s *store.Stats) []byte {
	preds := make([]store.ID, 0, len(s.PredCount))
	for p := range s.PredCount {
		preds = append(preds, p)
	}
	slices.Sort(preds)
	b := make([]byte, 0, 36+16*len(preds))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.NumTriples))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.NumEntities))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.NumPreds))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.NumLiterals))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(preds)))
	for _, p := range preds {
		b = binary.LittleEndian.AppendUint32(b, uint32(p))
		b = binary.LittleEndian.AppendUint32(b, uint32(s.PredCount[p]))
		b = binary.LittleEndian.AppendUint32(b, uint32(s.PredSubjects[p]))
		b = binary.LittleEndian.AppendUint32(b, uint32(s.PredObjects[p]))
	}
	return b
}
