package snapshot

import (
	"bytes"
	"testing"

	"sparqluo/internal/rdf"
	"sparqluo/internal/store"
)

// FuzzSnapshotLoad drives Load with arbitrary bytes. The contract under
// test: Load either returns an error or returns a store whose basic
// read paths work — it must never panic, whatever the input. The seed
// corpus starts from a valid image plus the classic corruption shapes
// (truncation, bit flips, zeroed tails) so the fuzzer mutates from
// inside the format rather than spending its budget rediscovering the
// magic.
func FuzzSnapshotLoad(f *testing.F) {
	st := store.New()
	st.AddAll([]rdf.Triple{
		{S: rdf.NewIRI("http://ex/s"), P: rdf.NewIRI("http://ex/p"), O: rdf.NewLiteral("v")},
		{S: rdf.NewIRI("http://ex/s"), P: rdf.NewIRI("http://ex/q"), O: rdf.NewLangLiteral("v", "en")},
		{S: rdf.NewBlank("b"), P: rdf.NewIRI("http://ex/p"), O: rdf.NewTypedLiteral("1", "http://ex/int")},
	})
	st.Freeze()
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		f.Fatal(err)
	}
	img := buf.Bytes()

	f.Add([]byte(nil))
	f.Add(Magic[:])
	f.Add(img)
	f.Add(img[:len(img)/2])
	f.Add(img[:headerSize+tableSize])
	for _, pos := range []int{9, offFileSize, offTriples, offTerms, headerSize + 8, len(img) - 5} {
		mut := append([]byte(nil), img...)
		mut[pos] ^= 0xFF
		f.Add(mut)
	}
	zeroTail := append([]byte(nil), img...)
	for i := len(zeroTail) / 2; i < len(zeroTail); i++ {
		zeroTail[i] = 0
	}
	f.Add(zeroTail)

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Load(data)
		if err != nil {
			return
		}
		// A successfully loaded store must be readable without panicking.
		n := loaded.NumTriples()
		for _, tr := range loaded.Triples() {
			if !loaded.Contains(tr.S, tr.P, tr.O) {
				t.Fatalf("loaded store lost its own triple %+v", tr)
			}
		}
		d := loaded.Dict()
		for id := store.ID(1); int(id) <= d.Len(); id++ {
			term := d.Decode(id)
			if got, ok := d.Lookup(term); !ok || got != id {
				// Two distinct records may decode to terms with colliding
				// keys only if the image was crafted; Lookup must still
				// resolve to some ID without panicking.
				_ = got
			}
		}
		_ = n
	})
}
