package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"

	"sparqluo/internal/store"
)

// A shard manifest describes a set of snapshot images that together hold
// one triple set, range-partitioned by subject ID. The manifest is tiny
// — it carries the partition table and the original store's global
// statistics, not any triple data — and is CRC-checked end to end.
//
// # Manifest layout (version 1, little-endian)
//
//	[0, 8)    magic (distinct from the image magic)
//	[8, 12)   version u32
//	[12, 16)  shard count k u32
//	[16, 24)  total triples u64
//	[24, 32)  dictionary terms u64
//	[32, 36)  statistics blob length u32
//	[36, ...) statistics blob (same encoding as an image's stats section;
//	          the GLOBAL statistics of the unpartitioned store, so cost
//	          models on the sharded store see exactly what a single store
//	          would report)
//	[...]     k shard entries:
//	            {lo u32, hi u32, triples u64, nameLen u16, name}
//	          shard i holds the triples with subject in [lo, hi); ranges
//	          must start at 0, be contiguous, and end at terms+1; names
//	          are image file names relative to the manifest's directory
//	[last 4]  CRC32-C over every preceding byte
var ManifestMagic = [8]byte{0x89, 'S', 'P', 'Q', 'S', 'H', 0x1a, '\n'}

// ManifestVersion is the current manifest format version.
const ManifestVersion = 1

// ErrNotManifest reports that a file does not begin with the shard
// manifest magic.
var ErrNotManifest = errors.New("snapshot: not a shard manifest")

// ShardEntry is one shard's row in the manifest.
type ShardEntry struct {
	Name    string   // image file name, relative to the manifest's directory
	Lo, Hi  store.ID // subject-ID range [Lo, Hi)
	Triples int      // triples in this shard
}

// Manifest is the parsed shard manifest.
type Manifest struct {
	NumTriples int          // total triples across all shards
	NumTerms   int          // dictionary terms (shared ID space)
	Stats      *store.Stats // global statistics of the full triple set
	Shards     []ShardEntry
}

const manifestFixedSize = 36 // magic + version + count + triples + terms + statsLen

// encode serializes the manifest (including the trailing CRC).
func (m *Manifest) encode() ([]byte, error) {
	stats := encodeStats(m.Stats)
	b := make([]byte, 0, manifestFixedSize+len(stats)+len(m.Shards)*32)
	b = append(b, ManifestMagic[:]...)
	b = binary.LittleEndian.AppendUint32(b, ManifestVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Shards)))
	b = binary.LittleEndian.AppendUint64(b, uint64(m.NumTriples))
	b = binary.LittleEndian.AppendUint64(b, uint64(m.NumTerms))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(stats)))
	b = append(b, stats...)
	for i, e := range m.Shards {
		if err := checkShardName(e.Name); err != nil {
			return nil, fmt.Errorf("snapshot: shard %d: %w", i, err)
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(e.Lo))
		b = binary.LittleEndian.AppendUint32(b, uint32(e.Hi))
		b = binary.LittleEndian.AppendUint64(b, uint64(e.Triples))
		b = binary.LittleEndian.AppendUint16(b, uint16(len(e.Name)))
		b = append(b, e.Name...)
	}
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, castagnoli))
	return b, nil
}

// checkShardName enforces that a shard image name is a plain file name:
// relative references and separators would let a manifest point outside
// its own directory.
func checkShardName(name string) error {
	if name == "" || len(name) > math.MaxUint16 {
		return fmt.Errorf("invalid image name length %d", len(name))
	}
	if name != filepath.Base(name) || name == "." || name == ".." {
		return fmt.Errorf("image name %q is not a plain file name", name)
	}
	return nil
}

// ParseManifest decodes and validates manifest bytes. Like Load, it is a
// fuzzing entry point: arbitrary input must produce an error, never a
// panic. Validation covers the CRC, the count cross-checks, and the
// partition table (ranges start at 0, are contiguous and strictly
// increasing, end at terms+1, and their triple counts sum to the total).
func ParseManifest(data []byte) (*Manifest, error) {
	if len(data) < len(ManifestMagic) || !bytes.Equal(data[:len(ManifestMagic)], ManifestMagic[:]) {
		return nil, ErrNotManifest
	}
	if len(data) < manifestFixedSize+4 {
		return nil, corruptf("manifest shorter than its fixed header")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return nil, corruptf("manifest checksum mismatch")
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != ManifestVersion {
		return nil, fmt.Errorf("snapshot: unsupported manifest version %d (this build reads version %d)", v, ManifestVersion)
	}
	k := int(binary.LittleEndian.Uint32(data[12:]))
	triples64 := binary.LittleEndian.Uint64(data[16:])
	terms64 := binary.LittleEndian.Uint64(data[24:])
	statsLen := int(binary.LittleEndian.Uint32(data[32:]))
	if k < 1 || k > len(body) {
		return nil, corruptf("manifest shard count %d out of range", k)
	}
	if triples64 > math.MaxInt32 {
		return nil, corruptf("manifest triple count %d exceeds format limit", triples64)
	}
	if terms64 > math.MaxInt32-2 {
		return nil, corruptf("manifest term count %d exceeds format limit", terms64)
	}
	m := &Manifest{NumTriples: int(triples64), NumTerms: int(terms64)}
	rest := body[manifestFixedSize:]
	if statsLen > len(rest) {
		return nil, corruptf("manifest statistics blob of %d bytes overruns the file", statsLen)
	}
	stats, err := decodeStats(rest[:statsLen], m.NumTriples, m.NumTerms)
	if err != nil {
		return nil, err
	}
	m.Stats = stats
	rest = rest[statsLen:]

	sum := 0
	for i := 0; i < k; i++ {
		if len(rest) < 18 {
			return nil, corruptf("manifest truncated inside shard entry %d", i)
		}
		e := ShardEntry{
			Lo: store.ID(binary.LittleEndian.Uint32(rest[0:])),
			Hi: store.ID(binary.LittleEndian.Uint32(rest[4:])),
		}
		t64 := binary.LittleEndian.Uint64(rest[8:])
		nameLen := int(binary.LittleEndian.Uint16(rest[16:]))
		rest = rest[18:]
		if t64 > math.MaxInt32 {
			return nil, corruptf("shard %d triple count %d exceeds format limit", i, t64)
		}
		e.Triples = int(t64)
		if nameLen > len(rest) {
			return nil, corruptf("shard %d name of %d bytes overruns the manifest", i, nameLen)
		}
		e.Name = string(rest[:nameLen])
		rest = rest[nameLen:]
		if err := checkShardName(e.Name); err != nil {
			return nil, corruptf("shard %d: %v", i, err)
		}
		if e.Lo >= e.Hi {
			return nil, corruptf("shard %d range [%d, %d) is empty or inverted", i, e.Lo, e.Hi)
		}
		if i == 0 && e.Lo != 0 {
			return nil, corruptf("shard ranges must start at ID 0, got %d", e.Lo)
		}
		if i > 0 && e.Lo != m.Shards[i-1].Hi {
			return nil, corruptf("shard %d range starts at %d, previous ends at %d (gap or overlap)",
				i, e.Lo, m.Shards[i-1].Hi)
		}
		sum += e.Triples
		m.Shards = append(m.Shards, e)
	}
	if len(rest) != 0 {
		return nil, corruptf("manifest has %d trailing bytes after the last shard entry", len(rest))
	}
	if hi := m.Shards[k-1].Hi; int(hi) != m.NumTerms+1 {
		return nil, corruptf("shard ranges end at %d, want maxID+1 = %d", hi, m.NumTerms+1)
	}
	if sum != m.NumTriples {
		return nil, corruptf("shard triple counts sum to %d, manifest total is %d", sum, m.NumTriples)
	}
	return m, nil
}

// ReadManifest reads and parses the manifest file at path.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseManifest(data)
}

// WriteManifest writes the manifest to path atomically (same temp +
// fsync + rename discipline as WriteFile).
func WriteManifest(path string, m *Manifest) error {
	data, err := m.encode()
	if err != nil {
		return err
	}
	f, err := os.CreateTemp(filepath.Dir(path), ".manifest-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return fail(err)
	}
	if err := f.Chmod(0o644); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// SniffManifest reports whether the file at path begins with the shard
// manifest magic.
func SniffManifest(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	var head [8]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return false, nil
		}
		return false, err
	}
	return head == ManifestMagic, nil
}

// ShardImageName returns the image file name of shard i for a manifest
// at path: "<base>.<i padded to 3>".
func ShardImageName(path string, i int) string {
	return fmt.Sprintf("%s.%03d", filepath.Base(path), i)
}

// ShardImagePath returns the full path of shard i's image for a
// manifest at path (the image sits in the manifest's directory).
func ShardImagePath(path string, i int) string {
	return filepath.Join(filepath.Dir(path), ShardImageName(path, i))
}

// WriteShards splits a frozen store into k subject-range shards and
// writes one snapshot image per shard next to the manifest at path
// (images are named ShardImageName(path, i)), then writes the manifest
// itself. Every file is written atomically; the manifest goes last, so a
// crash mid-run never leaves a manifest naming missing images. Returns
// the image paths in shard order.
func WriteShards(path string, st *store.Store, k int) ([]string, error) {
	shards, bounds, err := st.ShardBySubject(k)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(path)
	m := &Manifest{
		NumTriples: st.NumTriples(),
		NumTerms:   st.Dict().Len(),
		Stats:      st.Stats(),
		Shards:     make([]ShardEntry, k),
	}
	paths := make([]string, k)
	for i, sub := range shards {
		name := ShardImageName(path, i)
		img := filepath.Join(dir, name)
		if err := WriteFile(img, sub); err != nil {
			return nil, fmt.Errorf("snapshot: writing shard %d: %w", i, err)
		}
		paths[i] = img
		m.Shards[i] = ShardEntry{Name: name, Lo: bounds[i], Hi: bounds[i+1], Triples: sub.NumTriples()}
	}
	if err := WriteManifest(path, m); err != nil {
		return nil, err
	}
	return paths, nil
}

// OpenShards reads the manifest at path, opens every shard image in
// parallel, and assembles a sharded store over them. Each image is
// validated by the regular snapshot loader (CRCs, row pointers, ID
// ranges), then cross-checked against its manifest entry: dictionary
// size, triple count, and subject-range confinement (every triple's
// subject inside [Lo, Hi) — an O(1) row-pointer check). The returned
// mappings must stay alive as long as the store is in use and be closed
// afterwards, in any order.
func OpenShards(path string) (*store.ShardedStore, []*Mapping, *Manifest, error) {
	m, err := ReadManifest(path)
	if err != nil {
		return nil, nil, nil, err
	}
	dir := filepath.Dir(path)
	k := len(m.Shards)
	shards := make([]*store.Store, k)
	maps := make([]*Mapping, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i, e := range m.Shards {
		wg.Add(1)
		go func(i int, e ShardEntry) {
			defer wg.Done()
			st, mp, err := Open(filepath.Join(dir, e.Name))
			if err != nil {
				errs[i] = fmt.Errorf("snapshot: shard %d (%s): %w", i, e.Name, err)
				return
			}
			shards[i], maps[i] = st, mp
		}(i, e)
	}
	wg.Wait()
	closeAll := func() {
		for _, mp := range maps {
			mp.Close()
		}
	}
	for _, err := range errs {
		if err != nil {
			closeAll()
			return nil, nil, nil, err
		}
	}
	bounds := make([]store.ID, k+1)
	for i, e := range m.Shards {
		bounds[i], bounds[i+1] = e.Lo, e.Hi
		if got := shards[i].Dict().Len(); got != m.NumTerms {
			closeAll()
			return nil, nil, nil, corruptf("shard %d image has %d dictionary terms, manifest says %d", i, got, m.NumTerms)
		}
		if got := shards[i].NumTriples(); got != e.Triples {
			closeAll()
			return nil, nil, nil, corruptf("shard %d image holds %d triples, manifest says %d", i, got, e.Triples)
		}
	}
	ss, err := store.NewShardedStore(shards, bounds, m.Stats)
	if err != nil {
		closeAll()
		return nil, nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return ss, maps, m, nil
}
