package snapshot

import (
	"bytes"
	"cmp"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"slices"
	"unsafe"

	"sparqluo/internal/rdf"
	"sparqluo/internal/store"
)

// ErrNotSnapshot reports that a file does not begin with the snapshot
// magic (it is probably N-Triples text or something else entirely).
var ErrNotSnapshot = errors.New("snapshot: not a snapshot image")

// ErrCorrupt reports that a file carries the snapshot magic but fails
// structural validation or checksum verification. Every integrity
// failure the loader detects wraps this error.
var ErrCorrupt = errors.New("snapshot: corrupt image")

// corruptf builds an error wrapping ErrCorrupt.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Mapping owns the memory backing a loaded store — a memory-mapped
// region on unix, a plain heap buffer elsewhere. Close releases it.
// The store returned alongside a Mapping (and any term or slice views
// obtained from that store) must not be used after Close.
type Mapping struct {
	data  []byte
	unmap func([]byte) error
}

// Close releases the mapping. It is idempotent and nil-safe.
func (m *Mapping) Close() error {
	if m == nil || m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	if m.unmap == nil {
		return nil
	}
	return m.unmap(data)
}

// Open memory-maps the snapshot image at path (falling back to reading
// it into memory on platforms without mmap) and reconstructs a frozen
// store over zero-copy views of the mapped bytes. The returned Mapping
// must be kept alive — and eventually Closed — for as long as the store
// is in use.
func Open(path string) (*store.Store, *Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size < headerSize {
		return nil, nil, ErrNotSnapshot
	}
	if size > math.MaxInt-sectionAlign {
		return nil, nil, corruptf("file size %d exceeds addressable memory", size)
	}
	data, unmap, err := mapFile(f, size)
	if err != nil {
		return nil, nil, fmt.Errorf("snapshot: mapping %s: %w", path, err)
	}
	st, err := Load(data)
	if err != nil {
		unmap(data)
		return nil, nil, err
	}
	return st, &Mapping{data: data, unmap: unmap}, nil
}

// Sniff reports whether the file at path begins with the snapshot
// magic. A file too short to carry the magic is simply not a snapshot,
// not an error.
func Sniff(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	var head [8]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return false, nil
		}
		return false, err
	}
	return head == Magic, nil
}

// Load reconstructs a frozen store from snapshot image bytes without
// copying the bulk sections: the store's triple arrays, row pointers
// and columns — and the dictionary's term strings — are views into
// data, which must therefore stay alive and unmodified for the life of
// the store. Open wraps Load over a memory-mapped file; Load itself is
// also the fuzzing entry point and must return an error (never panic)
// on arbitrary input.
func Load(data []byte) (*store.Store, error) {
	if len(data) < len(Magic) || !bytes.Equal(data[:len(Magic)], Magic[:]) {
		return nil, ErrNotSnapshot
	}
	if len(data) < headerSize+tableSize {
		return nil, corruptf("file shorter than header and section table")
	}
	// The zero-copy casts require the section payloads to be aligned for
	// their element types. Section offsets are 8-aligned relative to the
	// file start, so an 8-aligned base covers every payload; mmap returns
	// page-aligned memory, but Load accepts arbitrary buffers (fuzzing,
	// read-file fallback), so realign by copying when needed.
	if uintptr(unsafe.Pointer(&data[0]))%sectionAlign != 0 {
		buf := make([]uint64, (len(data)+7)/8)
		aligned := unsafe.Slice((*byte)(unsafe.Pointer(&buf[0])), len(data))
		copy(aligned, data)
		data = aligned
	}

	if v := binary.LittleEndian.Uint32(data[offVersion:]); v != Version {
		return nil, fmt.Errorf("snapshot: unsupported format version %d (this build reads version %d)", v, Version)
	}
	if crc := crc32.Checksum(data[:offHeaderCRC], castagnoli); crc != binary.LittleEndian.Uint32(data[offHeaderCRC:]) {
		return nil, corruptf("header checksum mismatch")
	}
	bom := byteOrderMark()
	if !bytes.Equal(data[offByteOrder:offByteOrder+4], bom[:]) {
		return nil, fmt.Errorf("snapshot: image was written on a platform with different byte order")
	}
	if sz := binary.LittleEndian.Uint64(data[offFileSize:]); sz != uint64(len(data)) {
		return nil, corruptf("header file size %d, actual %d (truncated or padded image)", sz, len(data))
	}
	numTriples64 := binary.LittleEndian.Uint64(data[offTriples:])
	numTerms64 := binary.LittleEndian.Uint64(data[offTerms:])
	if numTriples64 > math.MaxInt32 {
		return nil, corruptf("triple count %d exceeds format limit", numTriples64)
	}
	if numTerms64 > math.MaxInt32-2 {
		return nil, corruptf("term count %d exceeds format limit", numTerms64)
	}
	numTriples, numTerms := int(numTriples64), int(numTerms64)
	if got := binary.LittleEndian.Uint32(data[offSecCount:]); got != numSections {
		return nil, corruptf("section count %d, want %d", got, numSections)
	}
	table := data[headerSize : headerSize+tableSize]
	if crc := crc32.Checksum(table, castagnoli); crc != binary.LittleEndian.Uint32(data[offTableCRC:]) {
		return nil, corruptf("section table checksum mismatch")
	}

	// Parse and bounds-check the section table. Every kind must appear
	// exactly once; offsets must be aligned and inside the file.
	var secs [numSections + 1][]byte
	seen := [numSections + 1]bool{}
	type span struct{ off, end uint64 }
	spans := make([]span, 0, numSections)
	for i := 0; i < numSections; i++ {
		e := table[i*sectionEntrySize:]
		kind := binary.LittleEndian.Uint32(e[0:])
		off := binary.LittleEndian.Uint64(e[8:])
		length := binary.LittleEndian.Uint64(e[16:])
		crc := binary.LittleEndian.Uint32(e[24:])
		if kind == 0 || kind > numSections {
			return nil, corruptf("unknown section kind %d", kind)
		}
		if seen[kind] {
			return nil, corruptf("duplicate section kind %d", kind)
		}
		seen[kind] = true
		if off%sectionAlign != 0 {
			return nil, corruptf("section %d misaligned offset %d", kind, off)
		}
		if off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, corruptf("section %d [%d, +%d) outside file of %d bytes", kind, off, length, len(data))
		}
		payload := data[off : off+length]
		if got := crc32.Checksum(payload, castagnoli); got != crc {
			return nil, corruptf("section %d checksum mismatch", kind)
		}
		secs[kind] = payload
		spans = append(spans, span{off, off + length})
	}

	// The payloads must tile the file exactly: ordered by offset, each
	// starts at the 8-aligned end of its predecessor, any alignment gap
	// is zero bytes, and the last one ends at EOF. This forbids
	// overlapping sections and leaves no byte of the image outside the
	// reach of a checksum or the zero-padding rule.
	slices.SortFunc(spans, func(a, b span) int { return cmp.Compare(a.off, b.off) })
	cur := uint64(headerSize + tableSize)
	for _, sp := range spans {
		if sp.off != align(cur) {
			return nil, corruptf("section layout has a hole or overlap at byte %d", cur)
		}
		for _, pad := range data[cur:sp.off] {
			if pad != 0 {
				return nil, corruptf("nonzero alignment padding at byte %d", cur)
			}
		}
		cur = sp.end
	}
	if cur != uint64(len(data)) {
		return nil, corruptf("image has %d trailing bytes after the last section", uint64(len(data))-cur)
	}

	// Cross-check section lengths against the header counts before any
	// count-proportional allocation, so a forged header cannot provoke a
	// huge allocation: every count is tied back to a section that must
	// physically fit in the file.
	triBytes, idBytes := uint64(numTriples)*12, uint64(numTriples)*4
	offBytes := uint64(numTerms+2) * 4
	for _, c := range []struct {
		kind int
		want uint64
		name string
	}{
		{secSPOTri, triBytes, "SPO triples"},
		{secPOSTri, triBytes, "POS triples"},
		{secOSPTri, triBytes, "OSP triples"},
		{secSPOCol, idBytes, "SPO column"},
		{secPOSCol, idBytes, "POS column"},
		{secOSPCol, idBytes, "OSP column"},
		{secSPOOff, offBytes, "SPO row pointers"},
		{secPOSOff, offBytes, "POS row pointers"},
		{secOSPOff, offBytes, "OSP row pointers"},
		{secPosObjIdx, offBytes, "POS level-2 index"},
	} {
		if uint64(len(secs[c.kind])) != c.want {
			return nil, corruptf("%s section is %d bytes, want %d", c.name, len(secs[c.kind]), c.want)
		}
	}
	if len(secs[secPosObjKeys])%4 != 0 {
		return nil, corruptf("POS level-2 keys section not a multiple of 4 bytes")
	}
	numObjKeys := len(secs[secPosObjKeys]) / 4
	if numObjKeys > numTriples {
		return nil, corruptf("%d POS level-2 keys for %d triples", numObjKeys, numTriples)
	}
	if uint64(len(secs[secPosObjOff])) != uint64(numObjKeys+1)*4 {
		return nil, corruptf("POS level-2 run starts section is %d bytes, want %d", len(secs[secPosObjOff]), (numObjKeys+1)*4)
	}

	l := store.Layout{
		SPO: store.PermLayout{
			Tri: view[store.EncTriple](secs[secSPOTri], 12),
			Off: view[int32](secs[secSPOOff], 4),
			Col: view[store.ID](secs[secSPOCol], 4),
		},
		POS: store.PermLayout{
			Tri: view[store.EncTriple](secs[secPOSTri], 12),
			Off: view[int32](secs[secPOSOff], 4),
			Col: view[store.ID](secs[secPOSCol], 4),
		},
		OSP: store.PermLayout{
			Tri: view[store.EncTriple](secs[secOSPTri], 12),
			Off: view[int32](secs[secOSPOff], 4),
			Col: view[store.ID](secs[secOSPCol], 4),
		},
		PosObjKeys: view[store.ID](secs[secPosObjKeys], 4),
		PosObjOff:  view[int32](secs[secPosObjOff], 4),
		PosObjIdx:  view[int32](secs[secPosObjIdx], 4),
	}

	// Row-pointer arrays are dereferenced unchecked on the query path
	// (run() trusts off[id] ≤ off[id+1] ≤ len(tri)), so their
	// monotonicity is a load-time invariant, not just a checksum matter.
	for _, c := range []struct {
		name  string
		off   []int32
		total int
	}{
		{"SPO row pointers", l.SPO.Off, numTriples},
		{"POS row pointers", l.POS.Off, numTriples},
		{"OSP row pointers", l.OSP.Off, numTriples},
		{"POS level-2 run starts", l.PosObjOff, numTriples},
		{"POS level-2 index", l.PosObjIdx, numObjKeys},
	} {
		if err := checkRowPointers(c.name, c.off, c.total); err != nil {
			return nil, err
		}
	}

	// Triple, column and level-2 key IDs feed Dict.Decode unchecked on
	// the result path, where the reserved ID 0 or an ID beyond the
	// dictionary panics; make those a load-time error instead. This is a
	// compare-only min/max sweep, far cheaper than the parse work the
	// format avoids — the sortedness of the permutations is still
	// trusted to the checksums (a forged image can produce wrong
	// results, not panics).
	if numTriples > 0 {
		lo, hi := store.ID(math.MaxUint32), store.ID(0)
		for _, tri := range [][]store.EncTriple{l.SPO.Tri, l.POS.Tri, l.OSP.Tri} {
			for _, tr := range tri {
				lo = min(lo, tr.S, tr.P, tr.O)
				hi = max(hi, tr.S, tr.P, tr.O)
			}
		}
		for _, col := range [][]store.ID{l.SPO.Col, l.POS.Col, l.OSP.Col, l.PosObjKeys} {
			for _, id := range col {
				lo, hi = min(lo, id), max(hi, id)
			}
		}
		if lo == store.None || int(hi) > numTerms {
			return nil, corruptf("triples reference term IDs in [%d, %d], outside the dictionary's [1, %d]", lo, hi, numTerms)
		}
	}

	terms, err := decodeDict(secs[secDictBlob], numTerms)
	if err != nil {
		return nil, err
	}
	stats, err := decodeStats(secs[secStats], numTriples, numTerms)
	if err != nil {
		return nil, err
	}
	return store.FromLayout(store.NewLoadedDict(terms), l, stats), nil
}

// view reinterprets a validated section payload as a typed slice. The
// payload is 8-aligned (section offsets are 8-aligned over an 8-aligned
// base) and its length is a multiple of elemSize by prior validation.
func view[T any](b []byte, elemSize int) []T {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), len(b)/elemSize)
}

// checkRowPointers verifies a CSR row-pointer array: starts at 0, is
// nondecreasing, and ends at the total it indexes into.
func checkRowPointers(name string, off []int32, total int) error {
	if len(off) == 0 || off[0] != 0 {
		return corruptf("%s do not start at 0", name)
	}
	prev := int32(0)
	for _, v := range off {
		if v < prev {
			return corruptf("%s decrease (%d after %d)", name, v, prev)
		}
		prev = v
	}
	if int(prev) != total {
		return corruptf("%s end at %d, want %d", name, prev, total)
	}
	return nil
}

// decodeDict reconstructs the term slice from the dictionary blob. The
// term strings are zero-copy views into blob; only the term headers are
// materialized.
func decodeDict(blob []byte, numTerms int) ([]rdf.Term, error) {
	// Each record is at least two bytes (tag + length), which bounds the
	// term slice allocation by the physical section size no matter what
	// the header claims.
	if numTerms > len(blob)/2 {
		return nil, corruptf("%d dictionary terms cannot fit in %d blob bytes", numTerms, len(blob))
	}
	terms := make([]rdf.Term, 0, numTerms)
	pos := 0
	for pos < len(blob) {
		if len(terms) == numTerms {
			return nil, corruptf("dictionary blob has bytes after the last term")
		}
		tag := blob[pos]
		pos++
		value, err := readString(blob, &pos)
		if err != nil {
			return nil, err
		}
		var t rdf.Term
		switch tag {
		case tagIRI:
			t = rdf.Term{Kind: rdf.IRI, Value: value}
		case tagBlank:
			t = rdf.Term{Kind: rdf.Blank, Value: value}
		case tagLiteral:
			t = rdf.Term{Kind: rdf.Literal, Value: value}
		case tagLangLit, tagTypedLit:
			extra, err := readString(blob, &pos)
			if err != nil {
				return nil, err
			}
			if tag == tagLangLit {
				t = rdf.Term{Kind: rdf.Literal, Value: value, Lang: extra}
			} else {
				t = rdf.Term{Kind: rdf.Literal, Value: value, Datatype: extra}
			}
		default:
			return nil, corruptf("unknown dictionary term tag %d", tag)
		}
		terms = append(terms, t)
	}
	if len(terms) != numTerms {
		return nil, corruptf("dictionary blob holds %d terms, header says %d", len(terms), numTerms)
	}
	return terms, nil
}

// readString decodes one uvarint-prefixed string from blob at *pos as a
// zero-copy view, advancing *pos past it.
func readString(blob []byte, pos *int) (string, error) {
	v, n := binary.Uvarint(blob[*pos:])
	if n <= 0 {
		return "", corruptf("bad string length varint in dictionary blob")
	}
	*pos += n
	if v > uint64(len(blob)-*pos) {
		return "", corruptf("string of %d bytes overruns dictionary blob", v)
	}
	if v == 0 {
		return "", nil
	}
	s := unsafe.String(&blob[*pos], int(v))
	*pos += int(v)
	return s, nil
}

// decodeStats reconstructs the Freeze-time statistics and cross-checks
// them against the header counts.
func decodeStats(b []byte, numTriples, numTerms int) (*store.Stats, error) {
	if len(b) < 36 {
		return nil, corruptf("statistics section is %d bytes, want at least 36", len(b))
	}
	s := &store.Stats{
		NumTriples:   int(binary.LittleEndian.Uint64(b[0:])),
		NumEntities:  int(binary.LittleEndian.Uint64(b[8:])),
		NumPreds:     int(binary.LittleEndian.Uint64(b[16:])),
		NumLiterals:  int(binary.LittleEndian.Uint64(b[24:])),
		PredCount:    map[store.ID]int{},
		PredSubjects: map[store.ID]int{},
		PredObjects:  map[store.ID]int{},
	}
	if s.NumTriples != numTriples {
		return nil, corruptf("statistics count %d triples, header says %d", s.NumTriples, numTriples)
	}
	if s.NumEntities < 0 || s.NumEntities > numTerms || s.NumLiterals < 0 || s.NumLiterals > numTerms {
		return nil, corruptf("statistics count more entities/literals than dictionary terms")
	}
	entries := int(binary.LittleEndian.Uint32(b[32:]))
	if uint64(len(b)) != 36+16*uint64(entries) {
		return nil, corruptf("statistics section is %d bytes for %d predicate entries", len(b), entries)
	}
	if s.NumPreds != entries {
		return nil, corruptf("statistics list %d predicates, header field says %d", entries, s.NumPreds)
	}
	for i := 0; i < entries; i++ {
		e := b[36+16*i:]
		p := store.ID(binary.LittleEndian.Uint32(e[0:]))
		if p == store.None || int(p) > numTerms {
			return nil, corruptf("statistics reference out-of-range predicate %d", p)
		}
		if _, dup := s.PredCount[p]; dup {
			return nil, corruptf("statistics list predicate %d twice", p)
		}
		s.PredCount[p] = int(binary.LittleEndian.Uint32(e[4:]))
		s.PredSubjects[p] = int(binary.LittleEndian.Uint32(e[8:]))
		s.PredObjects[p] = int(binary.LittleEndian.Uint32(e[12:]))
	}
	return s, nil
}
