//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package snapshot

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only. The kernel pages the image in
// on demand, so open time is independent of image size and unqueried
// regions never occupy memory.
func mapFile(f *os.File, size int64) ([]byte, func([]byte) error, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, syscall.Munmap, nil
}
