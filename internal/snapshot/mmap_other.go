//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package snapshot

import (
	"io"
	"os"
)

// mapFile reads the file into memory on platforms without a usable
// mmap. Loading still skips parsing and sorting; it just pays one
// sequential read up front.
func mapFile(f *os.File, size int64) ([]byte, func([]byte) error, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, func([]byte) error { return nil }, nil
}
