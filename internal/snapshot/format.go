// Package snapshot defines a versioned on-disk binary image format for
// a frozen store and implements a writer and a zero-copy loader for it.
//
// Motivation: the columnar store is built by an O(n log n) sort of the
// triple log, and feeding it requires parsing N-Triples text. A server
// (or a freshly spawned shard) should not pay either cost on boot.
// Because every index structure of the frozen store is a
// position-independent flat array (sorted permutations, CSR row
// pointers, dense-ID columns), the store can be dumped as-is and
// reconstructed by memory-mapping the file and slicing typed views over
// the mapped bytes — cold start becomes an open+mmap plus an O(terms)
// dictionary walk, with no per-triple work at all.
//
// # File layout (version 1)
//
//	[0, 64)            fixed header (little-endian):
//	                     magic [8]byte, version u32, byte-order mark
//	                     [4]byte, file size u64, numTriples u64,
//	                     numTerms u64, section count u32, section-table
//	                     CRC32-C u32, reserved [12]byte, header CRC32-C
//	                     u32 (over bytes [0, 60))
//	[64, 64+32·n)      section table: n entries of
//	                     {kind u32, reserved u32, offset u64, length
//	                     u64, CRC32-C u32, reserved u32}
//	[...]              section payloads, each 8-byte aligned
//
// Version 1 has exactly the 14 sections enumerated below, each present
// exactly once, and the payloads (with their zero alignment padding)
// tile the rest of the file exactly — every byte of an image is covered
// by the header CRC, the table CRC, a section CRC, or the
// must-be-zero-padding rule, so any single corrupted byte is detected. The bulk numeric sections (triple arrays, row pointers,
// columns) are raw dumps of the store's in-memory arrays in the
// *writer's native byte order*; the byte-order mark records that order
// and the loader refuses images written on a platform with a different
// one, so the zero-copy cast is always correct and cross-endian images
// fail loudly instead of silently misreading. All metadata (header,
// section table, dictionary records, statistics) is little-endian
// regardless of platform.
//
// # Integrity and trust model
//
// Every section carries a CRC32-C checksum, verified at load time, and
// the loader bounds-checks the header, the section table, the
// dictionary records, the monotonicity of every row-pointer array, and
// the dictionary range of every triple/column ID (a compare-only
// min/max sweep) before handing out views. That makes accidental
// corruption (truncation, bit rot, torn writes) a clean error, never a
// panic — FuzzSnapshotLoad locks this in — and keeps even a crafted
// image with matching checksums from reaching out-of-range dictionary
// IDs at query time. What the loader deliberately does *not* verify is
// the sort order of the permutations (that would reintroduce the
// per-triple cold-start cost the format exists to avoid), so a forged
// image can still produce wrong query results. Treat image files with
// the same trust as the data directory of any embedded database.
//
// # Versioning
//
// The version field is a single monotonically increasing format number.
// Readers reject any version they do not know (there is no
// minor/compatible tier yet); any layout change — new section kinds,
// record changes — bumps it. Snapshots are a cache of the canonical
// N-Triples data, so migration is "regenerate the image", never an
// in-place upgrade.
package snapshot

import (
	"unsafe"

	"sparqluo/internal/store"
)

// Magic identifies a snapshot image. Modeled on the PNG signature: the
// high bit catches 7-bit transfer mangling, 0x1a stops accidental
// terminal cat on DOS-heritage systems, and the trailing \n catches
// newline translation. No N-Triples document can begin with these bytes.
var Magic = [8]byte{0x89, 'S', 'P', 'Q', 'U', 'O', 0x1a, '\n'}

// Version is the current format version; see the package comment for
// the compatibility policy.
const Version = 1

// Section kinds of format version 1. Every kind appears exactly once.
const (
	secDictBlob   = iota + 1 // dictionary term records (see write.go)
	secSPOTri                // []EncTriple sorted (S,P,O)
	secSPOOff                // []int32 row pointers over S
	secSPOCol                // []ID object column
	secPOSTri                // []EncTriple sorted (P,O,S)
	secPOSOff                // []int32 row pointers over P
	secPOSCol                // []ID subject column
	secOSPTri                // []EncTriple sorted (O,S,P)
	secOSPOff                // []int32 row pointers over O
	secOSPCol                // []ID predicate column
	secPosObjKeys            // []ID distinct objects per predicate (level-2 runs)
	secPosObjOff             // []int32 level-2 run starts
	secPosObjIdx             // []int32 per-predicate pointers into the level-2 keys
	secStats                 // frozen-store statistics (see write.go)
	numSections   = secStats
)

// Term record tags in the dictionary blob.
const (
	tagIRI      = 0
	tagBlank    = 1
	tagLiteral  = 2 // plain literal
	tagLangLit  = 3 // language-tagged literal
	tagTypedLit = 4 // datatyped literal
)

const (
	headerSize       = 64
	sectionEntrySize = 32
	tableSize        = numSections * sectionEntrySize
	sectionAlign     = 8
)

// Fixed field offsets within the header.
const (
	offMagic     = 0
	offVersion   = 8
	offByteOrder = 12
	offFileSize  = 16
	offTriples   = 24
	offTerms     = 32
	offSecCount  = 40
	offTableCRC  = 44
	offHeaderCRC = 60 // CRC32-C over header bytes [0, 60)
)

// byteOrderMark returns the platform's native encoding of 0x01020304.
// Writer and loader both derive it the same way, so equality means the
// bulk sections can be reinterpreted in place.
func byteOrderMark() [4]byte {
	x := uint32(0x01020304)
	return *(*[4]byte)(unsafe.Pointer(&x))
}

// The zero-copy casts in view/bytesOf assume the in-memory sizes of the
// array element types; these blank declarations fail to compile if a
// store change ever alters them.
var (
	_ [12]byte = [unsafe.Sizeof(store.EncTriple{})]byte{}
	_ [4]byte  = [unsafe.Sizeof(store.ID(0))]byte{}
)
