package snapshot

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzManifest drives ParseManifest with arbitrary bytes. Like
// FuzzSnapshotLoad, the contract is: an error or a structurally valid
// manifest, never a panic. The seed corpus starts from a real manifest
// plus the corruption shapes the table test pins (truncation, flips in
// the partition table, zeroed stats blob) so mutation explores the
// format's interior.
func FuzzManifest(f *testing.F) {
	st := testStore(f)
	path := filepath.Join(f.TempDir(), "store.shards")
	if _, err := WriteShards(path, st, 3); err != nil {
		f.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}

	f.Add([]byte(nil))
	f.Add(ManifestMagic[:])
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	f.Add(raw[:manifestFixedSize+4])
	for _, pos := range []int{8, 12, 16, 32, manifestFixedSize + 1, len(raw) - 10, len(raw) - 2} {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0xFF
		f.Add(mut)
	}
	zeroStats := append([]byte(nil), raw...)
	for i := manifestFixedSize; i < len(zeroStats)/2; i++ {
		zeroStats[i] = 0
	}
	f.Add(zeroStats)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseManifest(data)
		if err != nil {
			return
		}
		// A manifest that parses must satisfy the partition invariants.
		if len(m.Shards) == 0 {
			t.Fatal("parsed manifest with no shards")
		}
		sum := 0
		for i, e := range m.Shards {
			if e.Lo >= e.Hi {
				t.Fatalf("shard %d: empty range [%d, %d)", i, e.Lo, e.Hi)
			}
			if i > 0 && e.Lo != m.Shards[i-1].Hi {
				t.Fatalf("shard %d: non-contiguous at %d", i, e.Lo)
			}
			if e.Name != filepath.Base(e.Name) {
				t.Fatalf("shard %d: name %q escapes the manifest directory", i, e.Name)
			}
			sum += e.Triples
		}
		if sum != m.NumTriples {
			t.Fatalf("shard triples sum %d != total %d", sum, m.NumTriples)
		}
		if m.Stats == nil {
			t.Fatal("parsed manifest with nil statistics")
		}
	})
}
