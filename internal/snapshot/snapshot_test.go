package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sparqluo/internal/rdf"
	"sparqluo/internal/store"
)

// testStore builds a frozen store exercising every term shape the
// format must preserve: IRIs, blank nodes, plain / language-tagged /
// typed literals, empty strings, non-ASCII, and characters that need
// N-Triples escaping.
func testStore(t testing.TB) *store.Store {
	t.Helper()
	st := store.New()
	name := rdf.NewIRI("http://ex.org/name")
	knows := rdf.NewIRI("http://ex.org/knows")
	st.AddAll([]rdf.Triple{
		{S: rdf.NewIRI("http://ex.org/alice"), P: name, O: rdf.NewLiteral("Alice")},
		{S: rdf.NewIRI("http://ex.org/alice"), P: name, O: rdf.NewLangLiteral("Алиса \"q\"", "ru")},
		{S: rdf.NewIRI("http://ex.org/alice"), P: knows, O: rdf.NewBlank("b0")},
		{S: rdf.NewBlank("b0"), P: name, O: rdf.NewTypedLiteral("42", "http://www.w3.org/2001/XMLSchema#int")},
		{S: rdf.NewBlank("b0"), P: knows, O: rdf.NewIRI("http://ex.org/alice")},
		{S: rdf.NewIRI("http://ex.org/carol"), P: name, O: rdf.NewLiteral("")},
	})
	// A pinch of bulk so the permutations have real runs.
	rng := rand.New(rand.NewSource(7))
	subjects := []rdf.Term{rdf.NewIRI("http://ex.org/alice"), rdf.NewIRI("http://ex.org/carol"), rdf.NewBlank("b0")}
	for i := 0; i < 400; i++ {
		st.Add(rdf.Triple{
			S: subjects[rng.Intn(len(subjects))],
			P: knows,
			O: rdf.NewIRI("http://ex.org/p" + string(rune('a'+rng.Intn(26)))),
		})
	}
	st.Freeze()
	return st
}

// image serializes st into memory.
func image(t testing.TB, st *store.Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

// requireEqualStores compares every queryable structure of two stores.
func requireEqualStores(t *testing.T, want, got *store.Store) {
	t.Helper()
	if got.NumTriples() != want.NumTriples() {
		t.Fatalf("NumTriples = %d, want %d", got.NumTriples(), want.NumTriples())
	}
	wl, gl := want.Layout(), got.Layout()
	for _, c := range []struct {
		name       string
		want, have any
	}{
		{"SPO.Tri", wl.SPO.Tri, gl.SPO.Tri},
		{"SPO.Off", wl.SPO.Off, gl.SPO.Off},
		{"SPO.Col", wl.SPO.Col, gl.SPO.Col},
		{"POS.Tri", wl.POS.Tri, gl.POS.Tri},
		{"POS.Off", wl.POS.Off, gl.POS.Off},
		{"POS.Col", wl.POS.Col, gl.POS.Col},
		{"OSP.Tri", wl.OSP.Tri, gl.OSP.Tri},
		{"OSP.Off", wl.OSP.Off, gl.OSP.Off},
		{"OSP.Col", wl.OSP.Col, gl.OSP.Col},
		{"PosObjKeys", wl.PosObjKeys, gl.PosObjKeys},
		{"PosObjOff", wl.PosObjOff, gl.PosObjOff},
		{"PosObjIdx", wl.PosObjIdx, gl.PosObjIdx},
	} {
		if !reflect.DeepEqual(c.want, c.have) {
			t.Errorf("layout %s differs after round trip", c.name)
		}
	}
	if want.Dict().Len() != got.Dict().Len() {
		t.Fatalf("dict len = %d, want %d", got.Dict().Len(), want.Dict().Len())
	}
	for id := store.ID(1); int(id) <= want.Dict().Len(); id++ {
		w, g := want.Dict().Decode(id), got.Dict().Decode(id)
		if !w.Equal(g) {
			t.Fatalf("term %d = %v, want %v", id, g, w)
		}
		// The lazily built key index must find every term again.
		back, ok := got.Dict().Lookup(w)
		if !ok || back != id {
			t.Fatalf("Lookup(%v) = (%d, %v), want (%d, true)", w, back, ok, id)
		}
	}
	if !reflect.DeepEqual(want.Stats(), got.Stats()) {
		t.Errorf("stats differ after round trip:\n got %+v\nwant %+v", got.Stats(), want.Stats())
	}
}

func TestRoundTrip(t *testing.T) {
	st := testStore(t)
	loaded, err := Load(image(t, st))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !loaded.Frozen() {
		t.Error("loaded store should be frozen")
	}
	requireEqualStores(t, st, loaded)

	// Spot-check accessors against the original store.
	for _, tr := range st.Triples() {
		if !loaded.Contains(tr.S, tr.P, tr.O) {
			t.Fatalf("loaded store missing triple %+v", tr)
		}
		if !reflect.DeepEqual(st.ObjectsSP(tr.S, tr.P), loaded.ObjectsSP(tr.S, tr.P)) {
			t.Fatalf("ObjectsSP(%d,%d) differs", tr.S, tr.P)
		}
		if !reflect.DeepEqual(st.SubjectsPO(tr.P, tr.O), loaded.SubjectsPO(tr.P, tr.O)) {
			t.Fatalf("SubjectsPO(%d,%d) differs", tr.P, tr.O)
		}
	}
}

func TestRoundTripEmptyStore(t *testing.T) {
	st := store.New()
	st.Freeze()
	loaded, err := Load(image(t, st))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.NumTriples() != 0 || loaded.Dict().Len() != 0 {
		t.Fatalf("empty store round-tripped to %d triples, %d terms",
			loaded.NumTriples(), loaded.Dict().Len())
	}
}

func TestWriteRequiresFrozen(t *testing.T) {
	st := store.New()
	st.Add(rdf.Triple{S: rdf.NewIRI("s"), P: rdf.NewIRI("p"), O: rdf.NewIRI("o")})
	if err := Write(&bytes.Buffer{}, st); err == nil {
		t.Fatal("Write on an unfrozen store should fail")
	}
}

func TestOpenAndSniff(t *testing.T) {
	st := testStore(t)
	dir := t.TempDir()
	img := filepath.Join(dir, "store.img")
	if err := WriteFile(img, st); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if ok, err := Sniff(img); err != nil || !ok {
		t.Fatalf("Sniff(image) = (%v, %v), want (true, nil)", ok, err)
	}
	nt := filepath.Join(dir, "store.nt")
	if err := os.WriteFile(nt, []byte("<http://a> <http://b> <http://c> .\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if ok, err := Sniff(nt); err != nil || ok {
		t.Fatalf("Sniff(ntriples) = (%v, %v), want (false, nil)", ok, err)
	}
	if ok, err := Sniff(filepath.Join(dir, "missing")); err == nil || ok {
		t.Errorf("Sniff(missing file) = (%v, %v), want (false, error)", ok, err)
	}

	loaded, m, err := Open(img)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	requireEqualStores(t, st, loaded)
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	if _, _, err := Open(nt); !errors.Is(err, ErrNotSnapshot) {
		t.Fatalf("Open(ntriples) = %v, want ErrNotSnapshot", err)
	}
}

// TestLoadRejectsCorruption flips, truncates and rewrites image bytes
// and demands a clean error for every mutation: the CRCs and structural
// checks must catch whatever the mutation hits.
func TestLoadRejectsCorruption(t *testing.T) {
	img := image(t, testStore(t))

	t.Run("truncations", func(t *testing.T) {
		for _, n := range []int{0, 1, 7, 8, 63, 64, headerSize + tableSize - 1, len(img) / 2, len(img) - 1} {
			if _, err := Load(img[:n]); err == nil {
				t.Errorf("Load of %d-byte prefix succeeded", n)
			}
		}
	})

	t.Run("bit-flips", func(t *testing.T) {
		// Step through the whole image; every flip must produce an error,
		// and flips inside the magic must report ErrNotSnapshot.
		for pos := 0; pos < len(img); pos += 13 {
			mut := append([]byte(nil), img...)
			mut[pos] ^= 0x40
			_, err := Load(mut)
			if err == nil {
				t.Fatalf("Load with bit flipped at %d succeeded", pos)
			}
			if pos < len(Magic) && !errors.Is(err, ErrNotSnapshot) {
				t.Fatalf("flip in magic at %d: got %v, want ErrNotSnapshot", pos, err)
			}
		}
	})

	t.Run("version", func(t *testing.T) {
		mut := append([]byte(nil), img...)
		mut[offVersion] = 99
		if _, err := Load(mut); err == nil || errors.Is(err, ErrCorrupt) {
			t.Fatalf("unknown version: got %v, want a distinct version error", err)
		}
	})

	t.Run("trailing-garbage", func(t *testing.T) {
		if _, err := Load(append(append([]byte(nil), img...), 0xAB)); err == nil {
			t.Error("Load with trailing byte succeeded")
		}
	})
}

// refreshCRCs recomputes every checksum of a hand-mutated image so the
// structural validators — not the CRCs — are what a test exercises.
func refreshCRCs(img []byte) {
	for i := 0; i < numSections; i++ {
		e := img[headerSize+i*sectionEntrySize:]
		off := binary.LittleEndian.Uint64(e[8:])
		length := binary.LittleEndian.Uint64(e[16:])
		binary.LittleEndian.PutUint32(e[24:], crc32.Checksum(img[off:off+length], castagnoli))
	}
	binary.LittleEndian.PutUint32(img[offTableCRC:], crc32.Checksum(img[headerSize:headerSize+tableSize], castagnoli))
	binary.LittleEndian.PutUint32(img[offHeaderCRC:], crc32.Checksum(img[:offHeaderCRC], castagnoli))
}

// section returns the payload of one section of an image.
func section(img []byte, kind int) []byte {
	e := img[headerSize+(kind-1)*sectionEntrySize:]
	off := binary.LittleEndian.Uint64(e[8:])
	length := binary.LittleEndian.Uint64(e[16:])
	return img[off : off+length]
}

// TestLoadRejectsForgedIDs: an image whose checksums are all valid but
// whose triples reference dictionary IDs out of range (or the reserved
// ID 0) must fail at load time — those IDs would otherwise panic
// Dict.Decode during result writing.
func TestLoadRejectsForgedIDs(t *testing.T) {
	for _, sec := range []int{secSPOTri, secPOSCol, secPosObjKeys} {
		for _, forged := range []uint32{0, 1 << 30} {
			img := image(t, testStore(t))
			binary.LittleEndian.PutUint32(section(img, sec)[8:], forged)
			refreshCRCs(img)
			_, err := Load(img)
			if err == nil {
				t.Fatalf("Load accepted image with ID %d forged into section %d", forged, sec)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("forged ID %d in section %d: got %v, want ErrCorrupt", forged, sec, err)
			}
		}
	}

	// Sanity: refreshCRCs alone must leave a loadable image.
	img := image(t, testStore(t))
	refreshCRCs(img)
	if _, err := Load(img); err != nil {
		t.Fatalf("refreshCRCs broke a valid image: %v", err)
	}
}

// TestLoadArbitraryAlignment feeds Load a deliberately misaligned
// buffer; the loader must realign internally and still round-trip.
func TestLoadArbitraryAlignment(t *testing.T) {
	img := image(t, testStore(t))
	buf := make([]byte, len(img)+1)
	copy(buf[1:], img)
	loaded, err := Load(buf[1:])
	if err != nil {
		t.Fatalf("Load(misaligned): %v", err)
	}
	if loaded.NumTriples() == 0 {
		t.Fatal("misaligned load lost triples")
	}
}
