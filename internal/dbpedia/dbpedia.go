// Package dbpedia generates a synthetic DBpedia-like RDF dataset: an
// encyclopedic knowledge graph with the predicate vocabulary of the
// paper's twelve DBpedia benchmark queries and Zipf-skewed link structure.
//
// The generator substitutes for the DBpedia V3.9 dump (830M triples): it
// reproduces the selectivity contrasts the experiments rely on — a few
// highly selective anchors (e.g. ?x dbo:wikiPageWikiLink
// dbr:Economic_system) against huge unselective relations (rdfs:label,
// owl:sameAs, dbo:wikiPageWikiLink in the open) — at laptop scale.
// Every IRI constant appearing in queries q1.1–q1.6 and q2.1–q2.6 exists
// in the generated data. Generation is deterministic for a given Config.
package dbpedia

import (
	"fmt"
	"math/rand"

	"sparqluo/internal/rdf"
)

// Namespace IRIs (matching the query prefixes of Appendix A.2).
const (
	RDF    = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	RDFS   = "http://www.w3.org/2000/01/rdf-schema#"
	FOAF   = "http://xmlns.com/foaf/0.1/"
	PURL   = "http://purl.org/dc/terms/"
	SKOS   = "http://www.w3.org/2004/02/skos/core#"
	NSPROV = "http://www.w3.org/ns/prov#"
	OWL    = "http://www.w3.org/2002/07/owl#"
	DBO    = "http://dbpedia.org/ontology/"
	DBR    = "http://dbpedia.org/resource/"
	DBP    = "http://dbpedia.org/property/"
	GEO    = "http://www.w3.org/2003/01/geo/wgs84_pos#"
	GEORSS = "http://www.georss.org/georss/"
)

// Config controls dataset shape.
type Config struct {
	// Entities is the number of encyclopedia articles (the scale factor).
	Entities int
	Seed     int64
	// HubLinkFraction is the fraction of entities that link to each
	// named hub constant (selective anchors for the queries).
	HubLinkFraction float64
	// AvgWikiLinks is the mean out-degree of dbo:wikiPageWikiLink.
	AvgWikiLinks int
}

// DefaultConfig returns the shape used by the experiment harness.
func DefaultConfig(entities int) Config {
	return Config{
		Entities:        entities,
		Seed:            7,
		HubLinkFraction: 0.01,
		AvgWikiLinks:    6,
	}
}

// Hub constants referenced by the benchmark queries.
var hubs = []string{
	"Economic_system",                // q1.1, q1.2
	"Abdul_Rahim_Wardak",             // q1.5
	"Category:Cell_biology",          // q1.6
	"President_of_the_United_States", // introduction examples
}

// Generate produces the dataset as a slice of triples.
func Generate(cfg Config) []rdf.Triple {
	g := &generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	g.run()
	return g.out
}

type generator struct {
	cfg Config
	rng *rand.Rand
	out []rdf.Triple

	entities   []rdf.Term
	categories []rdf.Term

	// inLinks records wikiPageWikiLink in-neighbours (source indices) per
	// target index; hubLinkers records, per hub, the entities linking to
	// it. Both feed the disambiguation-page pass.
	inLinks    map[int][]int
	hubLinkers [][]int
}

func iri(s string) rdf.Term { return rdf.NewIRI(s) }
func lit(s string) rdf.Term { return rdf.NewLiteral(s) }

func (g *generator) emit(s rdf.Term, pred string, o rdf.Term) {
	g.out = append(g.out, rdf.Triple{S: s, P: iri(pred), O: o})
}

// zipfPick selects an entity index with a popularity skew: low indices are
// disproportionately likely, approximating the hub structure of DBpedia.
func (g *generator) zipfPick(n int) int {
	// Square the uniform draw: mass concentrates near 0.
	u := g.rng.Float64()
	return int(u * u * float64(n))
}

func (g *generator) run() {
	n := g.cfg.Entities
	if n < 50 {
		n = 50
	}
	// Entity 0..len(hubs)-1 are the named constants; a couple of special
	// subjects follow; the rest are EntityK.
	names := append([]string{}, hubs...)
	names = append(names, "Air_masses", "Functional_neuroimaging", "Bill_Clinton", "George_W._Bush")
	for len(names) < n {
		names = append(names, fmt.Sprintf("Entity%d", len(names)))
	}
	for _, name := range names {
		g.entities = append(g.entities, iri(DBR+name))
	}
	nCats := n/50 + 5
	for c := 0; c < nCats; c++ {
		g.categories = append(g.categories, iri(DBR+fmt.Sprintf("Category:Cat%d", c)))
	}

	g.inLinks = make(map[int][]int)
	g.hubLinkers = make([][]int, len(hubs))
	g.categoryTriples()
	for i, e := range g.entities {
		g.article(i, e, names[i])
	}
	g.disambiguationPages(names)
	g.typedPopulations(names)
}

// disambiguationPages emits multi-topic wiki pages, the DBpedia noise
// that lets queries like q1.6 relate two distinct entities through one
// page: a page is primaryTopic of a hub-linking entity and also the
// primary topic target of one of its wiki in-neighbours.
func (g *generator) disambiguationPages(names []string) {
	for _, linkers := range g.hubLinkers {
		for _, v1 := range linkers {
			ins := g.inLinks[v1]
			if len(ins) == 0 || g.rng.Float64() > 0.7 {
				continue
			}
			v3 := ins[g.rng.Intn(len(ins))]
			page := iri("http://en.wikipedia.org/wiki/" + names[v1] + "_(disambiguation)")
			g.emit(page, FOAF+"primaryTopic", g.entities[v1])
			g.emit(g.entities[v3], FOAF+"isPrimaryTopicOf", page)
		}
	}
}

func (g *generator) categoryTriples() {
	for c, cat := range g.categories {
		g.emit(cat, RDFS+"label", lit(fmt.Sprintf("Category %d", c)))
		g.emit(cat, SKOS+"prefLabel", lit(fmt.Sprintf("Cat %d", c)))
		// skos:related links between categories (used by q1.4).
		if c > 0 {
			g.emit(cat, SKOS+"related", g.categories[g.rng.Intn(c)])
		}
	}
}

func (g *generator) randCategory() rdf.Term {
	return g.categories[g.rng.Intn(len(g.categories))]
}

func (g *generator) article(i int, e rdf.Term, name string) {
	n := len(g.entities)
	g.emit(e, RDFS+"label", lit(name+" label"))
	if g.rng.Float64() < 0.6 {
		g.emit(e, FOAF+"name", lit(name))
	}
	// Wiki page and revision provenance.
	page := iri("http://en.wikipedia.org/wiki/" + name)
	g.emit(e, FOAF+"isPrimaryTopicOf", page)
	g.emit(page, FOAF+"primaryTopic", e)
	g.emit(page, DBO+"wikiPageLength", rdf.NewTypedLiteral(
		fmt.Sprintf("%d", 500+g.rng.Intn(100000)),
		"http://www.w3.org/2001/XMLSchema#nonNegativeInteger"))
	rev := iri(fmt.Sprintf("http://en.wikipedia.org/wiki/%s?oldid=%d", name, g.rng.Intn(1_000_000)))
	g.emit(e, NSPROV+"wasDerivedFrom", rev)

	// Categories: purl:subject is the modern predicate, skos:subject the
	// legacy one — some entities have both (hence the query UNIONs).
	g.emit(e, PURL+"subject", g.randCategory())
	if g.rng.Float64() < 0.3 {
		g.emit(e, SKOS+"subject", g.randCategory())
	}

	// owl:sameAs to external KBs — a huge, unselective relation.
	if g.rng.Float64() < 0.5 {
		g.emit(e, OWL+"sameAs", iri("http://external.example.org/"+name))
	}
	if g.rng.Float64() < 0.1 {
		g.emit(iri("http://freebase.example.org/"+name), OWL+"sameAs", e)
	}

	// Wiki links: skewed out-degree, plus selective hub in-links.
	links := 1 + g.rng.Intn(2*g.cfg.AvgWikiLinks)
	for k := 0; k < links; k++ {
		dst := g.zipfPick(n)
		g.emit(e, DBO+"wikiPageWikiLink", g.entities[dst])
		g.inLinks[dst] = append(g.inLinks[dst], i)
	}
	for h := range hubs {
		if g.rng.Float64() < g.cfg.HubLinkFraction {
			g.emit(e, DBO+"wikiPageWikiLink", g.entities[h])
			g.hubLinkers[h] = append(g.hubLinkers[h], i)
		}
	}

	// Redirect pages (q1.3): ~10% of entities have one.
	if g.rng.Float64() < 0.1 {
		redir := iri(DBR + name + "_(redirect)")
		g.emit(redir, DBO+"wikiPageRedirects", e)
		g.emit(redir, DBO+"wikiPageWikiLink", g.entities[g.zipfPick(n)])
	}
	if i%17 == 0 {
		g.emit(e, RDFS+"comment", lit("An article about "+name))
	}
}

// typedPopulations adds the class-specific subpopulations the q2.x
// queries need: populated places, soccer players, persons, settlements
// with airports, and companies.
func (g *generator) typedPopulations(names []string) {
	n := len(g.entities)
	typ := func(e rdf.Term, class string) {
		g.emit(e, RDF+"type", iri(DBO+class))
	}
	xsdInt := "http://www.w3.org/2001/XMLSchema#integer"

	// Populated places / settlements (q2.1, q2.4).
	var settlements []rdf.Term
	for i := 0; i < n/20; i++ {
		e := g.entities[g.rng.Intn(n)]
		typ(e, "PopulatedPlace")
		g.emit(e, DBO+"abstract", lit("abstract of place"))
		g.emit(e, GEO+"lat", rdf.NewTypedLiteral(fmt.Sprintf("%.4f", g.rng.Float64()*180-90), xsdInt))
		g.emit(e, GEO+"long", rdf.NewTypedLiteral(fmt.Sprintf("%.4f", g.rng.Float64()*360-180), xsdInt))
		if g.rng.Float64() < 0.4 {
			g.emit(e, FOAF+"depiction", iri("http://img.example.org/d/"+fmt.Sprint(i)))
		}
		if g.rng.Float64() < 0.3 {
			g.emit(e, FOAF+"homepage", iri("http://place.example.org/"+fmt.Sprint(i)))
		}
		if g.rng.Float64() < 0.6 {
			g.emit(e, DBO+"populationTotal", rdf.NewTypedLiteral(fmt.Sprint(g.rng.Intn(1_000_000)), xsdInt))
		}
		if g.rng.Float64() < 0.5 {
			g.emit(e, DBO+"thumbnail", iri("http://img.example.org/t/"+fmt.Sprint(i)))
		}
		if g.rng.Float64() < 0.5 {
			typ(e, "Settlement")
			settlements = append(settlements, e)
		}
	}

	// Airports serving settlements (q2.4).
	for i := 0; i < n/50 && len(settlements) > 0; i++ {
		a := iri(DBR + fmt.Sprintf("Airport%d", i))
		typ(a, "Airport")
		g.emit(a, DBO+"city", settlements[g.rng.Intn(len(settlements))])
		g.emit(a, DBP+"iata", lit(fmt.Sprintf("A%02d", i%100)))
		if g.rng.Float64() < 0.5 {
			g.emit(a, FOAF+"homepage", iri("http://airport.example.org/"+fmt.Sprint(i)))
		}
		if g.rng.Float64() < 0.5 {
			g.emit(a, DBP+"nativename", lit(fmt.Sprintf("Aeropuerto %d", i)))
		}
	}

	// Soccer players and clubs (q2.2).
	nClubs := n/100 + 3
	var clubs []rdf.Term
	for i := 0; i < nClubs; i++ {
		c := iri(DBR + fmt.Sprintf("Club%d", i))
		g.emit(c, DBO+"capacity", rdf.NewTypedLiteral(fmt.Sprint(5000+g.rng.Intn(90000)), xsdInt))
		clubs = append(clubs, c)
	}
	for i := 0; i < n/20; i++ {
		e := g.entities[g.rng.Intn(n)]
		typ(e, "SoccerPlayer")
		g.emit(e, DBP+"position", lit([]string{"GK", "DF", "MF", "FW"}[g.rng.Intn(4)]))
		g.emit(e, DBP+"clubs", clubs[g.rng.Intn(len(clubs))])
		g.emit(e, DBO+"birthPlace", g.entities[g.zipfPick(n)])
		if g.rng.Float64() < 0.5 {
			g.emit(e, FOAF+"homepage", iri("http://player.example.org/"+fmt.Sprint(i)))
		}
		if g.rng.Float64() < 0.4 {
			g.emit(e, DBO+"number", rdf.NewTypedLiteral(fmt.Sprint(1+g.rng.Intn(30)), xsdInt))
		}
	}

	// Persons (q2.3): thumbnail + label + homepage.
	for i := 0; i < n/10; i++ {
		e := g.entities[g.rng.Intn(n)]
		typ(e, "Person")
		if g.rng.Float64() < 0.3 {
			g.emit(e, DBO+"thumbnail", iri("http://img.example.org/p/"+fmt.Sprint(i)))
		}
		if g.rng.Float64() < 0.2 {
			g.emit(e, FOAF+"homepage", iri("http://person.example.org/"+fmt.Sprint(i)))
		}
	}

	// Companies (q2.6): comment, page, industry, locations, products.
	for i := 0; i < n/20; i++ {
		e := g.entities[g.rng.Intn(n)]
		g.emit(e, RDFS+"comment", lit("A company"))
		g.emit(e, FOAF+"page", iri("http://company.example.org/"+fmt.Sprint(i)))
		if g.rng.Float64() < 0.6 {
			g.emit(e, DBP+"industry", lit(fmt.Sprintf("Industry%d", g.rng.Intn(20))))
		}
		if g.rng.Float64() < 0.5 {
			g.emit(e, DBP+"location", g.entities[g.zipfPick(n)])
		}
		if g.rng.Float64() < 0.4 {
			g.emit(e, DBP+"locationCountry", g.entities[g.zipfPick(n)])
		}
		if g.rng.Float64() < 0.3 {
			g.emit(e, DBP+"locationCity", g.entities[g.zipfPick(n)])
			g.emit(g.entities[g.rng.Intn(n)], DBP+"manufacturer", e)
		}
		if g.rng.Float64() < 0.3 {
			g.emit(e, DBP+"products", lit(fmt.Sprintf("Product%d", g.rng.Intn(50))))
			g.emit(g.entities[g.rng.Intn(n)], DBP+"model", e)
		}
		if g.rng.Float64() < 0.4 {
			g.emit(e, GEORSS+"point", lit(fmt.Sprintf("%.3f %.3f", g.rng.Float64()*180-90, g.rng.Float64()*360-180)))
		}
	}

	// Phylum links for q1.6: species-like entities sharing a phylum.
	for i := 0; i < n/30; i++ {
		phylum := g.entities[g.zipfPick(n/10+1)]
		g.emit(g.entities[g.rng.Intn(n)], DBO+"phylum", phylum)
		g.emit(g.entities[g.rng.Intn(n)], DBO+"phylum", phylum)
	}
}
