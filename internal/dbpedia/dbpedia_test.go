package dbpedia

import (
	"testing"

	"sparqluo/internal/rdf"
	"sparqluo/internal/store"
)

func TestDeterministic(t *testing.T) {
	a := Generate(DefaultConfig(500))
	b := Generate(DefaultConfig(500))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("triple %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestAllTriplesValid(t *testing.T) {
	for _, tr := range Generate(DefaultConfig(300)) {
		if !tr.Valid() {
			t.Fatalf("invalid triple: %v", tr)
		}
	}
}

func TestQueryConstantsExist(t *testing.T) {
	st := store.New()
	st.AddAll(Generate(DefaultConfig(1000)))
	st.Freeze()
	d := st.Dict()
	constants := []string{
		DBR + "Economic_system",
		DBR + "Abdul_Rahim_Wardak",
		DBR + "Category:Cell_biology",
		DBR + "President_of_the_United_States",
		DBR + "Air_masses",
		DBR + "Functional_neuroimaging",
	}
	for _, iri := range constants {
		if _, ok := d.Lookup(rdf.NewIRI(iri)); !ok {
			t.Errorf("constant %s missing", iri)
		}
	}
}

func TestPredicateVocabulary(t *testing.T) {
	st := store.New()
	st.AddAll(Generate(DefaultConfig(2000)))
	st.Freeze()
	d := st.Dict()
	preds := []string{
		RDFS + "label", RDFS + "comment",
		FOAF + "name", FOAF + "isPrimaryTopicOf", FOAF + "primaryTopic",
		FOAF + "depiction", FOAF + "homepage", FOAF + "page",
		PURL + "subject", SKOS + "subject", SKOS + "related", SKOS + "prefLabel",
		NSPROV + "wasDerivedFrom", OWL + "sameAs",
		DBO + "wikiPageWikiLink", DBO + "wikiPageRedirects", DBO + "wikiPageLength",
		DBO + "abstract", DBO + "populationTotal", DBO + "thumbnail",
		DBO + "capacity", DBO + "birthPlace", DBO + "number", DBO + "city",
		DBO + "phylum", GEO + "lat", GEO + "long", GEORSS + "point",
		DBP + "position", DBP + "clubs", DBP + "iata", DBP + "nativename",
		DBP + "industry", DBP + "location", DBP + "locationCountry",
		DBP + "locationCity", DBP + "manufacturer", DBP + "products", DBP + "model",
		RDF + "type",
	}
	for _, p := range preds {
		if _, ok := d.Lookup(rdf.NewIRI(p)); !ok {
			t.Errorf("predicate %s never generated", p)
		}
	}
}

// TestHubSelectivity: the named hub constants must be much more selective
// link targets than the average entity is.
func TestHubSelectivity(t *testing.T) {
	st := store.New()
	st.AddAll(Generate(DefaultConfig(3000)))
	st.Freeze()
	d := st.Dict()
	wikiLink, _ := d.Lookup(rdf.NewIRI(DBO + "wikiPageWikiLink"))
	hub, ok := d.Lookup(rdf.NewIRI(DBR + "Economic_system"))
	if !ok {
		t.Fatal("hub missing")
	}
	hubIn := st.CountPO(wikiLink, hub)
	total := st.CountP(wikiLink)
	if hubIn == 0 {
		t.Fatal("hub has no in-links; anchored queries would be empty")
	}
	if hubIn*20 > total {
		t.Errorf("hub not selective: %d of %d links", hubIn, total)
	}
}

// TestMultiTopicPagesExist: q1.6 requires pages related to two distinct
// entities (the disambiguation-page pass).
func TestMultiTopicPagesExist(t *testing.T) {
	triples := Generate(DefaultConfig(3000))
	// Count pages with both an incoming isPrimaryTopicOf and an outgoing
	// primaryTopic involving different entities.
	topicOf := map[string]string{} // page → entity (isPrimaryTopicOf)
	primary := map[string]string{} // page → entity (primaryTopic)
	for _, tr := range triples {
		switch tr.P.Value {
		case FOAF + "isPrimaryTopicOf":
			topicOf[tr.O.Value] = tr.S.Value
		case FOAF + "primaryTopic":
			primary[tr.S.Value] = tr.O.Value
		}
	}
	multi := 0
	for page, e1 := range topicOf {
		if e2, ok := primary[page]; ok && e1 != e2 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no multi-topic pages generated; q1.6 would be empty")
	}
}

func TestScalesWithEntities(t *testing.T) {
	small := len(Generate(DefaultConfig(500)))
	large := len(Generate(DefaultConfig(2000)))
	if large <= small*2 {
		t.Errorf("expected roughly linear growth: 500→%d, 2000→%d", small, large)
	}
}

func TestMinimumSize(t *testing.T) {
	// Tiny configs are clamped so the named constants always exist.
	st := store.New()
	st.AddAll(Generate(DefaultConfig(1)))
	st.Freeze()
	if _, ok := st.Dict().Lookup(rdf.NewIRI(DBR + "Air_masses")); !ok {
		t.Error("clamped generation must still include named constants")
	}
}
