// Package rdf provides the RDF data model used throughout sparqluo:
// terms (IRIs, literals, blank nodes), triples, and parsing/serialization
// of N-Triples with a small Turtle-style prefix extension.
//
// An RDF dataset D is a collection of triples
// ⟨subject, predicate, object⟩ ∈ (I ∪ B) × I × (I ∪ B ∪ L) (Definition 1
// of the paper).
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates the three kinds of RDF terms.
type TermKind uint8

const (
	// IRI is an internationalized resource identifier, e.g.
	// <http://dbpedia.org/resource/Bill_Clinton>.
	IRI TermKind = iota
	// Literal is an RDF literal, optionally tagged with a language or a
	// datatype IRI, e.g. "Bill Clinton"@en or "1946-08-19"^^xsd:date.
	Literal
	// Blank is a blank node, identified by a document-scoped label.
	Blank
)

// String returns a human-readable name of the kind.
func (k TermKind) String() string {
	switch k {
	case IRI:
		return "IRI"
	case Literal:
		return "Literal"
	case Blank:
		return "Blank"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is a single RDF term. The zero value is the empty IRI, which is
// never produced by the parser and can be used as a sentinel.
type Term struct {
	// Kind discriminates IRI, Literal and Blank.
	Kind TermKind
	// Value is the IRI string (without angle brackets), the literal's
	// lexical form, or the blank node label (without the "_:" prefix).
	Value string
	// Lang is the language tag for language-tagged literals ("" otherwise).
	Lang string
	// Datatype is the datatype IRI for typed literals ("" otherwise).
	Datatype string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewLiteral returns a plain literal term.
func NewLiteral(lex string) Term { return Term{Kind: Literal, Value: lex} }

// NewLangLiteral returns a language-tagged literal term.
func NewLangLiteral(lex, lang string) Term {
	return Term{Kind: Literal, Value: lex, Lang: lang}
}

// NewTypedLiteral returns a datatyped literal term.
func NewTypedLiteral(lex, datatype string) Term {
	return Term{Kind: Literal, Value: lex, Datatype: datatype}
}

// NewBlank returns a blank node term with the given label.
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == Blank }

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Blank:
		return "_:" + t.Value
	case Literal:
		var b strings.Builder
		b.WriteByte('"')
		b.WriteString(escapeLiteral(t.Value))
		b.WriteByte('"')
		if t.Lang != "" {
			b.WriteByte('@')
			b.WriteString(t.Lang)
		} else if t.Datatype != "" {
			b.WriteString("^^<")
			b.WriteString(t.Datatype)
			b.WriteByte('>')
		}
		return b.String()
	default:
		return fmt.Sprintf("?!badterm(%d,%q)", t.Kind, t.Value)
	}
}

// Key returns a canonical string key for the term, unique across kinds,
// suitable for dictionary encoding. It is cheaper to compare than three
// fields and distinct from every other term's key.
func (t Term) Key() string {
	switch t.Kind {
	case IRI:
		return "I" + t.Value
	case Blank:
		return "B" + t.Value
	default:
		if t.Lang != "" {
			return "L" + t.Value + "\x00@" + t.Lang
		}
		if t.Datatype != "" {
			return "L" + t.Value + "\x00^" + t.Datatype
		}
		return "L" + t.Value
	}
}

// Equal reports whether two terms are identical.
func (t Term) Equal(u Term) bool {
	return t.Kind == u.Kind && t.Value == u.Value && t.Lang == u.Lang && t.Datatype == u.Datatype
}

func escapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Triple is a single RDF statement ⟨subject, predicate, object⟩.
type Triple struct {
	S, P, O Term
}

// String renders the triple as an N-Triples line (without trailing newline).
func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String() + " ."
}

// Valid reports whether the triple satisfies Definition 1: the subject is
// an IRI or blank node, the predicate an IRI, and the object any term.
func (t Triple) Valid() bool {
	if t.S.Kind == Literal {
		return false
	}
	return t.P.Kind == IRI
}
