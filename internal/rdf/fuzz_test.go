package rdf

import (
	"io"
	"strings"
	"testing"
)

// FuzzNTriples feeds arbitrary documents to the N-Triples decoder. The
// invariants: no panic, and every successfully decoded triple has
// non-empty term values of a legal kind in each position. The seed
// corpus covers escaped literals (the decoder's trickiest path),
// language tags, typed literals, blank nodes, @prefix directives,
// comments, and truncated junk.
func FuzzNTriples(f *testing.F) {
	seeds := []string{
		"<http://a> <http://b> <http://c> .\n",
		"<http://a> <http://b> \"plain\" .\n",
		"<http://a> <http://b> \"esc\\\"aped\\n tab\\t back\\\\slash\" .\n",
		"<http://a> <http://b> \"uni\\u00e9code \\U0001F600\" .\n",
		"<http://a> <http://b> \"chat\"@fr .\n",
		"<http://a> <http://b> \"42\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n",
		"_:b1 <http://b> _:b2 .\n",
		"# comment line\n\n<http://a> <http://b> <http://c> .\n",
		"@prefix ex: <http://ex.org/> .\nex:a ex:b ex:c .\n",
		"@prefix : <http://d.org/> .\n:x :y \"mixed \\\" quote\" .\n",
		"<http://a> <http://b> \"unterminated .\n",
		"<http://a> <http://b> .\n",
		"<http://a <http://b> <http://c> .\n",
		"\"literal in subject\" <http://b> <http://c> .\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		d := NewDecoder(strings.NewReader(src))
		for i := 0; i < 10000; i++ {
			triple, err := d.Decode()
			if err != nil {
				if err == io.EOF {
					return
				}
				// Malformed line: the decoder reports and stops; done.
				return
			}
			for _, term := range []Term{triple.S, triple.P, triple.O} {
				switch term.Kind {
				case IRI, Blank, Literal:
				default:
					t.Fatalf("decoded term with invalid kind %v in %q", term.Kind, src)
				}
			}
		}
	})
}
