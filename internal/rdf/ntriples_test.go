package rdf

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseBasicTriples(t *testing.T) {
	const doc = `
# a comment
<http://ex.org/s> <http://ex.org/p> <http://ex.org/o> .
<http://ex.org/s> <http://ex.org/p> "plain" .
<http://ex.org/s> <http://ex.org/p> "hello"@en .
<http://ex.org/s> <http://ex.org/p> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
_:b0 <http://ex.org/p> _:b1 .
`
	ts, err := ParseAll(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 5 {
		t.Fatalf("got %d triples, want 5", len(ts))
	}
	if ts[1].O.Value != "plain" || ts[1].O.Kind != Literal {
		t.Errorf("plain literal: %+v", ts[1].O)
	}
	if ts[2].O.Lang != "en" {
		t.Errorf("lang literal: %+v", ts[2].O)
	}
	if ts[3].O.Datatype != "http://www.w3.org/2001/XMLSchema#integer" {
		t.Errorf("typed literal: %+v", ts[3].O)
	}
	if !ts[4].S.IsBlank() || ts[4].S.Value != "b0" {
		t.Errorf("blank subject: %+v", ts[4].S)
	}
}

func TestParsePrefixes(t *testing.T) {
	const doc = `
@prefix ex: <http://ex.org/> .
ex:s ex:p ex:o .
ex:s ex:p "x" .
`
	ts, err := ParseAll(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("got %d triples, want 2", len(ts))
	}
	if ts[0].S.Value != "http://ex.org/s" {
		t.Errorf("prefix expansion: %q", ts[0].S.Value)
	}
}

func TestParseEscapes(t *testing.T) {
	const doc = `<http://e/s> <http://e/p> "a\"b\\c\nd\te" .`
	ts, err := ParseAll(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if want := "a\"b\\c\nd\te"; ts[0].O.Value != want {
		t.Errorf("escapes: %q, want %q", ts[0].O.Value, want)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, doc string
	}{
		{"missing dot", `<http://e/s> <http://e/p> <http://e/o>`},
		{"literal subject", `"x" <http://e/p> <http://e/o> .`},
		{"unterminated IRI", `<http://e/s <http://e/p> <http://e/o> .`},
		{"unterminated literal", `<http://e/s> <http://e/p> "x .`},
		{"undeclared prefix", `ex:s ex:p ex:o .`},
		{"bad escape", `<http://e/s> <http://e/p> "\q" .`},
		{"garbage", `hello world foo .`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseAll(strings.NewReader(tc.doc))
			if err == nil {
				t.Errorf("want parse error for %q", tc.doc)
			}
			var pe *ParseError
			if err != nil {
				if ok := asParseError(err, &pe); !ok {
					t.Errorf("error should be *ParseError, got %T", err)
				} else if pe.Line != 1 {
					t.Errorf("line = %d, want 1", pe.Line)
				}
			}
		})
	}
}

func asParseError(err error, out **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*out = pe
	}
	return ok
}

func TestTripleValid(t *testing.T) {
	valid := Triple{S: NewIRI("s"), P: NewIRI("p"), O: NewLiteral("x")}
	if !valid.Valid() {
		t.Error("IRI-pred triple should be valid")
	}
	bad1 := Triple{S: NewLiteral("x"), P: NewIRI("p"), O: NewIRI("o")}
	if bad1.Valid() {
		t.Error("literal subject should be invalid")
	}
	bad2 := Triple{S: NewIRI("s"), P: NewLiteral("p"), O: NewIRI("o")}
	if bad2.Valid() {
		t.Error("literal predicate should be invalid")
	}
}

func TestTermKeyUniqueAcrossKinds(t *testing.T) {
	terms := []Term{
		NewIRI("x"), NewLiteral("x"), NewBlank("x"),
		NewLangLiteral("x", "en"), NewTypedLiteral("x", "dt"),
	}
	seen := map[string]Term{}
	for _, tm := range terms {
		if prev, ok := seen[tm.Key()]; ok {
			t.Errorf("key collision between %v and %v", prev, tm)
		}
		seen[tm.Key()] = tm
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://e/x"), "<http://e/x>"},
		{NewLiteral("hi"), `"hi"`},
		{NewLangLiteral("hi", "en"), `"hi"@en`},
		{NewTypedLiteral("1", "http://dt"), `"1"^^<http://dt>`},
		{NewBlank("b"), "_:b"},
		{NewLiteral("a\"b"), `"a\"b"`},
	}
	for _, tc := range cases {
		if got := tc.term.String(); got != tc.want {
			t.Errorf("String(%v) = %q, want %q", tc.term, got, tc.want)
		}
	}
}

// randomTerm produces terms with interesting characters for round-trips.
func randomTerm(rng *rand.Rand, subjectPos bool) Term {
	alphabet := []string{"a", "b", "x1", "ü", "tab\tchar", "nl\nline", `quo"te`, `back\slash`}
	pick := func() string { return alphabet[rng.Intn(len(alphabet))] }
	switch k := rng.Intn(3); {
	case k == 0 || subjectPos && k == 2:
		return NewIRI("http://ex.org/" + strings.Map(safeIRIChar, pick()))
	case k == 1:
		return NewBlank("b" + strings.Map(safeLabelChar, pick()))
	default:
		switch rng.Intn(3) {
		case 0:
			return NewLiteral(pick())
		case 1:
			return NewLangLiteral(pick(), "en-US")
		default:
			return NewTypedLiteral(pick(), "http://www.w3.org/2001/XMLSchema#string")
		}
	}
}

func safeIRIChar(r rune) rune {
	if r == '>' || r == ' ' || r == '\t' || r == '\n' || r == '"' || r == '\\' {
		return '_'
	}
	return r
}

func safeLabelChar(r rune) rune {
	if r == ' ' || r == '\t' || r == '\n' || r == '"' || r == '\\' {
		return '_'
	}
	return r
}

// TestQuickEncodeDecodeRoundTrip: serialize-then-parse is the identity on
// random triples.
func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var in []Triple
		for i := 0; i < 1+rng.Intn(10); i++ {
			in = append(in, Triple{
				S: randomTerm(rng, true),
				P: NewIRI("http://ex.org/p"),
				O: randomTerm(rng, false),
			})
		}
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		for _, tr := range in {
			if err := enc.Encode(tr); err != nil {
				return false
			}
		}
		if err := enc.Flush(); err != nil {
			return false
		}
		out, err := ParseAll(&buf)
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if !out[i].S.Equal(in[i].S) || !out[i].P.Equal(in[i].P) || !out[i].O.Equal(in[i].O) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecoderEOF(t *testing.T) {
	d := NewDecoder(strings.NewReader(""))
	if _, err := d.Decode(); err != io.EOF {
		t.Errorf("empty input: want io.EOF, got %v", err)
	}
}

func TestEncoderStickyError(t *testing.T) {
	enc := NewEncoder(failWriter{})
	tr := Triple{S: NewIRI("s"), P: NewIRI("p"), O: NewIRI("o")}
	_ = enc.Encode(tr)
	if err := enc.Flush(); err == nil {
		t.Error("want sticky error from failing writer")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, io.ErrClosedPipe }
