package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseError describes a syntax error in an N-Triples document.
type ParseError struct {
	Line int    // 1-based line number
	Msg  string // human-readable description
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ntriples: line %d: %s", e.Line, e.Msg)
}

// Decoder reads triples from an N-Triples document. It also accepts
// Turtle-style @prefix directives and prefixed names (pfx:local), which the
// synthetic data generators use to keep files small.
type Decoder struct {
	scan     *bufio.Scanner
	line     int
	prefixes map[string]string
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Decoder{scan: sc, prefixes: map[string]string{}}
}

// Decode returns the next triple, or io.EOF when the input is exhausted.
func (d *Decoder) Decode() (Triple, error) {
	for d.scan.Scan() {
		d.line++
		line := strings.TrimSpace(d.scan.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "@prefix") {
			if err := d.parsePrefix(line); err != nil {
				return Triple{}, err
			}
			continue
		}
		return d.parseTripleLine(line)
	}
	if err := d.scan.Err(); err != nil {
		return Triple{}, err
	}
	return Triple{}, io.EOF
}

func (d *Decoder) errf(format string, args ...any) error {
	return &ParseError{Line: d.line, Msg: fmt.Sprintf(format, args...)}
}

// parsePrefix handles "@prefix pfx: <iri> ." lines.
func (d *Decoder) parsePrefix(line string) error {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "@prefix"))
	rest = strings.TrimSuffix(strings.TrimSpace(rest), ".")
	rest = strings.TrimSpace(rest)
	colon := strings.Index(rest, ":")
	if colon < 0 {
		return d.errf("malformed @prefix directive")
	}
	name := strings.TrimSpace(rest[:colon])
	iri := strings.TrimSpace(rest[colon+1:])
	if !strings.HasPrefix(iri, "<") || !strings.HasSuffix(iri, ">") {
		return d.errf("malformed @prefix IRI %q", iri)
	}
	d.prefixes[name] = iri[1 : len(iri)-1]
	return nil
}

func (d *Decoder) parseTripleLine(line string) (Triple, error) {
	p := &termParser{s: line, prefixes: d.prefixes}
	s, err := p.term()
	if err != nil {
		return Triple{}, d.errf("subject: %v", err)
	}
	pr, err := p.term()
	if err != nil {
		return Triple{}, d.errf("predicate: %v", err)
	}
	o, err := p.term()
	if err != nil {
		return Triple{}, d.errf("object: %v", err)
	}
	p.skipSpace()
	if !p.eat('.') {
		return Triple{}, d.errf("expected terminating '.'")
	}
	t := Triple{S: s, P: pr, O: o}
	if !t.Valid() {
		return Triple{}, d.errf("invalid triple %s", t)
	}
	return t, nil
}

// termParser parses RDF terms out of a single line.
type termParser struct {
	s        string
	i        int
	prefixes map[string]string
}

func (p *termParser) skipSpace() {
	for p.i < len(p.s) && (p.s[p.i] == ' ' || p.s[p.i] == '\t') {
		p.i++
	}
}

func (p *termParser) eat(c byte) bool {
	if p.i < len(p.s) && p.s[p.i] == c {
		p.i++
		return true
	}
	return false
}

func (p *termParser) term() (Term, error) {
	p.skipSpace()
	if p.i >= len(p.s) {
		return Term{}, fmt.Errorf("unexpected end of line")
	}
	switch p.s[p.i] {
	case '<':
		return p.iri()
	case '_':
		return p.blank()
	case '"':
		return p.literal()
	default:
		return p.prefixedName()
	}
}

func (p *termParser) iri() (Term, error) {
	end := strings.IndexByte(p.s[p.i:], '>')
	if end < 0 {
		return Term{}, fmt.Errorf("unterminated IRI")
	}
	iri := p.s[p.i+1 : p.i+end]
	p.i += end + 1
	return NewIRI(iri), nil
}

func (p *termParser) blank() (Term, error) {
	if !strings.HasPrefix(p.s[p.i:], "_:") {
		return Term{}, fmt.Errorf("malformed blank node")
	}
	p.i += 2
	start := p.i
	for p.i < len(p.s) && !isTermBreak(p.s[p.i]) {
		p.i++
	}
	if p.i == start {
		return Term{}, fmt.Errorf("empty blank node label")
	}
	return NewBlank(p.s[start:p.i]), nil
}

func (p *termParser) literal() (Term, error) {
	p.i++ // opening quote
	var b strings.Builder
	for p.i < len(p.s) {
		c := p.s[p.i]
		if c == '\\' {
			if p.i+1 >= len(p.s) {
				return Term{}, fmt.Errorf("dangling escape")
			}
			switch p.s[p.i+1] {
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 't':
				b.WriteByte('\t')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return Term{}, fmt.Errorf("unknown escape \\%c", p.s[p.i+1])
			}
			p.i += 2
			continue
		}
		if c == '"' {
			p.i++
			return p.literalSuffix(b.String())
		}
		b.WriteByte(c)
		p.i++
	}
	return Term{}, fmt.Errorf("unterminated literal")
}

func (p *termParser) literalSuffix(lex string) (Term, error) {
	if p.i < len(p.s) && p.s[p.i] == '@' {
		p.i++
		start := p.i
		for p.i < len(p.s) && !isTermBreak(p.s[p.i]) {
			p.i++
		}
		if p.i == start {
			return Term{}, fmt.Errorf("empty language tag")
		}
		return NewLangLiteral(lex, p.s[start:p.i]), nil
	}
	if strings.HasPrefix(p.s[p.i:], "^^") {
		p.i += 2
		dt, err := p.term()
		if err != nil {
			return Term{}, fmt.Errorf("datatype: %v", err)
		}
		if dt.Kind != IRI {
			return Term{}, fmt.Errorf("datatype must be an IRI")
		}
		return NewTypedLiteral(lex, dt.Value), nil
	}
	return NewLiteral(lex), nil
}

// prefixedName parses pfx:local using the declared @prefix table.
func (p *termParser) prefixedName() (Term, error) {
	start := p.i
	for p.i < len(p.s) && !isTermBreak(p.s[p.i]) {
		p.i++
	}
	tok := p.s[start:p.i]
	colon := strings.Index(tok, ":")
	if colon < 0 {
		return Term{}, fmt.Errorf("unrecognized token %q", tok)
	}
	base, ok := p.prefixes[tok[:colon]]
	if !ok {
		return Term{}, fmt.Errorf("undeclared prefix %q", tok[:colon])
	}
	return NewIRI(base + tok[colon+1:]), nil
}

func isTermBreak(c byte) bool {
	return c == ' ' || c == '\t'
}

// ParseAll reads every triple from r, returning them as a slice.
func ParseAll(r io.Reader) ([]Triple, error) {
	d := NewDecoder(r)
	var out []Triple
	for {
		t, err := d.Decode()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
}

// Encoder writes triples as N-Triples lines.
type Encoder struct {
	w   *bufio.Writer
	err error
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: bufio.NewWriter(w)}
}

// Encode writes one triple. The first error encountered is sticky.
func (e *Encoder) Encode(t Triple) error {
	if e.err != nil {
		return e.err
	}
	_, e.err = e.w.WriteString(t.String())
	if e.err == nil {
		e.err = e.w.WriteByte('\n')
	}
	return e.err
}

// Flush writes any buffered output.
func (e *Encoder) Flush() error {
	if e.err != nil {
		return e.err
	}
	return e.w.Flush()
}
