// Package sparql contains the SPARQL-UO front end: a lexer and recursive
// descent parser for SELECT queries whose WHERE clause is built from triple
// patterns, nested group graph patterns, UNION and OPTIONAL expressions —
// exactly the fragment the paper targets (Definitions 2–6).
package sparql

import (
	"fmt"
	"strings"

	"sparqluo/internal/rdf"
)

// TermOrVar is a triple-pattern position: either a variable or an RDF term.
type TermOrVar struct {
	IsVar bool
	Var   string   // variable name without "?" when IsVar
	Term  rdf.Term // ground term otherwise
}

// Variable constructs a variable position.
func Variable(name string) TermOrVar { return TermOrVar{IsVar: true, Var: name} }

// Ground constructs a constant position.
func Ground(t rdf.Term) TermOrVar { return TermOrVar{Term: t} }

// String renders the position in SPARQL syntax.
func (tv TermOrVar) String() string {
	if tv.IsVar {
		return "?" + tv.Var
	}
	return tv.Term.String()
}

// TriplePattern is Definition 2: a triple over (V ∪ I) × (V ∪ I) × (V ∪ I ∪ L).
type TriplePattern struct {
	S, P, O TermOrVar
}

// String renders the pattern as "s p o .".
func (t TriplePattern) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String() + " ."
}

// Vars returns the variable names in the pattern, in S,P,O order without
// duplicates.
func (t TriplePattern) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, tv := range []TermOrVar{t.S, t.P, t.O} {
		if tv.IsVar && !seen[tv.Var] {
			seen[tv.Var] = true
			out = append(out, tv.Var)
		}
	}
	return out
}

// SubjObjVars returns variable names occurring at the subject or object
// position; Definition 3's coalescability test inspects only these.
func (t TriplePattern) SubjObjVars() []string {
	var out []string
	seen := map[string]bool{}
	for _, tv := range []TermOrVar{t.S, t.O} {
		if tv.IsVar && !seen[tv.Var] {
			seen[tv.Var] = true
			out = append(out, tv.Var)
		}
	}
	return out
}

// Coalescable reports whether two triple patterns share a subject/object
// variable (Definition 3).
func Coalescable(a, b TriplePattern) bool {
	for _, x := range a.SubjObjVars() {
		for _, y := range b.SubjObjVars() {
			if x == y {
				return true
			}
		}
	}
	return false
}

// Element is one syntactic constituent of a group graph pattern, in source
// order: a triple pattern, a nested group, a UNION chain, or an OPTIONAL.
type Element interface{ isElement() }

// Group is a group graph pattern: a brace-delimited sequence of elements
// joined implicitly by AND.
type Group struct {
	Elements []Element
}

func (*Group) isElement() {}

// Union is a chain {G1} UNION {G2} UNION ... (two or more branches).
type Union struct {
	Branches []*Group
}

func (*Union) isElement() {}

// Optional is an OPTIONAL {G} expression. The OPTIONAL-left pattern is
// implicit: everything accumulated before it in the enclosing group.
type Optional struct {
	Group *Group
}

func (*Optional) isElement() {}

func (TriplePattern) isElement() {}

// OrderKey is one ORDER BY sort key: a variable plus direction.
type OrderKey struct {
	Var  string // variable name without "?"
	Desc bool   // true for DESC, false for ASC (the default)
}

// Query is a parsed SELECT query.
type Query struct {
	Prefixes map[string]string
	// Select lists the projection variables; empty means "all variables"
	// (SELECT * and the paper's bare SELECT WHERE form).
	Select []string
	// Distinct reports whether SELECT DISTINCT was used.
	Distinct bool
	Where    *Group
	// OrderBy lists the ORDER BY sort keys in significance order; empty
	// means no requested order.
	OrderBy []OrderKey
	// Limit caps the number of solutions returned; -1 means no limit.
	Limit int
	// Offset skips that many solutions; 0 means none.
	Offset int
}

// String renders the query (normalized; prefixes expanded).
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	if len(q.Select) == 0 {
		b.WriteString("* ")
	} else {
		for _, v := range q.Select {
			b.WriteString("?" + v + " ")
		}
	}
	b.WriteString("WHERE ")
	writeGroup(&b, q.Where, 0)
	if len(q.OrderBy) > 0 {
		b.WriteString(" ORDER BY")
		for _, k := range q.OrderBy {
			if k.Desc {
				b.WriteString(" DESC ?" + k.Var)
			} else {
				b.WriteString(" ?" + k.Var)
			}
		}
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	if q.Offset > 0 {
		fmt.Fprintf(&b, " OFFSET %d", q.Offset)
	}
	return b.String()
}

func writeGroup(b *strings.Builder, g *Group, depth int) {
	indent := strings.Repeat("  ", depth)
	b.WriteString("{\n")
	for _, e := range g.Elements {
		b.WriteString(indent + "  ")
		switch e := e.(type) {
		case TriplePattern:
			b.WriteString(e.String())
		case *Group:
			writeGroup(b, e, depth+1)
		case *Union:
			for i, br := range e.Branches {
				if i > 0 {
					b.WriteString(" UNION ")
				}
				writeGroup(b, br, depth+1)
			}
		case *Optional:
			b.WriteString("OPTIONAL ")
			writeGroup(b, e.Group, depth+1)
		}
		b.WriteString("\n")
	}
	b.WriteString(indent + "}")
}
