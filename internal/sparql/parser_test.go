package sparql

import (
	"errors"
	"strings"
	"testing"

	"sparqluo/internal/rdf"
)

func TestParseSimpleSelect(t *testing.T) {
	q, err := Parse(`SELECT ?x ?y WHERE { ?x <http://e/p> ?y . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 2 || q.Select[0] != "x" || q.Select[1] != "y" {
		t.Errorf("Select = %v", q.Select)
	}
	if len(q.Where.Elements) != 1 {
		t.Fatalf("elements = %d", len(q.Where.Elements))
	}
	tp, ok := q.Where.Elements[0].(TriplePattern)
	if !ok {
		t.Fatalf("element type %T", q.Where.Elements[0])
	}
	if !tp.S.IsVar || tp.S.Var != "x" {
		t.Errorf("S = %+v", tp.S)
	}
	if tp.P.IsVar || tp.P.Term.Value != "http://e/p" {
		t.Errorf("P = %+v", tp.P)
	}
}

func TestParseSelectStarAndBare(t *testing.T) {
	for _, src := range []string{
		`SELECT * WHERE { ?x <http://e/p> ?y }`,
		`SELECT WHERE { ?x <http://e/p> ?y }`, // the paper's bare form
		`SELECT { ?x <http://e/p> ?y }`,       // WHERE is optional
	} {
		q, err := Parse(src)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if len(q.Select) != 0 {
			t.Errorf("%q: Select = %v, want empty (all)", src, q.Select)
		}
	}
}

func TestParseDistinct(t *testing.T) {
	q, err := Parse(`SELECT DISTINCT ?x WHERE { ?x <http://e/p> ?y }`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Distinct {
		t.Error("Distinct not set")
	}
}

func TestParsePrefixes(t *testing.T) {
	q, err := Parse(`
PREFIX ex: <http://ex.org/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT * WHERE { ex:s rdf:type ex:C . ?x a ex:C . }`)
	if err != nil {
		t.Fatal(err)
	}
	tp := q.Where.Elements[0].(TriplePattern)
	if tp.S.Term.Value != "http://ex.org/s" {
		t.Errorf("prefix expansion: %q", tp.S.Term.Value)
	}
	tp2 := q.Where.Elements[1].(TriplePattern)
	if tp2.P.Term.Value != "http://www.w3.org/1999/02/22-rdf-syntax-ns#type" {
		t.Errorf("'a' shorthand: %q", tp2.P.Term.Value)
	}
}

func TestParseUnionChain(t *testing.T) {
	q, err := Parse(`SELECT * WHERE {
		{ ?x <http://e/a> ?y } UNION { ?x <http://e/b> ?y } UNION { ?x <http://e/c> ?y }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	u, ok := q.Where.Elements[0].(*Union)
	if !ok {
		t.Fatalf("element type %T", q.Where.Elements[0])
	}
	if len(u.Branches) != 3 {
		t.Errorf("branches = %d, want 3", len(u.Branches))
	}
}

func TestParseNestedOptional(t *testing.T) {
	q, err := Parse(`SELECT * WHERE {
		?x <http://e/p> ?y .
		OPTIONAL { ?y <http://e/q> ?z . OPTIONAL { ?z <http://e/r> ?w } }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	opt, ok := q.Where.Elements[1].(*Optional)
	if !ok {
		t.Fatalf("element type %T", q.Where.Elements[1])
	}
	if len(opt.Group.Elements) != 2 {
		t.Fatalf("inner elements = %d", len(opt.Group.Elements))
	}
	if _, ok := opt.Group.Elements[1].(*Optional); !ok {
		t.Errorf("nested optional type %T", opt.Group.Elements[1])
	}
}

func TestParseNestedGroupNotUnion(t *testing.T) {
	q, err := Parse(`SELECT * WHERE { { ?x <http://e/p> ?y . } ?x <http://e/q> ?z . }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Where.Elements[0].(*Group); !ok {
		t.Errorf("element type %T, want *Group", q.Where.Elements[0])
	}
}

func TestParseLiterals(t *testing.T) {
	q, err := Parse(`SELECT * WHERE {
		?x <http://e/p> "plain" .
		?x <http://e/p> "hi"@en .
		?x <http://e/p> "1"^^<http://www.w3.org/2001/XMLSchema#integer> .
		?x <http://e/p> "esc\"aped\n" .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	get := func(i int) rdf.Term { return q.Where.Elements[i].(TriplePattern).O.Term }
	if get(0).Value != "plain" {
		t.Errorf("plain: %+v", get(0))
	}
	if get(1).Lang != "en" {
		t.Errorf("lang: %+v", get(1))
	}
	if get(2).Datatype != "http://www.w3.org/2001/XMLSchema#integer" {
		t.Errorf("typed: %+v", get(2))
	}
	if get(3).Value != "esc\"aped\n" {
		t.Errorf("escaped: %q", get(3).Value)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"no select", `{ ?x ?p ?y }`},
		{"unclosed group", `SELECT * WHERE { ?x ?p ?y .`},
		{"dangling union", `SELECT * WHERE { UNION { ?x ?p ?y } }`},
		{"undeclared prefix", `SELECT * WHERE { ex:a ex:b ex:c }`},
		{"a in subject", `SELECT * WHERE { a <http://e/p> ?x }`},
		{"trailing tokens", `SELECT * WHERE { ?x <http://e/p> ?y } extra:tok`},
		{"empty var", `SELECT ? WHERE { ?x <http://e/p> ?y }`},
		{"unterminated literal", `SELECT * WHERE { ?x <http://e/p> "abc }`},
		{"bad prefix decl", `PREFIX <http://e/> SELECT * WHERE { ?x <http://e/p> ?y }`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.src); err == nil {
				t.Errorf("want error for %q", tc.src)
			}
		})
	}
}

func TestCoalescableTriplePatterns(t *testing.T) {
	tp := func(s, p, o string) TriplePattern {
		mk := func(x string) TermOrVar {
			if strings.HasPrefix(x, "?") {
				return Variable(x[1:])
			}
			return Ground(rdf.NewIRI(x))
		}
		return TriplePattern{S: mk(s), P: mk(p), O: mk(o)}
	}
	cases := []struct {
		a, b TriplePattern
		want bool
	}{
		{tp("?x", "p", "?y"), tp("?y", "q", "?z"), true},    // shared ?y
		{tp("?x", "p", "?y"), tp("?a", "q", "?b"), false},   // disjoint
		{tp("?x", "p", "c"), tp("c", "q", "?x"), true},      // shared ?x
		{tp("?x", "?p", "?y"), tp("?a", "?p", "?b"), false}, // predicate vars don't count (Def. 3)
		{tp("s", "p", "o"), tp("s", "p", "o"), false},       // no variables at all
	}
	for i, tc := range cases {
		if got := Coalescable(tc.a, tc.b); got != tc.want {
			t.Errorf("case %d: Coalescable = %v, want %v", i, got, tc.want)
		}
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	src := `SELECT ?x WHERE {
		?x <http://e/p> ?y .
		{ ?x <http://e/a> ?z } UNION { ?x <http://e/b> ?z }
		OPTIONAL { ?y <http://e/q> ?w . }
	}`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// The normalized rendering must itself parse to the same structure.
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("rendered query does not parse: %v\n%s", err, q.String())
	}
	if q2.String() != q.String() {
		t.Errorf("round trip not stable:\n%s\nvs\n%s", q.String(), q2.String())
	}
}

func TestTriplePatternVars(t *testing.T) {
	tp := TriplePattern{S: Variable("x"), P: Variable("p"), O: Variable("x")}
	vars := tp.Vars()
	if len(vars) != 2 {
		t.Errorf("Vars = %v, want [x p]", vars)
	}
	so := tp.SubjObjVars()
	if len(so) != 1 || so[0] != "x" {
		t.Errorf("SubjObjVars = %v, want [x]", so)
	}
}

func TestParseOrderBy(t *testing.T) {
	q, err := Parse(`SELECT ?x WHERE { ?x <http://e/p> ?y } ORDER BY ?y DESC ?x LIMIT 5 OFFSET 2`)
	if err != nil {
		t.Fatal(err)
	}
	want := []OrderKey{{Var: "y"}, {Var: "x", Desc: true}}
	if len(q.OrderBy) != len(want) {
		t.Fatalf("OrderBy = %+v, want %+v", q.OrderBy, want)
	}
	for i, k := range want {
		if q.OrderBy[i] != k {
			t.Errorf("OrderBy[%d] = %+v, want %+v", i, q.OrderBy[i], k)
		}
	}
	if q.Limit != 5 || q.Offset != 2 {
		t.Errorf("Limit/Offset = %d/%d, want 5/2", q.Limit, q.Offset)
	}
	// ASC is the default and may be spelled out; modifiers may come in
	// any order relative to LIMIT/OFFSET.
	q2, err := Parse(`SELECT ?x WHERE { ?x <http://e/p> ?y } LIMIT 5 ORDER BY ASC ?y`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q2.OrderBy) != 1 || q2.OrderBy[0] != (OrderKey{Var: "y"}) {
		t.Errorf("OrderBy = %+v", q2.OrderBy)
	}
}

func TestParseOrderByErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"missing BY", `SELECT * WHERE { ?x <http://e/p> ?y } ORDER ?y`},
		{"no keys", `SELECT * WHERE { ?x <http://e/p> ?y } ORDER BY LIMIT 5`},
		{"non-variable key", `SELECT * WHERE { ?x <http://e/p> ?y } ORDER BY <http://e/p>`},
		{"desc without var", `SELECT * WHERE { ?x <http://e/p> ?y } ORDER BY DESC`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.src); err == nil {
				t.Errorf("want error for %q", tc.src)
			}
		})
	}
}

func TestParseDuplicateModifiers(t *testing.T) {
	cases := []struct{ name, src, wantMsg string }{
		{"limit", `SELECT * WHERE { ?x <http://e/p> ?y } LIMIT 5 LIMIT 6`, "duplicate LIMIT clause"},
		{"offset", `SELECT * WHERE { ?x <http://e/p> ?y } OFFSET 1 LIMIT 5 OFFSET 2`, "duplicate OFFSET clause"},
		{"order by", `SELECT * WHERE { ?x <http://e/p> ?y } ORDER BY ?x ORDER BY ?y`, "duplicate ORDER BY clause"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("want error for %q", tc.src)
			}
			var perr *Error
			if !errors.As(err, &perr) {
				t.Fatalf("error type %T, want *Error: %v", err, err)
			}
			if !strings.Contains(perr.Msg, tc.wantMsg) {
				t.Errorf("message %q, want substring %q", perr.Msg, tc.wantMsg)
			}
			if perr.Pos <= 0 {
				t.Errorf("Pos = %d, want a position inside the text", perr.Pos)
			}
		})
	}
}

func TestOrderByStringRoundTrip(t *testing.T) {
	src := `SELECT ?x WHERE { ?x <http://e/p> ?y } ORDER BY ?y DESC ?x LIMIT 3 OFFSET 1`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("rendered query does not parse: %v\n%s", err, q.String())
	}
	if q2.String() != q.String() {
		t.Errorf("round trip not stable:\n%s\nvs\n%s", q.String(), q2.String())
	}
	if len(q2.OrderBy) != 2 || !q2.OrderBy[1].Desc {
		t.Errorf("OrderBy lost in round trip: %+v", q2.OrderBy)
	}
}

func TestDollarVariable(t *testing.T) {
	q, err := Parse(`SELECT $x WHERE { $x <http://e/p> ?y }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Select[0] != "x" {
		t.Errorf("dollar var: %v", q.Select)
	}
}

func TestCommentsSkipped(t *testing.T) {
	q, err := Parse(`
# leading comment
SELECT * WHERE { # inline
  ?x <http://e/p> ?y . # after pattern
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where.Elements) != 1 {
		t.Errorf("elements = %d", len(q.Where.Elements))
	}
}
