package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"sparqluo/internal/rdf"
)

// Parse parses a SPARQL-UO SELECT query.
//
// Supported grammar (the paper's fragment plus solution modifiers):
//
//	query    := prefix* SELECT DISTINCT? (var* | '*')? WHERE? group modifier*
//	modifier := ORDER BY ((ASC|DESC)? var)+ | LIMIT n | OFFSET n
//	prefix   := PREFIX pname: <iri>
//	group    := '{' element* '}'
//	element  := triple '.'? | group unionTail? | OPTIONAL group
//	unionTail:= (UNION group)+
//	triple   := term term term
//	term     := var | <iri> | pname | literal | 'a'
//
// Each modifier may appear at most once, in any order; a repeated
// ORDER BY, LIMIT or OFFSET is a positioned parse error.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prefixes: map[string]string{}}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse but panics on error; for tests and examples.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks     []token
	i        int
	prefixes map[string]string
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) errf(format string, args ...any) error {
	return &Error{Pos: p.cur().pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) query() (*Query, error) {
	q := &Query{Prefixes: p.prefixes}
	for p.cur().kind == tokKeyword && p.cur().text == "PREFIX" {
		if err := p.prefix(); err != nil {
			return nil, err
		}
	}
	if p.cur().kind != tokKeyword || p.cur().text != "SELECT" {
		return nil, p.errf("expected SELECT")
	}
	p.next()
	if p.cur().kind == tokKeyword && p.cur().text == "DISTINCT" {
		q.Distinct = true
		p.next()
	}
	for {
		t := p.cur()
		if t.kind == tokVar {
			q.Select = append(q.Select, t.text)
			p.next()
			continue
		}
		if t.kind == tokStar {
			p.next() // SELECT * — same as empty list: all variables
		}
		break
	}
	if p.cur().kind == tokKeyword && p.cur().text == "WHERE" {
		p.next()
	}
	g, err := p.group()
	if err != nil {
		return nil, err
	}
	q.Where = g
	q.Limit = -1
	if err := p.modifiers(q); err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("trailing tokens after query body")
	}
	return q, nil
}

// modifiers parses the solution modifiers (ORDER BY, LIMIT, OFFSET) in
// any order. Each clause may appear at most once: repeating one is
// almost certainly a mistake (the previous grammar silently kept the
// last value), so duplicates are rejected with the position of the
// second keyword.
func (p *parser) modifiers(q *Query) error {
	seen := map[string]bool{}
	for p.cur().kind == tokKeyword {
		kw := p.cur().text
		switch kw {
		case "ORDER", "LIMIT", "OFFSET":
		default:
			return nil
		}
		t := p.next()
		if seen[kw] {
			clause := kw
			if clause == "ORDER" {
				clause = "ORDER BY"
			}
			return &Error{Pos: t.pos, Msg: fmt.Sprintf("duplicate %s clause", clause)}
		}
		seen[kw] = true
		if kw == "ORDER" {
			if err := p.orderBy(q); err != nil {
				return err
			}
			continue
		}
		if p.cur().kind != tokNumber {
			return p.errf("expected integer after %s", kw)
		}
		n, err := strconv.Atoi(p.next().text)
		if err != nil {
			return p.errf("bad %s value: %v", kw, err)
		}
		if kw == "LIMIT" {
			q.Limit = n
		} else {
			q.Offset = n
		}
	}
	return nil
}

// orderBy parses the tail of an ORDER BY clause (the ORDER keyword has
// been consumed): BY followed by one or more (ASC|DESC)? ?var keys.
func (p *parser) orderBy(q *Query) error {
	if p.cur().kind != tokKeyword || p.cur().text != "BY" {
		return p.errf("expected BY after ORDER")
	}
	p.next()
	for {
		desc := false
		if p.cur().kind == tokKeyword && (p.cur().text == "ASC" || p.cur().text == "DESC") {
			desc = p.next().text == "DESC"
			if p.cur().kind != tokVar {
				return p.errf("expected variable after ASC/DESC")
			}
		}
		if p.cur().kind != tokVar {
			break
		}
		q.OrderBy = append(q.OrderBy, OrderKey{Var: p.next().text, Desc: desc})
	}
	if len(q.OrderBy) == 0 {
		return p.errf("expected at least one sort key after ORDER BY")
	}
	return nil
}

func (p *parser) prefix() error {
	p.next() // PREFIX
	if p.cur().kind != tokPName {
		return p.errf("expected prefixed name after PREFIX")
	}
	pname := p.next().text
	if !strings.HasSuffix(pname, ":") {
		// "pfx:" with nothing after the colon lexes as a pname; a full
		// pname like "pfx:x" here is malformed.
		colon := strings.Index(pname, ":")
		if colon != len(pname)-1 {
			return p.errf("PREFIX declaration must end with ':'")
		}
	}
	name := strings.TrimSuffix(pname, ":")
	if p.cur().kind != tokIRI {
		return p.errf("expected IRI in PREFIX declaration")
	}
	p.prefixes[name] = p.next().text
	return nil
}

func (p *parser) group() (*Group, error) {
	if p.cur().kind != tokLBrace {
		return nil, p.errf("expected '{'")
	}
	p.next()
	g := &Group{}
	for {
		switch t := p.cur(); t.kind {
		case tokRBrace:
			p.next()
			return g, nil
		case tokEOF:
			return nil, p.errf("unexpected end of query inside group")
		case tokDot:
			p.next() // stray separator
		case tokLBrace:
			sub, err := p.group()
			if err != nil {
				return nil, err
			}
			if p.cur().kind == tokKeyword && p.cur().text == "UNION" {
				u := &Union{Branches: []*Group{sub}}
				for p.cur().kind == tokKeyword && p.cur().text == "UNION" {
					p.next()
					br, err := p.group()
					if err != nil {
						return nil, err
					}
					u.Branches = append(u.Branches, br)
				}
				g.Elements = append(g.Elements, u)
			} else {
				g.Elements = append(g.Elements, sub)
			}
		case tokKeyword:
			switch t.text {
			case "OPTIONAL":
				p.next()
				sub, err := p.group()
				if err != nil {
					return nil, err
				}
				g.Elements = append(g.Elements, &Optional{Group: sub})
			case "UNION":
				return nil, p.errf("UNION must follow a group graph pattern")
			default:
				return nil, p.errf("unexpected keyword %s in group", t.text)
			}
		default:
			tp, err := p.triple()
			if err != nil {
				return nil, err
			}
			g.Elements = append(g.Elements, tp)
		}
	}
}

func (p *parser) triple() (TriplePattern, error) {
	s, err := p.term(false)
	if err != nil {
		return TriplePattern{}, err
	}
	pr, err := p.term(true)
	if err != nil {
		return TriplePattern{}, err
	}
	o, err := p.term(false)
	if err != nil {
		return TriplePattern{}, err
	}
	if p.cur().kind == tokDot {
		p.next()
	}
	return TriplePattern{S: s, P: pr, O: o}, nil
}

var rdfType = rdf.NewIRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")

func (p *parser) term(predicatePos bool) (TermOrVar, error) {
	switch t := p.cur(); t.kind {
	case tokVar:
		p.next()
		return Variable(t.text), nil
	case tokIRI:
		p.next()
		return Ground(rdf.NewIRI(t.text)), nil
	case tokPName:
		p.next()
		iri, err := p.expand(t.text)
		if err != nil {
			return TermOrVar{}, err
		}
		return Ground(rdf.NewIRI(iri)), nil
	case tokA:
		if !predicatePos {
			return TermOrVar{}, p.errf("'a' is only valid in predicate position")
		}
		p.next()
		return Ground(rdfType), nil
	case tokLiteral:
		p.next()
		switch {
		case t.lang != "":
			return Ground(rdf.NewLangLiteral(t.text, t.lang)), nil
		case t.dt != "":
			dt := t.dt
			if strings.HasPrefix(dt, "<") {
				dt = strings.Trim(dt, "<>")
			} else {
				expanded, err := p.expand(dt)
				if err != nil {
					return TermOrVar{}, err
				}
				dt = expanded
			}
			return Ground(rdf.NewTypedLiteral(t.text, dt)), nil
		default:
			return Ground(rdf.NewLiteral(t.text)), nil
		}
	default:
		return TermOrVar{}, p.errf("expected term, got token kind %d", t.kind)
	}
}

func (p *parser) expand(pname string) (string, error) {
	colon := strings.Index(pname, ":")
	pfx, local := pname[:colon], pname[colon+1:]
	base, ok := p.prefixes[pfx]
	if !ok {
		return "", p.errf("undeclared prefix %q", pfx)
	}
	return base + local, nil
}
