package sparql

import "testing"

// FuzzParse throws arbitrary input at the SPARQL-UO parser. The
// invariants: no panic, and a nil error implies a usable *Query with a
// non-nil pattern. The seed corpus concentrates on the grammar the
// paper exercises — UNION/OPTIONAL nesting — plus modifier clauses and
// pathological fragments (unterminated strings, stray braces).
func FuzzParse(f *testing.F) {
	seeds := []string{
		`SELECT * WHERE { ?s ?p ?o }`,
		`SELECT ?x WHERE { ?x <http://p> "lit" }`,
		`PREFIX ex: <http://ex.org/> SELECT ?a ?b WHERE { ?a ex:p ?b }`,
		`SELECT * WHERE { { ?a <p> ?b } UNION { ?b <q> ?a } }`,
		`SELECT * WHERE { ?a <p> ?b OPTIONAL { ?b <q> ?c } }`,
		`SELECT * WHERE { { { ?a <p> ?b } UNION { ?a <q> ?b } } UNION { ?a <r> ?b OPTIONAL { ?b <s> ?c } } }`,
		`SELECT * WHERE { ?a <p> ?b OPTIONAL { ?b <q> ?c OPTIONAL { ?c <r> ?d } } OPTIONAL { ?a <s> ?e } }`,
		`SELECT DISTINCT ?x WHERE { { ?x <p> ?y } UNION { ?x <q> ?y } } LIMIT 10 OFFSET 2`,
		`SELECT ?x WHERE { ?x <p> "esc\"aped \n lit" }`,
		`SELECT ?x WHERE { ?x <p> "chat"@fr }`,
		`SELECT ?x WHERE { ?x <p> "1"^^<http://www.w3.org/2001/XMLSchema#integer> }`,
		`SELECT * WHERE { _:b <p> ?x . ?x <q> _:b }`,
		`SELECT * WHERE {`,
		`SELECT * WHERE { ?a <p> "unterminated }`,
		`SELECT * WHERE { } } UNION {`,
		`PREFIX : <u> SELECT * WHERE { :a :b :c }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		if q == nil {
			t.Fatalf("Parse(%q) returned nil query and nil error", src)
		}
		if q.Where == nil {
			t.Fatalf("Parse(%q) returned query with nil WHERE pattern", src)
		}
	})
}
