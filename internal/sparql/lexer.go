package sparql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokLBrace
	tokRBrace
	tokDot
	tokStar
	tokVar     // ?name
	tokIRI     // <...>
	tokPName   // pfx:local
	tokLiteral // "..." with optional @lang / ^^dt
	tokKeyword // SELECT WHERE UNION OPTIONAL PREFIX DISTINCT ORDER BY ASC DESC LIMIT OFFSET
	tokA       // 'a' shorthand for rdf:type
	tokNumber  // bare integer (LIMIT/OFFSET argument)
)

type token struct {
	kind tokenKind
	text string // raw text; for literals the lexical form
	lang string
	dt   string // datatype, either <iri> or pname (resolved by parser)
	pos  int    // byte offset, for error messages
}

// Error is a SPARQL syntax error with a byte offset into the query string.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("sparql: at offset %d: %s", e.Pos, e.Msg) }

var keywords = map[string]bool{
	"SELECT": true, "WHERE": true, "UNION": true,
	"OPTIONAL": true, "PREFIX": true, "DISTINCT": true,
	"ORDER": true, "BY": true, "ASC": true, "DESC": true,
	"LIMIT": true, "OFFSET": true,
}

type lexer struct {
	src  string
	i    int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpaceAndComments()
		if l.i >= len(l.src) {
			l.emit(token{kind: tokEOF, pos: l.i})
			return l.toks, nil
		}
		start := l.i
		c := l.src[l.i]
		switch {
		case c == '{':
			l.i++
			l.emit(token{kind: tokLBrace, pos: start})
		case c == '}':
			l.i++
			l.emit(token{kind: tokRBrace, pos: start})
		case c == '.':
			l.i++
			l.emit(token{kind: tokDot, pos: start})
		case c == '*':
			l.i++
			l.emit(token{kind: tokStar, pos: start})
		case c == '?' || c == '$':
			l.i++
			name := l.takeWhile(isNameChar)
			if name == "" {
				return nil, &Error{start, "empty variable name"}
			}
			l.emit(token{kind: tokVar, text: name, pos: start})
		case c == '<':
			end := strings.IndexByte(l.src[l.i:], '>')
			if end < 0 {
				return nil, &Error{start, "unterminated IRI"}
			}
			l.emit(token{kind: tokIRI, text: l.src[l.i+1 : l.i+end], pos: start})
			l.i += end + 1
		case c == '"':
			tok, err := l.literal()
			if err != nil {
				return nil, err
			}
			l.emit(tok)
		default:
			word := l.takeWhile(func(r byte) bool {
				return isNameChar(r) || r == ':' || r == '-' || r == '/' || r == '#'
			})
			if word == "" {
				return nil, &Error{start, fmt.Sprintf("unexpected character %q", c)}
			}
			upper := strings.ToUpper(word)
			switch {
			case keywords[upper]:
				l.emit(token{kind: tokKeyword, text: upper, pos: start})
			case word == "a":
				l.emit(token{kind: tokA, pos: start})
			case isAllDigits(word):
				l.emit(token{kind: tokNumber, text: word, pos: start})
			case strings.Contains(word, ":"):
				l.emit(token{kind: tokPName, text: word, pos: start})
			default:
				return nil, &Error{start, fmt.Sprintf("unrecognized token %q", word)}
			}
		}
	}
}

func (l *lexer) emit(t token) { l.toks = append(l.toks, t) }

func (l *lexer) skipSpaceAndComments() {
	for l.i < len(l.src) {
		c := l.src[l.i]
		if c == '#' {
			for l.i < len(l.src) && l.src[l.i] != '\n' {
				l.i++
			}
			continue
		}
		if !unicode.IsSpace(rune(c)) {
			return
		}
		l.i++
	}
}

func (l *lexer) takeWhile(pred func(byte) bool) string {
	start := l.i
	for l.i < len(l.src) && pred(l.src[l.i]) {
		l.i++
	}
	return l.src[start:l.i]
}

func isAllDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}

func isNameChar(c byte) bool {
	return c == '_' || c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func (l *lexer) literal() (token, error) {
	start := l.i
	l.i++ // opening quote
	var b strings.Builder
	for l.i < len(l.src) {
		c := l.src[l.i]
		if c == '\\' && l.i+1 < len(l.src) {
			switch l.src[l.i+1] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return token{}, &Error{l.i, "unknown escape in literal"}
			}
			l.i += 2
			continue
		}
		if c == '"' {
			l.i++
			tok := token{kind: tokLiteral, text: b.String(), pos: start}
			// Optional @lang or ^^datatype.
			if l.i < len(l.src) && l.src[l.i] == '@' {
				l.i++
				tok.lang = l.takeWhile(func(r byte) bool { return isNameChar(r) || r == '-' })
				if tok.lang == "" {
					return token{}, &Error{l.i, "empty language tag"}
				}
			} else if strings.HasPrefix(l.src[l.i:], "^^") {
				l.i += 2
				if l.i < len(l.src) && l.src[l.i] == '<' {
					end := strings.IndexByte(l.src[l.i:], '>')
					if end < 0 {
						return token{}, &Error{l.i, "unterminated datatype IRI"}
					}
					tok.dt = "<" + l.src[l.i+1:l.i+end] + ">"
					l.i += end + 1
				} else {
					tok.dt = l.takeWhile(func(r byte) bool {
						return isNameChar(r) || r == ':' || r == '-' || r == '/' || r == '#'
					})
					if tok.dt == "" {
						return token{}, &Error{l.i, "missing datatype"}
					}
				}
			}
			return tok, nil
		}
		b.WriteByte(c)
		l.i++
	}
	return token{}, &Error{start, "unterminated literal"}
}
