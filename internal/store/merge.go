package store

import (
	"math"
	"slices"
)

// MergeFold builds a frozen store holding (base − dels) ∪ adds without
// re-sorting the base: each of the three permutations is produced by a
// linear merge of the base's own already-sorted permutation with the
// delta (sorted per permutation order — the only sorting done, over the
// delta alone), annihilating tombstones by comparison during the merge
// instead of through a hash set. Row pointers, trailing columns and the
// POS level-2 runs are rebuilt by a linear index pass over each merged
// run, and the Freeze statistics are recomputed off the merged arrays —
// O(n+m) per permutation for an n-triple base and m-op delta, with no
// intermediate flattened slice and no copy of base.Triples().
//
// The semantics match a full FromTriples rebuild of the flattened
// (base − dels) ∪ adds slice exactly, including the edge cases:
// duplicate adds collapse, an add of a triple already in base is
// absorbed, a tombstone of an absent triple is a no-op, and a triple
// both tombstoned and added survives (the add wins). The output is
// byte-identical to that rebuild — same permutation arrays, row
// pointers, level-2 runs and statistics.
//
// The three permutation merges run concurrently on a worker group sized
// off GOMAXPROCS at call time (inline on a single processor, identical
// output either way). The result shares base's dictionary and is frozen
// by construction; base itself is never mutated. An oversized result
// returns ErrTooManyTriples.
func MergeFold(base *Store, adds, dels []EncTriple, withStats bool) (*Store, error) {
	base.ensure()
	if int64(len(base.spo.tri))+int64(len(adds)) > math.MaxInt32 {
		return nil, ErrTooManyTriples
	}
	maxID := base.dict.Len()
	st := &Store{dict: base.dict, built: true, frozen: true}
	runParallel(
		func() {
			tri := mergeDelta(base.spo.tri, adds, dels, cmpSPO)
			st.spo = makePerm(tri, maxID,
				func(t EncTriple) ID { return t.S },
				func(t EncTriple) ID { return t.O })
		},
		func() {
			tri := mergeDelta(base.pos.tri, adds, dels, cmpPOS)
			st.pos = makePerm(tri, maxID,
				func(t EncTriple) ID { return t.P },
				func(t EncTriple) ID { return t.S })
			st.posObjKeys, st.posObjOff, st.posObjIdx = buildPOSRuns(tri, maxID)
		},
		func() {
			tri := mergeDelta(base.osp.tri, adds, dels, cmpOSP)
			st.osp = makePerm(tri, maxID,
				func(t EncTriple) ID { return t.O },
				func(t EncTriple) ID { return t.P })
		},
	)
	if withStats {
		st.stats = computeStats(st)
	}
	return st, nil
}

// mergeDelta linearly merges a sorted duplicate-free base run with a
// delta under the given total order, returning (base − dels) ∪ adds in
// that order. adds and dels arrive unsorted (compaction resolves them
// out of a map); they are copied and sorted here — m log m over the
// delta only, never over the base. Three fingers walk base, adds and
// dels in lockstep: a base triple equal to the front tombstone is
// dropped, an add is always emitted (a consecutive-duplicate check
// collapses duplicate adds and adds already present in base), and a
// triple both tombstoned and re-added survives because the add side
// emits it regardless of the tombstone finger.
func mergeDelta(base, adds, dels []EncTriple, cmp func(a, b EncTriple) int) []EncTriple {
	if len(adds) > 0 {
		adds = append([]EncTriple(nil), adds...)
		slices.SortFunc(adds, cmp)
	}
	if len(dels) > 0 {
		dels = append([]EncTriple(nil), dels...)
		slices.SortFunc(dels, cmp)
	}
	out := make([]EncTriple, 0, len(base)+len(adds))
	emit := func(t EncTriple) {
		if n := len(out); n > 0 && out[n-1] == t {
			return
		}
		out = append(out, t)
	}
	b, a, d := 0, 0, 0
	for b < len(base) || a < len(adds) {
		takeAdd := b >= len(base)
		if !takeAdd && a < len(adds) {
			switch c := cmp(adds[a], base[b]); {
			case c < 0:
				takeAdd = true
			case c == 0:
				// Present on both sides: the add re-asserts the triple,
				// overriding any tombstone; consume both fingers.
				emit(adds[a])
				a++
				b++
				continue
			}
		}
		if takeAdd {
			emit(adds[a])
			a++
			continue
		}
		t := base[b]
		b++
		for d < len(dels) && cmp(dels[d], t) < 0 {
			d++
		}
		if d < len(dels) && dels[d] == t {
			continue // annihilated by its tombstone
		}
		emit(t)
	}
	// Duplicate adds and no-op tombstones leave spare capacity; the run
	// lives for the store's lifetime.
	return slices.Clip(out)
}
