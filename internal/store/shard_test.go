package store

import (
	"math/rand"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"sparqluo/internal/rdf"
)

// shardTestStore builds a frozen store with enough subjects that every
// shard count in the tests yields non-trivial partitions.
func shardTestStore(t testing.TB, nTriples int) *Store {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	st := New()
	for i := 0; i < nTriples; i++ {
		st.Add(rdf.Triple{
			S: rdf.NewIRI("http://ex/s" + string(rune('a'+rng.Intn(40)))),
			P: rdf.NewIRI("http://ex/p" + string(rune('a'+rng.Intn(6)))),
			O: rdf.NewIRI("http://ex/o" + string(rune('a'+rng.Intn(25)))),
		})
	}
	st.Freeze()
	return st
}

// TestShardBySubject checks the partition invariants for a sweep of
// shard counts: bounds cover [0, maxID+1) contiguously, every shard is
// frozen over the shared dictionary, per-shard triples are exactly the
// subject-range slice of the original SPO permutation, and nothing is
// lost or duplicated.
func TestShardBySubject(t *testing.T) {
	st := shardTestStore(t, 600)
	maxID := ID(st.Dict().Len())
	for k := 1; k <= 6; k++ {
		shards, bounds, err := st.ShardBySubject(k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(shards) != k || len(bounds) != k+1 {
			t.Fatalf("k=%d: got %d shards, %d bounds", k, len(shards), len(bounds))
		}
		if bounds[0] != 0 || bounds[k] != maxID+1 {
			t.Fatalf("k=%d: bounds [%d, %d], want [0, %d]", k, bounds[0], bounds[k], maxID+1)
		}
		var all []EncTriple
		total := 0
		for i, sub := range shards {
			if bounds[i] >= bounds[i+1] {
				t.Fatalf("k=%d shard %d: empty range [%d, %d)", k, i, bounds[i], bounds[i+1])
			}
			if !sub.Frozen() {
				t.Fatalf("k=%d shard %d: not frozen", k, i)
			}
			if sub.Dict() != st.Dict() {
				t.Fatalf("k=%d shard %d: dictionary not shared", k, i)
			}
			if got, want := sub.NumTriples(), st.SubjectSpan(bounds[i], bounds[i+1]); got != want {
				t.Fatalf("k=%d shard %d: %d triples, SubjectSpan says %d", k, i, got, want)
			}
			for _, tr := range sub.Triples() {
				if tr.S < bounds[i] || tr.S >= bounds[i+1] {
					t.Fatalf("k=%d shard %d: subject %d outside [%d, %d)", k, i, tr.S, bounds[i], bounds[i+1])
				}
			}
			all = append(all, sub.Triples()...)
			total += sub.NumTriples()
		}
		if total != st.NumTriples() {
			t.Fatalf("k=%d: shards hold %d triples, store has %d", k, total, st.NumTriples())
		}
		if !reflect.DeepEqual(all, st.Triples()) {
			t.Fatalf("k=%d: concatenated shard triples differ from the store's SPO order", k)
		}
	}
}

func TestShardBySubjectErrors(t *testing.T) {
	unfrozen := New()
	unfrozen.Add(rdf.Triple{S: rdf.NewIRI("s"), P: rdf.NewIRI("p"), O: rdf.NewIRI("o")})
	if _, _, err := unfrozen.ShardBySubject(2); err == nil {
		t.Error("ShardBySubject on an unfrozen store should fail")
	}
	st := shardTestStore(t, 50)
	if _, _, err := st.ShardBySubject(0); err == nil {
		t.Error("ShardBySubject(0) should fail")
	}
	if _, _, err := st.ShardBySubject(st.Dict().Len() + 2); err == nil {
		t.Error("ShardBySubject(> maxID+1) should fail")
	}
}

// newSharded shards st and wraps the pieces in a ShardedStore.
func newSharded(t testing.TB, st *Store, k int) *ShardedStore {
	t.Helper()
	shards, bounds, err := st.ShardBySubject(k)
	if err != nil {
		t.Fatalf("ShardBySubject(%d): %v", k, err)
	}
	sh, err := NewShardedStore(shards, bounds, st.Stats())
	if err != nil {
		t.Fatalf("NewShardedStore: %v", err)
	}
	return sh
}

func eqIDs(a, b []ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func eqTriples(a, b []EncTriple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardedStoreEquivalence: every Reader method of a ShardedStore
// must return exactly what the single store it was split from returns —
// same values, same order — for every ID in the dictionary (plus a few
// out-of-range ones). This is the store-level half of the byte-identity
// guarantee; the exec-level half lives in internal/exec.
func TestShardedStoreEquivalence(t *testing.T) {
	st := shardTestStore(t, 500)
	for _, k := range []int{1, 2, 3, 5} {
		sh := newSharded(t, st, k)
		if sh.NumShards() != k {
			t.Fatalf("NumShards = %d, want %d", sh.NumShards(), k)
		}
		if sh.NumTriples() != st.NumTriples() {
			t.Fatalf("k=%d: NumTriples = %d, want %d", k, sh.NumTriples(), st.NumTriples())
		}
		if sh.Stats() != st.Stats() {
			t.Fatalf("k=%d: sharded store must carry the global statistics", k)
		}
		if !sh.Frozen() {
			t.Fatalf("k=%d: sharded store must report frozen", k)
		}
		if !eqTriples(sh.Triples(), st.Triples()) {
			t.Fatalf("k=%d: Triples() differs", k)
		}
		n := ID(st.Dict().Len())
		ids := make([]ID, 0, n+2)
		for id := ID(1); id <= n; id++ {
			ids = append(ids, id)
		}
		ids = append(ids, 0, n+7)
		for _, s := range ids {
			if got, want := sh.CountS(s), st.CountS(s); got != want {
				t.Fatalf("k=%d: CountS(%d) = %d, want %d", k, s, got, want)
			}
			if got, want := sh.CountP(s), st.CountP(s); got != want {
				t.Fatalf("k=%d: CountP(%d) = %d, want %d", k, s, got, want)
			}
			if got, want := sh.CountO(s), st.CountO(s); got != want {
				t.Fatalf("k=%d: CountO(%d) = %d, want %d", k, s, got, want)
			}
			if !eqTriples(sh.SubjectTriples(s), st.SubjectTriples(s)) {
				t.Fatalf("k=%d: SubjectTriples(%d) differs", k, s)
			}
			if !eqTriples(sh.PredicateTriples(s), st.PredicateTriples(s)) {
				t.Fatalf("k=%d: PredicateTriples(%d) differs", k, s)
			}
			if !eqTriples(sh.ObjectTriples(s), st.ObjectTriples(s)) {
				t.Fatalf("k=%d: ObjectTriples(%d) differs", k, s)
			}
			if !eqIDs(sh.SubjectsOfPredicate(s), st.SubjectsOfPredicate(s)) {
				t.Fatalf("k=%d: SubjectsOfPredicate(%d) differs", k, s)
			}
			if !eqIDs(sh.ObjectsOfPredicate(s), st.ObjectsOfPredicate(s)) {
				t.Fatalf("k=%d: ObjectsOfPredicate(%d) differs", k, s)
			}
		}
		// Pairwise accessors, probed on every stored triple plus misses.
		for _, tr := range st.Triples() {
			if !sh.Contains(tr.S, tr.P, tr.O) {
				t.Fatalf("k=%d: Contains(%v) = false", k, tr)
			}
			if sh.Contains(tr.S, tr.P, 0) {
				t.Fatalf("k=%d: Contains(%d,%d,0) = true", k, tr.S, tr.P)
			}
			if !eqIDs(sh.ObjectsSP(tr.S, tr.P), st.ObjectsSP(tr.S, tr.P)) {
				t.Fatalf("k=%d: ObjectsSP(%d,%d) differs", k, tr.S, tr.P)
			}
			if !eqIDs(sh.SubjectsPO(tr.P, tr.O), st.SubjectsPO(tr.P, tr.O)) {
				t.Fatalf("k=%d: SubjectsPO(%d,%d) differs", k, tr.P, tr.O)
			}
			if !eqIDs(sh.PredsSO(tr.S, tr.O), st.PredsSO(tr.S, tr.O)) {
				t.Fatalf("k=%d: PredsSO(%d,%d) differs", k, tr.S, tr.O)
			}
			if got, want := sh.CountSP(tr.S, tr.P), st.CountSP(tr.S, tr.P); got != want {
				t.Fatalf("k=%d: CountSP(%d,%d) = %d, want %d", k, tr.S, tr.P, got, want)
			}
			if got, want := sh.CountPO(tr.P, tr.O), st.CountPO(tr.P, tr.O); got != want {
				t.Fatalf("k=%d: CountPO(%d,%d) = %d, want %d", k, tr.P, tr.O, got, want)
			}
			if got, want := sh.CountSO(tr.S, tr.O), st.CountSO(tr.S, tr.O); got != want {
				t.Fatalf("k=%d: CountSO(%d,%d) = %d, want %d", k, tr.S, tr.O, got, want)
			}
		}
	}
}

func TestNewShardedStoreValidation(t *testing.T) {
	st := shardTestStore(t, 100)
	shards, bounds, err := st.ShardBySubject(2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		f    func() ([]*Store, []ID, *Stats)
	}{
		{"no shards", func() ([]*Store, []ID, *Stats) { return nil, nil, st.Stats() }},
		{"nil stats", func() ([]*Store, []ID, *Stats) { return shards, bounds, nil }},
		{"bounds length", func() ([]*Store, []ID, *Stats) { return shards, bounds[:2], st.Stats() }},
		{"nonzero start", func() ([]*Store, []ID, *Stats) {
			b := append([]ID(nil), bounds...)
			b[0] = 1
			return shards, b, st.Stats()
		}},
		{"wrong end", func() ([]*Store, []ID, *Stats) {
			b := append([]ID(nil), bounds...)
			b[len(b)-1]++
			return shards, b, st.Stats()
		}},
		{"non-increasing", func() ([]*Store, []ID, *Stats) {
			b := append([]ID(nil), bounds...)
			b[1] = b[0]
			return shards, b, st.Stats()
		}},
		{"range mismatch", func() ([]*Store, []ID, *Stats) {
			b := append([]ID(nil), bounds...)
			if b[1] > 1 {
				b[1]--
			} else {
				b[1]++
			}
			return shards, b, st.Stats()
		}},
		{"unfrozen shard", func() ([]*Store, []ID, *Stats) {
			return []*Store{New()}, []ID{0, ID(st.Dict().Len() + 1)}, st.Stats()
		}},
	}
	for _, c := range cases {
		s, b, stats := c.f()
		if _, err := NewShardedStore(s, b, stats); err == nil {
			t.Errorf("%s: NewShardedStore succeeded, want error", c.name)
		}
	}
}

// TestScatterRunsEveryShard: Scatter must invoke f exactly once per
// shard index, whatever mix of inline and goroutine execution the
// semaphore produces.
func TestScatterRunsEveryShard(t *testing.T) {
	st := shardTestStore(t, 300)
	k := 4
	if st.Dict().Len() < k {
		t.Skip("fixture too small")
	}
	sh := newSharded(t, st, k)
	var ran [4]atomic.Int32
	sh.Scatter(func(i int) {
		runtime.Gosched()
		ran[i].Add(1)
	})
	for i := range ran {
		if got := ran[i].Load(); got != 1 {
			t.Errorf("shard %d ran %d times, want 1", i, got)
		}
	}
}
