package store

import "fmt"

// MemStats reports the memory footprint of the store's columnar arrays,
// so index-size regressions show up in benchmark and tooling output.
type MemStats struct {
	Triples    int   // distinct triples (after sort+compact)
	LogTriples int   // triples still in the ingestion log (0 once frozen)
	LogBytes   int64 // bytes held by the ingestion log
	SPOBytes   int64 // SPO permutation: triples + level-1 runs + object column
	POSBytes   int64 // POS permutation: triples + level-1/level-2 runs + subject column
	OSPBytes   int64 // OSP permutation: triples + level-1 runs + predicate column
	DictTerms  int   // distinct terms in the dictionary
	DictBytes  int64 // term string data held by the dictionary
	TotalBytes int64 // log + all permutations + dictionary strings
}

// MemStats returns the current memory footprint. It builds the
// permutations if they are stale, so the figures always describe the
// queryable layout.
func (st *Store) MemStats() MemStats {
	st.ensure()
	const triSize = 12
	m := MemStats{
		Triples:    len(st.spo.tri),
		LogTriples: len(st.log),
		LogBytes:   int64(len(st.log)) * triSize,
		SPOBytes:   st.spo.bytes(),
		POSBytes: st.pos.bytes() + int64(len(st.posObjKeys))*4 +
			int64(len(st.posObjOff))*4 + int64(len(st.posObjIdx))*4,
		OSPBytes:  st.osp.bytes(),
		DictTerms: st.dict.Len(),
		DictBytes: st.dict.StringBytes(),
	}
	m.TotalBytes = m.LogBytes + m.SPOBytes + m.POSBytes + m.OSPBytes + m.DictBytes
	return m
}

// String renders the footprint as a single human-readable line.
func (m MemStats) String() string {
	return fmt.Sprintf("triples=%d log=%s spo=%s pos=%s osp=%s dict=%s total=%s (dict terms=%d)",
		m.Triples, fmtBytes(m.LogBytes), fmtBytes(m.SPOBytes), fmtBytes(m.POSBytes),
		fmtBytes(m.OSPBytes), fmtBytes(m.DictBytes), fmtBytes(m.TotalBytes), m.DictTerms)
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
