package store

// Reader is the read-side contract shared by a single *Store and a
// range-partitioned *ShardedStore. Every accessor keeps the single-store
// ordering contract (ascending-ID views, permutation-sorted triple
// slices) and every count is global, so code written against Reader —
// the engines, the cost models, the evaluator — produces byte-identical
// results whichever implementation serves it.
type Reader interface {
	// Dict exposes the term dictionary. All shards of a sharded store
	// share one dense ID space, so one dictionary serves every shard.
	Dict() *Dict
	// Stats returns the Freeze-time statistics of the full triple set
	// (nil until frozen). A sharded store reports the statistics of the
	// original unpartitioned store, not a per-shard aggregate, so cost
	// models see exactly the numbers a single store would give them.
	Stats() *Stats
	// Frozen reports whether the triple set is read-only.
	Frozen() bool
	// NumTriples is the global distinct-triple count.
	NumTriples() int
	// MemStats reports the (aggregate) memory footprint.
	MemStats() MemStats

	Contains(s, p, o ID) bool
	ObjectsSP(s, p ID) []ID
	SubjectsPO(p, o ID) []ID
	PredsSO(s, o ID) []ID
	SubjectTriples(s ID) []EncTriple
	PredicateTriples(p ID) []EncTriple
	ObjectTriples(o ID) []EncTriple
	SubjectsOfPredicate(p ID) []ID
	ObjectsOfPredicate(p ID) []ID
	Triples() []EncTriple

	CountP(p ID) int
	CountS(s ID) int
	CountO(o ID) int
	CountSP(s, p ID) int
	CountPO(p, o ID) int
	CountSO(s, o ID) int
}

// Viewer is implemented by mutable Readers (the live-update overlay)
// that can pin an immutable point-in-time view of themselves. The
// execution funnel resolves a Viewer to one View per query, so a
// running query sees exactly one epoch of the data — concurrent writes
// and compaction swaps land in later views and are invisible to it.
// Immutable Readers simply don't implement Viewer and are used as-is.
type Viewer interface {
	Reader
	// View returns an immutable snapshot of the current state. The
	// returned Reader is safe for concurrent use and never changes.
	View() Reader
}

// ShardedReader is a Reader whose triple set is range-partitioned by
// subject ID across standalone shard stores. Engine scan paths use it to
// fan work out per shard and recombine in global order; everything else
// can stay on the plain Reader surface.
type ShardedReader interface {
	Reader
	// NumShards returns the number of shards (≥ 1).
	NumShards() int
	// Shard returns shard i. Shards are ordered by ascending subject
	// range, so concatenating per-shard results in index order yields
	// global subject order.
	Shard(i int) *Store
	// ShardFor returns the shard owning subject ID s (out-of-range IDs
	// map to the last shard, whose lookups then come back empty).
	ShardFor(s ID) *Store
	// Scatter runs f(0) … f(k-1), using the store's bounded worker pool
	// for parallelism; it returns only once every call has finished.
	// Calls may run concurrently — f must not share mutable state across
	// indexes.
	Scatter(f func(i int))
}

var (
	_ Reader        = (*Store)(nil)
	_ ShardedReader = (*ShardedStore)(nil)
)
