package store

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"sparqluo/internal/rdf"
)

func tri(s, p, o string) rdf.Triple {
	mk := func(x string) rdf.Term {
		if strings.HasPrefix(x, "\"") {
			return rdf.NewLiteral(strings.Trim(x, "\""))
		}
		return rdf.NewIRI(x)
	}
	return rdf.Triple{S: mk(s), P: mk(p), O: mk(o)}
}

func TestAddAndScan(t *testing.T) {
	st := New()
	st.Add(tri("s1", "p1", "o1"))
	st.Add(tri("s1", "p1", "o2"))
	st.Add(tri("s2", "p1", "o1"))
	st.Add(tri("s1", "p2", "o1"))
	st.Freeze()

	d := st.Dict()
	s1, _ := d.Lookup(rdf.NewIRI("s1"))
	p1, _ := d.Lookup(rdf.NewIRI("p1"))
	o1, _ := d.Lookup(rdf.NewIRI("o1"))

	if got := len(st.ObjectsSP(s1, p1)); got != 2 {
		t.Errorf("ObjectsSP = %d, want 2", got)
	}
	if got := len(st.SubjectsPO(p1, o1)); got != 2 {
		t.Errorf("SubjectsPO = %d, want 2", got)
	}
	if !st.Contains(s1, p1, o1) {
		t.Error("Contains should be true")
	}
	if st.NumTriples() != 4 {
		t.Errorf("NumTriples = %d, want 4", st.NumTriples())
	}
	if got := st.CountP(p1); got != 3 {
		t.Errorf("CountP = %d, want 3", got)
	}
}

func TestDuplicatesIgnored(t *testing.T) {
	st := New()
	st.Add(tri("s", "p", "o"))
	st.Add(tri("s", "p", "o"))
	if st.NumTriples() != 1 {
		t.Errorf("duplicate triple stored: %d", st.NumTriples())
	}
}

func TestAddAfterFreezeErrors(t *testing.T) {
	st := New()
	st.Add(tri("s", "p", "o"))
	st.Freeze()
	if err := st.Add(tri("s2", "p", "o")); !errors.Is(err, ErrFrozen) {
		t.Errorf("Add after Freeze: err = %v, want ErrFrozen", err)
	}
	if err := st.AddAll([]rdf.Triple{tri("s3", "p", "o")}); !errors.Is(err, ErrFrozen) {
		t.Errorf("AddAll after Freeze: err = %v, want ErrFrozen", err)
	}
	if err := st.LoadNTriples(strings.NewReader("<a:s> <a:p> <a:o> .\n")); !errors.Is(err, ErrFrozen) {
		t.Errorf("LoadNTriples after Freeze: err = %v, want ErrFrozen", err)
	}
	if st.NumTriples() != 1 {
		t.Errorf("rejected writes mutated the store: %d triples", st.NumTriples())
	}
}

func TestDecodeInvalidPanics(t *testing.T) {
	d := NewDict()
	defer func() {
		if recover() == nil {
			t.Error("Decode(None) should panic")
		}
	}()
	d.Decode(None)
}

func TestDictRoundTrip(t *testing.T) {
	d := NewDict()
	terms := []rdf.Term{
		rdf.NewIRI("http://a"),
		rdf.NewLiteral("x"),
		rdf.NewLangLiteral("x", "en"),
		rdf.NewTypedLiteral("x", "dt"),
		rdf.NewBlank("b"),
	}
	ids := map[ID]bool{}
	for _, tm := range terms {
		id := d.Encode(tm)
		if ids[id] {
			t.Errorf("duplicate ID %d", id)
		}
		ids[id] = true
		if id2 := d.Encode(tm); id2 != id {
			t.Errorf("re-encode changed ID: %d → %d", id, id2)
		}
		if got := d.Decode(id); !got.Equal(tm) {
			t.Errorf("decode(%d) = %v, want %v", id, got, tm)
		}
	}
	if d.Len() != len(terms) {
		t.Errorf("Len = %d, want %d", d.Len(), len(terms))
	}
	if _, ok := d.Lookup(rdf.NewIRI("http://missing")); ok {
		t.Error("Lookup of missing term should report false")
	}
}

func TestStats(t *testing.T) {
	st := New()
	st.Add(tri("s1", "p1", "o1"))
	st.Add(tri("s1", "p1", "o2"))
	st.Add(tri("s2", "p1", "o2"))
	st.Add(tri("s1", "p2", `"lit"`))
	st.Freeze()
	s := st.Stats()
	if s.NumTriples != 4 {
		t.Errorf("NumTriples = %d", s.NumTriples)
	}
	if s.NumPreds != 2 {
		t.Errorf("NumPreds = %d", s.NumPreds)
	}
	if s.NumLiterals != 1 {
		t.Errorf("NumLiterals = %d", s.NumLiterals)
	}
	// entities: s1, s2, o1, o2 (p1/p2 are predicates, lit is a literal)
	if s.NumEntities != 4 {
		t.Errorf("NumEntities = %d, want 4", s.NumEntities)
	}
	d := st.Dict()
	p1, _ := d.Lookup(rdf.NewIRI("p1"))
	if got := s.AvgOutDegree(p1); got != 1.5 {
		t.Errorf("AvgOutDegree(p1) = %v, want 1.5 (3 triples / 2 subjects)", got)
	}
	if got := s.AvgInDegree(p1); got != 1.5 {
		t.Errorf("AvgInDegree(p1) = %v, want 1.5 (3 triples / 2 objects)", got)
	}
	if got := s.AvgOutDegree(ID(9999)); got != 1 {
		t.Errorf("AvgOutDegree(unknown) = %v, want 1", got)
	}
}

func TestLoadNTriples(t *testing.T) {
	st := New()
	err := st.LoadNTriples(strings.NewReader(`
<http://e/s> <http://e/p> "v" .
<http://e/s> <http://e/p> <http://e/o> .
`))
	if err != nil {
		t.Fatal(err)
	}
	if st.NumTriples() != 2 {
		t.Errorf("NumTriples = %d", st.NumTriples())
	}
	if err := st.LoadNTriples(strings.NewReader("garbage")); err == nil {
		t.Error("want error for bad input")
	}
}

func TestOrderedScansDeterministic(t *testing.T) {
	build := func() *Store {
		st := New()
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 500; i++ {
			st.Add(tri(
				"s"+itoa(rng.Intn(40)),
				"p"+itoa(rng.Intn(3)),
				"o"+itoa(rng.Intn(40))))
		}
		st.Freeze()
		return st
	}
	a, b := build(), build()
	d := a.Dict()
	p0, _ := d.Lookup(rdf.NewIRI("p0"))
	sa := a.SubjectsOfPredicate(p0)
	sb := b.SubjectsOfPredicate(p0)
	if len(sa) != len(sb) {
		t.Fatalf("lengths differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("order differs at %d", i)
		}
	}
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + itoa(n%10)
}

// TestQuickScansMatchBruteForce: every index access path returns exactly
// the triples a brute-force filter of the triple list returns.
func TestQuickScansMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := New()
		type raw struct{ s, p, o int }
		var raws []raw
		for i := 0; i < 60; i++ {
			r := raw{rng.Intn(8), rng.Intn(3), rng.Intn(8)}
			raws = append(raws, r)
			st.Add(tri("s"+itoa(r.s), "p"+itoa(r.p), "o"+itoa(r.o)))
		}
		st.Freeze()
		d := st.Dict()
		lookup := func(x string) ID {
			id, _ := d.Lookup(rdf.NewIRI(x))
			return id
		}
		// Check (s,p,?) and (?,p,o) for random probes.
		for k := 0; k < 10; k++ {
			s, p, o := rng.Intn(8), rng.Intn(3), rng.Intn(8)
			sid, pid, oid := lookup("s"+itoa(s)), lookup("p"+itoa(p)), lookup("o"+itoa(o))
			wantSP, wantPO, wantSPO := 0, 0, false
			seen := map[raw]bool{}
			for _, r := range raws {
				if seen[r] {
					continue // store dedupes
				}
				seen[r] = true
				if r.s == s && r.p == p {
					wantSP++
				}
				if r.p == p && r.o == o {
					wantPO++
				}
				if r.s == s && r.p == p && r.o == o {
					wantSPO = true
				}
			}
			if len(st.ObjectsSP(sid, pid)) != wantSP {
				return false
			}
			if len(st.SubjectsPO(pid, oid)) != wantPO {
				return false
			}
			if st.Contains(sid, pid, oid) != wantSPO {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
