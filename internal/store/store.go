package store

import (
	"errors"
	"io"
	"math"
	"slices"

	"sparqluo/internal/rdf"
)

// ErrFrozen is returned by Add/AddAll/LoadNTriples on a store that has
// been made read-only by Freeze or snapshot loading. A serving process
// must never panic on an ingest path; callers that want live mutation
// route writes through the overlay subsystem instead.
var ErrFrozen = errors.New("store: add after freeze (store is read-only)")

// ErrTooManyTriples is returned by the bulk-build entry points (Freeze,
// FromTriples, MergeFold) when the triple set would exceed the int32
// CSR row-pointer range. A load that large is a clean failure, never a
// server crash.
var ErrTooManyTriples = errors.New("store: triple count exceeds int32 offset range")

// EncTriple is a dictionary-encoded triple.
type EncTriple struct {
	S, P, O ID
}

// Store is an in-memory, dictionary-encoded triple store with a columnar
// sorted-permutation layout. Ingestion appends to a plain triple log;
// the first read (or Freeze) sorts and deduplicates the log once and
// builds three flat permutations of the triple set:
//
//	spo — sorted (S,P,O): (s p ?) (s ? ?) (s p o)
//	pos — sorted (P,O,S): (? p o) (? p ?)
//	osp — sorted (O,S,P): (? ? o) (s ? o)
//	spo (canonical order)           (? ? ?)
//
// Each permutation is a contiguous []EncTriple plus a CSR-style
// row-pointer array over the dense dictionary ID space (level-1 lookup
// is one indexed load) and a flat copy of its trailing component, so
// every access path is at most a binary search over contiguous memory
// and range accessors return zero-copy sub-slices. POS additionally
// carries level-2 runs (distinct objects per predicate), so (? p o)
// searches only a predicate's distinct-object keys. Sorted order
// doubles as the deterministic iteration order
// that reproducible sampling, plan selection and the parallel/sequential
// byte-identical-results guarantee rely on; no side ordering structures
// are needed.
//
// A Store is immutable after Freeze and safe for concurrent readers.
// Reads before Freeze are supported for single-threaded use: each Add
// invalidates the permutations and the next read rebuilds them.
type Store struct {
	dict *Dict

	// log is the append-only ingestion buffer. It may contain duplicate
	// triples; they are removed by the sort+compact at build time. Freeze
	// releases it (spo then owns the canonical triple set).
	log []EncTriple

	built  bool
	frozen bool

	spo perm // sorted (S,P,O); canonical, deduplicated
	pos perm // sorted (P,O,S)
	osp perm // sorted (O,S,P)

	// Level-2 CSR runs of the POS permutation: posObjKeys lists the
	// distinct objects of every predicate (grouped by predicate, each
	// group ascending), posObjOff marks where object k's subjects start
	// in pos, and posObjIdx are per-predicate row pointers into
	// posObjKeys. (?,p,o) lookups then binary-search only the distinct
	// objects of p — a short, dense []ID — instead of the full run.
	posObjKeys []ID
	posObjOff  []int32 // len = len(posObjKeys)+1
	posObjIdx  []int32 // len = maxID+2

	stats *Stats
}

// perm is one sorted permutation of the triple set. tri holds the full
// set in permutation order. off is a CSR-style row-pointer array over
// the dense dictionary ID space: the triples whose leading component is
// id occupy tri[off[id]:off[id+1]], so the level-1 lookup is a single
// indexed load (no search; dictionary IDs are dense). col is the
// trailing component of every triple extracted into a flat column,
// aligned with tri, so range lookups hand out zero-copy []ID views.
type perm struct {
	tri []EncTriple
	off []int32 // len = maxID+2; off[0] = 0 (ID 0 is the None sentinel)
	col []ID
}

// run returns the [lo,hi) range of triples whose leading component is id.
func (x *perm) run(id ID) (int, int) {
	if int(id) >= len(x.off)-1 {
		return 0, 0
	}
	return int(x.off[id]), int(x.off[id+1])
}

// bytes reports the memory footprint of the permutation's arrays.
func (x *perm) bytes() int64 {
	const triSize, idSize, offSize = 12, 4, 4
	return int64(len(x.tri))*triSize + int64(len(x.off))*offSize +
		int64(len(x.col))*idSize
}

// makePerm builds the row-pointer index and trailing column of a triple
// slice sorted by its leading component. keyOf/colOf select the leading
// and trailing components for this permutation; maxID is the largest
// dictionary ID.
func makePerm(tri []EncTriple, maxID int, keyOf, colOf func(EncTriple) ID) perm {
	x := perm{tri: tri, off: make([]int32, maxID+2), col: make([]ID, len(tri))}
	for i, t := range tri {
		x.col[i] = colOf(t)
		x.off[keyOf(t)+1]++
	}
	for i := 1; i < len(x.off); i++ {
		x.off[i] += x.off[i-1]
	}
	return x
}

func cmpSPO(a, b EncTriple) int {
	if c := cmpID(a.S, b.S); c != 0 {
		return c
	}
	if c := cmpID(a.P, b.P); c != 0 {
		return c
	}
	return cmpID(a.O, b.O)
}

func cmpPOS(a, b EncTriple) int {
	if c := cmpID(a.P, b.P); c != 0 {
		return c
	}
	if c := cmpID(a.O, b.O); c != 0 {
		return c
	}
	return cmpID(a.S, b.S)
}

func cmpOSP(a, b EncTriple) int {
	if c := cmpID(a.O, b.O); c != 0 {
		return c
	}
	if c := cmpID(a.S, b.S); c != 0 {
		return c
	}
	return cmpID(a.P, b.P)
}

func cmpID(a, b ID) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// eqRangeP returns the sub-range of tri[lo:hi] whose P equals p; the
// input range must be sorted by P. Hand-rolled binary searches keep
// closure overhead off the point-lookup hot path.
func eqRangeP(tri []EncTriple, lo, hi int, p ID) (int, int) {
	a, b := lo, hi
	for a < b {
		m := int(uint(a+b) >> 1)
		if tri[m].P < p {
			a = m + 1
		} else {
			b = m
		}
	}
	first, end := a, hi
	for a < end {
		m := int(uint(a+end) >> 1)
		if tri[m].P <= p {
			a = m + 1
		} else {
			end = m
		}
	}
	return first, a
}

// eqRangeS is eqRangeP for the S component.
func eqRangeS(tri []EncTriple, lo, hi int, s ID) (int, int) {
	a, b := lo, hi
	for a < b {
		m := int(uint(a+b) >> 1)
		if tri[m].S < s {
			a = m + 1
		} else {
			b = m
		}
	}
	first, end := a, hi
	for a < end {
		m := int(uint(a+end) >> 1)
		if tri[m].S <= s {
			a = m + 1
		} else {
			end = m
		}
	}
	return first, a
}

// New returns an empty store.
func New() *Store {
	return &Store{dict: NewDict()}
}

// PermLayout is the flat representation of one sorted permutation: the
// triples in permutation order, the CSR row-pointer array over the
// dense ID space, and the trailing-component column.
type PermLayout struct {
	Tri []EncTriple
	Off []int32
	Col []ID
}

// Layout is the complete columnar layout of a built store — every flat
// array the read path touches, in a form that can be serialized to (and
// reconstructed from) an on-disk snapshot image. All slices are views
// into the store's arrays; callers must treat them as read-only.
type Layout struct {
	SPO, POS, OSP PermLayout

	// Level-2 CSR runs of the POS permutation (see Store).
	PosObjKeys []ID
	PosObjOff  []int32
	PosObjIdx  []int32
}

// Layout exposes the store's columnar arrays, building them first if the
// ingestion log changed. The snapshot writer is the intended consumer.
func (st *Store) Layout() Layout {
	st.ensure()
	return Layout{
		SPO:        PermLayout{Tri: st.spo.tri, Off: st.spo.off, Col: st.spo.col},
		POS:        PermLayout{Tri: st.pos.tri, Off: st.pos.off, Col: st.pos.col},
		OSP:        PermLayout{Tri: st.osp.tri, Off: st.osp.off, Col: st.osp.col},
		PosObjKeys: st.posObjKeys,
		PosObjOff:  st.posObjOff,
		PosObjIdx:  st.posObjIdx,
	}
}

// FromLayout assembles a store over an externally backed layout —
// typically zero-copy views of a memory-mapped snapshot image — without
// any sorting or per-triple work. The returned store is frozen (and
// therefore read-only and safe for concurrent readers) by construction.
//
// FromLayout trusts its inputs: the arrays must satisfy the invariants
// Freeze establishes (sorted permutations of one triple set, consistent
// row pointers, dense IDs covered by dict). The snapshot loader
// validates structural invariants and checksums before calling it.
func FromLayout(dict *Dict, l Layout, stats *Stats) *Store {
	return &Store{
		dict:       dict,
		built:      true,
		frozen:     true,
		spo:        perm{tri: l.SPO.Tri, off: l.SPO.Off, col: l.SPO.Col},
		pos:        perm{tri: l.POS.Tri, off: l.POS.Off, col: l.POS.Col},
		osp:        perm{tri: l.OSP.Tri, off: l.OSP.Off, col: l.OSP.Col},
		posObjKeys: l.PosObjKeys,
		posObjOff:  l.PosObjOff,
		posObjIdx:  l.PosObjIdx,
		stats:      stats,
	}
}

// FromTriples builds a frozen store over an existing dictionary from an
// encoded triple slice, running the same sort+compact+permute path as
// Freeze. It takes ownership of tris (the slice is sorted in place and
// becomes the SPO permutation). withStats controls whether the
// O(dictionary) statistics pass runs (required for query planning over
// the result). An oversized triple set returns ErrTooManyTriples. For
// folding a delta into an existing built base, MergeFold produces the
// identical store without re-sorting the base.
func FromTriples(dict *Dict, tris []EncTriple, withStats bool) (*Store, error) {
	st := &Store{dict: dict, log: tris}
	if err := st.build(); err != nil {
		return nil, err
	}
	st.frozen = true
	st.log = nil
	if withStats {
		st.stats = computeStats(st)
	}
	return st, nil
}

// CompareSPO orders triples by (S,P,O) — the canonical permutation order.
func CompareSPO(a, b EncTriple) int { return cmpSPO(a, b) }

// ComparePOS orders triples by (P,O,S).
func ComparePOS(a, b EncTriple) int { return cmpPOS(a, b) }

// CompareOSP orders triples by (O,S,P).
func CompareOSP(a, b EncTriple) int { return cmpOSP(a, b) }

// Frozen reports whether the store has been made read-only (by Freeze or
// by snapshot loading).
func (st *Store) Frozen() bool { return st.frozen }

// Dict exposes the store's term dictionary.
func (st *Store) Dict() *Dict { return st.dict }

// NumTriples returns the number of distinct triples stored (RDF datasets
// are sets of triples; duplicates are removed at build time).
func (st *Store) NumTriples() int {
	st.ensure()
	return len(st.spo.tri)
}

// Add inserts one triple. Duplicate triples are deduplicated by the
// sort+compact pass at build time, keeping Add itself O(1) amortized so
// bulk loading is O(n log n) overall. Add returns ErrFrozen if called
// after Freeze.
func (st *Store) Add(t rdf.Triple) error {
	if st.frozen {
		return ErrFrozen
	}
	s := st.dict.Encode(t.S)
	p := st.dict.Encode(t.P)
	o := st.dict.Encode(t.O)
	st.log = append(st.log, EncTriple{s, p, o})
	st.built = false
	return nil
}

// AddAll inserts every triple in ts, stopping at the first error.
func (st *Store) AddAll(ts []rdf.Triple) error {
	for _, t := range ts {
		if err := st.Add(t); err != nil {
			return err
		}
	}
	return nil
}

// LoadNTriples reads an N-Triples document from r and inserts every triple.
func (st *Store) LoadNTriples(r io.Reader) error {
	d := rdf.NewDecoder(r)
	for {
		t, err := d.Decode()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := st.Add(t); err != nil {
			return err
		}
	}
}

// ensure (re)builds the permutations if the log changed since the last
// build. Post-Freeze this is a single branch on the read path. Read
// accessors cannot return errors, so an unbuildable log (more triples
// than the int32 offset range) panics here; the bulk-build entry points
// (Freeze, FromTriples, MergeFold) surface the same condition as
// ErrTooManyTriples before any read can reach it.
func (st *Store) ensure() {
	if st.built {
		return
	}
	if err := st.build(); err != nil {
		panic(err)
	}
}

// build sorts the ingestion log, compacts duplicates, and derives the
// three permutations and their run indexes. The log is kept (pre-Freeze,
// further Adds re-enter build); Freeze releases it. The SPO sort+compact
// runs first (it defines the canonical triple set); the three
// per-permutation index builds then run concurrently on a worker group
// sized off GOMAXPROCS — they write disjoint fields from disjoint
// inputs, so the result is byte-identical to the sequential build.
func (st *Store) build() error {
	if len(st.log) > math.MaxInt32 {
		return ErrTooManyTriples
	}
	maxID := st.dict.Len()
	slices.SortFunc(st.log, cmpSPO)
	spo := make([]EncTriple, 0, len(st.log))
	for i, t := range st.log {
		if i > 0 && t == st.log[i-1] {
			continue
		}
		spo = append(spo, t)
	}
	// Drop the duplicate-proportional spare capacity; spo lives for the
	// store's lifetime and MemStats reports by length.
	spo = slices.Clip(spo)
	runParallel(
		func() {
			st.spo = makePerm(spo, maxID,
				func(t EncTriple) ID { return t.S },
				func(t EncTriple) ID { return t.O })
		},
		func() {
			pos := append([]EncTriple(nil), spo...)
			slices.SortFunc(pos, cmpPOS)
			st.pos = makePerm(pos, maxID,
				func(t EncTriple) ID { return t.P },
				func(t EncTriple) ID { return t.S })
			st.posObjKeys, st.posObjOff, st.posObjIdx = buildPOSRuns(pos, maxID)
		},
		func() {
			osp := append([]EncTriple(nil), spo...)
			slices.SortFunc(osp, cmpOSP)
			st.osp = makePerm(osp, maxID,
				func(t EncTriple) ID { return t.O },
				func(t EncTriple) ID { return t.P })
		},
	)
	st.built = true
	return nil
}

// buildPOSRuns derives the level-2 runs over a sorted POS permutation:
// one entry per distinct (predicate, object) pair, in POS order. The
// arrays are freshly allocated each build — reusing backing arrays
// would corrupt views handed out before a pre-Freeze Add triggered a
// rebuild.
func buildPOSRuns(pos []EncTriple, maxID int) (keys []ID, off, idx []int32) {
	idx = make([]int32, maxID+2)
	for i, t := range pos {
		if i == 0 || t.P != pos[i-1].P || t.O != pos[i-1].O {
			keys = append(keys, t.O)
			off = append(off, int32(i))
			idx[t.P+1]++
		}
	}
	off = append(off, int32(len(pos)))
	for i := 1; i < len(idx); i++ {
		idx[i] += idx[i-1]
	}
	return keys, off, idx
}

// Freeze builds the permutations, computes statistics, releases the
// ingestion log, and marks the store read-only. Queries may be run
// before Freeze (single-threaded), but cardinality estimation requires
// it. Freeze is idempotent. It returns ErrTooManyTriples — leaving the
// store unfrozen and the log intact — if the triple set exceeds the
// int32 offset range.
func (st *Store) Freeze() error {
	if st.frozen {
		return nil
	}
	if !st.built {
		if err := st.build(); err != nil {
			return err
		}
	}
	st.frozen = true
	st.log = nil
	st.stats = computeStats(st)
	return nil
}

// Stats returns the statistics collected at Freeze time, or nil if the
// store has not been frozen.
func (st *Store) Stats() *Stats {
	return st.stats
}

// Contains reports whether the fully ground triple (s,p,o) is present,
// by binary search on the SPO permutation.
func (st *Store) Contains(s, p, o ID) bool {
	st.ensure()
	lo, hi := st.spo.run(s)
	end := hi
	tri := st.spo.tri
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		t := tri[m]
		if t.P < p || (t.P == p && t.O < o) {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo < end && tri[lo].P == p && tri[lo].O == o
}

// ObjectsSP returns the objects of all triples with the given subject and
// predicate, in ascending ID order. The returned slice is a view into the
// store's object column; do not modify it.
func (st *Store) ObjectsSP(s, p ID) []ID {
	st.ensure()
	lo, hi := st.spo.run(s)
	a, b := eqRangeP(st.spo.tri, lo, hi, p)
	return st.spo.col[a:b]
}

// SubjectsPO returns the subjects of all triples with the given predicate
// and object, in ascending ID order (zero-copy view).
func (st *Store) SubjectsPO(p, o ID) []ID {
	st.ensure()
	if int(p) >= len(st.posObjIdx)-1 {
		return nil
	}
	lo, hi := int(st.posObjIdx[p]), int(st.posObjIdx[p+1])
	end := hi
	keys := st.posObjKeys
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if keys[m] < o {
			lo = m + 1
		} else {
			hi = m
		}
	}
	if lo == end || keys[lo] != o {
		return nil
	}
	return st.pos.col[st.posObjOff[lo]:st.posObjOff[lo+1]]
}

// PredsSO returns the predicates linking subject s to object o, in
// ascending ID order (zero-copy view of the OSP predicate column).
func (st *Store) PredsSO(s, o ID) []ID {
	st.ensure()
	lo, hi := st.osp.run(o)
	a, b := eqRangeS(st.osp.tri, lo, hi, s)
	return st.osp.col[a:b]
}

// SubjectTriples returns all triples with subject s, sorted by (P,O)
// (zero-copy view of the SPO permutation).
func (st *Store) SubjectTriples(s ID) []EncTriple {
	st.ensure()
	lo, hi := st.spo.run(s)
	return st.spo.tri[lo:hi]
}

// PredicateTriples returns all triples with predicate p, sorted by (O,S)
// (zero-copy view of the POS permutation).
func (st *Store) PredicateTriples(p ID) []EncTriple {
	st.ensure()
	lo, hi := st.pos.run(p)
	return st.pos.tri[lo:hi]
}

// ObjectTriples returns all triples with object o, sorted by (S,P)
// (zero-copy view of the OSP permutation).
func (st *Store) ObjectTriples(o ID) []EncTriple {
	st.ensure()
	lo, hi := st.osp.run(o)
	return st.osp.tri[lo:hi]
}

// SubjectsOfPredicate returns the distinct subjects of a predicate in
// ascending ID order. The slice is computed per call; engine scan paths
// iterate PredicateTriples instead.
func (st *Store) SubjectsOfPredicate(p ID) []ID {
	st.ensure()
	lo, hi := st.pos.run(p)
	subs := append([]ID(nil), st.pos.col[lo:hi]...)
	slices.Sort(subs)
	return slices.Compact(subs)
}

// ObjectsOfPredicate returns the distinct objects of a predicate in
// ascending ID order — a zero-copy view of the POS level-2 run keys.
func (st *Store) ObjectsOfPredicate(p ID) []ID {
	st.ensure()
	if int(p) >= len(st.posObjIdx)-1 {
		return nil
	}
	return st.posObjKeys[st.posObjIdx[p]:st.posObjIdx[p+1]]
}

// Triples returns the full triple set in canonical (S,P,O) sorted order
// (read-only view).
func (st *Store) Triples() []EncTriple {
	st.ensure()
	return st.spo.tri
}

// CountP returns the number of triples with predicate p.
func (st *Store) CountP(p ID) int {
	st.ensure()
	lo, hi := st.pos.run(p)
	return hi - lo
}

// CountS returns the number of triples with subject s.
func (st *Store) CountS(s ID) int {
	st.ensure()
	lo, hi := st.spo.run(s)
	return hi - lo
}

// CountO returns the number of triples with object o.
func (st *Store) CountO(o ID) int {
	st.ensure()
	lo, hi := st.osp.run(o)
	return hi - lo
}

// CountSP returns the number of triples with subject s and predicate p.
func (st *Store) CountSP(s, p ID) int { return len(st.ObjectsSP(s, p)) }

// CountPO returns the number of triples with predicate p and object o.
func (st *Store) CountPO(p, o ID) int { return len(st.SubjectsPO(p, o)) }

// CountSO returns the number of triples with subject s and object o.
func (st *Store) CountSO(s, o ID) int { return len(st.PredsSO(s, o)) }
