package store

import (
	"io"

	"sparqluo/internal/rdf"
)

// EncTriple is a dictionary-encoded triple.
type EncTriple struct {
	S, P, O ID
}

// Store is an in-memory, dictionary-encoded triple store with permutation
// indexes covering every triple-pattern access path:
//
//	(s p ?) (s ? ?) (s ? o) (s p o) → spo
//	(? p o)                         → pos
//	(? p ?)                         → pso
//	(? ? o)                         → ops
//	(? ? ?)                         → triples
//
// A Store is immutable after Freeze and safe for concurrent readers.
type Store struct {
	dict    *Dict
	triples []EncTriple

	spo map[ID]map[ID][]ID // subject → predicate → objects
	pos map[ID]map[ID][]ID // predicate → object → subjects
	pso map[ID]map[ID][]ID // predicate → subject → objects
	ops map[ID]map[ID][]ID // object → predicate → subjects

	// psoOrder/posOrder record, per predicate, subjects and objects in
	// first-seen order, giving deterministic scans (Go map iteration is
	// randomized; sampling-based cardinality estimation and therefore
	// plan selection must be reproducible).
	psoOrder map[ID][]ID
	posOrder map[ID][]ID

	stats  *Stats
	frozen bool
}

// New returns an empty store.
func New() *Store {
	return &Store{
		dict:     NewDict(),
		spo:      make(map[ID]map[ID][]ID),
		pos:      make(map[ID]map[ID][]ID),
		pso:      make(map[ID]map[ID][]ID),
		ops:      make(map[ID]map[ID][]ID),
		psoOrder: make(map[ID][]ID),
		posOrder: make(map[ID][]ID),
	}
}

// Dict exposes the store's term dictionary.
func (st *Store) Dict() *Dict { return st.dict }

// NumTriples returns the number of triples loaded (including duplicates,
// which are stored once; RDF datasets are sets of triples).
func (st *Store) NumTriples() int { return len(st.triples) }

// Add inserts one triple. Duplicate triples are ignored (RDF set
// semantics). Add panics if called after Freeze.
func (st *Store) Add(t rdf.Triple) {
	if st.frozen {
		panic("store: Add after Freeze")
	}
	s := st.dict.Encode(t.S)
	p := st.dict.Encode(t.P)
	o := st.dict.Encode(t.O)
	// Duplicate check via spo.
	if objs, ok := st.spo[s][p]; ok {
		for _, x := range objs {
			if x == o {
				return
			}
		}
	}
	st.triples = append(st.triples, EncTriple{s, p, o})
	addNested(st.spo, s, p, o)
	if len(st.pos[p][o]) == 0 {
		st.posOrder[p] = append(st.posOrder[p], o)
	}
	addNested(st.pos, p, o, s)
	if len(st.pso[p][s]) == 0 {
		st.psoOrder[p] = append(st.psoOrder[p], s)
	}
	addNested(st.pso, p, s, o)
	addNested(st.ops, o, p, s)
}

// AddAll inserts every triple in ts.
func (st *Store) AddAll(ts []rdf.Triple) {
	for _, t := range ts {
		st.Add(t)
	}
}

// LoadNTriples reads an N-Triples document from r and inserts every triple.
func (st *Store) LoadNTriples(r io.Reader) error {
	d := rdf.NewDecoder(r)
	for {
		t, err := d.Decode()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		st.Add(t)
	}
}

func addNested(m map[ID]map[ID][]ID, a, b, c ID) {
	inner, ok := m[a]
	if !ok {
		inner = make(map[ID][]ID)
		m[a] = inner
	}
	inner[b] = append(inner[b], c)
}

// Freeze computes statistics and marks the store read-only. Queries may be
// run before Freeze, but cardinality estimation requires it. Freeze is
// idempotent.
func (st *Store) Freeze() {
	if st.frozen {
		return
	}
	st.frozen = true
	st.stats = computeStats(st)
}

// Stats returns the statistics collected at Freeze time, or nil if the
// store has not been frozen.
func (st *Store) Stats() *Stats {
	return st.stats
}

// Contains reports whether the fully ground triple (s,p,o) is present.
func (st *Store) Contains(s, p, o ID) bool {
	for _, x := range st.spo[s][p] {
		if x == o {
			return true
		}
	}
	return false
}

// ObjectsSP returns the objects of all triples with the given subject and
// predicate. The returned slice is owned by the store; do not modify it.
func (st *Store) ObjectsSP(s, p ID) []ID { return st.spo[s][p] }

// SubjectsPO returns the subjects of all triples with the given predicate
// and object.
func (st *Store) SubjectsPO(p, o ID) []ID { return st.pos[p][o] }

// PredObjBySubject returns the predicate→objects adjacency of a subject.
func (st *Store) PredObjBySubject(s ID) map[ID][]ID { return st.spo[s] }

// PredSubjByObject returns the predicate→subjects adjacency of an object.
func (st *Store) PredSubjByObject(o ID) map[ID][]ID { return st.ops[o] }

// SubjObjByPredicate returns the subject→objects adjacency of a predicate.
func (st *Store) SubjObjByPredicate(p ID) map[ID][]ID { return st.pso[p] }

// ObjSubjByPredicate returns the object→subjects adjacency of a predicate.
func (st *Store) ObjSubjByPredicate(p ID) map[ID][]ID { return st.pos[p] }

// SubjectsOfPredicate returns the distinct subjects of a predicate in
// first-seen order (deterministic iteration).
func (st *Store) SubjectsOfPredicate(p ID) []ID { return st.psoOrder[p] }

// ObjectsOfPredicate returns the distinct objects of a predicate in
// first-seen order (deterministic iteration).
func (st *Store) ObjectsOfPredicate(p ID) []ID { return st.posOrder[p] }

// Triples returns the raw encoded triple slice (read-only).
func (st *Store) Triples() []EncTriple { return st.triples }

// CountP returns the number of triples with predicate p.
func (st *Store) CountP(p ID) int {
	n := 0
	for _, objs := range st.pso[p] {
		n += len(objs)
	}
	return n
}

// CountSP returns the number of triples with subject s and predicate p.
func (st *Store) CountSP(s, p ID) int { return len(st.spo[s][p]) }

// CountPO returns the number of triples with predicate p and object o.
func (st *Store) CountPO(p, o ID) int { return len(st.pos[p][o]) }
