// Package store implements the RDF storage substrate that the BE-tree
// optimizer sits on: dictionary encoding of terms to dense integer IDs,
// a columnar sorted-permutation index (flat SPO/POS/OSP arrays with
// CSR-style offset runs, built once at Freeze) over the encoded
// triples, and the statistics / sampling-based cardinality estimation
// described in §5.1.2 of the paper.
package store

import (
	"fmt"
	"sync"

	"sparqluo/internal/rdf"
)

// ID is a dictionary-encoded term identifier. ID 0 is reserved as the
// "unbound" sentinel and never denotes a term.
type ID uint32

// None is the reserved unbound/absent ID.
const None ID = 0

// Dict maps RDF terms to dense IDs and back. IDs start at 1; 0 is reserved.
// The zero value is not usable; call NewDict or NewLoadedDict.
//
// A Dict is safe for concurrent use: Encode takes a write lock, the
// read-side accessors take a read lock. The term slice is append-only —
// an ID, once assigned, decodes to the same term forever — which is what
// lets the live-update overlay share one dictionary between a mutating
// memtable and immutable frozen bases.
type Dict struct {
	mu       sync.RWMutex
	ids      map[string]ID
	terms    []rdf.Term // terms[i-1] is the term with ID i
	strBytes int64      // running total of term string bytes (see StringBytes)
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]ID)}
}

// NewLoadedDict returns a dictionary over a prebuilt term slice
// (terms[i-1] has ID i), as reconstructed from a snapshot image. The
// key→ID index is built lazily on the first Lookup or Encode, keeping
// snapshot open time independent of dictionary size; until then the
// dictionary only supports Decode, which is all the zero-copy load path
// needs.
func NewLoadedDict(terms []rdf.Term) *Dict {
	d := &Dict{terms: terms}
	for _, t := range terms {
		d.strBytes += termBytes(t)
	}
	return d
}

func termBytes(t rdf.Term) int64 {
	return int64(len(t.Value)) + int64(len(t.Lang)) + int64(len(t.Datatype))
}

// ensureIndexLocked materializes the key→ID map for loaded
// dictionaries. Callers must hold d.mu for writing.
func (d *Dict) ensureIndexLocked() {
	if d.ids != nil {
		return
	}
	ids := make(map[string]ID, len(d.terms))
	for i, t := range d.terms {
		ids[t.Key()] = ID(i + 1)
	}
	d.ids = ids
}

// Encode returns the ID for t, assigning a fresh one if t is new.
func (d *Dict) Encode(t rdf.Term) ID {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ensureIndexLocked()
	key := t.Key()
	if id, ok := d.ids[key]; ok {
		return id
	}
	d.terms = append(d.terms, t)
	d.strBytes += termBytes(t)
	id := ID(len(d.terms))
	d.ids[key] = id
	return id
}

// Lookup returns the ID for t without inserting, and whether it exists.
func (d *Dict) Lookup(t rdf.Term) (ID, bool) {
	key := t.Key()
	d.mu.RLock()
	if d.ids != nil {
		id, ok := d.ids[key]
		d.mu.RUnlock()
		return id, ok
	}
	d.mu.RUnlock()
	d.mu.Lock()
	d.ensureIndexLocked()
	id, ok := d.ids[key]
	d.mu.Unlock()
	return id, ok
}

// Decode returns the term for id. It panics on the reserved ID 0 or an
// out-of-range id, which always indicates a programming error.
func (d *Dict) Decode(id ID) rdf.Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id == None || int(id) > len(d.terms) {
		panic(fmt.Sprintf("store: decode of invalid ID %d (dict size %d)", id, len(d.terms)))
	}
	return d.terms[id-1]
}

// Len returns the number of distinct terms in the dictionary.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms)
}

// Terms returns the terms in ID order (Terms()[i] has ID i+1). The
// slice is a snapshot-consistent view of the dictionary's backing array
// (append-only, so a captured view never mutates); callers must not
// modify it. The snapshot writer is the intended consumer.
func (d *Dict) Terms() []rdf.Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.terms
}

// StringBytes returns the total bytes of term string data (lexical
// forms, language tags, datatype IRIs) held by the dictionary. The
// total is maintained incrementally, so this is a constant-time read —
// endpoints may report it per request.
func (d *Dict) StringBytes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.strBytes
}
