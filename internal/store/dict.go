// Package store implements the RDF storage substrate that the BE-tree
// optimizer sits on: dictionary encoding of terms to dense integer IDs,
// a columnar sorted-permutation index (flat SPO/POS/OSP arrays with
// CSR-style offset runs, built once at Freeze) over the encoded
// triples, and the statistics / sampling-based cardinality estimation
// described in §5.1.2 of the paper.
package store

import (
	"fmt"

	"sparqluo/internal/rdf"
)

// ID is a dictionary-encoded term identifier. ID 0 is reserved as the
// "unbound" sentinel and never denotes a term.
type ID uint32

// None is the reserved unbound/absent ID.
const None ID = 0

// Dict maps RDF terms to dense IDs and back. IDs start at 1; 0 is reserved.
// The zero value is not usable; call NewDict.
type Dict struct {
	ids   map[string]ID
	terms []rdf.Term // terms[i-1] is the term with ID i
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]ID)}
}

// Encode returns the ID for t, assigning a fresh one if t is new.
func (d *Dict) Encode(t rdf.Term) ID {
	key := t.Key()
	if id, ok := d.ids[key]; ok {
		return id
	}
	d.terms = append(d.terms, t)
	id := ID(len(d.terms))
	d.ids[key] = id
	return id
}

// Lookup returns the ID for t without inserting, and whether it exists.
func (d *Dict) Lookup(t rdf.Term) (ID, bool) {
	id, ok := d.ids[t.Key()]
	return id, ok
}

// Decode returns the term for id. It panics on the reserved ID 0 or an
// out-of-range id, which always indicates a programming error.
func (d *Dict) Decode(id ID) rdf.Term {
	if id == None || int(id) > len(d.terms) {
		panic(fmt.Sprintf("store: decode of invalid ID %d (dict size %d)", id, len(d.terms)))
	}
	return d.terms[id-1]
}

// Len returns the number of distinct terms in the dictionary.
func (d *Dict) Len() int { return len(d.terms) }
