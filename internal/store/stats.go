package store

// Stats holds the per-predicate statistics used by the BGP cost models of
// §5.1.2. They are computed once at Freeze time.
//
// averageSize(v, p) in the WCO-join cost formula is the average number of
// edges with predicate p incident to a single subject (forward direction)
// or object (backward direction); we precompute both directions.
type Stats struct {
	NumTriples   int
	NumEntities  int // distinct subjects ∪ IRI/blank objects
	NumPreds     int
	NumLiterals  int        // distinct literal objects
	PredCount    map[ID]int // triples per predicate
	PredSubjects map[ID]int // distinct subjects per predicate
	PredObjects  map[ID]int // distinct objects per predicate
}

func computeStats(st *Store) *Stats {
	s := &Stats{
		NumTriples:   len(st.triples),
		PredCount:    make(map[ID]int),
		PredSubjects: make(map[ID]int),
		PredObjects:  make(map[ID]int),
	}
	entities := make(map[ID]struct{})
	literals := make(map[ID]struct{})
	for p, subjMap := range st.pso {
		s.PredSubjects[p] = len(subjMap)
		n := 0
		for _, objs := range subjMap {
			n += len(objs)
		}
		s.PredCount[p] = n
	}
	for p, objMap := range st.pos {
		s.PredObjects[p] = len(objMap)
	}
	s.NumPreds = len(st.pso)
	for _, t := range st.triples {
		entities[t.S] = struct{}{}
		if st.dict.Decode(t.O).IsLiteral() {
			literals[t.O] = struct{}{}
		} else {
			entities[t.O] = struct{}{}
		}
	}
	s.NumEntities = len(entities)
	s.NumLiterals = len(literals)
	return s
}

// AvgOutDegree returns the average number of objects per subject for
// predicate p: count(p) / distinctSubjects(p). Returns 1 when p is unseen,
// the conservative floor the paper's cardinality estimator uses.
func (s *Stats) AvgOutDegree(p ID) float64 {
	c, subs := s.PredCount[p], s.PredSubjects[p]
	if subs == 0 {
		return 1
	}
	return float64(c) / float64(subs)
}

// AvgInDegree returns the average number of subjects per object for
// predicate p: count(p) / distinctObjects(p). Returns 1 when p is unseen.
func (s *Stats) AvgInDegree(p ID) float64 {
	c, objs := s.PredCount[p], s.PredObjects[p]
	if objs == 0 {
		return 1
	}
	return float64(c) / float64(objs)
}
