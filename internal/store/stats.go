package store

// Stats holds the per-predicate statistics used by the BGP cost models of
// §5.1.2. They are computed once at Freeze time.
//
// averageSize(v, p) in the WCO-join cost formula is the average number of
// edges with predicate p incident to a single subject (forward direction)
// or object (backward direction); we precompute both directions.
type Stats struct {
	NumTriples   int
	NumEntities  int // distinct subjects ∪ IRI/blank objects
	NumPreds     int
	NumLiterals  int        // distinct literal objects
	PredCount    map[ID]int // triples per predicate
	PredSubjects map[ID]int // distinct subjects per predicate
	PredObjects  map[ID]int // distinct objects per predicate
}

// computeStats reads every statistic directly off the sorted permutation
// arrays: POS row-pointer run lengths give per-predicate counts, value
// transitions inside sorted runs give the distinct-value counts, and one
// walk over the dense ID space classifies each term as subject and/or
// object (entity or literal) from the emptiness of its SPO/OSP runs.
func computeStats(st *Store) *Stats {
	st.ensure()
	maxID := st.dict.Len()
	s := &Stats{
		NumTriples:   len(st.spo.tri),
		PredCount:    make(map[ID]int),
		PredSubjects: make(map[ID]int),
		PredObjects:  make(map[ID]int),
	}
	for p := ID(1); int(p) <= maxID; p++ {
		lo, hi := st.pos.run(p)
		if lo == hi {
			continue
		}
		s.NumPreds++
		s.PredCount[p] = hi - lo
		// The POS level-2 runs list one key per distinct (p,o) pair.
		s.PredObjects[p] = int(st.posObjIdx[p+1] - st.posObjIdx[p])
	}
	// SPO is sorted by (S,P,O): every (S,P) transition is one distinct
	// subject of that predicate.
	spo := st.spo.tri
	for i, t := range spo {
		if i == 0 || t.S != spo[i-1].S || t.P != spo[i-1].P {
			s.PredSubjects[t.P]++
		}
	}
	// Entities are subjects plus non-literal objects; literal objects are
	// counted separately.
	for id := ID(1); int(id) <= maxID; id++ {
		sLo, sHi := st.spo.run(id)
		oLo, oHi := st.osp.run(id)
		isSubj, isObj := sLo != sHi, oLo != oHi
		if isObj && st.dict.Decode(id).IsLiteral() {
			s.NumLiterals++
			if isSubj {
				s.NumEntities++
			}
			continue
		}
		if isSubj || isObj {
			s.NumEntities++
		}
	}
	return s
}

// AvgOutDegree returns the average number of objects per subject for
// predicate p: count(p) / distinctSubjects(p). Returns 1 when p is unseen,
// the conservative floor the paper's cardinality estimator uses.
func (s *Stats) AvgOutDegree(p ID) float64 {
	c, subs := s.PredCount[p], s.PredSubjects[p]
	if subs == 0 {
		return 1
	}
	return float64(c) / float64(subs)
}

// AvgInDegree returns the average number of subjects per object for
// predicate p: count(p) / distinctObjects(p). Returns 1 when p is unseen.
func (s *Stats) AvgInDegree(p ID) float64 {
	c, objs := s.PredCount[p], s.PredObjects[p]
	if objs == 0 {
		return 1
	}
	return float64(c) / float64(objs)
}
