package store

import (
	"runtime"
	"sync"
)

// runParallel runs independent tasks on a bounded worker group sized
// off runtime.GOMAXPROCS(0) at call time. When a single processor is
// available the tasks run inline in order — no goroutines, no channel
// traffic. Tasks must be independent (no shared writes), so the output
// is identical either way; the bulk-build paths rely on that for the
// parallel == sequential byte-identity guarantee.
func runParallel(tasks ...func()) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		for _, task := range tasks {
			task()
		}
		return
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, task := range tasks {
		wg.Add(1)
		sem <- struct{}{}
		go func(task func()) {
			defer wg.Done()
			defer func() { <-sem }()
			task()
		}(task)
	}
	wg.Wait()
}
