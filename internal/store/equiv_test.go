package store

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sparqluo/internal/rdf"
)

// randTriples returns a reproducible random dataset with enough repeated
// IDs that every access path has multi-element runs, plus literal objects
// so the stats split entities from literals.
func randTriples(rng *rand.Rand, n int) []rdf.Triple {
	out := make([]rdf.Triple, 0, n)
	for i := 0; i < n; i++ {
		o := "o" + itoa(rng.Intn(10))
		if rng.Intn(4) == 0 {
			o = "\"lit" + itoa(rng.Intn(4)) + "\""
		}
		out = append(out, tri("s"+itoa(rng.Intn(10)), "p"+itoa(rng.Intn(4)), o))
	}
	return out
}

// accessorSnapshot captures the output of every read accessor for every
// ID in the dictionary (plus an absent ID), preserving order.
type accessorSnapshot struct {
	numTriples int
	triples    []EncTriple
	objectsSP  map[[2]ID][]ID
	subjectsPO map[[2]ID][]ID
	predsSO    map[[2]ID][]ID
	subjTri    map[ID][]EncTriple
	predTri    map[ID][]EncTriple
	objTri     map[ID][]EncTriple
	subjOfP    map[ID][]ID
	objOfP     map[ID][]ID
	counts     map[ID][3]int // CountS, CountP, CountO per ID
	contains   map[EncTriple]bool
}

func snapshot(st *Store) accessorSnapshot {
	n := ID(st.Dict().Len() + 2) // include one past-the-end absent ID
	snap := accessorSnapshot{
		numTriples: st.NumTriples(),
		triples:    append([]EncTriple(nil), st.Triples()...),
		objectsSP:  map[[2]ID][]ID{},
		subjectsPO: map[[2]ID][]ID{},
		predsSO:    map[[2]ID][]ID{},
		subjTri:    map[ID][]EncTriple{},
		predTri:    map[ID][]EncTriple{},
		objTri:     map[ID][]EncTriple{},
		subjOfP:    map[ID][]ID{},
		objOfP:     map[ID][]ID{},
		counts:     map[ID][3]int{},
		contains:   map[EncTriple]bool{},
	}
	for a := ID(1); a <= n; a++ {
		snap.subjTri[a] = append([]EncTriple(nil), st.SubjectTriples(a)...)
		snap.predTri[a] = append([]EncTriple(nil), st.PredicateTriples(a)...)
		snap.objTri[a] = append([]EncTriple(nil), st.ObjectTriples(a)...)
		snap.subjOfP[a] = append([]ID(nil), st.SubjectsOfPredicate(a)...)
		snap.objOfP[a] = append([]ID(nil), st.ObjectsOfPredicate(a)...)
		snap.counts[a] = [3]int{st.CountS(a), st.CountP(a), st.CountO(a)}
		for b := ID(1); b <= n; b++ {
			snap.objectsSP[[2]ID{a, b}] = append([]ID(nil), st.ObjectsSP(a, b)...)
			snap.subjectsPO[[2]ID{a, b}] = append([]ID(nil), st.SubjectsPO(a, b)...)
			snap.predsSO[[2]ID{a, b}] = append([]ID(nil), st.PredsSO(a, b)...)
		}
	}
	for _, t := range snap.triples {
		snap.contains[t] = st.Contains(t.S, t.P, t.O)
	}
	return snap
}

func idSlicesEqual(a, b []ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func triSlicesEqual(a, b []EncTriple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (a accessorSnapshot) equal(b accessorSnapshot) bool {
	if a.numTriples != b.numTriples || !triSlicesEqual(a.triples, b.triples) {
		return false
	}
	for k, v := range a.objectsSP {
		if !idSlicesEqual(v, b.objectsSP[k]) {
			return false
		}
	}
	for k, v := range a.subjectsPO {
		if !idSlicesEqual(v, b.subjectsPO[k]) {
			return false
		}
	}
	for k, v := range a.predsSO {
		if !idSlicesEqual(v, b.predsSO[k]) {
			return false
		}
	}
	for k := range a.subjTri {
		if !triSlicesEqual(a.subjTri[k], b.subjTri[k]) ||
			!triSlicesEqual(a.predTri[k], b.predTri[k]) ||
			!triSlicesEqual(a.objTri[k], b.objTri[k]) ||
			!idSlicesEqual(a.subjOfP[k], b.subjOfP[k]) ||
			!idSlicesEqual(a.objOfP[k], b.objOfP[k]) ||
			a.counts[k] != b.counts[k] {
			return false
		}
	}
	for k, v := range a.contains {
		if v != b.contains[k] {
			return false
		}
	}
	return true
}

// TestAccessorsFreezeTransparent: every accessor returns identical
// results — same values, same order — before Freeze (lazy build over the
// mutable log) and after (frozen permutations), so freezing can never
// change query results.
func TestAccessorsFreezeTransparent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := New()
		st.AddAll(randTriples(rng, 80+rng.Intn(80)))
		before := snapshot(st)
		st.Freeze()
		after := snapshot(st)
		if !before.equal(after) {
			t.Log("accessor output changed across Freeze")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestAccessorsMatchBruteForce: every accessor agrees with a brute-force
// filter over the deduplicated triple set, and the range accessors return
// ascending (deterministic, contractual) ID order.
func TestAccessorsMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := New()
		st.AddAll(randTriples(rng, 100))
		st.Freeze()

		// Brute-force reference: the deduplicated triple set.
		set := map[EncTriple]bool{}
		for _, tr := range st.Triples() {
			set[tr] = true
		}
		if len(set) != st.NumTriples() {
			t.Logf("Triples() contains duplicates: %d distinct vs NumTriples %d", len(set), st.NumTriples())
			return false
		}
		n := ID(st.Dict().Len() + 2)
		ascending := func(ids []ID) bool {
			return sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] })
		}
		filter := func(match func(EncTriple) bool, project func(EncTriple) ID) []ID {
			var out []ID
			seen := map[ID]bool{}
			for tr := range set {
				if match(tr) && !seen[project(tr)] {
					seen[project(tr)] = true
					out = append(out, project(tr))
				}
			}
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out
		}
		count := func(match func(EncTriple) bool) int {
			c := 0
			for tr := range set {
				if match(tr) {
					c++
				}
			}
			return c
		}
		for a := ID(1); a <= n; a++ {
			a := a
			if got, want := st.CountS(a), count(func(tr EncTriple) bool { return tr.S == a }); got != want {
				t.Logf("CountS(%d) = %d, want %d", a, got, want)
				return false
			}
			if got, want := st.CountP(a), count(func(tr EncTriple) bool { return tr.P == a }); got != want {
				t.Logf("CountP(%d) = %d, want %d", a, got, want)
				return false
			}
			if got, want := st.CountO(a), count(func(tr EncTriple) bool { return tr.O == a }); got != want {
				t.Logf("CountO(%d) = %d, want %d", a, got, want)
				return false
			}
			if got, want := len(st.SubjectTriples(a)), st.CountS(a); got != want {
				t.Logf("len(SubjectTriples(%d)) = %d, want %d", a, got, want)
				return false
			}
			if got, want := len(st.PredicateTriples(a)), st.CountP(a); got != want {
				t.Logf("len(PredicateTriples(%d)) = %d, want %d", a, got, want)
				return false
			}
			if got, want := len(st.ObjectTriples(a)), st.CountO(a); got != want {
				t.Logf("len(ObjectTriples(%d)) = %d, want %d", a, got, want)
				return false
			}
			subjOfP := st.SubjectsOfPredicate(a)
			if !ascending(subjOfP) || !idSlicesEqual(subjOfP,
				filter(func(tr EncTriple) bool { return tr.P == a }, func(tr EncTriple) ID { return tr.S })) {
				t.Logf("SubjectsOfPredicate(%d) mismatch", a)
				return false
			}
			objOfP := st.ObjectsOfPredicate(a)
			if !ascending(objOfP) || !idSlicesEqual(objOfP,
				filter(func(tr EncTriple) bool { return tr.P == a }, func(tr EncTriple) ID { return tr.O })) {
				t.Logf("ObjectsOfPredicate(%d) mismatch", a)
				return false
			}
			for b := ID(1); b <= n; b++ {
				b := b
				sp := st.ObjectsSP(a, b)
				if !ascending(sp) || !idSlicesEqual(sp,
					filter(func(tr EncTriple) bool { return tr.S == a && tr.P == b }, func(tr EncTriple) ID { return tr.O })) {
					t.Logf("ObjectsSP(%d,%d) mismatch", a, b)
					return false
				}
				po := st.SubjectsPO(a, b)
				if !ascending(po) || !idSlicesEqual(po,
					filter(func(tr EncTriple) bool { return tr.P == a && tr.O == b }, func(tr EncTriple) ID { return tr.S })) {
					t.Logf("SubjectsPO(%d,%d) mismatch", a, b)
					return false
				}
				so := st.PredsSO(a, b)
				if !ascending(so) || !idSlicesEqual(so,
					filter(func(tr EncTriple) bool { return tr.S == a && tr.O == b }, func(tr EncTriple) ID { return tr.P })) {
					t.Logf("PredsSO(%d,%d) mismatch", a, b)
					return false
				}
				if st.CountSP(a, b) != len(sp) || st.CountPO(a, b) != len(po) || st.CountSO(a, b) != len(so) {
					return false
				}
			}
		}
		// Contains: positives for every stored triple, negatives for probes.
		for tr := range set {
			if !st.Contains(tr.S, tr.P, tr.O) {
				t.Logf("Contains(%v) = false for stored triple", tr)
				return false
			}
		}
		for k := 0; k < 50; k++ {
			probe := EncTriple{ID(1 + rng.Intn(int(n))), ID(1 + rng.Intn(int(n))), ID(1 + rng.Intn(int(n)))}
			if st.Contains(probe.S, probe.P, probe.O) != set[probe] {
				t.Logf("Contains(%v) disagrees with brute force", probe)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestTriplesCanonicalOrder: Triples() is the canonical (S,P,O)-sorted,
// duplicate-free view regardless of insertion order.
func TestTriplesCanonicalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ts := randTriples(rng, 200)
	a, b := New(), New()
	a.AddAll(ts)
	for i := len(ts) - 1; i >= 0; i-- { // reverse insertion order
		b.Add(ts[i])
	}
	a.Freeze()
	b.Freeze()
	ta, tb := a.Triples(), b.Triples()
	if len(ta) != len(tb) {
		t.Fatalf("triple counts differ: %d vs %d", len(ta), len(tb))
	}
	// Dictionary IDs depend on insertion order, so the two stores are
	// compared as sets of decoded triples.
	decode := func(st *Store, ts []EncTriple) map[string]bool {
		out := map[string]bool{}
		d := st.Dict()
		for i, tr := range ts {
			if i > 0 && cmpSPO(ts[i-1], ts[i]) >= 0 {
				t.Fatalf("Triples() not strictly (S,P,O)-sorted at %d", i)
			}
			out[d.Decode(tr.S).Key()+"|"+d.Decode(tr.P).Key()+"|"+d.Decode(tr.O).Key()] = true
		}
		return out
	}
	sa, sb := decode(a, ta), decode(b, tb)
	if len(sa) != len(ta) || len(sb) != len(tb) {
		t.Fatal("Triples() contains duplicates")
	}
	for k := range sa {
		if !sb[k] {
			t.Fatalf("triple %s missing from reverse-loaded store", k)
		}
	}
}

// TestMemStats: the footprint report is internally consistent and scales
// with the data.
func TestMemStats(t *testing.T) {
	st := New()
	st.AddAll(randTriples(rand.New(rand.NewSource(11)), 300))
	pre := st.MemStats()
	if pre.LogTriples == 0 || pre.LogBytes == 0 {
		t.Errorf("pre-freeze log should be non-empty: %+v", pre)
	}
	st.Freeze()
	m := st.MemStats()
	if m.LogTriples != 0 || m.LogBytes != 0 {
		t.Errorf("frozen store should have released the log: %+v", m)
	}
	if m.Triples != st.NumTriples() {
		t.Errorf("Triples = %d, want %d", m.Triples, st.NumTriples())
	}
	// Each permutation holds at least the triple array plus its column
	// (16 bytes per triple); the level-1 runs differ per permutation.
	floor := int64(m.Triples) * 16
	if m.SPOBytes < floor || m.POSBytes < floor || m.OSPBytes < floor {
		t.Errorf("permutation sizes below triple-array floor %d: %+v", floor, m)
	}
	if m.DictBytes <= 0 {
		t.Errorf("DictBytes should count term string data: %+v", m)
	}
	if m.TotalBytes != m.LogBytes+m.SPOBytes+m.POSBytes+m.OSPBytes+m.DictBytes {
		t.Errorf("TotalBytes inconsistent: %+v", m)
	}
	if m.String() == "" {
		t.Error("String() empty")
	}
}
