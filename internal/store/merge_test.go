package store

import (
	"math/rand"
	"reflect"
	"runtime"
	"slices"
	"testing"
	"testing/quick"
)

// foldCase is one randomized MergeFold input over a frozen base:
// adds with duplicates and triples already present, dels with
// tombstones of absent triples, and triples on both sides at once.
type foldCase struct {
	base       *Store
	adds, dels []EncTriple
}

func randFoldCase(rng *rand.Rand) foldCase {
	st := New()
	st.AddAll(randTriples(rng, 120+rng.Intn(80)))
	if err := st.Freeze(); err != nil {
		panic(err)
	}
	d := st.Dict()
	tris := st.Triples()

	randEnc := func() EncTriple {
		// Terms from the base's universe plus a few fresh ones, so adds
		// grow the shared dictionary exactly as live inserts do.
		term := func(prefix string) ID {
			return d.Encode(tri(prefix+itoa(rng.Intn(14)), "", "").S)
		}
		return EncTriple{S: term("ns"), P: term("np"), O: term("no")}
	}
	var adds, dels []EncTriple
	for i, n := 0, rng.Intn(30); i < n; i++ {
		t := randEnc()
		adds = append(adds, t)
		if rng.Intn(3) == 0 {
			adds = append(adds, t) // duplicate add
		}
	}
	for i, n := 0, rng.Intn(20); i < n && len(tris) > 0; i++ {
		adds = append(adds, tris[rng.Intn(len(tris))]) // add already in base
	}
	for i, n := 0, rng.Intn(25); i < n && len(tris) > 0; i++ {
		t := tris[rng.Intn(len(tris))]
		dels = append(dels, t)
		if rng.Intn(4) == 0 {
			dels = append(dels, t) // duplicate tombstone
		}
	}
	for i, n := 0, rng.Intn(15); i < n; i++ {
		dels = append(dels, randEnc()) // tombstone of a (likely) absent triple
	}
	if len(adds) > 0 && rng.Intn(2) == 0 {
		dels = append(dels, adds[rng.Intn(len(adds))]) // tombstoned AND added
	}
	return foldCase{base: st, adds: adds, dels: dels}
}

// rebuildReference folds the delta the pre-merge way: filter the base
// triples through a tombstone set, append the adds, and run the full
// FromTriples sort+compact rebuild.
func rebuildReference(t *testing.T, c foldCase) *Store {
	t.Helper()
	dead := make(map[EncTriple]struct{}, len(c.dels))
	for _, d := range c.dels {
		dead[d] = struct{}{}
	}
	merged := make([]EncTriple, 0, c.base.NumTriples()+len(c.adds))
	for _, tr := range c.base.Triples() {
		if _, ok := dead[tr]; !ok {
			merged = append(merged, tr)
		}
	}
	merged = append(merged, c.adds...)
	ref, err := FromTriples(c.base.Dict(), merged, true)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// requireIdentical asserts every array of the two stores' layouts —
// all three permutations with row pointers and trailing columns, the
// POS level-2 runs — and the Freeze statistics are byte-identical.
func requireIdentical(t *testing.T, got, want *Store) bool {
	t.Helper()
	g, w := got.Layout(), want.Layout()
	permEq := func(name string, a, b PermLayout) bool {
		if !slices.Equal(a.Tri, b.Tri) {
			t.Logf("%s triples diverge", name)
			return false
		}
		if !slices.Equal(a.Off, b.Off) {
			t.Logf("%s row pointers diverge", name)
			return false
		}
		if !slices.Equal(a.Col, b.Col) {
			t.Logf("%s trailing column diverges", name)
			return false
		}
		return true
	}
	if !permEq("spo", g.SPO, w.SPO) || !permEq("pos", g.POS, w.POS) || !permEq("osp", g.OSP, w.OSP) {
		return false
	}
	if !slices.Equal(g.PosObjKeys, w.PosObjKeys) ||
		!slices.Equal(g.PosObjOff, w.PosObjOff) ||
		!slices.Equal(g.PosObjIdx, w.PosObjIdx) {
		t.Log("POS level-2 runs diverge")
		return false
	}
	if !reflect.DeepEqual(got.Stats(), want.Stats()) {
		t.Logf("stats diverge: %+v vs %+v", got.Stats(), want.Stats())
		return false
	}
	return true
}

// TestMergeFoldMatchesRebuild: on randomized add/del sets — duplicate
// adds, adds already in base, duplicate tombstones, tombstones of
// absent triples, and triples simultaneously tombstoned and re-added —
// MergeFold's output is byte-identical (all three permutations, row
// pointers, level-2 runs, statistics) to a full FromTriples rebuild of
// the flattened (base − dels) ∪ adds slice.
func TestMergeFoldMatchesRebuild(t *testing.T) {
	f := func(seed int64) bool {
		c := randFoldCase(rand.New(rand.NewSource(seed)))
		got, err := MergeFold(c.base, c.adds, c.dels, true)
		if err != nil {
			t.Logf("MergeFold: %v", err)
			return false
		}
		if !got.Frozen() {
			t.Log("MergeFold result is not frozen")
			return false
		}
		return requireIdentical(t, got, rebuildReference(t, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMergeFoldEmptyDelta: an empty delta reproduces the base exactly
// (a fresh store over equal arrays), and a delta against an empty base
// is just a sorted dedup of the adds.
func TestMergeFoldEmptyDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := foldCase{base: randFoldCase(rng).base}
	got, err := MergeFold(c.base, nil, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if !requireIdentical(t, got, rebuildReference(t, c)) {
		t.Fatal("empty delta diverged from rebuild")
	}

	empty := New()
	if err := empty.Freeze(); err != nil {
		t.Fatal(err)
	}
	adds := []EncTriple{
		{S: empty.Dict().Encode(tri("s1", "", "").S), P: empty.Dict().Encode(tri("p1", "", "").S), O: empty.Dict().Encode(tri("o1", "", "").S)},
	}
	adds = append(adds, adds[0]) // duplicate
	onto, err := MergeFold(empty, adds, []EncTriple{{S: 1, P: 1, O: 1}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if onto.NumTriples() != 1 {
		t.Fatalf("fold onto empty base: %d triples, want 1", onto.NumTriples())
	}
}

// TestBuildParallelSequentialIdentical pins the determinism guarantee
// of the concurrent permutation builds: the same input built with the
// worker group active (GOMAXPROCS > 1) and with the inline sequential
// path (GOMAXPROCS = 1) yields byte-identical layouts and statistics,
// for both the bulk build and MergeFold.
func TestBuildParallelSequentialIdentical(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	rng := rand.New(rand.NewSource(17))
	ts := randTriples(rng, 250)
	build := func(procs int) (*Store, *Store) {
		runtime.GOMAXPROCS(procs)
		st := New()
		st.AddAll(ts)
		if err := st.Freeze(); err != nil {
			t.Fatal(err)
		}
		c := randFoldCase(rand.New(rand.NewSource(23)))
		folded, err := MergeFold(c.base, c.adds, c.dels, true)
		if err != nil {
			t.Fatal(err)
		}
		return st, folded
	}
	seqSt, seqFold := build(1)
	parSt, parFold := build(4)
	if !requireIdentical(t, parSt, seqSt) {
		t.Error("parallel build diverges from sequential build")
	}
	if !requireIdentical(t, parFold, seqFold) {
		t.Error("parallel MergeFold diverges from sequential MergeFold")
	}
}

// TestFreezeTooManyTriplesSurfaces pins the typed-error contract
// indirectly: ErrTooManyTriples is a sentinel callers can test with
// errors.Is through Freeze/FromTriples/MergeFold. (A real >2^31-triple
// load needs tens of GiB, so the limit check itself is exercised by
// construction, not allocation.)
func TestFreezeTooManyTriplesSurfaces(t *testing.T) {
	if ErrTooManyTriples == nil {
		t.Fatal("ErrTooManyTriples must be a non-nil sentinel")
	}
	// The happy paths return nil errors.
	st := New()
	st.AddAll(randTriples(rand.New(rand.NewSource(1)), 10))
	if err := st.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	if _, err := FromTriples(st.Dict(), nil, false); err != nil {
		t.Fatalf("FromTriples: %v", err)
	}
	if _, err := MergeFold(st, nil, nil, false); err != nil {
		t.Fatalf("MergeFold: %v", err)
	}
}
