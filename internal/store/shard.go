package store

import (
	"fmt"
	"runtime"
	"sort"
)

// ShardBySubject splits a frozen store into k standalone shard stores on
// ascending subject-ID boundaries. Shard i holds exactly the triples
// whose subject lies in [bounds[i], bounds[i+1]); bounds[0] is 0 and
// bounds[k] is maxID+1, so the ranges tile the dense ID space with no
// gaps or overlap. Boundaries are chosen by binary search on the SPO row
// pointers so shards carry near-equal triple counts regardless of
// subject skew (a single subject's run is never split).
//
// Every shard shares the parent's dictionary — the full ID space, so a
// shard is a self-contained frozen store that can be snapshotted and
// reopened on its own — and is frozen with its own local statistics.
func (st *Store) ShardBySubject(k int) ([]*Store, []ID, error) {
	if !st.frozen {
		return nil, nil, fmt.Errorf("store: ShardBySubject requires a frozen store")
	}
	maxID := st.dict.Len()
	if k < 1 || k > maxID+1 {
		return nil, nil, fmt.Errorf("store: cannot split a %d-term store into %d shards", maxID, k)
	}
	total := len(st.spo.tri)
	bounds := make([]ID, k+1)
	bounds[k] = ID(maxID + 1)
	for j := 1; j < k; j++ {
		target := int32(int64(total) * int64(j) / int64(k))
		id := sort.Search(maxID+2, func(i int) bool { return st.spo.off[i] >= target })
		// Keep the cut sequence strictly increasing even on degenerate
		// distributions, leaving room for the cuts still to come.
		if lo := int(bounds[j-1]) + 1; id < lo {
			id = lo
		}
		if hi := maxID + 1 - (k - 1 - j); id > hi {
			id = hi
		}
		bounds[j] = ID(id)
	}
	shards := make([]*Store, k)
	for i := 0; i < k; i++ {
		a, b := st.spo.off[bounds[i]], st.spo.off[bounds[i+1]]
		sub := &Store{dict: st.dict, log: append([]EncTriple(nil), st.spo.tri[a:b]...)}
		if err := sub.Freeze(); err != nil {
			return nil, nil, fmt.Errorf("store: freezing shard %d: %w", i, err)
		}
		shards[i] = sub
	}
	return shards, bounds, nil
}

// SubjectSpan returns the number of triples whose subject lies in
// [lo, hi) — O(1) off the SPO row pointers. The shard loaders use it to
// verify that an image's triples are confined to its manifest range.
func (st *Store) SubjectSpan(lo, hi ID) int {
	st.ensure()
	last := int32(len(st.spo.tri))
	at := func(id ID) int32 {
		if int(id) >= len(st.spo.off) {
			return last
		}
		return st.spo.off[id]
	}
	n := at(hi) - at(lo)
	if n < 0 {
		return 0
	}
	return int(n)
}

// ShardedStore presents k subject-range shard stores as one Reader. Point
// lookups with a bound subject route to exactly one shard (where local
// results equal global results); predicate/object counts sum across
// shards; enumeration accessors recombine per-shard views in the global
// permutation order — plain concatenation when the order leads with the
// subject, a k-way merge otherwise. Stats are the original store's
// global statistics (carried by the shard manifest), so plan selection
// and sampling behave exactly as on the unpartitioned store.
//
// A ShardedStore is always frozen and safe for concurrent readers.
type ShardedStore struct {
	shards []*Store
	bounds []ID // len(shards)+1; shard i owns subjects [bounds[i], bounds[i+1])
	stats  *Stats
	total  int
	// sem bounds the extra goroutines Scatter may run across concurrent
	// callers; its capacity is the maximum ever useful (one worker per
	// shard beyond the caller itself), while each Scatter call sizes its
	// own fan-out budget off GOMAXPROCS at call time. Acquisition is
	// non-blocking (callers fall back to inline work), so scatter
	// fan-out can never deadlock however deeply queries nest.
	sem chan struct{}
}

// NewShardedStore assembles a sharded reader over frozen shard stores and
// their subject-range bounds, validating that the ranges tile the ID
// space, every shard's triples are confined to its range, and all shards
// agree on the dictionary size. stats must be the global statistics of
// the full triple set.
func NewShardedStore(shards []*Store, bounds []ID, stats *Stats) (*ShardedStore, error) {
	k := len(shards)
	if k == 0 {
		return nil, fmt.Errorf("store: sharded store needs at least one shard")
	}
	if len(bounds) != k+1 {
		return nil, fmt.Errorf("store: %d shards need %d bounds, got %d", k, k+1, len(bounds))
	}
	if stats == nil {
		return nil, fmt.Errorf("store: sharded store requires global stats")
	}
	if bounds[0] != 0 {
		return nil, fmt.Errorf("store: shard ranges must start at ID 0, got %d", bounds[0])
	}
	maxID := shards[0].Dict().Len()
	if int(bounds[k]) != maxID+1 {
		return nil, fmt.Errorf("store: shard ranges end at %d, want maxID+1 = %d", bounds[k], maxID+1)
	}
	total := 0
	for i, sh := range shards {
		if sh == nil || !sh.Frozen() {
			return nil, fmt.Errorf("store: shard %d is not a frozen store", i)
		}
		if sh.Dict().Len() != maxID {
			return nil, fmt.Errorf("store: shard %d has %d dictionary terms, want %d (shards must share one ID space)",
				i, sh.Dict().Len(), maxID)
		}
		if bounds[i] >= bounds[i+1] {
			return nil, fmt.Errorf("store: shard %d range [%d,%d) is empty or out of order", i, bounds[i], bounds[i+1])
		}
		if got, n := sh.SubjectSpan(bounds[i], bounds[i+1]), sh.NumTriples(); got != n {
			return nil, fmt.Errorf("store: shard %d holds %d of %d triples inside its range [%d,%d)",
				i, got, n, bounds[i], bounds[i+1])
		}
		total += sh.NumTriples()
	}
	return &ShardedStore{
		shards: shards,
		bounds: append([]ID(nil), bounds...),
		stats:  stats,
		total:  total,
		sem:    make(chan struct{}, k-1),
	}, nil
}

// NumShards returns the shard count.
func (sh *ShardedStore) NumShards() int { return len(sh.shards) }

// Shard returns shard i (ascending subject ranges).
func (sh *ShardedStore) Shard(i int) *Store { return sh.shards[i] }

// Bounds returns the subject-range cut points (len NumShards()+1).
func (sh *ShardedStore) Bounds() []ID { return sh.bounds }

// ShardFor returns the shard owning subject s.
func (sh *ShardedStore) ShardFor(s ID) *Store {
	i := sort.Search(len(sh.shards), func(i int) bool { return sh.bounds[i+1] > s })
	if i == len(sh.shards) {
		// Out-of-range ID: any shard answers "not present"; use the last.
		i--
	}
	return sh.shards[i]
}

// Scatter runs f over every shard index. The fan-out budget is sized
// off runtime.GOMAXPROCS(0) at call time — not at construction — so a
// process whose processor allowance changes mid-flight gets the right
// pool on its next query. When a single processor is available (or
// there is only one shard) every index runs inline with no goroutines
// or channel traffic at all: the shard_scaling BENCH rows on the
// single-core CI box showed k>1 fan-out there is pure gather overhead.
// Otherwise a goroutine is spawned per index while both the call-time
// budget and the shared bounded pool have capacity, inline otherwise.
func (sh *ShardedStore) Scatter(f func(i int)) {
	budget := runtime.GOMAXPROCS(0) - 1
	if budget <= 0 || len(sh.shards) < 2 {
		for i := range sh.shards {
			f(i)
		}
		return
	}
	done := make(chan int, len(sh.shards))
	spawned := 0
	for i := range sh.shards {
		if spawned < budget {
			select {
			case sh.sem <- struct{}{}:
				spawned++
				go func(i int) {
					defer func() { <-sh.sem }()
					f(i)
					done <- i
				}(i)
				continue
			default:
			}
		}
		f(i)
	}
	for ; spawned > 0; spawned-- {
		<-done
	}
}

// Dict returns the shared dictionary (shard 0's instance; all shards
// carry identical term tables).
func (sh *ShardedStore) Dict() *Dict { return sh.shards[0].Dict() }

// Stats returns the global statistics of the full triple set.
func (sh *ShardedStore) Stats() *Stats { return sh.stats }

// Frozen always reports true — shards are frozen by construction.
func (sh *ShardedStore) Frozen() bool { return true }

// NumTriples returns the global triple count (sum of shards).
func (sh *ShardedStore) NumTriples() int { return sh.total }

// Contains routes to the shard owning s.
func (sh *ShardedStore) Contains(s, p, o ID) bool { return sh.ShardFor(s).Contains(s, p, o) }

// ObjectsSP routes to the shard owning s (local view == global view).
func (sh *ShardedStore) ObjectsSP(s, p ID) []ID { return sh.ShardFor(s).ObjectsSP(s, p) }

// PredsSO routes to the shard owning s.
func (sh *ShardedStore) PredsSO(s, o ID) []ID { return sh.ShardFor(s).PredsSO(s, o) }

// SubjectTriples routes to the shard owning s.
func (sh *ShardedStore) SubjectTriples(s ID) []EncTriple { return sh.ShardFor(s).SubjectTriples(s) }

// CountS routes to the shard owning s.
func (sh *ShardedStore) CountS(s ID) int { return sh.ShardFor(s).CountS(s) }

// CountSP routes to the shard owning s.
func (sh *ShardedStore) CountSP(s, p ID) int { return sh.ShardFor(s).CountSP(s, p) }

// CountSO routes to the shard owning s.
func (sh *ShardedStore) CountSO(s, o ID) int { return sh.ShardFor(s).CountSO(s, o) }

// CountP sums the predicate count across shards.
func (sh *ShardedStore) CountP(p ID) int {
	n := 0
	for _, s := range sh.shards {
		n += s.CountP(p)
	}
	return n
}

// CountO sums the object count across shards.
func (sh *ShardedStore) CountO(o ID) int {
	n := 0
	for _, s := range sh.shards {
		n += s.CountO(o)
	}
	return n
}

// CountPO sums the (predicate, object) count across shards.
func (sh *ShardedStore) CountPO(p, o ID) int {
	n := 0
	for _, s := range sh.shards {
		n += s.CountPO(p, o)
	}
	return n
}

// concatIDs recombines per-shard ID views that are already in global
// order under concatenation (the values are subject-correlated and the
// shard ranges ascend). A single non-empty view is returned zero-copy.
func concatIDs(shards []*Store, get func(*Store) []ID) []ID {
	var single []ID
	n, nonEmpty := 0, 0
	for _, s := range shards {
		if v := get(s); len(v) > 0 {
			n += len(v)
			nonEmpty++
			single = v
		}
	}
	if nonEmpty <= 1 {
		return single
	}
	out := make([]ID, 0, n)
	for _, s := range shards {
		out = append(out, get(s)...)
	}
	return out
}

// concatTriples is concatIDs for triple views.
func concatTriples(shards []*Store, get func(*Store) []EncTriple) []EncTriple {
	var single []EncTriple
	n, nonEmpty := 0, 0
	for _, s := range shards {
		if v := get(s); len(v) > 0 {
			n += len(v)
			nonEmpty++
			single = v
		}
	}
	if nonEmpty <= 1 {
		return single
	}
	out := make([]EncTriple, 0, n)
	for _, s := range shards {
		out = append(out, get(s)...)
	}
	return out
}

// SubjectsPO returns the global ascending-subject view: per-shard views
// are ascending within disjoint ascending ranges, so concatenation is
// already sorted. Engine scan paths stream per shard instead of calling
// this (it materializes when more than one shard matches).
func (sh *ShardedStore) SubjectsPO(p, o ID) []ID {
	return concatIDs(sh.shards, func(s *Store) []ID { return s.SubjectsPO(p, o) })
}

// SubjectsOfPredicate concatenates the per-shard distinct-subject views
// (disjoint ascending ranges ⇒ globally sorted and distinct).
func (sh *ShardedStore) SubjectsOfPredicate(p ID) []ID {
	return concatIDs(sh.shards, func(s *Store) []ID { return s.SubjectsOfPredicate(p) })
}

// ObjectTriples concatenates the per-shard (S,P)-sorted views — the
// leading sort component is the subject, so shard order is global order.
func (sh *ShardedStore) ObjectTriples(o ID) []EncTriple {
	return concatTriples(sh.shards, func(s *Store) []EncTriple { return s.ObjectTriples(o) })
}

// Triples concatenates the canonical (S,P,O)-sorted shard views.
func (sh *ShardedStore) Triples() []EncTriple {
	return concatTriples(sh.shards, func(s *Store) []EncTriple { return s.Triples() })
}

// PredicateTriples merges the per-shard (O,S)-sorted views into the
// global POS order. Subjects are disjoint across shards, so the merge
// has no ties and is deterministic. Engine scan paths stream the same
// merge without materializing.
func (sh *ShardedStore) PredicateTriples(p ID) []EncTriple {
	runs := make([][]EncTriple, 0, len(sh.shards))
	n := 0
	for _, s := range sh.shards {
		if v := s.PredicateTriples(p); len(v) > 0 {
			runs = append(runs, v)
			n += len(v)
		}
	}
	if len(runs) == 0 {
		return nil
	}
	if len(runs) == 1 {
		return runs[0]
	}
	out := make([]EncTriple, 0, n)
	for {
		best := -1
		for i, r := range runs {
			if len(r) == 0 {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			a, b := r[0], runs[best][0]
			if a.O < b.O || (a.O == b.O && a.S < b.S) {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, runs[best][0])
		runs[best] = runs[best][1:]
	}
}

// ObjectsOfPredicate merges the per-shard distinct-object views with
// cross-shard deduplication (an object can appear under many subjects).
func (sh *ShardedStore) ObjectsOfPredicate(p ID) []ID {
	runs := make([][]ID, 0, len(sh.shards))
	n := 0
	for _, s := range sh.shards {
		if v := s.ObjectsOfPredicate(p); len(v) > 0 {
			runs = append(runs, v)
			n += len(v)
		}
	}
	if len(runs) == 0 {
		return nil
	}
	if len(runs) == 1 {
		return runs[0]
	}
	out := make([]ID, 0, n)
	for {
		best := -1
		for i, r := range runs {
			if len(r) == 0 {
				continue
			}
			if best < 0 || r[0] < runs[best][0] {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		v := runs[best][0]
		if len(out) == 0 || out[len(out)-1] != v {
			out = append(out, v)
		}
		runs[best] = runs[best][1:]
	}
}

// MemStats aggregates the shards' index footprints. The dictionary is
// logically shared (one ID space), so terms are reported once and
// DictBytes is the serving dictionary's string data; per-shard images
// each carry their own mapped copy on disk.
func (sh *ShardedStore) MemStats() MemStats {
	var m MemStats
	for _, s := range sh.shards {
		sm := s.MemStats()
		m.Triples += sm.Triples
		m.LogTriples += sm.LogTriples
		m.LogBytes += sm.LogBytes
		m.SPOBytes += sm.SPOBytes
		m.POSBytes += sm.POSBytes
		m.OSPBytes += sm.OSPBytes
	}
	m.DictTerms = sh.Dict().Len()
	m.DictBytes = sh.Dict().StringBytes()
	m.TotalBytes = m.LogBytes + m.SPOBytes + m.POSBytes + m.OSPBytes + m.DictBytes
	return m
}
