// Package benchbags builds the synthetic join operands shared by the
// algebra join micro-benchmarks (`make bench-join`) and cmd/benchjson
// (the committed BENCH_<n>.json), so both report the same workload and
// their numbers stay comparable.
package benchbags

import (
	"sparqluo/internal/algebra"
	"sparqluo/internal/store"
)

// JoinPair builds two join operands of n rows each over width 3:
// column 0 is the certain join key (fanout distinct rows per key on
// each side), column 1 is an a-side payload, column 2 a b-side payload.
// Both bags are built key-sorted; ordered selects whether their Order
// property says so (true → the dispatch merge-joins, false → it hash-
// joins the same data).
// SortInput builds the ORDER BY micro-benchmark operand: n rows of
// width 2 whose column 0 holds deterministically scrambled keys (a
// fixed LCG, so every run sorts identical data) and column 1 a unique
// payload. The bag carries no Order claim, so both the full sort and
// the bounded-heap top-k must do real work.
func SortInput(n int) *algebra.Bag {
	b := algebra.NewBag(2)
	for c := 0; c < 2; c++ {
		b.Cert.Set(c)
		b.Maybe.Set(c)
	}
	row := make(algebra.Row, 2)
	seed := uint32(2463534242)
	for i := 0; i < n; i++ {
		seed = seed*1664525 + 1013904223
		row[0] = store.ID(1 + seed%uint32(n))
		row[1] = store.ID(1 + i)
		b.Append(row)
	}
	return b
}

func JoinPair(n, fanout int, ordered bool) (*algebra.Bag, *algebra.Bag) {
	mk := func(payload int) *algebra.Bag {
		b := algebra.NewBag(3)
		b.Cert.Set(0)
		b.Maybe.Set(0)
		b.Cert.Set(payload)
		b.Maybe.Set(payload)
		row := make(algebra.Row, 3)
		for i := 0; i < n; i++ {
			row[0] = store.ID(1 + i/fanout) // ascending keys, fanout dups
			row[payload] = store.ID(1 + i)
			row[3-payload] = store.None
			b.Append(row)
		}
		if ordered {
			b.Order = []int{0, payload}
		}
		return b
	}
	return mk(1), mk(2)
}
