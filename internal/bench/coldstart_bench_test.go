package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"sparqluo/internal/rdf"
	"sparqluo/internal/snapshot"
	"sparqluo/internal/store"
)

// Cold-start benchmarks: the two ways a server replica can reach a
// queryable LUBM-13 store from bytes on disk. ParseFreeze is the boot
// path the snapshot subsystem exists to avoid — decode N-Triples text,
// dictionary-encode, sort and index; SnapshotOpen maps the image and
// validates checksums, with no per-triple work. The ratio between the
// two is the headline number of the subsystem (acceptance bar: ≥ 5×).

// coldStartNT returns the LUBM-13 dataset as serialized N-Triples.
func coldStartNT(b *testing.B) []byte {
	b.Helper()
	var buf bytes.Buffer
	enc := rdf.NewEncoder(&buf)
	for _, t := range benchTriples(b) {
		if err := enc.Encode(t); err != nil {
			b.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// coldStartImage writes the LUBM-13 snapshot image to a temp file and
// returns its path.
func coldStartImage(b *testing.B) string {
	b.Helper()
	path := filepath.Join(b.TempDir(), "lubm13.img")
	if err := snapshot.WriteFile(path, frozenStore(b)); err != nil {
		b.Fatal(err)
	}
	return path
}

// BenchmarkColdStartParseFreeze measures parse+load+freeze from
// N-Triples bytes already in memory (no disk reads, to its advantage).
func BenchmarkColdStartParseFreeze(b *testing.B) {
	nt := coldStartNT(b)
	b.SetBytes(int64(len(nt)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := store.New()
		if err := st.LoadNTriples(bytes.NewReader(nt)); err != nil {
			b.Fatal(err)
		}
		st.Freeze()
		if st.NumTriples() == 0 {
			b.Fatal("empty store")
		}
	}
}

// BenchmarkColdStartSnapshotOpen measures open+mmap+validate of the
// snapshot image, including the OS work of mapping the file.
func BenchmarkColdStartSnapshotOpen(b *testing.B) {
	path := coldStartImage(b)
	fi, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(fi.Size())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, m, err := snapshot.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		if st.NumTriples() == 0 {
			b.Fatal("empty store")
		}
		if err := m.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
