package bench

import (
	"strings"
	"testing"

	"sparqluo/internal/core"
	"sparqluo/internal/exec"
)

// TestTable2Printer smoke-tests the dataset statistics printer.
func TestTable2Printer(t *testing.T) {
	var sb strings.Builder
	Table2(&sb)
	out := sb.String()
	for _, want := range []string{"LUBM", "DBpedia", "triples", "predicates", "Store memory", "spo="} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 output missing %q:\n%s", want, out)
		}
	}
}

// TestQueryStatsPrinter checks Tables 3/4 emit a row per query.
func TestQueryStatsPrinter(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale datasets")
	}
	var sb strings.Builder
	if err := QueryStats(&sb, "LUBM"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, q := range append(append([]Query{}, LUBMGroup1...), LUBMGroup2...) {
		if !strings.Contains(out, q.ID) {
			t.Errorf("missing row for %s", q.ID)
		}
	}
}

// TestRunOneProducesMeasurement sanity-checks the measurement runner.
func TestRunOneProducesMeasurement(t *testing.T) {
	st := LUBMStore(3)
	m, err := RunOne(st, LUBMGroup1[1], exec.WCOEngine{}, core.Full)
	if err != nil {
		t.Fatal(err)
	}
	if m.Query != "q1.2" || m.Strategy != "full" || m.Engine != "wco" {
		t.Errorf("measurement metadata: %+v", m)
	}
	if m.ExecTime <= 0 {
		t.Error("ExecTime should be positive")
	}
	if m.JoinSpace <= 0 {
		t.Error("JoinSpace should be positive")
	}
}

// TestRunStrategiesCoversAll checks all four strategies are measured.
func TestRunStrategiesCoversAll(t *testing.T) {
	st := LUBMStore(3)
	ms, err := RunStrategies(st, LUBMGroup1[1], exec.BinaryJoinEngine{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("got %d measurements, want 4", len(ms))
	}
	want := []string{"base", "TT", "CP", "full"}
	for i, m := range ms {
		if m.Strategy != want[i] {
			t.Errorf("measurement %d strategy = %s, want %s", i, m.Strategy, want[i])
		}
	}
}

// TestRunLBRMatchesFullResults: the harness's two runners agree on result
// counts (the substance behind Figure 13's fairness).
func TestRunLBRMatchesFullResults(t *testing.T) {
	st := LUBMStore(3)
	for _, q := range LUBMGroup2[:3] {
		ml, err := RunLBR(st, q)
		if err != nil {
			t.Fatal(err)
		}
		mf, err := RunOne(st, q, exec.WCOEngine{}, core.Full)
		if err != nil {
			t.Fatal(err)
		}
		if ml.Results != mf.Results {
			t.Errorf("%s: LBR %d results, full %d", q.ID, ml.Results, mf.Results)
		}
	}
}
