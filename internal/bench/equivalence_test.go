package bench

import (
	"testing"

	"sparqluo/internal/algebra"
	"sparqluo/internal/core"
	"sparqluo/internal/exec"
	"sparqluo/internal/lbr"
	"sparqluo/internal/sparql"
	"sparqluo/internal/store"
)

// smallStores returns reduced-scale datasets so the full cross-product of
// strategies×engines stays fast in -short runs.
func smallStores(t testing.TB) map[string]*store.Store {
	t.Helper()
	return map[string]*store.Store{
		"LUBM":    LUBMStore(13),
		"DBpedia": DBpediaStore(1500),
	}
}

// TestStrategyEquivalence is the central correctness experiment: on every
// benchmark query, base, TT, CP and full must produce identical result
// bags under both engines (Theorems 1–2 and the soundness of candidate
// pruning), and the projected row multisets must agree across engines.
func TestStrategyEquivalence(t *testing.T) {
	stores := smallStores(t)
	for _, q := range AllQueries() {
		q := q
		t.Run(q.Dataset+"/"+q.ID, func(t *testing.T) {
			st := stores[q.Dataset]
			parsed, err := sparql.Parse(q.Text)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			var ref *algebra.Bag
			var refName string
			for _, engine := range Engines {
				for _, strat := range core.Strategies {
					res, err := core.Run(parsed, st, engine, strat)
					if err != nil {
						t.Fatalf("%s/%s: %v", engine.Name(), strat, err)
					}
					if ref == nil {
						ref, refName = res.Bag, engine.Name()+"/"+strat.String()
						continue
					}
					if !algebra.MultisetEqual(ref, res.Bag) {
						t.Errorf("%s/%s: %d rows, differs from %s: %d rows",
							engine.Name(), strat, res.Bag.Len(), refName, ref.Len())
					}
				}
			}
			if ref != nil && ref.Len() == 0 {
				t.Logf("note: %s/%s has empty result at this scale", q.Dataset, q.ID)
			}
		})
	}
}

// TestLBREquivalence checks that the LBR baseline computes the same bags
// as the BE-tree approaches on the comparison set q2.1–q2.6.
func TestLBREquivalence(t *testing.T) {
	stores := smallStores(t)
	for _, dataset := range []string{"LUBM", "DBpedia"} {
		st := stores[dataset]
		for _, q := range Group2(dataset) {
			q := q
			t.Run(dataset+"/"+q.ID, func(t *testing.T) {
				parsed, err := sparql.Parse(q.Text)
				if err != nil {
					t.Fatalf("parse: %v", err)
				}
				full, err := core.Run(parsed, st, exec.WCOEngine{}, core.Full)
				if err != nil {
					t.Fatalf("full: %v", err)
				}
				lres, err := lbr.Run(parsed, st)
				if err != nil {
					t.Fatalf("lbr: %v", err)
				}
				if full.Bag.Len() != lres.Bag.Len() {
					t.Fatalf("row count: full=%d lbr=%d", full.Bag.Len(), lres.Bag.Len())
				}
				// Variable tables may order variables differently;
				// compare via name-keyed canonical rows.
				if !sameSolutions(full.Bag, full.Vars, lres.Bag, lres.Vars) {
					t.Errorf("solution multisets differ (both %d rows)", full.Bag.Len())
				}
			})
		}
	}
}

// sameSolutions compares two bags whose rows may use different variable
// orderings, by re-keying each row on sorted variable names.
func sameSolutions(a *algebra.Bag, av *algebra.VarSet, b *algebra.Bag, bv *algebra.VarSet) bool {
	if a.Len() != b.Len() {
		return false
	}
	counts := map[string]int{}
	for _, r := range a.All() {
		counts[nameKey(r, av)]++
	}
	for _, r := range b.All() {
		counts[nameKey(r, bv)]--
	}
	for _, c := range counts {
		if c != 0 {
			return false
		}
	}
	return true
}

func nameKey(r algebra.Row, vars *algebra.VarSet) string {
	// Variable names sorted lexicographically give a canonical order.
	names := append([]string(nil), vars.Names()...)
	// Insertion sort: tiny slices.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	key := make([]byte, 0, 8*len(names))
	for _, n := range names {
		idx, _ := vars.Lookup(n)
		id := r[idx]
		key = append(key, n...)
		key = append(key, '=', byte(id), byte(id>>8), byte(id>>16), byte(id>>24), ';')
	}
	return string(key)
}

// TestQueriesProduceResults guards against silent emptiness: the Group 1
// queries must return non-empty results at the default scales (they are
// the substance of Figures 10–12).
func TestQueriesProduceResults(t *testing.T) {
	if testing.Short() {
		t.Skip("default-scale stores")
	}
	for _, dataset := range []string{"LUBM", "DBpedia"} {
		st := StoreFor(dataset)
		for _, q := range Group1(dataset) {
			m, err := RunOne(st, q, exec.WCOEngine{}, core.Full)
			if err != nil {
				t.Fatalf("%s/%s: %v", dataset, q.ID, err)
			}
			if m.Results == 0 {
				t.Errorf("%s/%s: empty result set", dataset, q.ID)
			}
		}
	}
}
