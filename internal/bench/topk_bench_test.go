package bench

import (
	"context"
	"testing"

	"sparqluo/internal/algebra"
	"sparqluo/internal/benchbags"
	"sparqluo/internal/core"
	"sparqluo/internal/exec"
	"sparqluo/internal/sparql"
)

// topkJoinQuery is the LIMIT push-down showcase: a 2-pattern BGP whose
// pb-scans both lead with the shared variable ?y, so the binary engine
// answers a capped execution with a streaming merge join that stops
// after 20 output rows instead of materializing both scans.
const topkJoinQuery = `PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT * WHERE { ?x ub:worksFor ?y . ?z ub:memberOf ?y }`

// runTopK executes topkJoinQuery on the cached LUBM store with the
// binary engine and the given window, returning the result.
func runTopK(tb testing.TB, opts core.ExecOptions) *core.Result {
	tb.Helper()
	st := LUBMStore(DefaultLUBMUniversities)
	parsed, err := sparql.Parse(topkJoinQuery)
	if err != nil {
		tb.Fatal(err)
	}
	plan, err := core.BuildPlan(parsed, st)
	if err != nil {
		tb.Fatal(err)
	}
	res, err := core.ExecPlan(context.Background(), plan, exec.BinaryJoinEngine{}, core.Base, opts)
	if err != nil {
		tb.Fatal(err)
	}
	return res
}

// TestLimitPushdownRowsPulled pins the point of the top-k machinery:
// LIMIT 20 on the merge-join query must draw at least 10x fewer operand
// rows than running the same plan to completion, and the rows it does
// return must be the exact prefix of the full result.
func TestLimitPushdownRowsPulled(t *testing.T) {
	full := runTopK(t, core.ExecOptions{Parallelism: 1})
	capped := runTopK(t, core.ExecOptions{Parallelism: 1, Limit: 20, LimitSet: true})
	if capped.Bag.Len() != 20 {
		t.Fatalf("capped run returned %d rows, want 20", capped.Bag.Len())
	}
	for i := 0; i < 20; i++ {
		want, got := full.Bag.Row(i), capped.Bag.Row(i)
		for c := range want {
			if want[c] != got[c] {
				t.Fatalf("row %d differs: %v vs %v", i, got, want)
			}
		}
	}
	if full.Stats.RowsPulled < 10*capped.Stats.RowsPulled {
		t.Errorf("rows pulled: capped %d vs full %d — want at least 10x reduction",
			capped.Stats.RowsPulled, full.Stats.RowsPulled)
	}
	t.Logf("rows pulled: full=%d capped=%d (%.0fx)", full.Stats.RowsPulled,
		capped.Stats.RowsPulled, float64(full.Stats.RowsPulled)/float64(capped.Stats.RowsPulled))
}

// BenchmarkTopKQueryFull and BenchmarkTopKQueryLimit20 bracket the
// query-level win: same plan, same engine, with and without the window.
func BenchmarkTopKQueryFull(b *testing.B) {
	runTopK(b, core.ExecOptions{Parallelism: 1}) // warm the dataset cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runTopK(b, core.ExecOptions{Parallelism: 1})
	}
}

func BenchmarkTopKQueryLimit20(b *testing.B) {
	runTopK(b, core.ExecOptions{Parallelism: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runTopK(b, core.ExecOptions{Parallelism: 1, Limit: 20, LimitSet: true})
	}
}

// BenchmarkTopKSortFull vs BenchmarkTopKHeap20: the operator-level pair —
// a full stable sort of n rows against the bounded max-heap keeping 20.
func BenchmarkTopKSortFull(b *testing.B) {
	in := benchbags.SortInput(100000)
	keys := []algebra.SortKey{{Col: 0}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algebra.SortByKeys(in, keys)
	}
}

func BenchmarkTopKHeap20(b *testing.B) {
	in := benchbags.SortInput(100000)
	keys := []algebra.SortKey{{Col: 0}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algebra.TopK(in, keys, 20)
	}
}

// BenchmarkTopKMergeJoin20: early termination inside the streaming
// merge join — the capped join touches a prefix of both operands.
func BenchmarkTopKMergeJoin20(b *testing.B) {
	x, y := benchbags.JoinPair(10000, 4, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algebra.JoinWith(x, y, algebra.JoinOpts{Max: 20})
	}
}
