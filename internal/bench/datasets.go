// Package bench is the experiment harness: it owns the benchmark query
// catalog (Appendix A of the paper, adapted to the synthetic generators'
// scale), builds and caches the datasets, runs the four strategies and
// the LBR baseline, and prints every table and figure of §7.
package bench

import (
	"sync"

	"sparqluo/internal/dbpedia"
	"sparqluo/internal/lubm"
	"sparqluo/internal/store"
)

// Default experiment scales (laptop-sized stand-ins for the paper's
// 0.5–2B-triple datasets; see DESIGN.md for the substitution rationale).
const (
	// DefaultLUBMUniversities is the LUBM scale factor used by Tables
	// 3/4 and Figures 10/11/13. 13 universities guarantee that
	// University12 (referenced by q2.5/q2.6) exists.
	DefaultLUBMUniversities = 13
	// DefaultDBpediaEntities is the article count of the DBpedia-like
	// dataset.
	DefaultDBpediaEntities = 12000
)

var (
	cacheMu   sync.Mutex
	lubmCache = map[int]*store.Store{}
	dbpCache  = map[int]*store.Store{}
)

// LUBMStore returns a frozen store over a generated LUBM dataset with the
// given number of universities, cached per scale.
func LUBMStore(universities int) *store.Store {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if st, ok := lubmCache[universities]; ok {
		return st
	}
	st := store.New()
	st.AddAll(lubm.Generate(lubm.DefaultConfig(universities)))
	st.Freeze()
	lubmCache[universities] = st
	return st
}

// DBpediaStore returns a frozen store over a generated DBpedia-like
// dataset with the given number of entities, cached per scale.
func DBpediaStore(entities int) *store.Store {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if st, ok := dbpCache[entities]; ok {
		return st
	}
	st := store.New()
	st.AddAll(dbpedia.Generate(dbpedia.DefaultConfig(entities)))
	st.Freeze()
	dbpCache[entities] = st
	return st
}
