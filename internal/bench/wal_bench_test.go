package bench

import (
	"testing"

	"sparqluo/internal/overlay"
	"sparqluo/internal/rdf"
	"sparqluo/internal/wal"
)

// walOverlay builds an empty live overlay journaled into a fresh WAL
// under the given policy, production wiring end to end.
func walOverlay(b *testing.B, policy wal.SyncPolicy) *overlay.LiveStore {
	b.Helper()
	log, err := wal.Open(b.TempDir(), wal.Options{Sync: policy})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { log.Close() })
	ls := overlay.New(nil, overlay.Options{})
	ls.SetJournal(benchJournal{log})
	return ls
}

func liveWALInsert(b *testing.B, policy wal.SyncPolicy) {
	ls := walOverlay(b, policy)
	batch := make([]rdf.Triple, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			batch[j] = synthTriple(i*64 + j)
		}
		if err := ls.Insert(batch...); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*64)/b.Elapsed().Seconds(), "triples/s")
}

// BenchmarkLiveWALInsertSyncAlways is the durable write path: every
// 64-triple batch is framed, appended and group-commit fsynced before
// the ack. Compare with BenchmarkLiveInsertBatch64 (no journal) for the
// full durability tax, and with the never variant for the fsync share
// of it.
func BenchmarkLiveWALInsertSyncAlways(b *testing.B) { liveWALInsert(b, wal.SyncAlways) }

// BenchmarkLiveWALInsertSyncInterval acks after the append; a
// background flusher fsyncs every 100ms.
func BenchmarkLiveWALInsertSyncInterval(b *testing.B) { liveWALInsert(b, wal.SyncInterval) }

// BenchmarkLiveWALInsertSyncNever isolates the journal's framing and
// write-syscall overhead with no fsync anywhere.
func BenchmarkLiveWALInsertSyncNever(b *testing.B) { liveWALInsert(b, wal.SyncNever) }

// BenchmarkLiveWALReplay measures crash-recovery speed: how fast a log
// of 64-triple insert batches streams back into a fresh overlay.
// b.N counts replayed triples.
func BenchmarkLiveWALReplay(b *testing.B) {
	dir := b.TempDir()
	log, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]rdf.Triple, 64)
	written := 0
	for written < b.N {
		for j := range batch {
			batch[j] = synthTriple(written + j)
		}
		if _, err := log.Append(wal.Insert, batch); err != nil {
			b.Fatal(err)
		}
		written += len(batch)
	}
	if err := log.Close(); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	rlog, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer rlog.Close()
	ls := overlay.New(nil, overlay.Options{})
	n := 0
	if err := rlog.Replay(func(r wal.Record) error {
		n += len(r.Triples)
		return ls.Insert(r.Triples...)
	}); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if n < b.N {
		b.Fatalf("replayed %d triples, wrote %d", n, written)
	}
}
