package bench

import (
	"fmt"
	"slices"
	"time"

	"sparqluo/internal/lubm"
	"sparqluo/internal/store"
)

// FoldResult is one base:delta ratio of the compaction-fold comparison:
// folding the same delta into the same frozen base by full rebuild
// (tombstone hash filter + append + FromTriples sort of everything)
// versus by linear merge (store.MergeFold). Both paths produce
// byte-identical stores — cross-checked per run — so the durations are
// directly comparable.
type FoldResult struct {
	BaseTriples int
	Adds        int
	Dels        int
	Ratio       int // base triples per delta op, rounded

	Resort  time.Duration // filter + append + full FromTriples re-sort
	Merge   time.Duration // store.MergeFold linear fold
	Speedup float64       // Resort / Merge
}

// RunCompactionFold measures the compaction fold at several base:delta
// ratios over one frozen LUBM base of baseUniversities. Per ratio the
// delta is half inserts (held-out LUBM triples, pre-encoded so
// dictionary growth happens before the timed region — exactly as in
// the live overlay, where Insert encodes at acknowledge time) and half
// tombstones of evenly spaced base triples. Each path is timed reps
// times and the minimum kept; outputs are verified byte-identical on
// every rep, so a fold that diverged from the rebuild can never report
// a time.
func RunCompactionFold(baseUniversities int, ratios []int, reps int) ([]FoldResult, error) {
	all := lubm.Generate(lubm.DefaultConfig(baseUniversities))
	cut := len(all) * 4 / 5
	base := store.New()
	if err := base.AddAll(all[:cut]); err != nil {
		return nil, err
	}
	if err := base.Freeze(); err != nil {
		return nil, err
	}
	d := base.Dict()
	heldOut := make([]store.EncTriple, 0, len(all)-cut)
	for _, t := range all[cut:] {
		heldOut = append(heldOut, store.EncTriple{S: d.Encode(t.S), P: d.Encode(t.P), O: d.Encode(t.O)})
	}
	baseTris := base.Triples()

	var results []FoldResult
	for _, ratio := range ratios {
		delta := len(baseTris) / ratio
		if delta < 2 {
			delta = 2
		}
		nAdds := min(delta/2, len(heldOut))
		nDels := delta - nAdds
		adds := heldOut[:nAdds]
		dels := make([]store.EncTriple, 0, nDels)
		for i := 0; i < nDels; i++ {
			dels = append(dels, baseTris[i*len(baseTris)/nDels])
		}

		res := FoldResult{
			BaseTriples: len(baseTris),
			Adds:        len(adds),
			Dels:        len(dels),
			Ratio:       ratio,
		}
		for rep := 0; rep < reps; rep++ {
			// Resort path: the pre-merge-fold compactor — hash-set
			// tombstone filter over a copy of the base, append the adds,
			// full sort+compact+permute rebuild of the flattened slice.
			t0 := time.Now()
			dead := make(map[store.EncTriple]struct{}, len(dels))
			for _, t := range dels {
				dead[t] = struct{}{}
			}
			merged := make([]store.EncTriple, 0, len(baseTris)+len(adds))
			for _, t := range baseTris {
				if _, ok := dead[t]; !ok {
					merged = append(merged, t)
				}
			}
			merged = append(merged, adds...)
			rebuilt, err := store.FromTriples(d, merged, true)
			if err != nil {
				return nil, err
			}
			resort := time.Since(t0)

			t0 = time.Now()
			folded, err := store.MergeFold(base, adds, dels, true)
			if err != nil {
				return nil, err
			}
			merge := time.Since(t0)

			if err := foldIdentical(folded, rebuilt); err != nil {
				return nil, fmt.Errorf("ratio %d rep %d: %w", ratio, rep, err)
			}
			if rep == 0 || resort < res.Resort {
				res.Resort = resort
			}
			if rep == 0 || merge < res.Merge {
				res.Merge = merge
			}
		}
		if res.Merge > 0 {
			res.Speedup = float64(res.Resort) / float64(res.Merge)
		}
		results = append(results, res)
	}
	return results, nil
}

// foldIdentical asserts two stores expose byte-identical columnar
// layouts — all three permutations, row pointers, trailing columns and
// the POS level-2 runs.
func foldIdentical(a, b *store.Store) error {
	la, lb := a.Layout(), b.Layout()
	perms := []struct {
		name string
		a, b store.PermLayout
	}{{"spo", la.SPO, lb.SPO}, {"pos", la.POS, lb.POS}, {"osp", la.OSP, lb.OSP}}
	for _, p := range perms {
		if !slices.Equal(p.a.Tri, p.b.Tri) || !slices.Equal(p.a.Off, p.b.Off) || !slices.Equal(p.a.Col, p.b.Col) {
			return fmt.Errorf("merge fold %s permutation diverges from rebuild", p.name)
		}
	}
	if !slices.Equal(la.PosObjKeys, lb.PosObjKeys) ||
		!slices.Equal(la.PosObjOff, lb.PosObjOff) ||
		!slices.Equal(la.PosObjIdx, lb.PosObjIdx) {
		return fmt.Errorf("merge fold POS level-2 runs diverge from rebuild")
	}
	return nil
}
