package bench

import (
	"math/rand"
	"testing"

	"sparqluo/internal/lubm"
	"sparqluo/internal/rdf"
	"sparqluo/internal/store"
)

// lubmTriples generates the default LUBM benchmark dataset once per
// benchmark binary.
var lubmTriples []rdf.Triple

func benchTriples(b *testing.B) []rdf.Triple {
	b.Helper()
	if lubmTriples == nil {
		lubmTriples = lubm.Generate(lubm.DefaultConfig(DefaultLUBMUniversities))
	}
	return lubmTriples
}

func frozenStore(b *testing.B) *store.Store {
	b.Helper()
	return LUBMStore(DefaultLUBMUniversities)
}

// BenchmarkLoadFreeze measures bulk load plus Freeze on the LUBM default
// dataset: the per-Add duplicate scan of the map-based layout made this
// path quadratic in the worst case; the columnar layout defers
// deduplication to one sort+compact pass.
func BenchmarkLoadFreeze(b *testing.B) {
	triples := benchTriples(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := store.New()
		st.AddAll(triples)
		st.Freeze()
		if i == 0 {
			b.StopTimer()
			b.Logf("store: %s", st.MemStats())
			b.StartTimer()
		}
	}
	b.ReportMetric(float64(len(triples)), "triples/op")
}

// benchProbes returns pseudo-random existing triples to drive point
// lookups; the seed is fixed so runs are comparable.
func benchProbes(b *testing.B, st *store.Store, n int) []store.EncTriple {
	b.Helper()
	all := st.Triples()
	rng := rand.New(rand.NewSource(42))
	out := make([]store.EncTriple, n)
	for i := range out {
		out[i] = all[rng.Intn(len(all))]
	}
	return out
}

// BenchmarkStoreContains measures the ground-triple membership probe
// (binary search on the SPO permutation).
func BenchmarkStoreContains(b *testing.B) {
	st := frozenStore(b)
	probes := benchProbes(b, st, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := probes[i&1023]
		if !st.Contains(t.S, t.P, t.O) {
			b.Fatal("stored triple not found")
		}
	}
}

// BenchmarkStoreObjectsSP measures the (s p ?) point lookup.
func BenchmarkStoreObjectsSP(b *testing.B) {
	st := frozenStore(b)
	probes := benchProbes(b, st, 1024)
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		t := probes[i&1023]
		n += len(st.ObjectsSP(t.S, t.P))
	}
	if n == 0 {
		b.Fatal("no objects found")
	}
}

// BenchmarkStoreSubjectsPO measures the (? p o) point lookup.
func BenchmarkStoreSubjectsPO(b *testing.B) {
	st := frozenStore(b)
	probes := benchProbes(b, st, 1024)
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		t := probes[i&1023]
		n += len(st.SubjectsPO(t.P, t.O))
	}
	if n == 0 {
		b.Fatal("no subjects found")
	}
}

// benchSink keeps benchmark loop results observable so the compiler
// cannot eliminate the scans being measured.
var benchSink int

// BenchmarkStorePredicateScan measures the full (? p ?) range scan over
// the POS permutation, the bulk access path of both engines.
func BenchmarkStorePredicateScan(b *testing.B) {
	st := frozenStore(b)
	probes := benchProbes(b, st, 64)
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		for _, t := range st.PredicateTriples(probes[i&63].P) {
			n += int(t.S & 1)
		}
	}
	benchSink = n
}
