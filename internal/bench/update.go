package bench

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sparqluo/internal/core"
	"sparqluo/internal/lubm"
	"sparqluo/internal/overlay"
	"sparqluo/internal/sparql"
	"sparqluo/internal/store"
)

// UpdateResult is one run of the live-ingest workload: a writer streams
// insert/delete batches into a live overlay while readers execute a
// benchmark query against it, then a compaction folds the accumulated
// memtable. The read latencies answer "what does a query pay while the
// store mutates under it"; the swap pause answers "what do readers feel
// when the compacted base replaces the old one".
type UpdateResult struct {
	Dataset     string
	BaseTriples int
	Inserted    int // triples streamed through Insert
	Deleted     int // tombstones streamed through Delete
	Batch       int // triples per Insert call

	IngestSeconds float64
	IngestRate    float64 // acknowledged writes per second, readers running

	Reads   int // queries completed during ingest
	ReadP50 time.Duration
	ReadP99 time.Duration
	ReadMax time.Duration

	CompactTime time.Duration // synchronous fold of the full memtable
	// SwapPause is the longest stall a continuously querying reader
	// observed while the compaction ran (max gap between consecutive
	// query completions minus the reader's own median query time). It
	// bounds the reader-visible cost of the RCU base swap from above:
	// the swap itself is a pointer store, so most of any pause is
	// scheduler noise and cache refill, which is exactly what a serving
	// replica would feel.
	SwapPause time.Duration
}

// RunUpdateWorkload streams extra LUBM triples into a live overlay over
// a frozen base of baseUniversities, with one reader goroutine running
// a Group1 query in a closed loop throughout (insert pass, tombstone
// pass, re-insert pass). The final compaction is measured separately
// with the reader still running.
func RunUpdateWorkload(baseUniversities, extraUniversities, batch int) (UpdateResult, error) {
	all := lubm.Generate(lubm.DefaultConfig(baseUniversities + extraUniversities))
	base := store.New()
	// Split by generation order: the first baseUniversities' worth of
	// triples form the frozen base, the rest are the ingest stream.
	cut := len(all) * baseUniversities / (baseUniversities + extraUniversities)
	if err := base.AddAll(all[:cut]); err != nil {
		return UpdateResult{}, err
	}
	stream := all[cut:]
	ls := overlay.New(base, overlay.Options{})

	q := Group1("LUBM")[0]
	parsed, err := sparql.Parse(q.Text)
	if err != nil {
		return UpdateResult{}, err
	}
	engine := Engines[0]

	res := UpdateResult{
		Dataset:     "LUBM",
		BaseTriples: base.NumTriples(),
		Batch:       batch,
	}

	var (
		stopReader atomic.Bool
		latMu      sync.Mutex
		lats       []time.Duration
		lastDone   atomic.Int64 // monotonic ns of the last completed query
		maxGapNs   atomic.Int64 // updated only while gapWatch is set
		gapWatch   atomic.Bool
	)
	readerErr := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		start := time.Now()
		lastDone.Store(0)
		for !stopReader.Load() {
			t0 := time.Now()
			if _, err := core.Run(parsed, ls, engine, core.Full); err != nil {
				select {
				case readerErr <- err:
				default:
				}
				return
			}
			now := time.Since(start)
			if gapWatch.Load() {
				if prev := lastDone.Load(); prev > 0 {
					if gap := int64(now) - prev; gap > maxGapNs.Load() {
						maxGapNs.Store(gap)
					}
				}
			}
			lastDone.Store(int64(now))
			latMu.Lock()
			lats = append(lats, time.Since(t0))
			latMu.Unlock()
		}
	}()

	// Ingest: three passes over the extra universities — insert all,
	// tombstone all, re-insert all — in batches. Pass 2 makes tombstones
	// a first-class part of the measured merge path, pass 3 exercises
	// delete-then-re-add resolution, and the triple-length window gives
	// the reader enough completions for stable percentiles.
	ingestStart := time.Now()
	var inserted, deleted int
	for pass := 0; pass < 3; pass++ {
		for off := 0; off < len(stream); off += batch {
			b := stream[off:min(off+batch, len(stream))]
			if pass == 1 {
				ls.Delete(b...)
				deleted += len(b)
			} else {
				ls.Insert(b...)
				inserted += len(b)
			}
		}
	}
	ingestDur := time.Since(ingestStart)

	// Compaction, measured with the reader still hammering the store.
	gapWatch.Store(true)
	compactStart := time.Now()
	if _, err := ls.Compact(); err != nil {
		return UpdateResult{}, err
	}
	res.CompactTime = time.Since(compactStart)
	gapWatch.Store(false)

	stopReader.Store(true)
	wg.Wait()
	select {
	case err := <-readerErr:
		return UpdateResult{}, err
	default:
	}

	res.Inserted = inserted
	res.Deleted = deleted
	res.IngestSeconds = ingestDur.Seconds()
	if s := ingestDur.Seconds(); s > 0 {
		res.IngestRate = float64(inserted+deleted) / s
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	res.Reads = len(lats)
	if n := len(lats); n > 0 {
		res.ReadP50 = lats[n/2]
		res.ReadP99 = lats[n*99/100]
		res.ReadMax = lats[n-1]
		if pause := time.Duration(maxGapNs.Load()) - res.ReadP50; pause > 0 {
			res.SwapPause = pause
		}
	}
	return res, nil
}
