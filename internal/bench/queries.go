package bench

// The benchmark query catalog: the 24 queries of Appendix A (q1.1–q1.6
// and q2.1–q2.6 on LUBM and DBpedia). Query structure — operators,
// nesting, variable topology — is reproduced exactly; the only adaptation
// is that entity-constant indexes (e.g. UndergraduateStudent91) are
// remapped to constants that exist at the synthetic generators' scale,
// preserving each constant's selectivity role. EXPERIMENTS.md records the
// substitutions.

// Query is one benchmark query.
type Query struct {
	ID      string // e.g. "q1.3"
	Dataset string // "LUBM" or "DBpedia"
	Type    string // "U", "O", or "UO" — the paper's Type column
	Text    string // full SPARQL text
}

const lubmPrefixes = `
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
`

const dbpPrefixes = `
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX purl: <http://purl.org/dc/terms/>
PREFIX skos: <http://www.w3.org/2004/02/skos/core#>
PREFIX nsprov: <http://www.w3.org/ns/prov#>
PREFIX owl: <http://www.w3.org/2002/07/owl#>
PREFIX dbo: <http://dbpedia.org/ontology/>
PREFIX dbr: <http://dbpedia.org/resource/>
PREFIX dbp: <http://dbpedia.org/property/>
PREFIX geo: <http://www.w3.org/2003/01/geo/wgs84_pos#>
PREFIX georss: <http://www.georss.org/georss/>
`

// LUBMGroup1 is q1.1–q1.6 on LUBM (§7.1).
var LUBMGroup1 = []Query{
	{"q1.1", "LUBM", "U", lubmPrefixes + `
SELECT * WHERE {
  { ?v2 ub:headOf ?v1 . } UNION { ?v2 ub:worksFor ?v1 . }
  ?v2 ub:undergraduateDegreeFrom ?v3 .
  ?v4 ub:doctoralDegreeFrom ?v3 .
  ?v5 ub:publicationAuthor ?v2 .
  { ?v6 ub:headOf ?v1 . } UNION { ?v6 ub:worksFor ?v1 . }
  { ?v2 ub:headOf ?v7 . } UNION { ?v2 ub:worksFor ?v7 . }
  <http://www.Department0.University0.edu/UndergraduateStudent31> ub:memberOf ?v1 .
  ?v7 ub:name ?v8 . }`},
	{"q1.2", "LUBM", "O", lubmPrefixes + `
SELECT * WHERE {
  ?v3 ub:emailAddress "UndergraduateStudent31@Department0.University0.edu" .
  ?v2 ub:emailAddress ?v1 .
  OPTIONAL { ?v2 ub:teacherOf ?v4 . ?v3 ub:takesCourse ?v4 . } }`},
	{"q1.3", "LUBM", "O", lubmPrefixes + `
SELECT * WHERE {
  <http://www.Department1.University0.edu/UndergraduateStudent3> ub:takesCourse ?v1 .
  OPTIONAL { ?v2 ub:teachingAssistantOf ?v1 .
    OPTIONAL { ?v2 ub:memberOf ?v3 .
      ?v4 ub:subOrganizationOf ?v3 .
      ?v4 ub:subOrganizationOf ?v5 .
      ?v4 rdf:type ?v6 .
      OPTIONAL { ?v5 ub:subOrganizationOf ?v7 . } } } }`},
	{"q1.4", "LUBM", "O", lubmPrefixes + `
SELECT * WHERE {
  ?v1 ub:emailAddress "UndergraduateStudent9@Department12.University0.edu" .
  OPTIONAL { ?v1 ub:memberOf ?v2 . ?v2 ub:name ?v3 .
    OPTIONAL { ?v5 ub:publicationAuthor ?v4 . ?v4 ub:worksFor ?v2 .
      OPTIONAL { ?v6 ub:publicationAuthor ?v4 . } } } }`},
	{"q1.5", "LUBM", "UO", lubmPrefixes + `
SELECT * WHERE {
  { ?v2 rdf:type ?v3 . }
  UNION
  { ?v2 ub:name ?v4 . }
  <http://www.Department0.University0.edu/UndergraduateStudent26> ub:memberOf ?v1 .
  ?v2 ub:worksFor ?v1 .
  OPTIONAL { ?v5 ub:advisor ?v2 .
    OPTIONAL { ?v5 ub:teachingAssistantOf ?v6 . } }
  OPTIONAL { ?v7 ub:advisor ?v2 . } }`},
	{"q1.6", "LUBM", "UO", lubmPrefixes + `
SELECT * WHERE {
  ?v4 ub:headOf ?v1 .
  <http://www.Department1.University0.edu/UndergraduateStudent6> ub:memberOf ?v1 .
  ?v3 ub:subOrganizationOf ?v5 .
  { ?v2 ub:worksFor ?v1 . } UNION { ?v2 ub:headOf ?v1 . }
  { ?v2 ub:worksFor ?v3 . } UNION { ?v2 ub:headOf ?v3 . }
  OPTIONAL { ?v6 ub:publicationAuthor ?v2 . }
  OPTIONAL { { ?v7 ub:headOf ?v1 . } UNION { ?v7 ub:worksFor ?v1 . } } }`},
}

// LUBMGroup2 is q2.1–q2.6 on LUBM, the LBR comparison set (§7.2).
var LUBMGroup2 = []Query{
	{"q2.1", "LUBM", "O", lubmPrefixes + `
SELECT * WHERE {
  { ?st ub:teachingAssistantOf ?course .
    OPTIONAL { ?st ub:takesCourse ?course2 . ?pub1 ub:publicationAuthor ?st . } }
  { ?prof ub:teacherOf ?course . ?st ub:advisor ?prof .
    OPTIONAL { ?prof ub:researchInterest ?resint . ?pub2 ub:publicationAuthor ?prof . } } }`},
	{"q2.2", "LUBM", "O", lubmPrefixes + `
SELECT * WHERE {
  { ?pub rdf:type ub:Publication . ?pub ub:publicationAuthor ?st . ?pub ub:publicationAuthor ?prof .
    OPTIONAL { ?st ub:emailAddress ?ste . ?st ub:telephone ?sttel . } }
  { ?st ub:undergraduateDegreeFrom ?univ . ?dept ub:subOrganizationOf ?univ .
    OPTIONAL { ?head ub:headOf ?dept . ?others ub:worksFor ?dept . } }
  { ?st ub:memberOf ?dept . ?prof ub:worksFor ?dept .
    OPTIONAL { ?prof ub:doctoralDegreeFrom ?univ1 . ?prof ub:researchInterest ?resint1 . } } }`},
	{"q2.3", "LUBM", "O", lubmPrefixes + `
SELECT * WHERE {
  { ?pub ub:publicationAuthor ?st . ?pub ub:publicationAuthor ?prof .
    ?st rdf:type ub:GraduateStudent .
    OPTIONAL { ?st ub:undergraduateDegreeFrom ?univ1 . ?st ub:telephone ?sttel . } }
  { ?st ub:advisor ?prof .
    OPTIONAL { ?prof ub:doctoralDegreeFrom ?univ . ?prof ub:researchInterest ?resint . } }
  { ?st ub:memberOf ?dept . ?prof ub:worksFor ?dept . ?prof rdf:type ub:FullProfessor .
    OPTIONAL { ?head ub:headOf ?dept . ?others ub:worksFor ?dept . } } }`},
	{"q2.4", "LUBM", "O", lubmPrefixes + `
SELECT * WHERE {
  ?x ub:worksFor <http://www.Department0.University0.edu> .
  ?x rdf:type ub:FullProfessor .
  OPTIONAL { ?y ub:advisor ?x . ?x ub:teacherOf ?z . ?y ub:takesCourse ?z . } }`},
	{"q2.5", "LUBM", "O", lubmPrefixes + `
SELECT * WHERE {
  ?x ub:worksFor <http://www.Department0.University12.edu> .
  ?x rdf:type ub:FullProfessor .
  OPTIONAL { ?y ub:advisor ?x . ?x ub:teacherOf ?z . ?y ub:takesCourse ?z . } }`},
	{"q2.6", "LUBM", "O", lubmPrefixes + `
SELECT * WHERE {
  ?x ub:worksFor <http://www.Department0.University12.edu> .
  ?x rdf:type ub:FullProfessor .
  OPTIONAL { ?x ub:emailAddress ?y1 . ?x ub:telephone ?y2 . ?x ub:name ?y3 . } }`},
}

// DBpediaGroup1 is q1.1–q1.6 on DBpedia (§7.1).
var DBpediaGroup1 = []Query{
	{"q1.1", "DBpedia", "U", dbpPrefixes + `
SELECT * WHERE {
  { ?v3 rdfs:label ?v7 . } UNION { ?v3 foaf:name ?v7 . }
  { ?v1 purl:subject ?v3 . } UNION { ?v3 skos:subject ?v1 . }
  ?v3 rdfs:label ?v4 .
  ?v5 nsprov:wasDerivedFrom ?v2 .
  ?v1 owl:sameAs ?v6 .
  ?v1 dbo:wikiPageWikiLink dbr:Economic_system .
  ?v1 nsprov:wasDerivedFrom ?v2 . }`},
	{"q1.2", "DBpedia", "UO", dbpPrefixes + `
SELECT * WHERE {
  { ?v3 purl:subject ?v5 . OPTIONAL { ?v5 rdfs:label ?v6 . } }
  UNION
  { ?v5 skos:subject ?v3 . OPTIONAL { ?v5 foaf:name ?v6 . } }
  ?v1 dbo:wikiPageWikiLink dbr:Economic_system .
  ?v1 nsprov:wasDerivedFrom ?v2 .
  ?v3 dbo:wikiPageWikiLink ?v4 .
  ?v3 nsprov:wasDerivedFrom ?v2 . }`},
	{"q1.3", "DBpedia", "O", dbpPrefixes + `
SELECT * WHERE {
  dbr:Air_masses foaf:isPrimaryTopicOf ?v1 .
  ?v2 foaf:isPrimaryTopicOf ?v1 .
  OPTIONAL {
    ?v2 dbo:wikiPageRedirects ?v3 . ?v4 foaf:primaryTopic ?v2 .
    OPTIONAL {
      ?v5 dbo:wikiPageWikiLink ?v3 .
      OPTIONAL { ?v6 dbo:wikiPageRedirects ?v5 .
        OPTIONAL { ?v6 dbo:wikiPageWikiLink ?v7 . } } } } }`},
	{"q1.4", "DBpedia", "UO", dbpPrefixes + `
SELECT * WHERE {
  dbr:Functional_neuroimaging purl:subject ?v1 .
  OPTIONAL {
    ?v1 owl:sameAs ?v2 . ?v1 rdf:type ?v3 . ?v4 owl:sameAs ?v2 . ?v5 skos:related ?v4 .
    OPTIONAL { ?v6 skos:related ?v4 . }
    OPTIONAL {
      { ?v7 purl:subject ?v1 . } UNION { ?v1 skos:subject ?v7 . }
      OPTIONAL {
        { ?v7 purl:subject ?v8 . } UNION { ?v8 skos:subject ?v7 . } } } } }`},
	{"q1.5", "DBpedia", "UO", dbpPrefixes + `
SELECT * WHERE {
  { ?v2 purl:subject ?v3 . } UNION { ?v2 dbo:wikiPageWikiLink ?v4 . }
  ?v1 dbo:wikiPageWikiLink dbr:Abdul_Rahim_Wardak .
  ?v2 dbo:wikiPageWikiLink ?v1 .
  OPTIONAL { ?v5 owl:sameAs ?v2 .
    OPTIONAL { ?v5 dbo:wikiPageLength ?v6 . } }
  OPTIONAL { ?v2 skos:prefLabel ?v7 . } }`},
	{"q1.6", "DBpedia", "UO", dbpPrefixes + `
SELECT * WHERE {
  { ?v2 foaf:primaryTopic ?v1 . } UNION { ?v1 foaf:isPrimaryTopicOf ?v2 . }
  { ?v2 foaf:primaryTopic ?v3 . } UNION { ?v3 foaf:isPrimaryTopicOf ?v2 . }
  ?v1 dbo:wikiPageWikiLink dbr:Category:Cell_biology .
  ?v3 dbo:wikiPageWikiLink ?v1 .
  OPTIONAL {
    { ?v2 foaf:primaryTopic ?v4 . } UNION { ?v4 foaf:isPrimaryTopicOf ?v2 . } }
  OPTIONAL { ?v5 dbo:phylum ?v3 . ?v6 dbo:phylum ?v3 .
    OPTIONAL {
      { ?v7 foaf:primaryTopic ?v5 . } UNION { ?v5 foaf:isPrimaryTopicOf ?v7 . } } } }`},
}

// DBpediaGroup2 is q2.1–q2.6 on DBpedia, the LBR comparison set (§7.2).
var DBpediaGroup2 = []Query{
	{"q2.1", "DBpedia", "O", dbpPrefixes + `
SELECT * WHERE {
  { ?v6 a dbo:PopulatedPlace . ?v6 dbo:abstract ?v1 .
    ?v6 rdfs:label ?v2 . ?v6 geo:lat ?v3 . ?v6 geo:long ?v4 .
    OPTIONAL { ?v6 foaf:depiction ?v8 . } }
  OPTIONAL { ?v6 foaf:homepage ?v10 . }
  OPTIONAL { ?v6 dbo:populationTotal ?v12 . }
  OPTIONAL { ?v6 dbo:thumbnail ?v14 . } }`},
	{"q2.2", "DBpedia", "O", dbpPrefixes + `
SELECT * WHERE {
  ?v3 foaf:homepage ?v0 . ?v3 a dbo:SoccerPlayer . ?v3 dbp:position ?v6 .
  ?v3 dbp:clubs ?v8 . ?v8 dbo:capacity ?v1 . ?v3 dbo:birthPlace ?v5 .
  OPTIONAL { ?v3 dbo:number ?v9 . } }`},
	{"q2.3", "DBpedia", "O", dbpPrefixes + `
SELECT * WHERE {
  ?v5 dbo:thumbnail ?v4 . ?v5 rdf:type dbo:Person . ?v5 rdfs:label ?v .
  ?v5 foaf:homepage ?v8 .
  OPTIONAL { ?v5 foaf:homepage ?v10 . } }`},
	{"q2.4", "DBpedia", "O", dbpPrefixes + `
SELECT * WHERE {
  { ?v2 a dbo:Settlement . ?v2 rdfs:label ?v . ?v6 a dbo:Airport .
    ?v6 dbo:city ?v2 . ?v6 dbp:iata ?v5 .
    OPTIONAL { ?v6 foaf:homepage ?v7 . } }
  OPTIONAL { ?v6 dbp:nativename ?v8 . } }`},
	{"q2.5", "DBpedia", "O", dbpPrefixes + `
SELECT * WHERE {
  ?v4 skos:subject ?v . ?v4 foaf:name ?v6 .
  OPTIONAL { ?v4 rdfs:comment ?v8 . } }`},
	{"q2.6", "DBpedia", "O", dbpPrefixes + `
SELECT * WHERE {
  ?v0 rdfs:comment ?v1 . ?v0 foaf:page ?v .
  OPTIONAL { ?v0 skos:subject ?v6 . }
  OPTIONAL { ?v0 dbp:industry ?v5 . }
  OPTIONAL { ?v0 dbp:location ?v2 . }
  OPTIONAL { ?v0 dbp:locationCountry ?v3 . }
  OPTIONAL { ?v0 dbp:locationCity ?v9 . ?a dbp:manufacturer ?v0 . }
  OPTIONAL { ?v0 dbp:products ?v11 . ?b dbp:model ?v0 . }
  OPTIONAL { ?v0 georss:point ?v10 . }
  OPTIONAL { ?v0 rdf:type ?v7 . } }`},
}

// Group1 returns q1.1–q1.6 for the named dataset.
func Group1(dataset string) []Query {
	if dataset == "DBpedia" {
		return DBpediaGroup1
	}
	return LUBMGroup1
}

// Group2 returns q2.1–q2.6 for the named dataset.
func Group2(dataset string) []Query {
	if dataset == "DBpedia" {
		return DBpediaGroup2
	}
	return LUBMGroup2
}

// AllQueries returns the full 24-query catalog.
func AllQueries() []Query {
	var out []Query
	out = append(out, LUBMGroup1...)
	out = append(out, LUBMGroup2...)
	out = append(out, DBpediaGroup1...)
	out = append(out, DBpediaGroup2...)
	return out
}
