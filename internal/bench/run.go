package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"sparqluo/internal/core"
	"sparqluo/internal/exec"
	"sparqluo/internal/lbr"
	"sparqluo/internal/sparql"
	"sparqluo/internal/store"
)

// Engines are the two BGP execution engines the paper implements on
// (gStore-style WCO and Jena-style binary join).
var Engines = []exec.Engine{exec.WCOEngine{}, exec.BinaryJoinEngine{}}

// Measurement is one (query, engine, strategy) execution record.
type Measurement struct {
	Query     string
	Dataset   string
	Engine    string
	Strategy  string
	Results   int
	ExecTime  time.Duration // sequential evaluation (parallelism 1)
	Parallel  time.Duration // parallel evaluation (GOMAXPROCS pool)
	Prepared  time.Duration // amortized prepared execution: transform+evaluate on a pre-built plan
	Transform time.Duration
	JoinSpace float64
}

// Reps is the number of repetitions per measurement; the minimum time is
// reported, damping scheduler and cache noise.
var Reps = 3

// RunOne executes a query with one engine and strategy, repeating Reps
// times and keeping the fastest run. Each repetition measures the
// sequential evaluation (ExecTime), the parallel one over a GOMAXPROCS
// worker pool (Parallel), and the amortized prepared execution — the
// wall-clock of ExecPlan on a plan built once outside the loop, i.e.
// what a prepared-query workload pays per execution (Prepared) — so
// speedups are observed rather than assumed.
func RunOne(st store.Reader, q Query, engine exec.Engine, strat core.Strategy) (Measurement, error) {
	parsed, err := sparql.Parse(q.Text)
	if err != nil {
		return Measurement{}, fmt.Errorf("%s: %w", q.ID, err)
	}
	plan, err := core.BuildPlan(parsed, st)
	if err != nil {
		return Measurement{}, fmt.Errorf("%s: %w", q.ID, err)
	}
	// Warm the estimate memo exactly like the public Prepared path does,
	// so the Prepared column measures what a prepared-query workload
	// pays per call (clone+transform+evaluate, no re-sampling).
	plan.WarmEstimates(engine)
	var best Measurement
	for rep := 0; rep < Reps; rep++ {
		res, err := core.Run(parsed, st, engine, strat)
		if err != nil {
			return Measurement{}, fmt.Errorf("%s: %w", q.ID, err)
		}
		par, err := core.RunContext(context.Background(), parsed, st, engine, strat,
			core.ExecOptions{Parallelism: 0})
		if err != nil {
			return Measurement{}, fmt.Errorf("%s (parallel): %w", q.ID, err)
		}
		if par.Bag.Len() != res.Bag.Len() {
			return Measurement{}, fmt.Errorf("%s: parallel run returned %d results, sequential %d",
				q.ID, par.Bag.Len(), res.Bag.Len())
		}
		prepStart := time.Now()
		prep, err := core.ExecPlan(context.Background(), plan, engine, strat,
			core.ExecOptions{Parallelism: 1})
		prepTime := time.Since(prepStart)
		if err != nil {
			return Measurement{}, fmt.Errorf("%s (prepared): %w", q.ID, err)
		}
		if prep.Bag.Len() != res.Bag.Len() {
			return Measurement{}, fmt.Errorf("%s: prepared run returned %d results, one-shot %d",
				q.ID, prep.Bag.Len(), res.Bag.Len())
		}
		m := Measurement{
			Query:     q.ID,
			Dataset:   q.Dataset,
			Engine:    engine.Name(),
			Strategy:  strat.String(),
			Results:   res.Bag.Len(),
			ExecTime:  res.ExecTime,
			Parallel:  par.ExecTime,
			Prepared:  prepTime,
			Transform: res.TransformTime,
			JoinSpace: core.JoinSpace(res.Tree, res.Stats),
		}
		if rep == 0 {
			best = m
		} else {
			if m.ExecTime < best.ExecTime {
				best.ExecTime = m.ExecTime
				best.Transform = m.Transform
			}
			if m.Parallel < best.Parallel {
				best.Parallel = m.Parallel
			}
			if m.Prepared < best.Prepared {
				best.Prepared = m.Prepared
			}
		}
	}
	return best, nil
}

// RunStrategies executes a query under all four strategies with one engine.
func RunStrategies(st store.Reader, q Query, engine exec.Engine) ([]Measurement, error) {
	var out []Measurement
	for _, strat := range core.Strategies {
		m, err := RunOne(st, q, engine, strat)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// RunLBR executes a query with the LBR baseline.
func RunLBR(st *store.Store, q Query) (Measurement, error) {
	parsed, err := sparql.Parse(q.Text)
	if err != nil {
		return Measurement{}, fmt.Errorf("%s: %w", q.ID, err)
	}
	var best Measurement
	for rep := 0; rep < Reps; rep++ {
		res, err := lbr.Run(parsed, st)
		if err != nil {
			return Measurement{}, fmt.Errorf("%s: %w", q.ID, err)
		}
		m := Measurement{
			Query:    q.ID,
			Dataset:  q.Dataset,
			Engine:   "lbr",
			Strategy: "LBR",
			Results:  res.Bag.Len(),
			ExecTime: res.ExecTime,
		}
		if rep == 0 || m.ExecTime < best.ExecTime {
			best = m
		}
	}
	return best, nil
}

// StoreFor returns the default experiment store for a dataset name.
func StoreFor(dataset string) *store.Store {
	if dataset == "DBpedia" {
		return DBpediaStore(DefaultDBpediaEntities)
	}
	return LUBMStore(DefaultLUBMUniversities)
}

// ---- Table and figure printers ----------------------------------------

// Table2 prints dataset statistics in the shape of Table 2, followed by
// the stores' index memory footprint so index-size regressions are
// visible in experiment output.
func Table2(w io.Writer) {
	fmt.Fprintf(w, "Table 2: Datasets Statistics (synthetic, scaled down)\n")
	fmt.Fprintf(w, "%-10s %12s %12s %12s %12s\n", "Dataset", "triples", "entities", "predicates", "literals")
	for _, name := range []string{"LUBM", "DBpedia"} {
		st := StoreFor(name)
		s := st.Stats()
		fmt.Fprintf(w, "%-10s %12d %12d %12d %12d\n",
			name, s.NumTriples, s.NumEntities, s.NumPreds, s.NumLiterals)
	}
	fmt.Fprintln(w, "Store memory (triple log + permutation indexes)")
	for _, name := range []string{"LUBM", "DBpedia"} {
		fmt.Fprintf(w, "%-10s %s\n", name, StoreFor(name).MemStats())
	}
}

// QueryStats prints Type / Count_BGP / Depth / result-size rows in the
// shape of Tables 3 and 4 for the given dataset.
func QueryStats(w io.Writer, dataset string) error {
	st := StoreFor(dataset)
	tableNo := 3
	if dataset == "DBpedia" {
		tableNo = 4
	}
	fmt.Fprintf(w, "Table %d: Query Statistics on %s\n", tableNo, dataset)
	fmt.Fprintf(w, "%-8s %-5s %10s %6s %12s\n", "Query", "Type", "Count BGP", "Depth", "|[[Q]]D|")
	print := func(qs []Query) error {
		for _, q := range qs {
			parsed, err := sparql.Parse(q.Text)
			if err != nil {
				return fmt.Errorf("%s: %w", q.ID, err)
			}
			tree, err := core.Build(parsed, st)
			if err != nil {
				return fmt.Errorf("%s: %w", q.ID, err)
			}
			res := core.RunTree(tree, st, exec.WCOEngine{}, core.Full)
			fmt.Fprintf(w, "%-8s %-5s %10d %6d %12d\n",
				q.ID, q.Type, tree.CountBGP(), tree.Depth(), res.Bag.Len())
		}
		return nil
	}
	fmt.Fprintln(w, "Group 1")
	if err := print(Group1(dataset)); err != nil {
		return err
	}
	fmt.Fprintln(w, "Group 2")
	return print(Group2(dataset))
}

// Fig10 prints, for each (engine, dataset) panel, the execution times of
// base/TT/CP/full on q1.1–q1.6, plus the transformation time — the data
// behind Figure 10 — and the amortized prepared-execution time of the
// full strategy (transform+evaluate on a pre-built plan, the per-call
// cost of a prepared-query workload).
func Fig10(w io.Writer) error {
	fmt.Fprintln(w, "Figure 10: Verification of optimizations (times in ms)")
	for _, engine := range Engines {
		for _, dataset := range []string{"LUBM", "DBpedia"} {
			st := StoreFor(dataset)
			fmt.Fprintf(w, "\n[%s, %s]\n", engine.Name(), dataset)
			fmt.Fprintf(w, "%-8s %10s %10s %10s %10s %10s %10s %12s\n",
				"Query", "base", "TT", "CP", "full", "parallel", "prepared", "transform")
			for _, q := range Group1(dataset) {
				ms, err := RunStrategies(st, q, engine)
				if err != nil {
					return err
				}
				var times [4]float64
				var parallel, prepared, transform float64
				for i, m := range ms {
					times[i] = msec(m.ExecTime)
					if m.Strategy == "full" {
						parallel = msec(m.Parallel)
						prepared = msec(m.Prepared)
						transform = msec(m.Transform)
					}
				}
				fmt.Fprintf(w, "%-8s %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f %12.3f\n",
					q.ID, times[0], times[1], times[2], times[3], parallel, prepared, transform)
			}
		}
	}
	return nil
}

// Fig11 prints execution time and join space per strategy — the data
// behind Figure 11.
func Fig11(w io.Writer) error {
	fmt.Fprintln(w, "Figure 11: Execution time (ms) and join space per strategy")
	for _, dataset := range []string{"LUBM", "DBpedia"} {
		st := StoreFor(dataset)
		for _, q := range Group1(dataset) {
			fmt.Fprintf(w, "\n[%s %s]\n", dataset, q.ID)
			fmt.Fprintf(w, "%-8s %12s %12s %12s %16s\n",
				"Strat", "wco(ms)", "parallel", "binary(ms)", "join space")
			for _, strat := range core.Strategies {
				mw, err := RunOne(st, q, exec.WCOEngine{}, strat)
				if err != nil {
					return err
				}
				mb, err := RunOne(st, q, exec.BinaryJoinEngine{}, strat)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%-8s %12.2f %12.2f %12.2f %16.1f\n",
					strat, msec(mw.ExecTime), msec(mw.Parallel), msec(mb.ExecTime), mw.JoinSpace)
			}
		}
	}
	return nil
}

// Fig13 prints full vs LBR total response time on q2.1–q2.6 — the data
// behind Figure 13.
func Fig13(w io.Writer) error {
	fmt.Fprintln(w, "Figure 13: Comparison with state-of-the-art (times in ms)")
	for _, dataset := range []string{"LUBM", "DBpedia"} {
		st := StoreFor(dataset)
		fmt.Fprintf(w, "\n[%s]\n", dataset)
		fmt.Fprintf(w, "%-8s %10s %10s %10s\n", "Query", "LBR", "full", "speedup")
		for _, q := range Group2(dataset) {
			ml, err := RunLBR(st, q)
			if err != nil {
				return err
			}
			mf, err := RunOne(st, q, exec.WCOEngine{}, core.Full)
			if err != nil {
				return err
			}
			total := mf.ExecTime + mf.Transform
			speedup := float64(ml.ExecTime) / float64(total)
			fmt.Fprintf(w, "%-8s %10.2f %10.2f %9.1fx\n",
				q.ID, msec(ml.ExecTime), msec(total), speedup)
		}
	}
	return nil
}

// Fig12Scales are the LUBM scale factors (universities) for the
// scalability study, standing in for the paper's 0.5B–2B triples.
var Fig12Scales = []int{5, 10, 15, 20}

// Fig12 prints full's execution time on q1.1–q1.6 across LUBM scales —
// the data behind Figure 12.
func Fig12(w io.Writer) error {
	fmt.Fprintln(w, "Figure 12: Scalability of full on LUBM (times in ms)")
	fmt.Fprintf(w, "%-8s", "Query")
	for _, s := range Fig12Scales {
		fmt.Fprintf(w, " %9s", fmt.Sprintf("U=%d", s))
	}
	fmt.Fprintln(w)
	for _, q := range LUBMGroup1 {
		fmt.Fprintf(w, "%-8s", q.ID)
		for _, s := range Fig12Scales {
			st := LUBMStore(s)
			m, err := RunOne(st, q, exec.WCOEngine{}, core.Full)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %9.2f", msec(m.ExecTime+m.Transform))
		}
		fmt.Fprintln(w)
	}
	return nil
}

func msec(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
