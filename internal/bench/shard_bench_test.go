package bench

import (
	"context"
	"fmt"
	"testing"

	"sparqluo/internal/core"
	"sparqluo/internal/sparql"
)

// BenchmarkShardScaling runs the Fig10 workload through 1-, 2- and
// 4-way sharded stores with the parallel evaluator, against the same
// data. k=1 measures the sharded wrapper's overhead over a monolithic
// store (it must stay negligible: MatchPattern unwraps single-shard
// readers); k=2 and k=4 show the scatter-gather speedup on scan-heavy
// queries. Every run is checked against the single store's result size,
// so a shard that drops or duplicates rows fails the benchmark.
func BenchmarkShardScaling(b *testing.B) {
	for _, dataset := range []string{"LUBM"} {
		st := StoreFor(dataset)
		for _, q := range Group1(dataset) {
			parsed, err := sparql.Parse(q.Text)
			if err != nil {
				b.Fatalf("%s: %v", q.ID, err)
			}
			ref, err := core.Run(parsed, st, Engines[0], core.Full)
			if err != nil {
				b.Fatalf("%s: %v", q.ID, err)
			}
			for _, k := range []int{1, 2, 4} {
				rd, err := Sharded(st, k)
				if err != nil {
					b.Fatalf("Sharded(%d): %v", k, err)
				}
				b.Run(fmt.Sprintf("%s/%s/k=%d", dataset, q.ID, k), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						res, err := core.RunContext(context.Background(), parsed, rd,
							Engines[0], core.Full, core.ExecOptions{Parallelism: 0})
						if err != nil {
							b.Fatal(err)
						}
						if res.Bag.Len() != ref.Bag.Len() {
							b.Fatalf("k=%d returned %d results, single store %d",
								k, res.Bag.Len(), ref.Bag.Len())
						}
					}
				})
			}
		}
	}
}
