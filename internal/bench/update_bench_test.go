package bench

import (
	"fmt"
	"testing"
	"time"

	"sparqluo/internal/core"
	"sparqluo/internal/lubm"
	"sparqluo/internal/overlay"
	"sparqluo/internal/rdf"
	"sparqluo/internal/sparql"
	"sparqluo/internal/store"
)

// liveBase builds a fresh frozen LUBM base for a live-update benchmark.
// The store is not taken from the package cache: the overlay shares the
// base's dictionary, and benchmark writes must not grow the dictionary
// under the cached stores other benchmarks reuse.
func liveBase(b *testing.B, universities int) *store.Store {
	b.Helper()
	st := store.New()
	if err := st.AddAll(lubm.Generate(lubm.DefaultConfig(universities))); err != nil {
		b.Fatal(err)
	}
	st.Freeze()
	return st
}

func synthTriple(i int) rdf.Triple {
	return rdf.Triple{
		S: rdf.NewIRI(fmt.Sprintf("http://bench/s%d", i)),
		P: rdf.NewIRI(fmt.Sprintf("http://bench/p%d", i%16)),
		O: rdf.NewIRI(fmt.Sprintf("http://bench/o%d", i%1024)),
	}
}

// BenchmarkLiveInsert measures the acknowledged write path: encode,
// append to the memtable, bump the epoch. One triple per op.
func BenchmarkLiveInsert(b *testing.B) {
	ls := overlay.New(liveBase(b, 1), overlay.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ls.Insert(synthTriple(i))
	}
}

// BenchmarkLiveInsertBatch64 is the same path amortized over 64-triple
// batches, the shape HTTP /update produces.
func BenchmarkLiveInsertBatch64(b *testing.B) {
	ls := overlay.New(liveBase(b, 1), overlay.Options{})
	batch := make([]rdf.Triple, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			batch[j] = synthTriple(i*64 + j)
		}
		ls.Insert(batch...)
	}
	b.ReportMetric(float64(b.N*64)/b.Elapsed().Seconds(), "triples/s")
}

// BenchmarkLiveCompact measures folding a 5000-op memtable into the
// base. Iterations alternate between inserting and tombstoning the same
// block, so every compaction does real merge work in both directions
// and the base does not grow monotonically with b.N.
func BenchmarkLiveCompact(b *testing.B) {
	ls := overlay.New(liveBase(b, 1), overlay.Options{})
	block := make([]rdf.Triple, 5000)
	for j := range block {
		block[j] = synthTriple(j)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if i%2 == 0 {
			ls.Insert(block...)
		} else {
			ls.Delete(block...)
		}
		b.StartTimer()
		if _, err := ls.Compact(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveReadUnderIngest measures query latency on a live store
// while a writer goroutine streams batches and the background compactor
// folds them — the serving-replica steady state. Compare against the
// same query in BenchmarkFig10/workload tables for the overlay's read
// overhead.
func BenchmarkLiveReadUnderIngest(b *testing.B) {
	ls := overlay.New(liveBase(b, 2), overlay.Options{})
	stop := ls.StartCompaction(overlay.CompactionOptions{
		Interval:  50 * time.Millisecond,
		Threshold: 20000,
	})
	defer stop()
	writerDone := make(chan struct{})
	defer close(writerDone)
	go func() {
		const window = 64 * 128
		for i := 0; ; i++ {
			select {
			case <-writerDone:
				return
			default:
			}
			batch := make([]rdf.Triple, 64)
			for j := range batch {
				batch[j] = synthTriple((i*64 + j) % window)
			}
			if i%2 == 0 {
				ls.Insert(batch...)
			} else {
				ls.Delete(batch...)
			}
		}
	}()

	q := Group1("LUBM")[0]
	parsed, err := sparql.Parse(q.Text)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(parsed, ls, Engines[0], core.Full); err != nil {
			b.Fatal(err)
		}
	}
}
