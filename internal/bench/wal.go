package bench

import (
	"os"
	"sort"
	"time"

	"sparqluo/internal/lubm"
	"sparqluo/internal/overlay"
	"sparqluo/internal/rdf"
	"sparqluo/internal/wal"
)

// WALResult is one run of the wal_durability workload: acknowledged
// write throughput and per-batch ack latency with a journal attached
// under one sync policy, plus how long recovery takes to replay the log
// the run produced. The sync=always row is the headline durability tax
// (every ack waits on a group-committed fsync); never is the journal's
// framing overhead alone; interval sits between. ReplayPer100k makes
// recovery time comparable across runs of different sizes.
type WALResult struct {
	Sync    string // always | interval | never
	Batch   int    // triples per Insert call
	Batches int    // write calls issued (all acked)
	Triples int    // triples acked through them

	IngestSeconds float64
	IngestRate    float64 // acked triples per second

	WriteP50 time.Duration // per-batch ack latency (journal append + commit + memtable)
	WriteP99 time.Duration
	WriteMax time.Duration

	Syncs    uint64 // fsyncs the log issued (group commit coalesces)
	WALBytes int64  // bytes the run left in the log

	ReplaySeconds float64 // full recovery replay of that log into a fresh overlay
	ReplayPer100k float64 // seconds of replay per 100k triples
}

// benchJournal wires a *wal.Log into the overlay exactly the way the
// public API does, so the measured path is the production one.
type benchJournal struct{ log *wal.Log }

func (j benchJournal) Append(del bool, ts []rdf.Triple) (uint64, error) {
	kind := wal.Insert
	if del {
		kind = wal.Delete
	}
	return j.log.Append(kind, ts)
}

func (j benchJournal) Commit(seq uint64) error         { return j.log.Sync(seq) }
func (j benchJournal) Checkpoint() (uint64, error)     { return j.log.Cut() }
func (j benchJournal) Retire(mark uint64) (int, error) { return j.log.Retire(mark) }

func (j benchJournal) Stats() overlay.JournalStats {
	s := j.log.Stats()
	return overlay.JournalStats{Segments: s.Segments, Bytes: s.Bytes, Appended: s.Appended,
		Syncs: s.Syncs, LastSync: s.LastSync, LastBatch: s.LastBatch,
		Replayed: s.Replayed, TruncatedBytes: s.TruncatedBytes}
}

// RunWALDurability streams universities' worth of LUBM triples into an
// empty live overlay journaled under the given sync policy, recording
// the ack latency of every batch, then times a full recovery replay of
// the log it wrote. The log lives in a fresh temp directory that is
// removed before returning.
func RunWALDurability(policy wal.SyncPolicy, universities, batch int) (WALResult, error) {
	dir, err := os.MkdirTemp("", "sparqluo-walbench-*")
	if err != nil {
		return WALResult{}, err
	}
	defer os.RemoveAll(dir)

	log, err := wal.Open(dir, wal.Options{Sync: policy})
	if err != nil {
		return WALResult{}, err
	}
	ls := overlay.New(nil, overlay.Options{})
	ls.SetJournal(benchJournal{log})

	stream := lubm.Generate(lubm.DefaultConfig(universities))
	res := WALResult{Sync: policy.String(), Batch: batch}

	lats := make([]time.Duration, 0, len(stream)/batch+1)
	ingestStart := time.Now()
	for off := 0; off < len(stream); off += batch {
		b := stream[off:min(off+batch, len(stream))]
		t0 := time.Now()
		if err := ls.Insert(b...); err != nil {
			log.Close()
			return WALResult{}, err
		}
		lats = append(lats, time.Since(t0))
		res.Batches++
		res.Triples += len(b)
	}
	ingestDur := time.Since(ingestStart)

	st := log.Stats()
	res.Syncs = st.Syncs
	res.WALBytes = st.Bytes
	if err := log.Close(); err != nil {
		return WALResult{}, err
	}

	res.IngestSeconds = ingestDur.Seconds()
	if s := ingestDur.Seconds(); s > 0 {
		res.IngestRate = float64(res.Triples) / s
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if n := len(lats); n > 0 {
		res.WriteP50 = lats[n/2]
		res.WriteP99 = lats[n*99/100]
		res.WriteMax = lats[n-1]
	}

	// Recovery replay: reopen the log and stream every record into a
	// fresh overlay, the exact path OpenLive takes after a crash.
	replayStart := time.Now()
	rlog, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		return WALResult{}, err
	}
	fresh := overlay.New(nil, overlay.Options{})
	err = rlog.Replay(func(r wal.Record) error {
		if r.Kind == wal.Delete {
			return fresh.Delete(r.Triples...)
		}
		return fresh.Insert(r.Triples...)
	})
	rlog.Close()
	if err != nil {
		return WALResult{}, err
	}
	res.ReplaySeconds = time.Since(replayStart).Seconds()
	if res.Triples > 0 {
		res.ReplayPer100k = res.ReplaySeconds * 100_000 / float64(res.Triples)
	}
	return res, nil
}
