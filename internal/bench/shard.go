package bench

import "sparqluo/internal/store"

// Sharded range-partitions a frozen store into k subject shards and
// wraps them in a sharded reader carrying the store's global
// statistics — the same object OpenShards assembles from a shard
// manifest, built in memory for experiments. k=1 exercises the sharded
// code path with a single shard (the overhead-measurement baseline),
// not the plain store.
func Sharded(st *store.Store, k int) (store.Reader, error) {
	shards, bounds, err := st.ShardBySubject(k)
	if err != nil {
		return nil, err
	}
	return store.NewShardedStore(shards, bounds, st.Stats())
}
