package bench

import (
	"testing"

	"sparqluo/internal/store"
)

// foldFixture pre-encodes one base + delta pair shared by the two
// compaction-fold benchmarks so both time identical work: a frozen
// LUBM base, adds drawn from a held-out tail, tombstones of evenly
// spaced base triples (delta ≈ base/16).
type foldFixtureT struct {
	base       *store.Store
	adds, dels []store.EncTriple
}

func foldFixture(b *testing.B) foldFixtureT {
	b.Helper()
	st := liveBase(b, 4)
	d := st.Dict()
	tris := st.Triples()
	delta := len(tris) / 16
	adds := make([]store.EncTriple, 0, delta/2)
	for i := 0; i < delta/2; i++ {
		t := synthTriple(i)
		adds = append(adds, store.EncTriple{S: d.Encode(t.S), P: d.Encode(t.P), O: d.Encode(t.O)})
	}
	dels := make([]store.EncTriple, 0, delta/2)
	for i := 0; i < delta/2; i++ {
		dels = append(dels, tris[i*len(tris)/(delta/2)])
	}
	return foldFixtureT{base: st, adds: adds, dels: dels}
}

// BenchmarkCompactionFoldResort is the pre-merge-fold compactor: hash
// tombstone filter, append, full FromTriples re-sort of base+delta.
func BenchmarkCompactionFoldResort(b *testing.B) {
	f := foldFixture(b)
	tris := f.base.Triples()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dead := make(map[store.EncTriple]struct{}, len(f.dels))
		for _, t := range f.dels {
			dead[t] = struct{}{}
		}
		merged := make([]store.EncTriple, 0, len(tris)+len(f.adds))
		for _, t := range tris {
			if _, ok := dead[t]; !ok {
				merged = append(merged, t)
			}
		}
		merged = append(merged, f.adds...)
		if _, err := store.FromTriples(f.base.Dict(), merged, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompactionFoldMerge is the linear merge fold over the same
// base and delta. Compare ns/op directly against the Resort variant.
func BenchmarkCompactionFoldMerge(b *testing.B) {
	f := foldFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.MergeFold(f.base, f.adds, f.dels, true); err != nil {
			b.Fatal(err)
		}
	}
}
