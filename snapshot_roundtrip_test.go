package sparqluo_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"sparqluo"
	"sparqluo/internal/bench"
	"sparqluo/internal/dbpedia"
	"sparqluo/internal/lubm"
	"sparqluo/internal/rdf"
)

// TestSnapshotRoundTripEquivalence is the snapshot subsystem's central
// acceptance test: on the LUBM and DBpedia fixtures, a database opened
// from a snapshot image must answer every benchmark query with output
// byte-identical (W3C SPARQL JSON) to the parse+freeze database it was
// written from — across both engines and all four strategies. Anything
// the image format dropped or reordered (permutation order, dictionary
// IDs, statistics feeding the cost models' plan choice) would surface
// here as a byte difference.
func TestSnapshotRoundTripEquivalence(t *testing.T) {
	lubmScale, dbpScale := 13, 1500
	if testing.Short() || raceEnabled {
		lubmScale, dbpScale = 3, 300
	}
	fixtures := []struct {
		name    string
		triples []rdf.Triple
	}{
		{"LUBM", lubm.Generate(lubm.DefaultConfig(lubmScale))},
		{"DBpedia", dbpedia.Generate(dbpedia.DefaultConfig(dbpScale))},
	}
	engines := []sparqluo.Engine{sparqluo.WCO, sparqluo.BinaryJoin}
	engineNames := []string{"wco", "binary"}
	strategies := []sparqluo.Strategy{sparqluo.Base, sparqluo.TT, sparqluo.CP, sparqluo.Full}

	for _, fx := range fixtures {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			parsed := sparqluo.Open()
			parsed.AddAll(fx.triples)
			parsed.Freeze()

			img := filepath.Join(t.TempDir(), "store.img")
			if err := parsed.WriteSnapshot(img); err != nil {
				t.Fatalf("WriteSnapshot: %v", err)
			}
			snap, err := sparqluo.OpenSnapshot(img)
			if err != nil {
				t.Fatalf("OpenSnapshot: %v", err)
			}
			defer snap.Close()
			if snap.NumTriples() != parsed.NumTriples() {
				t.Fatalf("NumTriples = %d, want %d", snap.NumTriples(), parsed.NumTriples())
			}

			for _, q := range bench.AllQueries() {
				if q.Dataset != fx.name {
					continue
				}
				for ei, engine := range engines {
					for _, strat := range strategies {
						opts := []sparqluo.Option{
							sparqluo.WithEngine(engine),
							sparqluo.WithStrategy(strat),
						}
						want := queryJSON(t, parsed, q.Text, opts)
						got := queryJSON(t, snap, q.Text, opts)
						if !bytes.Equal(want, got) {
							t.Errorf("%s %s/%v: snapshot results differ from parsed store\nparsed:   %.200s\nsnapshot: %.200s",
								q.ID, engineNames[ei], strat, want, got)
						}
					}
				}
			}
		})
	}
}

func queryJSON(t *testing.T, db *sparqluo.DB, text string, opts []sparqluo.Option) []byte {
	t.Helper()
	res, err := db.Query(text, opts...)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}
