package sparqluo

import (
	"container/list"
	"strings"
	"sync"
)

// planCache is a small mutex-guarded LRU of *Prepared keyed by
// normalized query text plus the strategy/engine the caller requested.
// It sits on the HTTP serving path so hot queries skip parsing and plan
// construction; entries are immutable Prepared values, so a cached plan
// may be executed by many requests concurrently.
type planCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type planCacheEntry struct {
	key  string
	prep *Prepared
}

func newPlanCache(capacity int) *planCache {
	return &planCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element, capacity)}
}

// get returns the cached plan for key and whether it was present,
// promoting the entry to most recently used.
func (c *planCache) get(key string) (*Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*planCacheEntry).prep, true
}

// put inserts a plan, evicting the least recently used entry when full.
func (c *planCache) put(key string, prep *Prepared) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok { // raced with another miss: keep the newer
		c.ll.MoveToFront(el)
		el.Value.(*planCacheEntry).prep = prep
		return
	}
	c.m[key] = c.ll.PushFront(&planCacheEntry{key: key, prep: prep})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*planCacheEntry).key)
	}
}

// len reports the current number of cached plans.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// normalizeQueryText canonicalizes lexically insignificant text so that
// reformatted copies of one query share a cache entry: runs of blanks
// outside string literals and IRI references collapse to one space,
// leading/trailing blanks are dropped, and '#' comments (which the
// lexer discards up to the newline) are removed along with their
// terminating newline — crucially, the comment acts as a token
// separator, so a commented query can never share a key with the
// uncommented text in which the comment would swallow real tokens.
// Quoted content is preserved byte-for-byte — whitespace and '#' inside
// a literal or IRI are significant — so two distinct queries can never
// normalize to the same key.
func normalizeQueryText(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	var quote byte   // closing delimiter when inside "..." or <...>
	pending := false // a space is owed before the next token
	started := false // a non-space byte has been written
	for i := 0; i < len(s); i++ {
		c := s[i]
		if quote != 0 {
			b.WriteByte(c)
			if c == '\\' && quote == '"' && i+1 < len(s) {
				i++
				b.WriteByte(s[i])
				continue
			}
			if c == quote {
				quote = 0
			}
			continue
		}
		switch c {
		case ' ', '\t', '\n', '\r':
			pending = started
			continue
		case '#':
			for i+1 < len(s) && s[i+1] != '\n' {
				i++
			}
			pending = started
			continue
		case '"':
			quote = '"'
		case '<':
			quote = '>'
		}
		if pending {
			b.WriteByte(' ')
			pending = false
		}
		started = true
		b.WriteByte(c)
	}
	return b.String()
}
