package sparqluo

import (
	"container/list"
	"strings"
	"sync"
)

// planCache is a small mutex-guarded LRU of *Prepared keyed by
// normalized query text plus the strategy/engine the caller requested.
// It sits on the HTTP serving path so hot queries skip parsing and plan
// construction; entries are immutable Prepared values, so a cached plan
// may be executed by many requests concurrently.
type planCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type planCacheEntry struct {
	key  string
	prep *Prepared
}

func newPlanCache(capacity int) *planCache {
	return &planCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element, capacity)}
}

// get returns the cached plan for key and whether it was present,
// promoting the entry to most recently used.
func (c *planCache) get(key string) (*Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*planCacheEntry).prep, true
}

// put inserts a plan, evicting the least recently used entry when full.
func (c *planCache) put(key string, prep *Prepared) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok { // raced with another miss: keep the newer
		c.ll.MoveToFront(el)
		el.Value.(*planCacheEntry).prep = prep
		return
	}
	c.m[key] = c.ll.PushFront(&planCacheEntry{key: key, prep: prep})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*planCacheEntry).key)
	}
}

// len reports the current number of cached plans.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// normalizeQueryText canonicalizes lexically insignificant text so that
// reformatted copies of one query share a cache entry: runs of blanks
// outside string literals and IRI references collapse to one space,
// leading/trailing blanks are dropped, and '#' comments (which the
// lexer discards up to the newline) are removed along with their
// terminating newline — crucially, the comment acts as a token
// separator, so a commented query can never share a key with the
// uncommented text in which the comment would swallow real tokens.
// IRI references are preserved byte-for-byte — whitespace and '#'
// inside <...> are significant. String literals are re-emitted with
// every lexer-recognized escape in canonical form, so "a\tb" and the
// same literal holding a raw tab byte — identical queries to the parser
// — share one entry; a literal the lexer would reject (unknown escape,
// unterminated) is kept byte-for-byte instead. Two distinct queries can
// never normalize to the same key: canonical re-encoding is injective
// on valid literals, and an invalid literal's raw bytes contain a
// backslash sequence or missing terminator no canonical emission can.
func normalizeQueryText(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	var quote byte   // '>' while inside an IRI reference
	pending := false // a space is owed before the next token
	started := false // a non-space byte has been written
	for i := 0; i < len(s); i++ {
		c := s[i]
		if quote != 0 {
			b.WriteByte(c)
			if c == quote {
				quote = 0
			}
			continue
		}
		switch c {
		case ' ', '\t', '\n', '\r':
			pending = started
			continue
		case '#':
			for i+1 < len(s) && s[i+1] != '\n' {
				i++
			}
			pending = started
			continue
		case '"':
			if pending {
				b.WriteByte(' ')
				pending = false
			}
			started = true
			lit, end := canonicalLiteral(s, i)
			b.WriteString(lit)
			i = end - 1
			continue
		case '<':
			quote = '>'
		}
		if pending {
			b.WriteByte(' ')
			pending = false
		}
		started = true
		b.WriteByte(c)
	}
	return b.String()
}

// canonicalLiteral consumes the string literal starting at the opening
// quote s[start] and returns its canonical emission plus the index just
// past the literal. A literal the lexer accepts is decoded (the escapes
// of lexer.literal: \n \t \r \" \\) and re-encoded canonically; one it
// would reject — unknown escape, trailing backslash, no closing quote —
// is returned byte-for-byte so distinct invalid texts keep distinct keys.
func canonicalLiteral(s string, start int) (string, int) {
	var content strings.Builder
	for i := start + 1; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			if i+1 >= len(s) {
				return s[start:], len(s) // trailing backslash: raw
			}
			switch s[i+1] {
			case 'n':
				content.WriteByte('\n')
			case 't':
				content.WriteByte('\t')
			case 'r':
				content.WriteByte('\r')
			case '"':
				content.WriteByte('"')
			case '\\':
				content.WriteByte('\\')
			default:
				// Unknown escape: the lexer rejects this literal. Emit the
				// raw bytes up to its end so the key stays injective.
				end := rawLiteralEnd(s, start)
				return s[start:end], end
			}
			i++
		case '"':
			return `"` + encodeCanonicalLiteral(content.String()) + `"`, i + 1
		default:
			content.WriteByte(c)
		}
	}
	return s[start:], len(s) // unterminated: raw
}

// rawLiteralEnd finds the index just past a literal without decoding it,
// honoring backslash-skipping exactly like the pre-canonical normalizer
// (and the lexer's cursor movement): used for literals the lexer would
// reject, which are preserved byte-for-byte.
func rawLiteralEnd(s string, start int) int {
	for i := start + 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i + 1
		}
	}
	return len(s)
}

// encodeCanonicalLiteral escapes a decoded literal body the one
// canonical way: exactly the bytes the lexer's escapes denote (\ " and
// the control characters n/t/r) are escaped, everything else is emitted
// verbatim. Every backslash in the output starts a valid escape and no
// raw \n/\t/\r/" survives, so decoding is unambiguous and the encoding
// is injective.
func encodeCanonicalLiteral(body string) string {
	var b strings.Builder
	b.Grow(len(body))
	for i := 0; i < len(body); i++ {
		switch c := body[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}
