package sparqluo_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"testing"
	"time"

	"sparqluo"
	"sparqluo/internal/lubm"
)

func TestHTTPSparqlEndpoint(t *testing.T) {
	db := openTestDB(t)
	srv := httptest.NewServer(sparqluo.NewHandler(db))
	defer srv.Close()

	q := url.QueryEscape(`PREFIX ex: <http://ex.org/> SELECT ?who ?name WHERE { ?who ex:name ?name }`)
	resp, err := http.Get(srv.URL + "/sparql?query=" + q)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/sparql-results+json" {
		t.Errorf("content type %q", ct)
	}
	var doc struct {
		Head struct {
			Vars []string `json:"vars"`
		} `json:"head"`
		Results struct {
			Bindings []map[string]struct {
				Type  string `json:"type"`
				Value string `json:"value"`
			} `json:"bindings"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Results.Bindings) != 2 {
		t.Fatalf("bindings = %d, want 2", len(doc.Results.Bindings))
	}
	for _, b := range doc.Results.Bindings {
		if b["who"].Type != "uri" {
			t.Errorf("?who type = %q", b["who"].Type)
		}
		if b["name"].Type != "literal" {
			t.Errorf("?name type = %q", b["name"].Type)
		}
	}
}

func TestHTTPBadRequests(t *testing.T) {
	db := openTestDB(t)
	srv := httptest.NewServer(sparqluo.NewHandler(db))
	defer srv.Close()

	cases := []string{
		"/sparql",                      // missing query
		"/sparql?query=SELECT+garbage", // syntax error
		"/sparql?query=SELECT+*+WHERE+%7B%7D&strategy=warp", // bad strategy
		"/sparql?query=SELECT+*+WHERE+%7B%7D&engine=gpu",    // bad engine
	}
	for _, path := range cases {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestHTTPStats(t *testing.T) {
	db := openTestDB(t)
	srv := httptest.NewServer(sparqluo.NewHandler(db))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1024)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	if !strings.Contains(body, "triples: 5") {
		t.Errorf("stats body:\n%s", body)
	}
	if !strings.Contains(body, "dict-bytes: ") || !strings.Contains(body, "dict=") {
		t.Errorf("stats body missing dictionary footprint:\n%s", body)
	}
}

// TestHTTPHealthz: the readiness probe must report 503 while the store
// is still loading (unfrozen) and 200 once it is queryable, so load
// balancers only route traffic to ready replicas.
func TestHTTPHealthz(t *testing.T) {
	loading := sparqluo.Open() // never frozen: still "loading"
	srv := httptest.NewServer(sparqluo.NewHandler(loading))
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	srv.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("unfrozen healthz: status %d, want 503", resp.StatusCode)
	}

	srv = httptest.NewServer(sparqluo.NewHandler(openTestDB(t)))
	defer srv.Close()
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("frozen healthz: status %d, want 200", resp.StatusCode)
	}
}

func TestHTTPStrategyParameter(t *testing.T) {
	db := openTestDB(t)
	srv := httptest.NewServer(sparqluo.NewHandler(db))
	defer srv.Close()
	q := url.QueryEscape(`PREFIX ex: <http://ex.org/> SELECT * WHERE { ?a ex:knows ?b OPTIONAL { ?a ex:name ?n } }`)
	for _, strat := range []string{"base", "tt", "cp", "full"} {
		resp, err := http.Get(srv.URL + "/sparql?strategy=" + strat + "&engine=binary&query=" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("strategy %s: status %d", strat, resp.StatusCode)
		}
	}
}

// heavyQuery is a triple cross product no realistic machine can
// materialize on a LUBM store; only cancellation brings it back.
const heavyQuery = `SELECT * WHERE { ?a ?p ?b . ?c ?q ?d . ?e ?r ?f }`

// TestHTTPQueryTimeout checks the server-side deadline: a query that
// cannot finish within WithQueryTimeout is aborted through its context
// and answered with 504.
func TestHTTPQueryTimeout(t *testing.T) {
	db := sparqluo.Open()
	db.AddAll(lubm.Generate(lubm.DefaultConfig(1)))
	db.Freeze()
	srv := httptest.NewServer(sparqluo.NewHandler(db,
		sparqluo.WithQueryTimeout(50*time.Millisecond)))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/sparql?query=" + url.QueryEscape(heavyQuery))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status = %d, want 504", resp.StatusCode)
	}
}

// TestHTTPTimeoutParameter checks that a request may lower its own
// deadline via the timeout form parameter, and that malformed values
// are rejected.
func TestHTTPTimeoutParameter(t *testing.T) {
	db := sparqluo.Open()
	db.AddAll(lubm.Generate(lubm.DefaultConfig(1)))
	db.Freeze()
	srv := httptest.NewServer(sparqluo.NewHandler(db,
		sparqluo.WithQueryTimeout(time.Hour))) // server cap far away
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/sparql?timeout=50ms&query=" + url.QueryEscape(heavyQuery))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("timeout=50ms: status = %d, want 504", resp.StatusCode)
	}

	for _, bad := range []string{"banana", "-3s", "0"} {
		resp, err := http.Get(srv.URL + "/sparql?timeout=" + bad + "&query=" + url.QueryEscape(heavyQuery))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("timeout=%s: status = %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestHTTPInFlightLimiter checks the overload valve: with one slot and
// a long-running query holding it, concurrent requests are turned away
// with 503 instead of queueing.
func TestHTTPInFlightLimiter(t *testing.T) {
	db := sparqluo.Open()
	db.AddAll(lubm.Generate(lubm.DefaultConfig(1)))
	db.Freeze()
	srv := httptest.NewServer(sparqluo.NewHandler(db,
		sparqluo.WithMaxInFlight(1),
		sparqluo.WithQueryTimeout(300*time.Millisecond)))
	defer srv.Close()

	heavyDone := make(chan int, 1)
	go func() {
		// The probes below race for the same single slot; retry until the
		// heavy request actually gets in rather than reporting their 503.
		status := -1
		for attempt := 0; attempt < 100; attempt++ {
			resp, err := http.Get(srv.URL + "/sparql?query=" + url.QueryEscape(heavyQuery))
			if err != nil {
				break
			}
			resp.Body.Close()
			status = resp.StatusCode
			if status != http.StatusServiceUnavailable {
				break
			}
		}
		heavyDone <- status
	}()

	// While the heavy query occupies the only slot (it runs for 300ms),
	// a trivial query must be rejected with 503. Poll: the first probes
	// may race ahead of the heavy request entering the handler.
	small := url.QueryEscape(`SELECT * WHERE { ?s ?p ?o } LIMIT 1`)
	saw503 := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && !saw503 {
		resp, err := http.Get(srv.URL + "/sparql?query=" + small)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				t.Error("503 without Retry-After header")
			}
			saw503 = true
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !saw503 {
		t.Error("never observed 503 while the slot was held")
	}
	if status := <-heavyDone; status != http.StatusGatewayTimeout {
		t.Errorf("heavy query status = %d, want 504", status)
	}

	// With the slot free again, queries pass.
	resp, err := http.Get(srv.URL + "/sparql?query=" + small)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("after release: status = %d, want 200", resp.StatusCode)
	}
}

func TestWriteJSONLangAndTyped(t *testing.T) {
	db := sparqluo.Open()
	db.AddAll([]sparqluo.Triple{
		{S: sparqluo.NewIRI("http://e/s"), P: sparqluo.NewIRI("http://e/p"),
			O: sparqluo.NewLangLiteral("hallo", "de")},
		{S: sparqluo.NewIRI("http://e/s"), P: sparqluo.NewIRI("http://e/q"),
			O: sparqluo.NewTypedLiteral("1", "http://www.w3.org/2001/XMLSchema#integer")},
	})
	db.Freeze()
	res, err := db.Query(`SELECT ?o WHERE { <http://e/s> <http://e/p> ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"xml:lang":"de"`) {
		t.Errorf("missing language tag: %s", sb.String())
	}
	res2, err := db.Query(`SELECT ?o WHERE { <http://e/s> <http://e/q> ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := res2.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"datatype":"http://www.w3.org/2001/XMLSchema#integer"`) {
		t.Errorf("missing datatype: %s", sb.String())
	}
}

func TestLimitOffset(t *testing.T) {
	db := openTestDB(t)
	all, err := db.Query(`PREFIX ex: <http://ex.org/> SELECT * WHERE { ?s ?p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	limited, err := db.Query(`PREFIX ex: <http://ex.org/> SELECT * WHERE { ?s ?p ?o } LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if limited.Len() != 2 {
		t.Errorf("LIMIT 2: got %d", limited.Len())
	}
	offset, err := db.Query(`PREFIX ex: <http://ex.org/> SELECT * WHERE { ?s ?p ?o } LIMIT 100 OFFSET 3`)
	if err != nil {
		t.Fatal(err)
	}
	if want := all.Len() - 3; offset.Len() != want {
		t.Errorf("OFFSET 3: got %d, want %d", offset.Len(), want)
	}
	zero, err := db.Query(`PREFIX ex: <http://ex.org/> SELECT * WHERE { ?s ?p ?o } LIMIT 0`)
	if err != nil {
		t.Fatal(err)
	}
	if zero.Len() != 0 {
		t.Errorf("LIMIT 0: got %d", zero.Len())
	}
}

// TestHTTPPagination drives the serving-path window: limit/offset form
// parameters slice the result exactly, share one plan-cache entry
// across pages, and reject malformed values.
func TestHTTPPagination(t *testing.T) {
	db := openTestDB(t)
	srv := httptest.NewServer(sparqluo.NewHandler(db, sparqluo.WithPlanCache(8)))
	defer srv.Close()

	q := url.QueryEscape(`SELECT * WHERE { ?s ?p ?o }`)
	fetch := func(extra string) (int, string, []map[string]struct {
		Type  string `json:"type"`
		Value string `json:"value"`
	}) {
		resp, err := http.Get(srv.URL + "/sparql?query=" + q + extra)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return resp.StatusCode, resp.Header.Get("X-Plan-Cache"), nil
		}
		var doc struct {
			Results struct {
				Bindings []map[string]struct {
					Type  string `json:"type"`
					Value string `json:"value"`
				} `json:"bindings"`
			} `json:"results"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header.Get("X-Plan-Cache"), doc.Results.Bindings
	}

	_, cache0, full := fetch("")
	if cache0 != "miss" {
		t.Errorf("first request: X-Plan-Cache = %q, want miss", cache0)
	}
	if len(full) < 4 {
		t.Fatalf("full result has %d rows, need >= 4", len(full))
	}
	// Two pages: both must hit the cache entry the full request created —
	// the window is per-execution, not part of the plan-cache key.
	_, cache1, page1 := fetch("&limit=2")
	_, cache2, page2 := fetch("&limit=2&offset=2")
	if cache1 != "hit" || cache2 != "hit" {
		t.Errorf("paginated requests: X-Plan-Cache = %q/%q, want hit/hit", cache1, cache2)
	}
	if !reflect.DeepEqual(page1, full[:2]) {
		t.Errorf("page 1 = %v, want %v", page1, full[:2])
	}
	if !reflect.DeepEqual(page2, full[2:4]) {
		t.Errorf("page 2 = %v, want %v", page2, full[2:4])
	}
	// An offset past the end is an empty page, not an error.
	if status, _, rest := fetch("&limit=5&offset=9999"); status != http.StatusOK || len(rest) != 0 {
		t.Errorf("offset past end: status %d, %d rows", status, len(rest))
	}
	for _, bad := range []string{"&limit=-1", "&limit=x", "&offset=-2", "&offset=1.5"} {
		if status, _, _ := fetch(bad); status != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", bad, status)
		}
	}
}

// TestHTTPClientCancelNoResponse: when the client goes away mid-query
// the handler logs and drops — it must not write a status (in
// particular not the 503 that is reserved for the overload valve, whose
// Retry-After would poison intermediaries).
func TestHTTPClientCancelNoResponse(t *testing.T) {
	db := openTestDB(t)
	h := sparqluo.NewHandler(db)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone when evaluation starts
	req := httptest.NewRequest("GET", "/sparql?query="+url.QueryEscape(`SELECT * WHERE { ?s ?p ?o }`), nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || rec.Body.Len() != 0 {
		t.Errorf("cancelled request: wrote status %d body %q, want nothing", rec.Code, rec.Body.String())
	}
	if ra := rec.Header().Get("Retry-After"); ra != "" {
		t.Errorf("cancelled request carries Retry-After %q", ra)
	}
}

// TestHTTPLiveUpdateEndpoint walks the live-update surface end to end
// over HTTP: inserts and deletes through POST /update, a forced
// compaction through POST /compact, and the overlay lines /stats and
// /healthz gain on a live database.
func TestHTTPLiveUpdateEndpoint(t *testing.T) {
	db, err := sparqluo.OpenLive(sparqluo.LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sparqluo.NewHandler(db))
	defer srv.Close()

	post := func(path, body string) (int, string) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/n-triples", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf strings.Builder
		if _, err := io.Copy(&buf, resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, buf.String()
	}
	countBindings := func() int {
		t.Helper()
		q := url.QueryEscape(`SELECT * WHERE { ?s ?p ?o }`)
		resp, err := http.Get(srv.URL + "/sparql?query=" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc struct {
			Results struct {
				Bindings []map[string]struct{ Value string } `json:"bindings"`
			} `json:"results"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return len(doc.Results.Bindings)
	}

	nt := "<http://ex.org/s> <http://ex.org/p> <http://ex.org/o> .\n" +
		"<http://ex.org/s2> <http://ex.org/p> <http://ex.org/o> .\n"
	if code, body := post("/update", nt); code != http.StatusOK || !strings.Contains(body, `"applied":2`) {
		t.Fatalf("insert: status %d body %s", code, body)
	}
	if n := countBindings(); n != 2 {
		t.Fatalf("after insert: %d bindings, want 2", n)
	}
	if code, body := post("/update?op=delete", "<http://ex.org/s> <http://ex.org/p> <http://ex.org/o> .\n"); code != http.StatusOK || !strings.Contains(body, `"applied":1`) {
		t.Fatalf("delete: status %d body %s", code, body)
	}
	if n := countBindings(); n != 1 {
		t.Fatalf("after delete: %d bindings, want 1", n)
	}

	// Error surface: unknown op, malformed payload, wrong method.
	if code, _ := post("/update?op=upsert", nt); code != http.StatusBadRequest {
		t.Errorf("unknown op: status %d, want 400", code)
	}
	if code, _ := post("/update", "not n-triples"); code != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", code)
	}
	resp, err := http.Get(srv.URL + "/update")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "POST" {
		t.Errorf("GET /update: status %d Allow %q, want 405 POST", resp.StatusCode, resp.Header.Get("Allow"))
	}

	// Forced compaction folds the memtable (1 surviving triple) into the
	// base; afterwards /stats reports a drained memtable.
	code, body := post("/compact", "")
	if code != http.StatusOK || !strings.Contains(body, `"merged":1`) {
		t.Fatalf("compact: status %d body %s", code, body)
	}
	if n := countBindings(); n != 1 {
		t.Fatalf("after compact: %d bindings, want 1", n)
	}
	statsResp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	io.Copy(&sb, statsResp.Body)
	statsResp.Body.Close()
	stats := sb.String()
	for _, want := range []string{"live: true", "memtable-ops: 0", "tombstones: 0", "compactions: 1", "compaction-in-progress: false", "last-compaction: "} {
		if !strings.Contains(stats, want) {
			t.Errorf("/stats missing %q:\n%s", want, stats)
		}
	}
	hResp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hb strings.Builder
	io.Copy(&hb, hResp.Body)
	hResp.Body.Close()
	if h := hb.String(); hResp.StatusCode != http.StatusOK || !strings.Contains(h, "live: true") || !strings.Contains(h, "memtable-triples: 0") {
		t.Errorf("/healthz status %d body:\n%s", hResp.StatusCode, hb.String())
	}
}

// TestHTTPUpdateRequiresLive pins the 409 contract: update endpoints on
// a read-only database refuse cleanly instead of mutating or panicking.
func TestHTTPUpdateRequiresLive(t *testing.T) {
	db := openTestDB(t)
	srv := httptest.NewServer(sparqluo.NewHandler(db))
	defer srv.Close()
	for _, path := range []string{"/update", "/compact"} {
		resp, err := http.Post(srv.URL+path, "application/n-triples", strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("POST %s on read-only db: status %d, want 409", path, resp.StatusCode)
		}
	}
}

// TestHTTPPlanCacheLiveInvalidation pins the epoch-keyed plan cache:
// plans resolve constant terms at build time, so a plan cached before
// an update introduced <http://ex.org/new> would keep answering empty.
// The write must start a fresh cache generation.
func TestHTTPPlanCacheLiveInvalidation(t *testing.T) {
	db, err := sparqluo.OpenLive(sparqluo.LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sparqluo.NewHandler(db, sparqluo.WithPlanCache(8)))
	defer srv.Close()

	q := url.QueryEscape(`SELECT ?o WHERE { <http://ex.org/new> <http://ex.org/p> ?o }`)
	get := func() (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/sparql?query=" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc struct {
			Results struct {
				Bindings []map[string]struct{ Value string } `json:"bindings"`
			} `json:"results"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return len(doc.Results.Bindings), resp.Header.Get("X-Plan-Cache")
	}

	if n, cache := get(); n != 0 || cache != "miss" {
		t.Fatalf("before insert: %d bindings (cache %s), want 0 (miss)", n, cache)
	}
	if n, cache := get(); n != 0 || cache != "hit" {
		t.Fatalf("repeat before insert: %d bindings (cache %s), want 0 (hit)", n, cache)
	}
	resp, err := http.Post(srv.URL+"/update", "application/n-triples",
		strings.NewReader("<http://ex.org/new> <http://ex.org/p> <http://ex.org/o> .\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if n, cache := get(); n != 1 || cache != "miss" {
		t.Fatalf("after insert: %d bindings (cache %s), want 1 (miss) — cached plan served a stale term resolution", n, cache)
	}
	if n, cache := get(); n != 1 || cache != "hit" {
		t.Fatalf("repeat after insert: %d bindings (cache %s), want 1 (hit)", n, cache)
	}
}
