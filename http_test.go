package sparqluo_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"sparqluo"
)

func TestHTTPSparqlEndpoint(t *testing.T) {
	db := openTestDB(t)
	srv := httptest.NewServer(sparqluo.NewHandler(db))
	defer srv.Close()

	q := url.QueryEscape(`PREFIX ex: <http://ex.org/> SELECT ?who ?name WHERE { ?who ex:name ?name }`)
	resp, err := http.Get(srv.URL + "/sparql?query=" + q)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/sparql-results+json" {
		t.Errorf("content type %q", ct)
	}
	var doc struct {
		Head struct {
			Vars []string `json:"vars"`
		} `json:"head"`
		Results struct {
			Bindings []map[string]struct {
				Type  string `json:"type"`
				Value string `json:"value"`
			} `json:"bindings"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Results.Bindings) != 2 {
		t.Fatalf("bindings = %d, want 2", len(doc.Results.Bindings))
	}
	for _, b := range doc.Results.Bindings {
		if b["who"].Type != "uri" {
			t.Errorf("?who type = %q", b["who"].Type)
		}
		if b["name"].Type != "literal" {
			t.Errorf("?name type = %q", b["name"].Type)
		}
	}
}

func TestHTTPBadRequests(t *testing.T) {
	db := openTestDB(t)
	srv := httptest.NewServer(sparqluo.NewHandler(db))
	defer srv.Close()

	cases := []string{
		"/sparql",                      // missing query
		"/sparql?query=SELECT+garbage", // syntax error
		"/sparql?query=SELECT+*+WHERE+%7B%7D&strategy=warp", // bad strategy
		"/sparql?query=SELECT+*+WHERE+%7B%7D&engine=gpu",    // bad engine
	}
	for _, path := range cases {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestHTTPStats(t *testing.T) {
	db := openTestDB(t)
	srv := httptest.NewServer(sparqluo.NewHandler(db))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1024)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	if !strings.Contains(body, "triples: 5") {
		t.Errorf("stats body:\n%s", body)
	}
}

func TestHTTPStrategyParameter(t *testing.T) {
	db := openTestDB(t)
	srv := httptest.NewServer(sparqluo.NewHandler(db))
	defer srv.Close()
	q := url.QueryEscape(`PREFIX ex: <http://ex.org/> SELECT * WHERE { ?a ex:knows ?b OPTIONAL { ?a ex:name ?n } }`)
	for _, strat := range []string{"base", "tt", "cp", "full"} {
		resp, err := http.Get(srv.URL + "/sparql?strategy=" + strat + "&engine=binary&query=" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("strategy %s: status %d", strat, resp.StatusCode)
		}
	}
}

func TestWriteJSONLangAndTyped(t *testing.T) {
	db := sparqluo.Open()
	db.AddAll([]sparqluo.Triple{
		{S: sparqluo.NewIRI("http://e/s"), P: sparqluo.NewIRI("http://e/p"),
			O: sparqluo.NewLangLiteral("hallo", "de")},
		{S: sparqluo.NewIRI("http://e/s"), P: sparqluo.NewIRI("http://e/q"),
			O: sparqluo.NewTypedLiteral("1", "http://www.w3.org/2001/XMLSchema#integer")},
	})
	db.Freeze()
	res, err := db.Query(`SELECT ?o WHERE { <http://e/s> <http://e/p> ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"xml:lang":"de"`) {
		t.Errorf("missing language tag: %s", sb.String())
	}
	res2, err := db.Query(`SELECT ?o WHERE { <http://e/s> <http://e/q> ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := res2.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"datatype":"http://www.w3.org/2001/XMLSchema#integer"`) {
		t.Errorf("missing datatype: %s", sb.String())
	}
}

func TestLimitOffset(t *testing.T) {
	db := openTestDB(t)
	all, err := db.Query(`PREFIX ex: <http://ex.org/> SELECT * WHERE { ?s ?p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	limited, err := db.Query(`PREFIX ex: <http://ex.org/> SELECT * WHERE { ?s ?p ?o } LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if limited.Len() != 2 {
		t.Errorf("LIMIT 2: got %d", limited.Len())
	}
	offset, err := db.Query(`PREFIX ex: <http://ex.org/> SELECT * WHERE { ?s ?p ?o } LIMIT 100 OFFSET 3`)
	if err != nil {
		t.Fatal(err)
	}
	if want := all.Len() - 3; offset.Len() != want {
		t.Errorf("OFFSET 3: got %d, want %d", offset.Len(), want)
	}
	zero, err := db.Query(`PREFIX ex: <http://ex.org/> SELECT * WHERE { ?s ?p ?o } LIMIT 0`)
	if err != nil {
		t.Fatal(err)
	}
	if zero.Len() != 0 {
		t.Errorf("LIMIT 0: got %d", zero.Len())
	}
}
