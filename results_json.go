package sparqluo

import (
	"bufio"
	"io"
	"unicode/utf8"

	"sparqluo/internal/rdf"
	"sparqluo/internal/store"
)

// WriteJSON streams the results to w in the W3C "SPARQL 1.1 Query
// Results JSON Format" (https://www.w3.org/TR/sparql11-results-json/),
// emitting bindings row by row: no []Solution (or per-row map) is ever
// materialized, and steady-state encoding allocates nothing per row.
// WriteJSON consumes the cursor (see Results); calling it on an
// already-consumed Results returns ErrResultsConsumed without writing.
func (r *Results) WriteJSON(w io.Writer) error {
	if err := r.acquire(); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<15)
	bw.WriteString(`{"head":{"vars":[`)
	for i, name := range r.names {
		if i > 0 {
			bw.WriteByte(',')
		}
		writeJSONString(bw, name)
	}
	bw.WriteString(`]},"results":{"bindings":[`)
	for ri, row := range r.res.Bag.All() {
		if ri > 0 {
			bw.WriteByte(',')
		}
		bw.WriteByte('{')
		first := true
		for ci, col := range r.cols {
			id := row[col]
			if id == store.None {
				continue
			}
			if !first {
				bw.WriteByte(',')
			}
			first = false
			writeJSONString(bw, r.names[ci])
			bw.WriteByte(':')
			writeJSONTerm(bw, r.dict.Decode(id))
		}
		bw.WriteByte('}')
	}
	bw.WriteString("]}}\n")
	return bw.Flush()
}

// writeJSONTerm emits one term object: {"type":...,"value":...} plus
// "xml:lang" / "datatype" when present, mirroring the W3C term mapping
// (IRIs → "uri", blank nodes → "bnode", everything else → "literal").
func writeJSONTerm(bw *bufio.Writer, t rdf.Term) {
	bw.WriteString(`{"type":`)
	switch t.Kind {
	case rdf.IRI:
		bw.WriteString(`"uri"`)
	case rdf.Blank:
		bw.WriteString(`"bnode"`)
	default:
		bw.WriteString(`"literal"`)
	}
	bw.WriteString(`,"value":`)
	writeJSONString(bw, t.Value)
	if t.Kind != rdf.IRI && t.Kind != rdf.Blank {
		if t.Lang != "" {
			bw.WriteString(`,"xml:lang":`)
			writeJSONString(bw, t.Lang)
		}
		if t.Datatype != "" {
			bw.WriteString(`,"datatype":`)
			writeJSONString(bw, t.Datatype)
		}
	}
	bw.WriteByte('}')
}

const hexDigits = "0123456789abcdef"

// writeJSONString emits s as a JSON string without allocating. The
// escape set matches encoding/json's default (HTML-escaping) encoder:
// control characters, quote and backslash; '<', '>', '&' as \u00XX;
// the JavaScript-hostile line separators U+2028/U+2029 as \u2028 and
// \u2029; and invalid UTF-8 bytes as the \ufffd replacement escape.
// Documents are therefore byte-compatible with the pre-streaming
// serializer for any given binding.
func writeJSONString(bw *bufio.Writer, s string) {
	bw.WriteByte('"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			bw.WriteString(s[start:i])
			switch c {
			case '"':
				bw.WriteString(`\"`)
			case '\\':
				bw.WriteString(`\\`)
			case '\n':
				bw.WriteString(`\n`)
			case '\r':
				bw.WriteString(`\r`)
			case '\t':
				bw.WriteString(`\t`)
			default:
				bw.WriteString(`\u00`)
				bw.WriteByte(hexDigits[c>>4])
				bw.WriteByte(hexDigits[c&0xf])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			bw.WriteString(s[start:i])
			bw.WriteString(`\ufffd`)
			i++
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			bw.WriteString(s[start:i])
			bw.WriteString(`\u202`)
			bw.WriteByte(hexDigits[r&0xf])
			i += size
			start = i
			continue
		}
		i += size
	}
	bw.WriteString(s[start:])
	bw.WriteByte('"')
}
