package sparqluo

import (
	"encoding/json"
	"io"

	"sparqluo/internal/rdf"
	"sparqluo/internal/store"
)

// jsonResults mirrors the W3C "SPARQL 1.1 Query Results JSON Format":
// https://www.w3.org/TR/sparql11-results-json/
type jsonResults struct {
	Head    jsonHead        `json:"head"`
	Results jsonResultsBody `json:"results"`
}

type jsonHead struct {
	Vars []string `json:"vars"`
}

type jsonResultsBody struct {
	Bindings []map[string]jsonTerm `json:"bindings"`
}

type jsonTerm struct {
	Type     string `json:"type"` // "uri", "literal", "bnode"
	Value    string `json:"value"`
	Lang     string `json:"xml:lang,omitempty"`
	Datatype string `json:"datatype,omitempty"`
}

func termToJSON(t rdf.Term) jsonTerm {
	switch t.Kind {
	case rdf.IRI:
		return jsonTerm{Type: "uri", Value: t.Value}
	case rdf.Blank:
		return jsonTerm{Type: "bnode", Value: t.Value}
	default:
		return jsonTerm{Type: "literal", Value: t.Value, Lang: t.Lang, Datatype: t.Datatype}
	}
}

// WriteJSON serializes the results in the W3C SPARQL 1.1 Query Results
// JSON Format.
func (r *Results) WriteJSON(w io.Writer) error {
	doc := jsonResults{
		Head:    jsonHead{Vars: append([]string{}, r.names...)},
		Results: jsonResultsBody{Bindings: make([]map[string]jsonTerm, 0, r.bag.Len())},
	}
	for _, row := range r.bag.Rows {
		binding := map[string]jsonTerm{}
		for i, name := range r.vars.Names() {
			if row[i] != store.None {
				binding[name] = termToJSON(r.dict.Decode(row[i]))
			}
		}
		doc.Results.Bindings = append(doc.Results.Bindings, binding)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
