package sparqluo_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"sparqluo"
)

// openWindowDB builds a dataset large enough for pagination windows to
// land strictly inside results: 60 people across 7 departments and 3
// universities, with names for every second person (OPTIONAL coverage).
func openWindowDB(t testing.TB) *sparqluo.DB {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("@prefix ex: <http://ex.org/> .\n")
	for i := 0; i < 60; i++ {
		fmt.Fprintf(&sb, "ex:person%02d ex:worksFor ex:dept%d .\n", i, i%7)
		if i%2 == 0 {
			fmt.Fprintf(&sb, "ex:person%02d ex:name \"P%02d\" .\n", i, i)
		}
	}
	for j := 0; j < 7; j++ {
		fmt.Fprintf(&sb, "ex:dept%d ex:subOrganizationOf ex:univ%d .\n", j, j%3)
	}
	db := sparqluo.Open()
	if err := db.Load(strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	db.Freeze()
	return db
}

var windowQueries = []struct{ name, text string }{
	{"join", `PREFIX ex: <http://ex.org/>
		SELECT ?x ?u WHERE { ?x ex:worksFor ?d . ?d ex:subOrganizationOf ?u }`},
	{"optional", `PREFIX ex: <http://ex.org/>
		SELECT ?x ?n WHERE { ?x ex:worksFor ?d . OPTIONAL { ?x ex:name ?n } }`},
	{"union", `PREFIX ex: <http://ex.org/>
		SELECT * WHERE { { ?x ex:worksFor ?y } UNION { ?x ex:subOrganizationOf ?y } }`},
}

var allStrategies = []sparqluo.Strategy{sparqluo.Base, sparqluo.TT, sparqluo.CP, sparqluo.Full}
var allEngines = []sparqluo.Engine{sparqluo.WCO, sparqluo.BinaryJoin}

func engName(e sparqluo.Engine) string {
	if e == sparqluo.BinaryJoin {
		return "binary"
	}
	return "wco"
}

// TestWindowIsExactPrefix is the core LIMIT/OFFSET contract: for every
// engine × strategy × parallelism, the windowed result equals the
// corresponding slice of the same configuration's unlimited result —
// early termination may only cut work, never change rows.
func TestWindowIsExactPrefix(t *testing.T) {
	db := openWindowDB(t)
	for _, q := range windowQueries {
		for _, eng := range allEngines {
			for _, strat := range allStrategies {
				cfg := []sparqluo.Option{sparqluo.WithEngine(eng), sparqluo.WithStrategy(strat)}
				res, err := db.Query(q.text, cfg...)
				if err != nil {
					t.Fatal(err)
				}
				full := res.Solutions()
				if len(full) == 0 {
					t.Fatalf("%s: no rows", q.name)
				}
				windows := [][2]int{ // {limit, offset}
					{0, 0}, {1, 0}, {7, 0}, {7, 5}, {3, len(full) - 2},
					{5, len(full)}, {5, len(full) + 10}, {len(full) + 10, 0},
				}
				for _, par := range []int{1, 4} {
					for _, w := range windows {
						lim, off := w[0], w[1]
						opts := append([]sparqluo.Option{
							sparqluo.WithParallelism(par),
							sparqluo.WithLimit(lim),
							sparqluo.WithOffset(off),
						}, cfg...)
						page, err := db.Query(q.text, opts...)
						if err != nil {
							t.Fatal(err)
						}
						lo := min(off, len(full))
						hi := min(off+lim, len(full))
						want := full[lo:hi]
						got := page.Solutions()
						if !reflect.DeepEqual(got, want) {
							t.Errorf("%s/%s/%v par=%d limit=%d offset=%d: got %d rows %v, want %d rows %v",
								q.name, engName(eng), strat, par, lim, off, len(got), got, len(want), want)
						}
					}
				}
			}
		}
	}
}

// TestTextualWindowMatchesExecWindow: LIMIT/OFFSET written in the query
// text and the same window applied with WithLimit/WithOffset produce
// identical rows, and the two compose (text window first).
func TestTextualWindowMatchesExecWindow(t *testing.T) {
	db := openWindowDB(t)
	base := `PREFIX ex: <http://ex.org/>
		SELECT ?x ?u WHERE { ?x ex:worksFor ?d . ?d ex:subOrganizationOf ?u }`
	for _, eng := range allEngines {
		cfg := []sparqluo.Option{sparqluo.WithEngine(eng)}
		textual, err := db.Query(base+" LIMIT 9 OFFSET 4", cfg...)
		if err != nil {
			t.Fatal(err)
		}
		viaOpts, err := db.Query(base, append([]sparqluo.Option{
			sparqluo.WithLimit(9), sparqluo.WithOffset(4)}, cfg...)...)
		if err != nil {
			t.Fatal(err)
		}
		want, got := textual.Solutions(), viaOpts.Solutions()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: exec window %v != textual window %v", engName(eng), got, want)
		}
		// Composition: a request window paginates WITHIN the text window.
		// Text LIMIT 9 OFFSET 4 then request limit 3 offset 2 = rows 6..8
		// of the unmodified query.
		full, err := db.Query(base, cfg...)
		if err != nil {
			t.Fatal(err)
		}
		composed, err := db.Query(base+" LIMIT 9 OFFSET 4", append([]sparqluo.Option{
			sparqluo.WithLimit(3), sparqluo.WithOffset(2)}, cfg...)...)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := composed.Solutions(), full.Solutions()[6:9]; !reflect.DeepEqual(got, want) {
			t.Errorf("%s: composed window %v, want %v", engName(eng), got, want)
		}
		// A request limit wider than the text limit must not widen it.
		wide, err := db.Query(base+" LIMIT 5", append([]sparqluo.Option{
			sparqluo.WithLimit(50)}, cfg...)...)
		if err != nil {
			t.Fatal(err)
		}
		if wide.Len() != 5 {
			t.Errorf("%s: request limit widened text LIMIT 5 to %d rows", engName(eng), wide.Len())
		}
	}
}

// TestOrderByDeterministic: with a key that is unique per row the order
// is fully determined, so every engine, strategy and parallelism level
// must return the identical row sequence; DESC is its exact reverse,
// and ORDER BY ... LIMIT k is its exact k-prefix.
func TestOrderByDeterministic(t *testing.T) {
	db := openWindowDB(t)
	asc := `PREFIX ex: <http://ex.org/>
		SELECT ?x ?u WHERE { ?x ex:worksFor ?d . ?d ex:subOrganizationOf ?u } ORDER BY ?x`
	var ref []sparqluo.Solution
	for _, eng := range allEngines {
		for _, strat := range allStrategies {
			for _, par := range []int{1, 4} {
				cfg := []sparqluo.Option{
					sparqluo.WithEngine(eng), sparqluo.WithStrategy(strat), sparqluo.WithParallelism(par)}
				res, err := db.Query(asc, cfg...)
				if err != nil {
					t.Fatal(err)
				}
				got := res.Solutions()
				if ref == nil {
					ref = got
					if len(ref) != 60 {
						t.Fatalf("rows = %d, want 60", len(ref))
					}
					for i := 1; i < len(ref); i++ {
						if ref[i-1]["x"].Value > ref[i]["x"].Value {
							t.Fatalf("not sorted at %d: %v > %v", i, ref[i-1]["x"], ref[i]["x"])
						}
					}
					continue
				}
				if !reflect.DeepEqual(got, ref) {
					t.Errorf("%s/%v par=%d: ORDER BY result differs from reference", engName(eng), strat, par)
				}
				desc, err := db.Query(strings.Replace(asc, "ORDER BY ?x", "ORDER BY DESC ?x", 1), cfg...)
				if err != nil {
					t.Fatal(err)
				}
				dsol := desc.Solutions()
				for i := range dsol {
					if !reflect.DeepEqual(dsol[i], ref[len(ref)-1-i]) {
						t.Errorf("%s/%v par=%d: DESC row %d is not ASC row %d", engName(eng), strat, par, i, len(ref)-1-i)
						break
					}
				}
				topk, err := db.Query(asc+" LIMIT 11 OFFSET 3", cfg...)
				if err != nil {
					t.Fatal(err)
				}
				if got := topk.Solutions(); !reflect.DeepEqual(got, ref[3:14]) {
					t.Errorf("%s/%v par=%d: ORDER BY LIMIT window %v, want %v", engName(eng), strat, par, got, ref[3:14])
				}
			}
		}
	}
}

// TestOrderByMultisetPreserved: ORDER BY reorders but never adds or
// drops rows, including under OPTIONAL where the sort key may be
// unbound (unbound sorts first, ascending).
func TestOrderByMultisetPreserved(t *testing.T) {
	db := openWindowDB(t)
	q := `PREFIX ex: <http://ex.org/>
		SELECT ?x ?n WHERE { ?x ex:worksFor ?d . OPTIONAL { ?x ex:name ?n } }`
	for _, eng := range allEngines {
		plain, err := db.Query(q, sparqluo.WithEngine(eng))
		if err != nil {
			t.Fatal(err)
		}
		ordered, err := db.Query(q+" ORDER BY ?n", sparqluo.WithEngine(eng))
		if err != nil {
			t.Fatal(err)
		}
		osol := ordered.Solutions()
		if len(osol) != plain.Len() {
			t.Fatalf("%s: ORDER BY changed cardinality %d -> %d", engName(eng), plain.Len(), len(osol))
		}
		// The 30 unnamed people (unbound ?n) must all sort before any
		// named one.
		for i, sol := range osol {
			if _, bound := sol["n"]; bound != (i >= 30) {
				t.Fatalf("%s: row %d bound=%v, want unbound rows first", engName(eng), i, bound)
			}
		}
	}
}

// TestWindowedQueryRowsPulled: early termination is observable — a tight
// LIMIT on the join query must pull far fewer rows than the full run.
func TestWindowedQueryRowsPulled(t *testing.T) {
	db := openWindowDB(t)
	q := `PREFIX ex: <http://ex.org/>
		SELECT ?x ?u WHERE { ?x ex:worksFor ?d . ?d ex:subOrganizationOf ?u }`
	for _, eng := range allEngines {
		full, err := db.Query(q, sparqluo.WithEngine(eng))
		if err != nil {
			t.Fatal(err)
		}
		capped, err := db.Query(q, sparqluo.WithEngine(eng), sparqluo.WithLimit(2))
		if err != nil {
			t.Fatal(err)
		}
		if capped.RowsPulled() >= full.RowsPulled() {
			t.Errorf("%s: LIMIT 2 pulled %d rows, full run pulled %d — no early termination",
				engName(eng), capped.RowsPulled(), full.RowsPulled())
		}
	}
}
