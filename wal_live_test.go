package sparqluo_test

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sparqluo"
	"sparqluo/internal/bench"
	"sparqluo/internal/lubm"
	"sparqluo/internal/rdf"
	"sparqluo/internal/wal"
)

// walOp is one step of the deterministic write stream the WAL tests
// drive through both a to-be-crashed database and a never-crashed
// reference, so the two can be compared byte for byte afterwards.
type walOp struct {
	del bool
	ts  []rdf.Triple
}

// walOpStream builds a deterministic interleaving of insert and delete
// batches over the dataset: bulk inserts, deletes of earlier inserts
// (some repeated — no-ops), and re-inserts of deleted triples, the op
// mix recovery has to replay faithfully.
func walOpStream(all []rdf.Triple) []walOp {
	rng := rand.New(rand.NewSource(11))
	var ops []walOp
	var seen []rdf.Triple
	next := 0
	for next < len(all) {
		n := min(50+rng.Intn(200), len(all)-next)
		batch := all[next : next+n]
		next += n
		ops = append(ops, walOp{ts: batch})
		seen = append(seen, batch...)
		if len(ops)%3 == 0 && len(seen) > 10 {
			var del []rdf.Triple
			for i := 0; i < 20; i++ {
				del = append(del, seen[rng.Intn(len(seen))])
			}
			ops = append(ops, walOp{del: true, ts: del})
			if rng.Intn(2) == 0 {
				// Re-insert one victim so tombstone/insert ordering in the
				// log matters.
				ops = append(ops, walOp{ts: del[:1]})
			}
		}
	}
	return ops
}

func applyWalOps(t *testing.T, db *sparqluo.DB, ops []walOp) {
	t.Helper()
	for _, op := range ops {
		var err error
		if op.del {
			err = db.Delete(op.ts...)
		} else {
			err = db.Insert(op.ts...)
		}
		if err != nil {
			t.Fatalf("apply op stream: %v", err)
		}
	}
}

// dedupeTriples drops exact repeats (LUBM generation emits a few) so
// tests can assert NumTriples against the input length.
func dedupeTriples(ts []rdf.Triple) []rdf.Triple {
	seen := make(map[string]bool, len(ts))
	out := ts[:0:0]
	for _, t := range ts {
		k := t.S.String() + "\x00" + t.P.String() + "\x00" + t.O.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
	}
	return out
}

// walSegments lists the segment files currently in a WAL directory.
func walSegments(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".wal") {
			segs = append(segs, filepath.Join(dir, e.Name()))
		}
	}
	return segs
}

// TestWALRecoveryAckedWritesSurvive is the core durability acceptance:
// every batch acknowledged under sync=always must survive a simulated
// kill -9 (the database is abandoned without Close — appends go to the
// segment file with a single write syscall, so this is exactly what the
// OS keeps). Recovery must reproduce results byte-identically to a
// never-crashed run of the same op stream, across both engines and all
// four strategies.
func TestWALRecoveryAckedWritesSurvive(t *testing.T) {
	all := lubm.Generate(lubm.DefaultConfig(1))
	ops := walOpStream(all)
	walDir := filepath.Join(t.TempDir(), "wal")

	crashed, err := sparqluo.OpenLive(sparqluo.LiveOptions{WALDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	applyWalOps(t, crashed, ops)
	// Simulated kill -9: no Close, no Flush — the process just stops.
	crashed = nil

	recovered, err := sparqluo.OpenLive(sparqluo.LiveOptions{WALDir: walDir})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	rec, ok := recovered.Recovery()
	if !ok {
		t.Fatal("Recovery() reports no WAL attached")
	}
	if rec.Batches != len(ops) {
		t.Fatalf("recovery replayed %d batches, want %d (every acked batch)", rec.Batches, len(ops))
	}
	if rec.TruncatedBytes != 0 {
		t.Fatalf("recovery truncated %d bytes from a cleanly-appended log", rec.TruncatedBytes)
	}

	ref, err := sparqluo.OpenLive(sparqluo.LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	applyWalOps(t, ref, ops)

	if got, want := recovered.NumTriples(), ref.NumTriples(); got != want {
		t.Fatalf("recovered NumTriples = %d, want %d", got, want)
	}

	engines := []sparqluo.Engine{sparqluo.WCO, sparqluo.BinaryJoin}
	engineNames := []string{"wco", "binary"}
	strategies := []sparqluo.Strategy{sparqluo.Base, sparqluo.TT, sparqluo.CP, sparqluo.Full}
	for _, q := range bench.AllQueries() {
		if q.Dataset != "LUBM" {
			continue
		}
		for ei, engine := range engines {
			for _, strat := range strategies {
				opts := []sparqluo.Option{sparqluo.WithEngine(engine), sparqluo.WithStrategy(strat)}
				want := queryJSON(t, ref, q.Text, opts)
				got := queryJSON(t, recovered, q.Text, opts)
				if !bytes.Equal(want, got) {
					t.Errorf("%s %s/%v: recovered results differ from never-crashed run\nwant: %.200s\ngot:  %.200s",
						q.ID, engineNames[ei], strat, want, got)
				}
			}
		}
	}

	// Writes keep journaling after recovery, with batch IDs resuming
	// past the replayed history: one more insert, one more crash, and
	// the second recovery must see exactly one extra batch.
	extra := rdf.Triple{
		S: rdf.NewIRI("http://ex/after-crash"),
		P: rdf.NewIRI("http://ex/p"),
		O: rdf.NewLiteral("survived"),
	}
	if err := recovered.Insert(extra); err != nil {
		t.Fatal(err)
	}
	recovered = nil // crash again

	again, err := sparqluo.OpenLive(sparqluo.LiveOptions{WALDir: walDir})
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	rec2, _ := again.Recovery()
	if rec2.Batches != len(ops)+1 {
		t.Fatalf("second recovery replayed %d batches, want %d", rec2.Batches, len(ops)+1)
	}
	res := queryJSON(t, again, `SELECT ?o WHERE { <http://ex/after-crash> <http://ex/p> ?o }`, nil)
	if !bytes.Contains(res, []byte("survived")) {
		t.Fatalf("post-recovery insert lost: %s", res)
	}
}

// TestWALCheckpointRetiresSegments covers the log/snapshot recovery
// pair: a compaction that durably persists its image retires every
// journal segment the image makes redundant, and a restart boots from
// the image plus only the tail of the log.
func TestWALCheckpointRetiresSegments(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	img := filepath.Join(dir, "live.img")

	db, err := sparqluo.OpenLive(sparqluo.LiveOptions{
		SnapshotPath:    img,
		WALDir:          walDir,
		WALSegmentBytes: 4096, // force frequent rotation so retirement has segments to eat
	})
	if err != nil {
		t.Fatal(err)
	}
	all := dedupeTriples(lubm.Generate(lubm.DefaultConfig(1)))
	pre := all[:4000]
	for i := 0; i < len(pre); i += 200 {
		if err := db.Insert(pre[i:min(i+200, len(pre))]...); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(walSegments(t, walDir)); n < 3 {
		t.Fatalf("only %d segments before compaction; SegmentBytes=4096 should have rotated more", n)
	}

	cs, err := db.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Persisted {
		t.Fatal("compaction with SnapshotPath did not persist")
	}
	if cs.WALRetired == 0 {
		t.Fatal("persisted compaction retired no WAL segments")
	}
	ls, _ := db.LiveStats()
	if ls.WAL == nil {
		t.Fatal("LiveStats.WAL is nil with a journal attached")
	}
	if ls.WAL.Segments != 1 {
		t.Fatalf("after retirement %d segments remain, want 1 (the active one)", ls.WAL.Segments)
	}
	if ls.SinceLastCompaction <= 0 {
		t.Fatalf("SinceLastCompaction = %v after a compaction", ls.SinceLastCompaction)
	}

	// Post-compaction writes land in the surviving tail.
	post := all[4000:4600]
	for i := 0; i < len(post); i += 200 {
		if err := db.Insert(post[i : i+200]...); err != nil {
			t.Fatal(err)
		}
	}
	db = nil // kill -9

	// Restart the way the server does: boot from the compaction image,
	// then replay the log tail over it.
	re, _, err := sparqluo.OpenFile(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := re.EnableLiveUpdates(sparqluo.LiveOptions{SnapshotPath: img, WALDir: walDir}); err != nil {
		t.Fatal(err)
	}
	rec, _ := re.Recovery()
	if rec.Batches != 3 {
		t.Fatalf("tail replay recovered %d batches, want 3 (only post-compaction ones)", rec.Batches)
	}
	if got, want := re.NumTriples(), len(pre)+len(post); got != want {
		t.Fatalf("recovered NumTriples = %d, want %d", got, want)
	}
}

// TestWALCrashBetweenFoldAndRetire pins the idempotence half of the
// recovery contract: if the process dies after the folded base is
// durably persisted but before the journal segments are retired,
// recovery replays batches the image already contains. RDF set
// semantics must absorb them — no duplicate triples, tombstones still
// annihilate — and results must match a never-crashed run exactly.
func TestWALCrashBetweenFoldAndRetire(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	img := filepath.Join(dir, "fold.img")

	all := lubm.Generate(lubm.DefaultConfig(1))
	a, b := all[:3000], all[3000:3500]
	victims := a[100:160]

	// No SnapshotPath: WriteSnapshot folds and persists the image, but
	// nothing retires the journal — exactly the state a crash between a
	// compaction's persist step and its retire step leaves behind.
	db, err := sparqluo.OpenLive(sparqluo.LiveOptions{WALDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(a...); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(victims...); err != nil {
		t.Fatal(err)
	}
	if err := db.WriteSnapshot(img); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(b...); err != nil {
		t.Fatal(err)
	}
	db = nil // kill -9: image persisted, full journal still on disk

	re, _, err := sparqluo.OpenFile(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := re.EnableLiveUpdates(sparqluo.LiveOptions{WALDir: walDir}); err != nil {
		t.Fatal(err)
	}
	rec, _ := re.Recovery()
	if rec.Batches != 3 {
		t.Fatalf("replay saw %d batches, want all 3 (insert, delete, insert)", rec.Batches)
	}

	ref, err := sparqluo.OpenLive(sparqluo.LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Insert(a...); err != nil {
		t.Fatal(err)
	}
	if err := ref.Delete(victims...); err != nil {
		t.Fatal(err)
	}
	if err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := ref.Insert(b...); err != nil {
		t.Fatal(err)
	}

	if got, want := re.NumTriples(), ref.NumTriples(); got != want {
		t.Fatalf("recovered NumTriples = %d, want %d (duplicates or lost tombstones)", got, want)
	}
	// A replayed tombstone must still annihilate: the victims stay gone.
	v := victims[0]
	q := "SELECT ?o WHERE { " + v.S.String() + " " + v.P.String() + " ?o }"
	res := queryJSON(t, re, q, nil)
	if bytes.Contains(res, []byte(v.O.Value)) {
		t.Fatalf("deleted triple resurrected by idempotent replay: %s", res)
	}
	for _, q := range bench.AllQueries() {
		if q.Dataset != "LUBM" {
			continue
		}
		want := queryJSON(t, ref, q.Text, nil)
		got := queryJSON(t, re, q.Text, nil)
		if !bytes.Equal(want, got) {
			t.Errorf("%s: recovered results differ after fold+replay\nwant: %.200s\ngot:  %.200s", q.ID, want, got)
		}
	}
}

// TestWALTornTailRecovered simulates dying mid-append of an unacked
// batch: garbage bytes at the end of the newest segment. Recovery must
// truncate them, report how many, and keep every acked batch.
func TestWALTornTailRecovered(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	db, err := sparqluo.OpenLive(sparqluo.LiveOptions{WALDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	all := dedupeTriples(lubm.Generate(lubm.DefaultConfig(1)))[:600]
	for i := 0; i < len(all); i += 200 {
		if err := db.Insert(all[i : i+200]...); err != nil {
			t.Fatal(err)
		}
	}
	db = nil // crash

	segs := walSegments(t, walDir)
	if len(segs) == 0 {
		t.Fatal("no segments written")
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := bytes.Repeat([]byte{0xAB}, 13) // a partial frame header + change
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := sparqluo.OpenLive(sparqluo.LiveOptions{WALDir: walDir})
	if err != nil {
		t.Fatalf("recovery refused a torn tail: %v", err)
	}
	rec, _ := re.Recovery()
	if rec.TruncatedBytes != int64(len(torn)) {
		t.Fatalf("TruncatedBytes = %d, want %d", rec.TruncatedBytes, len(torn))
	}
	if rec.Batches != 3 || re.NumTriples() != len(all) {
		t.Fatalf("acked data lost under torn tail: %d batches, %d triples", rec.Batches, re.NumTriples())
	}
}

// TestWALCorruptionRefusesToOpen: damage that is not a torn tail —
// a flipped byte in the middle of acked history — must be a typed
// *wal.CorruptError, not a silent truncation.
func TestWALCorruptionRefusesToOpen(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	db, err := sparqluo.OpenLive(sparqluo.LiveOptions{WALDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	all := lubm.Generate(lubm.DefaultConfig(1))[:400]
	for i := 0; i < len(all); i += 100 {
		if err := db.Insert(all[i : i+100]...); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	seg := walSegments(t, walDir)[0]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01 // mid-stream, not the tail
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = sparqluo.OpenLive(sparqluo.LiveOptions{WALDir: walDir})
	if err == nil {
		t.Fatal("OpenLive accepted a log with mid-stream corruption")
	}
	var ce *wal.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T (%v), want *wal.CorruptError", err, err)
	}
}

// TestEnableLiveUpdatesShardedWrapsErrNotLive: a shard manifest cannot
// be served live, and the refusal must be detectable with errors.Is so
// the server can fail fast at startup.
func TestEnableLiveUpdatesShardedWrapsErrNotLive(t *testing.T) {
	src := sparqluo.Open()
	if err := src.AddAll(lubm.Generate(lubm.DefaultConfig(1))[:500]); err != nil {
		t.Fatal(err)
	}
	src.Freeze()
	manifest := filepath.Join(t.TempDir(), "shards.manifest")
	if _, err := src.WriteShards(manifest, 2); err != nil {
		t.Fatal(err)
	}
	db, err := sparqluo.OpenShards(manifest)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	err = db.EnableLiveUpdates(sparqluo.LiveOptions{})
	if err == nil {
		t.Fatal("EnableLiveUpdates succeeded on a sharded database")
	}
	if !errors.Is(err, sparqluo.ErrNotLive) {
		t.Fatalf("sharded refusal %v does not wrap ErrNotLive", err)
	}
}

// TestHTTPStatsReportWAL checks the operational surface: /stats and
// /healthz expose the journal's segment count, size, sync age and the
// time since the last successful compaction.
func TestHTTPStatsReportWAL(t *testing.T) {
	dir := t.TempDir()
	db, err := sparqluo.OpenLive(sparqluo.LiveOptions{
		SnapshotPath: filepath.Join(dir, "img"),
		WALDir:       filepath.Join(dir, "wal"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Insert(rdf.Triple{
		S: rdf.NewIRI("http://ex/s"), P: rdf.NewIRI("http://ex/p"), O: rdf.NewIRI("http://ex/o"),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sparqluo.NewHandler(db))
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	stats := get("/stats")
	for _, want := range []string{"wal-segments: 1", "wal-bytes: ", "wal-syncs: ", "wal-last-sync-age: ", "since-last-compaction: "} {
		if !strings.Contains(stats, want) {
			t.Errorf("/stats missing %q:\n%s", want, stats)
		}
	}
	healthz := get("/healthz")
	for _, want := range []string{"wal-segments: 1", "wal-last-sync-age: ", "since-last-compaction: "} {
		if !strings.Contains(healthz, want) {
			t.Errorf("/healthz missing %q:\n%s", want, healthz)
		}
	}
}
