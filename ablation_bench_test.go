package sparqluo_test

import (
	"fmt"
	"testing"

	"sparqluo/internal/bench"
	"sparqluo/internal/core"
	"sparqluo/internal/exec"
	"sparqluo/internal/sparql"
	"sparqluo/internal/store"
)

// BenchmarkAblationTransforms isolates the contribution of the two
// BE-tree transformation kinds (DESIGN.md's ablation index): TT with only
// merge, only inject, both, or neither (base), on the Group 1 queries.
// Merge targets UNION queries, inject targets OPTIONAL queries; the
// per-query ablation shows which transformation carries each speedup.
func BenchmarkAblationTransforms(b *testing.B) {
	variants := []struct {
		name                        string
		disableMerge, disableInject bool
	}{
		{"none", true, true},
		{"merge-only", false, true},
		{"inject-only", true, false},
		{"both", false, false},
	}
	for _, dataset := range []string{"LUBM", "DBpedia"} {
		st := bench.StoreFor(dataset)
		for _, q := range bench.Group1(dataset) {
			parsed, err := sparql.Parse(q.Text)
			if err != nil {
				b.Fatal(err)
			}
			tree, err := core.Build(parsed, st)
			if err != nil {
				b.Fatal(err)
			}
			for _, v := range variants {
				name := fmt.Sprintf("%s/%s/%s", dataset, q.ID, v.name)
				v := v
				b.Run(name, func(b *testing.B) {
					benchAblated(b, st, tree, v.disableMerge, v.disableInject)
				})
			}
		}
	}
}

func benchAblated(b *testing.B, st *store.Store, tree *core.Tree, disableMerge, disableInject bool) {
	b.Helper()
	engine := exec.WCOEngine{}
	work := tree.Clone()
	tr := core.NewTransformer(st, engine)
	tr.DisableMerge = disableMerge
	tr.DisableInject = disableInject
	applied := tr.Transform(work)
	var rows int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bag, _ := core.Evaluate(work, st, engine, core.Pruning{})
		rows = bag.Len()
	}
	b.StopTimer()
	b.ReportMetric(float64(applied), "transforms")
	b.ReportMetric(float64(rows), "results")
}

// BenchmarkAblationCPThreshold sweeps the candidate-pruning threshold
// (fractions of the triple count) on the nested-OPTIONAL queries where CP
// matters most, exposing the sensitivity behind §6's 1% default.
func BenchmarkAblationCPThreshold(b *testing.B) {
	fracs := []float64{0.0001, 0.001, 0.01, 0.1}
	for _, dataset := range []string{"LUBM", "DBpedia"} {
		st := bench.StoreFor(dataset)
		for _, q := range bench.Group1(dataset)[2:4] { // q1.3, q1.4
			parsed, err := sparql.Parse(q.Text)
			if err != nil {
				b.Fatal(err)
			}
			tree, err := core.Build(parsed, st)
			if err != nil {
				b.Fatal(err)
			}
			for _, frac := range fracs {
				threshold := int(float64(st.NumTriples()) * frac)
				if threshold < 1 {
					threshold = 1
				}
				name := fmt.Sprintf("%s/%s/frac=%g", dataset, q.ID, frac)
				b.Run(name, func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						core.Evaluate(tree, st, exec.WCOEngine{}, core.Pruning{
							Enabled:        true,
							FixedThreshold: threshold,
						})
					}
				})
			}
		}
	}
}

// TestAblatedTransformersPreserveSemantics guards the ablation variants:
// whatever subset of transformations runs, results must not change.
func TestAblatedTransformersPreserveSemantics(t *testing.T) {
	st := bench.LUBMStore(3)
	engine := exec.WCOEngine{}
	for _, q := range bench.LUBMGroup1 {
		parsed, err := sparql.Parse(q.Text)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := core.Build(parsed, st)
		if err != nil {
			t.Fatal(err)
		}
		base, _ := core.Evaluate(tree, st, engine, core.Pruning{})
		for _, v := range []struct{ dm, di bool }{{true, true}, {false, true}, {true, false}, {false, false}} {
			work := tree.Clone()
			tr := core.NewTransformer(st, engine)
			tr.DisableMerge, tr.DisableInject = v.dm, v.di
			tr.Transform(work)
			got, _ := core.Evaluate(work, st, engine, core.Pruning{})
			if got.Len() != base.Len() {
				t.Errorf("%s ablation %+v: %d rows, want %d", q.ID, v, got.Len(), base.Len())
			}
		}
	}
}
