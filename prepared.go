package sparqluo

import (
	"context"
	"fmt"
	"sync"

	"sparqluo/internal/core"
	"sparqluo/internal/sparql"
	"sparqluo/internal/store"
)

// Prepared is a query that has been parsed and planned once against a
// DB. Each Exec/ExecContext call reuses the built BE-tree — and, per
// engine, the memoized cost-model estimates — paying only the
// per-execution transform+evaluate cost: the parse-once / execute-many
// half of the query API. A Prepared is safe for concurrent use by any
// number of goroutines.
type Prepared struct {
	db       *DB
	plan     *core.Plan
	q        *sparql.Query
	text     string
	defaults queryConfig

	// warmed holds, per engine, a plan copy whose BGP estimates have
	// been memoized with that engine's (deterministic) estimators. The
	// per-execution clone of a transforming strategy inherits the memo,
	// so cost-model sampling — the dominant per-execution cost of
	// TT/Full on selective queries — is paid once per engine, not per
	// call. Built lazily under mu on first use of each engine.
	mu     sync.Mutex
	warmed map[Engine]*core.Plan
}

// Prepare parses a SPARQL-UO SELECT query and builds its execution
// plan. Options given here become the defaults for every Exec; options
// given to Exec override them per call. The DB must be frozen (the
// plan encodes terms against the frozen dictionary).
func (db *DB) Prepare(text string, opts ...Option) (*Prepared, error) {
	if db.st.Stats() == nil {
		return nil, fmt.Errorf("sparqluo: DB must be frozen before preparing queries (call Freeze)")
	}
	cfg := defaultQueryConfig()
	for _, o := range opts {
		o(&cfg)
	}
	q, err := sparql.Parse(text)
	if err != nil {
		return nil, err
	}
	plan, err := core.BuildPlan(q, db.st)
	if err != nil {
		return nil, err
	}
	return &Prepared{db: db, plan: plan, q: q, text: text, defaults: cfg}, nil
}

// Text returns the query text the statement was prepared from.
func (p *Prepared) Text() string { return p.text }

// Vars returns the variable names a result row of this query carries,
// in projection order.
func (p *Prepared) Vars() []string {
	if len(p.q.Select) > 0 {
		return append([]string(nil), p.q.Select...)
	}
	return append([]string(nil), p.plan.Tree.Vars.Names()...)
}

// Exec executes the prepared query. It is ExecContext with a background
// context.
func (p *Prepared) Exec(opts ...Option) (*Results, error) {
	return p.ExecContext(context.Background(), opts...)
}

// ExecContext executes the prepared query under a context, reusing the
// plan built by Prepare. Options override the Prepare-time defaults for
// this execution only; Bind options substitute ground terms for query
// variables before execution (see Bind). Cancelling ctx aborts
// evaluation promptly and returns an error wrapping ctx.Err().
func (p *Prepared) ExecContext(ctx context.Context, opts ...Option) (*Results, error) {
	cfg, plan, bound, err := p.configure(opts)
	if err != nil {
		return nil, err
	}
	res, err := core.ExecPlan(ctx, plan, cfg.engine.impl(), cfg.strategy,
		core.ExecOptions{
			Parallelism: cfg.parallelism,
			Limit:       cfg.limit,
			LimitSet:    cfg.limit >= 0,
			Offset:      cfg.offset,
		})
	if err != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("sparqluo: query aborted: %w", err)
		}
		return nil, err
	}
	// Report each bound parameter as a constant binding of its variable,
	// so templated results are self-describing.
	for idx, v := range bound {
		if v.ID == store.None {
			continue
		}
		res.Bag.SetColumn(idx, v.ID)
	}
	return p.db.newResults(p.q, res), nil
}

// Explain returns the BE-tree plan before and after cost-driven
// transformation, without executing it. It honors WithEngine (the
// transformation is costed with that engine's estimators), WithStrategy
// (Full skips transformations that are equivalent to candidate
// pruning, per §6) and Bind.
func (p *Prepared) Explain(opts ...Option) (before, after string, err error) {
	cfg, plan, _, err := p.configure(opts)
	if err != nil {
		return "", "", err
	}
	before = plan.Tree.String()
	work := plan.Tree.Clone()
	tr := core.NewTransformer(p.db.st, cfg.engine.impl())
	tr.SkipWhenEquivalentToCP = cfg.strategy == Full
	tr.Transform(work)
	return before, work.String(), nil
}

// planFor returns the estimate-warmed plan for an engine, building it
// on first use. Warming happens under mu on a private clone, so
// concurrent executions never observe a half-warmed tree; afterwards
// the plan is read-only (transforming strategies clone it per call).
func (p *Prepared) planFor(eng Engine) *core.Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	if plan, ok := p.warmed[eng]; ok {
		return plan
	}
	plan := p.plan.Clone()
	plan.WarmEstimates(eng.impl())
	if p.warmed == nil {
		p.warmed = make(map[Engine]*core.Plan, 2)
	}
	p.warmed[eng] = plan
	return plan
}

// configure resolves one execution's options against the prepare-time
// defaults and applies any parameter bindings to the plan.
func (p *Prepared) configure(opts []Option) (queryConfig, *core.Plan, map[int]core.BoundValue, error) {
	cfg := p.defaults
	cfg.bindings = nil
	if len(p.defaults.bindings) > 0 {
		cfg.bindings = make(map[string]Term, len(p.defaults.bindings))
		for k, v := range p.defaults.bindings {
			cfg.bindings[k] = v
		}
	}
	for _, o := range opts {
		o(&cfg)
	}
	plan := p.planFor(cfg.engine)
	var bound map[int]core.BoundValue
	if len(cfg.bindings) > 0 {
		bound = make(map[int]core.BoundValue, len(cfg.bindings))
		for name, term := range cfg.bindings {
			idx, ok := plan.Tree.Vars.Lookup(name)
			if !ok {
				return cfg, nil, nil, fmt.Errorf("sparqluo: cannot bind ?%s: query has no such variable", name)
			}
			id, _ := p.db.st.Dict().Lookup(term) // None when absent: patterns become impossible
			bound[idx] = core.BoundValue{ID: id, Term: term}
		}
		plan = plan.Bind(bound)
	}
	return cfg, plan, bound, nil
}
