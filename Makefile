GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race bench fuzz clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Short fuzz smoke for every fuzz target; CI runs this with FUZZTIME=10s.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/sparql/
	$(GO) test -run '^$$' -fuzz FuzzNTriples -fuzztime $(FUZZTIME) ./internal/rdf/

clean:
	$(GO) clean -testcache
