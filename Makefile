GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet fmt-check test race bench bench-store fuzz clean

all: vet fmt-check build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fail fast on formatting drift.
fmt-check:
	@files=$$(gofmt -l .); if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Store microbenchmarks: bulk load+freeze and point-lookup paths. CI runs
# this with -benchtime=1x as a smoke test; use -benchtime=5s locally for
# real numbers.
BENCHTIME ?= 1x
bench-store:
	$(GO) test ./internal/bench -run '^$$' -bench 'LoadFreeze|Store' -benchtime $(BENCHTIME)

# Short fuzz smoke for every fuzz target; CI runs this with FUZZTIME=10s.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/sparql/
	$(GO) test -run '^$$' -fuzz FuzzNTriples -fuzztime $(FUZZTIME) ./internal/rdf/

clean:
	$(GO) clean -testcache
