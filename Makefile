GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet fmt-check test race bench bench-store bench-coldstart bench-serve bench-join bench-topk bench-shard bench-update bench-compact bench-json snapshot-smoke shard-smoke live-smoke wal-smoke fuzz clean

all: vet fmt-check build test

build:
	$(GO) build ./...

# go vet runs its full default analyzer suite over every package
# including _test.go files, so the package examples (among them the
# iter.Seq2 cursor example, ExampleResults_Rows) are part of the gate:
# iterator/range-func misuse that vet or the compiler can see fails CI.
vet:
	$(GO) vet ./...

# Fail fast on formatting drift.
fmt-check:
	@files=$$(gofmt -l .); if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 30m ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Store microbenchmarks: bulk load+freeze and point-lookup paths. CI runs
# this with -benchtime=1x as a smoke test; use -benchtime=5s locally for
# real numbers.
BENCHTIME ?= 1x
bench-store:
	$(GO) test ./internal/bench -run '^$$' -bench 'LoadFreeze|Store' -benchtime $(BENCHTIME)

# Cold-start comparison: snapshot open+mmap vs N-Triples parse+freeze
# on LUBM-13 (the snapshot subsystem's headline number).
bench-coldstart:
	$(GO) test ./internal/bench -run '^$$' -bench 'ColdStart' -benchtime $(BENCHTIME)

# Serving-path comparison on the LUBM-13 repeated-template workload:
# one-shot Query (parse+build+estimate per call) vs prepared execution,
# and HTTP QPS with cold parsing vs a warm plan cache vs the direct
# prepared API. CI runs this with -benchtime=1x as a smoke test; use
# -benchtime=2s locally for real numbers (recorded in the README's
# "Serving at scale" section).
bench-serve:
	$(GO) test . -run '^$$' -bench 'QueryOneShot|PreparedExec|ServeHTTP' -benchtime $(BENCHTIME)

# Join micro-benchmarks: the order-aware merge join vs the hash
# fallback vs sort+merge on order-compatible operands, plus the arena
# Distinct. allocs/op is the headline column (merge touches only the
# output arena). CI runs this with -benchtime=1x as a smoke test; use
# -benchtime=2s locally for real numbers.
bench-join:
	$(GO) test ./internal/algebra -run '^$$' -bench 'Join|Distinct' -benchmem -benchtime $(BENCHTIME)

# Top-k / LIMIT push-down micro-family: full stable sort vs bounded-heap
# top-k, the output-capped streaming merge join, and the LUBM merge-join
# query with and without a 20-row window. The -run pattern also executes
# TestLimitPushdownRowsPulled, which asserts the >= 10x rows-pulled
# reduction the early-termination path exists to deliver. CI runs this
# with -benchtime=1x as a smoke test; use -benchtime=2s locally.
bench-topk:
	$(GO) test ./internal/bench -run 'LimitPushdown' -bench 'TopK' -benchmem -benchtime $(BENCHTIME)

# Shard scaling on the Fig10 workload: the same queries through a
# single store and through 2- and 4-way sharded stores with parallel
# scatter-gather. CI runs this with -benchtime=1x as a smoke test; use
# -benchtime=2s locally for real numbers.
bench-shard:
	$(GO) test ./internal/bench -run '^$$' -bench 'ShardScaling' -benchtime $(BENCHTIME)

# Live-update benchmarks: acknowledged write path (single and batched),
# compaction fold time, and query latency while a writer streams and the
# background compactor runs. The LiveWAL family adds the journaled write
# path under every sync policy plus recovery-replay speed (the
# wal_durability table in BENCH_<n>.json). CI runs this with
# -benchtime=1x as a smoke test; use -benchtime=2s locally for real
# numbers.
bench-update:
	$(GO) test ./internal/bench -run '^$$' -bench 'Live' -benchtime $(BENCHTIME)

# Compaction fold comparison: the pre-fold full re-sort rebuild vs the
# linear merge fold (store.MergeFold) over the same base and delta.
# The compaction_fold table in BENCH_<n>.json extends this across
# several base:delta ratios with byte-identity cross-checking. CI runs
# this with -benchtime=1x as a smoke test; use -benchtime=2s locally
# for real numbers.
bench-compact:
	$(GO) test ./internal/bench -run '^$$' -bench 'CompactionFold' -benchtime $(BENCHTIME)

# Machine-readable bench table: join micro-benchmarks + the Fig10 query
# workload as JSON, committed per PR (BENCH_<n>.json) so the perf
# trajectory is diffable across history. The PR number defaults to the
# CHANGES.md line count (one line per PR — append yours first). CI
# emits to a scratch path with one repetition as a smoke test.
BENCHJSON_OUT ?= BENCH_$(shell wc -l < CHANGES.md | tr -d ' ').json
BENCHJSON_REPS ?= 3
bench-json:
	$(GO) run ./cmd/benchjson -reps $(BENCHJSON_REPS) -out $(BENCHJSON_OUT)

# End-to-end snapshot smoke: generate one dataset in both
# representations (N-Triples and snapshot image), run the same UO query
# against each through sparql-uo's magic auto-detection, and require
# byte-identical solutions. The timing line (line 2) is stripped before
# comparing.
snapshot-smoke:
	@set -e; tmp=$$(mktemp -d); \
	q='PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#> SELECT * WHERE { { ?x ub:advisor ?y . } UNION { ?x ub:headOf ?y . } OPTIONAL { ?y ub:name ?n } }'; \
	$(GO) run ./cmd/datagen -dataset lubm -scale 2 -out $$tmp/g.nt -snapshot $$tmp/g.img; \
	$(GO) run ./cmd/sparql-uo -data $$tmp/g.nt -q "$$q" -limit 0 | tail -n +3 > $$tmp/parsed.out; \
	$(GO) run ./cmd/sparql-uo -data $$tmp/g.img -q "$$q" -limit 0 | tail -n +3 > $$tmp/snap.out; \
	if ! cmp -s $$tmp/parsed.out $$tmp/snap.out; then \
		echo "snapshot-smoke: snapshot results differ from parsed store:"; \
		diff $$tmp/parsed.out $$tmp/snap.out | head -20; rm -rf $$tmp; exit 1; fi; \
	if ! test -s $$tmp/parsed.out; then \
		echo "snapshot-smoke: query returned no solutions"; rm -rf $$tmp; exit 1; fi; \
	echo "snapshot-smoke: $$(wc -l < $$tmp/parsed.out | tr -d ' ') identical solutions from image and N-Triples"; \
	rm -rf $$tmp

# End-to-end sharding smoke: write the same dataset as one snapshot
# image and as a 3-way shard set, run the same query against both
# through sparql-uo's magic auto-detection, and require byte-identical
# solutions — the determinism guarantee, exercised through the CLI.
shard-smoke:
	@set -e; tmp=$$(mktemp -d); \
	q='PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#> SELECT * WHERE { { ?x ub:advisor ?y . } UNION { ?x ub:headOf ?y . } OPTIONAL { ?y ub:name ?n } }'; \
	$(GO) run ./cmd/datagen -dataset lubm -scale 2 -snapshot $$tmp/g.img; \
	$(GO) run ./cmd/datagen -dataset lubm -scale 2 -snapshot $$tmp/g.shards -shards 3; \
	$(GO) run ./cmd/sparql-uo -data $$tmp/g.img -q "$$q" -limit 0 | tail -n +3 > $$tmp/single.out; \
	$(GO) run ./cmd/sparql-uo -data $$tmp/g.shards -q "$$q" -limit 0 | tail -n +3 > $$tmp/sharded.out; \
	if ! cmp -s $$tmp/single.out $$tmp/sharded.out; then \
		echo "shard-smoke: sharded results differ from single store:"; \
		diff $$tmp/single.out $$tmp/sharded.out | head -20; rm -rf $$tmp; exit 1; fi; \
	if ! test -s $$tmp/single.out; then \
		echo "shard-smoke: query returned no solutions"; rm -rf $$tmp; exit 1; fi; \
	echo "shard-smoke: $$(wc -l < $$tmp/single.out | tr -d ' ') identical solutions from sharded and single stores"; \
	rm -rf $$tmp

# End-to-end live smoke: serve a generated base with -live, apply an
# insert and a delete over HTTP with a forced compaction in between, and
# require query results to track every mutation. The compacted snapshot
# image must exist and be non-empty afterwards — the full ingest →
# compact → persist → serve loop, exercised through the real server
# binary and curl.
live-smoke:
	@set -e; tmp=$$(mktemp -d); addr=127.0.0.1:18475; \
	$(GO) run ./cmd/datagen -dataset lubm -scale 1 -out $$tmp/g.nt; \
	$(GO) build -o $$tmp/server ./cmd/sparql-server; \
	$$tmp/server -data $$tmp/g.nt -addr $$addr -live -compact-snapshot $$tmp/live.img >$$tmp/server.log 2>&1 & pid=$$!; \
	trap "kill $$pid 2>/dev/null; rm -rf $$tmp" EXIT; \
	ok=; for i in $$(seq 1 50); do \
		if curl -sf http://$$addr/healthz >/dev/null 2>&1; then ok=1; break; fi; sleep 0.2; done; \
	if [ -z "$$ok" ]; then echo "live-smoke: server did not become ready"; cat $$tmp/server.log; exit 1; fi; \
	query() { curl -sf -G --data-urlencode 'query=SELECT * WHERE { <http://smoke/s> <http://smoke/p> ?o }' http://$$addr/sparql; }; \
	if query | grep -q 'http://smoke/o'; then echo "live-smoke: triple present before insert"; exit 1; fi; \
	printf '<http://smoke/s> <http://smoke/p> <http://smoke/o> .\n' | \
		curl -sf -X POST --data-binary @- "http://$$addr/update?op=insert" | grep -q '"applied":1' || \
		{ echo "live-smoke: insert failed"; exit 1; }; \
	query | grep -q 'http://smoke/o' || { echo "live-smoke: inserted triple not visible"; exit 1; }; \
	curl -sf -X POST http://$$addr/compact | grep -q '"merged"' || { echo "live-smoke: compact failed"; exit 1; }; \
	test -s $$tmp/live.img || { echo "live-smoke: no snapshot image after compaction"; exit 1; }; \
	query | grep -q 'http://smoke/o' || { echo "live-smoke: triple lost by compaction"; exit 1; }; \
	printf '<http://smoke/s> <http://smoke/p> <http://smoke/o> .\n' | \
		curl -sf -X POST --data-binary @- "http://$$addr/update?op=delete" | grep -q '"applied":1' || \
		{ echo "live-smoke: delete failed"; exit 1; }; \
	if query | grep -q 'http://smoke/o'; then echo "live-smoke: deleted triple still visible"; exit 1; fi; \
	curl -sf http://$$addr/healthz | grep -q 'live: true' || { echo "live-smoke: healthz missing live line"; exit 1; }; \
	echo "live-smoke: insert, compact, persist and delete all visible through the server"

# End-to-end WAL crash-recovery smoke: serve a generated base with -live
# and a WAL, ingest triples over HTTP (every one acked durable under
# sync=always), kill -9 the server, restart it on the same directories,
# and require every acked triple to be queryable with byte-identical
# JSON to a never-crashed server that applied the same writes. This is
# the durability contract, exercised through the real binary and a real
# SIGKILL.
wal-smoke:
	@set -e; tmp=$$(mktemp -d); addr=127.0.0.1:18476; \
	q='SELECT * WHERE { ?s <http://smoke/p> ?o }'; \
	$(GO) run ./cmd/datagen -dataset lubm -scale 1 -out $$tmp/g.nt; \
	$(GO) build -o $$tmp/server ./cmd/sparql-server; \
	wait_ready() { for i in $$(seq 1 50); do \
		if curl -sf http://$$addr/healthz >/dev/null 2>&1; then return 0; fi; sleep 0.2; done; \
		echo "wal-smoke: server did not become ready"; cat $$tmp/server.log; return 1; }; \
	ingest() { for i in 1 2 3; do \
		printf '<http://smoke/s%s> <http://smoke/p> <http://smoke/o%s> .\n' $$i $$i | \
			curl -sf -X POST --data-binary @- "http://$$addr/update?op=insert" | grep -q '"applied":1' || \
			{ echo "wal-smoke: insert $$i not acked"; return 1; } done; \
		printf '<http://smoke/s2> <http://smoke/p> <http://smoke/o2> .\n' | \
			curl -sf -X POST --data-binary @- "http://$$addr/update?op=delete" | grep -q '"applied":1' || \
			{ echo "wal-smoke: delete not acked"; return 1; } }; \
	query() { curl -sf -G --data-urlencode "query=$$q" http://$$addr/sparql; }; \
	$$tmp/server -data $$tmp/g.nt -addr $$addr -live -wal-dir $$tmp/wal -wal-sync always \
		-compact-snapshot $$tmp/live.img >$$tmp/server.log 2>&1 & pid=$$!; \
	trap 'kill -9 $$pid 2>/dev/null || true; rm -rf '"$$tmp" EXIT; \
	wait_ready; ingest; \
	kill -9 $$pid; wait $$pid 2>/dev/null || true; \
	$$tmp/server -data $$tmp/g.nt -addr $$addr -live -wal-dir $$tmp/wal -wal-sync always \
		-compact-snapshot $$tmp/live.img >$$tmp/server.log 2>&1 & pid=$$!; \
	wait_ready; \
	grep -Eq 'wal enabled .*replayed [1-9][0-9]* batches' $$tmp/server.log || \
		{ echo "wal-smoke: server did not replay the journal"; cat $$tmp/server.log; exit 1; }; \
	query > $$tmp/recovered.json; \
	kill -9 $$pid; wait $$pid 2>/dev/null || true; \
	$$tmp/server -data $$tmp/g.nt -addr $$addr -live >$$tmp/server.log 2>&1 & pid=$$!; \
	wait_ready; ingest; \
	query > $$tmp/reference.json; \
	if ! cmp -s $$tmp/recovered.json $$tmp/reference.json; then \
		echo "wal-smoke: recovered results differ from never-crashed server:"; \
		diff $$tmp/recovered.json $$tmp/reference.json | head -20; exit 1; fi; \
	grep -q 'http://smoke/o1' $$tmp/recovered.json || { echo "wal-smoke: acked triple lost"; exit 1; }; \
	grep -q 'http://smoke/o3' $$tmp/recovered.json || { echo "wal-smoke: acked triple lost"; exit 1; }; \
	if grep -q 'http://smoke/o2' $$tmp/recovered.json; then \
		echo "wal-smoke: acked delete resurrected"; exit 1; fi; \
	echo "wal-smoke: all acked writes survived kill -9, byte-identical to a never-crashed server"

# Short fuzz smoke for every fuzz target; CI runs this with FUZZTIME=10s.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/sparql/
	$(GO) test -run '^$$' -fuzz FuzzNTriples -fuzztime $(FUZZTIME) ./internal/rdf/
	$(GO) test -run '^$$' -fuzz FuzzSnapshotLoad -fuzztime $(FUZZTIME) ./internal/snapshot/
	$(GO) test -run '^$$' -fuzz FuzzManifest -fuzztime $(FUZZTIME) ./internal/snapshot/
	$(GO) test -run '^$$' -fuzz FuzzWALReplay -fuzztime $(FUZZTIME) ./internal/wal/

clean:
	$(GO) clean -testcache
