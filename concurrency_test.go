package sparqluo_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"sparqluo"
	"sparqluo/internal/lubm"
)

// TestConcurrentQueries backs the documented guarantee that a frozen DB
// is safe for concurrent readers: many goroutines run all strategies and
// engines against one store simultaneously (run with -race to verify).
func TestConcurrentQueries(t *testing.T) {
	db := sparqluo.Open()
	db.AddAll(lubm.Generate(lubm.DefaultConfig(2)))
	db.Freeze()

	const q = `
		PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
		SELECT * WHERE {
			?x ub:worksFor ?d .
			{ ?x ub:headOf ?d } UNION { ?p ub:publicationAuthor ?x }
			OPTIONAL { ?x ub:emailAddress ?e }
		}`

	// Establish the expected result count once.
	ref, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Len()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			strat := []sparqluo.Strategy{sparqluo.Base, sparqluo.TT, sparqluo.CP, sparqluo.Full}[i%4]
			eng := []sparqluo.Engine{sparqluo.WCO, sparqluo.BinaryJoin}[i%2]
			for rep := 0; rep < 4; rep++ {
				res, err := db.Query(q, sparqluo.WithStrategy(strat), sparqluo.WithEngine(eng))
				if err != nil {
					errs <- err
					return
				}
				if res.Len() != want {
					errs <- errMismatch{got: res.Len(), want: want}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type errMismatch struct{ got, want int }

func (e errMismatch) Error() string {
	return "concurrent query result mismatch"
}

// lubmTestDB builds a shared frozen LUBM database for the parallel tests.
func lubmTestDB(t testing.TB, universities int) *sparqluo.DB {
	t.Helper()
	db := sparqluo.Open()
	db.AddAll(lubm.Generate(lubm.DefaultConfig(universities)))
	db.Freeze()
	return db
}

// parallelTestQuery mixes UNION branches, nested groups and stacked
// OPTIONALs so that both fan-out sites of the evaluator are exercised.
const parallelTestQuery = `
	PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
	SELECT * WHERE {
		?x ub:worksFor ?d .
		{ ?x ub:headOf ?d } UNION { ?p ub:publicationAuthor ?x } UNION { ?x ub:teacherOf ?c }
		OPTIONAL { ?x ub:emailAddress ?e }
		OPTIONAL { ?x ub:telephone ?tel OPTIONAL { ?x ub:researchInterest ?ri } }
	}`

// TestParallelSequentialEquivalence locks down the tentpole guarantee:
// for every strategy × engine combination, parallel evaluation returns a
// byte-identical W3C JSON document (same solutions, same order) and the
// same join-space instrumentation as the sequential run.
func TestParallelSequentialEquivalence(t *testing.T) {
	db := lubmTestDB(t, 2)
	for _, strat := range []sparqluo.Strategy{sparqluo.Base, sparqluo.TT, sparqluo.CP, sparqluo.Full} {
		for _, eng := range []sparqluo.Engine{sparqluo.WCO, sparqluo.BinaryJoin} {
			name := fmt.Sprintf("strat=%v/engine=%d", strat, eng)
			t.Run(name, func(t *testing.T) {
				seq, err := db.Query(parallelTestQuery,
					sparqluo.WithStrategy(strat), sparqluo.WithEngine(eng), sparqluo.WithParallelism(1))
				if err != nil {
					t.Fatal(err)
				}
				par, err := db.Query(parallelTestQuery,
					sparqluo.WithStrategy(strat), sparqluo.WithEngine(eng), sparqluo.WithParallelism(8))
				if err != nil {
					t.Fatal(err)
				}
				var seqJSON, parJSON strings.Builder
				if err := seq.WriteJSON(&seqJSON); err != nil {
					t.Fatal(err)
				}
				if err := par.WriteJSON(&parJSON); err != nil {
					t.Fatal(err)
				}
				if seqJSON.String() != parJSON.String() {
					t.Errorf("parallel JSON differs from sequential (seq %d rows, par %d rows)",
						seq.Len(), par.Len())
				}
				if s, p := seq.JoinSpace(), par.JoinSpace(); s != p {
					t.Errorf("join space diverged: sequential %v, parallel %v", s, p)
				}
			})
		}
	}
}

// TestQueryContextCancellation checks both cancellation paths: a context
// that is already expired fails before evaluation starts, and a deadline
// expiring mid-join aborts the engines promptly instead of letting a
// cross-product run to completion.
func TestQueryContextCancellation(t *testing.T) {
	db := lubmTestDB(t, 1)
	// This cross product is far too large to ever materialize; only
	// cancellation can bring the call back.
	const heavy = `SELECT * WHERE { ?a ?p ?b . ?c ?q ?d . ?e ?r ?f }`

	t.Run("pre-expired", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := db.QueryContext(ctx, parallelTestQuery)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	})

	for _, eng := range []sparqluo.Engine{sparqluo.WCO, sparqluo.BinaryJoin} {
		eng := eng
		t.Run(fmt.Sprintf("mid-join/engine=%d", eng), func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
			defer cancel()
			start := time.Now()
			_, err := db.QueryContext(ctx, heavy, sparqluo.WithEngine(eng))
			elapsed := time.Since(start)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want context.DeadlineExceeded", err)
			}
			// Generous bound: the engines poll every few thousand rows, so
			// even loaded CI machines return within a couple of seconds.
			if elapsed > 5*time.Second {
				t.Errorf("cancellation took %v, want prompt return", elapsed)
			}
		})
	}
}

// nestedUnionQuery builds a query whose BE-tree fans out at every level:
// depth levels of two-branch UNIONs with an OPTIONAL riding on each
// group, yielding 2^depth leaves competing for pool tokens.
func nestedUnionQuery(depth int) string {
	var build func(d int) string
	build = func(d int) string {
		if d == 0 {
			return `{ ?x ub:worksFor ?d }`
		}
		inner := build(d - 1)
		return fmt.Sprintf(`{ %s UNION %s OPTIONAL { ?x ub:emailAddress ?e } }`, inner, inner)
	}
	return `PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
		SELECT * WHERE ` + build(depth)
}

// TestWorkerPoolSaturation floods a deliberately tiny worker pool with a
// BE-tree whose fan-out greatly exceeds it, from many goroutines at
// once. The pool's non-blocking token acquisition must keep every query
// making progress: a deadlock here trips the watchdog. Run with -race.
func TestWorkerPoolSaturation(t *testing.T) {
	db := lubmTestDB(t, 1)
	query := nestedUnionQuery(4) // 16 leaf groups + optional at every level

	ref, err := db.Query(query, sparqluo.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Len()

	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			res, err := db.Query(query, sparqluo.WithParallelism(2))
			if err == nil && res.Len() != want {
				err = errMismatch{got: res.Len(), want: want}
			}
			done <- err
		}()
	}
	watchdog := time.After(120 * time.Second)
	for i := 0; i < 8; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-watchdog:
			t.Fatal("worker pool deadlocked: queries did not complete")
		}
	}
}

// TestLiveConcurrentMutation races writers (atomic insert and delete
// batches), readers (both engines, mixed strategies), and the
// background compactor against one live database; run with -race to
// verify the overlay's synchronization. Each writer owns a disjoint
// partition of the op stream and every op reuses terms already in the
// base dictionary, so the final state is deterministic regardless of
// interleaving — after quiescing, the live store must answer
// byte-identically to a frozen store built directly from the surviving
// triples.
func TestLiveConcurrentMutation(t *testing.T) {
	base := lubm.Generate(lubm.DefaultConfig(2))
	db := sparqluo.Open()
	if err := db.AddAll(base); err != nil {
		t.Fatal(err)
	}
	if err := db.EnableLiveUpdates(sparqluo.LiveOptions{}); err != nil {
		t.Fatal(err)
	}
	stop, err := db.StartCompaction(sparqluo.CompactionOptions{
		Interval:  5 * time.Millisecond,
		Threshold: 200,
		OnError:   func(err error) { t.Error(err) },
	})
	if err != nil {
		t.Fatal(err)
	}

	// Partition the op stream up front: writer g deletes every 7th base
	// triple with (i/7)%writers == g and inserts recombinations of
	// existing terms (so the dictionary never grows and the reference
	// below can replay it exactly). Inserts never collide with deletes,
	// so (base \ deletes) ∪ inserts is the unique final state.
	tripleKey := func(tr sparqluo.Triple) string {
		return tr.S.String() + "\x00" + tr.P.String() + "\x00" + tr.O.String()
	}
	const writers = 4
	delSet := make(map[string]bool)
	dels := make([][]sparqluo.Triple, writers)
	for i := 3; i < len(base); i += 7 {
		g := (i / 7) % writers
		dels[g] = append(dels[g], base[i])
		delSet[tripleKey(base[i])] = true
	}
	ins := make([][]sparqluo.Triple, writers)
	var insAll []sparqluo.Triple
	for i := 0; i+1 < len(base); i += 5 {
		cand := sparqluo.Triple{S: base[i].S, P: base[i+1].P, O: base[i+1].O}
		if delSet[tripleKey(cand)] {
			continue
		}
		g := (i / 5) % writers
		ins[g] = append(ins[g], cand)
		insAll = append(insAll, cand)
	}

	var writerWG, readerWG sync.WaitGroup
	for g := 0; g < writers; g++ {
		g := g
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			di, ii := dels[g], ins[g]
			for len(di) > 0 || len(ii) > 0 {
				if n := min(9, len(ii)); n > 0 {
					if err := db.Insert(ii[:n]...); err != nil {
						t.Error(err)
						return
					}
					ii = ii[n:]
				}
				if n := min(7, len(di)); n > 0 {
					if err := db.Delete(di[:n]...); err != nil {
						t.Error(err)
						return
					}
					di = di[n:]
				}
			}
		}()
	}
	readersDone := make(chan struct{})
	for r := 0; r < 2; r++ {
		r := r
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			eng := []sparqluo.Engine{sparqluo.WCO, sparqluo.BinaryJoin}[r%2]
			for {
				select {
				case <-readersDone:
					return
				default:
				}
				if _, err := db.Query(parallelTestQuery, sparqluo.WithEngine(eng)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	writerWG.Wait()
	close(readersDone)
	readerWG.Wait()
	stop()
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	var final []sparqluo.Triple
	for _, tr := range base {
		if !delSet[tripleKey(tr)] {
			final = append(final, tr)
		}
	}
	final = append(final, insAll...)
	ref := liveReference(base, nil, final)
	if db.NumTriples() != ref.NumTriples() {
		t.Fatalf("NumTriples = %d, want %d", db.NumTriples(), ref.NumTriples())
	}
	for _, strat := range []sparqluo.Strategy{sparqluo.Base, sparqluo.Full} {
		for _, eng := range []sparqluo.Engine{sparqluo.WCO, sparqluo.BinaryJoin} {
			opts := []sparqluo.Option{sparqluo.WithStrategy(strat), sparqluo.WithEngine(eng)}
			want := queryJSON(t, ref, parallelTestQuery, opts)
			got := queryJSON(t, db, parallelTestQuery, opts)
			if !bytes.Equal(want, got) {
				t.Errorf("%v/%v: quiesced live store differs from frozen reference", strat, eng)
			}
		}
	}
}
