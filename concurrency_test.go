package sparqluo_test

import (
	"sync"
	"testing"

	"sparqluo"
	"sparqluo/internal/lubm"
)

// TestConcurrentQueries backs the documented guarantee that a frozen DB
// is safe for concurrent readers: many goroutines run all strategies and
// engines against one store simultaneously (run with -race to verify).
func TestConcurrentQueries(t *testing.T) {
	db := sparqluo.Open()
	db.AddAll(lubm.Generate(lubm.DefaultConfig(2)))
	db.Freeze()

	const q = `
		PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
		SELECT * WHERE {
			?x ub:worksFor ?d .
			{ ?x ub:headOf ?d } UNION { ?p ub:publicationAuthor ?x }
			OPTIONAL { ?x ub:emailAddress ?e }
		}`

	// Establish the expected result count once.
	ref, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Len()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			strat := []sparqluo.Strategy{sparqluo.Base, sparqluo.TT, sparqluo.CP, sparqluo.Full}[i%4]
			eng := []sparqluo.Engine{sparqluo.WCO, sparqluo.BinaryJoin}[i%2]
			for rep := 0; rep < 4; rep++ {
				res, err := db.Query(q, sparqluo.WithStrategy(strat), sparqluo.WithEngine(eng))
				if err != nil {
					errs <- err
					return
				}
				if res.Len() != want {
					errs <- errMismatch{got: res.Len(), want: want}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type errMismatch struct{ got, want int }

func (e errMismatch) Error() string {
	return "concurrent query result mismatch"
}
