package sparqluo

import (
	"errors"
	"fmt"
	"io"
	"time"

	"sparqluo/internal/overlay"
	"sparqluo/internal/rdf"
	"sparqluo/internal/snapshot"
	"sparqluo/internal/store"
	"sparqluo/internal/wal"
)

// ErrFrozen is returned by write APIs (Add, AddAll, Load) on a frozen
// or sharded database without live updates enabled. It replaces the
// historical panic: a serving process must be able to reject a stray
// write without dying.
var ErrFrozen = store.ErrFrozen

// ErrNotLive is returned by live-only APIs (Insert, Delete, Flush,
// StartCompaction) on a database without live updates enabled, and
// wrapped by EnableLiveUpdates when the database cannot be made live
// (sharded databases have no single store to layer the overlay over).
var ErrNotLive = errors.New("sparqluo: database is not live (call EnableLiveUpdates or OpenLive)")

// LiveStats is a point-in-time picture of the live-update overlay:
// memtable and tombstone counts, the write epoch, compaction
// bookkeeping, and (with a WAL attached) the journal's shape. Reported
// by DB.LiveStats and the /stats and /healthz endpoints.
type LiveStats = overlay.LiveStats

// WALStats is the journal slice of LiveStats: segment count and bytes,
// append/sync counters, and what recovery found at open.
type WALStats = overlay.JournalStats

// CompactionStats describes one completed compaction.
type CompactionStats = overlay.CompactionStats

// WALSyncPolicy selects when acknowledged write batches are fsynced;
// see the wal package for the exact durability contract of each level.
type WALSyncPolicy = wal.SyncPolicy

const (
	// WALSyncAlways fsyncs (group-committed) before a write returns:
	// an acknowledged batch survives power loss. The default.
	WALSyncAlways = wal.SyncAlways
	// WALSyncInterval fsyncs on a background timer: bounded loss window
	// under power failure, none under a bare process crash.
	WALSyncInterval = wal.SyncInterval
	// WALSyncNever leaves flushing to the OS.
	WALSyncNever = wal.SyncNever
)

// ParseWALSyncPolicy parses "always", "interval" or "never" (flag and
// config syntax; "" means always).
func ParseWALSyncPolicy(s string) (WALSyncPolicy, error) {
	return wal.ParseSyncPolicy(s)
}

// LiveOptions configures live updates on a database.
type LiveOptions struct {
	// SnapshotPath, if non-empty, makes every compaction persist the
	// compacted base image there with the atomic snapshot writer
	// (temp+fsync+rename) before swapping it in. A failed persist
	// aborts the compaction and keeps both the old in-memory base and
	// the old on-disk image serving; the pending writes stay in the
	// memtable for a later retry.
	SnapshotPath string

	// WALDir, if non-empty, attaches a write-ahead log in that
	// directory: every Insert/Delete batch is journaled before it is
	// acknowledged, opening the database replays whatever the log holds
	// (crash recovery), and compactions retire journal segments once
	// their batches live in a durably persisted image. Pair it with
	// SnapshotPath — the snapshot bounds replay time, the log closes
	// the durability window between compactions.
	WALDir string
	// WALSync is the journal's durability policy (default WALSyncAlways).
	WALSync WALSyncPolicy
	// WALFlushInterval is the background fsync period under
	// WALSyncInterval (default 100ms; ignored otherwise).
	WALFlushInterval time.Duration
	// WALSegmentBytes rotates journal segments at this size
	// (default 64 MiB).
	WALSegmentBytes int64
}

// RecoveryStats reports what the WAL replay recovered when the database
// was opened, via DB.Recovery.
type RecoveryStats struct {
	Batches        int   // journal records replayed
	Inserted       int   // triples in replayed insert batches
	Deleted        int   // triples in replayed delete batches
	TruncatedBytes int64 // torn-tail bytes discarded (the unacknowledged write in flight at the crash)
}

// CompactionOptions configures the background compactor started by
// DB.StartCompaction.
type CompactionOptions struct {
	// Interval is the maximum time the memtable may stay dirty before
	// a compaction runs (default 30s).
	Interval time.Duration
	// Threshold is the pending-operation count that triggers an
	// immediate compaction (default 10000).
	Threshold int
	// OnError, if non-nil, receives background compaction failures.
	// The compactor keeps running; the memtable retains the writes.
	OnError func(error)
}

// OpenLive returns a live database: Insert/Delete work immediately,
// queries may run concurrently with writes, and a background compactor
// can fold the memtable into the frozen base. With opts.WALDir set it
// is also the crash-recovery entry point: surviving journal batches are
// replayed into the memtable before the database is returned (inspect
// DB.Recovery for what came back), and every subsequent write is
// journaled before it is acknowledged.
func OpenLive(opts LiveOptions) (*DB, error) {
	ls := overlay.New(nil, overlay.Options{SnapshotPath: opts.SnapshotPath})
	db := &DB{st: ls}
	if err := db.attachWAL(ls, opts); err != nil {
		return nil, err
	}
	return db, nil
}

// EnableLiveUpdates layers the mutable delta overlay over the
// database's current store, turning a loaded (or snapshot-opened)
// read-only database into a live one: subsequent Insert/Delete calls
// land in a memtable that queries see merged with the frozen base,
// snapshot-isolated per query. The database is frozen first if it is
// not already. With opts.WALDir set, surviving journal batches are
// replayed on top of the base before the call returns.
//
// Call it during startup, before the database is shared with other
// goroutines: the store swap itself is not synchronized. Sharded
// databases are not supported (shard-aware write routing is an open
// roadmap slice); the returned error wraps ErrNotLive so callers can
// fail fast with errors.Is.
func (db *DB) EnableLiveUpdates(opts LiveOptions) error {
	if db.Live() {
		return fmt.Errorf("sparqluo: live updates already enabled")
	}
	m := db.mem()
	if m == nil {
		return fmt.Errorf("sparqluo: live updates on a sharded database are not supported: %w", ErrNotLive)
	}
	if err := m.Freeze(); err != nil {
		return fmt.Errorf("sparqluo: freezing base for live updates: %w", err)
	}
	ls := overlay.New(m, overlay.Options{SnapshotPath: opts.SnapshotPath})
	if err := db.attachWAL(ls, opts); err != nil {
		return err
	}
	db.st = ls
	return nil
}

// attachWAL opens the journal named by opts.WALDir (a no-op when
// unset), replays its surviving batches into ls, and wires it in as the
// overlay's durability hook. Replay happens before SetJournal, so
// recovered batches are not re-journaled — they already live in the
// segments that carried them here, and the next persisted compaction
// retires them.
func (db *DB) attachWAL(ls *overlay.LiveStore, opts LiveOptions) error {
	if opts.WALDir == "" {
		return nil
	}
	wlog, err := wal.Open(opts.WALDir, wal.Options{
		Sync:         opts.WALSync,
		Interval:     opts.WALFlushInterval,
		SegmentBytes: opts.WALSegmentBytes,
	})
	if err != nil {
		return err
	}
	var rec RecoveryStats
	err = wlog.Replay(func(r wal.Record) error {
		rec.Batches++
		switch r.Kind {
		case wal.Insert:
			rec.Inserted += len(r.Triples)
			return ls.Insert(r.Triples...)
		default:
			rec.Deleted += len(r.Triples)
			return ls.Delete(r.Triples...)
		}
	})
	if err != nil {
		wlog.Close()
		return fmt.Errorf("sparqluo: wal replay: %w", err)
	}
	rec.TruncatedBytes = wlog.Stats().TruncatedBytes
	ls.SetJournal(walJournal{wlog})
	db.wal = wlog
	db.recovery = &rec
	return nil
}

// Recovery reports what the WAL replay recovered when this database was
// opened; ok is false when no WAL is attached.
func (db *DB) Recovery() (rec RecoveryStats, ok bool) {
	if db.recovery == nil {
		return RecoveryStats{}, false
	}
	return *db.recovery, true
}

// walJournal adapts *wal.Log to the overlay's Journal hook.
type walJournal struct{ log *wal.Log }

func (j walJournal) Append(del bool, ts []rdf.Triple) (uint64, error) {
	kind := wal.Insert
	if del {
		kind = wal.Delete
	}
	return j.log.Append(kind, ts)
}

func (j walJournal) Commit(seq uint64) error         { return j.log.Sync(seq) }
func (j walJournal) Checkpoint() (uint64, error)     { return j.log.Cut() }
func (j walJournal) Retire(mark uint64) (int, error) { return j.log.Retire(mark) }

func (j walJournal) Stats() overlay.JournalStats {
	s := j.log.Stats()
	return overlay.JournalStats{
		Segments:       s.Segments,
		Bytes:          s.Bytes,
		Appended:       s.Appended,
		Syncs:          s.Syncs,
		LastSync:       s.LastSync,
		LastBatch:      s.LastBatch,
		Replayed:       s.Replayed,
		TruncatedBytes: s.TruncatedBytes,
	}
}

// Live reports whether live updates are enabled.
func (db *DB) Live() bool { return db.liveStore() != nil }

// liveStore returns the live overlay backing the database, or nil.
func (db *DB) liveStore() *overlay.LiveStore {
	ls, _ := db.st.(*overlay.LiveStore)
	return ls
}

// Insert adds the given triples as one atomic batch: a query running
// concurrently sees either none or all of them (snapshot isolation by
// epoch). Inserting a triple that already exists is a no-op (RDF set
// semantics). With a WAL attached, a nil return means the batch is
// durable per the configured sync policy. Requires live updates.
func (db *DB) Insert(ts ...Triple) error {
	ls := db.liveStore()
	if ls == nil {
		return ErrNotLive
	}
	return ls.Insert(ts...)
}

// Delete removes the given triples as one atomic batch, by writing
// tombstones that hide the targets immediately and annihilate them at
// the next compaction. Deleting an absent triple is a no-op. With a WAL
// attached, a nil return means the batch is durable per the configured
// sync policy. Requires live updates.
func (db *DB) Delete(ts ...Triple) error {
	ls := db.liveStore()
	if ls == nil {
		return ErrNotLive
	}
	return ls.Delete(ts...)
}

// InsertNTriples decodes an N-Triples document (with optional
// Turtle-style @prefix directives) and inserts every triple as one
// atomic batch, returning the number of triples decoded. The HTTP
// POST /update endpoint is a thin wrapper over it.
func (db *DB) InsertNTriples(r io.Reader) (int, error) {
	ls := db.liveStore()
	if ls == nil {
		return 0, ErrNotLive
	}
	ts, err := decodeAll(r)
	if err != nil {
		return 0, err
	}
	if err := ls.Insert(ts...); err != nil {
		return 0, err
	}
	return len(ts), nil
}

// DeleteNTriples decodes an N-Triples document and deletes every triple
// as one atomic batch, returning the number of triples decoded.
func (db *DB) DeleteNTriples(r io.Reader) (int, error) {
	ls := db.liveStore()
	if ls == nil {
		return 0, ErrNotLive
	}
	ts, err := decodeAll(r)
	if err != nil {
		return 0, err
	}
	if err := ls.Delete(ts...); err != nil {
		return 0, err
	}
	return len(ts), nil
}

func decodeAll(r io.Reader) ([]Triple, error) {
	d := rdf.NewDecoder(r)
	var ts []Triple
	for {
		t, err := d.Decode()
		if err == io.EOF {
			return ts, nil
		}
		if err != nil {
			return nil, err
		}
		ts = append(ts, t)
	}
}

// Flush synchronously compacts the memtable into the frozen base:
// tombstones annihilate their targets and the survivors are folded in
// with the store's linear merge fold (store.MergeFold — each sorted
// permutation of the base is merged with the sorted delta in one pass,
// so fold cost is proportional to base + delta with no re-sort of the
// base), and (with a SnapshotPath configured) the new base is
// persisted atomically before the swap.
// After a Flush with no concurrent writers the database is quiesced —
// every read serves the frozen base's zero-copy paths, and results are
// byte-identical to a freshly frozen store over the same triples.
// Requires live updates.
func (db *DB) Flush() error {
	_, err := db.Compact()
	return err
}

// Compact is Flush with the compaction's statistics: how many triples
// the new base holds, how many net inserts and tombstones were folded
// in, how long it took, whether an image was persisted, and how many
// WAL segments the persist let it retire. Requires live updates.
func (db *DB) Compact() (CompactionStats, error) {
	ls := db.liveStore()
	if ls == nil {
		return CompactionStats{}, ErrNotLive
	}
	return ls.Compact()
}

// StartCompaction runs the background compactor: the memtable is
// folded into the base whenever it holds opts.Threshold pending
// operations, and in any case within opts.Interval of turning dirty.
// In-flight queries finish on the view they pinned; the only
// reader-visible pause is the base pointer swap. The returned stop
// function (idempotent) halts the compactor and waits for an in-flight
// compaction to finish. Requires live updates.
func (db *DB) StartCompaction(opts CompactionOptions) (stop func(), err error) {
	ls := db.liveStore()
	if ls == nil {
		return nil, ErrNotLive
	}
	return ls.StartCompaction(overlay.CompactionOptions{
		Interval:  opts.Interval,
		Threshold: opts.Threshold,
		OnError:   opts.OnError,
	}), nil
}

// LiveStats returns overlay statistics and whether the database is
// live.
func (db *DB) LiveStats() (LiveStats, bool) {
	ls := db.liveStore()
	if ls == nil {
		return LiveStats{}, false
	}
	return ls.LiveStats(), true
}

// FromStore wraps an existing single store in a DB, for advanced
// integrations and tests that build stores directly (e.g. with
// store.FromTriples). The store should be frozen before querying.
func FromStore(st *store.Store) *DB { return &DB{st: st} }

// writeLiveSnapshot flushes the memtable and persists the quiesced
// base; see DB.WriteSnapshot.
func (db *DB) writeLiveSnapshot(path string) error {
	ls := db.liveStore()
	if err := ls.Flush(); err != nil {
		return err
	}
	return snapshot.WriteFile(path, ls.Base())
}
