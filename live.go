package sparqluo

import (
	"errors"
	"fmt"
	"io"
	"time"

	"sparqluo/internal/overlay"
	"sparqluo/internal/rdf"
	"sparqluo/internal/snapshot"
	"sparqluo/internal/store"
)

// ErrFrozen is returned by write APIs (Add, AddAll, Load) on a frozen
// or sharded database without live updates enabled. It replaces the
// historical panic: a serving process must be able to reject a stray
// write without dying.
var ErrFrozen = store.ErrFrozen

// ErrNotLive is returned by live-only APIs (Insert, Delete, Flush,
// StartCompaction) on a database without live updates enabled.
var ErrNotLive = errors.New("sparqluo: database is not live (call EnableLiveUpdates or OpenLive)")

// LiveStats is a point-in-time picture of the live-update overlay:
// memtable and tombstone counts, the write epoch, and compaction
// bookkeeping. Reported by DB.LiveStats and the /stats and /healthz
// endpoints.
type LiveStats = overlay.LiveStats

// CompactionStats describes one completed compaction.
type CompactionStats = overlay.CompactionStats

// LiveOptions configures live updates on a database.
type LiveOptions struct {
	// SnapshotPath, if non-empty, makes every compaction persist the
	// compacted base image there with the atomic snapshot writer
	// (temp+fsync+rename) before swapping it in. A failed persist
	// aborts the compaction and keeps both the old in-memory base and
	// the old on-disk image serving; the pending writes stay in the
	// memtable for a later retry.
	SnapshotPath string
}

// CompactionOptions configures the background compactor started by
// DB.StartCompaction.
type CompactionOptions struct {
	// Interval is the maximum time the memtable may stay dirty before
	// a compaction runs (default 30s).
	Interval time.Duration
	// Threshold is the pending-operation count that triggers an
	// immediate compaction (default 10000).
	Threshold int
	// OnError, if non-nil, receives background compaction failures.
	// The compactor keeps running; the memtable retains the writes.
	OnError func(error)
}

// OpenLive returns an empty live database: Insert/Delete work
// immediately, queries may run concurrently with writes, and a
// background compactor can fold the memtable into the frozen base.
func OpenLive(opts LiveOptions) *DB {
	return &DB{st: overlay.New(nil, overlay.Options{SnapshotPath: opts.SnapshotPath})}
}

// EnableLiveUpdates layers the mutable delta overlay over the
// database's current store, turning a loaded (or snapshot-opened)
// read-only database into a live one: subsequent Insert/Delete calls
// land in a memtable that queries see merged with the frozen base,
// snapshot-isolated per query. The database is frozen first if it is
// not already.
//
// Call it during startup, before the database is shared with other
// goroutines: the store swap itself is not synchronized. Sharded
// databases are not supported (shard-aware write routing is an open
// roadmap slice).
func (db *DB) EnableLiveUpdates(opts LiveOptions) error {
	if db.Live() {
		return fmt.Errorf("sparqluo: live updates already enabled")
	}
	m := db.mem()
	if m == nil {
		return fmt.Errorf("sparqluo: live updates on a sharded database are not supported")
	}
	m.Freeze()
	db.st = overlay.New(m, overlay.Options{SnapshotPath: opts.SnapshotPath})
	return nil
}

// Live reports whether live updates are enabled.
func (db *DB) Live() bool { return db.liveStore() != nil }

// liveStore returns the live overlay backing the database, or nil.
func (db *DB) liveStore() *overlay.LiveStore {
	ls, _ := db.st.(*overlay.LiveStore)
	return ls
}

// Insert adds the given triples as one atomic batch: a query running
// concurrently sees either none or all of them (snapshot isolation by
// epoch). Inserting a triple that already exists is a no-op (RDF set
// semantics). Requires live updates.
func (db *DB) Insert(ts ...Triple) error {
	ls := db.liveStore()
	if ls == nil {
		return ErrNotLive
	}
	ls.Insert(ts...)
	return nil
}

// Delete removes the given triples as one atomic batch, by writing
// tombstones that hide the targets immediately and annihilate them at
// the next compaction. Deleting an absent triple is a no-op. Requires
// live updates.
func (db *DB) Delete(ts ...Triple) error {
	ls := db.liveStore()
	if ls == nil {
		return ErrNotLive
	}
	ls.Delete(ts...)
	return nil
}

// InsertNTriples decodes an N-Triples document (with optional
// Turtle-style @prefix directives) and inserts every triple as one
// atomic batch, returning the number of triples decoded. The HTTP
// POST /update endpoint is a thin wrapper over it.
func (db *DB) InsertNTriples(r io.Reader) (int, error) {
	ls := db.liveStore()
	if ls == nil {
		return 0, ErrNotLive
	}
	ts, err := decodeAll(r)
	if err != nil {
		return 0, err
	}
	ls.Insert(ts...)
	return len(ts), nil
}

// DeleteNTriples decodes an N-Triples document and deletes every triple
// as one atomic batch, returning the number of triples decoded.
func (db *DB) DeleteNTriples(r io.Reader) (int, error) {
	ls := db.liveStore()
	if ls == nil {
		return 0, ErrNotLive
	}
	ts, err := decodeAll(r)
	if err != nil {
		return 0, err
	}
	ls.Delete(ts...)
	return len(ts), nil
}

func decodeAll(r io.Reader) ([]Triple, error) {
	d := rdf.NewDecoder(r)
	var ts []Triple
	for {
		t, err := d.Decode()
		if err == io.EOF {
			return ts, nil
		}
		if err != nil {
			return nil, err
		}
		ts = append(ts, t)
	}
}

// Flush synchronously compacts the memtable into the frozen base:
// tombstones annihilate their targets, the survivors are folded in
// with the store's sort+compact path, and (with a SnapshotPath
// configured) the new base is persisted atomically before the swap.
// After a Flush with no concurrent writers the database is quiesced —
// every read serves the frozen base's zero-copy paths, and results are
// byte-identical to a freshly frozen store over the same triples.
// Requires live updates.
func (db *DB) Flush() error {
	_, err := db.Compact()
	return err
}

// Compact is Flush with the compaction's statistics: how many triples
// the new base holds, how many net inserts and tombstones were folded
// in, how long it took, and whether an image was persisted. Requires
// live updates.
func (db *DB) Compact() (CompactionStats, error) {
	ls := db.liveStore()
	if ls == nil {
		return CompactionStats{}, ErrNotLive
	}
	return ls.Compact()
}

// StartCompaction runs the background compactor: the memtable is
// folded into the base whenever it holds opts.Threshold pending
// operations, and in any case within opts.Interval of turning dirty.
// In-flight queries finish on the view they pinned; the only
// reader-visible pause is the base pointer swap. The returned stop
// function (idempotent) halts the compactor and waits for an in-flight
// compaction to finish. Requires live updates.
func (db *DB) StartCompaction(opts CompactionOptions) (stop func(), err error) {
	ls := db.liveStore()
	if ls == nil {
		return nil, ErrNotLive
	}
	return ls.StartCompaction(overlay.CompactionOptions{
		Interval:  opts.Interval,
		Threshold: opts.Threshold,
		OnError:   opts.OnError,
	}), nil
}

// LiveStats returns overlay statistics and whether the database is
// live.
func (db *DB) LiveStats() (LiveStats, bool) {
	ls := db.liveStore()
	if ls == nil {
		return LiveStats{}, false
	}
	return ls.LiveStats(), true
}

// FromStore wraps an existing single store in a DB, for advanced
// integrations and tests that build stores directly (e.g. with
// store.FromTriples). The store should be frozen before querying.
func FromStore(st *store.Store) *DB { return &DB{st: st} }

// writeLiveSnapshot flushes the memtable and persists the quiesced
// base; see DB.WriteSnapshot.
func (db *DB) writeLiveSnapshot(path string) error {
	ls := db.liveStore()
	if err := ls.Flush(); err != nil {
		return err
	}
	return snapshot.WriteFile(path, ls.Base())
}
