//go:build race

package sparqluo_test

// raceEnabled lets heavyweight equivalence tests shrink their fixtures
// when the race detector multiplies their cost; the race build still
// covers every code path, just on smaller data.
const raceEnabled = true
